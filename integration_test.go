package comparesets_test

// End-to-end integration: every subsystem in one pipeline — synthesize a
// corpus, persist it through both the JSON codec and the append-only store,
// rebuild instances from stored reviews, re-derive annotations from raw
// text, run every selector, build the similarity graph, shortlist with
// every solver, and feed the results to the summarizer, the explainer, and
// the HTTP service.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"comparesets"
	"comparesets/internal/aspectex"
	"comparesets/internal/core"
	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
	"comparesets/internal/service"
	"comparesets/internal/simgraph"
	"comparesets/internal/store"
)

func TestFullPipelineIntegration(t *testing.T) {
	// 1. Synthesize.
	corpus, err := datagen.Generate(datagen.Config{
		Category: lexicon.Cellphone, Products: 40, Reviewers: 80,
		MeanReviews: 12, MeanAlsoBought: 6, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist through JSON and through the store; both must agree.
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "corpus.json")
	if err := model.SaveCorpus(corpus, jsonPath); err != nil {
		t.Fatal(err)
	}
	reloaded, err := model.LoadCorpus(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(filepath.Join(dir, "reviews.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.AppendCorpus(reloaded); err != nil {
		t.Fatal(err)
	}
	if st.Count() != corpus.NumReviews() {
		t.Fatalf("store count %d != corpus reviews %d", st.Count(), corpus.NumReviews())
	}

	// 3. Rebuild one item's reviews from the store and compare to the
	//    original set.
	targets := dataset.TargetIDs(reloaded)
	if len(targets) == 0 {
		t.Fatal("no targets")
	}
	fromStore, err := st.ItemReviews(targets[0])
	if err != nil {
		t.Fatal(err)
	}
	orig := reloaded.Items[targets[0]].Reviews
	if len(fromStore) != len(orig) {
		t.Fatalf("store returned %d reviews, want %d", len(fromStore), len(orig))
	}
	for i := range orig {
		if fromStore[i].ID != orig[i].ID || fromStore[i].Text != orig[i].Text {
			t.Fatalf("review %d mismatch after store round trip", i)
		}
	}

	// 4. Re-derive annotations from raw text; selections on re-annotated
	//    data must still be valid.
	reannotated, err := model.LoadCorpus(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	aspectex.New(lexicon.Cellphone).Annotate(reannotated)
	inst, err := reannotated.NewInstance(targets[0], 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}

	// 5. Every selector, including the related-work baselines.
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.1, Seed: 5}
	selections := map[string]*core.Selection{}
	for _, sel := range core.ExtendedSelectors() {
		s, err := sel.Select(inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		selections[sel.Name()] = s
	}

	// 6. Similarity graph + every shortlist solver over the synchronized
	//    selection.
	plus := selections["CompaReSetS+"]
	tg := core.NewTargets(inst, cfg)
	g := simgraph.Build(core.Stats(inst, tg, cfg, plus), cfg)
	exact := (simgraph.Exact{Budget: 5 * time.Second}).Solve(g, 3)
	if !exact.Optimal {
		t.Error("exact solve not optimal on a small instance")
	}
	for _, solver := range simgraph.Solvers(1) {
		res := solver.Solve(g, 3)
		if len(res.Members) != 3 || res.Members[0] != 0 {
			t.Fatalf("%s: members %v", solver.Name(), res.Members)
		}
		if res.Weight > exact.Weight+1e-9 {
			t.Fatalf("%s: weight %v above proven optimum %v", solver.Name(), res.Weight, exact.Weight)
		}
	}

	// 7. Downstream consumers.
	sets := plus.Reviews(inst)
	for _, i := range exact.Members {
		if len(sets[i]) > 0 {
			if sum := comparesets.Summarize(sets[i], 2); len(sum) == 0 {
				t.Errorf("item %d: empty summary", i)
			}
		}
	}
	if lines := comparesets.ExplainLines(comparesets.Explain(inst, plus), 5); len(lines) == 0 {
		t.Error("no explanations for a synchronized selection")
	}

	// 8. The HTTP service over the re-annotated corpus must agree with the
	//    direct call.
	srv := service.New(map[string]*model.Corpus{"Cellphone": reannotated}, nil)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	reqBody, _ := json.Marshal(service.SelectRequest{
		Category: "Cellphone", Target: targets[0], MaxComparative: 6,
		Algorithm: "CompaReSetS+", M: 3, Lambda: 1, Mu: 0.1, K: 3, Method: "exact",
	})
	resp, err := http.Post(ts.URL+"/api/v1/select", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("service status %d", resp.StatusCode)
	}
	var out service.SelectResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out.Shortlist, exact.Members) {
		t.Errorf("service shortlist %v != direct %v", out.Shortlist, exact.Members)
	}
	for i, item := range out.Items {
		if len(item.Reviews) != len(sets[i]) {
			t.Errorf("service item %d returned %d reviews, direct %d", i, len(item.Reviews), len(sets[i]))
		}
	}
}
