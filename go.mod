module comparesets

go 1.22
