// Package comparesets is the public API of this repository — a Go
// implementation of "Selecting Comparative Sets of Reviews Across Multiple
// Items" (Le & Lauw, EDBT 2025).
//
// Given a target product and a list of comparative products (e.g. an
// e-commerce "also bought" list), the library selects at most m reviews per
// product such that every selected set is representative of its product's
// opinions (CompaReSetS, Problem 1) and, optionally, the sets are
// synchronized to discuss the same aspects for easy side-by-side comparison
// (CompaReSetS+, Problem 2). A similarity graph over the products then
// supports narrowing a long comparison list to the k most mutually similar
// items including the target (TargetHkS, Problem 3), with both an exact
// branch-and-bound solver and a fast greedy approximation.
//
// # Quick start
//
//	corpus, _ := comparesets.GenerateCorpus("Cellphone", 50, 7)
//	targets := comparesets.TargetProducts(corpus)
//	inst, _ := corpus.NewInstance(targets[0], 0)
//	sel, _ := comparesets.SelectSynchronized(inst, comparesets.DefaultConfig(3))
//	short, _ := comparesets.ShortlistWith(inst, sel, comparesets.DefaultConfig(3), 3,
//		comparesets.ShortlistOptions{Method: comparesets.ShortlistExact})
//
// # Mutating a corpus
//
// Corpora support incremental, copy-on-write review mutation — see
// Corpus.AppendReviews, Corpus.UpdateReview, and Corpus.RemoveReview. Each
// returns a Mutation describing the delta (old and new item snapshots),
// which the serving layer uses to invalidate per-item caches instead of
// rebuilding the whole corpus:
//
//	m, _ := corpus.AppendReviews("p07", &comparesets.Review{ID: "r-new", Rating: 5})
//	fmt.Println(m.Kind, m.ItemID, m.ReviewIDs) // append p07 [r-new]
//
// The internal packages implement every substrate from scratch on the
// standard library: dense linear algebra with NNLS (internal/linalg), the
// Integer-Regression machinery (internal/regress), ROUGE metrics
// (internal/rouge), a synthetic Amazon-like corpus generator
// (internal/datagen) with a frequency-based aspect-sentiment extractor
// (internal/aspectex), the TargetHkS solvers (internal/simgraph), and the
// full experiment harness reproducing the paper's tables and figures
// (internal/experiments).
package comparesets

import (
	"context"
	"fmt"
	"time"

	"comparesets/internal/amazon"
	"comparesets/internal/aspectex"
	"comparesets/internal/core"
	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/explain"
	"comparesets/internal/lexicon"
	"comparesets/internal/metrics"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/opinion"
	"comparesets/internal/rouge"
	"comparesets/internal/simgraph"
	"comparesets/internal/store"
	"comparesets/internal/summarize"
)

// Data-model types re-exported for API users.
type (
	// Corpus is a product category with its aspect vocabulary and items.
	Corpus = model.Corpus
	// Item is a product with reviews and an "also bought" list.
	Item = model.Item
	// Review is a single product review with aspect-opinion annotations.
	Review = model.Review
	// Mention is one aspect-opinion observation inside a review.
	Mention = model.Mention
	// Polarity is the sentiment polarity of a mention.
	Polarity = model.Polarity
	// Vocabulary maps aspect names to dense indices.
	Vocabulary = model.Vocabulary
	// Instance is one problem instance: the target item followed by its
	// comparative items.
	Instance = model.Instance
	// Mutation describes one applied corpus delta: the touched item before
	// and after, and the review IDs involved. Returned by
	// Corpus.AppendReviews, Corpus.UpdateReview, and Corpus.RemoveReview.
	Mutation = model.Mutation
	// MutationKind classifies a corpus delta (append, update, remove).
	MutationKind = model.MutationKind
	// Config carries the selection hyperparameters (m, λ, μ, scheme).
	Config = core.Config
	// Selection is a review-selection result.
	Selection = core.Selection
	// Selector is a review-selection algorithm.
	Selector = core.Selector
	// Graph is the item-similarity graph of §3.
	Graph = simgraph.Graph
	// ShortlistResult is the outcome of a TargetHkS solver.
	ShortlistResult = simgraph.Result
	// RougeResult bundles ROUGE-1/-2/-L scores for a text pair.
	RougeResult = rouge.Result
)

// Polarity values.
const (
	Positive = model.Positive
	Negative = model.Negative
	Neutral  = model.Neutral
)

// Mutation kinds, in the order the write API exposes them.
const (
	MutationAppend = model.MutationAppend
	MutationUpdate = model.MutationUpdate
	MutationRemove = model.MutationRemove
)

// NewVocabulary builds an aspect vocabulary from names (duplicates
// collapse). Use it when assembling instances from your own data.
func NewVocabulary(names []string) *Vocabulary { return model.NewVocabulary(names) }

// DefaultConfig returns the paper's tuned configuration (§4.1.4): λ = 1,
// μ = 0.1, binary opinions, with the given review budget m.
func DefaultConfig(m int) Config {
	return Config{M: m, Lambda: 1, Mu: 0.1}
}

// Select solves CompaReSetS (Problem 1): independent per-item
// Integer-Regression against the target opinion and aspect distributions.
func Select(inst *Instance, cfg Config) (*Selection, error) {
	return SelectContext(context.Background(), inst, cfg)
}

// SelectContext is Select with cooperative cancellation: the pipeline
// checks ctx at deterministic checkpoints (before each per-item regression
// and each NOMP atom extension) and returns ctx.Err() once the context is
// done, without corrupting any shared state. An uncancelled call returns
// results byte-identical to Select.
func SelectContext(ctx context.Context, inst *Instance, cfg Config) (*Selection, error) {
	return core.CompaReSetS{}.SelectContext(ctx, inst, cfg)
}

// SelectSynchronized solves CompaReSetS+ (Problem 2, Algorithm 1):
// CompaReSetS followed by alternating re-selection that synchronizes the
// aspect distributions across items.
func SelectSynchronized(inst *Instance, cfg Config) (*Selection, error) {
	return SelectSynchronizedContext(context.Background(), inst, cfg)
}

// SelectSynchronizedContext is SelectSynchronized with cooperative
// cancellation; Algorithm 1 additionally checks ctx before every
// alternating resync step. See SelectContext for the semantics.
func SelectSynchronizedContext(ctx context.Context, inst *Instance, cfg Config) (*Selection, error) {
	return core.CompaReSetSPlus{}.SelectContext(ctx, inst, cfg)
}

// SelectBatch runs a selector over many independent instances in parallel
// (every target product is an independent problem, §4.1.1). workers ≤ 0
// uses all cores; instance i is solved with Seed = cfg.Seed + i so results
// are deterministic regardless of scheduling.
func SelectBatch(insts []*Instance, sel Selector, cfg Config, workers int) ([]*Selection, error) {
	return SelectBatchContext(context.Background(), insts, sel, cfg, workers)
}

// SelectBatchContext is SelectBatch with cooperative cancellation: once ctx
// is done, unstarted instances are skipped, in-flight instances stop at
// their next checkpoint, and the call returns ctx.Err().
func SelectBatchContext(ctx context.Context, insts []*Instance, sel Selector, cfg Config, workers int) ([]*Selection, error) {
	return core.SelectAllContext(ctx, insts, sel, cfg, workers)
}

// Selectors returns all implemented selection algorithms, including the
// CRS, greedy, and random baselines, in the paper's Table 3 row order.
func Selectors() []Selector { return core.Selectors() }

// SelectorByName returns the selector with the given name
// ("Random", "Crs", "CompaReSetS_Greedy", "CompaReSetS", "CompaReSetS+").
func SelectorByName(name string) (Selector, bool) { return core.SelectorByName(name) }

// SimilarityGraph builds the item-similarity graph of §3.1 from a
// selection: vertices are instance items (vertex 0 = target), edge weights
// invert the pairwise selection distances d_ij.
func SimilarityGraph(inst *Instance, sel *Selection, cfg Config) *Graph {
	tg := core.NewTargets(inst, cfg)
	return simgraph.Build(core.Stats(inst, tg, cfg, sel), cfg)
}

// ShortlistMethod identifies a TargetHkS solver in the typed v2 API.
type ShortlistMethod int

// Shortlist methods, in the paper's §4.3 order.
const (
	// ShortlistExact is branch and bound, provably optimal within its time
	// budget (the paper's TargetHkS_ILP stand-in).
	ShortlistExact ShortlistMethod = iota
	// ShortlistGreedy is Algorithm 2.
	ShortlistGreedy
	// ShortlistTopK keeps the k−1 items most similar to the target.
	ShortlistTopK
	// ShortlistRandom samples k−1 comparative items uniformly.
	ShortlistRandom
)

// String returns the canonical parseable name of the method.
func (m ShortlistMethod) String() string {
	switch m {
	case ShortlistExact:
		return "exact"
	case ShortlistGreedy:
		return "greedy"
	case ShortlistTopK:
		return "topk"
	case ShortlistRandom:
		return "random"
	default:
		return fmt.Sprintf("ShortlistMethod(%d)", int(m))
	}
}

// ParseShortlistMethod resolves the string names of the v1 API ("exact" —
// with "ilp" as an alias — "greedy", "topk", "random") to a typed method.
func ParseShortlistMethod(s string) (ShortlistMethod, error) {
	switch s {
	case "exact", "ilp":
		return ShortlistExact, nil
	case "greedy":
		return ShortlistGreedy, nil
	case "topk":
		return ShortlistTopK, nil
	case "random":
		return ShortlistRandom, nil
	default:
		return 0, fmt.Errorf("comparesets: unknown shortlist method %q (want exact, greedy, topk, or random)", s)
	}
}

// DefaultShortlistBudget is the exact solver's wall-clock budget when
// ShortlistOptions.Budget is zero — the 60 s the paper used (§4.3).
const DefaultShortlistBudget = 60 * time.Second

// ShortlistOptions configures a TargetHkS solve.
type ShortlistOptions struct {
	// Method selects the solver; the zero value is ShortlistExact.
	Method ShortlistMethod
	// Budget caps the exact solver's wall-clock time; zero means
	// DefaultShortlistBudget, negative means unlimited. On timeout the
	// best incumbent is returned with Optimal = false. Heuristic methods
	// ignore it.
	Budget time.Duration
}

// ShortlistWith narrows the instance to the k most mutually similar items
// including the target (TargetHkS, Problem 3) with typed options; it is
// ShortlistContext with context.Background(). (The stringly-typed
// Shortlist(inst, sel, cfg, k, "exact") form of v1 has been removed; use
// ParseShortlistMethod to bridge string inputs.)
func ShortlistWith(inst *Instance, sel *Selection, cfg Config, k int, opts ShortlistOptions) (ShortlistResult, error) {
	return ShortlistContext(context.Background(), inst, sel, cfg, k, opts)
}

// ShortlistContext solves TargetHkS with typed options and cooperative
// cancellation: the exact solver treats an earlier ctx deadline like an
// exhausted budget and returns its best incumbent flagged Optimal = false.
func ShortlistContext(ctx context.Context, inst *Instance, sel *Selection, cfg Config, k int, opts ShortlistOptions) (ShortlistResult, error) {
	solver, err := shortlistSolver(opts, cfg.Seed)
	if err != nil {
		return ShortlistResult{}, err
	}
	shortlistSpan := obs.StartStage(obs.StageShortlist)
	defer shortlistSpan.Stop()
	g := SimilarityGraph(inst, sel, cfg)
	return solver.SolveContext(ctx, g, k), nil
}

func shortlistSolver(opts ShortlistOptions, seed int64) (simgraph.Solver, error) {
	switch opts.Method {
	case ShortlistExact:
		budget := opts.Budget
		switch {
		case budget == 0:
			budget = DefaultShortlistBudget
		case budget < 0:
			budget = 0 // simgraph.Exact treats zero as unlimited
		}
		return simgraph.Exact{Budget: budget}, nil
	case ShortlistGreedy:
		return simgraph.Greedy{}, nil
	case ShortlistTopK:
		return simgraph.TopK{}, nil
	case ShortlistRandom:
		return simgraph.RandomShortlist{Seed: seed}, nil
	default:
		return nil, fmt.Errorf("comparesets: invalid shortlist method %v", opts.Method)
	}
}

// Categories returns the names of all built-in product categories: the
// paper's evaluation trio ("Cellphone", "Toy", "Clothing") followed by the
// extra library categories ("Electronics", "Kitchen").
func Categories() []string {
	var out []string
	for _, c := range lexicon.AllCategories() {
		out = append(out, c.Name)
	}
	return out
}

// GenerateCorpus synthesizes an Amazon-like corpus for one of the built-in
// categories with the given number of products, deterministic in seed.
func GenerateCorpus(category string, products int, seed int64) (*Corpus, error) {
	cat, ok := lexicon.CategoryByName(category)
	if !ok {
		return nil, fmt.Errorf("comparesets: unknown category %q (want one of %v)", category, Categories())
	}
	return datagen.Generate(datagen.Config{
		Category:       cat,
		Products:       products,
		Reviewers:      3 * products,
		MeanReviews:    15,
		MeanAlsoBought: 7,
		Seed:           seed,
	})
}

// TargetProducts returns the IDs of products that qualify as instance
// targets (at least two in-corpus comparison products), sorted.
func TargetProducts(c *Corpus) []string { return dataset.TargetIDs(c) }

// LoadCorpus reads a corpus from a JSON file written by SaveCorpus.
func LoadCorpus(path string) (*Corpus, error) { return model.LoadCorpus(path) }

// ReviewStore is the append-only, CRC-checked on-disk review log with item
// and aspect indexes (see internal/store for the format and recovery
// semantics).
type ReviewStore = store.Store

// OpenReviewStore opens (or creates) a review store at path, truncating any
// torn tail left by a crash.
func OpenReviewStore(path string) (*ReviewStore, error) { return store.Open(path) }

// LoadAmazonCorpus converts real Amazon Product Review Dataset files (He &
// McAuley JSON-lines format, optionally gzipped) into an annotated corpus
// using the named category's lexicon.
func LoadAmazonCorpus(reviewPath, metaPath, category string, minReviews int) (*Corpus, error) {
	return amazon.LoadFiles(reviewPath, metaPath, amazon.Options{
		Category:   category,
		MinReviews: minReviews,
	})
}

// SaveCorpus writes the corpus to a JSON file.
func SaveCorpus(c *Corpus, path string) error { return model.SaveCorpus(c, path) }

// ExtractMentions runs the frequency-based aspect-sentiment extractor on
// raw review text using the named category's lexicon. Aspect indices match
// the vocabulary of corpora generated for that category.
func ExtractMentions(category, text string) ([]Mention, error) {
	cat, ok := lexicon.CategoryByName(category)
	if !ok {
		return nil, fmt.Errorf("comparesets: unknown category %q", category)
	}
	return aspectex.New(cat).Extract(text), nil
}

// Summarize condenses a set of reviews into at most maxSentences extracted
// sentences via TextRank-style centrality — the §4.6.1 follow-on for when
// even m selected reviews are too much to read.
func Summarize(reviews []*Review, maxSentences int) []string {
	return summarize.Reviews(reviews, summarize.Options{MaxSentences: maxSentences})
}

// ItemComparison is a template-based comparative explanation of the target
// against one comparative item.
type ItemComparison = explain.ItemComparison

// Explain derives per-aspect comparative explanations from a selection
// (template generation in the spirit of the paper's companion WSDM'21
// system, reference [18]).
func Explain(inst *Instance, sel *Selection) []ItemComparison {
	return explain.Compare(inst, sel)
}

// ExplainLines flattens comparisons into at most maxLines one-sentence
// explanations, most decisive aspects first.
func ExplainLines(cmps []ItemComparison, maxLines int) []string {
	return explain.Lines(cmps, maxLines)
}

// Rouge scores candidate against reference text with ROUGE-1/-2/-L, the
// alignment metric of the paper's evaluation.
func Rouge(candidate, reference string) RougeResult {
	return rouge.Compare(candidate, reference)
}

// SelectionMetrics scores a selection along the related-work quality axes
// (§5.1): aspect coverage, opinion-pair coverage, redundancy, and
// representativeness, averaged over the instance's items.
type SelectionMetrics = metrics.InstanceMetrics

// Evaluate scores a selection on the §5.1 quality axes.
func Evaluate(inst *Instance, sel *Selection) SelectionMetrics {
	return metrics.EvaluateSelection(inst, sel)
}

// OpinionSchemeNames lists the supported opinion definitions (§4.2.3):
// "binary", "3-polarity", "unary-scale".
func OpinionSchemeNames() []string {
	var out []string
	for _, s := range opinion.Schemes() {
		out = append(out, s.Name())
	}
	return out
}

// WithScheme returns a copy of cfg using the named opinion definition.
func WithScheme(cfg Config, scheme string) (Config, error) {
	s, err := opinion.SchemeByName(scheme)
	if err != nil {
		return cfg, err
	}
	cfg.Scheme = s
	return cfg, nil
}
