#!/bin/sh
# chaos_cluster.sh — cross-process chaos drill for the distributed tier.
#
# Boots three real cmd/server workers (identical synthetic corpora) and a
# cmd/router in front of them, arms probabilistic router.forward faults,
# drives mixed read/write load through the router with cmd/loadgen, and
# kill -9's one worker mid-run. The drill fails unless client-observed
# availability stays >= MIN_AVAIL (default 0.99).
#
# Every probabilistic decision derives from FAULTINJECT_SEED, printed up
# front — rerun with FAULTINJECT_SEED=<seed> scripts/chaos_cluster.sh to
# reproduce a failing draw sequence exactly (modulo scheduling).
set -eu

BASE_PORT=${BASE_PORT:-19800}
MIN_AVAIL=${MIN_AVAIL:-0.99}
RATES=${RATES:-50,100}
# 5s per rate stage: the kill lands in stage 1, and the availability gate
# needs enough requests there that the fixed handful lost in the kill
# window cannot alone breach 99% (at 50 req/s, 3s gave the stage only a
# 1.5-request error budget).
DURATION=${DURATION:-5s}
WRITE_RATIO=${WRITE_RATIO:-0.05}
FORWARD_FAULT=${FORWARD_FAULT:-router.forward=error@0.02}
SEED=${FAULTINJECT_SEED:-$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')}

echo "chaos-cluster: FAULTINJECT_SEED=$SEED"
echo "chaos-cluster: forward fault spec: $FORWARD_FAULT"

workdir=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "chaos-cluster: building server, router, loadgen"
go build -o "$workdir/server" ./cmd/server
go build -o "$workdir/router" ./cmd/router
go build -o "$workdir/loadgen" ./cmd/loadgen

backends=""
worker_pids=""
i=1
while [ "$i" -le 3 ]; do
    port=$((BASE_PORT + i))
    "$workdir/server" -addr "127.0.0.1:$port" -synthetic -seed 7 -serve-snapshot \
        >"$workdir/worker$i.log" 2>&1 &
    pid=$!
    pids="$pids $pid"
    worker_pids="$worker_pids $pid"
    backends="$backends${backends:+,}http://127.0.0.1:$port"
    i=$((i + 1))
done

# The router carries the armed fault: every forward has a small chance of
# an injected error, on top of the real worker kill below.
FAULTINJECT="$FORWARD_FAULT" FAULTINJECT_SEED="$SEED" \
    "$workdir/router" -addr "127.0.0.1:$BASE_PORT" -backends "$backends" \
    >"$workdir/router.log" 2>&1 &
pids="$pids $!"

ready() {
    curl -fsS -o /dev/null "http://127.0.0.1:$1/readyz" 2>/dev/null
}
i=0
while [ "$i" -le 3 ]; do
    port=$((BASE_PORT + i))
    tries=0
    until ready "$port"; do
        tries=$((tries + 1))
        if [ "$tries" -gt 50 ]; then
            echo "chaos-cluster: 127.0.0.1:$port never became ready" >&2
            tail -5 "$workdir"/*.log >&2 || true
            exit 1
        fi
        sleep 0.2
    done
    i=$((i + 1))
done
echo "chaos-cluster: router + 3 workers ready on ports $BASE_PORT-$((BASE_PORT + 3))"

"$workdir/loadgen" -addr "http://127.0.0.1:$BASE_PORT" \
    -rates "$RATES" -duration "$DURATION" -write-ratio "$WRITE_RATIO" \
    -min-availability "$MIN_AVAIL" -out "$workdir/chaos_load.json" \
    >"$workdir/loadgen.log" 2>&1 &
load_pid=$!
pids="$pids $load_pid"

# Kill one worker abruptly (SIGKILL: no drain, no goodbye) once the load is
# well underway.
sleep 2
victim=$(echo $worker_pids | awk '{print $1}')
echo "chaos-cluster: kill -9 worker 1 (pid $victim) mid-load"
kill -9 "$victim" 2>/dev/null || true

if wait "$load_pid"; then
    grep -E "rate|avail" "$workdir/loadgen.log" || true
    echo "chaos-cluster: PASS — availability held >= $MIN_AVAIL through a worker kill (FAULTINJECT_SEED=$SEED)"
else
    echo "chaos-cluster: FAIL — reproduce with: FAULTINJECT_SEED=$SEED scripts/chaos_cluster.sh" >&2
    echo "--- loadgen.log ---" >&2
    tail -20 "$workdir/loadgen.log" >&2 || true
    echo "--- router.log ---" >&2
    tail -20 "$workdir/router.log" >&2 || true
    exit 1
fi
