// Shortlist: narrowing a long "also bought" list to a core comparison list
// (§3 of the paper). A Toy-category product with a long comparison list is
// shortlisted by all four TargetHkS methods; the example reports subgraph
// weights, agreement with the proven optimum, and runtimes.
package main

import (
	"fmt"
	"log"
	"time"

	"comparesets"
)

func main() {
	corpus, err := comparesets.GenerateCorpus("Toy", 80, 11)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the target with the longest comparison list.
	var targetID string
	best := -1
	for _, id := range comparesets.TargetProducts(corpus) {
		inst, err := corpus.NewInstance(id, 0)
		if err != nil {
			continue
		}
		if n := inst.NumItems() - 1; n > best {
			best, targetID = n, id
		}
	}
	inst, err := corpus.NewInstance(targetID, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target %q has %d comparative items; shortlisting to k=5\n\n",
		inst.Target().Title, inst.NumItems()-1)

	cfg := comparesets.DefaultConfig(5)
	sel, err := comparesets.SelectSynchronized(inst, cfg)
	if err != nil {
		log.Fatal(err)
	}

	var optimal comparesets.ShortlistResult
	for _, method := range []comparesets.ShortlistMethod{
		comparesets.ShortlistExact, comparesets.ShortlistGreedy,
		comparesets.ShortlistTopK, comparesets.ShortlistRandom,
	} {
		start := time.Now()
		res, err := comparesets.ShortlistWith(inst, sel, cfg, 5, comparesets.ShortlistOptions{Method: method})
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		if method == comparesets.ShortlistExact {
			optimal = res
		}
		fmt.Printf("%-8s weight %8.3f  (%.1f%% of optimum, %v, members %v)\n",
			method, res.Weight, 100*res.Weight/optimal.Weight, elapsed, res.Members)
	}

	fmt.Println("\ncore list:")
	for _, i := range optimal.Members {
		marker := ""
		if i == 0 {
			marker = "  <- this item"
		}
		fmt.Printf("  %s%s\n", inst.Items[i].Title, marker)
	}
}
