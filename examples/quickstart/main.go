// Quickstart: generate a synthetic corpus, pick a target product, select
// comparative review sets with CompaReSetS+, and narrow the comparison list
// with the exact TargetHkS solver.
package main

import (
	"fmt"
	"log"

	"comparesets"
)

func main() {
	// 1. A corpus: 50 cellphone-accessory products with reviews and
	//    "also bought" comparison lists. Deterministic in the seed.
	corpus, err := comparesets.GenerateCorpus("Cellphone", 50, 7)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A problem instance: one target product plus its comparison list.
	targets := comparesets.TargetProducts(corpus)
	inst, err := corpus.NewInstance(targets[0], 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %s with %d comparative items\n",
		inst.Target().Title, inst.NumItems()-1)

	// 3. Synchronized comparative review selection (CompaReSetS+): at most
	//    3 reviews per item, chosen to be representative of each item and
	//    to discuss the same aspects across items.
	cfg := comparesets.DefaultConfig(3)
	sel, err := comparesets.SelectSynchronized(inst, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selection objective (Eq. 5): %.4f\n", sel.Objective)

	// 4. Shortlist: the 3 most mutually similar items including the target.
	short, err := comparesets.ShortlistWith(inst, sel, cfg, 3,
		comparesets.ShortlistOptions{Method: comparesets.ShortlistExact})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("core list weight %.3f (optimal=%v)\n\n", short.Weight, short.Optimal)

	// 5. Print the comparison the way a storefront would.
	sets := sel.Reviews(inst)
	for _, i := range short.Members {
		marker := ""
		if i == 0 {
			marker = "  <- this item"
		}
		fmt.Printf("%s%s\n", inst.Items[i].Title, marker)
		for _, r := range sets[i] {
			fmt.Printf("  [%d/5] %s\n", r.Rating, r.Text)
		}
		fmt.Println()
	}
}
