// Cameras: the motivating scenario of the paper's introduction (Figure 1) —
// a shopper viewing a DSLR camera is shown similar cameras and wants a few
// reviews from each that cover the same aspects so the products can be
// compared side by side.
//
// This example builds the instance by hand from user-supplied data (no
// synthetic generator): it shows how to bring your own items, reviews, and
// aspect annotations to the library, and contrasts independent selection
// (CompaReSetS) with synchronized selection (CompaReSetS+).
package main

import (
	"fmt"
	"log"

	"comparesets"
)

// aspect indices of our hand-built camera vocabulary.
const (
	picture = iota
	autofocus
	beginners
	battery
	zoom
)

var aspectNames = []string{"picture quality", "auto focus", "for beginners", "battery", "zoom"}

func review(id string, rating int, text string, mentions ...comparesets.Mention) *comparesets.Review {
	return &comparesets.Review{ID: id, Rating: rating, Text: text, Mentions: mentions}
}

func pos(a int) comparesets.Mention {
	return comparesets.Mention{Aspect: a, Polarity: comparesets.Positive, Score: 1}
}

func neg(a int) comparesets.Mention {
	return comparesets.Mention{Aspect: a, Polarity: comparesets.Negative, Score: -1}
}

func main() {
	target := &comparesets.Item{
		ID: "rebel-t7", Title: "Canon EOS Rebel T7 DSLR",
		Reviews: []*comparesets.Review{
			review("t7-1", 5, "picture quality is stunning and the kit lens is sharp", pos(picture)),
			review("t7-2", 4, "auto focus hunts a little in low light but picture quality is great", neg(autofocus), pos(picture)),
			review("t7-3", 5, "perfect for beginners, the guided menu taught me the basics", pos(beginners)),
			review("t7-4", 3, "battery drains fast when using live view", neg(battery)),
			review("t7-5", 4, "as a beginner i found it easy, and photos look amazing", pos(beginners), pos(picture)),
			review("t7-6", 2, "auto focus missed several shots of my kids", neg(autofocus)),
		},
	}
	rival1 := &comparesets.Item{
		ID: "rebel-t8i", Title: "Canon EOS Rebel T8i Bundle",
		Reviews: []*comparesets.Review{
			review("t8-1", 5, "the auto focus is fast and accurate even in dim rooms", pos(autofocus)),
			review("t8-2", 5, "picture quality rivals cameras twice the price", pos(picture)),
			review("t8-3", 4, "battery easily lasts a full day of shooting", pos(battery)),
			review("t8-4", 3, "zoom range of the kit lens is limited", neg(zoom)),
			review("t8-5", 4, "good for beginners although the menus are deep", pos(beginners)),
		},
	}
	rival2 := &comparesets.Item{
		ID: "eos-4000d", Title: "Canon EOS 4000D (Rebel T100)",
		Reviews: []*comparesets.Review{
			review("4k-1", 4, "picture quality is impressive for the price", pos(picture)),
			review("4k-2", 3, "auto focus is serviceable outdoors, struggles indoors", neg(autofocus)),
			review("4k-3", 2, "battery died mid-session twice", neg(battery)),
			review("4k-4", 4, "optical zoom works smoothly", pos(zoom)),
			review("4k-5", 5, "my first dslr and the picture quality blew me away", pos(picture)),
		},
	}

	inst := &comparesets.Instance{
		Aspects: comparesets.NewVocabulary(aspectNames),
		Items:   []*comparesets.Item{target, rival1, rival2},
	}
	if err := inst.Validate(); err != nil {
		log.Fatal(err)
	}

	cfg := comparesets.DefaultConfig(2)
	indep, err := comparesets.Select(inst, cfg) // Problem 1
	if err != nil {
		log.Fatal(err)
	}
	sync, err := comparesets.SelectSynchronized(inst, cfg) // Problem 2
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== Independent selection (CompaReSetS) ===")
	printSelection(inst, indep)
	fmt.Println("=== Synchronized selection (CompaReSetS+) ===")
	printSelection(inst, sync)

	fmt.Printf("shared aspects, independent: %v\n", sharedAspects(inst, indep))
	fmt.Printf("shared aspects, synchronized: %v\n", sharedAspects(inst, sync))
}

func printSelection(inst *comparesets.Instance, sel *comparesets.Selection) {
	sets := sel.Reviews(inst)
	for i, it := range inst.Items {
		fmt.Printf("%s:\n", it.Title)
		for _, r := range sets[i] {
			fmt.Printf("  [%d/5] %s\n", r.Rating, r.Text)
		}
	}
	fmt.Println()
}

// sharedAspects lists aspect names discussed by every item's selected set.
func sharedAspects(inst *comparesets.Instance, sel *comparesets.Selection) []string {
	sets := sel.Reviews(inst)
	var shared []string
	for a := 0; a < inst.Aspects.Len(); a++ {
		everywhere := true
		for _, set := range sets {
			found := false
			for _, r := range set {
				if r.HasAspect(a) {
					found = true
					break
				}
			}
			if !found {
				everywhere = false
				break
			}
		}
		if everywhere {
			shared = append(shared, inst.Aspects.Name(a))
		}
	}
	return shared
}
