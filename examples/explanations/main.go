// Explanations: the downstream consumers the paper points at — condensing
// each selected review set further with extractive summarization (§4.6.1)
// and generating template-based comparative explanations (§5.2, the
// authors' WSDM'21 companion work) from the synchronized selection.
package main

import (
	"fmt"
	"log"

	"comparesets"
)

func main() {
	corpus, err := comparesets.GenerateCorpus("Cellphone", 50, 9)
	if err != nil {
		log.Fatal(err)
	}
	targets := comparesets.TargetProducts(corpus)
	inst, err := corpus.NewInstance(targets[2], 3)
	if err != nil {
		log.Fatal(err)
	}

	cfg := comparesets.DefaultConfig(3)
	sel, err := comparesets.SelectSynchronized(inst, cfg)
	if err != nil {
		log.Fatal(err)
	}
	sets := sel.Reviews(inst)

	fmt.Printf("target: %s vs %d comparative items\n", inst.Target().Title, inst.NumItems()-1)

	fmt.Println("\n--- one-line summaries of each selected set ---")
	for i, it := range inst.Items {
		summary := comparesets.Summarize(sets[i], 1)
		if len(summary) == 0 {
			continue
		}
		fmt.Printf("%-38s %s.\n", it.Title+":", summary[0])
	}

	fmt.Println("\n--- comparative explanations ---")
	cmps := comparesets.Explain(inst, sel)
	for _, line := range comparesets.ExplainLines(cmps, 6) {
		fmt.Println(" •", line)
	}

	fmt.Println("\n--- full per-item breakdown ---")
	for _, c := range cmps {
		fmt.Printf("%s:\n", c.OtherTitle)
		for _, a := range c.Aspects {
			fmt.Printf("  %-14s target %+.1f vs other %+.1f → %s\n",
				a.AspectName, a.TargetNet, a.OtherNet, a.Verdict)
		}
	}
}
