// Opinionschemes: the three opinion definitions of §4.2.3 — binary
// (positive/negative rows per aspect), 3-polarity (adds neutral), and
// unary-scale (one sigmoid-squashed score per aspect) — applied to the same
// instance, showing how the definition changes which reviews get selected.
package main

import (
	"fmt"
	"log"

	"comparesets"
)

func main() {
	corpus, err := comparesets.GenerateCorpus("Clothing", 40, 5)
	if err != nil {
		log.Fatal(err)
	}
	targets := comparesets.TargetProducts(corpus)
	inst, err := corpus.NewInstance(targets[0], 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("target: %s (%d reviews), %d comparative items\n\n",
		inst.Target().Title, len(inst.Target().Reviews), inst.NumItems()-1)

	for _, scheme := range comparesets.OpinionSchemeNames() {
		cfg, err := comparesets.WithScheme(comparesets.DefaultConfig(3), scheme)
		if err != nil {
			log.Fatal(err)
		}
		sel, err := comparesets.SelectSynchronized(inst, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- scheme %s (objective %.4f) ---\n", scheme, sel.Objective)
		sets := sel.Reviews(inst)
		for _, r := range sets[0] {
			fmt.Printf("  target [%d/5] %s\n", r.Rating, r.Text)
		}
		fmt.Println()
	}

	// The raw extractor is also exposed: annotate new review text with the
	// category lexicon.
	text := "the fit is true to size, perfect. the sole wore through in a month, poor."
	mentions, err := comparesets.ExtractMentions("Clothing", text)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted from %q:\n", text)
	for _, m := range mentions {
		fmt.Printf("  aspect %d polarity %s score %+.1f\n", m.Aspect, m.Polarity, m.Score)
	}
}
