// Batch: processing a whole category the way the paper's experiments do —
// every target product is an independent problem instance (§4.1.1), so the
// batch runner fans instances out across cores. The example compares all
// seven selection algorithms on alignment and the §5.1 quality axes, then
// persists the corpus into the append-only review store and reads one
// item's reviews back.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"comparesets"
	"comparesets/internal/core"
	"comparesets/internal/store"
)

func main() {
	corpus, err := comparesets.GenerateCorpus("Toy", 60, 13)
	if err != nil {
		log.Fatal(err)
	}
	var insts []*comparesets.Instance
	for _, id := range comparesets.TargetProducts(corpus) {
		inst, err := corpus.NewInstance(id, 6)
		if err != nil {
			log.Fatal(err)
		}
		insts = append(insts, inst)
	}
	fmt.Printf("%d instances, %d cores\n\n", len(insts), runtime.GOMAXPROCS(0))

	cfg := comparesets.DefaultConfig(3)
	fmt.Printf("%-20s %9s %9s %9s %9s\n", "algorithm", "aspcov", "divers", "repres", "wall")
	for _, sel := range core.ExtendedSelectors() {
		start := time.Now()
		sels, err := comparesets.SelectBatch(insts, sel, cfg, 0)
		if err != nil {
			log.Fatal(err)
		}
		elapsed := time.Since(start)
		var cov, div, repr float64
		for i, s := range sels {
			m := comparesets.Evaluate(insts[i], s)
			cov += m.AspectCoverage
			div += 1 - m.Redundancy
			repr += m.Representativeness
		}
		n := float64(len(sels))
		fmt.Printf("%-20s %9.3f %9.3f %9.3f %9s\n",
			sel.Name(), cov/n, div/n, repr/n, elapsed.Round(time.Millisecond))
	}

	// Persist into the review store and fetch one item back.
	dir, err := os.MkdirTemp("", "comparesets-batch")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(filepath.Join(dir, "reviews.log"))
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()
	if err := st.AppendCorpus(corpus); err != nil {
		log.Fatal(err)
	}
	target := insts[0].Target().ID
	reviews, err := st.ItemReviews(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstore holds %d reviews; %s has %d\n", st.Count(), target, len(reviews))
}
