package comparesets_test

import (
	"fmt"

	"comparesets"
)

// ExampleSelectSynchronized shows the core flow: build an instance from
// your own annotated data and select synchronized comparative review sets.
func ExampleSelectSynchronized() {
	pos := func(a int) comparesets.Mention {
		return comparesets.Mention{Aspect: a, Polarity: comparesets.Positive, Score: 1}
	}
	neg := func(a int) comparesets.Mention {
		return comparesets.Mention{Aspect: a, Polarity: comparesets.Negative, Score: -1}
	}
	inst := &comparesets.Instance{
		Aspects: comparesets.NewVocabulary([]string{"battery", "screen"}),
		Items: []*comparesets.Item{
			{ID: "target", Title: "Phone A", Reviews: []*comparesets.Review{
				{ID: "a1", Text: "battery is great", Mentions: []comparesets.Mention{pos(0)}},
				{ID: "a2", Text: "battery died fast", Mentions: []comparesets.Mention{neg(0)}},
				{ID: "a3", Text: "screen is sharp", Mentions: []comparesets.Mention{pos(1)}},
			}},
			{ID: "rival", Title: "Phone B", Reviews: []*comparesets.Review{
				{ID: "b1", Text: "battery holds up", Mentions: []comparesets.Mention{pos(0)}},
				{ID: "b2", Text: "screen scratches", Mentions: []comparesets.Mention{neg(1)}},
			}},
		},
	}
	sel, err := comparesets.SelectSynchronized(inst, comparesets.DefaultConfig(2))
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, idx := range sel.Indices {
		fmt.Printf("%s: %d reviews selected\n", inst.Items[i].ID, len(idx))
	}
	// Output:
	// target: 2 reviews selected
	// rival: 2 reviews selected
}

// ExampleRouge scores two review texts with the paper's alignment metric.
func ExampleRouge() {
	r := comparesets.Rouge("the battery lasts all day", "battery life lasts a full day")
	fmt.Printf("ROUGE-1 F1 = %.2f\n", r.R1.F1)
	// Output:
	// ROUGE-1 F1 = 0.55
}

// ExampleExtractMentions annotates raw review text with the built-in
// category lexicon.
func ExampleExtractMentions() {
	ms, _ := comparesets.ExtractMentions("Cellphone",
		"the battery lasts all day, great endurance. the cable frayed within weeks, very cheap.")
	for _, m := range ms {
		fmt.Printf("aspect %d polarity %s\n", m.Aspect, m.Polarity)
	}
	// Output:
	// aspect 0 polarity +
	// aspect 2 polarity -
}

// ExampleSummarize condenses reviews to their most central sentence.
func ExampleSummarize() {
	reviews := []*comparesets.Review{
		{Text: "the battery lasts all day. the battery life is excellent."},
		{Text: "battery endurance is excellent for the price."},
		{Text: "shipping box was dented on arrival."},
	}
	for _, s := range comparesets.Summarize(reviews, 1) {
		fmt.Println(s)
	}
	// Output:
	// the battery life is excellent
}
