// Command convert turns Amazon Product Review Dataset files (He & McAuley
// JSON-lines format — the dataset the paper evaluates on) into this
// repository's corpus JSON, annotating every review with the lexicon-based
// aspect-sentiment extractor on the way.
//
// Usage:
//
//	convert -reviews reviews_Cell_Phones.json -meta meta_Cell_Phones.json \
//	        -category Cellphone -out cellphone.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"comparesets/internal/amazon"
	"comparesets/internal/dataset"
	"comparesets/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "convert:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("convert", flag.ContinueOnError)
	var (
		reviews     = fs.String("reviews", "", "path to the JSON-lines review file")
		meta        = fs.String("meta", "", "path to the JSON-lines metadata file")
		category    = fs.String("category", "Cellphone", "extraction lexicon: Cellphone, Toy, or Clothing")
		out         = fs.String("out", "corpus.json", "output corpus path")
		maxProducts = fs.Int("maxproducts", 0, "truncate the product set (0 = all)")
		minReviews  = fs.Int("minreviews", 3, "drop products with fewer reviews")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *reviews == "" || *meta == "" {
		return fmt.Errorf("-reviews and -meta are required")
	}
	corpus, err := amazon.LoadFiles(*reviews, *meta, amazon.Options{
		Category:    *category,
		MaxProducts: *maxProducts,
		MinReviews:  *minReviews,
	})
	if err != nil {
		return err
	}
	if err := model.SaveCorpus(corpus, *out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *out)
	dataset.WriteTable(stdout, []dataset.Stats{dataset.Compute(corpus)})
	return nil
}
