package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comparesets/internal/model"
)

const metaFixture = `{"asin":"B001","title":"Acme Car Charger","price":12.99,"related":{"also_bought":["B002"]}}
{"asin":"B002","title":"Acme USB Cable","price":5.49,"related":{"also_bought":["B001"]}}
`

const reviewFixture = `{"reviewerID":"U1","asin":"B001","reviewText":"the charger works great in the car.","overall":5.0}
{"reviewerID":"U2","asin":"B001","reviewText":"the charger stopped working after a month, disappointing.","overall":2.0}
{"reviewerID":"U1","asin":"B002","reviewText":"the cable frayed within weeks, very cheap.","overall":1.0}
`

func writeFixtures(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	rp := filepath.Join(dir, "reviews.json")
	mp := filepath.Join(dir, "meta.json")
	if err := os.WriteFile(rp, []byte(reviewFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, []byte(metaFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	return rp, mp
}

func TestRunConvert(t *testing.T) {
	rp, mp := writeFixtures(t)
	out := filepath.Join(t.TempDir(), "corpus.json")
	var buf bytes.Buffer
	err := run([]string{"-reviews", rp, "-meta", mp, "-category", "Cellphone", "-minreviews", "1", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote "+out) {
		t.Errorf("output = %s", buf.String())
	}
	c, err := model.LoadCorpus(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 2 || c.NumReviews() != 3 {
		t.Errorf("corpus = %d items %d reviews", len(c.Items), c.NumReviews())
	}
	// Annotation happened.
	r := c.Items["B001"].Reviews[0]
	if len(r.Mentions) == 0 {
		t.Error("reviews not annotated")
	}
}

func TestRunConvertErrors(t *testing.T) {
	rp, mp := writeFixtures(t)
	var buf bytes.Buffer
	if err := run(nil, &buf); err == nil {
		t.Error("missing flags accepted")
	}
	if err := run([]string{"-reviews", rp, "-meta", mp, "-category", "Books"}, &buf); err == nil {
		t.Error("unknown category accepted")
	}
	if err := run([]string{"-reviews", "/no/such", "-meta", mp}, &buf); err == nil {
		t.Error("missing review file accepted")
	}
}
