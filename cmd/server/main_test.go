package main

import (
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"comparesets"
	"comparesets/internal/service"
)

func quietLogger() *log.Logger { return log.New(io.Discard, "", 0) }

func TestLoadCorporaFromDirectory(t *testing.T) {
	dir := t.TempDir()
	corpus, err := comparesets.GenerateCorpus("Toy", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := comparesets.SaveCorpus(corpus, filepath.Join(dir, "toy.json")); err != nil {
		t.Fatal(err)
	}
	// Non-JSON entries are skipped.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := loadCorpora(dir, false, 1, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["Toy"] == nil {
		t.Fatalf("corpora = %v", got)
	}
}

func TestLoadCorporaSyntheticFallback(t *testing.T) {
	got, err := loadCorpora("", false, 1, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("corpora = %d", len(got))
	}
}

func TestLoadCorporaErrors(t *testing.T) {
	if _, err := loadCorpora("/no/such/dir", false, 1, quietLogger()); err == nil {
		t.Error("missing directory accepted")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "bad.json"), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadCorpora(dir, false, 1, quietLogger()); err == nil {
		t.Error("corrupt corpus accepted")
	}
}

func TestLogRequestsWraps(t *testing.T) {
	corpora, err := loadCorpora("", false, 1, quietLogger())
	if err != nil {
		t.Fatal(err)
	}
	h := logRequests(quietLogger(), service.New(corpora, quietLogger()).Handler())
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Errorf("status = %d", rec.Code)
	}
}
