// Command server runs the comparative review selection HTTP API.
//
// Usage:
//
//	server -addr :8080 -data data            # load corpora from a directory
//	server -addr :8080 -synthetic            # synthesize the three categories
//
// Endpoints: GET /healthz, GET /api/v1/categories,
// GET /api/v1/targets?category=X, POST /api/v1/select, POST /api/v1/extract,
// the corpus mutation endpoints (POST/PATCH/DELETE under
// /api/v1/corpora/{category}/items/{item}/reviews — incremental review
// appends, updates, and removes with per-item cache invalidation),
// plus operational routes: GET /metrics (Prometheus text exposition of
// per-endpoint latency histograms and pipeline-stage timers),
// GET /debug/vars (expvar), and GET /debug/pprof/* (runtime profiles).
//
// Select responses for named corpora are cached in a sharded LRU
// (-cache-bytes budget, default 64 MiB) and identical concurrent requests
// are coalesced into one pipeline execution; -cache-disabled turns both
// layers off. -batch-window additionally groups concurrent merely-similar
// cold requests (same corpus and selection shape, different targets) into
// one shared execution, sealed early at -batch-max members; -float32
// serves from compact float32 feature slabs.
//
// -max-inflight bounds concurrently executing select requests; excess
// requests queue briefly and are shed with 503 + Retry-After once the
// queue fills or their deadline cannot outlast the expected wait. -store
// opens an append-only review store log whose health feeds GET /readyz;
// -mutlog additionally makes that log the write-ahead mutation log —
// every mutation endpoint call is appended to it before the in-memory
// apply (an empty log is seeded with the loaded corpora first, so update
// and remove records can validate against the live view).
//
// -serve-snapshot exposes GET /internal/v1/snapshot/{category} so peers
// (and cmd/router) can replicate this worker's corpora; -join <baseURL>
// bootstraps the worker's corpora from such a peer instead of -data or
// -synthetic, replaying the snapshot log through the store's torn-tail
// recovery and verifying fingerprint parity before serving.
//
// SIGINT/SIGTERM triggers a graceful shutdown: /readyz flips to
// overloaded (so load balancers drain the instance), in-flight requests
// get up to -drain to finish, the store is synced and closed, and stderr
// is flushed.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"comparesets/internal/cluster"
	"comparesets/internal/datagen"
	"comparesets/internal/model"
	"comparesets/internal/service"
	"comparesets/internal/store"
)

func main() {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		dataDir       = flag.String("data", "", "directory of corpus JSON files (from cmd/datagen)")
		synthetic     = flag.Bool("synthetic", false, "synthesize the three default corpora at startup")
		seed          = flag.Int64("seed", 1, "synthesis seed")
		cacheBytes    = flag.Int64("cache-bytes", service.DefaultCacheBytes, "selection result cache budget in bytes")
		cacheDisabled = flag.Bool("cache-disabled", false, "disable the selection result cache and request coalescing")
		maxInflight   = flag.Int("max-inflight", 0, "bound on concurrently executing select requests (0 = unlimited)")
		maxQueue      = flag.Int("max-queue", 0, "admission queue bound (0 = 4×max-inflight, negative = no queue)")
		storePath     = flag.String("store", "", "append-only review store log to open (health feeds /readyz)")
		mutLog        = flag.Bool("mutlog", false, "write-ahead log corpus mutations to the -store log (seeds an empty log with the loaded corpora)")
		drain         = flag.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight requests")
		batchWindow   = flag.Duration("batch-window", 0, "batch cold select requests of the same shape for up to this window (0 = no batching)")
		batchMax      = flag.Int("batch-max", 0, "seal a batch group early at this many requests (0 = window only)")
		float32Mode   = flag.Bool("float32", false, "serve selections from compact float32 feature slabs (float64 accumulation)")
		pageCache     = flag.Int64("store-page-cache-bytes", 0, "byte budget of the -store read page cache (0 = default, negative = disabled)")
		joinURL       = flag.String("join", "", "bootstrap corpora from a peer's snapshot endpoint (base URL of a worker or router) instead of -data/-synthetic")
		joinDir       = flag.String("join-dir", "", "directory for snapshot logs fetched by -join (default: a temp dir)")
		serveSnapshot = flag.Bool("serve-snapshot", false, "serve GET /internal/v1/snapshot/{category} so peers and the router can replicate from this worker")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "server: ", log.LstdFlags)

	var corpora map[string]*model.Corpus
	var err error
	if *joinURL != "" {
		dir := *joinDir
		if dir == "" {
			if dir, err = os.MkdirTemp("", "comparesets-join-*"); err != nil {
				logger.Fatal(err)
			}
		}
		corpora, err = cluster.Join(context.Background(), nil, strings.TrimRight(*joinURL, "/"), dir, logger)
	} else {
		corpora, err = loadCorpora(*dataDir, *synthetic, *seed, logger)
	}
	if err != nil {
		logger.Fatal(err)
	}

	opts := service.Options{
		CacheBytes:    *cacheBytes,
		CacheDisabled: *cacheDisabled,
		MaxInflight:   *maxInflight,
		MaxQueue:      *maxQueue,
		BatchWindow:   *batchWindow,
		BatchMax:      *batchMax,
		Float32:       *float32Mode,
	}
	var st *store.Store
	if *storePath != "" {
		st, err = store.OpenWithOptions(*storePath, store.OpenOptions{Logger: logger, PageCacheBytes: *pageCache})
		if err != nil {
			logger.Fatal(err)
		}
		if rec := st.Recovery(); rec.DroppedRecords > 0 {
			logger.Printf("store: recovered %s dropping %d record(s) (%s)", *storePath, rec.DroppedRecords, rec.Reason)
		}
		logger.Printf("store: %s (%d records)", *storePath, st.Count())
		opts.StoreProbe = st.Healthy
	}
	if *mutLog {
		if st == nil {
			logger.Fatal("-mutlog requires -store")
		}
		if st.Count() == 0 {
			for _, c := range corpora {
				if err := st.AppendCorpus(c); err != nil {
					logger.Fatalf("seeding mutation log: %v", err)
				}
			}
			logger.Printf("store: seeded mutation log with %d corpora", len(corpora))
		}
		opts.MutationLog = st
	}
	svc := service.NewWithOptions(corpora, logger, opts)
	handler := svc.Handler()
	if *serveSnapshot {
		// Mount the snapshot stream on an outer mux so the service handler
		// keeps owning every other route.
		outer := http.NewServeMux()
		outer.Handle(cluster.SnapshotPathPrefix, cluster.SnapshotHandler(svc, logger))
		outer.Handle("/", handler)
		handler = outer
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(logger, handler),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		// Flip readiness before tearing the listener down so load
		// balancers stop routing here while in-flight requests finish.
		svc.SetDraining(true)
		logger.Printf("shutting down (drain %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}
	if st != nil {
		if err := st.Sync(); err != nil {
			logger.Printf("store sync: %v", err)
		}
		if err := st.Close(); err != nil {
			logger.Printf("store close: %v", err)
		}
	}
	// log.Logger writes are unbuffered, but the underlying fd may not be
	// durable yet; best-effort flush before exit.
	_ = os.Stderr.Sync()
}

// loadCorpora assembles the serving corpora: every *.json in dataDir, plus
// the three synthetic defaults when requested or when nothing was loaded.
func loadCorpora(dataDir string, synthetic bool, seed int64, logger *log.Logger) (map[string]*model.Corpus, error) {
	corpora := map[string]*model.Corpus{}
	if dataDir != "" {
		entries, err := os.ReadDir(dataDir)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".json") {
				continue
			}
			path := filepath.Join(dataDir, e.Name())
			c, err := model.LoadCorpus(path)
			if err != nil {
				return nil, fmt.Errorf("loading %s: %w", path, err)
			}
			corpora[c.Category] = c
			logger.Printf("loaded %s (%d products, %d reviews)", c.Category, len(c.Items), c.NumReviews())
		}
	}
	if synthetic || len(corpora) == 0 {
		for _, cfg := range datagen.DefaultConfigs(seed) {
			c, err := datagen.Generate(cfg)
			if err != nil {
				return nil, err
			}
			corpora[c.Category] = c
			logger.Printf("synthesized %s (%d products, %d reviews)", c.Category, len(c.Items), c.NumReviews())
		}
	}
	return corpora, nil
}

func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Print(fmt.Sprintf("%s %s %v", r.Method, r.URL.Path, time.Since(start)))
	})
}
