// Command bench runs the core micro-benchmarks and records their results as
// JSON, so performance changes leave a reviewable trajectory in the repo:
// each PR that touches the hot path re-runs `make bench-json` and the diff
// of BENCH_core.json shows ns/op, B/op, and allocs/op before and after.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark's measurement.
type Result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	Package     string  `json:"package"`
}

// Report is the BENCH_core.json document.
type Report struct {
	GoVersion  string            `json:"go_version"`
	NumCPU     int               `json:"num_cpu"`
	GOMAXPROCS int               `json:"gomaxprocs"`
	Generated  string            `json:"generated"`
	Benchtime  string            `json:"benchtime"`
	Packages   []string          `json:"packages"`
	Results    map[string]Result `json:"results"`
}

// benchLine matches `BenchmarkName-8  30  136568 ns/op  190648 B/op  1269 allocs/op`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	out := flag.String("out", "BENCH_core.json", "output JSON path")
	pattern := flag.String("bench", ".", "benchmark name pattern passed to -bench")
	benchtime := flag.String("benchtime", "50x", "value passed to -benchtime")
	flag.Parse()
	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = []string{
			"./internal/core/", "./internal/regress/", "./internal/linalg/",
			"./internal/store/", "./internal/service/",
		}
	}

	report := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchtime:  *benchtime,
		Packages:   pkgs,
		Results:    map[string]Result{},
	}
	for _, pkg := range pkgs {
		if err := runPackage(&report, pkg, *pattern, *benchtime); err != nil {
			fmt.Fprintf(os.Stderr, "bench: %s: %v\n", pkg, err)
			os.Exit(1)
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: write %s: %v\n", *out, err)
		os.Exit(1)
	}

	names := make([]string, 0, len(report.Results))
	for name := range report.Results {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := report.Results[name]
		fmt.Printf("%-40s %12.0f ns/op %10d B/op %8d allocs/op\n",
			name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(names), *out)
}

func runPackage(report *Report, pkg, pattern, benchtime string) error {
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", pattern,
		"-benchmem", "-benchtime", benchtime, pkg)
	cmd.Stderr = os.Stderr
	outPipe, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return err
	}
	sc := bufio.NewScanner(outPipe)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytes, allocs int64
		if m[4] != "" {
			bytes, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			allocs, _ = strconv.ParseInt(m[5], 10, 64)
		}
		report.Results[m[1]] = Result{
			NsPerOp:     ns,
			BytesPerOp:  bytes,
			AllocsPerOp: allocs,
			Iterations:  iters,
			Package:     pkg,
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return cmd.Wait()
}
