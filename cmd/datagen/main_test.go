package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"comparesets/internal/model"
)

func TestRunSingleCategory(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "toy.json")
	var buf bytes.Buffer
	err := run([]string{"-category", "Toy", "-products", "12", "-seed", "3", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote "+out) || !strings.Contains(buf.String(), "#Product") {
		t.Errorf("output = %s", buf.String())
	}
	c, err := model.LoadCorpus(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 12 || c.Category != "Toy" {
		t.Errorf("corpus = %d items, %s", len(c.Items), c.Category)
	}
}

func TestRunAll(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	// Keep -all small via the shared default configs: just verify it
	// writes the three files.
	if err := run([]string{"-all", "-outdir", dir, "-seed", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cellphone.json", "toy.json", "clothing.json"} {
		if _, err := model.LoadCorpus(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-category", "Books"}, &buf); err == nil {
		t.Error("unknown category accepted")
	}
	if err := run([]string{"-products", "0", "-out", filepath.Join(t.TempDir(), "x.json")}, &buf); err == nil {
		t.Error("zero products accepted")
	}
	if err := run([]string{"-badflag"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
