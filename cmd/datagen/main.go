// Command datagen generates synthetic Amazon-like review corpora and writes
// them as JSON, printing Table-2 style statistics for each.
//
// Usage:
//
//	datagen -all -outdir data            # the three default categories
//	datagen -category Toy -products 200 -seed 7 -out toy.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	var (
		category = fs.String("category", "Cellphone", "category: Cellphone, Toy, or Clothing")
		products = fs.Int("products", 120, "number of products")
		mean     = fs.Float64("reviews", 15, "mean reviews per product")
		alsoMean = fs.Float64("alsobought", 7, "mean also-bought list length")
		seed     = fs.Int64("seed", 1, "generation seed")
		out      = fs.String("out", "", "output JSON path (default <category>.json)")
		all      = fs.Bool("all", false, "generate the three default corpora")
		outdir   = fs.String("outdir", ".", "output directory for -all")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *all {
		var rows []dataset.Stats
		for _, cfg := range datagen.DefaultConfigs(*seed) {
			corpus, err := datagen.Generate(cfg)
			if err != nil {
				return err
			}
			path := filepath.Join(*outdir, strings.ToLower(cfg.Category.Name)+".json")
			if err := model.SaveCorpus(corpus, path); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "wrote %s\n", path)
			rows = append(rows, dataset.Compute(corpus))
		}
		dataset.WriteTable(stdout, rows)
		return nil
	}

	cat, ok := lexicon.CategoryByName(*category)
	if !ok {
		return fmt.Errorf("unknown category %q", *category)
	}
	corpus, err := datagen.Generate(datagen.Config{
		Category:       cat,
		Products:       *products,
		Reviewers:      3 * *products,
		MeanReviews:    *mean,
		MeanAlsoBought: *alsoMean,
		Seed:           *seed,
	})
	if err != nil {
		return err
	}
	path := *out
	if path == "" {
		path = strings.ToLower(cat.Name) + ".json"
	}
	if err := model.SaveCorpus(corpus, path); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", path)
	dataset.WriteTable(stdout, []dataset.Stats{dataset.Compute(corpus)})
	return nil
}
