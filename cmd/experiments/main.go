// Command experiments regenerates the paper's tables and figures on the
// synthetic workload.
//
// Usage:
//
//	experiments -all                       # everything, medium workload
//	experiments -table 3 -size large
//	experiments -figure 5a
//	experiments -casestudies
//	experiments -ablation hks
//	experiments -all -csv results -svg results
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"comparesets/internal/experiments"
	"comparesets/internal/plot"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == errNothingRequested:
		flag.Usage()
		os.Exit(2)
	case err != nil:
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

var errNothingRequested = fmt.Errorf("no table, figure, ablation, or -all requested")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		table       = fs.String("table", "", "table to regenerate: 2, 3, 4, 5, 6, 7, ext")
		figure      = fs.String("figure", "", "figure to regenerate: 5a, 5b, 6, 7, 11")
		casestudies = fs.Bool("casestudies", false, "print the case studies (Figures 8-10)")
		ablation    = fs.String("ablation", "", "ablation to run: hks, passes, lambda")
		tune        = fs.Bool("tune", false, "run the §4.1.4 hyperparameter tuning procedure")
		all         = fs.Bool("all", false, "regenerate everything")
		size        = fs.String("size", "medium", "workload size: small, medium, large")
		seed        = fs.Int64("seed", 42, "workload seed")
		budget      = fs.Duration("budget", 5*time.Second, "exact-solver time budget per instance")
		maxComp     = fs.Int("maxcomp", 10, "max comparative items per instance (0 = full lists)")
		csvDir      = fs.String("csv", "", "also write machine-readable CSVs into this directory")
		svgDir      = fs.String("svg", "", "also render figures as SVG charts into this directory")
		surveysDir  = fs.String("surveys", "", "write blind user-study survey sheets (§4.5) into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	for _, dir := range []string{*csvDir, *svgDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
	}
	saveCSV := func(name string, r experiments.CSVRows) error {
		if *csvDir == "" {
			return nil
		}
		path := filepath.Join(*csvDir, name+".csv")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := experiments.WriteCSV(f, r); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(wrote %s)\n", path)
		return nil
	}
	saveSVG := func(name string, c plot.Chart) error {
		if *svgDir == "" {
			return nil
		}
		path := filepath.Join(*svgDir, name+".svg")
		if err := c.Save(path); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "(wrote %s)\n", path)
		return nil
	}

	var sz experiments.Size
	switch *size {
	case "small":
		sz = experiments.Small
	case "medium":
		sz = experiments.Medium
	case "large":
		sz = experiments.Large
	default:
		return fmt.Errorf("unknown size %q", *size)
	}

	fmt.Fprintf(stdout, "building workload (size=%s, seed=%d)...\n", *size, *seed)
	start := time.Now()
	w, err := experiments.NewWorkload(*seed, sz, *maxComp)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload ready in %.1fs\n\n", time.Since(start).Seconds())

	section := func(title string) {
		fmt.Fprintf(stdout, "\n================ %s ================\n", title)
	}
	want := func(t string) bool { return *all || *table == t }
	wantFig := func(f string) bool { return *all || *figure == f }
	wantAbl := func(a string) bool { return *all || *ablation == a }
	ran := false

	if want("2") {
		section("Table 2: dataset statistics")
		t2 := experiments.Table2(w)
		t2.Render(stdout)
		if err := saveCSV("table2", t2); err != nil {
			return err
		}
		ran = true
	}
	if want("3") {
		section("Table 3: review alignment vs baselines")
		res, err := experiments.Table3(w, []int{3, 5, 10})
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("table3", res); err != nil {
			return err
		}
		ran = true
	}
	if want("4") {
		section("Table 4: opinion definitions (Cellphone, m=3; efm-learned column is this repo's §4.2.3 extension)")
		res, err := experiments.Table4WithLearned(w, 0, 3)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("table4", res); err != nil {
			return err
		}
		ran = true
	}
	if want("5") {
		section("Table 5: TargetHkS optimal vs approximation")
		res, err := experiments.Table5(w, []int{3, 5, 10}, *budget)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("table5", res); err != nil {
			return err
		}
		ran = true
	}
	if want("6") {
		section("Table 6: core-list review alignment")
		res, err := experiments.Table6(w, []int{3, 5, 10}, *budget)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("table6", res); err != nil {
			return err
		}
		ran = true
	}
	if want("7") {
		section("Table 7: simulated user study")
		res, err := experiments.Table7(w, 3, 5, *budget)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("table7", res); err != nil {
			return err
		}
		ran = true
	}
	if want("ext") {
		section("Extended comparison (beyond paper): alignment + §5.1 family axes")
		res, err := experiments.TableExtended(w, 3)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("table_extended", res); err != nil {
			return err
		}
		ran = true
	}

	sweep := []float64{0.01, 0.1, 1, 10, 100}
	if wantFig("5a") {
		section("Figure 5a: ROUGE-L of CompaReSetS with varying λ (m=3)")
		res, err := experiments.Figure5a(w, sweep, 3)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("figure5a", res); err != nil {
			return err
		}
		if err := saveSVG("figure5a", res.Chart()); err != nil {
			return err
		}
		ran = true
	}
	if wantFig("5b") {
		section("Figure 5b: ROUGE-L of CompaReSetS+ with varying μ (λ=1, m=3)")
		res, err := experiments.Figure5b(w, sweep, 3)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("figure5b", res); err != nil {
			return err
		}
		if err := saveSVG("figure5b", res.Chart()); err != nil {
			return err
		}
		ran = true
	}
	if wantFig("6") {
		section("Figure 6: ROUGE-L gap over Random vs #reviews")
		for ds := range w.Corpora {
			res, err := experiments.Figure6(w, ds, 3, 4)
			if err != nil {
				return err
			}
			res.Render(stdout)
			if err := saveCSV(fmt.Sprintf("figure6_%s", res.Dataset), res); err != nil {
				return err
			}
			for ci, c := range res.Charts() {
				if err := saveSVG(fmt.Sprintf("figure6_%s_%c", res.Dataset, 'a'+ci), c); err != nil {
					return err
				}
			}
		}
		ran = true
	}
	if wantFig("7") {
		section("Figure 7: runtime vs number of comparative items (Cellphone)")
		res, err := experiments.Figure7(w, 0, []int{5, 10, 15, 20, 25}, []int{3, 5, 10}, 5)
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("figure7", res); err != nil {
			return err
		}
		for _, m := range []int{3, 5, 10} {
			if err := saveSVG(fmt.Sprintf("figure7_m%d", m), res.Chart(m)); err != nil {
				return err
			}
		}
		ran = true
	}
	if wantFig("11") {
		section("Figure 11: information loss vs m (Cellphone)")
		res, err := experiments.Figure11(w, 0, []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
		if err != nil {
			return err
		}
		res.Render(stdout)
		if err := saveCSV("figure11", res); err != nil {
			return err
		}
		for ci, c := range res.Charts() {
			if err := saveSVG(fmt.Sprintf("figure11_%c", 'a'+ci), c); err != nil {
				return err
			}
		}
		ran = true
	}

	if *casestudies || *all {
		section("Case studies (Figures 8-10)")
		studies, err := experiments.CaseStudies(w, *budget)
		if err != nil {
			return err
		}
		for _, cs := range studies {
			cs.Render(stdout)
		}
		ran = true
	}
	if *tune || *all {
		section("Hyperparameter tuning (§4.1.4): λ then μ over the candidate set")
		res, err := experiments.Tune(w, sweep, 3)
		if err != nil {
			return err
		}
		res.Render(stdout)
		ran = true
	}

	if *surveysDir != "" {
		section("User-study survey sheets (§4.5)")
		if err := os.MkdirAll(*surveysDir, 0o755); err != nil {
			return err
		}
		surveys, err := experiments.Surveys(w, *budget)
		if err != nil {
			return err
		}
		for _, s := range surveys {
			sheet, err := os.Create(filepath.Join(*surveysDir, fmt.Sprintf("survey%d.md", s.Number)))
			if err != nil {
				return err
			}
			s.Render(sheet)
			if err := sheet.Close(); err != nil {
				return err
			}
			key, err := os.Create(filepath.Join(*surveysDir, fmt.Sprintf("survey%d_key.txt", s.Number)))
			if err != nil {
				return err
			}
			s.RenderAnswerKey(key)
			if err := key.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "(wrote survey %d sheet and key)\n", s.Number)
		}
		ran = true
	}
	if wantAbl("hks") {
		section("Ablation: TargetHkS solvers under a time budget (random graphs)")
		res := experiments.HkSStress(*seed, []int{10, 20, 30, 40}, 10, 5, 5*time.Millisecond)
		res.Render(stdout)
		if err := saveCSV("ablation_hks", res); err != nil {
			return err
		}
		if err := saveSVG("ablation_hks", res.Chart()); err != nil {
			return err
		}
		ran = true
	}
	if wantAbl("passes") {
		section("Ablation: CompaReSetS+ alternating sweeps")
		for ds := range w.Corpora {
			res, err := experiments.PassesAblation(w, ds, 3, []int{1, 2, 3})
			if err != nil {
				return err
			}
			res.Render(stdout)
			if err := saveCSV(fmt.Sprintf("ablation_passes_%s", res.Dataset), res); err != nil {
				return err
			}
		}
		ran = true
	}
	if wantAbl("lambda") {
		section("Ablation: CompaReSetS with and without the Γ aspect term (λ=1 vs λ=0)")
		rows, err := experiments.LambdaAblation(w, 3)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "%-10s %12s %12s\n", "Dataset", "with Γ", "without Γ")
		for _, row := range rows {
			fmt.Fprintf(stdout, "%-10s %12.2f %12.2f\n", row.Dataset, row.WithGamma, row.NoGamma)
		}
		ran = true
	}
	if !ran {
		return errNothingRequested
	}
	return nil
}
