package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTable2WithCSV(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-table", "2", "-size", "small", "-csv", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "#Product") {
		t.Errorf("output = %s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "table2.csv")); err != nil {
		t.Errorf("table2.csv missing: %v", err)
	}
}

func TestRunFigure11WithSVG(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-figure", "11", "-size", "small", "-svg", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"figure11_a.svg", "figure11_b.svg"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Errorf("%s missing: %v", name, err)
		}
	}
}

func TestRunAblationLambda(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ablation", "lambda", "-size", "small"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "without Γ") {
		t.Errorf("output = %s", buf.String())
	}
}

func TestRunAllSmallSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full -all run skipped in -short mode")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	err := run([]string{"-all", "-size", "small", "-budget", "1s", "-csv", dir, "-svg", dir}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Table 3", "Table 4", "Table 5", "Table 6", "Table 7",
		"Extended comparison", "Figure 5a", "Figure 5b", "Figure 6",
		"Figure 7", "Figure 11", "Case studies", "tuning",
		"Ablation: TargetHkS", "Ablation: CompaReSetS+", "Γ aspect term",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-all output missing %q", want)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 20 {
		t.Errorf("only %d artifacts written", len(entries))
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-size", "galactic"}, &buf); err == nil {
		t.Error("unknown size accepted")
	}
	if err := run([]string{"-size", "small"}, &buf); err != errNothingRequested {
		t.Errorf("empty request error = %v", err)
	}
	if err := run([]string{"-nope"}, &buf); err == nil {
		t.Error("bad flag accepted")
	}
}
