package main

import (
	"log"
	"strings"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	samples := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		q    float64
		want float64
	}{
		{0.5, 3}, {0.99, 5}, {1, 5}, {0.01, 1},
	}
	for _, c := range cases {
		if got := percentile(samples, c.q); got != c.want {
			t.Errorf("percentile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := percentile(nil, 0.99); got != 0 {
		t.Errorf("empty percentile = %v, want 0", got)
	}
}

func TestParseMetricsAndDelta(t *testing.T) {
	before, err := parseMetrics(strings.NewReader(`
# HELP comparesets_cache_hits_total Cache lookups answered from the cache.
# TYPE comparesets_cache_hits_total counter
comparesets_cache_hits_total{cache="servecache"} 10
comparesets_cache_hits_total{cache="stalecache"} 3
comparesets_encode_bytes_total 100
`))
	if err != nil {
		t.Fatal(err)
	}
	after, err := parseMetrics(strings.NewReader(`
comparesets_cache_hits_total{cache="servecache"} 25
comparesets_cache_hits_total{cache="stalecache"} 4
comparesets_encode_bytes_total 900
`))
	if err != nil {
		t.Fatal(err)
	}
	if d := after.delta(before, `comparesets_cache_hits_total{cache="servecache"}`); d != 15 {
		t.Errorf("labeled delta = %d, want 15", d)
	}
	// A bare family name sums across label sets.
	if d := after.delta(before, "comparesets_cache_hits_total"); d != 16 {
		t.Errorf("family delta = %d, want 16", d)
	}
	if d := after.delta(before, "comparesets_encode_bytes_total"); d != 800 {
		t.Errorf("bare delta = %d, want 800", d)
	}
	if d := after.delta(before, "comparesets_absent_total"); d != 0 {
		t.Errorf("absent series delta = %d, want 0", d)
	}
}

func TestGate(t *testing.T) {
	dir := t.TempDir()
	writeBaseline := func(p99 float64) string {
		path := dir + "/baseline.json"
		report := Report{Runs: []RateRun{{Rate: 100, P99MS: p99}}}
		if err := writeReportFile(path, report); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cur := Report{Runs: []RateRun{{Rate: 100, P99MS: 10}}}
	if err := gate(writeBaseline(9), cur, 0.25, 2, 250); err != nil {
		t.Errorf("10ms vs 9ms is within 25%%: %v", err)
	}
	if err := gate(writeBaseline(5), cur, 0.25, 2, 250); err == nil {
		t.Error("10ms vs 5ms should fail the 25% gate")
	}
	// Both under the floor: skipped even at a huge relative regression.
	tiny := Report{Runs: []RateRun{{Rate: 100, P99MS: 1.5}}}
	if err := gate(writeBaseline(0.1), tiny, 0.25, 2, 250); err != nil {
		t.Errorf("sub-floor latencies should not gate: %v", err)
	}
	// Rates absent from the baseline are ignored.
	other := Report{Runs: []RateRun{{Rate: 400, P99MS: 50}}}
	if err := gate(writeBaseline(5), other, 0.25, 2, 250); err != nil {
		t.Errorf("unmatched rate should not gate: %v", err)
	}
	// Stages are keyed by (mode, rate): a "direct" stage never gates against
	// a "router" baseline at the same rate.
	modal := Report{Runs: []RateRun{{Mode: "direct", Rate: 100, P99MS: 50}}}
	if err := gate(writeBaseline(5), modal, 0.25, 2, 250); err != nil {
		t.Errorf("mismatched mode should not gate: %v", err)
	}
}

func TestGateWarmCold(t *testing.T) {
	dir := t.TempDir()
	writeWarmBaseline := func(warmP99US float64) string {
		path := dir + "/baseline.json"
		report := Report{WarmCold: &WarmCold{WarmP99US: warmP99US}}
		if err := writeReportFile(path, report); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cur := Report{WarmCold: &WarmCold{WarmP99US: 1000}}
	if err := gate(writeWarmBaseline(900), cur, 0.25, 2, 250); err != nil {
		t.Errorf("1000µs vs 900µs warm p99 is within 25%%: %v", err)
	}
	if err := gate(writeWarmBaseline(500), cur, 0.25, 2, 250); err == nil {
		t.Error("1000µs vs 500µs warm p99 should fail the 25% gate")
	}
	// Both under the microsecond floor: timer noise, skipped.
	fast := Report{WarmCold: &WarmCold{WarmP99US: 200}}
	if err := gate(writeWarmBaseline(50), fast, 0.25, 2, 250); err != nil {
		t.Errorf("sub-floor warm latencies should not gate: %v", err)
	}
	// A baseline without a probe does not gate the warm path.
	if err := gate(writeWarmBaseline(0), cur, 0.25, 2, 250); err != nil {
		t.Errorf("absent warm baseline should not gate: %v", err)
	}
}

// TestLoadgenSmoke runs the generator end to end against an in-process
// server: discovery, a short mixed read/write stage, and the metrics diff.
func TestLoadgenSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("starts a full in-process server")
	}
	logger := log.New(testWriter{t}, "loadgen: ", 0)
	ts, err := selfServe(1, 0, logger)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	targets, err := discoverTargets(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) == 0 {
		t.Fatal("no targets discovered")
	}
	run, err := runStage([]string{ts.URL}, targets, 40, 500*time.Millisecond, 0.2, 1.2, 1, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if run.Sent == 0 || run.OK == 0 {
		t.Fatalf("stage did no work: %+v", run)
	}
	if run.Errors > 0 {
		t.Fatalf("stage saw %d errors: %+v", run.Errors, run)
	}
	if run.P99MS <= 0 || run.P50MS > run.P99MS {
		t.Fatalf("implausible percentiles: %+v", run)
	}
	if run.EncodeByte == 0 {
		t.Fatalf("hand encoder produced no bytes: %+v", run)
	}
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}
