// Command loadgen drives open-loop load at the select endpoint and records
// the latency and accelerator curves as JSON, so serving-edge changes leave
// a reviewable trajectory in the repo the same way BENCH_core.json does for
// the kernels.
//
// Item popularity is zipfian — a handful of hot targets absorb most of the
// traffic, which is what the select result cache is sized for — and arrival
// is open-loop: requests launch on a fixed schedule derived from the target
// rate whether or not earlier requests have returned, so a slow server
// accumulates in-flight work and the tail shows it (closed-loop generators
// hide exactly that). A tunable fraction of requests are corpus writes
// (review appends), which invalidate the touched item's cached selections
// and keep the read path honest under churn.
//
// With no -addr, loadgen serves itself: it synthesizes the three default
// corpora and runs the full service handler in-process over loopback HTTP,
// which is how the CI smoke stays hermetic. Against -addr it is a plain
// HTTP client; a comma-separated -addr list round-robins requests across
// the targets (a router plus direct replicas, or a replica set) and the
// report gains per-target sent/ok/shed/error/availability columns.
// -min-availability gates the run on the fraction of 200s — the
// chaos-cluster target uses it to assert the routing tier masks a killed
// replica.
//
// -cluster N stands up N in-process worker replicas behind an in-process
// router and compares the two serving paths: a warm/cold probe measures the
// router's edge-cache fast path per request (cold proxied solve vs warm
// edge replay, recorded as Report.WarmCold with the edge hit ratio), then
// every rate stage runs twice — once through the router (mode "router"),
// once round-robin against the replicas (mode "direct") — which is what
// BENCH_router.json records. -baseline gating keys stages by (mode, rate)
// and additionally gates the warm-hit p99 against -warm-floor-us noise.
//
// After each rate stage it scrapes /metrics and differences the counters,
// recording cache hit rate, shed count, store page cache traffic, and
// encoder bytes next to the client-side p50/p90/p99. -baseline compares the
// run against a committed BENCH_load.json and fails (exit 1) when any
// rate's p99 regresses more than -max-regress over the baseline — the CI
// perf gate.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"comparesets/internal/cluster"
	"comparesets/internal/datagen"
	"comparesets/internal/model"
	"comparesets/internal/service"
)

// target is one (category, item) the generator can reference.
type target struct {
	category string
	item     string
}

// TargetStats is one -addr target's share of a rate stage — the per-backend
// error and availability breakdown that makes multi-target (router or
// replica-set) runs reviewable.
type TargetStats struct {
	Addr         string  `json:"addr"`
	Sent         int     `json:"sent"`
	OK           int     `json:"ok"`
	Shed         int     `json:"shed"`
	Errors       int     `json:"errors"`
	Availability float64 `json:"availability"`
}

// RateRun is the recorded outcome of one rate stage.
type RateRun struct {
	// Mode tags cluster-comparison stages: "router" (through the routing
	// tier and its edge cache) or "direct" (round-robin to the replicas).
	// Empty outside -cluster runs.
	Mode     string  `json:"mode,omitempty"`
	Rate     float64 `json:"rate_rps"`
	Sent     int     `json:"sent"`
	OK       int     `json:"ok"`
	Shed     int     `json:"shed"`
	Errors   int     `json:"errors"`
	Writes   int     `json:"writes"`
	ShedRate float64 `json:"shed_rate"`
	// Availability is the fraction of requests answered 200 — the headline
	// number a chaos run gates on.
	Availability float64 `json:"availability"`
	P50MS        float64 `json:"p50_ms"`
	P90MS        float64 `json:"p90_ms"`
	P99MS        float64 `json:"p99_ms"`
	MaxMS        float64 `json:"max_ms"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMiss    uint64  `json:"cache_misses"`
	CacheRate    float64 `json:"cache_hit_rate"`
	PageHits     uint64  `json:"store_page_hits"`
	PageMiss     uint64  `json:"store_page_misses"`
	EncodeByte   uint64  `json:"encode_bytes"`
	// Edge counters are populated when the scraped target is a router:
	// warm reads answered at the routing tier without an upstream exchange.
	EdgeHits uint64  `json:"edge_hits,omitempty"`
	EdgeMiss uint64  `json:"edge_misses,omitempty"`
	EdgeRate float64 `json:"edge_hit_rate,omitempty"`
	// PerTarget breaks the stage down by -addr target when more than one
	// was given (omitted for single-target runs to keep the schema stable).
	PerTarget []TargetStats `json:"per_target,omitempty"`
}

// WarmCold is the -cluster mode's per-request edge-cache probe: the same
// select issued cold (proxied through to a worker's full solve) and warm
// (replayed from the router's edge cache), over a spread of targets.
type WarmCold struct {
	Probes    int     `json:"probes"`
	ColdP50MS float64 `json:"cold_p50_ms"`
	ColdP99MS float64 `json:"cold_p99_ms"`
	WarmP50US float64 `json:"warm_p50_us"`
	WarmP99US float64 `json:"warm_p99_us"`
	// SpeedupP50 is cold p50 over warm p50 — the headline edge-cache win.
	SpeedupP50 float64 `json:"speedup_p50"`
	// HitRatio is edge hits / (hits + misses) across the probe phase.
	HitRatio float64 `json:"edge_hit_ratio"`
}

// Report is the BENCH_load.json / BENCH_router.json document.
type Report struct {
	GoVersion  string  `json:"go_version"`
	NumCPU     int     `json:"num_cpu"`
	Generated  string  `json:"generated"`
	SelfServe  bool    `json:"self_serve"`
	Duration   string  `json:"duration_per_rate"`
	WriteRatio float64 `json:"write_ratio"`
	ZipfS      float64 `json:"zipf_s"`
	Targets    int     `json:"targets"`
	// Cluster is the -cluster replica count (0 outside cluster runs).
	Cluster  int       `json:"cluster,omitempty"`
	WarmCold *WarmCold `json:"warm_cold,omitempty"`
	Runs     []RateRun `json:"runs"`
}

func main() {
	var (
		addr        = flag.String("addr", "", "comma-separated server base URLs, round-robin (empty = serve the synthetic corpora in-process)")
		rates       = flag.String("rates", "50,100,200", "comma-separated open-loop arrival rates in req/s")
		duration    = flag.Duration("duration", 3*time.Second, "wall-clock length of each rate stage")
		writeRatio  = flag.Float64("write-ratio", 0, "fraction of requests that append a review instead of selecting")
		zipfS       = flag.Float64("zipf-s", 1.2, "zipf exponent of target popularity (>1)")
		seed        = flag.Int64("seed", 1, "rng seed (target draws, write payloads, self-serve corpora)")
		m           = flag.Int("m", 3, "reviews selected per item")
		maxInfl     = flag.Int("max-inflight", 0, "self-serve admission bound (0 = unlimited; >0 exercises shedding)")
		out         = flag.String("out", "BENCH_load.json", "output JSON path")
		baseline    = flag.String("baseline", "", "committed BENCH_load.json to gate against (empty = no gate)")
		maxRegress  = flag.Float64("max-regress", 0.25, "max allowed fractional p99 regression vs -baseline")
		floorMS     = flag.Float64("regress-floor-ms", 2, "ignore regressions while both p99s are under this many ms")
		minAvail    = flag.Float64("min-availability", 0, "fail unless every rate's availability (200s/sent) reaches this fraction (0 = no gate)")
		clusterN    = flag.Int("cluster", 0, "serve N in-process replicas behind an in-process router and compare routed vs direct serving (requires empty -addr)")
		warmFloorUS = flag.Float64("warm-floor-us", 250, "ignore warm-hit p99 regressions while both sit under this many microseconds")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "loadgen: ", log.LstdFlags)

	rateList, err := parseRates(*rates)
	if err != nil {
		logger.Fatal(err)
	}

	var report Report
	if *clusterN > 0 {
		if *addr != "" {
			logger.Fatal("-cluster and -addr are mutually exclusive")
		}
		if *clusterN < 2 {
			logger.Fatal("-cluster needs at least 2 replicas to compare against")
		}
		report, err = runClusterComparison(*clusterN, rateList, *duration, *writeRatio, *zipfS, *seed, *m, *maxInfl, logger)
		if err != nil {
			logger.Fatal(err)
		}
	} else {
		var bases []string
		for _, a := range strings.Split(*addr, ",") {
			if a = strings.TrimSpace(a); a != "" {
				bases = append(bases, strings.TrimRight(a, "/"))
			}
		}
		if len(bases) == 0 {
			ts, err := selfServe(*seed, *maxInfl, logger)
			if err != nil {
				logger.Fatal(err)
			}
			defer ts.Close()
			bases = []string{ts.URL}
		}

		targets, err := discoverTargets(bases[0])
		if err != nil {
			logger.Fatal(err)
		}
		if len(targets) == 0 {
			logger.Fatal("no qualifying targets on the server")
		}
		logger.Printf("%d targets across the loaded corpora", len(targets))

		report = Report{
			GoVersion:  runtime.Version(),
			NumCPU:     runtime.NumCPU(),
			Generated:  time.Now().UTC().Format(time.RFC3339),
			SelfServe:  *addr == "",
			Duration:   duration.String(),
			WriteRatio: *writeRatio,
			ZipfS:      *zipfS,
			Targets:    len(targets),
		}
		for _, rate := range rateList {
			run, err := runStage(bases, targets, rate, *duration, *writeRatio, *zipfS, *seed, *m, "")
			if err != nil {
				logger.Fatal(err)
			}
			logStage(logger, run)
			report.Runs = append(report.Runs, run)
		}
	}

	if err := writeReportFile(*out, report); err != nil {
		logger.Fatal(err)
	}
	logger.Printf("wrote %s", *out)

	if *baseline != "" {
		if err := gate(*baseline, report, *maxRegress, *floorMS, *warmFloorUS); err != nil {
			logger.Fatal(err)
		}
		logger.Printf("p99 within %.0f%% of %s at every rate", 100**maxRegress, *baseline)
	}
	if *minAvail > 0 {
		for _, run := range report.Runs {
			if run.Availability < *minAvail {
				logger.Fatalf("availability gate: %.4f at %.0f req/s, need >= %.4f",
					run.Availability, run.Rate, *minAvail)
			}
		}
		logger.Printf("availability >= %.2f%% at every rate", 100**minAvail)
	}
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		rate, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("bad rate %q", f)
		}
		out = append(out, rate)
	}
	return out, nil
}

func logStage(logger *log.Logger, run RateRun) {
	mode := run.Mode
	if mode == "" {
		mode = "serve"
	}
	logger.Printf("%s %.0f req/s: sent %d ok %d shed %d avail %.2f%% p50 %.2fms p99 %.2fms cache %.0f%% edge %.0f%%",
		mode, run.Rate, run.Sent, run.OK, run.Shed, 100*run.Availability, run.P50MS, run.P99MS,
		100*run.CacheRate, 100*run.EdgeRate)
}

// runClusterComparison is the -cluster mode: N identical in-process replicas
// behind an in-process router, a warm/cold edge probe, then every rate
// staged twice — through the router and directly against the replicas. The
// router stages run first so direct-mode writes (which land on single
// replicas and diverge them) cannot poison the routed measurements.
func runClusterComparison(n int, rates []float64, duration time.Duration, writeRatio, zipfS float64, seed int64, m, maxInflight int, logger *log.Logger) (Report, error) {
	workerURLs := make([]string, n)
	for i := 0; i < n; i++ {
		// Same seed for every replica: identical corpora, as a real replica
		// set bootstrapped from the same snapshot would hold.
		ts, err := selfServe(seed, maxInflight, logger)
		if err != nil {
			return Report{}, err
		}
		defer ts.Close()
		workerURLs[i] = ts.URL
	}
	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Backends:       workerURLs,
		HealthInterval: 100 * time.Millisecond,
		Logger:         logger,
	})
	if err != nil {
		return Report{}, err
	}
	rt.Start()
	defer rt.Stop()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()

	targets, err := discoverTargets(routerTS.URL)
	if err != nil {
		return Report{}, err
	}
	if len(targets) == 0 {
		return Report{}, fmt.Errorf("no qualifying targets behind the router")
	}
	logger.Printf("cluster: %d replicas behind the router, %d targets", n, len(targets))

	report := Report{
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		SelfServe:  true,
		Duration:   duration.String(),
		WriteRatio: writeRatio,
		ZipfS:      zipfS,
		Targets:    len(targets),
		Cluster:    n,
	}
	wc, err := probeWarmCold(routerTS.URL, targets, m)
	if err != nil {
		return Report{}, err
	}
	report.WarmCold = wc
	logger.Printf("warm/cold probe: %d targets, cold p50 %.2fms, warm p50 %.0fµs (%.0fx), edge hit ratio %.2f",
		wc.Probes, wc.ColdP50MS, wc.WarmP50US, wc.SpeedupP50, wc.HitRatio)

	for _, rate := range rates {
		run, err := runStage([]string{routerTS.URL}, targets, rate, duration, writeRatio, zipfS, seed, m, "router")
		if err != nil {
			return Report{}, err
		}
		logStage(logger, run)
		report.Runs = append(report.Runs, run)
	}
	for _, rate := range rates {
		run, err := runStage(workerURLs, targets, rate, duration, writeRatio, zipfS, seed, m, "direct")
		if err != nil {
			return Report{}, err
		}
		logStage(logger, run)
		report.Runs = append(report.Runs, run)
	}
	return report, nil
}

// probeWarmCold measures the edge cache per request over a spread of
// targets: one cold select (proxied through to a full worker solve), then
// the identical select again (replayed from the edge).
func probeWarmCold(base string, targets []target, m int) (*WarmCold, error) {
	probes := len(targets)
	if probes > 40 {
		probes = 40
	}
	client := &http.Client{Timeout: 30 * time.Second}
	before, err := scrapeMetrics(base)
	if err != nil {
		return nil, err
	}
	var coldMS, warmUS []float64
	for i := 0; i < probes; i++ {
		tg := targets[i]
		t0 := time.Now()
		status, err := fireSelect(client, base, tg, m)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("cold probe %s/%s: status %d err %v", tg.category, tg.item, status, err)
		}
		coldMS = append(coldMS, float64(time.Since(t0).Microseconds())/1000)
		t0 = time.Now()
		status, err = fireSelect(client, base, tg, m)
		if err != nil || status != http.StatusOK {
			return nil, fmt.Errorf("warm probe %s/%s: status %d err %v", tg.category, tg.item, status, err)
		}
		warmUS = append(warmUS, float64(time.Since(t0).Microseconds()))
	}
	after, err := scrapeMetrics(base)
	if err != nil {
		return nil, err
	}
	wc := &WarmCold{
		Probes:    probes,
		ColdP50MS: percentile(coldMS, 0.50),
		ColdP99MS: percentile(coldMS, 0.99),
		WarmP50US: percentile(warmUS, 0.50),
		WarmP99US: percentile(warmUS, 0.99),
	}
	if wc.WarmP50US > 0 {
		wc.SpeedupP50 = wc.ColdP50MS * 1000 / wc.WarmP50US
	}
	hits := after.delta(before, `comparesets_cache_hits_total{cache="router_edge"}`)
	misses := after.delta(before, `comparesets_cache_misses_total{cache="router_edge"}`)
	if hits+misses > 0 {
		wc.HitRatio = float64(hits) / float64(hits+misses)
	}
	return wc, nil
}

// writeReportFile marshals the report with a trailing newline.
func writeReportFile(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}

// selfServe synthesizes the default corpora and serves the full service
// handler over loopback.
func selfServe(seed int64, maxInflight int, logger *log.Logger) (*httptest.Server, error) {
	corpora := map[string]*model.Corpus{}
	for _, cfg := range datagen.DefaultConfigs(seed) {
		c, err := datagen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		corpora[c.Category] = c
	}
	srv := service.NewWithOptions(corpora, logger, service.Options{MaxInflight: maxInflight})
	return httptest.NewServer(srv.Handler()), nil
}

// discoverTargets lists every qualifying target of every loaded category.
func discoverTargets(base string) ([]target, error) {
	var cats []struct {
		Name string `json:"name"`
	}
	if err := getJSON(base+"/api/v1/categories", &cats); err != nil {
		return nil, fmt.Errorf("listing categories: %w", err)
	}
	var out []target
	for _, c := range cats {
		var ids []string
		if err := getJSON(base+"/api/v1/targets?category="+c.Name, &ids); err != nil {
			return nil, fmt.Errorf("listing %s targets: %w", c.Name, err)
		}
		for _, id := range ids {
			out = append(out, target{category: c.Name, item: id})
		}
	}
	return out, nil
}

func getJSON(url string, v any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// stageStats aggregates request outcomes across the stage's goroutines.
type stageStats struct {
	mu        sync.Mutex
	latencies []float64 // ms, successful requests only
	ok        int
	shed      int
	errors    int
	writes    int
	perTarget map[string]*TargetStats
}

// record books one outcome against the totals and its -addr target.
func (st *stageStats) record(base string, status int, err error, isWrite bool, elapsedMS float64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	ts := st.perTarget[base]
	if ts == nil {
		ts = &TargetStats{Addr: base}
		st.perTarget[base] = ts
	}
	ts.Sent++
	if isWrite {
		st.writes++
	}
	switch {
	case err != nil:
		st.errors++
		ts.Errors++
	case status == http.StatusServiceUnavailable:
		st.shed++
		ts.Shed++
	case status == http.StatusOK:
		st.ok++
		ts.OK++
		st.latencies = append(st.latencies, elapsedMS)
	default:
		st.errors++
		ts.Errors++
	}
}

// runStage fires duration's worth of requests at the given open-loop rate,
// round-robin across the bases, and differences the summed /metrics of
// every base around the stage. mode tags cluster-comparison stages ("router"
// / "direct"); it is folded into write IDs so router-fanned-out appends and
// direct appends of the same (seed, rate) never collide on a review ID.
func runStage(bases []string, targets []target, rate float64, duration time.Duration, writeRatio, zipfS float64, seed int64, m int, mode string) (RateRun, error) {
	before, err := scrapeAll(bases)
	if err != nil {
		return RateRun{}, err
	}
	rng := rand.New(rand.NewSource(seed + int64(rate)))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(len(targets)-1))
	modeTag := ""
	if mode != "" {
		modeTag = mode + "-"
	}

	var (
		st    = stageStats{perTarget: map[string]*TargetStats{}}
		wg    sync.WaitGroup
		start = time.Now()
		n     = int(rate * duration.Seconds())
		gap   = time.Duration(float64(time.Second) / rate)
	)
	client := &http.Client{Timeout: 30 * time.Second}
	for i := 0; i < n; i++ {
		// The draws happen on the schedule goroutine so the rng is used
		// single-threaded; the launch time is fixed by the schedule alone.
		tg := targets[zipf.Uint64()]
		base := bases[i%len(bases)]
		isWrite := rng.Float64() < writeRatio
		// The mode and rate are part of the ID so stages never collide on a
		// review.
		writeID := fmt.Sprintf("loadgen-%s%d-%.0f-%d", modeTag, seed, rate, i)
		time.Sleep(time.Until(start.Add(time.Duration(i) * gap)))
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			var status int
			var err error
			if isWrite {
				status, err = fireAppend(client, base, tg, writeID)
			} else {
				status, err = fireSelect(client, base, tg, m)
			}
			elapsed := float64(time.Since(t0).Microseconds()) / 1000
			st.record(base, status, err, isWrite, elapsed)
		}()
	}
	wg.Wait()
	after, err := scrapeAll(bases)
	if err != nil {
		return RateRun{}, err
	}

	run := RateRun{
		Mode: mode,
		Rate: rate, Sent: n, OK: st.ok, Shed: st.shed, Errors: st.errors, Writes: st.writes,
		P50MS: percentile(st.latencies, 0.50),
		P90MS: percentile(st.latencies, 0.90),
		P99MS: percentile(st.latencies, 0.99),
		MaxMS: percentile(st.latencies, 1),
	}
	if n > 0 {
		run.ShedRate = float64(st.shed) / float64(n)
		run.Availability = float64(st.ok) / float64(n)
	}
	if len(bases) > 1 {
		for _, base := range bases {
			ts := st.perTarget[base]
			if ts == nil {
				ts = &TargetStats{Addr: base}
			}
			if ts.Sent > 0 {
				ts.Availability = float64(ts.OK) / float64(ts.Sent)
			}
			run.PerTarget = append(run.PerTarget, *ts)
		}
	}
	hits := after.delta(before, `comparesets_cache_hits_total{cache="servecache"}`)
	misses := after.delta(before, `comparesets_cache_misses_total{cache="servecache"}`)
	run.CacheHits, run.CacheMiss = hits, misses
	if hits+misses > 0 {
		run.CacheRate = float64(hits) / float64(hits+misses)
	}
	run.PageHits = after.delta(before, "comparesets_store_page_hits_total")
	run.PageMiss = after.delta(before, "comparesets_store_page_misses_total")
	run.EncodeByte = after.delta(before, "comparesets_encode_bytes_total")
	eh := after.delta(before, `comparesets_cache_hits_total{cache="router_edge"}`)
	em := after.delta(before, `comparesets_cache_misses_total{cache="router_edge"}`)
	run.EdgeHits, run.EdgeMiss = eh, em
	if eh+em > 0 {
		run.EdgeRate = float64(eh) / float64(eh+em)
	}
	return run, nil
}

func fireSelect(client *http.Client, base string, tg target, m int) (int, error) {
	body, err := json.Marshal(map[string]any{
		"category": tg.category, "target": tg.item,
		"m": m, "lambda": 1, "mu": 1,
	})
	if err != nil {
		return 0, err
	}
	resp, err := client.Post(base+"/api/v1/select", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func fireAppend(client *http.Client, base string, tg target, reviewID string) (int, error) {
	body, err := json.Marshal(map[string]any{
		"reviews": []map[string]any{{
			"id": reviewID, "item_id": tg.item, "reviewer": "loadgen", "rating": 4,
			"text": "Generated load-test review praising the battery.",
			"mentions": []map[string]any{
				{"aspect": 0, "polarity": 0, "score": 0.8},
			},
		}},
	})
	if err != nil {
		return 0, err
	}
	url := fmt.Sprintf("%s/api/v1/corpora/%s/items/%s/reviews", base, tg.category, tg.item)
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// percentile is the nearest-rank percentile of the (unsorted) samples in ms.
func percentile(samples []float64, q float64) float64 {
	if len(samples) == 0 {
		return 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	idx := int(q*float64(len(s))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// counters is one /metrics scrape: series name (with labels) → value.
type counters map[string]float64

// delta returns the counter's increase over an earlier scrape. Series whose
// name has no label set match exactly; a bare name additionally sums every
// labeled series of that family.
func (c counters) delta(before counters, series string) uint64 {
	sum := func(m counters) float64 {
		if v, ok := m[series]; ok {
			return v
		}
		var total float64
		for k, v := range m {
			if strings.HasPrefix(k, series+"{") {
				total += v
			}
		}
		return total
	}
	d := sum(c) - sum(before)
	if d < 0 {
		return 0
	}
	return uint64(d)
}

// scrapeAll sums the metric counters of every base — against a replica set
// the caches and stores are per-process, so the stage deltas are the
// cluster-wide totals.
func scrapeAll(bases []string) (counters, error) {
	total := counters{}
	for _, base := range bases {
		c, err := scrapeMetrics(base)
		if err != nil {
			return nil, err
		}
		for k, v := range c {
			total[k] += v
		}
	}
	return total, nil
}

// scrapeMetrics parses the Prometheus text exposition at base/metrics.
func scrapeMetrics(base string) (counters, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("/metrics: status %d", resp.StatusCode)
	}
	return parseMetrics(resp.Body)
}

func parseMetrics(r io.Reader) (counters, error) {
	out := counters{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue // histograms' +Inf bucket labels etc. still parse; skip oddities
		}
		out[line[:sp]] = v
	}
	return out, sc.Err()
}

// gate fails when any (mode, rate) stage present in both reports regressed
// its p99 by more than maxRegress, unless both p99s sit under floorMS
// (sub-floor latencies are noise-dominated on CI runners). When both reports
// carry a warm/cold probe it additionally gates the warm-hit p99 — the edge
// fast path itself — against warmFloorUS with the same regression budget.
func gate(baselinePath string, current Report, maxRegress, floorMS, warmFloorUS float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline: %w", err)
	}
	stageKey := func(r RateRun) string {
		return r.Mode + "|" + strconv.FormatFloat(r.Rate, 'g', -1, 64)
	}
	byStage := map[string]RateRun{}
	for _, r := range base.Runs {
		byStage[stageKey(r)] = r
	}
	for _, cur := range current.Runs {
		b, ok := byStage[stageKey(cur)]
		if !ok || b.P99MS <= 0 {
			continue
		}
		if cur.P99MS <= floorMS && b.P99MS <= floorMS {
			continue
		}
		if cur.P99MS > b.P99MS*(1+maxRegress) {
			return fmt.Errorf("p99 regression at %s %.0f req/s: %.2fms vs baseline %.2fms (>%.0f%%)",
				cur.Mode, cur.Rate, cur.P99MS, b.P99MS, 100*maxRegress)
		}
	}
	if base.WarmCold != nil && current.WarmCold != nil && base.WarmCold.WarmP99US > 0 {
		bw, cw := base.WarmCold.WarmP99US, current.WarmCold.WarmP99US
		if !(cw <= warmFloorUS && bw <= warmFloorUS) && cw > bw*(1+maxRegress) {
			return fmt.Errorf("warm-hit p99 regression: %.0fµs vs baseline %.0fµs (>%.0f%%)",
				cw, bw, 100*maxRegress)
		}
	}
	return nil
}
