// Command router runs the fault-tolerant routing tier in front of N worker
// replicas (cmd/server processes).
//
// Usage:
//
//	router -addr :8080 -backends http://127.0.0.1:8081,http://127.0.0.1:8082,http://127.0.0.1:8083
//
// The router places categories onto backends by consistent hashing with a
// configurable replication factor, steers idempotent reads (select,
// extract, targets) toward the healthiest replica using each worker's
// /readyz state, retries transport errors and 5xx answers under a shared
// token-bucket budget with jittered backoff, hedges slow reads after a
// p95-derived delay, and rewrites timeout_ms so upstream deadlines shrink
// with elapsed routing time. Review mutations fan out to every replica of
// the shard and their receipts are reconciled; replicas that miss or
// disagree on a write are drained from that category's reads.
//
// Reads of /api/v1/select additionally pass through a receipt-driven edge
// cache: a warm hit replays the exact bytes of a previously proxied
// response without any upstream exchange, identical concurrent cold reads
// coalesce into one upstream flight, and mutation receipts (or any
// divergence/rejoin event) invalidate the affected category's entries.
// -edge-cache-bytes sizes it; -edge-cache-disabled turns the fast path off.
//
// Operational routes: GET /healthz, GET /readyz (cluster view: per-backend
// health + breaker state, retry budget, unroutable categories), GET
// /metrics, GET /debug/vars, GET /debug/pprof/*. GET
// /internal/v1/snapshot/{category} proxies a snapshot stream from a live
// owning replica so joining workers can bootstrap through the router.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"comparesets/internal/cluster"
)

func main() {
	var (
		addr           = flag.String("addr", ":8080", "listen address")
		backends       = flag.String("backends", "", "comma-separated worker base URLs (required)")
		replication    = flag.Int("replication", 0, "replicas per category (0 = all backends)")
		vnodes         = flag.Int("vnodes", 0, "virtual nodes per backend on the hash ring (0 = default 128)")
		maxRetries     = flag.Int("max-retries", 2, "extra read attempts after the first")
		hedgeDelay     = flag.Duration("hedge-delay", 10*time.Millisecond, "hedge arm delay until a backend has a p95")
		hedgeDisabled  = flag.Bool("hedge-disabled", false, "disable hedged reads")
		defaultTimeout = flag.Duration("default-timeout", 30*time.Second, "per-request deadline when the client sends no timeout_ms")
		healthInterval = flag.Duration("health-interval", 500*time.Millisecond, "backend /readyz poll period")
		consecFails    = flag.Int("breaker-consecutive", 5, "consecutive failures that open a backend's breaker")
		errorRate      = flag.Float64("breaker-error-rate", 0.5, "windowed error rate that opens a backend's breaker")
		cooldown       = flag.Duration("breaker-cooldown", 500*time.Millisecond, "open-breaker cooldown before half-open probes")
		retryTokens    = flag.Float64("retry-tokens", 10, "retry budget bucket capacity")
		retryRatio     = flag.Float64("retry-ratio", 0.1, "retry budget deposited per successful request")
		edgeBytes      = flag.Int64("edge-cache-bytes", cluster.DefaultEdgeCacheBytes, "edge response cache budget in bytes")
		edgeDisabled   = flag.Bool("edge-cache-disabled", false, "disable the edge response cache and cold-read coalescing")
		idleConns      = flag.Int("upstream-idle-conns", 0, "pooled idle connections kept per backend (0 = default 32)")
		drain          = flag.Duration("drain", 10*time.Second, "graceful-shutdown window for in-flight requests")
	)
	flag.Parse()
	logger := log.New(os.Stderr, "router: ", log.LstdFlags)

	var addrs []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			addrs = append(addrs, strings.TrimRight(b, "/"))
		}
	}
	if len(addrs) == 0 {
		logger.Fatal("-backends is required (comma-separated worker base URLs)")
	}

	rt, err := cluster.NewRouter(cluster.RouterOptions{
		Backends:       addrs,
		Replication:    *replication,
		VirtualNodes:   *vnodes,
		MaxRetries:     *maxRetries,
		HedgeDelay:     *hedgeDelay,
		HedgeDisabled:  *hedgeDisabled,
		DefaultTimeout: *defaultTimeout,
		HealthInterval: *healthInterval,
		Breaker: cluster.BreakerConfig{
			ConsecutiveFailures: *consecFails,
			ErrorRate:           *errorRate,
			Cooldown:            *cooldown,
		},
		RetryBudget:       cluster.RetryBudgetConfig{Tokens: *retryTokens, Ratio: *retryRatio},
		EdgeCacheBytes:    *edgeBytes,
		EdgeCacheDisabled: *edgeDisabled,
		UpstreamIdleConns: *idleConns,
		Logger:            logger,
	})
	if err != nil {
		logger.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	logger.Printf("routing %d backend(s), replication %d", len(addrs), rt.Ring().Replication())

	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(logger, rt.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			logger.Fatal(err)
		}
	case <-ctx.Done():
		logger.Printf("shutting down (drain %v)", *drain)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Printf("shutdown: %v", err)
		}
	}
	_ = os.Stderr.Sync()
}

func logRequests(logger *log.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		next.ServeHTTP(w, r)
		logger.Print(fmt.Sprintf("%s %s %v", r.Method, r.URL.Path, time.Since(start)))
	})
}
