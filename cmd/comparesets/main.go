// Command comparesets runs comparative review selection on one problem
// instance and prints the result in the case-study layout of the paper's
// Figures 8–10: the target item, the shortlisted comparison items, and each
// item's selected reviews.
//
// Usage:
//
//	comparesets -data cellphone.json -target Cell-p00003 -m 3 -k 3
//	comparesets -category Toy -seed 7 -m 3 -k 3   # generate on the fly
//	comparesets -category Toy -explain -summarize
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"comparesets"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "comparesets:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("comparesets", flag.ContinueOnError)
	var (
		data      = fs.String("data", "", "corpus JSON (from cmd/datagen); empty generates synthetically")
		category  = fs.String("category", "Cellphone", "category when generating")
		products  = fs.Int("products", 60, "corpus size when generating")
		seed      = fs.Int64("seed", 1, "generation seed")
		target    = fs.String("target", "", "target product ID (default: first qualifying product)")
		algorithm = fs.String("algorithm", "CompaReSetS+", "selection algorithm")
		m         = fs.Int("m", 3, "max reviews per item")
		lambda    = fs.Float64("lambda", 1, "aspect-distance weight λ")
		mu        = fs.Float64("mu", 0.1, "among-item weight μ")
		k         = fs.Int("k", 3, "shortlist size (0 disables shortlisting)")
		method    = fs.String("shortlist", "exact", "shortlist method: exact, greedy, topk, random")
		doExplain = fs.Bool("explain", false, "print comparative explanations")
		doSummary = fs.Bool("summarize", false, "print one-line summaries of each selected set")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	corpus, err := loadOrGenerate(*data, *category, *products, *seed)
	if err != nil {
		return err
	}
	targetID := *target
	if targetID == "" {
		ids := comparesets.TargetProducts(corpus)
		if len(ids) == 0 {
			return fmt.Errorf("corpus has no qualifying target products")
		}
		targetID = ids[0]
	}
	inst, err := corpus.NewInstance(targetID, 0)
	if err != nil {
		return err
	}
	sel, ok := comparesets.SelectorByName(*algorithm)
	if !ok {
		return fmt.Errorf("unknown algorithm %q", *algorithm)
	}
	cfg := comparesets.Config{M: *m, Lambda: *lambda, Mu: *mu, Seed: *seed}
	start := time.Now()
	selection, err := sel.Select(inst, cfg)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	members := make([]int, inst.NumItems())
	for i := range members {
		members[i] = i
	}
	if *k > 0 && *k < inst.NumItems() {
		shortMethod, err := comparesets.ParseShortlistMethod(*method)
		if err != nil {
			return err
		}
		short, err := comparesets.ShortlistWith(inst, selection, cfg, *k,
			comparesets.ShortlistOptions{Method: shortMethod})
		if err != nil {
			return err
		}
		members = short.Members
		fmt.Fprintf(stdout, "Shortlist (%s): weight %.3f, optimal=%v\n\n", *method, short.Weight, short.Optimal)
	}

	fmt.Fprintf(stdout, "=== %s: compare with similar items (algorithm %s, m=%d, objective %.4f, %.1fms) ===\n",
		corpus.Category, sel.Name(), *m, selection.Objective, float64(elapsed.Microseconds())/1000)
	sets := selection.Reviews(inst)
	for _, i := range members {
		marker := ""
		if i == 0 {
			marker = " (this item)"
		}
		fmt.Fprintf(stdout, "\n-- %s%s [%s]\n", inst.Items[i].Title, marker, inst.Items[i].ID)
		for _, r := range sets[i] {
			fmt.Fprintf(stdout, "  [%d/5] %s\n", r.Rating, r.Text)
		}
		if len(sets[i]) == 0 {
			fmt.Fprintln(stdout, "  (no reviews selected)")
		}
		if *doSummary {
			for _, s := range comparesets.Summarize(sets[i], 1) {
				fmt.Fprintf(stdout, "  summary: %s.\n", s)
			}
		}
	}

	if *doExplain {
		fmt.Fprintln(stdout, "\nComparative explanations:")
		for _, line := range comparesets.ExplainLines(comparesets.Explain(inst, selection), 8) {
			fmt.Fprintln(stdout, " •", line)
		}
	}
	return nil
}

func loadOrGenerate(path, category string, products int, seed int64) (*comparesets.Corpus, error) {
	if path != "" {
		return comparesets.LoadCorpus(path)
	}
	return comparesets.GenerateCorpus(category, products, seed)
}
