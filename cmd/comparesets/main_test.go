package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"comparesets"
)

func TestRunSynthetic(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-category", "Toy", "-products", "25", "-seed", "2", "-m", "2", "-k", "3",
		"-explain", "-summarize"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Shortlist (exact)", "(this item)", "compare with similar items", "Comparative explanations:", "summary:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFromCorpusFile(t *testing.T) {
	corpus, err := comparesets.GenerateCorpus("Clothing", 20, 4)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "c.json")
	if err := comparesets.SaveCorpus(corpus, path); err != nil {
		t.Fatal(err)
	}
	target := comparesets.TargetProducts(corpus)[0]
	var buf bytes.Buffer
	if err := run([]string{"-data", path, "-target", target, "-m", "2", "-k", "0"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), target) {
		t.Errorf("output does not mention target %s", target)
	}
}

func TestRunErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-algorithm", "Magic", "-products", "20"}, &buf); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if err := run([]string{"-data", "/no/such.json"}, &buf); err == nil {
		t.Error("missing corpus accepted")
	}
	if err := run([]string{"-target", "ghost", "-products", "20"}, &buf); err == nil {
		t.Error("unknown target accepted")
	}
	if err := run([]string{"-m", "0", "-products", "20"}, &buf); err == nil {
		t.Error("m=0 accepted")
	}
	if err := run([]string{"-shortlist", "psychic", "-products", "20"}, &buf); err == nil {
		t.Error("bad shortlist method accepted")
	}
}
