package comparesets_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"comparesets"
)

func buildInstance(t *testing.T) *comparesets.Instance {
	t.Helper()
	corpus, err := comparesets.GenerateCorpus("Cellphone", 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	targets := comparesets.TargetProducts(corpus)
	if len(targets) == 0 {
		t.Fatal("no target products")
	}
	inst, err := corpus.NewInstance(targets[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestEndToEndQuickstartFlow(t *testing.T) {
	inst := buildInstance(t)
	cfg := comparesets.DefaultConfig(3)

	sel, err := comparesets.SelectSynchronized(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != inst.NumItems() {
		t.Fatalf("selection covers %d items, want %d", len(sel.Indices), inst.NumItems())
	}
	for i, idx := range sel.Indices {
		if len(idx) > 3 {
			t.Errorf("item %d: %d reviews selected", i, len(idx))
		}
	}

	short, err := comparesets.ShortlistWith(inst, sel, cfg, 3,
		comparesets.ShortlistOptions{Method: comparesets.ShortlistExact})
	if err != nil {
		t.Fatal(err)
	}
	if len(short.Members) != 3 || short.Members[0] != 0 {
		t.Fatalf("shortlist = %+v", short)
	}
	if !short.Optimal {
		t.Error("exact shortlist not proved optimal on a tiny graph")
	}

	greedy, err := comparesets.ShortlistWith(inst, sel, cfg, 3,
		comparesets.ShortlistOptions{Method: comparesets.ShortlistGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Weight > short.Weight+1e-9 {
		t.Errorf("greedy %v beat proven optimum %v", greedy.Weight, short.Weight)
	}
}

func TestSelectPlainBeatsNothing(t *testing.T) {
	inst := buildInstance(t)
	sel, err := comparesets.Select(inst, comparesets.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if sel.Objective < 0 {
		t.Errorf("objective = %v", sel.Objective)
	}
}

func TestShortlistMethodValidation(t *testing.T) {
	inst := buildInstance(t)
	sel, _ := comparesets.Select(inst, comparesets.DefaultConfig(3))
	if _, err := comparesets.ParseShortlistMethod("bogus"); err == nil {
		t.Error("bogus method accepted")
	}
	if _, err := comparesets.ShortlistWith(inst, sel, comparesets.DefaultConfig(3), 3,
		comparesets.ShortlistOptions{Method: comparesets.ShortlistMethod(99)}); err == nil {
		t.Error("out-of-range typed method accepted")
	}
	for _, name := range []string{"exact", "ilp", "greedy", "topk", "random"} {
		method, err := comparesets.ParseShortlistMethod(name)
		if err != nil {
			t.Fatalf("parsing %s: %v", name, err)
		}
		if _, err := comparesets.ShortlistWith(inst, sel, comparesets.DefaultConfig(3), 2,
			comparesets.ShortlistOptions{Method: method}); err != nil {
			t.Errorf("method %s: %v", name, err)
		}
	}
}

func TestCorpusMutationAPI(t *testing.T) {
	corpus, err := comparesets.GenerateCorpus("Cellphone", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	target := comparesets.TargetProducts(corpus)[0]
	before := corpus.Items[target]

	m, err := corpus.AppendReviews(target, &comparesets.Review{
		ID: "api-r1", Rating: 5,
		Mentions: []comparesets.Mention{{Aspect: 0, Polarity: comparesets.Positive, Score: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != comparesets.MutationAppend || m.Kind.String() != "append" {
		t.Errorf("kind = %v", m.Kind)
	}
	if m.Old != before || m.New != corpus.Items[target] || m.Old == m.New {
		t.Error("mutation snapshots do not bracket the copy-on-write swap")
	}
	if len(before.Reviews)+1 != len(corpus.Items[target].Reviews) {
		t.Errorf("append did not grow the item: %d -> %d reviews",
			len(before.Reviews), len(corpus.Items[target].Reviews))
	}

	if m, err = corpus.UpdateReview(target, &comparesets.Review{ID: "api-r1", Rating: 1}); err != nil {
		t.Fatal(err)
	}
	if m.Kind != comparesets.MutationUpdate {
		t.Errorf("kind = %v", m.Kind)
	}
	if m, err = corpus.RemoveReview(target, "api-r1"); err != nil {
		t.Fatal(err)
	}
	if m.Kind != comparesets.MutationRemove {
		t.Errorf("kind = %v", m.Kind)
	}
	if len(corpus.Items[target].Reviews) != len(before.Reviews) {
		t.Errorf("remove did not restore the review count")
	}
	// The pre-mutation snapshot is immutable throughout.
	if _, err := corpus.RemoveReview(target, "api-r1"); err == nil {
		t.Error("second remove of the same review succeeded")
	}
}

func TestGenerateCorpusValidation(t *testing.T) {
	if _, err := comparesets.GenerateCorpus("Books", 10, 1); err == nil {
		t.Error("unknown category accepted")
	}
	want := []string{"Cellphone", "Toy", "Clothing", "Electronics", "Kitchen"}
	if got := comparesets.Categories(); !reflect.DeepEqual(got, want) {
		t.Errorf("Categories = %v", got)
	}
	// Extra categories must work through the full generate→select flow.
	c, err := comparesets.GenerateCorpus("Kitchen", 15, 2)
	if err != nil {
		t.Fatal(err)
	}
	targets := comparesets.TargetProducts(c)
	if len(targets) == 0 {
		t.Fatal("no Kitchen targets")
	}
	inst, err := c.NewInstance(targets[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := comparesets.SelectSynchronized(inst, comparesets.DefaultConfig(2)); err != nil {
		t.Fatal(err)
	}
}

func TestCorpusRoundTripThroughDisk(t *testing.T) {
	corpus, err := comparesets.GenerateCorpus("Toy", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "toy.json")
	if err := comparesets.SaveCorpus(corpus, path); err != nil {
		t.Fatal(err)
	}
	got, err := comparesets.LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumReviews() != corpus.NumReviews() {
		t.Errorf("reviews = %d, want %d", got.NumReviews(), corpus.NumReviews())
	}
}

func TestExtractMentions(t *testing.T) {
	ms, err := comparesets.ExtractMentions("Cellphone", "the battery lasts all day, great endurance.")
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 1 || ms[0].Polarity != comparesets.Positive {
		t.Errorf("mentions = %+v", ms)
	}
	if _, err := comparesets.ExtractMentions("Books", "x"); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestRougeExposed(t *testing.T) {
	r := comparesets.Rouge("the battery is great", "the battery is great")
	if r.R1.F1 != 1 {
		t.Errorf("R1 = %+v", r.R1)
	}
}

func TestWithScheme(t *testing.T) {
	cfg, err := comparesets.WithScheme(comparesets.DefaultConfig(3), "unary-scale")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Scheme == nil || cfg.Scheme.Name() != "unary-scale" {
		t.Errorf("scheme = %v", cfg.Scheme)
	}
	if _, err := comparesets.WithScheme(comparesets.DefaultConfig(3), "nope"); err == nil {
		t.Error("unknown scheme accepted")
	}
	if got := comparesets.OpinionSchemeNames(); len(got) != 3 {
		t.Errorf("schemes = %v", got)
	}
}

func TestSummarizeAndExplainExposed(t *testing.T) {
	inst := buildInstance(t)
	sel, err := comparesets.SelectSynchronized(inst, comparesets.DefaultConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	sets := sel.Reviews(inst)
	summary := comparesets.Summarize(sets[0], 2)
	if len(summary) == 0 || len(summary) > 2 {
		t.Errorf("summary = %v", summary)
	}
	cmps := comparesets.Explain(inst, sel)
	if len(cmps) != inst.NumItems()-1 {
		t.Errorf("comparisons = %d, want %d", len(cmps), inst.NumItems()-1)
	}
	lines := comparesets.ExplainLines(cmps, 3)
	if len(lines) == 0 || len(lines) > 3 {
		t.Errorf("lines = %v", lines)
	}
}

func TestSelectBatchExposed(t *testing.T) {
	corpus, err := comparesets.GenerateCorpus("Toy", 25, 6)
	if err != nil {
		t.Fatal(err)
	}
	var insts []*comparesets.Instance
	for _, id := range comparesets.TargetProducts(corpus)[:5] {
		inst, err := corpus.NewInstance(id, 4)
		if err != nil {
			t.Fatal(err)
		}
		insts = append(insts, inst)
	}
	sels, err := comparesets.SelectBatch(insts, comparesets.Selectors()[4], comparesets.DefaultConfig(3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sels) != 5 {
		t.Fatalf("sels = %d", len(sels))
	}
	for i, s := range sels {
		if s == nil || len(s.Indices) != insts[i].NumItems() {
			t.Errorf("selection %d malformed", i)
		}
	}
}

func TestReviewStoreAndAmazonExposed(t *testing.T) {
	dir := t.TempDir()
	st, err := comparesets.OpenReviewStore(filepath.Join(dir, "reviews.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	corpus, err := comparesets.GenerateCorpus("Clothing", 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCorpus(corpus); err != nil {
		t.Fatal(err)
	}
	if st.Count() != corpus.NumReviews() {
		t.Errorf("store count = %d, want %d", st.Count(), corpus.NumReviews())
	}

	// The Amazon loader facade on a minimal fixture.
	rp := filepath.Join(dir, "r.json")
	mp := filepath.Join(dir, "m.json")
	if err := os.WriteFile(rp, []byte(`{"reviewerID":"U1","asin":"A1","reviewText":"the fit is true to size, perfect.","overall":5}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, []byte(`{"asin":"A1","title":"Shoe","related":{"also_bought":[]}}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := comparesets.LoadAmazonCorpus(rp, mp, "Clothing", 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumReviews() != 1 || len(c.Items["A1"].Reviews[0].Mentions) == 0 {
		t.Errorf("amazon corpus = %d reviews, mentions %v", c.NumReviews(), c.Items["A1"].Reviews[0].Mentions)
	}
	if _, err := comparesets.LoadAmazonCorpus(rp, mp, "Books", 1); err == nil {
		t.Error("unknown category accepted")
	}
}

func TestSelectorsRegistryExposed(t *testing.T) {
	if len(comparesets.Selectors()) != 5 {
		t.Errorf("selectors = %d", len(comparesets.Selectors()))
	}
	if _, ok := comparesets.SelectorByName("CompaReSetS+"); !ok {
		t.Error("CompaReSetS+ missing")
	}
}
