// Package datagen synthesizes Amazon-like review corpora — the substitute
// for the Amazon Product Review Dataset with "also bought" metadata the
// paper evaluates on (§4.1.1). Products belong to latent archetype clusters
// that shape their aspect distributions and per-aspect quality; review
// counts are long-tailed; "also bought" lists are biased toward same-cluster
// products so that comparison lists contain genuinely similar items, as on a
// real storefront. Generation is fully deterministic for a fixed seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"comparesets/internal/lexicon"
	"comparesets/internal/model"
	"comparesets/internal/textgen"
)

// Config parameterizes corpus generation.
type Config struct {
	// Category supplies the aspect lexicon and naming material.
	Category lexicon.Category
	// Products is the number of products to generate.
	Products int
	// Reviewers is the size of the reviewer pool.
	Reviewers int
	// MeanReviews is the average number of reviews per product; actual
	// counts are log-normal around it (long-tailed, ≥ MinReviews).
	MeanReviews float64
	// MinReviews floors the per-product review count (default 3).
	MinReviews int
	// MaxReviews caps the per-product review count (default 6×mean).
	MaxReviews int
	// MeanAlsoBought is the average "also bought" list length.
	MeanAlsoBought float64
	// Clusters is the number of product archetypes (default 8).
	Clusters int
	// Seed drives all randomness.
	Seed int64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Products <= 0 {
		return fmt.Errorf("datagen: Products must be positive, got %d", c.Products)
	}
	if c.Reviewers <= 0 {
		return fmt.Errorf("datagen: Reviewers must be positive, got %d", c.Reviewers)
	}
	if c.MeanReviews <= 0 {
		return fmt.Errorf("datagen: MeanReviews must be positive, got %v", c.MeanReviews)
	}
	if c.MeanAlsoBought < 0 {
		return fmt.Errorf("datagen: MeanAlsoBought must be non-negative, got %v", c.MeanAlsoBought)
	}
	if len(c.Category.Aspects) == 0 {
		return fmt.Errorf("datagen: category %q has no aspects", c.Category.Name)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MinReviews == 0 {
		c.MinReviews = 3
	}
	if c.MaxReviews == 0 {
		c.MaxReviews = int(6 * c.MeanReviews)
	}
	if c.Clusters == 0 {
		c.Clusters = 8
	}
	if c.Clusters > c.Products {
		c.Clusters = c.Products
	}
	return c
}

// Generate synthesizes a corpus according to the configuration.
func Generate(cfg Config) (*model.Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	cat := cfg.Category
	z := len(cat.Aspects)
	voc := model.NewVocabulary(cat.AspectNames())
	corpus := model.NewCorpus(cat.Name, voc)

	// Archetype clusters: each emphasizes a subset of aspects.
	type cluster struct {
		weights []float64 // aspect sampling weights
		quality []float64 // P(positive | aspect)
	}
	clusters := make([]cluster, cfg.Clusters)
	for k := range clusters {
		w := make([]float64, z)
		q := make([]float64, z)
		for a := 0; a < z; a++ {
			w[a] = 0.15 + rng.Float64()
			q[a] = 0.2 + 0.6*rng.Float64()
		}
		// Emphasize a few signature aspects per cluster.
		for s := 0; s < 3; s++ {
			w[rng.Intn(z)] += 2.5
		}
		clusters[k] = cluster{weights: w, quality: q}
	}

	reviewers := make([]string, cfg.Reviewers)
	for i := range reviewers {
		reviewers[i] = fmt.Sprintf("u%05d", i)
	}

	memberOf := make([]int, cfg.Products) // product -> cluster
	clusterMembers := make([][]int, cfg.Clusters)
	ids := make([]string, cfg.Products)
	reviewSeq := 0
	for p := 0; p < cfg.Products; p++ {
		k := p % cfg.Clusters // balanced cluster assignment
		memberOf[p] = k
		clusterMembers[k] = append(clusterMembers[k], p)
		ids[p] = fmt.Sprintf("%s-p%05d", catPrefix(cat.Name), p)

		// Product-specific perturbation of the cluster profile.
		cl := clusters[k]
		weights := make([]float64, z)
		quality := make([]float64, z)
		for a := 0; a < z; a++ {
			weights[a] = math.Max(0.05, cl.weights[a]*(0.7+0.6*rng.Float64()))
			quality[a] = clamp01(cl.quality[a] + 0.2*rng.NormFloat64())
		}

		nReviews := lognormalCount(rng, cfg.MeanReviews, cfg.MinReviews, cfg.MaxReviews)
		item := &model.Item{
			ID:       ids[p],
			Title:    textgen.Title(cat, rng),
			Category: cat.Name,
			Price:    math.Round(100*(5+rng.Float64()*95)) / 100,
		}
		for r := 0; r < nReviews; r++ {
			mentions := sampleMentions(rng, weights, quality)
			review := &model.Review{
				ID:       fmt.Sprintf("%s-r%06d", item.ID, reviewSeq),
				ItemID:   item.ID,
				Reviewer: reviewers[rng.Intn(len(reviewers))],
				Mentions: mentions,
			}
			reviewSeq++
			review.Rating = ratingFor(mentions, rng)
			review.Text = textgen.Review(cat, mentions, rng)
			item.Reviews = append(item.Reviews, review)
		}
		corpus.AddItem(item)
	}

	// Also-bought lists: mostly same-cluster products plus a few strays.
	for p := 0; p < cfg.Products; p++ {
		n := poissonCount(rng, cfg.MeanAlsoBought)
		if cfg.MeanAlsoBought > 0 && n < 2 {
			n = 2
		}
		seen := map[int]bool{p: true}
		item := corpus.Items[ids[p]]
		for attempts := 0; len(item.AlsoBought) < n && attempts < 20*n+20; attempts++ {
			// Real "also bought" metadata points outside the category
			// crawl for a fraction of entries; keep that property so
			// #Target Product < #Product as in Table 2.
			if rng.Float64() < 0.08 {
				item.AlsoBought = append(item.AlsoBought, fmt.Sprintf("ext-%06d", rng.Intn(1<<20)))
				continue
			}
			// Also-bought lists mix same-cluster items with cross-cluster
			// strays (co-purchases span archetypes on real storefronts);
			// the heterogeneity is what synchronized selection exploits.
			var q int
			if rng.Float64() < 0.45 {
				members := clusterMembers[memberOf[p]]
				q = members[rng.Intn(len(members))]
			} else {
				q = rng.Intn(cfg.Products)
			}
			if seen[q] {
				continue
			}
			seen[q] = true
			item.AlsoBought = append(item.AlsoBought, ids[q])
		}
	}
	return corpus, nil
}

// sampleMentions draws 1–4 distinct aspects proportional to weights and
// assigns polarities from per-aspect quality (10% neutral).
func sampleMentions(rng *rand.Rand, weights, quality []float64) []model.Mention {
	z := len(weights)
	n := 1 + rng.Intn(4)
	if n > z {
		n = z
	}
	w := append([]float64(nil), weights...)
	var out []model.Mention
	for len(out) < n {
		a := weightedDraw(rng, w)
		if a < 0 {
			break
		}
		w[a] = 0 // without replacement
		m := model.Mention{Aspect: a}
		switch {
		case rng.Float64() < 0.1:
			m.Polarity = model.Neutral
			m.Score = 0
		case rng.Float64() < quality[a]:
			m.Polarity = model.Positive
			m.Score = 1 + rng.Float64()
		default:
			m.Polarity = model.Negative
			m.Score = -1 - rng.Float64()
		}
		out = append(out, m)
	}
	return out
}

func weightedDraw(rng *rand.Rand, w []float64) int {
	var total float64
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return -1
	}
	r := rng.Float64() * total
	for i, x := range w {
		r -= x
		if r < 0 {
			return i
		}
	}
	return len(w) - 1
}

func ratingFor(mentions []model.Mention, rng *rand.Rand) int {
	score := 3.0
	for _, m := range mentions {
		switch m.Polarity {
		case model.Positive:
			score++
		case model.Negative:
			score--
		}
	}
	score += rng.NormFloat64() * 0.5
	r := int(math.Round(score))
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}

// lognormalCount draws a long-tailed count with the given mean.
func lognormalCount(rng *rand.Rand, mean float64, min, max int) int {
	const sigma = 0.5
	mu := math.Log(mean) - sigma*sigma/2
	n := int(math.Round(math.Exp(mu + sigma*rng.NormFloat64())))
	if n < min {
		n = min
	}
	if n > max {
		n = max
	}
	return n
}

func poissonCount(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	// Knuth's method; means here are small (< 40).
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

func clamp01(x float64) float64 {
	if x < 0.05 {
		return 0.05
	}
	if x > 0.95 {
		return 0.95
	}
	return x
}

func catPrefix(name string) string {
	if len(name) >= 4 {
		return name[:4]
	}
	return name
}

// DefaultConfigs returns per-category configurations whose relative shapes
// mirror Table 2 — Toy has the longest comparison lists, Clothing the
// shortest — scaled down so every experiment runs on a laptop in seconds.
// Review counts stay near the paper's 12–19 per-product averages.
func DefaultConfigs(seed int64) []Config {
	return []Config{
		{Category: lexicon.Cellphone, Products: 120, Reviewers: 400, MeanReviews: 18, MeanAlsoBought: 8, Seed: seed},
		{Category: lexicon.Toy, Products: 120, Reviewers: 300, MeanReviews: 14, MeanAlsoBought: 11, Seed: seed + 1},
		{Category: lexicon.Clothing, Products: 160, Reviewers: 500, MeanReviews: 12, MeanAlsoBought: 5, Seed: seed + 2},
	}
}
