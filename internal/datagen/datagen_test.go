package datagen

import (
	"math"
	"strings"
	"testing"

	"comparesets/internal/aspectex"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func smallConfig(seed int64) Config {
	return Config{
		Category:       lexicon.Cellphone,
		Products:       40,
		Reviewers:      100,
		MeanReviews:    10,
		MeanAlsoBought: 5,
		Seed:           seed,
	}
}

func TestGenerateBasicShape(t *testing.T) {
	c, err := Generate(smallConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 40 {
		t.Fatalf("products = %d", len(c.Items))
	}
	if c.Aspects.Len() != len(lexicon.Cellphone.Aspects) {
		t.Errorf("z = %d", c.Aspects.Len())
	}
	total := 0
	for _, id := range c.ItemIDs() {
		it := c.Items[id]
		if len(it.Reviews) < 3 {
			t.Errorf("item %s has %d reviews, want ≥ 3", id, len(it.Reviews))
		}
		if it.Title == "" || it.Price <= 0 {
			t.Errorf("item %s missing title/price", id)
		}
		total += len(it.Reviews)
	}
	mean := float64(total) / 40
	if mean < 5 || mean > 20 {
		t.Errorf("mean reviews = %v, want near 10", mean)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(smallConfig(7))
	b, _ := Generate(smallConfig(7))
	if a.NumReviews() != b.NumReviews() {
		t.Fatalf("review counts differ: %d vs %d", a.NumReviews(), b.NumReviews())
	}
	for _, id := range a.ItemIDs() {
		ia, ib := a.Items[id], b.Items[id]
		if ia.Title != ib.Title || len(ia.Reviews) != len(ib.Reviews) {
			t.Fatalf("item %s differs", id)
		}
		for i := range ia.Reviews {
			if ia.Reviews[i].Text != ib.Reviews[i].Text {
				t.Fatalf("review text differs for %s[%d]", id, i)
			}
		}
	}
	c, _ := Generate(smallConfig(8))
	if c.NumReviews() == a.NumReviews() {
		t.Log("different seeds produced equal review counts (possible but unlikely)")
	}
}

func TestGenerateValidInstances(t *testing.T) {
	c, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range c.ItemIDs() {
		inst, err := c.NewInstance(id, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := inst.Validate(); err != nil {
			t.Fatalf("instance %s: %v", id, err)
		}
	}
}

func TestAlsoBoughtProperties(t *testing.T) {
	c, _ := Generate(smallConfig(5))
	for _, id := range c.ItemIDs() {
		it := c.Items[id]
		seen := map[string]bool{}
		for _, ab := range it.AlsoBought {
			if ab == id {
				t.Errorf("item %s lists itself", id)
			}
			if seen[ab] {
				t.Errorf("item %s lists %s twice", id, ab)
			}
			seen[ab] = true
			if _, ok := c.Items[ab]; !ok && !strings.HasPrefix(ab, "ext-") {
				t.Errorf("item %s lists unknown %s", id, ab)
			}
		}
		if len(it.AlsoBought) < 2 {
			t.Errorf("item %s has %d also-bought, want ≥ 2", id, len(it.AlsoBought))
		}
	}
}

func TestGeneratedTextMatchesAnnotations(t *testing.T) {
	// Re-extracting annotations from the generated text must recover the
	// ground-truth aspect sets exactly and polarities for every mention.
	c, _ := Generate(smallConfig(11))
	ex := aspectex.New(lexicon.Cellphone)
	checked := 0
	for _, id := range c.ItemIDs() {
		for _, r := range c.Items[id].Reviews {
			got := ex.Extract(r.Text)
			gotBy := map[int]model.Polarity{}
			for _, m := range got {
				gotBy[m.Aspect] = m.Polarity
			}
			if len(got) != len(r.Mentions) {
				t.Fatalf("review %s: extracted %d mentions, want %d (%q)", r.ID, len(got), len(r.Mentions), r.Text)
			}
			for _, want := range r.Mentions {
				pol, ok := gotBy[want.Aspect]
				if !ok {
					t.Fatalf("review %s: aspect %d lost (%q)", r.ID, want.Aspect, r.Text)
				}
				if pol != want.Polarity {
					t.Fatalf("review %s: aspect %d polarity %v want %v (%q)", r.ID, want.Aspect, pol, want.Polarity, r.Text)
				}
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no reviews checked")
	}
}

func TestRatingsCorrelateWithSentiment(t *testing.T) {
	c, _ := Generate(smallConfig(13))
	var posSum, posN, negSum, negN float64
	for _, id := range c.ItemIDs() {
		for _, r := range c.Items[id].Reviews {
			net := 0
			for _, m := range r.Mentions {
				switch m.Polarity {
				case model.Positive:
					net++
				case model.Negative:
					net--
				}
			}
			if net > 0 {
				posSum += float64(r.Rating)
				posN++
			}
			if net < 0 {
				negSum += float64(r.Rating)
				negN++
			}
		}
	}
	if posN == 0 || negN == 0 {
		t.Fatal("no positive or negative reviews generated")
	}
	if posSum/posN <= negSum/negN {
		t.Errorf("mean rating of positive reviews %v ≤ negative %v", posSum/posN, negSum/negN)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{Category: lexicon.Toy, Products: 0, Reviewers: 10, MeanReviews: 5},
		{Category: lexicon.Toy, Products: 10, Reviewers: 0, MeanReviews: 5},
		{Category: lexicon.Toy, Products: 10, Reviewers: 10, MeanReviews: 0},
		{Category: lexicon.Toy, Products: 10, Reviewers: 10, MeanReviews: 5, MeanAlsoBought: -1},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestDefaultConfigsShapeMirrorsTable2(t *testing.T) {
	cfgs := DefaultConfigs(1)
	if len(cfgs) != 3 {
		t.Fatalf("got %d configs", len(cfgs))
	}
	byName := map[string]Config{}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Category.Name, err)
		}
		byName[c.Category.Name] = c
	}
	// Table 2 ordering: Toy has the most comparison products, Clothing the
	// fewest; Cellphone has the most reviews per product.
	if !(byName["Toy"].MeanAlsoBought > byName["Cellphone"].MeanAlsoBought) {
		t.Error("Toy should have longer comparison lists than Cellphone")
	}
	if !(byName["Clothing"].MeanAlsoBought < byName["Cellphone"].MeanAlsoBought) {
		t.Error("Clothing should have shorter comparison lists than Cellphone")
	}
	if !(byName["Cellphone"].MeanReviews > byName["Clothing"].MeanReviews) {
		t.Error("Cellphone should average more reviews than Clothing")
	}
}

func TestPoissonCountMean(t *testing.T) {
	cfg := smallConfig(21)
	c, _ := Generate(cfg)
	var total float64
	for _, id := range c.ItemIDs() {
		total += float64(len(c.Items[id].AlsoBought))
	}
	mean := total / float64(len(c.Items))
	if math.Abs(mean-cfg.MeanAlsoBought) > 2.5 {
		t.Errorf("mean also-bought = %v, want ≈ %v", mean, cfg.MeanAlsoBought)
	}
}
