package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// referenceSolve solves A x = b for the SPD matrix restricted to idx via a
// fresh Cholesky factorization.
func referenceSolve(a *Matrix, idx []int, b Vector) Vector {
	k := len(idx)
	sub := NewMatrix(k, k)
	for i, ii := range idx {
		for j, jj := range idx {
			sub.Set(i, j, a.At(ii, jj))
		}
	}
	l, err := Cholesky(sub)
	if err != nil {
		panic(err)
	}
	return SolveCholesky(l, b)
}

func TestUpdatableCholeskyExtendMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(8)
		a := spdMatrix(rng, n)
		u := NewUpdatableCholesky(2) // tiny hint to exercise grow()
		for k := 0; k < n; k++ {
			row := NewVector(k)
			for j := 0; j < k; j++ {
				row[j] = a.At(k, j)
			}
			if err := u.Extend(row, a.At(k, k)); err != nil {
				t.Fatalf("trial %d: extend %d: %v", trial, k, err)
			}
		}
		b := NewVector(n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := NewVector(n)
		u.Solve(b, got)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		want := referenceSolve(a, idx, b)
		if !got.ApproxEqual(want, 1e-7) {
			t.Fatalf("trial %d: x = %v, want %v", trial, got, want)
		}
	}
}

func TestUpdatableCholeskyRemoveMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(7)
		a := spdMatrix(rng, n)
		u := NewUpdatableCholesky(n)
		idx := []int{}
		for k := 0; k < n; k++ {
			row := NewVector(len(idx))
			for j, jj := range idx {
				row[j] = a.At(k, jj)
			}
			if err := u.Extend(row, a.At(k, k)); err != nil {
				t.Fatal(err)
			}
			idx = append(idx, k)
		}
		// Remove a few random positions, re-checking the solve after each.
		for rounds := 0; rounds < 2 && len(idx) > 1; rounds++ {
			k := rng.Intn(len(idx))
			u.Remove(k)
			idx = append(idx[:k], idx[k+1:]...)
			b := NewVector(len(idx))
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			got := NewVector(len(idx))
			u.Solve(b, got)
			want := referenceSolve(a, idx, b)
			if !got.ApproxEqual(want, 1e-6) {
				t.Fatalf("trial %d after Remove(%d): x = %v, want %v", trial, k, got, want)
			}
		}
	}
}

func TestUpdatableCholeskyInterleavedGrowShrink(t *testing.T) {
	// Mimic the NNLS access pattern: grow, drop an interior atom, grow
	// again, and check against a fresh factorization each time.
	rng := rand.New(rand.NewSource(43))
	a := spdMatrix(rng, 12)
	u := NewUpdatableCholesky(4)
	idx := []int{}
	add := func(col int) {
		row := NewVector(len(idx))
		for j, jj := range idx {
			row[j] = a.At(col, jj)
		}
		if err := u.Extend(row, a.At(col, col)); err != nil {
			t.Fatal(err)
		}
		idx = append(idx, col)
	}
	check := func() {
		t.Helper()
		b := NewVector(len(idx))
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		got := NewVector(len(idx))
		u.Solve(b, got)
		if want := referenceSolve(a, idx, b); !got.ApproxEqual(want, 1e-6) {
			t.Fatalf("idx %v: x = %v, want %v", idx, got, want)
		}
	}
	for _, col := range []int{0, 3, 7, 1} {
		add(col)
	}
	check()
	u.Remove(1)
	idx = append(idx[:1], idx[2:]...)
	check()
	add(5)
	add(9)
	check()
	u.Remove(0)
	idx = idx[1:]
	check()
	u.Remove(len(idx) - 1)
	idx = idx[:len(idx)-1]
	check()
}

func TestUpdatableCholeskyRejectsDependentColumn(t *testing.T) {
	// Gram matrix of two identical columns is singular: the second Extend
	// must fail and leave the factorization usable.
	u := NewUpdatableCholesky(4)
	if err := u.Extend(nil, 4); err != nil {
		t.Fatal(err)
	}
	if err := u.Extend(Vector{4}, 4); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Fatalf("err = %v, want ErrNotPositiveDefinite", err)
	}
	if u.Size() != 1 {
		t.Fatalf("size = %d after failed extend, want 1", u.Size())
	}
	out := NewVector(1)
	u.Solve(Vector{8}, out)
	if math.Abs(out[0]-2) > 1e-12 {
		t.Fatalf("solve = %v, want 2", out[0])
	}
}

func TestUpdatableCholeskyReset(t *testing.T) {
	u := NewUpdatableCholesky(4)
	if err := u.Extend(nil, 9); err != nil {
		t.Fatal(err)
	}
	u.Reset()
	if u.Size() != 0 {
		t.Fatalf("size = %d after reset", u.Size())
	}
	if err := u.Extend(nil, 1); err != nil {
		t.Fatal(err)
	}
	out := NewVector(1)
	u.Solve(Vector{5}, out)
	if math.Abs(out[0]-5) > 1e-12 {
		t.Fatalf("solve = %v, want 5", out[0])
	}
}
