package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func spdMatrix(rng *rand.Rand, n int) *Matrix {
	// A = BᵀB + I is symmetric positive definite.
	b := randomMatrix(rng, n+2, n)
	a := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			v := b.Col(i).Dot(b.Col(j))
			if i == j {
				v++
			}
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	return a
}

func TestCholeskyReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		a := spdMatrix(rng, n)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		// Check L·Lᵀ == A and the upper triangle of L is zero.
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if j > i && l.At(i, j) != 0 {
					t.Fatalf("upper triangle not zero at (%d,%d)", i, j)
				}
				var s float64
				for k := 0; k < n; k++ {
					s += l.At(i, k) * l.At(j, k)
				}
				if math.Abs(s-a.At(i, j)) > 1e-8 {
					t.Fatalf("LLᵀ(%d,%d) = %v, want %v", i, j, s, a.At(i, j))
				}
			}
		}
	}
}

func TestCholeskyRejectsNonSPD(t *testing.T) {
	a := MatrixFromColumns([]Vector{{0, 1}, {1, 0}}) // indefinite
	if _, err := Cholesky(a); !errors.Is(err, ErrNotPositiveDefinite) {
		t.Errorf("err = %v", err)
	}
	if _, err := Cholesky(NewMatrix(2, 3)); err == nil {
		t.Error("non-square accepted")
	}
}

func TestSolveCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		a := spdMatrix(rng, n)
		want := NewVector(n)
		for i := range want {
			want[i] = rng.NormFloat64()
		}
		b := a.MulVec(want)
		l, err := Cholesky(a)
		if err != nil {
			t.Fatal(err)
		}
		got := SolveCholesky(l, b)
		if !got.ApproxEqual(want, 1e-7) {
			t.Fatalf("x = %v, want %v", got, want)
		}
	}
}

func TestRidgeSolveShrinks(t *testing.T) {
	// With tiny regularization the ridge solution approaches LS; with huge
	// regularization it approaches zero.
	a := MatrixFromColumns([]Vector{{1, 0, 1}, {0, 1, 1}})
	b := Vector{1, 2, 3}
	ls, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	small, err := RidgeSolve(a, b, 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	if !small.ApproxEqual(ls, 1e-5) {
		t.Errorf("ridge(1e-10) = %v, LS = %v", small, ls)
	}
	big, err := RidgeSolve(a, b, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if big.Norm2() > 1e-6 {
		t.Errorf("ridge(1e9) = %v, want ~0", big)
	}
}

func TestRidgeSolveValidation(t *testing.T) {
	a := MatrixFromColumns([]Vector{{1}})
	if _, err := RidgeSolve(a, Vector{1}, 0); err == nil {
		t.Error("zero regularizer accepted")
	}
	if _, err := RidgeSolve(a, Vector{1}, -1); err == nil {
		t.Error("negative regularizer accepted")
	}
}

func TestRidgeSolveRankDeficientStable(t *testing.T) {
	// Duplicate columns are fine under ridge — regularization restores
	// definiteness.
	a := MatrixFromColumns([]Vector{{1, 1}, {1, 1}})
	x, err := RidgeSolve(a, Vector{2, 2}, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Symmetry: both coefficients equal.
	if math.Abs(x[0]-x[1]) > 1e-10 {
		t.Errorf("x = %v, want symmetric", x)
	}
}
