package linalg

// float32 companions to the kernels in kernels.go: the optional compact slab
// mode (internal/featstore's float32 feature slabs, internal/simgraph's
// float32 distance pass) stores vectors as []float32 — half the memory
// bandwidth per element — and accumulates in float64 so precision loss is
// bounded by the float32 representation of the inputs, not by the reduction.
// The same advancing-slice BCE shape as kernels.go applies, and the same
// `make bce-check` guard covers this file.
//
// For the feature slabs the narrowing is usually exact: opinion and aspect
// columns are small integer counts (0, 1, 2, …), all exactly representable
// in float32. General float64 inputs round to ~7 decimal digits; the
// documented tolerance for float32-vs-float64 results is a relative 1e-6 per
// accumulated term (see TestFloat32SlabTolerance in internal/featstore).

// Vector32 is a dense float32 vector (a compact slab view).
type Vector32 []float32

// NarrowKernel writes float32(src[i]) into dst. It panics if lengths differ.
func NarrowKernel(src []float64, dst []float32) {
	checkLen(len(src), len(dst))
	src = src[:len(dst)]
	for i := 0; i < len(dst) && i < len(src); i++ {
		dst[i] = float32(src[i])
	}
}

// WidenKernel writes float64(src[i]) into dst. It panics if lengths differ.
func WidenKernel(src []float32, dst []float64) {
	checkLen(len(src), len(dst))
	src = src[:len(dst)]
	for i := 0; i < len(dst) && i < len(src); i++ {
		dst[i] = float64(src[i])
	}
}

// WidenScaleKernel writes alpha·float64(src[i]) into dst — the design-matrix
// block fill for float32 feature columns. It panics if lengths differ.
func WidenScaleKernel(alpha float64, src []float32, dst []float64) {
	checkLen(len(src), len(dst))
	src = src[:len(dst)]
	for i := 0; i < len(dst) && i < len(src); i++ {
		dst[i] = alpha * float64(src[i])
	}
}

// AddWidenKernel sets y[i] += float64(x[i]) — the candidate-evaluation
// accumulation over float32 feature columns. It panics if lengths differ.
func AddWidenKernel(x []float32, y []float64) {
	checkLen(len(x), len(y))
	x = x[:len(y)]
	for len(y) >= 4 && len(x) >= 4 {
		xx := (*[4]float32)(x)
		yy := (*[4]float64)(y)
		yy[0] += float64(xx[0])
		yy[1] += float64(xx[1])
		yy[2] += float64(xx[2])
		yy[3] += float64(xx[3])
		x = x[4:]
		y = y[4:]
	}
	for i := 0; i < len(y) && i < len(x); i++ {
		y[i] += float64(x[i])
	}
}

// SqDist32Kernel returns Σᵢ (a[i]−b[i])² over float32 slabs with float64
// accumulation — the compact-mode pairwise distance of the similarity graph.
// It panics if lengths differ.
func SqDist32Kernel(a, b []float32) float64 {
	checkLen(len(a), len(b))
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		x := (*[4]float32)(a)
		y := (*[4]float32)(b)
		d0 := float64(x[0]) - float64(y[0])
		d1 := float64(x[1]) - float64(y[1])
		d2 := float64(x[2]) - float64(y[2])
		d3 := float64(x[3]) - float64(y[3])
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		a = a[4:]
		b = b[4:]
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}

// Dot32Kernel returns Σᵢ a[i]·b[i] over float32 slabs with float64
// accumulation. It panics if lengths differ.
func Dot32Kernel(a, b []float32) float64 {
	checkLen(len(a), len(b))
	b = b[:len(a)]
	var s0, s1 float64
	for len(a) >= 2 && len(b) >= 2 {
		x := (*[2]float32)(a)
		y := (*[2]float32)(b)
		s0 += float64(x[0]) * float64(y[0])
		s1 += float64(x[1]) * float64(y[1])
		a = a[2:]
		b = b[2:]
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return s0 + s1
}

// Max returns the maximum entry of v, or 0 for an empty vector.
func (v Vector32) Max() float32 {
	var m float32
	for i, x := range v {
		if i == 0 || x > m {
			m = x
		}
	}
	return m
}
