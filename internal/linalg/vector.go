// Package linalg provides the small dense linear-algebra kernel used by the
// Integer-Regression machinery: vectors, column-major matrices, QR-based
// least squares, and an active-set non-negative least squares (NNLS) solver.
//
// Everything is plain float64 on the standard library; the problem sizes in
// this repository (tens of rows, hundreds of columns, supports of at most a
// few dozen atoms) do not warrant BLAS.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense float64 vector.
type Vector []float64

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	out := make(Vector, len(v))
	copy(out, v)
	return out
}

// Add returns v + w. It panics if lengths differ.
func (v Vector) Add(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w. It panics if lengths differ.
func (v Vector) Sub(w Vector) Vector {
	checkLen(len(v), len(w))
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// AddInPlace sets v = v + w.
func (v Vector) AddInPlace(w Vector) {
	AddKernel(w, v)
}

// SubInPlace sets v = v - w.
func (v Vector) SubInPlace(w Vector) {
	checkLen(len(v), len(w))
	for i := range v {
		v[i] -= w[i]
	}
}

// Scale returns c * v.
func (v Vector) Scale(c float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = c * v[i]
	}
	return out
}

// ScaleInPlace sets v = c * v.
func (v Vector) ScaleInPlace(c float64) {
	for i := range v {
		v[i] *= c
	}
}

// AXPY sets v = v + c*w.
func (v Vector) AXPY(c float64, w Vector) {
	checkLen(len(v), len(w))
	AxpyKernel(c, w, v)
}

// Dot returns the inner product of v and w.
func (v Vector) Dot(w Vector) float64 {
	return DotKernel(v, w)
}

// Norm2 returns the Euclidean norm of v.
func (v Vector) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// Norm1 returns the L1 norm of v.
func (v Vector) Norm1() float64 {
	var s float64
	for _, x := range v {
		s += math.Abs(x)
	}
	return s
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() float64 {
	var s float64
	for _, x := range v {
		s += x
	}
	return s
}

// Max returns the maximum entry of v, or -Inf for an empty vector.
func (v Vector) Max() float64 {
	m := math.Inf(-1)
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}

// SquaredDistance returns sum_i (v_i - w_i)^2, the Δ distance of the paper
// (Eq. 2).
func SquaredDistance(v, w Vector) float64 {
	return SqDistKernel(v, w)
}

// L1Distance returns sum_i |v_i - w_i|.
func L1Distance(v, w Vector) float64 {
	checkLen(len(v), len(w))
	var s float64
	for i := range v {
		s += math.Abs(v[i] - w[i])
	}
	return s
}

// Cosine returns the cosine similarity of v and w (Eq. 9). If either vector
// is zero, it returns 0.
func Cosine(v, w Vector) float64 {
	checkLen(len(v), len(w))
	nv, nw := v.Norm2(), w.Norm2()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// Concat returns the concatenation [vs[0]; vs[1]; ...].
func Concat(vs ...Vector) Vector {
	var n int
	for _, v := range vs {
		n += len(v)
	}
	out := make(Vector, 0, n)
	for _, v := range vs {
		out = append(out, v...)
	}
	return out
}

// Normalized returns v / ||v||_1, or a zero vector when ||v||_1 == 0.
func (v Vector) Normalized() Vector {
	n1 := v.Norm1()
	if n1 == 0 {
		return NewVector(len(v))
	}
	return v.Scale(1 / n1)
}

// ApproxEqual reports whether v and w agree elementwise within tol.
func (v Vector) ApproxEqual(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func checkLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a, b))
	}
}
