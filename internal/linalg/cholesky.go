package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// symmetric positive definite (within numerical tolerance).
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix A. Only the lower triangle of A is
// read. The returned matrix has the factor in its lower triangle and zeros
// above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, by forward
// then backward substitution.
func SolveCholesky(l *Matrix, b Vector) Vector {
	n := l.Rows
	checkLen(n, len(b))
	// Forward: L y = b.
	y := NewVector(n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// RidgeSolve solves the ridge-regularized least squares problem
// min_x ||A x − b||² + reg·||x||² via the normal equations
// (AᵀA + reg·I) x = Aᵀ b with a Cholesky factorization. reg must be
// positive, which also guarantees positive definiteness.
func RidgeSolve(a *Matrix, b Vector, reg float64) (Vector, error) {
	if reg <= 0 {
		return nil, fmt.Errorf("linalg: ridge regularizer must be positive, got %v", reg)
	}
	checkLen(a.Rows, len(b))
	n := a.Cols
	gram := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		ci := a.Col(i)
		for j := 0; j <= i; j++ {
			v := ci.Dot(a.Col(j))
			if i == j {
				v += reg
			}
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	l, err := Cholesky(gram)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, a.MulVecT(b)), nil
}
