package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNotPositiveDefinite is returned by Cholesky when the matrix is not
// symmetric positive definite (within numerical tolerance).
var ErrNotPositiveDefinite = errors.New("linalg: matrix is not positive definite")

// Cholesky computes the lower-triangular factor L with A = L·Lᵀ for a
// symmetric positive-definite matrix A. Only the lower triangle of A is
// read. The returned matrix has the factor in its lower triangle and zeros
// above the diagonal.
func Cholesky(a *Matrix) (*Matrix, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		d := a.At(j, j)
		for k := 0; k < j; k++ {
			v := l.At(j, k)
			d -= v * v
		}
		if d <= 0 {
			return nil, ErrNotPositiveDefinite
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := a.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	return l, nil
}

// SolveCholesky solves A x = b given the Cholesky factor L of A, by forward
// then backward substitution.
func SolveCholesky(l *Matrix, b Vector) Vector {
	n := l.Rows
	checkLen(n, len(b))
	// Forward: L y = b.
	y := NewVector(n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Backward: Lᵀ x = y.
	x := NewVector(n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x
}

// UpdatableCholesky maintains the lower-triangular Cholesky factor of a
// symmetric positive-definite matrix that grows and shrinks one row/column
// at a time. It is the inner engine of the incremental NNLS used by NOMP:
// the factored matrix is the Gram matrix of the current passive set, a new
// atom extends the factor in O(k²), and an evicted atom is dropped with a
// sequence of rank-1 rotations instead of a refactorization.
type UpdatableCholesky struct {
	n int
	// l stores the factor row-major in a flat triangle-friendly layout:
	// row i lives at l[i*cap : i*cap+i+1].
	l   []float64
	cap int
}

// NewUpdatableCholesky returns an empty factorization with capacity for
// matrices up to capHint×capHint (the factor grows beyond the hint if
// needed).
func NewUpdatableCholesky(capHint int) *UpdatableCholesky {
	if capHint < 4 {
		capHint = 4
	}
	return &UpdatableCholesky{cap: capHint, l: make([]float64, capHint*capHint)}
}

// Size returns the current dimension of the factored matrix.
func (u *UpdatableCholesky) Size() int { return u.n }

// Reset empties the factorization without releasing storage.
func (u *UpdatableCholesky) Reset() { u.n = 0 }

func (u *UpdatableCholesky) at(i, j int) float64     { return u.l[i*u.cap+j] }
func (u *UpdatableCholesky) set(i, j int, v float64) { u.l[i*u.cap+j] = v }

func (u *UpdatableCholesky) grow() {
	newCap := 2 * u.cap
	nl := make([]float64, newCap*newCap)
	for i := 0; i < u.n; i++ {
		copy(nl[i*newCap:i*newCap+i+1], u.l[i*u.cap:i*u.cap+i+1])
	}
	u.l, u.cap = nl, newCap
}

// Extend grows the factored matrix by one row/column. row holds the new
// Gram entries against the existing columns (length Size()) and diag the
// new diagonal entry. It returns ErrNotPositiveDefinite — leaving the
// factorization unchanged — when the extended matrix is numerically
// singular, which signals the caller to fall back to a dense solve.
func (u *UpdatableCholesky) Extend(row Vector, diag float64) error {
	checkLen(u.n, len(row))
	if u.n == u.cap {
		u.grow()
	}
	n := u.n
	// Solve L w = row by forward substitution; the new row of the factor is
	// [wᵀ, sqrt(diag − wᵀw)].
	base := n * u.cap
	d := diag
	for i := 0; i < n; i++ {
		// Row i of the factor and the new row prefix are both unit-stride:
		// the forward-substitution sum is one dot kernel.
		s := row[i] - DotKernel(u.l[i*u.cap:i*u.cap+i], u.l[base:base+i])
		w := s / u.at(i, i)
		u.l[base+i] = w
		d -= w * w
	}
	if d <= 1e-12*math.Max(diag, 1) {
		return ErrNotPositiveDefinite
	}
	u.l[base+n] = math.Sqrt(d)
	u.n++
	return nil
}

// Remove deletes row/column k from the factored matrix. The trailing block
// is repaired with a rank-1 Cholesky update (Givens-style rotations), so the
// cost is O((n−k)²) rather than a full refactorization.
func (u *UpdatableCholesky) Remove(k int) {
	if k < 0 || k >= u.n {
		panic(fmt.Sprintf("linalg: Remove(%d) out of range [0,%d)", k, u.n))
	}
	n := u.n
	// The deleted column's sub-diagonal entries become the rank-1 update of
	// the trailing factor: L'₂₂ L'₂₂ᵀ = L₂₂ L₂₂ᵀ + v vᵀ.
	v := make([]float64, n-k-1)
	for i := k + 1; i < n; i++ {
		v[i-k-1] = u.at(i, k)
	}
	// Shift rows up and the trailing columns left.
	for i := k + 1; i < n; i++ {
		dst := (i - 1) * u.cap
		src := i * u.cap
		copy(u.l[dst:dst+k], u.l[src:src+k])
		copy(u.l[dst+k:dst+i], u.l[src+k+1:src+i+1])
	}
	u.n--
	// Rank-1 update of the trailing (n−k−1)×(n−k−1) block at offset k.
	m := len(v)
	for j := 0; j < m; j++ {
		jj := k + j
		ljj := u.at(jj, jj)
		r := math.Hypot(ljj, v[j])
		c, s := r/ljj, v[j]/ljj
		u.set(jj, jj, r)
		for i := j + 1; i < m; i++ {
			ii := k + i
			nij := (u.at(ii, jj) + s*v[i]) / c
			v[i] = c*v[i] - s*nij
			u.set(ii, jj, nij)
		}
	}
}

// Solve solves A x = b for the currently factored matrix A = L·Lᵀ, writing
// the solution into out (which must have length Size()). b and out may
// alias.
func (u *UpdatableCholesky) Solve(b Vector, out Vector) {
	n := u.n
	checkLen(n, len(b))
	checkLen(n, len(out))
	// Forward: L y = b. Row i's prefix and the solved prefix of out are
	// both unit-stride, so the substitution sum is one dot kernel.
	for i := 0; i < n; i++ {
		row := u.l[i*u.cap : i*u.cap+i+1]
		out[i] = (b[i] - DotKernel(row[:i], out[:i])) / row[i]
	}
	// Backward: Lᵀ x = y.
	for i := n - 1; i >= 0; i-- {
		s := out[i]
		for k := i + 1; k < n; k++ {
			s -= u.at(k, i) * out[k]
		}
		out[i] = s / u.at(i, i)
	}
}

// RidgeSolve solves the ridge-regularized least squares problem
// min_x ||A x − b||² + reg·||x||² via the normal equations
// (AᵀA + reg·I) x = Aᵀ b with a Cholesky factorization. reg must be
// positive, which also guarantees positive definiteness.
func RidgeSolve(a *Matrix, b Vector, reg float64) (Vector, error) {
	if reg <= 0 {
		return nil, fmt.Errorf("linalg: ridge regularizer must be positive, got %v", reg)
	}
	checkLen(a.Rows, len(b))
	n := a.Cols
	gram := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		ci := a.Col(i)
		for j := 0; j <= i; j++ {
			v := ci.Dot(a.Col(j))
			if i == j {
				v += reg
			}
			gram.Set(i, j, v)
			gram.Set(j, i, v)
		}
	}
	l, err := Cholesky(gram)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, a.MulVecT(b)), nil
}
