package linalg

import (
	"math"
	"testing"
)

// lcg is a tiny deterministic generator so kernel tests need no seed
// plumbing: values land in [-1, 1).
func lcg(state *uint64) float64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return float64(int64(*state>>11))/float64(1<<52) - 1
}

func randomPair(n int, seed uint64) (a, b Vector) {
	a, b = NewVector(n), NewVector(n)
	for i := 0; i < n; i++ {
		a[i] = lcg(&seed) * 3
		b[i] = lcg(&seed) * 3
	}
	return a, b
}

// kernelLens covers the empty case, the scalar tail alone, exact unroll
// multiples, and every tail length around them.
var kernelLens = []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 64, 67}

// relClose compares with a relative tolerance: the unrolled kernels
// reassociate the reduction, so the last ulps may differ from the naive
// left-to-right loop.
func relClose(a, b float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= 1e-12*math.Max(scale, 1)
}

func TestDotKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		a, b := randomPair(n, uint64(n)+1)
		var want float64
		for i := range a {
			want += a[i] * b[i]
		}
		if got := DotKernel(a, b); !relClose(got, want) {
			t.Errorf("n=%d: DotKernel=%g naive=%g", n, got, want)
		}
	}
}

func TestSqDistKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		a, b := randomPair(n, uint64(n)+11)
		var want float64
		for i := range a {
			d := a[i] - b[i]
			want += d * d
		}
		if got := SqDistKernel(a, b); !relClose(got, want) {
			t.Errorf("n=%d: SqDistKernel=%g naive=%g", n, got, want)
		}
	}
}

func TestAxpyKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		x, y := randomPair(n, uint64(n)+23)
		want := y.Clone()
		const alpha = -1.75
		for i := range want {
			want[i] += alpha * x[i]
		}
		AxpyKernel(alpha, x, y)
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("n=%d i=%d: AxpyKernel=%g naive=%g", n, i, y[i], want[i])
			}
		}
	}
}

// AxpyKernel documents alpha == 0 as an exact no-op: y must not be
// rewritten even when x carries NaN or signed zeros.
func TestAxpyKernelZeroAlphaNoOp(t *testing.T) {
	x := Vector{math.NaN(), math.Inf(1), -0.0, 1}
	y := Vector{1, 2, 3, 4}
	want := y.Clone()
	AxpyKernel(0, x, y)
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("i=%d: y=%g, want untouched %g", i, y[i], want[i])
		}
	}
}

func TestAddKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		x, y := randomPair(n, uint64(n)+31)
		want := y.Clone()
		for i := range want {
			want[i] += x[i]
		}
		AddKernel(x, y)
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("n=%d i=%d: AddKernel=%g naive=%g", n, i, y[i], want[i])
			}
		}
	}
}

func TestGatherDotKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		dense, _ := randomPair(n+8, uint64(n)+41)
		idx := make([]int32, n)
		val := NewVector(n)
		seed := uint64(n) + 43
		for i := 0; i < n; i++ {
			idx[i] = int32((i * 5) % len(dense))
			val[i] = lcg(&seed)
		}
		var want float64
		for i := range idx {
			want += val[i] * dense[idx[i]]
		}
		if got := GatherDotKernel(idx, val, dense); !relClose(got, want) {
			t.Errorf("n=%d: GatherDotKernel=%g naive=%g", n, got, want)
		}
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DotKernel with mismatched lengths did not panic")
		}
	}()
	DotKernel(Vector{1, 2}, Vector{1})
}

func narrowed(v Vector) Vector32 {
	out := make(Vector32, len(v))
	NarrowKernel(v, out)
	return out
}

func TestNarrowWidenRoundTrip(t *testing.T) {
	// Small integers are exactly representable in float32: the round trip
	// must be lossless (this is what makes counting-scheme selections
	// byte-identical in compact mode).
	v := Vector{0, 1, 2, 3, 5, 8, 13, 21}
	back := NewVector(len(v))
	WidenKernel(narrowed(v), back)
	for i := range v {
		if back[i] != v[i] {
			t.Fatalf("i=%d: round trip %g -> %g", i, v[i], back[i])
		}
	}
}

func TestWidenScaleKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		src, _ := randomPair(n, uint64(n)+53)
		s32 := narrowed(src)
		const alpha = 2.5
		dst := NewVector(n)
		WidenScaleKernel(alpha, s32, dst)
		for i := range dst {
			if want := alpha * float64(s32[i]); dst[i] != want {
				t.Fatalf("n=%d i=%d: WidenScaleKernel=%g want %g", n, i, dst[i], want)
			}
		}
	}
}

func TestAddWidenKernelMatchesNaive(t *testing.T) {
	for _, n := range kernelLens {
		src, acc := randomPair(n, uint64(n)+61)
		s32 := narrowed(src)
		want := acc.Clone()
		for i := range want {
			want[i] += float64(s32[i])
		}
		AddWidenKernel(s32, acc)
		for i := range want {
			if acc[i] != want[i] {
				t.Fatalf("n=%d i=%d: AddWidenKernel=%g naive=%g", n, i, acc[i], want[i])
			}
		}
	}
}

func TestDot32AndSqDist32MatchFloat64WithinTolerance(t *testing.T) {
	for _, n := range kernelLens {
		a, b := randomPair(n, uint64(n)+71)
		a32, b32 := narrowed(a), narrowed(b)
		// Reference: float64 kernels over the widened float32 inputs —
		// float32 mode's only loss is the input narrowing, never the
		// accumulation, so against widened inputs the match is exact.
		wa, wb := NewVector(n), NewVector(n)
		WidenKernel(a32, wa)
		WidenKernel(b32, wb)
		if got, want := Dot32Kernel(a32, b32), DotKernel(wa, wb); !relClose(got, want) {
			t.Errorf("n=%d: Dot32Kernel=%g float64 ref=%g", n, got, want)
		}
		if got, want := SqDist32Kernel(a32, b32), SqDistKernel(wa, wb); !relClose(got, want) {
			t.Errorf("n=%d: SqDist32Kernel=%g float64 ref=%g", n, got, want)
		}
	}
}

// Kernel micro-benchmarks (recorded into BENCH_core.json; CI runs them as a
// 1x smoke so a kernel regression that panics or allocates is caught).

const benchKernelLen = 512

func benchPair(b *testing.B) (Vector, Vector) {
	b.Helper()
	x, y := randomPair(benchKernelLen, 97)
	b.ReportAllocs()
	b.ResetTimer()
	return x, y
}

var sinkFloat float64

func BenchmarkDotKernel(b *testing.B) {
	x, y := benchPair(b)
	for i := 0; i < b.N; i++ {
		sinkFloat = DotKernel(x, y)
	}
}

func BenchmarkSqDistKernel(b *testing.B) {
	x, y := benchPair(b)
	for i := 0; i < b.N; i++ {
		sinkFloat = SqDistKernel(x, y)
	}
}

func BenchmarkAxpyKernel(b *testing.B) {
	x, y := benchPair(b)
	for i := 0; i < b.N; i++ {
		AxpyKernel(0.5, x, y)
	}
}

func BenchmarkGatherDotKernel(b *testing.B) {
	dense, val := randomPair(benchKernelLen, 101)
	idx := make([]int32, benchKernelLen)
	for i := range idx {
		idx[i] = int32((i * 7) % benchKernelLen)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = GatherDotKernel(idx, val, dense)
	}
}

func BenchmarkDot32Kernel(b *testing.B) {
	x, y := benchPair(b)
	x32, y32 := narrowed(x), narrowed(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = Dot32Kernel(x32, y32)
	}
}

func BenchmarkSqDist32Kernel(b *testing.B) {
	x, y := benchPair(b)
	x32, y32 := narrowed(x), narrowed(y)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = SqDist32Kernel(x32, y32)
	}
}
