package linalg

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := NewMatrix(r, c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	return m
}

func TestMatrixAtSet(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 7)
	if got := m.At(1, 2); got != 7 {
		t.Errorf("At = %v", got)
	}
	if got := m.At(0, 0); got != 0 {
		t.Errorf("zero At = %v", got)
	}
}

func TestMatrixFromColumns(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 {
		t.Fatalf("dims = %dx%d", m.Rows, m.Cols)
	}
	if m.At(0, 1) != 3 || m.At(1, 0) != 2 {
		t.Errorf("layout wrong: %v", m)
	}
	empty := MatrixFromColumns(nil)
	if empty.Rows != 0 || empty.Cols != 0 {
		t.Errorf("empty dims = %dx%d", empty.Rows, empty.Cols)
	}
}

func TestMatrixColAliases(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 2}})
	col := m.Col(0)
	col[0] = 42
	if m.At(0, 0) != 42 {
		t.Error("Col should alias storage")
	}
	cp := m.ColCopy(0)
	cp[1] = -1
	if m.At(1, 0) != 2 {
		t.Error("ColCopy should not alias storage")
	}
}

func TestMulVec(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 0}, {0, 1}, {1, 1}})
	got := m.MulVec(Vector{2, 3, 4})
	if !got.ApproxEqual(Vector{6, 7}, 1e-12) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestMulVecT(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 0}, {0, 1}, {1, 1}})
	got := m.MulVecT(Vector{5, 7})
	if !got.ApproxEqual(Vector{5, 7, 12}, 1e-12) {
		t.Errorf("MulVecT = %v", got)
	}
}

func TestSelectColumns(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 1}, {2, 2}, {3, 3}})
	s := m.SelectColumns([]int{2, 0, 2})
	want := MatrixFromColumns([]Vector{{3, 3}, {1, 1}, {3, 3}})
	for j := 0; j < 3; j++ {
		if !s.ColCopy(j).ApproxEqual(want.ColCopy(j), 0) {
			t.Errorf("col %d = %v", j, s.ColCopy(j))
		}
	}
}

func TestSelectColumnsOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(1, 1).SelectColumns([]int{5})
}

func TestMatrixString(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 3}, {2, 4}})
	s := m.String()
	if !strings.Contains(s, "1 2") || !strings.Contains(s, "3 4") {
		t.Errorf("String = %q", s)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: x = (1, 2).
	a := MatrixFromColumns([]Vector{{1, 0, 1}, {0, 1, 1}})
	b := Vector{1, 2, 3}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.ApproxEqual(Vector{1, 2}, 1e-9) {
		t.Errorf("x = %v", x)
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The LS residual must be orthogonal to the column space.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := 5 + rng.Intn(10)
		c := 1 + rng.Intn(4)
		a := randomMatrix(rng, r, c)
		b := NewVector(r)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := LeastSquares(a, b)
		if err != nil {
			t.Fatal(err)
		}
		resid := b.Sub(a.MulVec(x))
		g := a.MulVecT(resid)
		for j := range g {
			if math.Abs(g[j]) > 1e-8 {
				t.Fatalf("trial %d: gradient %v not ~0", trial, g)
			}
		}
	}
}

func TestLeastSquaresUnderdetermined(t *testing.T) {
	a := NewMatrix(1, 2)
	if _, err := LeastSquares(a, Vector{1}); err == nil {
		t.Error("expected error for underdetermined system")
	}
}

func TestLeastSquaresEmpty(t *testing.T) {
	x, err := LeastSquares(NewMatrix(3, 0), Vector{1, 2, 3})
	if err != nil || len(x) != 0 {
		t.Errorf("x = %v, err = %v", x, err)
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	// Two identical columns: solver must not blow up.
	a := MatrixFromColumns([]Vector{{1, 1, 1}, {1, 1, 1}})
	b := Vector{2, 2, 2}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fit := a.MulVec(x)
	if !fit.ApproxEqual(b, 1e-8) {
		t.Errorf("fit = %v, want %v", fit, b)
	}
}

func TestCloneMatrixIndependence(t *testing.T) {
	m := MatrixFromColumns([]Vector{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone aliases storage")
	}
}
