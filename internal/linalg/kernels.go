package linalg

// Blocked, bounds-check-free compute kernels behind the package's vector and
// matrix operations. Each kernel follows the same shape: an up-front length
// reslice (`b = b[:len(a)]`) that ties the two lengths together for the
// prover, a 4-way unrolled main loop that converts the slice heads to fixed
// [4]-array pointers and advances both slices (the one pattern the compiler
// reliably proves in-bounds), feeding four independent accumulators so the
// floating-point dependency chain is broken and the FPU pipelines stay full,
// and a scalar tail. The CI guard (`make bce-check`) builds this file with
// -d=ssa/check_bce and fails if any bounds check reappears in a kernel; the
// one inherently unprovable load — the data-dependent gather in
// GatherDotKernel — lives in gather.go, outside the guard.
//
// The unrolled kernels reassociate the reduction (four partial sums combined
// at the end), so results can differ from a naive left-to-right loop in the
// last ulps. Every kernel is still fully deterministic — same inputs, same
// bits, on every run and every GOMAXPROCS — which is the property the
// selection pipeline's byte-identity tests rely on.

// DotKernel returns Σᵢ a[i]·b[i]. It panics if lengths differ.
func DotKernel(a, b []float64) float64 {
	checkLen(len(a), len(b))
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		x := (*[4]float64)(a)
		y := (*[4]float64)(b)
		s0 += x[0] * y[0]
		s1 += x[1] * y[1]
		s2 += x[2] * y[2]
		s3 += x[3] * y[3]
		a = a[4:]
		b = b[4:]
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// AxpyKernel sets y[i] += alpha·x[i] for every i. It panics if lengths
// differ. alpha == 0 is a no-op (exact: y is not rewritten, so -0/NaN
// propagation cannot perturb it).
func AxpyKernel(alpha float64, x, y []float64) {
	checkLen(len(x), len(y))
	if alpha == 0 {
		return
	}
	x = x[:len(y)]
	for len(y) >= 4 && len(x) >= 4 {
		xx := (*[4]float64)(x)
		yy := (*[4]float64)(y)
		yy[0] += alpha * xx[0]
		yy[1] += alpha * xx[1]
		yy[2] += alpha * xx[2]
		yy[3] += alpha * xx[3]
		x = x[4:]
		y = y[4:]
	}
	for i := 0; i < len(y) && i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// AddKernel sets y[i] += x[i] for every i. It panics if lengths differ.
func AddKernel(x, y []float64) {
	checkLen(len(x), len(y))
	x = x[:len(y)]
	for len(y) >= 4 && len(x) >= 4 {
		xx := (*[4]float64)(x)
		yy := (*[4]float64)(y)
		yy[0] += xx[0]
		yy[1] += xx[1]
		yy[2] += xx[2]
		yy[3] += xx[3]
		x = x[4:]
		y = y[4:]
	}
	for i := 0; i < len(y) && i < len(x); i++ {
		y[i] += x[i]
	}
}

// SqDistKernel returns Σᵢ (a[i]−b[i])². It panics if lengths differ.
func SqDistKernel(a, b []float64) float64 {
	checkLen(len(a), len(b))
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	for len(a) >= 4 && len(b) >= 4 {
		x := (*[4]float64)(a)
		y := (*[4]float64)(b)
		d0 := x[0] - y[0]
		d1 := x[1] - y[1]
		d2 := x[2] - y[2]
		d3 := x[3] - y[3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
		a = a[4:]
		b = b[4:]
	}
	for i := 0; i < len(a) && i < len(b); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return s0 + s1 + s2 + s3
}
