package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestNNLSRecoverNonNegativeSolution(t *testing.T) {
	// b lies exactly in the cone: x = (1, 0.5).
	a := MatrixFromColumns([]Vector{{1, 0, 0}, {0, 2, 0}})
	b := Vector{1, 1, 0}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !x.ApproxEqual(Vector{1, 0.5}, 1e-8) {
		t.Errorf("x = %v", x)
	}
}

func TestNNLSClampsNegativeComponent(t *testing.T) {
	// Unconstrained LS would need a negative coefficient on column 2.
	a := MatrixFromColumns([]Vector{{1, 0}, {1, 1}})
	b := Vector{2, -1}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j, v := range x {
		if v < 0 {
			t.Fatalf("x[%d] = %v < 0", j, v)
		}
	}
	// KKT: gradient must be <= 0 on active components, ~0 on passive ones.
	g := a.MulVecT(b.Sub(a.MulVec(x)))
	for j, v := range x {
		if v > 1e-8 && math.Abs(g[j]) > 1e-6 {
			t.Errorf("passive gradient g[%d] = %v", j, g[j])
		}
		if v <= 1e-8 && g[j] > 1e-6 {
			t.Errorf("active gradient g[%d] = %v > 0", j, g[j])
		}
	}
}

func TestNNLSZeroColumns(t *testing.T) {
	x, err := NNLS(NewMatrix(3, 0), Vector{1, 2, 3})
	if err != nil || len(x) != 0 {
		t.Errorf("x = %v err = %v", x, err)
	}
}

func TestNNLSZeroTarget(t *testing.T) {
	a := MatrixFromColumns([]Vector{{1, 0}, {0, 1}})
	x, err := NNLS(a, Vector{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if x.Norm1() > 1e-10 {
		t.Errorf("x = %v, want zeros", x)
	}
}

// NNLS objective must never exceed the objective of the zero vector, and the
// solution must satisfy the KKT conditions on random instances.
func TestNNLSRandomKKT(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 100; trial++ {
		r := 4 + rng.Intn(12)
		c := 1 + rng.Intn(r) // keep supports solvable
		a := randomMatrix(rng, r, c)
		b := NewVector(r)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := NNLS(a, b)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for j, v := range x {
			if v < 0 {
				t.Fatalf("trial %d: negative x[%d] = %v", trial, j, v)
			}
		}
		fit := SquaredDistance(a.MulVec(x), b)
		zero := b.Dot(b)
		if fit > zero+1e-8 {
			t.Fatalf("trial %d: fit %v worse than zero vector %v", trial, fit, zero)
		}
		g := a.MulVecT(b.Sub(a.MulVec(x)))
		for j := range x {
			if x[j] > 1e-7 && math.Abs(g[j]) > 1e-5 {
				t.Fatalf("trial %d: passive gradient %v", trial, g[j])
			}
			if x[j] <= 1e-7 && g[j] > 1e-5 {
				t.Fatalf("trial %d: active gradient %v > 0", trial, g[j])
			}
		}
	}
}

func TestNNLSDuplicateColumns(t *testing.T) {
	// Identical columns: any non-negative split with the right sum is
	// optimal; the fit must be exact.
	a := MatrixFromColumns([]Vector{{1, 1}, {1, 1}})
	b := Vector{3, 3}
	x, err := NNLS(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fit := a.MulVec(x)
	if !fit.ApproxEqual(b, 1e-8) {
		t.Errorf("fit = %v", fit)
	}
}
