package linalg

import (
	"math/rand"
	"testing"
)

func benchSystem(rows, cols int) (*Matrix, Vector) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, rows, cols)
	b := NewVector(rows)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	return a, b
}

func BenchmarkLeastSquares(b *testing.B) {
	a, y := benchSystem(120, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LeastSquares(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNNLS(b *testing.B) {
	a, y := benchSystem(120, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NNLS(a, y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRidgeSolve(b *testing.B) {
	a, y := benchSystem(120, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RidgeSolve(a, y, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVec(b *testing.B) {
	a, _ := benchSystem(200, 100)
	x := NewVector(100)
	for i := range x {
		x[i] = float64(i % 3)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVec(x)
	}
}

func BenchmarkMulVecT(b *testing.B) {
	a, y := benchSystem(200, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MulVecT(y)
	}
}
