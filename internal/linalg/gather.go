package linalg

// GatherDotKernel returns Σₜ val[t]·dense[idx[t]] — the sparse-column dot
// product behind the NOMP correlation pass and the Gram assembly. idx and
// val must have equal length; every index must be within dense (the sparse
// forms are built from the same matrix, so this holds by construction).
//
// This kernel lives outside kernels.go deliberately: the dense[idx[t]] load
// is data-dependent, so its bounds check is unprovable by construction and
// stays as the safety net against a corrupt sparse form. The bce-check guard
// covers kernels.go and kernels32.go only; everything provable here (the
// idx/val walk) still follows the bounds-check-free advancing-slice shape.
func GatherDotKernel(idx []int32, val, dense []float64) float64 {
	checkLen(len(idx), len(val))
	val = val[:len(idx)]
	var s0, s1 float64
	for len(idx) >= 2 && len(val) >= 2 {
		ii := (*[2]int32)(idx)
		vv := (*[2]float64)(val)
		s0 += vv[0] * dense[ii[0]]
		s1 += vv[1] * dense[ii[1]]
		idx = idx[2:]
		val = val[2:]
	}
	for i := 0; i < len(idx) && i < len(val); i++ {
		s0 += val[i] * dense[idx[i]]
	}
	return s0 + s1
}
