package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, 5, 6}
	if got := v.Add(w); !got.ApproxEqual(Vector{5, 7, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := w.Sub(v); !got.ApproxEqual(Vector{3, 3, 3}, 0) {
		t.Errorf("Sub = %v", got)
	}
	v.AddInPlace(w)
	if !v.ApproxEqual(Vector{5, 7, 9}, 0) {
		t.Errorf("AddInPlace = %v", v)
	}
	v.SubInPlace(w)
	if !v.ApproxEqual(Vector{1, 2, 3}, 0) {
		t.Errorf("SubInPlace = %v", v)
	}
}

func TestVectorDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1, 2}.Dot(Vector{1})
}

func TestVectorScaleDotNorm(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm2(); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Norm2 = %v", got)
	}
	if got := v.Norm1(); !almostEqual(got, 7, 1e-12) {
		t.Errorf("Norm1 = %v", got)
	}
	if got := v.Scale(2); !got.ApproxEqual(Vector{6, 8}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vector{1, 1}); !almostEqual(got, 7, 1e-12) {
		t.Errorf("Dot = %v", got)
	}
	v.AXPY(0.5, Vector{2, 2})
	if !v.ApproxEqual(Vector{4, 5}, 1e-12) {
		t.Errorf("AXPY = %v", v)
	}
}

func TestVectorSumMax(t *testing.T) {
	v := Vector{-1, 7, 3}
	if got := v.Sum(); !almostEqual(got, 9, 1e-12) {
		t.Errorf("Sum = %v", got)
	}
	if got := v.Max(); !almostEqual(got, 7, 0) {
		t.Errorf("Max = %v", got)
	}
	if got := (Vector{}).Max(); !math.IsInf(got, -1) {
		t.Errorf("empty Max = %v, want -Inf", got)
	}
}

func TestSquaredDistanceMatchesPaperExample(t *testing.T) {
	// Δ(x, y) = Σ (x_i - y_i)²  (Eq. 2)
	x := Vector{1, 0, 2}
	y := Vector{0, 0, 0}
	if got := SquaredDistance(x, y); !almostEqual(got, 5, 1e-12) {
		t.Errorf("SquaredDistance = %v, want 5", got)
	}
	if got := SquaredDistance(x, x); got != 0 {
		t.Errorf("self distance = %v, want 0", got)
	}
}

func TestL1Distance(t *testing.T) {
	if got := L1Distance(Vector{1, -2}, Vector{0, 2}); !almostEqual(got, 5, 1e-12) {
		t.Errorf("L1Distance = %v, want 5", got)
	}
}

func TestCosine(t *testing.T) {
	if got := Cosine(Vector{1, 0}, Vector{0, 1}); !almostEqual(got, 0, 1e-12) {
		t.Errorf("orthogonal cosine = %v", got)
	}
	if got := Cosine(Vector{2, 2}, Vector{1, 1}); !almostEqual(got, 1, 1e-12) {
		t.Errorf("parallel cosine = %v", got)
	}
	if got := Cosine(Vector{0, 0}, Vector{1, 1}); got != 0 {
		t.Errorf("zero-vector cosine = %v, want 0", got)
	}
}

func TestConcat(t *testing.T) {
	got := Concat(Vector{1}, Vector{2, 3}, Vector{})
	if !got.ApproxEqual(Vector{1, 2, 3}, 0) {
		t.Errorf("Concat = %v", got)
	}
}

func TestNormalized(t *testing.T) {
	v := Vector{1, 3}
	got := v.Normalized()
	if !got.ApproxEqual(Vector{0.25, 0.75}, 1e-12) {
		t.Errorf("Normalized = %v", got)
	}
	if z := (Vector{0, 0}).Normalized(); !z.ApproxEqual(Vector{0, 0}, 0) {
		t.Errorf("zero Normalized = %v", z)
	}
}

func TestCloneIndependence(t *testing.T) {
	v := Vector{1, 2}
	w := v.Clone()
	w[0] = 99
	if v[0] != 1 {
		t.Error("Clone aliases original storage")
	}
}

// Property: squared distance is symmetric and non-negative; triangle-ish via
// Cauchy-Schwarz on the dot product.
func TestSquaredDistanceProperties(t *testing.T) {
	f := func(a, b [8]float64) bool {
		for i := range a {
			// Keep magnitudes finite after squaring.
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
			if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
				return true
			}
		}
		v, w := Vector(a[:]), Vector(b[:])
		d1, d2 := SquaredDistance(v, w), SquaredDistance(w, v)
		return d1 >= 0 && almostEqual(d1, d2, 1e-9*(1+math.Abs(d1)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: |cosine| <= 1 for all inputs.
func TestCosineBounded(t *testing.T) {
	f := func(a, b [6]float64) bool {
		for i := range a {
			if math.IsNaN(a[i]) || math.IsInf(a[i], 0) || math.IsNaN(b[i]) || math.IsInf(b[i], 0) {
				return true
			}
			// Clamp magnitudes to avoid overflow in the product.
			a[i] = math.Mod(a[i], 1e6)
			b[i] = math.Mod(b[i], 1e6)
		}
		c := Cosine(Vector(a[:]), Vector(b[:]))
		return c <= 1+1e-9 && c >= -1-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: normalization produces an L1-unit vector for nonzero input.
func TestNormalizedUnitNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		v := NewVector(1 + rng.Intn(10))
		for i := range v {
			v[i] = rng.Float64()*10 - 5
		}
		if v.Norm1() == 0 {
			continue
		}
		if got := v.Normalized().Norm1(); !almostEqual(got, 1, 1e-9) {
			t.Fatalf("Normalized L1 = %v", got)
		}
	}
}
