package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense column-major matrix. Column-major storage fits the
// Integer-Regression workload, where columns (one per review) are gathered,
// deduplicated, and multiplied against repeatedly.
type Matrix struct {
	Rows, Cols int
	// data holds the matrix column by column: element (i, j) lives at
	// data[j*Rows+i].
	data []float64
}

// NewMatrix returns a zero matrix with r rows and c columns.
func NewMatrix(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("linalg: negative dimension %dx%d", r, c))
	}
	return &Matrix{Rows: r, Cols: c, data: make([]float64, r*c)}
}

// MatrixFromColumns builds a matrix from the given columns. All columns must
// share the same length.
func MatrixFromColumns(cols []Vector) *Matrix {
	if len(cols) == 0 {
		return NewMatrix(0, 0)
	}
	r := len(cols[0])
	m := NewMatrix(r, len(cols))
	for j, c := range cols {
		checkLen(r, len(c))
		copy(m.data[j*r:(j+1)*r], c)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.data[j*m.Rows+i] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.data[j*m.Rows+i] = v }

// Col returns column j as a slice aliasing the matrix storage. Mutating the
// returned slice mutates the matrix.
func (m *Matrix) Col(j int) Vector { return Vector(m.data[j*m.Rows : (j+1)*m.Rows]) }

// ColCopy returns a copy of column j.
func (m *Matrix) ColCopy(j int) Vector { return m.Col(j).Clone() }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.data, m.data)
	return out
}

// MulVec returns m * x.
func (m *Matrix) MulVec(x Vector) Vector {
	checkLen(m.Cols, len(x))
	out := NewVector(m.Rows)
	for j := 0; j < m.Cols; j++ {
		AxpyKernel(x[j], m.data[j*m.Rows:(j+1)*m.Rows], out)
	}
	return out
}

// MulVecT returns mᵀ * y.
func (m *Matrix) MulVecT(y Vector) Vector {
	checkLen(m.Rows, len(y))
	out := NewVector(m.Cols)
	for j := 0; j < m.Cols; j++ {
		out[j] = DotKernel(m.data[j*m.Rows:(j+1)*m.Rows], y)
	}
	return out
}

// SelectColumns returns a new matrix assembled from the listed columns of m,
// in order. Indices may repeat.
func (m *Matrix) SelectColumns(idx []int) *Matrix {
	out := NewMatrix(m.Rows, len(idx))
	for k, j := range idx {
		if j < 0 || j >= m.Cols {
			panic(fmt.Sprintf("linalg: column index %d out of range [0,%d)", j, m.Cols))
		}
		copy(out.data[k*m.Rows:(k+1)*m.Rows], m.data[j*m.Rows:(j+1)*m.Rows])
	}
	return out
}

// String renders the matrix row by row, mostly for debugging and tests.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%.4g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// LeastSquares solves min_x ||A x - b||_2 via QR decomposition with
// Householder reflections. A must have Rows >= Cols and full column rank; a
// rank-deficient A yields the minimum-norm-ish solution produced by
// back-substitution with tiny pivots guarded to zero.
func LeastSquares(a *Matrix, b Vector) (Vector, error) {
	checkLen(a.Rows, len(b))
	if a.Cols == 0 {
		return Vector{}, nil
	}
	if a.Rows < a.Cols {
		return nil, fmt.Errorf("linalg: underdetermined system %dx%d", a.Rows, a.Cols)
	}
	r := a.Clone()
	y := b.Clone()
	// Householder QR, applying reflections to y as we go.
	for k := 0; k < r.Cols; k++ {
		// Build the reflector for column k below row k.
		var norm float64
		for i := k; i < r.Rows; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			continue
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// v = x - norm*e1, stored in place below the diagonal.
		vk := r.At(k, k) - norm
		r.Set(k, k, norm)
		if vk == 0 {
			continue
		}
		// Normalize so v[0] = 1 implicitly; beta = -vk/norm.
		beta := -vk / norm
		// Store scaled reflector tail in a scratch vector.
		tail := make([]float64, r.Rows-k)
		tail[0] = 1
		for i := k + 1; i < r.Rows; i++ {
			tail[i-k] = r.At(i, k) / vk
			r.Set(i, k, 0)
		}
		// Apply H = I - beta * v vᵀ to the remaining columns.
		for j := k + 1; j < r.Cols; j++ {
			var s float64
			for i := k; i < r.Rows; i++ {
				s += tail[i-k] * r.At(i, j)
			}
			s *= beta
			for i := k; i < r.Rows; i++ {
				r.Set(i, j, r.At(i, j)-s*tail[i-k])
			}
		}
		// Apply H to y.
		var s float64
		for i := k; i < r.Rows; i++ {
			s += tail[i-k] * y[i]
		}
		s *= beta
		for i := k; i < r.Rows; i++ {
			y[i] -= s * tail[i-k]
		}
	}
	// Back substitution on the upper-triangular R.
	x := NewVector(r.Cols)
	for k := r.Cols - 1; k >= 0; k-- {
		s := y[k]
		for j := k + 1; j < r.Cols; j++ {
			s -= r.At(k, j) * x[j]
		}
		d := r.At(k, k)
		if math.Abs(d) < 1e-12 {
			x[k] = 0
			continue
		}
		x[k] = s / d
	}
	return x, nil
}
