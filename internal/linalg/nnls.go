package linalg

import (
	"errors"
	"math"
)

// ErrNNLSNoConvergence is returned when the active-set loop exceeds its
// iteration budget. The solver returns its best iterate alongside the error.
var ErrNNLSNoConvergence = errors.New("linalg: NNLS did not converge")

// NNLS solves min_x ||A x - b||_2 subject to x >= 0 using the Lawson–Hanson
// active-set algorithm. It returns the solution vector of length A.Cols.
//
// This is the inner solver of NOMP (non-negative orthogonal matching
// pursuit): after each atom is added to the support, the coefficients over
// the support are re-fit under the non-negativity constraint.
func NNLS(a *Matrix, b Vector) (Vector, error) {
	checkLen(a.Rows, len(b))
	n := a.Cols
	x := NewVector(n)
	if n == 0 {
		return x, nil
	}
	passive := make([]bool, n) // true = in the passive (free) set
	// w = Aᵀ (b - A x), the negative gradient.
	resid := b.Clone()
	w := a.MulVecT(resid)

	const tol = 1e-10
	maxOuter := 3 * n
	if maxOuter < 30 {
		maxOuter = 30
	}
	for outer := 0; outer < maxOuter; outer++ {
		// Pick the most violated constraint among the active set.
		best, bestW := -1, tol
		for j := 0; j < n; j++ {
			if !passive[j] && w[j] > bestW {
				best, bestW = j, w[j]
			}
		}
		if best < 0 {
			return x, nil // KKT satisfied
		}
		passive[best] = true

		// Inner loop: solve unconstrained LS on the passive set; if any
		// passive coefficient goes non-positive, step back and shrink.
		for inner := 0; inner < maxOuter; inner++ {
			idx := passiveIndices(passive)
			sub := a.SelectColumns(idx)
			z, err := LeastSquares(sub, b)
			if err != nil {
				return x, err
			}
			if allPositive(z, tol) {
				for k, j := range idx {
					x[j] = z[k]
				}
				break
			}
			// Find the limiting step alpha along (z - x) on the passive set.
			alpha := math.Inf(1)
			for k, j := range idx {
				if z[k] <= tol {
					den := x[j] - z[k]
					if den > 0 {
						if r := x[j] / den; r < alpha {
							alpha = r
						}
					} else {
						alpha = 0
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for k, j := range idx {
				x[j] += alpha * (z[k] - x[j])
				if x[j] <= tol {
					x[j] = 0
					passive[j] = false
				}
			}
		}
		// Refresh gradient.
		resid = b.Sub(a.MulVec(x))
		w = a.MulVecT(resid)
	}
	return x, ErrNNLSNoConvergence
}

func passiveIndices(passive []bool) []int {
	idx := make([]int, 0, len(passive))
	for j, p := range passive {
		if p {
			idx = append(idx, j)
		}
	}
	return idx
}

func allPositive(v Vector, tol float64) bool {
	for _, x := range v {
		if x <= tol {
			return false
		}
	}
	return true
}
