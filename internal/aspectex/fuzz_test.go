package aspectex

import (
	"testing"

	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func FuzzExtract(f *testing.F) {
	f.Add("the battery lasts all day, great endurance.")
	f.Add("")
	f.Add("battery battery battery terrible great")
	f.Add("price. price. price is great. price is awful.")
	f.Add(". . . , , ,")
	ex := New(lexicon.Cellphone)
	z := len(lexicon.Cellphone.Aspects)
	f.Fuzz(func(t *testing.T, text string) {
		mentions := ex.Extract(text)
		seen := map[int]bool{}
		for _, m := range mentions {
			if m.Aspect < 0 || m.Aspect >= z {
				t.Fatalf("aspect %d out of range", m.Aspect)
			}
			if seen[m.Aspect] {
				t.Fatalf("duplicate mention for aspect %d", m.Aspect)
			}
			seen[m.Aspect] = true
			switch {
			case m.Score > 0 && m.Polarity != model.Positive:
				t.Fatalf("score %v with polarity %v", m.Score, m.Polarity)
			case m.Score < 0 && m.Polarity != model.Negative:
				t.Fatalf("score %v with polarity %v", m.Score, m.Polarity)
			case m.Score == 0 && m.Polarity != model.Neutral:
				t.Fatalf("zero score with polarity %v", m.Polarity)
			}
		}
	})
}
