// Package aspectex implements frequency-based aspect-opinion extraction
// from raw review text, standing in for the Sentires / Microsoft-Concepts
// pipeline the paper's datasets were annotated with (§4.1.1, following Gao
// et al.): sentences are scanned for aspect surface forms from the category
// lexicon, and the polarity of each matched aspect is the sign of the summed
// sentiment-word valence in its sentence.
package aspectex

import (
	"strings"

	"comparesets/internal/lexicon"
	"comparesets/internal/model"
	"comparesets/internal/rouge"
)

// Extractor recognizes one category's aspects.
type Extractor struct {
	cat       lexicon.Category
	surface2a map[string]int
}

// New builds an extractor for the category. Aspect indices follow the
// category's lexicon order (the same order internal/datagen uses for the
// corpus vocabulary).
func New(cat lexicon.Category) *Extractor {
	e := &Extractor{cat: cat, surface2a: map[string]int{}}
	for i, a := range cat.Aspects {
		for _, s := range a.Surfaces {
			e.surface2a[s] = i
		}
	}
	return e
}

// Extract returns the aspect-opinion mentions found in the text, at most one
// per aspect (scores of repeated matches aggregate). Sentences are split on
// periods; within a sentence, the summed valence of sentiment-lexicon words
// determines the polarity of every aspect surfaced there.
func (e *Extractor) Extract(text string) []model.Mention {
	type acc struct {
		score float64
		hits  int
	}
	byAspect := map[int]*acc{}
	var order []int
	for _, sentence := range strings.Split(text, ".") {
		tokens := rouge.Tokenize(sentence)
		if len(tokens) == 0 {
			continue
		}
		var valence float64
		aspects := map[int]bool{}
		for _, tok := range tokens {
			valence += lexicon.Valence(tok)
			if a, ok := e.surface2a[tok]; ok {
				aspects[a] = true
			}
		}
		for a := range aspects {
			entry, ok := byAspect[a]
			if !ok {
				entry = &acc{}
				byAspect[a] = entry
				order = append(order, a)
			}
			entry.score += valence
			entry.hits++
		}
	}
	sortInts(order)
	out := make([]model.Mention, 0, len(order))
	for _, a := range order {
		entry := byAspect[a]
		m := model.Mention{Aspect: a, Score: entry.score}
		switch {
		case entry.score > 0:
			m.Polarity = model.Positive
		case entry.score < 0:
			m.Polarity = model.Negative
		default:
			m.Polarity = model.Neutral
		}
		out = append(out, m)
	}
	return out
}

// Annotate replaces every review's mentions in the corpus with mentions
// extracted from its text, exercising the full text→annotation pipeline.
func (e *Extractor) Annotate(c *model.Corpus) {
	for _, it := range c.Items {
		for _, r := range it.Reviews {
			r.Mentions = e.Extract(r.Text)
		}
	}
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}
