package aspectex

import (
	"math/rand"
	"testing"

	"comparesets/internal/lexicon"
	"comparesets/internal/model"
	"comparesets/internal/textgen"
)

func TestExtractSimpleSentences(t *testing.T) {
	e := New(lexicon.Cellphone)
	ms := e.Extract("the battery lasts all day, great endurance. the cable frayed within weeks, very cheap.")
	if len(ms) != 2 {
		t.Fatalf("mentions = %+v", ms)
	}
	byAspect := map[int]model.Mention{}
	for _, m := range ms {
		byAspect[m.Aspect] = m
	}
	battery, _ := indexOf(lexicon.Cellphone, "battery")
	cable, _ := indexOf(lexicon.Cellphone, "cable")
	if byAspect[battery].Polarity != model.Positive {
		t.Errorf("battery polarity = %v", byAspect[battery].Polarity)
	}
	if byAspect[cable].Polarity != model.Negative {
		t.Errorf("cable polarity = %v", byAspect[cable].Polarity)
	}
}

func indexOf(cat lexicon.Category, name string) (int, bool) {
	for i, a := range cat.Aspects {
		if a.Name == name {
			return i, true
		}
	}
	return -1, false
}

func TestExtractNeutral(t *testing.T) {
	e := New(lexicon.Cellphone)
	ms := e.Extract("the battery is rated at 3000 mah.")
	if len(ms) != 1 || ms[0].Polarity != model.Neutral || ms[0].Score != 0 {
		t.Errorf("mentions = %+v", ms)
	}
}

func TestExtractNoAspects(t *testing.T) {
	e := New(lexicon.Toy)
	if ms := e.Extract("arrived on a tuesday."); len(ms) != 0 {
		t.Errorf("mentions = %+v", ms)
	}
	if ms := e.Extract(""); len(ms) != 0 {
		t.Errorf("mentions = %+v", ms)
	}
}

func TestExtractAggregatesRepeatedAspect(t *testing.T) {
	e := New(lexicon.Cellphone)
	ms := e.Extract("the battery is excellent and reliable. battery life is disappointing.")
	if len(ms) != 1 {
		t.Fatalf("mentions = %+v", ms)
	}
	// Valences: excellent(+2)+reliable(+1) then disappointing(−1) → +2.
	if ms[0].Polarity != model.Positive || ms[0].Score != 2 {
		t.Errorf("mention = %+v", ms[0])
	}
}

func TestExtractSentenceScoping(t *testing.T) {
	// Sentiment in one sentence must not leak into another sentence's
	// aspect.
	e := New(lexicon.Cellphone)
	ms := e.Extract("the battery is excellent. the screen is five inches across.")
	byName := map[int]model.Mention{}
	for _, m := range ms {
		byName[m.Aspect] = m
	}
	screen, _ := indexOf(lexicon.Cellphone, "screen")
	if byName[screen].Polarity != model.Neutral {
		t.Errorf("screen mention = %+v", byName[screen])
	}
}

// Round trip: generated review text must re-extract to the original
// aspect set with matching polarities for non-neutral mentions.
func TestGenerateExtractRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, cat := range lexicon.AllCategories() {
		e := New(cat)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(3)
			seen := map[int]bool{}
			var mentions []model.Mention
			for len(mentions) < n {
				a := rng.Intn(len(cat.Aspects))
				if seen[a] {
					continue
				}
				seen[a] = true
				pol := model.Polarity(rng.Intn(3))
				mentions = append(mentions, model.Mention{Aspect: a, Polarity: pol})
			}
			text := textgen.Review(cat, mentions, rng)
			got := e.Extract(text)
			gotBy := map[int]model.Polarity{}
			for _, m := range got {
				gotBy[m.Aspect] = m.Polarity
			}
			for _, want := range mentions {
				pol, ok := gotBy[want.Aspect]
				if !ok {
					t.Fatalf("%s trial %d: aspect %d lost from %q", cat.Name, trial, want.Aspect, text)
				}
				if pol != want.Polarity {
					t.Fatalf("%s trial %d: aspect %d polarity %v, want %v (text %q)",
						cat.Name, trial, want.Aspect, pol, want.Polarity, text)
				}
			}
			if len(got) != len(mentions) {
				t.Fatalf("%s trial %d: extracted %d mentions, want %d (text %q)",
					cat.Name, trial, len(got), len(mentions), text)
			}
		}
	}
}

func TestAnnotateCorpus(t *testing.T) {
	cat := lexicon.Cellphone
	voc := model.NewVocabulary(cat.AspectNames())
	c := model.NewCorpus(cat.Name, voc)
	c.AddItem(&model.Item{ID: "p1", Reviews: []*model.Review{
		{ID: "r1", Text: "the battery lasts all day, great endurance."},
	}})
	New(cat).Annotate(c)
	r := c.Items["p1"].Reviews[0]
	if len(r.Mentions) != 1 || r.Mentions[0].Polarity != model.Positive {
		t.Errorf("mentions = %+v", r.Mentions)
	}
}
