// Per-backend circuit breakers.
//
// A breaker sits between the router and one worker replica and answers one
// question before every forward: is this backend worth a request right now?
// Closed means yes; open means no (the backend recently failed hard enough
// that more traffic only burns deadline); half-open means "send a probe and
// find out". Two independent trip conditions feed it — a run of consecutive
// failures (fast trip on a dead backend) and a windowed error rate (slow
// trip on a flaky one that still answers sometimes) — because a backend
// that alternates success and failure never builds a consecutive run yet
// still deserves isolation.
package cluster

import (
	"sync"
	"time"
)

// BreakerState is the circuit state machine's position.
type BreakerState int

const (
	// BreakerClosed: requests flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests may pass; their
	// outcome closes or reopens the circuit.
	BreakerHalfOpen
)

// String returns the conventional state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one breaker. The zero value is usable: every field
// falls back to the package default.
type BreakerConfig struct {
	// ConsecutiveFailures opens the circuit after this many failures in a
	// row (default 5).
	ConsecutiveFailures int
	// Window is how many recent outcomes the error-rate trip condition
	// looks at (default 50).
	Window int
	// ErrorRate opens the circuit when the windowed failure fraction
	// reaches this value with at least MinSamples outcomes recorded
	// (default 0.5).
	ErrorRate float64
	// MinSamples gates the error-rate trip so a cold window cannot open on
	// its first failure (default 10).
	MinSamples int
	// Cooldown is how long an open circuit refuses traffic before letting
	// probes through (default 500ms).
	Cooldown time.Duration
	// HalfOpenProbes bounds concurrent probes while half-open (default 1).
	HalfOpenProbes int
	// SuccessesToClose is how many consecutive probe successes close a
	// half-open circuit (default 2).
	SuccessesToClose int
	// now overrides the clock in tests; nil uses time.Now.
	now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.ConsecutiveFailures <= 0 {
		c.ConsecutiveFailures = 5
	}
	if c.Window <= 0 {
		c.Window = 50
	}
	if c.ErrorRate <= 0 || c.ErrorRate > 1 {
		c.ErrorRate = 0.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.SuccessesToClose <= 0 {
		c.SuccessesToClose = 2
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// Breaker is one backend's circuit. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu           sync.Mutex
	state        BreakerState
	consecFails  int
	window       []bool // ring of outcomes, true = failure
	windowAt     int
	windowFilled int
	windowFails  int
	openedAt     time.Time
	probes       int // in-flight probes while half-open
	probeWins    int // consecutive probe successes while half-open
	// onTransition, when set, observes every state change (for metrics).
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker with the config's defaults applied.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, window: make([]bool, cfg.Window)}
}

// OnTransition registers a state-change observer (replacing any previous
// one). The callback runs under the breaker lock; keep it O(1).
func (b *Breaker) OnTransition(f func(from, to BreakerState)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.onTransition = f
}

// State returns the current state, promoting an expired open circuit to
// half-open as a side effect so callers always observe the actionable
// state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Allow reports whether a request may be sent now. While half-open it
// also claims a probe slot; the caller MUST follow up with Record so the
// slot is released and the probe outcome counted.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		if b.probes < b.cfg.HalfOpenProbes {
			b.probes++
			return true
		}
		return false
	default:
		return false
	}
}

// Release returns a slot claimed by Allow without recording an outcome.
// The router calls it when an attempt is abandoned with no verdict on the
// backend — cancelled because another replica already answered or the
// client's deadline expired. Without it an abandoned half-open probe would
// hold its slot forever: Allow would refuse every future probe and the
// backend could never rejoin rotation.
func (b *Breaker) Release() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen && b.probes > 0 {
		b.probes--
	}
}

// Record reports one request outcome. Success while half-open counts
// toward closing; failure reopens immediately. Failures while closed feed
// both trip conditions.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.transition(BreakerOpen)
			return
		}
		b.probeWins++
		if b.probeWins >= b.cfg.SuccessesToClose {
			b.transition(BreakerClosed)
		}
	case BreakerClosed:
		b.push(!success)
		if success {
			b.consecFails = 0
			return
		}
		b.consecFails++
		if b.consecFails >= b.cfg.ConsecutiveFailures {
			b.transition(BreakerOpen)
			return
		}
		if b.windowFilled >= b.cfg.MinSamples &&
			float64(b.windowFails) >= b.cfg.ErrorRate*float64(b.windowFilled) {
			b.transition(BreakerOpen)
		}
	case BreakerOpen:
		// A straggler outcome from before the trip: ignored. The cooldown
		// clock, not late results, decides when to probe again.
	}
}

// maybeHalfOpen promotes an open circuit whose cooldown has elapsed.
// Caller holds b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && b.cfg.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.transition(BreakerHalfOpen)
	}
}

// transition moves the state machine and resets the per-state scratch.
// Caller holds b.mu.
func (b *Breaker) transition(to BreakerState) {
	from := b.state
	if from == to {
		return
	}
	b.state = to
	switch to {
	case BreakerOpen:
		b.openedAt = b.cfg.now()
		b.probes = 0
		b.probeWins = 0
	case BreakerHalfOpen:
		b.probes = 0
		b.probeWins = 0
	case BreakerClosed:
		b.consecFails = 0
		b.windowAt, b.windowFilled, b.windowFails = 0, 0, 0
		for i := range b.window {
			b.window[i] = false
		}
	}
	if b.onTransition != nil {
		b.onTransition(from, to)
	}
}

// push records one outcome into the sliding window. Caller holds b.mu.
func (b *Breaker) push(failure bool) {
	if b.windowFilled == len(b.window) {
		if b.window[b.windowAt] {
			b.windowFails--
		}
	} else {
		b.windowFilled++
	}
	b.window[b.windowAt] = failure
	if failure {
		b.windowFails++
	}
	b.windowAt = (b.windowAt + 1) % len(b.window)
}
