// Per-backend runtime state.
//
// The router keeps one backend struct per worker replica: its base URL, its
// circuit breaker, and a small ring of recent select latencies whose p95
// sets the hedge delay. The latency tracker is deliberately tiny (64
// samples) — hedging wants "what is slow *right now*", not a long-horizon
// percentile, and a ring that small adapts within a few dozen requests of a
// backend going sour.
package cluster

import (
	"sort"
	"sync"
	"time"
)

// latencySamples is the ring size of the per-backend latency tracker.
const latencySamples = 64

// minHedgeSamples is how many observations the tracker needs before its p95
// is trusted; below that the router uses its configured default delay.
const minHedgeSamples = 8

// backend is the router's view of one worker replica.
type backend struct {
	addr    string
	breaker *Breaker
	lat     latencyRing
}

// newBackend builds the per-replica state.
func newBackend(addr string, cfg BreakerConfig) *backend {
	return &backend{addr: addr, breaker: NewBreaker(cfg)}
}

// latencyRing is a fixed-size ring of recent request latencies. Safe for
// concurrent use.
type latencyRing struct {
	mu      sync.Mutex
	samples [latencySamples]time.Duration
	at      int
	filled  int
}

// observe records one latency sample.
func (l *latencyRing) observe(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.samples[l.at] = d
	l.at = (l.at + 1) % latencySamples
	if l.filled < latencySamples {
		l.filled++
	}
}

// p95 returns the 95th-percentile latency of the ring, or (0, false) while
// fewer than minHedgeSamples observations exist.
func (l *latencyRing) p95() (time.Duration, bool) {
	l.mu.Lock()
	n := l.filled
	if n < minHedgeSamples {
		l.mu.Unlock()
		return 0, false
	}
	buf := make([]time.Duration, n)
	copy(buf, l.samples[:n])
	l.mu.Unlock()
	sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
	idx := (n * 95) / 100
	if idx >= n {
		idx = n - 1
	}
	return buf[idx], true
}
