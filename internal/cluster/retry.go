// Retry budgets and jittered backoff.
//
// Naive per-request retry policies turn a brownout into a meltdown: when a
// shard slows down, every client doubles its offered load exactly when the
// backend can least afford it. The router instead draws every retry and
// every hedge from a shared token-bucket budget that refills as a fraction
// of successful work — a healthy cluster retries freely, a failing one
// degrades to roughly (1 + ratio)× its organic traffic. Retries apply only
// to idempotent selects; mutations are never retried (a replayed append
// would be a duplicate review).
package cluster

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryBudgetConfig tunes a RetryBudget. Zero values use the defaults.
type RetryBudgetConfig struct {
	// Tokens is the bucket capacity and its starting fill (default 10).
	Tokens float64
	// Ratio is how much budget each successful request deposits
	// (default 0.1 — at most one retry per ten successes, steady-state).
	Ratio float64
}

func (c RetryBudgetConfig) withDefaults() RetryBudgetConfig {
	if c.Tokens <= 0 {
		c.Tokens = 10
	}
	if c.Ratio <= 0 {
		c.Ratio = 0.1
	}
	return c
}

// RetryBudget is a token bucket shared by every retry and hedge the router
// issues. Safe for concurrent use.
type RetryBudget struct {
	mu     sync.Mutex
	tokens float64
	cfg    RetryBudgetConfig
}

// NewRetryBudget builds a full bucket.
func NewRetryBudget(cfg RetryBudgetConfig) *RetryBudget {
	cfg = cfg.withDefaults()
	return &RetryBudget{tokens: cfg.Tokens, cfg: cfg}
}

// Withdraw takes one token for a retry or hedge; false means the budget is
// exhausted and the caller must fail rather than amplify load.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// Refund returns a withdrawn token that was never spent — the caller took
// it for a retry or hedge but no attempt could actually be issued (every
// candidate breaker refused, or the deadline preempted the backoff).
// Without it the shared budget drains precisely in the all-breakers-open
// scenario where no retry load was generated at all.
func (b *RetryBudget) Refund() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens++
	if b.tokens > b.cfg.Tokens {
		b.tokens = b.cfg.Tokens
	}
}

// Deposit credits one successful original request.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tokens += b.cfg.Ratio
	if b.tokens > b.cfg.Tokens {
		b.tokens = b.cfg.Tokens
	}
}

// Remaining returns the current token count (for /readyz reporting).
func (b *RetryBudget) Remaining() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}

// BackoffConfig shapes the inter-attempt delay: jittered exponential,
// base·2^attempt with ±50% jitter, capped.
type BackoffConfig struct {
	// Base is the attempt-0 delay (default 5ms).
	Base time.Duration
	// Cap bounds the grown delay before jitter (default 100ms).
	Cap time.Duration
}

func (c BackoffConfig) withDefaults() BackoffConfig {
	if c.Base <= 0 {
		c.Base = 5 * time.Millisecond
	}
	if c.Cap <= 0 {
		c.Cap = 100 * time.Millisecond
	}
	return c
}

// delay computes the jittered delay before retry number attempt (1-based:
// the first retry is attempt 1). rng draws the jitter; it must be used
// under the caller's synchronization.
func (c BackoffConfig) delay(attempt int, rng *rand.Rand) time.Duration {
	d := c.Base << uint(attempt-1)
	if d > c.Cap || d <= 0 {
		d = c.Cap
	}
	// ±50% jitter: [0.5d, 1.5d) decorrelates retry storms across clients.
	half := int64(d) / 2
	if half <= 0 {
		return d
	}
	return time.Duration(half + rng.Int63n(2*half))
}

// sleepCtx sleeps for d or until ctx is done, reporting whether the full
// delay elapsed (false = the deadline preempted the retry).
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
