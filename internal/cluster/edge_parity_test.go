package cluster

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestRouterEdgeWarmHitByteParityAgainstRealWorkers proves the edge cache's
// core contract end to end over real service replicas: a warm edge hit is
// the exact bytes of the proxied response it memoized, a direct worker
// answer matches modulo the elapsed_ms timing field, and a mutation's
// receipt forces the next read back upstream so post-write serves track the
// workers byte-for-byte.
func TestRouterEdgeWarmHitByteParityAgainstRealWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("real-corpus cluster test")
	}
	const seed = 42
	_, w1 := newWorker(t, seed)
	defer w1.Close()
	svc2, w2 := newWorker(t, seed)
	defer w2.Close()

	rt, err := NewRouter(RouterOptions{
		Backends:       []string{w1.URL, w2.URL},
		HealthInterval: 50 * time.Millisecond,
		Logger:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()

	client := &http.Client{Timeout: 15 * time.Second}
	cats := svc2.Categories()
	if len(cats) == 0 {
		t.Fatal("no categories loaded")
	}
	cat := cats[0]
	var targets []string
	if err := getJSON(client, routerTS.URL+"/api/v1/targets?category="+cat, &targets); err != nil {
		t.Fatalf("listing %s targets: %v", cat, err)
	}
	if len(targets) == 0 {
		t.Fatalf("no targets in %s", cat)
	}
	target := targets[0]
	body := selectBody(cat, target)

	status, cold, err := post(client, routerTS.URL+"/api/v1/select", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("cold routed select: status %d err %v", status, err)
	}
	status, warm, err := post(client, routerTS.URL+"/api/v1/select", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("warm routed select: status %d err %v", status, err)
	}
	// The warm hit replays the memoized proxied response exactly — even the
	// elapsed_ms bytes are the ones the worker sent.
	if string(warm) != string(cold) {
		t.Errorf("warm edge hit differs from the proxied response it memoized:\ncold %s\nwarm %s", cold, warm)
	}
	if hits := counterSnapshot(rt.Registry(), `comparesets_cache_hits_total{cache="router_edge"}`); hits != 1 {
		t.Errorf("edge hits = %d, want 1", hits)
	}
	// A worker answering directly produces the same selection bytes modulo
	// timing.
	status, direct, err := post(client, w2.URL+"/api/v1/select", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("direct select: status %d err %v", status, err)
	}
	if got, want := normalizeElapsed(warm), normalizeElapsed(direct); got != want {
		t.Errorf("edge bytes diverge from a direct worker answer:\n edge  %s\n direct %s", got, want)
	}

	// Write through the router: the quorum receipt must push the next read
	// past the edge so no stale selection is ever replayed.
	missesBefore := counterSnapshot(rt.Registry(), `comparesets_cache_misses_total{cache="router_edge"}`)
	status, receipt, err := post(client, routerTS.URL+"/api/v1/corpora/"+cat+"/items/"+target+"/reviews",
		appendBody("edge-parity-r1", target))
	if err != nil || status != http.StatusOK {
		t.Fatalf("routed mutation: status %d err %v body %s", status, err, receipt)
	}
	status, fresh, err := post(client, routerTS.URL+"/api/v1/select", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-mutation routed select: status %d err %v", status, err)
	}
	if got := counterSnapshot(rt.Registry(), `comparesets_cache_misses_total{cache="router_edge"}`); got <= missesBefore {
		t.Errorf("post-mutation select did not miss the edge (misses %d -> %d): stale bytes were replayed", missesBefore, got)
	}
	status, directFresh, err := post(client, w2.URL+"/api/v1/select", body)
	if err != nil || status != http.StatusOK {
		t.Fatalf("post-mutation direct select: status %d err %v", status, err)
	}
	if got, want := normalizeElapsed(fresh), normalizeElapsed(directFresh); got != want {
		t.Errorf("post-mutation edge bytes diverge from the worker:\n edge  %s\n direct %s", got, want)
	}
}
