// Snapshot-based corpus shipping.
//
// A replica joining a shard needs the shard's current corpora. Rather than
// invent a transfer format, the wire stream *is* the store's own CSLG log —
// a manifest (item metadata, aspect vocabulary, expected record count, and
// the source corpus fingerprint) followed by the exact bytes
// store.WriteCorpusLog produces. The joiner persists the stream to disk and
// opens it with the ordinary store recovery scan, so a transfer torn by a
// crash, a conndrop fault, or a killed peer degrades to the same
// well-tested failure mode as a torn log: the longest valid prefix
// survives, the shortfall is detected by record count, and the fetch is
// retried. Fingerprint parity between the rebuilt corpus and the manifest
// proves the replica serves byte-identical selections to its peers.
//
// Wire layout of GET /internal/v1/snapshot/{category}:
//
//	[4-byte big-endian manifest length][manifest JSON][CSLG v1 log bytes]
package cluster

import (
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"time"

	"comparesets/internal/faultinject"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/store"
)

// SnapshotPathPrefix is where workers and the router mount the snapshot
// stream handler.
const SnapshotPathPrefix = "/internal/v1/snapshot/"

// maxManifestBytes bounds the manifest length prefix so a corrupt stream
// cannot force a giant allocation.
const maxManifestBytes = 64 << 20

// ErrSnapshotIncomplete reports a transfer whose replayed record count fell
// short of the manifest's — a torn stream recovered to a valid prefix.
var ErrSnapshotIncomplete = errors.New("cluster: snapshot transfer incomplete")

// CorpusSource is the worker-side seam the snapshot handler reads from;
// *service.Server satisfies it.
type CorpusSource interface {
	Corpus(name string) (*model.Corpus, bool)
	Categories() []string
}

// SnapshotManifest precedes the log bytes on the wire.
type SnapshotManifest struct {
	Category string   `json:"category"`
	Aspects  []string `json:"aspects"`
	// Items carries every item's metadata with reviews stripped — the log
	// bytes carry the reviews.
	Items []*model.Item `json:"items"`
	// ReviewCount is how many records the log portion holds; a replayed
	// store with fewer records means the transfer was torn.
	ReviewCount int `json:"review_count"`
	// Fingerprint is the source corpus's model fingerprint (%016x); the
	// rebuilt corpus must match it exactly.
	Fingerprint string `json:"fingerprint"`
}

// WriteSnapshot encodes the corpus's snapshot stream to w: length-prefixed
// manifest, then CSLG log bytes.
func WriteSnapshot(w io.Writer, c *model.Corpus) error {
	man := SnapshotManifest{
		Category:    c.Category,
		Aspects:     c.Aspects.Names(),
		ReviewCount: c.NumReviews(),
		Fingerprint: fmt.Sprintf("%016x", c.Fingerprint()),
	}
	for _, id := range c.ItemIDs() {
		it := c.Items[id]
		man.Items = append(man.Items, &model.Item{
			ID: it.ID, Title: it.Title, Category: it.Category, Price: it.Price,
			AlsoBought: it.AlsoBought,
		})
	}
	manBytes, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("cluster: encoding manifest: %w", err)
	}
	var lenBuf [4]byte
	binary.BigEndian.PutUint32(lenBuf[:], uint32(len(manBytes)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return err
	}
	if _, err := w.Write(manBytes); err != nil {
		return err
	}
	_, err = store.WriteCorpusLog(w, c)
	return err
}

// SnapshotHandler serves GET /internal/v1/snapshot/{category} from src.
// The faultinject point router.snapshot is consulted per request: error
// mode answers 500, conndrop mode tears the stream mid-body (after the
// manifest and roughly half the log bytes), exercising the joiner's
// torn-tail recovery end to end.
func SnapshotHandler(src CorpusSource, logger *log.Logger) http.Handler {
	if logger == nil {
		logger = log.Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+SnapshotPathPrefix+"{category}", func(w http.ResponseWriter, r *http.Request) {
		span := obs.StartStage(obs.StageSnapshotShip)
		defer span.Stop()
		category := r.PathValue("category")
		c, ok := src.Corpus(category)
		if !ok {
			http.Error(w, fmt.Sprintf("unknown category %q", category), http.StatusNotFound)
			return
		}
		ferr := faultinject.CheckCtx(r.Context(), faultinject.PointRouterSnapshot)
		if ferr != nil && !errors.Is(ferr, faultinject.ErrConnDrop) {
			http.Error(w, "snapshot unavailable", http.StatusInternalServerError)
			return
		}
		// Buffer the stream so Content-Length is exact and a conndrop fault
		// can tear it at a deterministic midpoint.
		var buf bytesBuffer
		if err := WriteSnapshot(&buf, c); err != nil {
			logger.Printf("cluster: encoding snapshot of %q: %v", category, err)
			http.Error(w, "snapshot encoding failed", http.StatusInternalServerError)
			return
		}
		data := buf.b
		if errors.Is(ferr, faultinject.ErrConnDrop) {
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Length", fmt.Sprint(len(data)))
			w.WriteHeader(http.StatusOK)
			w.Write(data[:len(data)/2])
			abortConn(w)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(data); err != nil {
			logger.Printf("cluster: streaming snapshot of %q: %v", category, err)
		}
	})
	return mux
}

// bytesBuffer is a minimal append-only writer (avoids importing bytes for
// one use).
type bytesBuffer struct{ b []byte }

func (w *bytesBuffer) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

// abortConn tears the client connection down mid-response: hijack and
// close when the transport allows it, otherwise abort the handler. Clients
// observe io.ErrUnexpectedEOF / connection reset instead of a well-formed
// response — exactly what a crashing peer looks like.
func abortConn(w http.ResponseWriter) {
	if f, ok := w.(http.Flusher); ok {
		f.Flush()
	}
	if hj, ok := w.(http.Hijacker); ok {
		if conn, _, err := hj.Hijack(); err == nil {
			conn.Close()
			return
		}
	}
	panic(http.ErrAbortHandler)
}

// FetchSnapshot downloads one category's snapshot from the peer base URL,
// persists the log bytes under dir, replays them through the store's
// recovery scan, and rebuilds the corpus. ErrSnapshotIncomplete (torn
// stream) and fingerprint mismatches are errors — callers retry.
func FetchSnapshot(ctx context.Context, client *http.Client, base, category, dir string) (*model.Corpus, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		base+SnapshotPathPrefix+url.PathEscape(category), nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: fetching snapshot of %q: %w", category, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("cluster: snapshot of %q: status %d", category, resp.StatusCode)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(resp.Body, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("cluster: reading manifest length: %w", err)
	}
	manLen := binary.BigEndian.Uint32(lenBuf[:])
	if manLen == 0 || manLen > maxManifestBytes {
		return nil, fmt.Errorf("cluster: implausible manifest length %d", manLen)
	}
	manBytes := make([]byte, manLen)
	if _, err := io.ReadFull(resp.Body, manBytes); err != nil {
		return nil, fmt.Errorf("cluster: reading manifest: %w", err)
	}
	var man SnapshotManifest
	if err := json.Unmarshal(manBytes, &man); err != nil {
		return nil, fmt.Errorf("cluster: decoding manifest: %w", err)
	}
	if man.Category != category {
		return nil, fmt.Errorf("cluster: snapshot manifest is for %q, requested %q", man.Category, category)
	}

	// Persist the log portion, tolerating a torn stream: whatever arrived
	// is written out, and the store's recovery scan decides how much of it
	// is valid.
	logPath := filepath.Join(dir, url.PathEscape(category)+".cslg")
	f, err := os.OpenFile(logPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	_, copyErr := io.Copy(f, resp.Body)
	if err := f.Close(); err != nil {
		return nil, err
	}

	st, err := store.OpenWithOptions(logPath, store.OpenOptions{PageCacheBytes: -1})
	if err != nil {
		return nil, fmt.Errorf("cluster: replaying snapshot log: %w", err)
	}
	defer st.Close()
	if st.Count() != man.ReviewCount {
		return nil, fmt.Errorf("%w: %q replayed %d/%d records (stream error: %v, recovery: %+v)",
			ErrSnapshotIncomplete, category, st.Count(), man.ReviewCount, copyErr, st.Recovery())
	}

	c := model.NewCorpus(man.Category, model.NewVocabulary(man.Aspects))
	for _, it := range man.Items {
		revs, err := st.ItemReviews(it.ID)
		if err != nil {
			return nil, fmt.Errorf("cluster: reading replayed reviews of %q: %w", it.ID, err)
		}
		c.AddItem(&model.Item{
			ID: it.ID, Title: it.Title, Category: it.Category, Price: it.Price,
			AlsoBought: it.AlsoBought, Reviews: revs,
		})
	}
	if got := fmt.Sprintf("%016x", c.Fingerprint()); got != man.Fingerprint {
		return nil, fmt.Errorf("cluster: rebuilt corpus fingerprint %s != manifest %s", got, man.Fingerprint)
	}
	return c, nil
}

// joinAttempts bounds per-category snapshot fetch retries during Join.
const joinAttempts = 4

// Join bootstraps a replica from a peer (a worker or the router's snapshot
// proxy): it lists the peer's categories and fetches every snapshot, with
// bounded jittered retries per category — a torn transfer is refetched, and
// the store-level recovery makes each retry start from a clean slate.
func Join(ctx context.Context, client *http.Client, base, dir string, logger *log.Logger) (map[string]*model.Corpus, error) {
	if logger == nil {
		logger = log.Default()
	}
	if client == nil {
		client = &http.Client{Timeout: 60 * time.Second}
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/categories", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: listing peer categories: %w", err)
	}
	var cats []struct {
		Name string `json:"name"`
	}
	decErr := json.NewDecoder(resp.Body).Decode(&cats)
	resp.Body.Close()
	if decErr != nil {
		return nil, fmt.Errorf("cluster: decoding peer categories: %w", decErr)
	}

	rng := rand.New(rand.NewSource(faultinject.CurrentSeed()))
	backoff := BackoffConfig{Base: 50 * time.Millisecond, Cap: time.Second}.withDefaults()
	out := make(map[string]*model.Corpus, len(cats))
	for _, cat := range cats {
		var lastErr error
		for attempt := 0; attempt < joinAttempts; attempt++ {
			if attempt > 0 && !sleepCtx(ctx, backoff.delay(attempt, rng)) {
				return nil, ctx.Err()
			}
			c, err := FetchSnapshot(ctx, client, base, cat.Name, dir)
			if err == nil {
				logger.Printf("cluster: joined %q (%d items, %d reviews)", cat.Name, len(c.Items), c.NumReviews())
				out[cat.Name] = c
				lastErr = nil
				break
			}
			lastErr = err
			logger.Printf("cluster: snapshot of %q attempt %d/%d failed: %v", cat.Name, attempt+1, joinAttempts, err)
		}
		if lastErr != nil {
			return nil, fmt.Errorf("cluster: joining %q: %w", cat.Name, lastErr)
		}
	}
	return out, nil
}
