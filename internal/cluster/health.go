// Backend health polling.
//
// The PR 4 resilience layer gave every worker a /readyz state machine
// (ok | degraded | overloaded, 503 while draining). The watcher turns those
// per-replica self-reports into the router's balancing signal: traffic
// drains away from overloaded or draining replicas *before* they start
// failing requests, which is the difference between a blip in the p99 and
// an error-budget burn. Polling is deliberately cheap — one GET per backend
// per interval — and failure of the poll itself is a health signal
// (unreachable), not an error.
package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// Backend health states, ordered best-first. The first three mirror the
// worker's /readyz statuses; unreachable means the poll itself failed.
const (
	HealthOK          = "ok"
	HealthDegraded    = "degraded"
	HealthOverloaded  = "overloaded"
	HealthUnreachable = "unreachable"
)

// healthRank orders states for replica preference (lower is better).
func healthRank(state string) int {
	switch state {
	case HealthOK:
		return 0
	case HealthDegraded:
		return 1
	case HealthOverloaded:
		return 2
	default:
		return 3
	}
}

// HealthWatcher polls a fixed set of backends' /readyz endpoints and keeps
// the latest state per backend. Zero-configured backends report
// HealthUnreachable until the first poll completes.
type HealthWatcher struct {
	client   *http.Client
	interval time.Duration
	onChange func(addr, from, to string)

	mu     sync.RWMutex
	states map[string]string
	seen   map[string]time.Time

	stop chan struct{}
	done chan struct{}
}

// defaultProbeTimeout bounds one /readyz poll when the caller's client has
// no timeout of its own.
const defaultProbeTimeout = 2 * time.Second

// NewHealthWatcher builds a watcher over the backend base URLs. interval
// ≤ 0 defaults to 500ms. onChange, when non-nil, observes every state
// transition (for logging/metrics).
func NewHealthWatcher(backends []string, client *http.Client, interval time.Duration, onChange func(addr, from, to string)) *HealthWatcher {
	if client == nil {
		client = &http.Client{Timeout: defaultProbeTimeout}
	}
	if interval <= 0 {
		interval = 500 * time.Millisecond
	}
	w := &HealthWatcher{
		client:   client,
		interval: interval,
		onChange: onChange,
		states:   make(map[string]string, len(backends)),
		seen:     make(map[string]time.Time, len(backends)),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for _, b := range backends {
		w.states[b] = HealthUnreachable
	}
	return w
}

// Start launches the poll loop (one immediate sweep, then every interval)
// and returns. Stop terminates it.
func (w *HealthWatcher) Start() {
	go func() {
		defer close(w.done)
		w.sweep()
		t := time.NewTicker(w.interval)
		defer t.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-t.C:
				w.sweep()
			}
		}
	}()
}

// Stop terminates the poll loop and waits for it to exit.
func (w *HealthWatcher) Stop() {
	select {
	case <-w.stop:
	default:
		close(w.stop)
	}
	<-w.done
}

// sweep polls every backend concurrently and records the results.
func (w *HealthWatcher) sweep() {
	w.mu.RLock()
	addrs := make([]string, 0, len(w.states))
	for a := range w.states {
		addrs = append(addrs, a)
	}
	w.mu.RUnlock()
	var wg sync.WaitGroup
	for _, addr := range addrs {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			w.record(addr, w.probe(addr))
		}(addr)
	}
	wg.Wait()
}

// probe performs one /readyz poll. Any transport failure or non-JSON body
// is HealthUnreachable; a parseable body reports its own status whatever
// the HTTP code (the worker answers 503 for overloaded but the body still
// names the state).
func (w *HealthWatcher) probe(addr string) string {
	// A caller-supplied client with Timeout 0 means "no client-level
	// timeout", not "expire immediately" — bound the poll ourselves.
	timeout := w.client.Timeout
	if timeout <= 0 {
		timeout = defaultProbeTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+"/readyz", nil)
	if err != nil {
		return HealthUnreachable
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return HealthUnreachable
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return HealthUnreachable
	}
	switch body.Status {
	case HealthOK, HealthDegraded, HealthOverloaded:
		return body.Status
	default:
		return HealthUnreachable
	}
}

// record stores a poll result and fires the change observer.
func (w *HealthWatcher) record(addr, state string) {
	w.mu.Lock()
	prev := w.states[addr]
	w.states[addr] = state
	w.seen[addr] = time.Now()
	w.mu.Unlock()
	if prev != state && w.onChange != nil {
		w.onChange(addr, prev, state)
	}
}

// State returns the backend's last known health state.
func (w *HealthWatcher) State(addr string) string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	if s, ok := w.states[addr]; ok {
		return s
	}
	return HealthUnreachable
}

// States returns a copy of every backend's last known state.
func (w *HealthWatcher) States() map[string]string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	out := make(map[string]string, len(w.states))
	for a, s := range w.states {
		out[a] = s
	}
	return out
}

// MarkUnreachable force-records a backend as unreachable — the router calls
// it on hard transport failures so steering reacts immediately instead of
// waiting out the poll interval.
func (w *HealthWatcher) MarkUnreachable(addr string) {
	w.record(addr, HealthUnreachable)
}
