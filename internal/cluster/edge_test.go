package cluster

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"comparesets/internal/obs"
)

// --- canonical key ----------------------------------------------------------

func TestEdgeSelectKeyCanonicalization(t *testing.T) {
	mustKey := func(body string) string {
		t.Helper()
		k, ok := edgeSelectKey([]byte(body))
		if !ok {
			t.Fatalf("body unexpectedly uncacheable: %s", body)
		}
		return k
	}

	// Spelling out the worker's defaults must not change the key.
	base := mustKey(`{"category":"Cameras","target":"cam-1","m":3}`)
	if got := mustKey(`{"category":"Cameras","target":"cam-1","m":3,"algorithm":"CompaReSetS+"}`); got != base {
		t.Errorf("explicit default algorithm changed the key:\n %s\n %s", got, base)
	}
	// timeout_ms bounds computation, never the result bytes.
	if got := mustKey(`{"category":"Cameras","target":"cam-1","m":3,"timeout_ms":250}`); got != base {
		t.Errorf("timeout_ms leaked into the key:\n %s\n %s", got, base)
	}
	// Field order is irrelevant.
	if got := mustKey(`{"m":3,"target":"cam-1","category":"Cameras"}`); got != base {
		t.Errorf("field order changed the key:\n %s\n %s", got, base)
	}
	// Semantic fields must all separate.
	distinct := []string{
		`{"category":"Cameras","target":"cam-1","m":4}`,
		`{"category":"Cameras","target":"cam-2","m":3}`,
		`{"category":"Phones","target":"cam-1","m":3}`,
		`{"category":"Cameras","target":"cam-1","m":3,"lambda":0.5}`,
		`{"category":"Cameras","target":"cam-1","m":3,"k":2}`,
		`{"category":"Cameras","target":"cam-1","m":3,"summarize":2}`,
		`{"category":"Cameras","target":"cam-1","m":3,"metrics":true}`,
	}
	seen := map[string]string{base: "base"}
	for _, body := range distinct {
		k := mustKey(body)
		if prev, dup := seen[k]; dup {
			t.Errorf("key collision between %s and %s: %s", prev, body, k)
		}
		seen[k] = body
	}
	// k>0 applies the worker's shortlist-method default.
	withK := mustKey(`{"category":"Cameras","target":"cam-1","k":2}`)
	if got := mustKey(`{"category":"Cameras","target":"cam-1","k":2,"method":"greedy"}`); got != withK {
		t.Errorf("explicit default shortlist method changed the key:\n %s\n %s", got, withK)
	}
}

func TestEdgeSelectKeyRefusesUnprovableBodies(t *testing.T) {
	uncacheable := []string{
		`{"target":"cam-1"}`,                                     // no corpus reference
		`{"category":"Cameras"}`,                                 // no target
		`{"category":"Cameras","target":"t","items":[{}]}`,       // inline instance
		`{"category":"Cameras","target":"t","aspects":["size"]}`, // inline aspects
		`{"category":"Cameras","target":"t","new_field":1}`,      // unknown to this router
		`{"category":"Cameras",`,                                 // invalid JSON
	}
	for _, body := range uncacheable {
		if k, ok := edgeSelectKey([]byte(body)); ok {
			t.Errorf("body cached despite being unprovable: %s -> %s", body, k)
		}
	}
}

// --- category state tokens --------------------------------------------------

func TestEdgeCategoryStateTokens(t *testing.T) {
	e := newEdgeCache(1<<20, obs.NewRegistry())
	token := func() string {
		k := e.key("Cameras", "canon")
		return strings.TrimPrefix(k, "canon|st=")
	}

	t0 := token()
	receipt := `{"kind":"append","category":"Cameras","item":"cam-1","epoch":"3.00000000deadbeef","generation":2,"affected_items":["cam-1"]}`
	e.applyReceipt("Cameras", []byte(receipt))
	t1 := token()
	if t1 == t0 {
		t.Fatal("receipt did not advance the state token")
	}
	// Re-applying the identical receipt is idempotent — no spurious churn.
	e.applyReceipt("Cameras", []byte(receipt))
	if token() != t1 {
		t.Error("identical receipt advanced the token again")
	}
	// The same item at a later generation advances it.
	e.applyReceipt("Cameras", []byte(`{"item":"cam-1","epoch":"3.00000000deadbeef","generation":3,"affected_items":["cam-1"]}`))
	t2 := token()
	if t2 == t1 {
		t.Error("later generation did not advance the token")
	}
	// A flush always advances it.
	e.flush("Cameras")
	t3 := token()
	if t3 == t2 {
		t.Error("flush did not advance the token")
	}
	// Other categories are untouched throughout.
	if got := e.key("Phones", "canon"); got != "canon|st=" {
		t.Errorf("untouched category's token moved: %s", got)
	}

	// Receipts the edge cannot interpret exactly degrade to flushes.
	reg := obs.NewRegistry()
	e2 := newEdgeCache(1<<20, reg)
	e2.applyReceipt("Cameras", []byte(`not json`))
	e2.applyReceipt("Cameras", []byte(`{"epoch":"1.aa","generation":4,"affected_items":["a","b"]}`)) // multi-item
	e2.applyReceipt("Cameras", []byte(`{"epoch":"1.aa","generation":0,"item":"a"}`))                 // no generation
	if got := counterSnapshot(reg, `comparesets_router_edge_invalidations_total{scope="flush"}`); got != 3 {
		t.Errorf("flush invalidations = %d, want 3", got)
	}
	if got := counterSnapshot(reg, `comparesets_router_edge_invalidations_total{scope="receipt"}`); got != 0 {
		t.Errorf("receipt invalidations = %d, want 0", got)
	}
}

// counterSnapshot reads one exact counter series from a registry snapshot.
func counterSnapshot(reg *obs.Registry, series string) uint64 {
	if v, ok := reg.Snapshot()[series]; ok {
		if c, ok := v.(uint64); ok {
			return c
		}
	}
	return 0
}

// --- routed edge behavior ---------------------------------------------------

// TestRouterEdgeWarmHitSkipsBackends: the second identical select is
// answered at the edge, byte-for-byte the memoized proxied response,
// without another backend exchange.
func TestRouterEdgeWarmHitSkipsBackends(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t)}
	rt, ts, _ := newTestRouter(t, workers, nil)

	body := `{"category":"Cameras","target":"cam-1","m":3}`
	resp1, cold := postSelect(t, ts.URL, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("cold select: status %d body %s", resp1.StatusCode, cold)
	}
	resp2, warm := postSelect(t, ts.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm select: status %d", resp2.StatusCode)
	}
	if warm != cold {
		t.Errorf("warm hit not byte-identical:\ncold %s\nwarm %s", cold, warm)
	}
	if selects, _ := workers[0].stats(); selects != 1 {
		t.Errorf("backend saw %d selects, want 1 (warm hit must not proxy)", selects)
	}
	if got := counterValue(rt, "comparesets_cache_hits_total"); got != 1 {
		t.Errorf("edge hit counter = %d, want 1", got)
	}
	// A semantically different request is its own entry, not a collision.
	resp3, other := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1","m":4}`)
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("distinct select: status %d", resp3.StatusCode)
	}
	_ = other
	if selects, _ := workers[0].stats(); selects != 2 {
		t.Errorf("backend saw %d selects, want 2 (distinct key must proxy)", selects)
	}
}

// TestRouterEdgeUncacheableBodiesBypass: inline-instance and unknown-field
// selects never populate or consult the edge.
func TestRouterEdgeUncacheableBodiesBypass(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t)}
	rt, ts, _ := newTestRouter(t, workers, nil)

	body := `{"category":"Cameras","target":"cam-1","items":[{"id":"x"}]}`
	for i := 0; i < 2; i++ {
		resp, _ := postSelect(t, ts.URL, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("select %d: status %d", i, resp.StatusCode)
		}
	}
	if selects, _ := workers[0].stats(); selects != 2 {
		t.Errorf("backend saw %d selects, want 2 (uncacheable must always proxy)", selects)
	}
	if got := counterValue(rt, "comparesets_cache_hits_total"); got != 0 {
		t.Errorf("edge hit counter = %d, want 0", got)
	}
}

// TestRouterEdgeReceiptInvalidatesMutatedCategoryOnly: a mutation's quorum
// receipt drops the mutated category's warm entries before the client sees
// the receipt, while untouched categories keep serving from the edge.
func TestRouterEdgeReceiptInvalidatesMutatedCategoryOnly(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.HedgeDisabled = true // deterministic backend hit counts
	})
	for _, w := range byAddr {
		w.receipt.Store(`{"kind":"append","category":"Cameras","item":"cam-1","epoch":"1.00000000deadbeef","generation":2,"affected_items":["cam-1"]}`)
	}
	totalSelects := func() int {
		n := 0
		for _, w := range workers {
			s, _ := w.stats()
			n += s
		}
		return n
	}

	camBody := `{"category":"Cameras","target":"cam-1","m":3}`
	phoneBody := `{"category":"Phones","target":"ph-1","m":3}`
	postSelect(t, ts.URL, camBody)   // fill Cameras
	postSelect(t, ts.URL, phoneBody) // fill Phones
	if got := totalSelects(); got != 2 {
		t.Fatalf("warm-up proxied %d selects, want 2", got)
	}
	postSelect(t, ts.URL, camBody)
	postSelect(t, ts.URL, phoneBody)
	if got := totalSelects(); got != 2 {
		t.Fatalf("warm reads proxied anyway (%d backend selects, want 2)", got)
	}

	resp, err := http.Post(ts.URL+"/api/v1/corpora/Cameras/items/cam-1/reviews",
		"application/json", strings.NewReader(`{"reviews":[{"id":"r-1","item_id":"cam-1","rating":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation status %d", resp.StatusCode)
	}

	// The mutated category re-proxies; no stale replay after the write.
	postSelect(t, ts.URL, camBody)
	if got := totalSelects(); got != 3 {
		t.Errorf("post-mutation Cameras select did not proxy (%d backend selects, want 3)", got)
	}
	// The untouched category stays warm.
	postSelect(t, ts.URL, phoneBody)
	if got := totalSelects(); got != 3 {
		t.Errorf("untouched Phones category lost its warm entry (%d backend selects)", got)
	}
	if got := counterSnapshot(rt.Registry(), `comparesets_router_edge_invalidations_total{scope="receipt"}`); got != 1 {
		t.Errorf("receipt invalidations = %d, want 1", got)
	}
}

// TestRouterEdgeCoalescesConcurrentColdReads: identical concurrent cold
// reads share one upstream flight and one backend exchange.
func TestRouterEdgeCoalescesConcurrentColdReads(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t)}
	rt, ts, _ := newTestRouter(t, workers, nil)
	workers[0].delay.Store(int64(300 * time.Millisecond))

	const concurrency = 8
	body := `{"category":"Cameras","target":"cam-1","m":3}`
	bodies := make([]string, concurrency)
	var wg sync.WaitGroup
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, b := postSelect(t, ts.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("concurrent select %d: status %d", i, resp.StatusCode)
			}
			bodies[i] = b
		}(i)
	}
	wg.Wait()

	for i := 1; i < concurrency; i++ {
		if bodies[i] != bodies[0] {
			t.Fatalf("coalesced waiters saw different bytes:\n%s\n%s", bodies[0], bodies[i])
		}
	}
	if selects, _ := workers[0].stats(); selects != 1 {
		t.Errorf("backend saw %d selects, want 1 (flight not coalesced)", selects)
	}
	if got := counterSnapshot(rt.Registry(), `comparesets_cache_coalesced_waiters_total{cache="router_edge_flight"}`); got != concurrency-1 {
		t.Errorf("coalesced waiters = %d, want %d", got, concurrency-1)
	}
}

// TestRouterEdgeErrorFlightsAreNotMemoized: a failing flight is shared by
// its concurrent waiters but never cached — the next read retries upstream.
func TestRouterEdgeErrorFlightsAreNotMemoized(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t)}
	rt, ts, _ := newTestRouter(t, workers, func(o *RouterOptions) {
		o.MaxRetries = -1 // no retries: one failed attempt settles the flight
	})
	_ = rt
	workers[0].fail.Store(true)

	body := `{"category":"Cameras","target":"cam-1","m":3}`
	resp, _ := postSelect(t, ts.URL, body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("failed select: status %d, want 500 forwarded", resp.StatusCode)
	}
	workers[0].fail.Store(false)
	resp, _ = postSelect(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recovered select: status %d, want 200 (error must not be cached)", resp.StatusCode)
	}
	afterRecover, _ := workers[0].stats()
	resp, _ = postSelect(t, ts.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm select after recovery: status %d", resp.StatusCode)
	}
	if afterWarm, _ := workers[0].stats(); afterWarm != afterRecover {
		t.Errorf("recovered 200 was not memoized (%d -> %d backend selects)", afterRecover, afterWarm)
	}
}

// TestRouterEdgeDivergenceAndRejoinFlushConservatively: both marking a
// replica divergent and readmitting it flush the category's edge entries,
// so serves around membership changes are proxied, never replayed.
func TestRouterEdgeDivergenceAndRejoinFlushConservatively(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.HedgeDisabled = true
	})
	placement := rt.Ring().Placement("Cameras")
	good, stray := byAddr[placement[0]], byAddr[placement[1]]
	totalSelects := func() int {
		a, _ := good.stats()
		b, _ := stray.stats()
		return a + b
	}
	mutate := func(id string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/corpora/Cameras/items/cam-1/reviews",
			"application/json", strings.NewReader(fmt.Sprintf(`{"reviews":[{"id":%q,"item_id":"cam-1","rating":4}]}`, id)))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutation status %d", resp.StatusCode)
		}
	}

	body := `{"category":"Cameras","target":"cam-1","m":3}`
	postSelect(t, ts.URL, body)
	postSelect(t, ts.URL, body)
	if got := totalSelects(); got != 1 {
		t.Fatalf("warm-up: %d backend selects, want 1", got)
	}

	// Divergence: stray answers the write with a mismatched fingerprint.
	good.receipt.Store(`{"kind":"append","category":"Cameras","item":"cam-1","epoch":"2.00000000deadbeef","generation":2,"affected_items":["cam-1"]}`)
	stray.receipt.Store(`{"kind":"append","category":"Cameras","item":"cam-1","epoch":"2.00000000000000bad","generation":2,"affected_items":["cam-1"]}`)
	mutate("r-1")
	if !rt.isDivergent(placement[1], "Cameras") {
		t.Fatal("stray replica not marked divergent")
	}
	postSelect(t, ts.URL, body) // must proxy: category flushed + receipt applied
	if got := totalSelects(); got != 2 {
		t.Errorf("post-divergence select did not proxy (%d backend selects, want 2)", got)
	}
	postSelect(t, ts.URL, body) // warm again
	if got := totalSelects(); got != 2 {
		t.Fatalf("re-warm select proxied (%d backend selects, want 2)", got)
	}

	// Rejoin: the stray's next receipt matches the quorum, readmitting it —
	// which changes who answers reads, so the category flushes again.
	good.receipt.Store(`{"kind":"append","category":"Cameras","item":"cam-1","epoch":"3.00000000feedf00d","generation":3,"affected_items":["cam-1"]}`)
	stray.receipt.Store(`{"kind":"append","category":"Cameras","item":"cam-1","epoch":"9.00000000feedf00d","generation":3,"affected_items":["cam-1"]}`)
	mutate("r-2")
	if rt.isDivergent(placement[1], "Cameras") {
		t.Fatal("stray replica not readmitted after matching receipt")
	}
	postSelect(t, ts.URL, body)
	if got := totalSelects(); got != 3 {
		t.Errorf("post-rejoin select did not proxy (%d backend selects, want 3)", got)
	}
	if got := counterSnapshot(rt.Registry(), `comparesets_router_edge_invalidations_total{scope="flush"}`); got < 2 {
		t.Errorf("flush invalidations = %d, want >= 2 (divergence + rejoin)", got)
	}
}
