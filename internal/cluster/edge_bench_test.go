package cluster

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// benchRouter builds a quiet router over one mock-grade backend for
// handler-level benchmarks (no test logging, no health-transition noise).
func benchRouter(b *testing.B, edgeDisabled bool) (*Router, http.Handler, *httptest.Server) {
	b.Helper()
	mux := http.NewServeMux()
	payload := []byte(`{"selection":{"comparative":["c-1","c-2"],"unique":["u-1"]},"objective":3.217,"elapsed_ms":12}`)
	mux.HandleFunc("POST /api/v1/select", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.Write(payload)
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Write([]byte(`{"status":"ok"}`))
	})
	backend := httptest.NewServer(mux)
	b.Cleanup(backend.Close)
	rt, err := NewRouter(RouterOptions{
		Backends:          []string{backend.URL},
		HealthInterval:    time.Hour, // no poller noise during timing
		EdgeCacheDisabled: edgeDisabled,
	})
	if err != nil {
		b.Fatal(err)
	}
	return rt, rt.Handler(), backend
}

var benchSelectBody = []byte(`{"category":"Cameras","target":"cam-1","m":3,"lambda":1,"mu":1}`)

func benchSelectOnce(b *testing.B, h http.Handler) int {
	req := httptest.NewRequest(http.MethodPost, "/api/v1/select", bytes.NewReader(benchSelectBody))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code
}

// BenchmarkRouterEdgeWarmHit measures the edge fast path: a warm read
// answered entirely at the router, no upstream exchange.
func BenchmarkRouterEdgeWarmHit(b *testing.B) {
	_, h, _ := benchRouter(b, false)
	if code := benchSelectOnce(b, h); code != http.StatusOK {
		b.Fatalf("warm-up status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchSelectOnce(b, h); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkRouterColdProxied measures the same request with the edge
// disabled: every read pays the full proxied upstream round trip. The gap
// to BenchmarkRouterEdgeWarmHit is the fast path's win.
func BenchmarkRouterColdProxied(b *testing.B) {
	_, h, _ := benchRouter(b, true)
	if code := benchSelectOnce(b, h); code != http.StatusOK {
		b.Fatalf("warm-up status %d", code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := benchSelectOnce(b, h); code != http.StatusOK {
			b.Fatalf("status %d", code)
		}
	}
}

// BenchmarkEdgeSelectKey measures canonical-key construction, the per-read
// overhead the edge adds to every cacheable select.
func BenchmarkEdgeSelectKey(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := edgeSelectKey(benchSelectBody); !ok {
			b.Fatal("body not cacheable")
		}
	}
}
