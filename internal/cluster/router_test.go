package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// mockWorker is a scriptable stand-in for a worker replica: per-route
// behavior is swapped at runtime so tests can decide failure roles after
// ring placement is known.
type mockWorker struct {
	ts *httptest.Server

	mu         sync.Mutex
	selectHits int
	mutateHits int
	bodies     []string // select bodies, in arrival order

	// fail makes every select answer 500; failMutate every mutation.
	fail       atomic.Bool
	failMutate atomic.Bool
	// delay stalls selects (for hedge tests).
	delay atomic.Int64 // nanoseconds
	// receipt is the mutation response body; tests vary it to simulate
	// divergent replicas.
	receipt atomic.Value // string
}

func newMockWorker(t *testing.T) *mockWorker {
	t.Helper()
	w := &mockWorker{}
	w.receipt.Store(`{"kind":"append","epoch":"1.00000000deadbeef","generation":1}`)
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/select", func(rw http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.mu.Lock()
		w.selectHits++
		w.bodies = append(w.bodies, string(body))
		w.mu.Unlock()
		if d := w.delay.Load(); d > 0 {
			time.Sleep(time.Duration(d))
		}
		if w.fail.Load() {
			http.Error(rw, `{"error":{"code":"internal","message":"boom"}}`, http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(rw, `{"items":[],"served_by":%q}`, w.ts.URL)
	})
	mux.HandleFunc("POST /api/v1/corpora/{category}/items/{item}/reviews", func(rw http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.mu.Lock()
		w.mutateHits++
		w.mu.Unlock()
		if w.failMutate.Load() {
			http.Error(rw, `{"error":{"code":"internal","message":"boom"}}`, http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		io.WriteString(rw, w.receipt.Load().(string))
	})
	mux.HandleFunc("GET /readyz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		io.WriteString(rw, `{"status":"ok"}`)
	})
	w.ts = httptest.NewServer(mux)
	t.Cleanup(w.ts.Close)
	return w
}

func (w *mockWorker) stats() (selects, mutates int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.selectHits, w.mutateHits
}

func (w *mockWorker) selectBodies() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]string(nil), w.bodies...)
}

// newTestRouter builds a started router over the mock workers with snappy
// test timings.
func newTestRouter(t *testing.T, workers []*mockWorker, mutate func(*RouterOptions)) (*Router, *httptest.Server, map[string]*mockWorker) {
	t.Helper()
	byAddr := map[string]*mockWorker{}
	addrs := make([]string, len(workers))
	for i, w := range workers {
		addrs[i] = w.ts.URL
		byAddr[w.ts.URL] = w
	}
	opts := RouterOptions{
		Backends:       addrs,
		HealthInterval: 20 * time.Millisecond,
		Breaker:        BreakerConfig{ConsecutiveFailures: 3, Cooldown: 100 * time.Millisecond},
		Backoff:        BackoffConfig{Base: time.Millisecond, Cap: 4 * time.Millisecond},
		Logger:         testLogger(t),
	}
	if mutate != nil {
		mutate(&opts)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Stop)
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(ts.Close)
	return rt, ts, byAddr
}

func postSelect(t *testing.T, url, body string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Post(url+"/api/v1/select", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("select: %v", err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("reading select response: %v", err)
	}
	return resp, string(b)
}

// counterValue sums a counter family (across label sets) from the router's
// registry snapshot.
func counterValue(rt *Router, name string) uint64 {
	var total uint64
	for key, v := range rt.Registry().Snapshot() {
		if key == name || strings.HasPrefix(key, name+"{") {
			if c, ok := v.(uint64); ok {
				total += c
			}
		}
	}
	return total
}

func testLogger(t *testing.T) *log.Logger {
	return log.New(logWriter{t}, "", 0)
}

type logWriter struct{ t *testing.T }

func (w logWriter) Write(p []byte) (int, error) {
	w.t.Log(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

func TestRouterRetriesPastFailingPrimary(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	// Edge cache off: this test needs every select to reach the proxied
	// path so the failing primary keeps accumulating breaker strikes.
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.EdgeCacheDisabled = true
	})

	// Make the category's primary the failing replica so the first attempt
	// always needs a retry.
	primary := rt.Ring().Placement("Cameras")[0]
	byAddr[primary].fail.Store(true)

	for i := 0; i < 5; i++ {
		resp, body := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1","m":3}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
		if !strings.Contains(body, "served_by") {
			t.Fatalf("request %d: unexpected body %s", i, body)
		}
	}
	if got := counterValue(rt, "comparesets_router_retries_total"); got == 0 {
		t.Error("no retries recorded though the primary failed every select")
	}
	// The failing primary trips its breaker after 3 consecutive failures,
	// after which requests stop reaching it.
	deadline := time.Now().Add(2 * time.Second)
	for rt.backends[primary].breaker.State() != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("primary breaker never opened")
		}
		postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1","m":3}`)
	}
	before, _ := byAddr[primary].stats()
	postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1","m":3}`)
	after, _ := byAddr[primary].stats()
	if after != before {
		t.Errorf("open breaker still admitted a select (%d -> %d hits)", before, after)
	}
}

func TestRouterForwards4xxVerbatimWithoutRetry(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t)}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/select", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		rw.WriteHeader(http.StatusNotFound)
		io.WriteString(rw, `{"error":{"code":"not_found","message":"unknown category \"Nope\""}}`)
	})
	workers[0].ts.Config.Handler = mux

	rt, ts, _ := newTestRouter(t, workers, nil)
	resp, body := postSelect(t, ts.URL, `{"category":"Nope","target":"x"}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
	if want := `{"error":{"code":"not_found","message":"unknown category \"Nope\""}}`; body != want {
		t.Errorf("body not forwarded verbatim:\n got %s\nwant %s", body, want)
	}
	if got := counterValue(rt, "comparesets_router_retries_total"); got != 0 {
		t.Errorf("deterministic 4xx was retried %d times", got)
	}
}

func TestRouterRewritesDeadlineOnRetry(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.HedgeDisabled = true
		// A visible backoff so the retry's remaining budget is measurably
		// smaller than the original.
		o.Backoff = BackoffConfig{Base: 60 * time.Millisecond, Cap: 60 * time.Millisecond}
	})
	primary := rt.Ring().Placement("Cameras")[0]
	byAddr[primary].fail.Store(true)

	resp, _ := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1","timeout_ms":5000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var secondary *mockWorker
	for addr, w := range byAddr {
		if addr != primary {
			secondary = w
		}
	}
	bodies := secondary.selectBodies()
	if len(bodies) == 0 {
		t.Fatal("secondary never saw the retried select")
	}
	var got struct {
		TimeoutMS int `json:"timeout_ms"`
	}
	if err := json.Unmarshal([]byte(bodies[0]), &got); err != nil {
		t.Fatalf("retried body is not JSON: %v", err)
	}
	if got.TimeoutMS <= 0 || got.TimeoutMS >= 5000 {
		t.Errorf("retried timeout_ms = %d, want in (0, 5000): the deadline must shrink by elapsed time", got.TimeoutMS)
	}
}

func TestRouterHedgesSlowPrimary(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.HedgeDelay = 15 * time.Millisecond
	})
	primary := rt.Ring().Placement("Cameras")[0]
	byAddr[primary].delay.Store(int64(400 * time.Millisecond))

	start := time.Now()
	resp, _ := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1"}`)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if elapsed >= 300*time.Millisecond {
		t.Errorf("hedge did not mask the slow primary: took %v", elapsed)
	}
	if got := counterValue(rt, "comparesets_router_hedges_total"); got == 0 {
		t.Error("no hedges recorded")
	}
}

func TestRouterMutationFanoutMarksDivergentAndDrains(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t), newMockWorker(t)}
	// Edge cache off so all ten post-divergence selects are proxied and the
	// drain assertion sees real routing decisions, not warm hits.
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.EdgeCacheDisabled = true
	})
	placement := rt.Ring().Placement("Cameras")
	bad := byAddr[placement[1]]
	bad.failMutate.Store(true)

	resp, err := http.Post(ts.URL+"/api/v1/corpora/Cameras/items/cam-1/reviews",
		"application/json", strings.NewReader(`{"reviews":[{"id":"r-1","item_id":"cam-1","rating":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation status = %d body %s", resp.StatusCode, body)
	}
	// Every replica saw the fan-out.
	for i, addr := range placement {
		if _, m := byAddr[addr].stats(); m != 1 {
			t.Errorf("replica %d (%s) saw %d mutations, want 1", i, addr, m)
		}
	}
	if !rt.isDivergent(placement[1], "Cameras") {
		t.Fatal("failed replica not marked divergent")
	}
	if rt.isDivergent(placement[0], "Cameras") || rt.isDivergent(placement[2], "Cameras") {
		t.Fatal("healthy replicas wrongly marked divergent")
	}
	// Subsequent reads for the category must drain away from the divergent
	// replica entirely.
	before, _ := bad.stats()
	for i := 0; i < 10; i++ {
		resp, _ := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-divergence select status = %d", resp.StatusCode)
		}
	}
	after, _ := bad.stats()
	if after != before {
		t.Errorf("divergent replica served %d selects after being drained", after-before)
	}
	if got := counterValue(rt, "comparesets_router_divergence_total"); got != 1 {
		t.Errorf("divergence counter = %d, want 1", got)
	}
}

func TestRouterMutationReceiptMismatchMarksDivergent(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, nil)
	placement := rt.Ring().Placement("Cameras")
	// Same epochSeq prefix rules: a differing fingerprint suffix must flag
	// divergence even when the write nominally succeeded.
	byAddr[placement[1]].receipt.Store(`{"kind":"append","epoch":"7.0000000000000bad","generation":1}`)

	resp, err := http.Post(ts.URL+"/api/v1/corpora/Cameras/items/cam-1/reviews",
		"application/json", strings.NewReader(`{"reviews":[{"id":"r-1","item_id":"cam-1","rating":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutation status = %d", resp.StatusCode)
	}
	if !rt.isDivergent(placement[1], "Cameras") {
		t.Error("fingerprint-mismatched replica not marked divergent")
	}
	if rt.isDivergent(placement[0], "Cameras") {
		t.Error("quorum replica wrongly marked divergent")
	}
}

func TestRouterEpochSeqPrefixDifferenceIsNotDivergence(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, nil)
	placement := rt.Ring().Placement("Cameras")
	// Different epochSeq, same fingerprint + generation: replicas agree.
	byAddr[placement[0]].receipt.Store(`{"kind":"append","epoch":"3.00000000deadbeef","generation":2}`)
	byAddr[placement[1]].receipt.Store(`{"kind":"append","epoch":"9.00000000deadbeef","generation":2}`)

	resp, err := http.Post(ts.URL+"/api/v1/corpora/Cameras/items/cam-1/reviews",
		"application/json", strings.NewReader(`{"reviews":[{"id":"r-1","item_id":"cam-1","rating":4}]}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	for _, addr := range placement {
		if rt.isDivergent(addr, "Cameras") {
			t.Errorf("replica %s marked divergent though only the epochSeq prefix differs", addr)
		}
	}
}

// TestRouterAbandonedProbeDoesNotWedgeHalfOpenBreaker reproduces the
// half-open wedge: a probe launched against a slow half-open primary loses
// the hedge race and is abandoned when the secondary answers. The abandoned
// attempt must release its Allow-claimed probe slot (via the drain path),
// or Allow refuses forever and the primary never rejoins rotation.
func TestRouterAbandonedProbeDoesNotWedgeHalfOpenBreaker(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, func(o *RouterOptions) {
		o.HedgeDelay = 5 * time.Millisecond
		// Edge cache off: every select must probe the half-open primary.
		o.EdgeCacheDisabled = true
	})
	primary := rt.Ring().Placement("Cameras")[0]
	pw := byAddr[primary]

	// Trip the primary's breaker (3 consecutive 5xx), then let the 100ms
	// cooldown elapse so it sits half-open.
	pw.fail.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for rt.backends[primary].breaker.State() != BreakerOpen {
		if time.Now().After(deadline) {
			t.Fatal("primary breaker never opened")
		}
		postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1"}`)
	}
	pw.fail.Store(false)
	pw.delay.Store(int64(300 * time.Millisecond)) // every probe loses the hedge race
	time.Sleep(150 * time.Millisecond)

	// Each request probes the half-open primary, hedges to the healthy
	// secondary, answers from it, and abandons the probe mid-flight.
	for i := 0; i < 3; i++ {
		resp, body := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	// With a leaked slot, Allow refuses forever; the drain settles abandoned
	// probes asynchronously, so poll briefly.
	deadline = time.Now().Add(2 * time.Second)
	for {
		if rt.backends[primary].breaker.Allow() {
			rt.backends[primary].breaker.Release()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("half-open breaker wedged: abandoned probe never released its slot")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestRouterDivergentReplicaRejoinsOnMatchingReceipt(t *testing.T) {
	workers := []*mockWorker{newMockWorker(t), newMockWorker(t)}
	rt, ts, byAddr := newTestRouter(t, workers, nil)
	placement := rt.Ring().Placement("Cameras")
	stray := byAddr[placement[1]]
	stray.receipt.Store(`{"kind":"append","epoch":"7.0000000000000bad","generation":1}`)

	post := func() {
		t.Helper()
		resp, err := http.Post(ts.URL+"/api/v1/corpora/Cameras/items/cam-1/reviews",
			"application/json", strings.NewReader(`{"reviews":[{"id":"r-1","item_id":"cam-1","rating":4}]}`))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mutation status = %d", resp.StatusCode)
		}
	}
	post()
	if !rt.isDivergent(placement[1], "Cameras") {
		t.Fatal("mismatched replica not marked divergent")
	}
	// The replica restarts and rebuilds through the snapshot join: its state
	// converges, so its next receipt matches the quorum (same fingerprint
	// and generation; the epochSeq prefix differing is expected).
	byAddr[placement[0]].receipt.Store(`{"kind":"append","epoch":"2.00000000deadbeef","generation":2}`)
	stray.receipt.Store(`{"kind":"append","epoch":"9.00000000deadbeef","generation":2}`)
	post()
	if rt.isDivergent(placement[1], "Cameras") {
		t.Error("converged replica still drained from reads")
	}
	if got := counterValue(rt, "comparesets_router_rejoins_total"); got == 0 {
		t.Error("no rejoin recorded in metrics")
	}
}

// A caller-supplied client with no Timeout must not make every probe expire
// instantly (context.WithTimeout(ctx, 0) would).
func TestHealthWatcherZeroTimeoutClient(t *testing.T) {
	w := newMockWorker(t)
	hw := NewHealthWatcher([]string{w.ts.URL}, &http.Client{}, time.Hour, nil)
	hw.sweep()
	if got := hw.State(w.ts.URL); got != HealthOK {
		t.Fatalf("state with zero-timeout client = %q, want %q", got, HealthOK)
	}
}

func TestReceiptIdentity(t *testing.T) {
	fp, gen, ok := receiptIdentity([]byte(`{"epoch":"12.00ab","generation":7}`))
	if !ok || fp != "00ab" || gen != 7 {
		t.Errorf("receiptIdentity = %q/%d/%v, want 00ab/7/true", fp, gen, ok)
	}
	if _, _, ok := receiptIdentity([]byte(`not json`)); ok {
		t.Error("garbage receipt parsed")
	}
}
