package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker's cooldown deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

func newTestBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	cfg.now = clk.now
	return NewBreaker(cfg)
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{ConsecutiveFailures: 3})
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(false)
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2 failures = %v, want closed", got)
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after 3 consecutive failures = %v, want open", got)
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request")
	}
}

func TestBreakerOpensOnErrorRate(t *testing.T) {
	clk := newFakeClock()
	// Alternate success/failure: never 3 consecutive failures, but the
	// windowed error rate reaches 50% once MinSamples outcomes exist.
	b := newTestBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 100, Window: 20, ErrorRate: 0.5, MinSamples: 10,
	})
	for i := 0; i < 9; i++ {
		b.Record(i%2 == 0) // F S F S F S F S F → 5 fails in 9
	}
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state below MinSamples = %v, want closed", got)
	}
	b.Record(false) // 10th sample, 6/10 failures ≥ 50%
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state at 60%% windowed errors = %v, want open", got)
	}
}

func TestBreakerHalfOpenAfterCooldownThenCloses(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 1, Cooldown: time.Second, SuccessesToClose: 2, HalfOpenProbes: 1,
	})
	var transitions []string
	b.OnTransition(func(from, to BreakerState) {
		transitions = append(transitions, from.String()+">"+to.String())
	})
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state = %v, want open", got)
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("breaker allowed traffic before the cooldown elapsed")
	}
	clk.advance(time.Millisecond)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", got)
	}

	// One probe slot: the first Allow claims it, a second is refused until
	// the probe outcome is recorded.
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	b.Record(true)
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", got)
	}
	if !b.Allow() {
		t.Fatal("half-open breaker refused the second probe")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", got)
	}

	want := []string{"closed>open", "open>half-open", "half-open>closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", transitions, want)
		}
	}
}

func TestBreakerHalfOpenReopensOnProbeFailure(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Second})
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	b.Record(false)
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", got)
	}
	// The cooldown restarts from the reopen.
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker allowed traffic inside the fresh cooldown")
	}
	clk.advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("breaker refused the probe after the fresh cooldown")
	}
}

func TestBreakerCloseResetsWindow(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 2, Cooldown: time.Second, SuccessesToClose: 1,
		Window: 10, ErrorRate: 0.5, MinSamples: 4,
	})
	b.Record(false)
	b.Record(false) // trips (consecutive)
	clk.advance(time.Second)
	b.Allow()
	b.Record(true) // closes
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state = %v, want closed", got)
	}
	// The pre-trip failures must not linger: these two fresh outcomes stay
	// below MinSamples on a clean window, but a stale window would now hold
	// 4 samples with 3 failures and trip.
	b.Record(true)
	b.Record(false)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("stale window tripped the breaker: state = %v", got)
	}
}

func TestBreakerIgnoresStragglersWhileOpen(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{ConsecutiveFailures: 1, Cooldown: time.Second})
	b.Record(false)
	b.Record(true) // straggler from before the trip
	if got := b.State(); got != BreakerOpen {
		t.Fatalf("straggler success mutated an open breaker: %v", got)
	}
}

func TestBreakerReleaseFreesHalfOpenProbeSlot(t *testing.T) {
	clk := newFakeClock()
	b := newTestBreaker(clk, BreakerConfig{
		ConsecutiveFailures: 1, Cooldown: time.Second, HalfOpenProbes: 1, SuccessesToClose: 1,
	})
	b.Record(false)
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("half-open breaker refused the probe")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a second concurrent probe")
	}
	// The probe is abandoned — cancelled because another replica answered —
	// so no outcome is ever recorded. Release must free the slot, or the
	// breaker wedges with Allow refusing forever.
	b.Release()
	if got := b.State(); got != BreakerHalfOpen {
		t.Fatalf("state after release = %v, want half-open (no outcome was recorded)", got)
	}
	if !b.Allow() {
		t.Fatal("released probe slot not reusable: breaker wedged")
	}
	b.Record(true)
	if got := b.State(); got != BreakerClosed {
		t.Fatalf("state after probe success = %v, want closed", got)
	}
	// Release outside half-open is a no-op.
	b.Release()
	if !b.Allow() {
		t.Fatal("release on a closed breaker blocked traffic")
	}
}

func TestRetryBudgetExhaustionAndRefill(t *testing.T) {
	b := NewRetryBudget(RetryBudgetConfig{Tokens: 2, Ratio: 0.5})
	if !b.Withdraw() || !b.Withdraw() {
		t.Fatal("full budget refused a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("exhausted budget allowed a withdrawal")
	}
	// Two successes deposit 2×0.5 = 1 token: one more retry allowed.
	b.Deposit()
	b.Deposit()
	if !b.Withdraw() {
		t.Fatal("refilled budget refused a withdrawal")
	}
	if b.Withdraw() {
		t.Fatal("budget over-refilled")
	}
	// Deposits cap at the bucket size.
	for i := 0; i < 100; i++ {
		b.Deposit()
	}
	if got := b.Remaining(); got != 2 {
		t.Fatalf("Remaining() after saturation = %v, want 2", got)
	}
}

func TestRetryBudgetRefund(t *testing.T) {
	b := NewRetryBudget(RetryBudgetConfig{Tokens: 2, Ratio: 0.5})
	if !b.Withdraw() {
		t.Fatal("full budget refused a withdrawal")
	}
	// The withdrawn token was never spent (no attempt could be issued):
	// Refund restores the full token, unlike Deposit's fractional credit.
	b.Refund()
	if got := b.Remaining(); got != 2 {
		t.Fatalf("Remaining() after refund = %v, want 2", got)
	}
	// Refunds cap at the bucket size.
	b.Refund()
	if got := b.Remaining(); got != 2 {
		t.Fatalf("Remaining() after spurious refund = %v, want 2", got)
	}
}

func TestBackoffDelayJitterBounds(t *testing.T) {
	cfg := BackoffConfig{}.withDefaults()
	rng := testRand()
	for attempt := 1; attempt <= 10; attempt++ {
		base := cfg.Base << uint(attempt-1)
		if base > cfg.Cap || base <= 0 {
			base = cfg.Cap
		}
		for i := 0; i < 100; i++ {
			d := cfg.delay(attempt, rng)
			if d < base/2 || d > base+base/2 {
				t.Fatalf("attempt %d delay %v outside [%v, %v]", attempt, d, base/2, base+base/2)
			}
		}
	}
}
