package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comparesets/internal/datagen"
	"comparesets/internal/faultinject"
	"comparesets/internal/model"
	"comparesets/internal/service"
)

// elapsedRe zeroes the only nondeterministic bytes in a select response so
// two servers' answers can be compared byte-for-byte.
var elapsedRe = regexp.MustCompile(`"elapsed_ms":[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?`)

func normalizeElapsed(body []byte) string {
	return string(elapsedRe.ReplaceAll(body, []byte(`"elapsed_ms":0`)))
}

// newWorker synthesizes the default corpora (deterministic in the seed, so
// every worker and the reference hold identical state) and serves the full
// service handler plus the snapshot stream over loopback.
func newWorker(t *testing.T, seed int64) (*service.Server, *httptest.Server) {
	t.Helper()
	corpora := map[string]*model.Corpus{}
	for _, cfg := range datagen.DefaultConfigs(seed) {
		c, err := datagen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		corpora[c.Category] = c
	}
	svc := service.NewWithOptions(corpora, testLogger(t), service.Options{})
	outer := http.NewServeMux()
	outer.Handle(SnapshotPathPrefix, SnapshotHandler(svc, testLogger(t)))
	outer.Handle("/", svc.Handler())
	return svc, httptest.NewServer(outer)
}

func post(client *http.Client, url, body string) (int, []byte, error) {
	resp, err := client.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

func selectBody(category, target string) string {
	return fmt.Sprintf(`{"category":%q,"target":%q,"m":3,"lambda":1,"mu":1,"timeout_ms":10000}`, category, target)
}

func appendBody(reviewID, item string) string {
	return fmt.Sprintf(`{"reviews":[{"id":%q,"item_id":%q,"reviewer":"chaos","rating":4,`+
		`"text":"Chaos-run review praising the battery.",`+
		`"mentions":[{"aspect":0,"polarity":0,"score":0.8}]}]}`, reviewID, item)
}

// TestClusterSurvivesReplicaKillMidLoad is the cross-process failure drill
// the distributed tier exists for: a router in front of three replicas,
// one replica killed abruptly mid-load (connections torn, listener gone),
// and the routing tier must mask it — ≥99% of selects succeed, every
// mutation survives on every remaining replica (fingerprint parity against
// a single-binary reference that applied the same writes), and post-chaos
// select responses are byte-identical to the reference's.
func TestClusterSurvivesReplicaKillMidLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-replica chaos run")
	}
	const seed = 7

	refSvc, refTS := newWorker(t, seed)
	defer refTS.Close()

	var workerTS [3]*httptest.Server
	for i := range workerTS {
		_, ts := newWorker(t, seed)
		workerTS[i] = ts
	}
	// Worker 0 dies mid-run; only the survivors get a graceful Close.
	defer workerTS[1].Close()
	defer workerTS[2].Close()

	rt, err := NewRouter(RouterOptions{
		Backends: []string{workerTS[0].URL, workerTS[1].URL, workerTS[2].URL},
		// Replicate everywhere: the strongest zero-mutation-loss check.
		Replication:    3,
		HealthInterval: 50 * time.Millisecond,
		Breaker:        BreakerConfig{ConsecutiveFailures: 2, Cooldown: 300 * time.Millisecond},
		Logger:         testLogger(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Stop()
	routerTS := httptest.NewServer(rt.Handler())
	defer routerTS.Close()

	// Build the workload: every category's targets for selects, plus one
	// mutation per distinct item (distinct items make apply order across
	// categories commute, so the reference converges to the same state
	// whatever the interleaving).
	categories := refSvc.Categories()
	if len(categories) == 0 {
		t.Fatal("no categories loaded")
	}
	type sel struct{ category, target string }
	var selects []sel
	var mutations []struct{ category, item string }
	client := &http.Client{Timeout: 15 * time.Second}
	for _, cat := range categories {
		var ids []string
		if err := getJSON(client, routerTS.URL+"/api/v1/targets?category="+cat, &ids); err != nil {
			t.Fatalf("listing %s targets through the router: %v", cat, err)
		}
		for _, id := range ids {
			selects = append(selects, sel{cat, id})
		}
		c, _ := refSvc.Corpus(cat)
		items := c.ItemIDs()
		for i := 0; i < len(items) && i < 8; i++ {
			mutations = append(mutations, struct{ category, item string }{cat, items[i]})
		}
	}

	const totalRequests = 360
	killAt := int64(totalRequests / 3)
	var (
		fired     atomic.Int64
		okCount   atomic.Int64
		failCount atomic.Int64
		killOnce  sync.Once
		mutIdx    atomic.Int64
		mu        sync.Mutex
		mutated   []struct{ category, item string }
	)
	kill := func() {
		killOnce.Do(func() {
			t.Log("chaos: killing worker 0")
			workerTS[0].CloseClientConnections()
			workerTS[0].Listener.Close()
		})
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				n := fired.Add(1)
				if n > totalRequests {
					return
				}
				if n == killAt {
					kill()
				}
				// Roughly every 12th request is a mutation while the
				// distinct-item list lasts.
				if n%12 == 0 {
					if mi := mutIdx.Add(1) - 1; int(mi) < len(mutations) {
						m := mutations[mi]
						url := fmt.Sprintf("/api/v1/corpora/%s/items/%s/reviews", m.category, m.item)
						body := appendBody(fmt.Sprintf("chaos-%d", mi), m.item)
						status, respBody, err := post(client, routerTS.URL+url, body)
						if err != nil || status != http.StatusOK {
							failCount.Add(1)
							t.Errorf("mutation %d failed: status %d err %v body %s", mi, status, err, respBody)
							continue
						}
						okCount.Add(1)
						// Mirror the accepted write onto the reference.
						if st, _, err := post(client, refTS.URL+url, body); err != nil || st != http.StatusOK {
							t.Errorf("reference apply of mutation %d failed: status %d err %v", mi, st, err)
						}
						mu.Lock()
						mutated = append(mutated, m)
						mu.Unlock()
						continue
					}
				}
				s := selects[int(n)%len(selects)]
				status, _, err := post(client, routerTS.URL+"/api/v1/select", selectBody(s.category, s.target))
				if err != nil || status != http.StatusOK {
					failCount.Add(1)
				} else {
					okCount.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	ok, fail := okCount.Load(), failCount.Load()
	total := ok + fail
	t.Logf("chaos load: %d requests, %d ok, %d failed, %d mutations", total, ok, fail, len(mutated))
	if len(mutated) == 0 {
		t.Fatal("workload applied no mutations")
	}
	if avail := float64(ok) / float64(total); avail < 0.99 {
		t.Fatalf("availability %.4f < 0.99 after replica kill (seed FAULTINJECT_SEED=%d)", avail, faultinject.CurrentSeed())
	}

	// Zero mutation loss: every surviving replica's corpus must fingerprint
	// identically to the reference that applied the same mutations — proven
	// through the snapshot protocol itself.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	for _, cat := range categories {
		refC, _ := refSvc.Corpus(cat)
		want := refC.Fingerprint()
		for i := 1; i < 3; i++ {
			got, err := FetchSnapshot(ctx, client, workerTS[i].URL, cat, t.TempDir())
			if err != nil {
				t.Fatalf("snapshot of %q from surviving worker %d: %v", cat, i, err)
			}
			if got.Fingerprint() != want {
				t.Errorf("worker %d lost a mutation: %q fingerprint %016x, reference %016x",
					i, cat, got.Fingerprint(), want)
			}
		}
	}

	// Byte parity: post-chaos, the routed answer for every mutated item's
	// category and a spread of targets must match the single-binary
	// reference exactly (modulo elapsed_ms).
	for i, s := range selects {
		if i%5 != 0 {
			continue
		}
		body := selectBody(s.category, s.target)
		viaRouter, routerBytes, err := post(client, routerTS.URL+"/api/v1/select", body)
		if err != nil {
			t.Fatalf("parity select via router: %v", err)
		}
		viaRef, refBytes, err := post(client, refTS.URL+"/api/v1/select", body)
		if err != nil {
			t.Fatalf("parity select via reference: %v", err)
		}
		if viaRouter != viaRef {
			t.Fatalf("parity status mismatch for %s/%s: router %d, reference %d", s.category, s.target, viaRouter, viaRef)
		}
		if got, want := normalizeElapsed(routerBytes), normalizeElapsed(refBytes); got != want {
			t.Fatalf("response divergence for %s/%s:\nrouter:    %s\nreference: %s", s.category, s.target, got, want)
		}
	}

	// The router noticed the kill: worker 0 settles at unreachable. A probe
	// launched just before the final sweep can land a heartbeat late, so
	// give the watcher a few 50ms sweep cycles to converge.
	deadline := time.Now().Add(3 * time.Second)
	for {
		if state := rt.health.State(workerTS[0].URL); state == HealthUnreachable {
			break
		} else if time.Now().After(deadline) {
			t.Errorf("killed worker health = %q, want unreachable (all states: %v)",
				state, rt.health.States())
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestRouterMasksInjectedForwardFaults drives the injected-failure side of
// the chaos story: probabilistic router.forward errors must be absorbed by
// retries with at least 99% of requests still succeeding. The router gets a
// deep retry budget and a patient breaker so faults burn retries, not
// candidates; with MaxRetries 3 a request fails only when five independent
// 15%-probability draws all fire (~8 in a million). Gated on FAULTINJECT so
// plain `go test ./...` stays fault-free.
func TestRouterMasksInjectedForwardFaults(t *testing.T) {
	if !faultinject.EnvEnabled() {
		t.Skip("set FAULTINJECT=1 to run chaos tests")
	}
	defer faultinject.Reset()

	workers := []*mockWorker{newMockWorker(t), newMockWorker(t), newMockWorker(t)}
	rt, ts, _ := newTestRouter(t, workers, func(o *RouterOptions) {
		o.MaxRetries = 3
		o.RetryBudget = RetryBudgetConfig{Tokens: 100, Ratio: 1}
		o.Breaker = BreakerConfig{ConsecutiveFailures: 1000}
	})

	faultinject.Seed(faultinject.CurrentSeed())
	faultinject.Arm(faultinject.PointRouterForward, faultinject.Fault{Mode: faultinject.ModeError, Prob: 0.15})
	defer faultinject.Disarm(faultinject.PointRouterForward)

	const n = 100
	failed := 0
	for i := 0; i < n; i++ {
		resp, body := postSelect(t, ts.URL, `{"category":"Cameras","target":"cam-1"}`)
		if resp.StatusCode != http.StatusOK {
			failed++
			t.Logf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	if failed > 1 {
		t.Fatalf("%d/%d requests failed through injected faults (FAULTINJECT_SEED=%d)",
			failed, n, faultinject.CurrentSeed())
	}
	if fires := faultinject.Fires(faultinject.PointRouterForward); fires == 0 {
		t.Fatal("fault never fired — the run proved nothing")
	} else if got := counterValue(rt, "comparesets_router_retries_total"); got == 0 {
		t.Fatalf("%d faults fired but no retries recorded", fires)
	}
}

// TestSnapshotConnDropTearsStreamAndJoinRecovers arms the conndrop fault on
// the snapshot path: the first transfer is torn mid-stream (the joiner sees
// a short log and reports an incomplete snapshot), and Join's bounded retry
// then completes from the self-disarmed point — the full crash-torn
// transfer recovery loop, over real HTTP.
func TestSnapshotConnDropTearsStreamAndJoinRecovers(t *testing.T) {
	defer faultinject.Reset()
	svc, ts := newWorker(t, 3)
	defer ts.Close()
	categories := svc.Categories()
	cat := categories[0]

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	faultinject.Arm(faultinject.PointRouterSnapshot, faultinject.Fault{Mode: faultinject.ModeConnDrop, Remaining: 1})
	if _, err := FetchSnapshot(ctx, nil, ts.URL, cat, t.TempDir()); err == nil {
		t.Fatal("torn snapshot transfer reported success")
	}
	if fires := faultinject.Fires(faultinject.PointRouterSnapshot); fires != 1 {
		t.Fatalf("conndrop fires = %d, want 1", fires)
	}

	// Clean refetch after the bounded fault disarmed itself.
	c, err := FetchSnapshot(ctx, nil, ts.URL, cat, t.TempDir())
	if err != nil {
		t.Fatalf("clean refetch failed: %v", err)
	}
	want, _ := svc.Corpus(cat)
	if c.Fingerprint() != want.Fingerprint() {
		t.Fatalf("refetched corpus fingerprint %016x != source %016x", c.Fingerprint(), want.Fingerprint())
	}

	// Join retries internally: arm another one-shot tear and join everything.
	faultinject.Arm(faultinject.PointRouterSnapshot, faultinject.Fault{Mode: faultinject.ModeConnDrop, Remaining: 1})
	joined, err := Join(ctx, nil, ts.URL, t.TempDir(), testLogger(t))
	if err != nil {
		t.Fatalf("join did not survive a single torn transfer: %v", err)
	}
	if len(joined) != len(categories) {
		t.Fatalf("joined %d categories, want %d", len(joined), len(categories))
	}
	for _, name := range categories {
		src, _ := svc.Corpus(name)
		if joined[name].Fingerprint() != src.Fingerprint() {
			t.Errorf("joined %q fingerprint mismatch", name)
		}
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}
