// The router-tier edge response cache.
//
// Every byte a worker sends for a corpus-referenced select is a pure
// function of the request's semantic fields and the category's corpus
// state — and the router already learns every state change, because it
// reconciles the MutationReceipt of each write it fans out. That makes the
// routing tier a legal cache site: a warm read is answered at the edge in
// microseconds, byte-identical to the proxied response it memoized, without
// spending an upstream flight, a retry token, or a hedge.
//
// Keying mirrors the worker's own servecache discipline: the canonical
// select-request key (every semantic field, timeout_ms excluded) is
// suffixed with a per-category state token derived from the reconciled
// epoch fingerprint and the per-item mutation-generation vector. A write's
// receipt advances the token, so invalidation is a key change — stale
// entries become unreachable instantly and age out of the LRU. Anything
// that muddies the router's view of a category (an unparseable receipt, a
// multi-item mutation, a failed fan-out that may have partially applied, a
// replica draining from or rejoining reads) bumps a flush sequence folded
// into the token: conservative, category-wide, and cheap.
//
// Requests the router cannot prove cacheable — inline instances, unknown
// request fields added by newer workers — bypass the edge entirely and
// take the plain proxied path.
package cluster

import (
	"bytes"
	"encoding/json"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"

	"comparesets/internal/obs"
	"comparesets/internal/servecache"
)

// DefaultEdgeCacheBytes is the edge response cache budget when
// RouterOptions leaves EdgeCacheBytes unset.
const DefaultEdgeCacheBytes int64 = 64 << 20

// edgeKeyVersion is bumped whenever the canonical edge key changes shape,
// so mixed router versions never serve each other's incompatible bytes.
const edgeKeyVersion = "edge-v1"

// edgeSelectRequest mirrors every field of the worker's SelectRequest. The
// decoder runs with DisallowUnknownFields: a request carrying a field this
// router does not know could change the response without changing the key,
// so it is forwarded uncached instead of risking a wrong-bytes collision.
type edgeSelectRequest struct {
	Category       string            `json:"category"`
	Target         string            `json:"target"`
	Aspects        []json.RawMessage `json:"aspects"`
	Items          []json.RawMessage `json:"items"`
	Algorithm      string            `json:"algorithm"`
	M              int               `json:"m"`
	Lambda         float64           `json:"lambda"`
	Mu             float64           `json:"mu"`
	MaxComparative int               `json:"max_comparative"`
	K              int               `json:"k"`
	Method         string            `json:"method"`
	Summarize      int               `json:"summarize"`
	Explain        int               `json:"explain"`
	Metrics        bool              `json:"metrics"`
	// TimeoutMS is parsed so it does not trip DisallowUnknownFields, and
	// deliberately excluded from the key: it bounds computation time, never
	// the result bytes (the router rewrites it per attempt anyway).
	TimeoutMS int `json:"timeout_ms"`
}

// edgeSelectKey builds the canonical cache key of a select body, applying
// the same defaults the worker applies (algorithm, shortlist method) so
// requests that differ only in spelling share an entry. ok is false for
// bodies the edge must not cache: inline instances, missing corpus
// references, or fields this router version does not know.
func edgeSelectKey(body []byte) (key string, ok bool) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req edgeSelectRequest
	if err := dec.Decode(&req); err != nil {
		return "", false
	}
	if req.Category == "" || req.Target == "" || len(req.Items) > 0 || len(req.Aspects) > 0 {
		return "", false
	}
	if req.Algorithm == "" {
		req.Algorithm = "CompaReSetS+"
	}
	if req.K > 0 && req.Method == "" {
		req.Method = "greedy"
	}
	var b strings.Builder
	b.Grow(160)
	b.WriteString(edgeKeyVersion)
	sep := func(field, val string) {
		b.WriteByte('|')
		b.WriteString(field)
		b.WriteByte('=')
		b.WriteString(val)
	}
	sep("cat", req.Category)
	sep("tgt", req.Target)
	sep("alg", req.Algorithm)
	sep("m", strconv.Itoa(req.M))
	sep("l", strconv.FormatFloat(req.Lambda, 'g', -1, 64))
	sep("mu", strconv.FormatFloat(req.Mu, 'g', -1, 64))
	sep("maxc", strconv.Itoa(req.MaxComparative))
	sep("k", strconv.Itoa(req.K))
	if req.K > 0 {
		sep("meth", req.Method)
	}
	sep("sum", strconv.Itoa(req.Summarize))
	sep("exp", strconv.Itoa(req.Explain))
	sep("met", strconv.FormatBool(req.Metrics))
	return b.String(), true
}

// Worker-side markers of responses that are correct but not canonical: a
// stale-while-error serve or a shed exact shortlist. The worker never
// caches them, and neither does the edge — caching one would freeze the
// degradation. The raw byte sequences cannot occur inside a JSON string
// value (the quote characters would be escaped), so a contains check is
// exact.
var (
	edgeDegradedMarker = []byte(`"degraded":true`)
	edgeOptimalMarker  = []byte(`"optimal":false`)
)

// edgeCacheable reports whether a 200 payload may be memoized at the edge.
func edgeCacheable(payload []byte) bool {
	return !bytes.Contains(payload, edgeDegradedMarker) &&
		!bytes.Contains(payload, edgeOptimalMarker)
}

// edgeCategoryState is the router's reconciled view of one category's cache
// lineage, fed exclusively by quorum mutation receipts and flush events.
type edgeCategoryState struct {
	// fp is the corpus-fingerprint suffix of the category's epoch token as
	// last reported by a quorum receipt ("" until the first write).
	fp string
	// gens is the per-item mutation generation vector.
	gens map[string]uint64
	// flushes counts conservative category-wide invalidations.
	flushes uint64
	// token caches the state hash so the read hot path is one map lookup.
	token string
}

// recompute rebuilds the cached token from fp, flushes, and the generation
// vector. Items are folded in sorted order so the hash is deterministic.
func (st *edgeCategoryState) recompute() {
	h := fnv.New64a()
	h.Write([]byte(st.fp))
	var buf [8]byte
	putUint64(buf[:], st.flushes)
	h.Write(buf[:])
	items := make([]string, 0, len(st.gens))
	for it := range st.gens {
		items = append(items, it)
	}
	sort.Strings(items)
	for _, it := range items {
		h.Write([]byte(it))
		putUint64(buf[:], st.gens[it])
		h.Write(buf[:])
	}
	st.token = strconv.FormatUint(h.Sum64(), 16)
}

func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// edgeCache is the router's response cache plus the cross-replica flight
// group that coalesces identical concurrent cold reads into one upstream
// exchange.
type edgeCache struct {
	cache   *servecache.Cache
	flights *servecache.FlightGroup

	mu   sync.Mutex
	cats map[string]*edgeCategoryState

	invalidations func(scope string)
}

// newEdgeCache builds the edge tier with the given byte budget, recording
// hit/miss/eviction and coalescing counters into reg under the
// "router_edge" and "router_edge_flight" cache labels.
func newEdgeCache(budget int64, reg *obs.Registry) *edgeCache {
	if budget <= 0 {
		budget = DefaultEdgeCacheBytes
	}
	e := &edgeCache{
		cache:   servecache.New(budget, 0, obs.NewCacheMetrics(reg, "router_edge")),
		flights: servecache.NewFlightGroup(obs.NewCacheMetrics(reg, "router_edge_flight")),
		cats:    map[string]*edgeCategoryState{},
	}
	e.invalidations = func(scope string) {
		reg.Counter("comparesets_router_edge_invalidations_total",
			"Edge-cache invalidations by scope: receipt (exact re-key) or flush (conservative category drop).",
			obs.Labels{"scope": scope}).Inc()
	}
	return e
}

// key suffixes the canonical request key with the category's current state
// token, making every receipt or flush an O(1) whole-lineage invalidation.
func (e *edgeCache) key(category, canonical string) string {
	e.mu.Lock()
	st := e.cats[category]
	var token string
	if st != nil {
		token = st.token
	}
	e.mu.Unlock()
	return canonical + "|st=" + token
}

// state returns the category's state slot, creating it if needed. Caller
// holds e.mu.
func (e *edgeCache) state(category string) *edgeCategoryState {
	st := e.cats[category]
	if st == nil {
		st = &edgeCategoryState{gens: map[string]uint64{}}
		e.cats[category] = st
	}
	return st
}

// edgeReceipt is the slice of a MutationReceipt the edge consumes.
type edgeReceipt struct {
	Epoch         string   `json:"epoch"`
	Generation    uint64   `json:"generation"`
	Item          string   `json:"item"`
	AffectedItems []string `json:"affected_items"`
}

// applyReceipt advances the category's state from a quorum-confirmed
// mutation receipt: the epoch's fingerprint suffix replaces the reconciled
// fingerprint (a changed fingerprint means the workers reloaded the corpus,
// so the generation vector starts over) and the touched item's generation
// is recorded. Receipts the edge cannot interpret exactly — unparseable, or
// touching several items with a single generation — degrade to a
// conservative flush.
func (e *edgeCache) applyReceipt(category string, receipt []byte) {
	var rec edgeReceipt
	if err := json.Unmarshal(receipt, &rec); err != nil {
		e.flush(category)
		return
	}
	item := rec.Item
	if n := len(rec.AffectedItems); n == 1 {
		item = rec.AffectedItems[0]
	} else if n > 1 {
		e.flush(category)
		return
	}
	if item == "" || rec.Generation == 0 {
		e.flush(category)
		return
	}
	fp := rec.Epoch
	if i := strings.LastIndexByte(rec.Epoch, '.'); i >= 0 {
		fp = rec.Epoch[i+1:]
	}
	e.mu.Lock()
	st := e.state(category)
	if st.fp != fp {
		st.fp = fp
		st.gens = map[string]uint64{}
	}
	st.gens[item] = rec.Generation
	st.recompute()
	e.mu.Unlock()
	e.invalidations("receipt")
}

// flush conservatively invalidates the category's whole edge lineage: the
// flush sequence is folded into the state token, so every existing key of
// the category becomes unreachable at once.
func (e *edgeCache) flush(category string) {
	e.mu.Lock()
	st := e.state(category)
	st.flushes++
	st.recompute()
	e.mu.Unlock()
	e.invalidations("flush")
}
