package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func testRand() *rand.Rand { return rand.New(rand.NewSource(42)) }

func testBackends(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://10.0.0.%d:8080", i+1)
	}
	return out
}

func TestRingRejectsBadConfigs(t *testing.T) {
	if _, err := NewRing(nil, 1, 0); err == nil {
		t.Error("empty backend list accepted")
	}
	if _, err := NewRing([]string{"a", ""}, 1, 0); err == nil {
		t.Error("empty backend address accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 1, 0); err == nil {
		t.Error("duplicate backend accepted")
	}
}

func TestRingReplicationClamps(t *testing.T) {
	r, err := NewRing(testBackends(3), 10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Replication(); got != 3 {
		t.Errorf("replication clamped to %d, want 3", got)
	}
	r, err = NewRing(testBackends(3), 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Replication(); got != 1 {
		t.Errorf("replication floored to %d, want 1", got)
	}
}

func TestRingPlacementDeterministicAndDistinct(t *testing.T) {
	backends := testBackends(5)
	r1, err := NewRing(backends, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing(backends, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		cat := fmt.Sprintf("Category-%d", i)
		p1, p2 := r1.Placement(cat), r2.Placement(cat)
		if len(p1) != 3 {
			t.Fatalf("placement size = %d, want 3", len(p1))
		}
		seen := map[string]bool{}
		for j, addr := range p1 {
			if addr != p2[j] {
				t.Fatalf("placement of %q not deterministic: %v vs %v", cat, p1, p2)
			}
			if seen[addr] {
				t.Fatalf("placement of %q repeats %s: %v", cat, addr, p1)
			}
			seen[addr] = true
			if !r1.Owns(cat, addr) {
				t.Fatalf("Owns(%q, %s) = false for a placed replica", cat, addr)
			}
		}
		if r1.Owns(cat, "http://nope:1") {
			t.Fatalf("Owns true for an unknown backend")
		}
	}
}

func TestRingDistributionIsRoughlyUniform(t *testing.T) {
	backends := testBackends(4)
	r, err := NewRing(backends, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 4000
	for i := 0; i < n; i++ {
		counts[r.Placement(fmt.Sprintf("cat-%d", i))[0]]++
	}
	want := n / len(backends)
	for _, b := range backends {
		if c := counts[b]; c < want/2 || c > want*2 {
			t.Errorf("backend %s owns %d/%d primaries, want within [%d, %d]", b, c, n, want/2, want*2)
		}
	}
}

// TestRingRemovalMovesOnlyTheLostArc is the consistent-hashing property the
// ring exists for: dropping one backend must not reshuffle categories whose
// replica sets never touched it.
func TestRingRemovalMovesOnlyTheLostArc(t *testing.T) {
	all := testBackends(5)
	rAll, err := NewRing(all, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	rLess, err := NewRing(all[:4], 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	lost := all[4]
	for i := 0; i < 200; i++ {
		cat := fmt.Sprintf("cat-%d", i)
		before := rAll.Placement(cat)
		touchesLost := false
		for _, b := range before {
			if b == lost {
				touchesLost = true
			}
		}
		after := rLess.Placement(cat)
		if touchesLost {
			continue // expected to change
		}
		for j := range before {
			if before[j] != after[j] {
				t.Fatalf("category %q moved (%v -> %v) though it never touched the removed backend", cat, before, after)
			}
		}
	}
}
