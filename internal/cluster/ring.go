// Package cluster is the fault-tolerant distributed serving tier: a
// stdlib-HTTP routing layer in front of N worker replicas (cmd/server
// processes), turning the fast single binary into a horizontally scaled
// deployment that survives per-replica failure.
//
// The pieces:
//
//   - Ring (ring.go): consistent-hash placement of categories onto worker
//     backends with a configurable replication factor, so corpora shard
//     across processes and adding a backend moves only its arc of keys.
//   - Breaker (breaker.go): per-backend circuit breakers — closed, open,
//     half-open — tripped by consecutive failures or a windowed error rate,
//     so a sick backend stops absorbing traffic before it poisons tails.
//   - RetryBudget + backoff (retry.go): token-bucket retry budgets refilled
//     by successful work, jittered exponential backoff between attempts;
//     retries apply only to idempotent reads, never mutations.
//   - HealthWatcher (health.go): polls each backend's /readyz and steers
//     balancing away from overloaded or draining replicas before errors
//     appear — the PR 4 readiness states become the router's routing signal.
//   - Snapshot shipping (snapshot.go): GET /internal/v1/snapshot/{category}
//     streams a manifest plus CSLG log bytes; joining replicas replay them
//     through the store's torn-tail recovery and verify fingerprint parity.
//   - Router (router.go): the HTTP tier tying it together — health-steered
//     replica choice, deadline propagation via timeout_ms minus elapsed,
//     hedged reads after a p95-derived delay, write fan-out to every replica
//     of a shard with per-replica epoch/generation reconciliation.
//
// Fault injection points router.forward and router.snapshot (error, latency,
// and conndrop modes) make the whole tier chaos-testable in-process: see
// cluster_chaos_test.go and `make chaos-cluster`.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVirtualNodes is the per-backend vnode count of the hash ring; 128
// keeps the max/min load spread under ~15% for small clusters while the
// ring stays tiny (N×128 points).
const DefaultVirtualNodes = 128

// Ring places categories onto backends by consistent hashing with virtual
// nodes. A category's replica set is the first Replication distinct
// backends clockwise from its hash point, so adding or removing one backend
// remaps only the keys on its arcs. Ring is immutable after construction
// and safe for concurrent use.
type Ring struct {
	backends    []string
	replication int
	points      []ringPoint // sorted by hash
}

type ringPoint struct {
	hash    uint64
	backend int // index into backends
}

// NewRing builds a ring over the backend addresses. replication clamps to
// [1, len(backends)]; vnodes ≤ 0 uses DefaultVirtualNodes.
func NewRing(backends []string, replication, vnodes int) (*Ring, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one backend")
	}
	seen := map[string]bool{}
	for _, b := range backends {
		if b == "" {
			return nil, fmt.Errorf("cluster: empty backend address")
		}
		if seen[b] {
			return nil, fmt.Errorf("cluster: duplicate backend %q", b)
		}
		seen[b] = true
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	if replication < 1 {
		replication = 1
	}
	if replication > len(backends) {
		replication = len(backends)
	}
	r := &Ring{
		backends:    append([]string(nil), backends...),
		replication: replication,
		points:      make([]ringPoint, 0, len(backends)*vnodes),
	}
	for i, b := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s#%d", b, v)), backend: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].backend < r.points[b].backend
	})
	return r, nil
}

// Backends returns the backend addresses the ring was built over, in
// construction order.
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Replication returns the effective replication factor.
func (r *Ring) Replication() int { return r.replication }

// Placement returns the category's replica set: the first Replication
// distinct backends clockwise from the category's hash point, in ring
// (preference) order. The first entry is the category's primary — the
// replica the router tries first when health does not dictate otherwise.
func (r *Ring) Placement(category string) []string {
	h := ringHash(category)
	i := sort.Search(len(r.points), func(k int) bool { return r.points[k].hash >= h })
	out := make([]string, 0, r.replication)
	seen := make([]bool, len(r.backends))
	for scanned := 0; scanned < len(r.points) && len(out) < r.replication; scanned++ {
		p := r.points[(i+scanned)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// Owns reports whether addr is in the category's replica set.
func (r *Ring) Owns(category, addr string) bool {
	for _, b := range r.Placement(category) {
		if b == addr {
			return true
		}
	}
	return false
}

// ringHash is FNV-64a with a splitmix64-style finalizer. Raw FNV leaves
// vnode labels that share long prefixes ("http://10.0.0.2:8080#…") poorly
// spread around the ring — backends ended up owning 3× or ⅓× their fair
// share of arc — and the avalanche pass fixes exactly that.
func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
