// The routing tier.
//
// Router is a stdlib-HTTP reverse proxy specialised for the comparative-set
// service: it places categories on worker replicas via the consistent-hash
// ring, steers reads toward the healthiest replica, retries and hedges
// idempotent work under a shared budget, fans mutations out to every
// replica of a shard, and reconciles the replicas' epoch/generation
// receipts so a replica that missed or mangled a write is drained from
// reads instead of silently serving stale selections.
//
// Read path (select / extract / targets): candidates are the category's
// replica set ordered by health rank then ring preference, minus replicas
// marked divergent for that category and minus open breakers. The first
// attempt is free; every retry (after jittered backoff, on transport error
// or 5xx only) and every hedge (armed at the in-flight backend's p95
// latency) withdraws from the retry budget. A 4xx is a deterministic answer
// — forwarded verbatim, never retried. timeout_ms in the forwarded body is
// rewritten to the remaining deadline budget so a retry never grants an
// upstream more time than the client has left.
//
// Write path (review mutations): serialized per category so every replica
// applies mutations in the same order, then fanned out to the full replica
// set. Receipts are compared by corpus-fingerprint suffix and per-item
// generation — epochSeq prefixes are per-process and deliberately ignored.
// Replicas that fail the write or disagree with the quorum answer are
// marked divergent for that category.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"comparesets/internal/faultinject"
	"comparesets/internal/obs"
)

// RouterOptions configures a Router. Backends is required; every other
// field has a serviceable default.
type RouterOptions struct {
	// Backends are the worker base URLs (e.g. http://127.0.0.1:8081).
	Backends []string
	// Replication is how many replicas hold each category (default: all
	// backends; clamped to [1, len(Backends)]).
	Replication int
	// VirtualNodes per backend on the hash ring (default 128).
	VirtualNodes int
	// MaxRetries bounds extra read attempts after the first (default 2).
	MaxRetries int
	// HedgeDelay is the hedge arm delay used until a backend has enough
	// latency samples for a p95 (default 10ms).
	HedgeDelay time.Duration
	// HedgeDisabled turns hedged reads off entirely.
	HedgeDisabled bool
	// DefaultTimeout is the per-request deadline when the client sends no
	// timeout_ms (default 30s).
	DefaultTimeout time.Duration
	// HealthInterval is the /readyz poll period (default 500ms).
	HealthInterval time.Duration
	// Breaker, RetryBudget, Backoff tune the resilience machinery; zero
	// values take the package defaults.
	Breaker     BreakerConfig
	RetryBudget RetryBudgetConfig
	Backoff     BackoffConfig
	// Client is the upstream HTTP client. When nil a tuned pooled client is
	// built from UpstreamIdleConns and UpstreamTimeout.
	Client *http.Client
	// UpstreamIdleConns is MaxIdleConnsPerHost on the default upstream
	// transport, sized for replica fan-out under concurrency (default 32).
	// Ignored when Client is set.
	UpstreamIdleConns int
	// UpstreamTimeout is the default upstream client's backstop timeout —
	// per-request contexts carry the real deadlines, this only bounds a
	// wedged exchange (default 2×DefaultTimeout). Ignored when Client is
	// set.
	UpstreamTimeout time.Duration
	// EdgeCacheBytes is the edge response-cache budget (default
	// DefaultEdgeCacheBytes).
	EdgeCacheBytes int64
	// EdgeCacheDisabled turns the edge response cache and cold-read
	// coalescing off; every read takes the plain proxied path.
	EdgeCacheDisabled bool
	// Registry receives router metrics (default obs.NewRegistry(), so
	// in-process tests don't collide with worker registries).
	Registry *obs.Registry
	// Logger for lifecycle and divergence events (default log.Default()).
	Logger *log.Logger
	// Seed drives backoff/hedge jitter; 0 uses the faultinject seed so
	// chaos runs are reproducible.
	Seed int64
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.Replication <= 0 {
		o.Replication = len(o.Backends)
	}
	if o.MaxRetries < 0 {
		o.MaxRetries = 0
	} else if o.MaxRetries == 0 {
		o.MaxRetries = 2
	}
	if o.HedgeDelay <= 0 {
		o.HedgeDelay = 10 * time.Millisecond
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.UpstreamIdleConns <= 0 {
		o.UpstreamIdleConns = 32
	}
	if o.UpstreamTimeout <= 0 {
		o.UpstreamTimeout = 2 * o.DefaultTimeout
	}
	if o.Client == nil {
		backends := len(o.Backends)
		if backends < 1 {
			backends = 1
		}
		o.Client = &http.Client{
			Timeout: o.UpstreamTimeout,
			Transport: &http.Transport{
				MaxIdleConns:        o.UpstreamIdleConns * backends,
				MaxIdleConnsPerHost: o.UpstreamIdleConns,
				IdleConnTimeout:     90 * time.Second,
			},
		}
	}
	if o.Registry == nil {
		o.Registry = obs.NewRegistry()
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	if o.Seed == 0 {
		o.Seed = faultinject.CurrentSeed()
	}
	return o
}

// hedge delay clamps: below 2ms a hedge races the original pointlessly,
// above 200ms it no longer protects the tail.
const (
	minHedgeDelay = 2 * time.Millisecond
	maxHedgeDelay = 200 * time.Millisecond
)

// timeoutMSRe rewrites the timeout_ms field in-place so the rest of the
// body's bytes — and therefore the worker's response bytes — are untouched.
var timeoutMSRe = regexp.MustCompile(`"timeout_ms"\s*:\s*[0-9]+`)

// Router is the fault-tolerant routing tier over a fixed set of worker
// replicas.
type Router struct {
	opts     RouterOptions
	ring     *Ring
	backends map[string]*backend
	health   *HealthWatcher
	budget   *RetryBudget
	backoff  BackoffConfig
	reg      *obs.Registry
	logger   *log.Logger
	edge     *edgeCache // nil when EdgeCacheDisabled

	rngMu sync.Mutex
	rng   *rand.Rand

	mu        sync.Mutex
	catLocks  map[string]*sync.Mutex
	divergent map[string]bool // addr + "\x00" + category
}

// NewRouter builds (but does not start) a router over the backends.
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	ring, err := NewRing(opts.Backends, opts.Replication, opts.VirtualNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		opts:      opts,
		ring:      ring,
		backends:  make(map[string]*backend, len(opts.Backends)),
		budget:    NewRetryBudget(opts.RetryBudget),
		backoff:   opts.Backoff.withDefaults(),
		reg:       opts.Registry,
		logger:    opts.Logger,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		catLocks:  map[string]*sync.Mutex{},
		divergent: map[string]bool{},
	}
	if !opts.EdgeCacheDisabled {
		rt.edge = newEdgeCache(opts.EdgeCacheBytes, rt.reg)
	}
	for _, addr := range opts.Backends {
		b := newBackend(addr, opts.Breaker)
		addr := addr
		b.breaker.OnTransition(func(from, to BreakerState) {
			rt.reg.Counter("comparesets_router_breaker_transitions_total",
				"Circuit-breaker state transitions per backend.",
				obs.Labels{"backend": addr, "to": to.String()}).Inc()
			rt.logger.Printf("router: breaker %s: %s -> %s", addr, from, to)
		})
		rt.backends[addr] = b
	}
	rt.health = NewHealthWatcher(opts.Backends, nil, opts.HealthInterval, func(addr, from, to string) {
		rt.logger.Printf("router: health %s: %s -> %s", addr, from, to)
	})
	return rt, nil
}

// Start launches the health watcher.
func (rt *Router) Start() { rt.health.Start() }

// Stop terminates the health watcher.
func (rt *Router) Stop() { rt.health.Stop() }

// Ring exposes the placement ring (for tests and ops tooling).
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry exposes the router's metrics registry.
func (rt *Router) Registry() *obs.Registry { return rt.reg }

// Handler returns the router's HTTP handler: the worker API surface plus
// routing-tier operational endpoints.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /api/v1/categories", rt.handleCategories)
	mux.HandleFunc("GET /api/v1/targets", rt.handleTargets)
	mux.HandleFunc("POST /api/v1/select", rt.handleRead)
	mux.HandleFunc("POST /api/v1/extract", rt.handleRead)
	mux.HandleFunc("POST /api/v1/corpora/{category}/items/{item}/reviews", rt.handleMutation)
	mux.HandleFunc("PATCH /api/v1/corpora/{category}/items/{item}/reviews/{review}", rt.handleMutation)
	mux.HandleFunc("DELETE /api/v1/corpora/{category}/items/{item}/reviews/{review}", rt.handleMutation)
	mux.HandleFunc("GET "+SnapshotPathPrefix+"{category}", rt.handleSnapshotProxy)
	obs.RegisterOps(mux, rt.reg)
	return mux
}

// --- candidate selection ---------------------------------------------------

// readCandidates returns the category's replica set ordered by health rank
// then ring preference, with replicas divergent for this category removed.
// If draining divergent replicas would empty the set entirely they are
// kept (serving possibly-stale data beats serving nothing).
func (rt *Router) readCandidates(category string) []string {
	placement := rt.ring.Placement(category)
	kept := placement[:0:0]
	for _, addr := range placement {
		if !rt.isDivergent(addr, category) {
			kept = append(kept, addr)
		}
	}
	if len(kept) == 0 {
		kept = placement
	}
	states := rt.health.States()
	rank := make(map[string]int, len(kept))
	order := make(map[string]int, len(kept))
	for i, addr := range kept {
		rank[addr] = healthRank(states[addr])
		order[addr] = i
	}
	sort.SliceStable(kept, func(a, b int) bool {
		if rank[kept[a]] != rank[kept[b]] {
			return rank[kept[a]] < rank[kept[b]]
		}
		return order[kept[a]] < order[kept[b]]
	})
	return kept
}

func (rt *Router) isDivergent(addr, category string) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.divergent[addr+"\x00"+category]
}

// markDivergent drains a replica from reads of one category after it missed
// or disagreed on a mutation — a replica that missed even one write cannot
// serve byte-identical selections for that category. The drain is lifted by
// clearDivergent once the replica proves convergence: mutations keep fanning
// out to divergent replicas, and a restart + snapshot join makes the next
// receipt match the quorum again.
func (rt *Router) markDivergent(addr, category, why string) {
	rt.mu.Lock()
	already := rt.divergent[addr+"\x00"+category]
	rt.divergent[addr+"\x00"+category] = true
	rt.mu.Unlock()
	if !already {
		rt.reg.Counter("comparesets_router_divergence_total",
			"Replicas drained from a category after a missed or mismatched mutation.",
			obs.Labels{"backend": addr}).Inc()
		rt.logger.Printf("router: divergent replica %s for %q: %s", addr, category, why)
		// A replica just proved the category's replica set is not in one
		// state; whatever the edge memoized for it is no longer provably
		// current.
		if rt.edge != nil {
			rt.edge.flush(category)
		}
	}
}

// clearDivergent readmits a replica to a category's reads after proof of
// convergence: a mutation receipt whose corpus fingerprint and generation
// match the quorum answer. Receipt equality implies byte-equal corpus
// state, so this cannot readmit a replica that is still missing a write —
// a replica that skipped write N diverges in fingerprint on write N+1 and
// stays drained.
func (rt *Router) clearDivergent(addr, category string) {
	rt.mu.Lock()
	was := rt.divergent[addr+"\x00"+category]
	delete(rt.divergent, addr+"\x00"+category)
	rt.mu.Unlock()
	if was {
		rt.reg.Counter("comparesets_router_rejoins_total",
			"Replicas readmitted to a category's reads after a quorum-matching receipt.",
			obs.Labels{"backend": addr}).Inc()
		rt.logger.Printf("router: replica %s reconverged for %q; readmitted to reads", addr, category)
		// The readmitted replica changes who answers reads; flush so the
		// first post-rejoin serves are proxied rather than replayed.
		if rt.edge != nil {
			rt.edge.flush(category)
		}
	}
}

func (rt *Router) catLock(category string) *sync.Mutex {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	m, ok := rt.catLocks[category]
	if !ok {
		m = &sync.Mutex{}
		rt.catLocks[category] = m
	}
	return m
}

func (rt *Router) jitterDelay(attempt int) time.Duration {
	rt.rngMu.Lock()
	defer rt.rngMu.Unlock()
	return rt.backoff.delay(attempt, rt.rng)
}

// hedgeDelay derives the hedge arm delay from the in-flight backend's p95
// select latency, clamped to [2ms, 200ms]; the configured default applies
// until enough samples exist.
func (rt *Router) hedgeDelay(addr string) time.Duration {
	d := rt.opts.HedgeDelay
	if b := rt.backends[addr]; b != nil {
		if p, ok := b.lat.p95(); ok {
			d = p
		}
	}
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if d > maxHedgeDelay {
		d = maxHedgeDelay
	}
	return d
}

// --- forwarded response plumbing -------------------------------------------

// fwdResp is one upstream answer, buffered so it can be replayed to the
// client verbatim.
type fwdResp struct {
	status      int
	contentType string
	retryAfter  string
	body        []byte
}

// fwdError carries a deterministic but non-cacheable upstream answer
// through the flight group's ([]byte, error) result contract, so every
// coalesced waiter replays the same fwdResp verbatim.
type fwdError struct{ resp *fwdResp }

func (e *fwdError) Error() string {
	return fmt.Sprintf("upstream answered %d", e.resp.status)
}

// bodyBufPool recycles the scratch buffers that drain request and upstream
// bodies. io.ReadAll grows and abandons a fresh buffer per attempt; under
// retry/hedge fan-out that garbage dominates the router's allocation
// profile, so bodies are drained through a pooled buffer and copied out at
// exact size instead.
var bodyBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// readAllPooled drains r through a pooled scratch buffer and returns an
// exact-size copy of the bytes.
func readAllPooled(r io.Reader) ([]byte, error) {
	buf := bodyBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bodyBufPool.Put(buf)
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, err
	}
	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

func (rt *Router) doAttempt(ctx context.Context, addr, method, pathAndQuery string, body []byte, contentType string) (*fwdResp, error) {
	if err := faultinject.CheckCtx(ctx, faultinject.PointRouterForward); err != nil {
		return nil, err
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, addr+pathAndQuery, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := rt.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := readAllPooled(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading upstream body: %w", err)
	}
	return &fwdResp{
		status:      resp.StatusCode,
		contentType: resp.Header.Get("Content-Type"),
		retryAfter:  resp.Header.Get("Retry-After"),
		body:        b,
	}, nil
}

// writeFwd replays a buffered answer to the client. A failed body write
// means the client went away mid-response — counted, not silently dropped.
func (rt *Router) writeFwd(w http.ResponseWriter, f *fwdResp) {
	if f.contentType != "" {
		w.Header().Set("Content-Type", f.contentType)
	}
	if f.retryAfter != "" {
		w.Header().Set("Retry-After", f.retryAfter)
	}
	w.WriteHeader(f.status)
	if _, err := w.Write(f.body); err != nil {
		rt.countClientAbort("forward")
	}
}

// countClientAbort accounts a response the client abandoned mid-write —
// the routing tier's counterpart of the worker's
// comparesets_client_aborts_total.
func (rt *Router) countClientAbort(route string) {
	rt.reg.Counter("comparesets_router_client_aborts_total",
		"Responses abandoned by the client mid-write (499-style), by route.",
		obs.Labels{"route": route}).Inc()
}

// errResp builds a router-originated error in the service's envelope shape
// as a replayable fwdResp, so router errors are indistinguishable in shape
// from worker ones whichever path writes them.
func errResp(status int, code, msg string) *fwdResp {
	env := struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}{}
	env.Error.Code = code
	env.Error.Message = msg
	b, _ := json.Marshal(env)
	return &fwdResp{status: status, contentType: "application/json", body: append(b, '\n')}
}

// writeErr emits the service's error envelope for router-originated errors.
func writeErr(w http.ResponseWriter, status int, code, msg string) {
	f := errResp(status, code, msg)
	w.Header().Set("Content-Type", f.contentType)
	w.WriteHeader(f.status)
	w.Write(f.body)
}

func (rt *Router) countForward(addr, outcome string) {
	rt.reg.Counter("comparesets_router_forward_total",
		"Forward attempts per backend by outcome.",
		obs.Labels{"backend": addr, "outcome": outcome}).Inc()
}

func (rt *Router) countRoute(route string) {
	rt.reg.Counter("comparesets_router_requests_total",
		"Requests accepted by the router, by route.",
		obs.Labels{"route": route}).Inc()
}

// --- read path --------------------------------------------------------------

// handleRead forwards select/extract bodies with the full resilience stack.
// Select bodies the router can prove cacheable take the edge fast path.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request) {
	rt.countRoute("read")
	body, err := readAllPooled(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		return
	}
	var peek struct {
		Category  string `json:"category"`
		TimeoutMS int    `json:"timeout_ms"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error())
		return
	}
	if rt.edge != nil && r.URL.Path == "/api/v1/select" {
		if canonical, ok := edgeSelectKey(body); ok {
			rt.serveEdge(w, r, peek.Category, canonical, body, peek.TimeoutMS)
			return
		}
	}
	rt.forwardRead(w, r, peek.Category, r.URL.RequestURI(), body, peek.TimeoutMS)
}

// serveEdge answers a cacheable select at the edge: warm hits are written
// straight from the response cache in microseconds, and identical
// concurrent cold reads are coalesced into one proxied flight whose
// canonical 200 result is memoized under the category's current state
// token.
func (rt *Router) serveEdge(w http.ResponseWriter, r *http.Request, category, canonical string, body []byte, timeoutMS int) {
	key := rt.edge.key(category, canonical)
	if payload, ok := rt.edge.cache.Get(key); ok {
		span := obs.StartStage(obs.StageRouterEdge)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, err := w.Write(payload); err != nil {
			rt.countClientAbort("edge")
		}
		span.Stop()
		return
	}

	budgetDur := rt.opts.DefaultTimeout
	if timeoutMS > 0 {
		budgetDur = time.Duration(timeoutMS) * time.Millisecond
	}
	deadline := time.Now().Add(budgetDur)
	method := r.Method
	pathAndQuery := r.URL.RequestURI()
	contentType := r.Header.Get("Content-Type")

	// Each participant bounds its own wait by its own deadline; the flight
	// itself runs detached with the leader's deadline, so a short-fused
	// waiter leaving early never cancels work others still want.
	wctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()
	val, _, err := rt.edge.flights.Do(wctx, key, func(fctx context.Context) ([]byte, error) {
		span := obs.StartStage(obs.StageRouterForward)
		defer span.Stop()
		ctx, cancel := context.WithDeadline(fctx, deadline)
		defer cancel()
		resp, perr := rt.proxyRead(ctx, fctx, method, category, pathAndQuery, body, contentType, timeoutMS, deadline)
		if perr != nil {
			return nil, perr
		}
		if resp.status == http.StatusOK && edgeCacheable(resp.body) {
			rt.edge.cache.Put(key, resp.body)
			return resp.body, nil
		}
		// Deterministic but not canonical (4xx, degraded, shed): replayed to
		// every waiter, never memoized.
		return nil, &fwdError{resp: resp}
	})
	switch {
	case err == nil:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		if _, werr := w.Write(val); werr != nil {
			rt.countClientAbort("edge")
		}
	case errors.Is(err, faultinject.ErrConnDrop):
		abortConn(w)
	default:
		var fe *fwdError
		if errors.As(err, &fe) {
			rt.writeFwd(w, fe.resp)
			return
		}
		if r.Context().Err() != nil {
			writeErr(w, 499, "client_closed", "client closed request")
			return
		}
		if errors.Is(err, context.DeadlineExceeded) {
			writeErr(w, http.StatusGatewayTimeout, "deadline_exceeded", "deadline exhausted routing to "+category)
			return
		}
		// Panicked or abandoned flight: nothing deterministic to replay.
		writeErr(w, http.StatusBadGateway, "internal", "edge flight failed: "+err.Error())
	}
}

// handleTargets routes the idempotent targets listing by its category query
// parameter through the same retry/hedge machinery (with no body).
func (rt *Router) handleTargets(w http.ResponseWriter, r *http.Request) {
	rt.countRoute("targets")
	rt.forwardRead(w, r, r.URL.Query().Get("category"), r.URL.RequestURI(), nil, 0)
}

// forwardRead runs the resilient proxy engine against the client's request
// and replays its outcome: the uncached read path.
func (rt *Router) forwardRead(w http.ResponseWriter, r *http.Request, category, pathAndQuery string, body []byte, timeoutMS int) {
	span := obs.StartStage(obs.StageRouterForward)
	defer span.Stop()

	budgetDur := rt.opts.DefaultTimeout
	if timeoutMS > 0 {
		budgetDur = time.Duration(timeoutMS) * time.Millisecond
	}
	deadline := time.Now().Add(budgetDur)
	ctx, cancel := context.WithDeadline(r.Context(), deadline)
	defer cancel()

	resp, err := rt.proxyRead(ctx, r.Context(), r.Method, category, pathAndQuery, body, r.Header.Get("Content-Type"), timeoutMS, deadline)
	if err != nil {
		if errors.Is(err, faultinject.ErrConnDrop) {
			// Injected router crash: tear the client connection down
			// mid-request instead of answering.
			abortConn(w)
			return
		}
		writeErr(w, 499, "client_closed", "client closed request")
		return
	}
	rt.writeFwd(w, resp)
}

// proxyRead is the resilient idempotent-read engine: health-ordered
// candidates, breaker gating, budgeted retries with jittered backoff,
// p95-armed hedging, and deadline propagation. Every deterministic outcome
// — an upstream answer or a router-originated 502/503/504 envelope — comes
// back as a replayable *fwdResp so callers (direct or coalesced behind a
// flight) write identical bytes. An error means nothing is replayable: the
// parent context was abandoned, or an injected fault wants the connection
// torn down. parent distinguishes caller abandonment from deadline
// exhaustion when ctx fires.
func (rt *Router) proxyRead(ctx, parent context.Context, method, category, pathAndQuery string, body []byte, contentType string, timeoutMS int, deadline time.Time) (*fwdResp, error) {
	cands := rt.readCandidates(category)
	if len(cands) == 0 {
		return errResp(http.StatusServiceUnavailable, "overloaded", "no replicas for category "+category), nil
	}

	// attemptBody rewrites timeout_ms to the remaining deadline budget so an
	// upstream never works past what the client will wait for.
	attemptBody := func() []byte {
		if body == nil || timeoutMS <= 0 {
			return body
		}
		rem := time.Until(deadline).Milliseconds()
		if rem < 1 {
			rem = 1
		}
		return timeoutMSRe.ReplaceAll(body, []byte(fmt.Sprintf(`"timeout_ms":%d`, rem)))
	}

	type attemptRes struct {
		addr  string
		start time.Time
		resp  *fwdResp
		err   error
	}
	maxLaunches := rt.opts.MaxRetries + 2 // primary + retries + one hedge
	results := make(chan attemptRes, maxLaunches)
	next, inflight, launched := 0, 0, 0

	launch := func() (string, bool) {
		for tries := 0; tries < len(cands); tries++ {
			addr := cands[next%len(cands)]
			next++
			if !rt.backends[addr].breaker.Allow() {
				continue
			}
			inflight++
			launched++
			ab := attemptBody()
			go func(addr string, ab []byte) {
				attemptStart := time.Now()
				resp, err := rt.doAttempt(ctx, addr, method, pathAndQuery, ab, contentType)
				results <- attemptRes{addr, attemptStart, resp, err}
			}(addr, ab)
			return addr, true
		}
		return "", false
	}

	// settle feeds an abandoned attempt's outcome back to the breaker and
	// health view. An error produced by our own cancellation carries no
	// verdict on the backend, so the Allow-claimed slot (a half-open probe,
	// possibly) is released without recording; a real late outcome still
	// counts.
	settle := func(res attemptRes) {
		b := rt.backends[res.addr]
		switch {
		case res.err != nil:
			if errors.Is(res.err, context.Canceled) || errors.Is(res.err, context.DeadlineExceeded) {
				b.breaker.Release()
				rt.countForward(res.addr, "abandoned")
				return
			}
			b.breaker.Record(false)
			rt.countForward(res.addr, "error")
			if !errors.Is(res.err, faultinject.ErrInjected) {
				rt.health.MarkUnreachable(res.addr)
			}
		case res.resp.status >= 500:
			b.breaker.Record(false)
			rt.countForward(res.addr, "error")
		default:
			b.breaker.Record(true)
			b.lat.observe(time.Since(res.start))
			rt.countForward(res.addr, "ok")
		}
	}

	// Whatever way this engine exits — answered, deadline, caller gone,
	// injected conn-drop — in-flight attempts must not be dropped on the
	// floor: each holds a breaker slot that only settle releases. The
	// caller's deferred cancel (registered before the call, so it runs
	// after this) aborts their transports, keeping the drain short-lived.
	defer func() {
		remaining := inflight
		if remaining == 0 {
			return
		}
		go func() {
			for i := 0; i < remaining; i++ {
				settle(<-results)
			}
		}()
	}()

	first, ok := launch()
	if !ok {
		return errResp(http.StatusServiceUnavailable, "overloaded", "all replicas circuit-broken for category "+category), nil
	}

	var hedgeC <-chan time.Time
	if !rt.opts.HedgeDisabled && len(cands) > 1 {
		ht := time.NewTimer(rt.hedgeDelay(first))
		defer ht.Stop()
		hedgeC = ht.C
	}

	var lastFail *fwdResp
	var lastErr error
	for {
		select {
		case <-ctx.Done():
			if parent.Err() != nil {
				return nil, parent.Err()
			}
			return errResp(http.StatusGatewayTimeout, "deadline_exceeded", "deadline exhausted routing to "+category), nil
		case <-hedgeC:
			hedgeC = nil
			if launched < maxLaunches && rt.budget.Withdraw() {
				if _, ok := launch(); ok {
					rt.reg.Counter("comparesets_router_hedges_total",
						"Hedged read attempts issued after the p95 delay.", nil).Inc()
				} else {
					// Every candidate breaker refused: no hedge load was
					// actually generated, so the token goes back.
					rt.budget.Refund()
				}
			}
		case res := <-results:
			inflight--
			if res.err != nil && errors.Is(res.err, faultinject.ErrConnDrop) {
				return nil, res.err
			}
			b := rt.backends[res.addr]
			switch {
			case res.err != nil:
				b.breaker.Record(false)
				rt.countForward(res.addr, "error")
				if !errors.Is(res.err, context.Canceled) &&
					!errors.Is(res.err, context.DeadlineExceeded) &&
					!errors.Is(res.err, faultinject.ErrInjected) {
					rt.health.MarkUnreachable(res.addr)
				}
				lastErr = res.err
			case res.resp.status >= 500:
				b.breaker.Record(false)
				rt.countForward(res.addr, "error")
				lastFail = res.resp
			default:
				// 2xx–4xx: a deterministic answer. Forward verbatim. The
				// latency sample is per-attempt, not per-handler: a success
				// after backoff or hedging must not inflate the winning
				// backend's p95 and widen future hedge delays.
				b.breaker.Record(true)
				rt.budget.Deposit()
				b.lat.observe(time.Since(res.start))
				rt.countForward(res.addr, "ok")
				return res.resp, nil
			}
			if inflight > 0 {
				continue // a hedge may still succeed
			}
			if launched < maxLaunches && rt.budget.Withdraw() {
				if !sleepCtx(ctx, rt.jitterDelay(launched)) {
					rt.budget.Refund()
					if parent.Err() != nil {
						return nil, parent.Err()
					}
					return errResp(http.StatusGatewayTimeout, "deadline_exceeded", "deadline exhausted routing to "+category), nil
				}
				if _, ok := launch(); ok {
					rt.reg.Counter("comparesets_router_retries_total",
						"Budgeted read retries after transport errors or 5xx.", nil).Inc()
					continue
				}
				rt.budget.Refund()
			}
			if lastFail != nil {
				return lastFail, nil
			}
			return errResp(http.StatusBadGateway, "internal", "all replicas failed: "+lastErr.Error()), nil
		}
	}
}

// --- write path -------------------------------------------------------------

// receiptIdentity extracts the comparable part of a mutation receipt: the
// corpus-fingerprint suffix of the epoch token (the epochSeq prefix is
// per-process and expected to differ across replicas) and the per-item
// mutation generation.
func receiptIdentity(body []byte) (fingerprint string, generation uint64, ok bool) {
	var rec struct {
		Epoch      string `json:"epoch"`
		Generation uint64 `json:"generation"`
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		return "", 0, false
	}
	if i := strings.LastIndexByte(rec.Epoch, '.'); i >= 0 {
		return rec.Epoch[i+1:], rec.Generation, true
	}
	return rec.Epoch, rec.Generation, rec.Epoch != ""
}

// handleMutation fans a review mutation out to every replica of the shard
// and reconciles their receipts. Mutations are never retried — a replayed
// append would duplicate a review — so a replica that misses the write is
// marked divergent instead.
func (rt *Router) handleMutation(w http.ResponseWriter, r *http.Request) {
	rt.countRoute("mutate")
	category := r.PathValue("category")
	body, err := readAllPooled(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad_request", "reading request body: "+err.Error())
		return
	}

	// Serialize writes per category: every replica then observes mutations
	// in identical order, which is what makes their states — and their
	// selection bytes — converge.
	lock := rt.catLock(category)
	lock.Lock()
	defer lock.Unlock()

	ctx, cancel := context.WithTimeout(r.Context(), rt.opts.DefaultTimeout)
	defer cancel()

	if err := faultinject.CheckCtx(ctx, faultinject.PointRouterForward); err != nil {
		if errors.Is(err, faultinject.ErrConnDrop) {
			abortConn(w)
			return
		}
		writeErr(w, http.StatusBadGateway, "internal", "injected fault: "+err.Error())
		return
	}

	placement := rt.ring.Placement(category)
	type mutRes struct {
		addr string
		resp *fwdResp
		err  error
	}
	results := make([]mutRes, len(placement))
	var wg sync.WaitGroup
	for i, addr := range placement {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			resp, err := rt.doAttempt(ctx, addr, r.Method, r.URL.RequestURI(), body, r.Header.Get("Content-Type"))
			results[i] = mutRes{addr, resp, err}
		}(i, addr)
	}
	wg.Wait()

	var ref *mutRes
	for i := range results {
		if results[i].err == nil && results[i].resp.status >= 200 && results[i].resp.status < 300 {
			ref = &results[i]
			break
		}
	}

	if ref == nil {
		// No replica accepted the write. A unanimous 4xx is a deterministic
		// rejection (unknown category, bad payload): forward it verbatim and
		// mark nothing divergent. Anything else is a routing-tier failure.
		unanimous := true
		var proto *fwdResp
		for i := range results {
			res := &results[i]
			if res.err != nil || res.resp.status >= 500 {
				unanimous = false
				if res.err != nil && !errors.Is(res.err, context.Canceled) && !errors.Is(res.err, context.DeadlineExceeded) {
					rt.health.MarkUnreachable(res.addr)
				}
				continue
			}
			if proto == nil {
				proto = res.resp
			} else if proto.status != res.resp.status {
				unanimous = false
			}
		}
		rt.countMutation("error")
		if unanimous && proto != nil {
			// A unanimous deterministic rejection changed no replica's state;
			// the edge cache stays intact.
			rt.writeFwd(w, proto)
			return
		}
		// Some replica may have partially applied the write before failing;
		// the edge cannot tell, so the whole category is flushed.
		if rt.edge != nil {
			rt.edge.flush(category)
		}
		writeErr(w, http.StatusBadGateway, "internal", "mutation failed on all replicas of "+category)
		return
	}

	refFP, refGen, refOK := receiptIdentity(ref.resp.body)
	outcome := "ok"
	refConfirmed := false
	for i := range results {
		res := &results[i]
		if res == ref {
			continue
		}
		switch {
		case res.err != nil:
			rt.markDivergent(res.addr, category, "write failed: "+res.err.Error())
			if !errors.Is(res.err, context.Canceled) && !errors.Is(res.err, context.DeadlineExceeded) {
				rt.health.MarkUnreachable(res.addr)
			}
			outcome = "divergent"
		case res.resp.status != ref.resp.status:
			rt.markDivergent(res.addr, category, fmt.Sprintf("status %d, quorum %d", res.resp.status, ref.resp.status))
			outcome = "divergent"
		default:
			fp, gen, ok := receiptIdentity(res.resp.body)
			switch {
			case refOK && ok && (fp != refFP || gen != refGen):
				rt.markDivergent(res.addr, category,
					fmt.Sprintf("receipt %s/gen %d, quorum %s/gen %d", fp, gen, refFP, refGen))
				outcome = "divergent"
			case refOK && ok:
				// Matching receipts are proof of convergence: a replica that
				// restarted and rebuilt through the snapshot join rejoins
				// this category's reads here.
				refConfirmed = true
				rt.clearDivergent(res.addr, category)
			}
		}
	}
	if refConfirmed {
		// At least one peer independently produced the same receipt, so the
		// reference replica's own state is quorum-confirmed too.
		rt.clearDivergent(ref.addr, category)
	}
	// Advance the edge cache's view of the category before the client sees
	// the mutation's receipt — still inside the category lock, so a read
	// admitted after this response can never replay pre-mutation bytes.
	if rt.edge != nil {
		rt.edge.applyReceipt(category, ref.resp.body)
	}
	rt.countMutation(outcome)
	rt.writeFwd(w, ref.resp)
}

func (rt *Router) countMutation(outcome string) {
	rt.reg.Counter("comparesets_router_mutations_total",
		"Fanned-out mutations by reconciliation outcome.",
		obs.Labels{"outcome": outcome}).Inc()
}

// --- fan-out reads and ops --------------------------------------------------

// liveBackends returns backends that are reachable and not circuit-broken.
func (rt *Router) liveBackends() []string {
	states := rt.health.States()
	var out []string
	for _, addr := range rt.ring.Backends() {
		if states[addr] != HealthUnreachable && rt.backends[addr].breaker.State() != BreakerOpen {
			out = append(out, addr)
		}
	}
	return out
}

// handleCategories merges the category listings of every live backend.
// Replicated categories appear on several backends with identical stats;
// the first answer wins.
func (rt *Router) handleCategories(w http.ResponseWriter, r *http.Request) {
	rt.countRoute("categories")
	ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
	defer cancel()
	backends := rt.liveBackends()
	if len(backends) == 0 {
		backends = rt.ring.Backends()
	}
	type row = json.RawMessage
	merged := map[string]row{}
	okCount := 0
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, addr := range backends {
		wg.Add(1)
		go func(addr string) {
			defer wg.Done()
			resp, err := rt.doAttempt(ctx, addr, http.MethodGet, "/api/v1/categories", nil, "")
			if err != nil || resp.status != http.StatusOK {
				return
			}
			var rows []map[string]json.RawMessage
			if err := json.Unmarshal(resp.body, &rows); err != nil {
				return
			}
			mu.Lock()
			okCount++
			for _, raw := range rows {
				var name string
				if err := json.Unmarshal(raw["name"], &name); err == nil {
					if _, seen := merged[name]; !seen {
						enc, _ := json.Marshal(raw)
						merged[name] = enc
					}
				}
			}
			mu.Unlock()
		}(addr)
	}
	wg.Wait()
	if okCount == 0 {
		writeErr(w, http.StatusServiceUnavailable, "overloaded", "no backend answered the categories listing")
		return
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]json.RawMessage, 0, len(names))
	for _, n := range names {
		out = append(out, merged[n])
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleSnapshotProxy streams a category snapshot from a live owning
// replica — so a joining worker can bootstrap through the router without
// knowing the placement. Torn streams are not retried here: the snapshot
// protocol's record-count check makes the *joiner* retry safely.
func (rt *Router) handleSnapshotProxy(w http.ResponseWriter, r *http.Request) {
	rt.countRoute("snapshot")
	category := r.PathValue("category")
	if err := faultinject.CheckCtx(r.Context(), faultinject.PointRouterSnapshot); err != nil {
		if errors.Is(err, faultinject.ErrConnDrop) {
			abortConn(w)
			return
		}
		writeErr(w, http.StatusBadGateway, "internal", "injected fault: "+err.Error())
		return
	}
	states := rt.health.States()
	var lastErr error
	for _, addr := range rt.readCandidates(category) {
		if states[addr] == HealthUnreachable {
			continue
		}
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, addr+r.URL.RequestURI(), nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := rt.opts.Client.Do(req)
		if err != nil {
			lastErr = err
			rt.health.MarkUnreachable(addr)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Drain so the pooled connection is reusable; a torn drain only
			// costs this one connection, but should not pass silently.
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				rt.logger.Printf("router: snapshot proxy: draining %s error body: %v", addr, err)
			}
			resp.Body.Close()
			lastErr = fmt.Errorf("backend %s: status %d", addr, resp.StatusCode)
			continue
		}
		if ct := resp.Header.Get("Content-Type"); ct != "" {
			w.Header().Set("Content-Type", ct)
		}
		if cl := resp.Header.Get("Content-Length"); cl != "" {
			w.Header().Set("Content-Length", cl)
		}
		w.WriteHeader(http.StatusOK)
		if _, err := io.Copy(w, resp.Body); err != nil {
			// Distinguish the joiner hanging up (499-style, accounted) from a
			// torn upstream stream (the joiner's record-count check makes it
			// retry safely; log for the operator).
			if r.Context().Err() != nil {
				rt.countClientAbort("snapshot")
			} else {
				rt.logger.Printf("router: snapshot proxy: stream from %s torn: %v", addr, err)
			}
		}
		resp.Body.Close()
		return
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no live replica for %q", category)
	}
	writeErr(w, http.StatusBadGateway, "internal", "snapshot proxy: "+lastErr.Error())
}

// --- operational endpoints ---------------------------------------------------

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"backends": len(rt.backends),
	})
}

// handleReadyz reports the cluster view: per-backend health and breaker
// state, the retry budget, and — when the category list is obtainable —
// which categories currently have no live replica. Unroutable categories or
// a fully dead backend set answer 503.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	states := rt.health.States()
	type backendView struct {
		Health  string `json:"health"`
		Breaker string `json:"breaker"`
	}
	views := map[string]backendView{}
	liveCount := 0
	allOK := true
	for _, addr := range rt.ring.Backends() {
		bs := rt.backends[addr].breaker.State()
		views[addr] = backendView{Health: states[addr], Breaker: bs.String()}
		live := states[addr] != HealthUnreachable && bs != BreakerOpen
		if live {
			liveCount++
		}
		if states[addr] != HealthOK || bs != BreakerClosed {
			allOK = false
		}
	}

	var unroutable []string
	for _, cat := range rt.probeCategories(r.Context()) {
		routable := false
		for _, addr := range rt.ring.Placement(cat) {
			if states[addr] != HealthUnreachable &&
				rt.backends[addr].breaker.State() != BreakerOpen &&
				!rt.isDivergent(addr, cat) {
				routable = true
				break
			}
		}
		if !routable {
			unroutable = append(unroutable, cat)
		}
	}

	status := "ok"
	code := http.StatusOK
	switch {
	case liveCount == 0 || len(unroutable) > 0:
		status = "unavailable"
		code = http.StatusServiceUnavailable
	case !allOK:
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":       status,
		"backends":     views,
		"retry_budget": rt.budget.Remaining(),
		"unroutable":   unroutable,
	})
}

// probeCategories best-effort fetches the category list from any live
// backend (for the readiness view); an empty answer is acceptable.
func (rt *Router) probeCategories(ctx context.Context) []string {
	ctx, cancel := context.WithTimeout(ctx, time.Second)
	defer cancel()
	for _, addr := range rt.liveBackends() {
		resp, err := rt.doAttempt(ctx, addr, http.MethodGet, "/api/v1/categories", nil, "")
		if err != nil || resp.status != http.StatusOK {
			continue
		}
		var rows []struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(resp.body, &rows); err != nil {
			continue
		}
		out := make([]string, 0, len(rows))
		for _, row := range rows {
			out = append(out, row.Name)
		}
		return out
	}
	return nil
}
