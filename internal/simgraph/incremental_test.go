package simgraph

import (
	"math"
	"math/rand"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/linalg"
)

// graphsByteIdentical fails unless both graphs carry bit-for-bit identical
// weights.
func graphsByteIdentical(t *testing.T, got, want *Graph, label string) {
	t.Helper()
	if got.N() != want.N() {
		t.Fatalf("%s: n=%d want %d", label, got.N(), want.N())
	}
	for i := 0; i < got.N(); i++ {
		for j := 0; j < got.N(); j++ {
			if math.Float64bits(got.Weight(i, j)) != math.Float64bits(want.Weight(i, j)) {
				t.Fatalf("%s: weight (%d,%d) differs: got %x want %x",
					label, i, j, math.Float64bits(got.Weight(i, j)), math.Float64bits(want.Weight(i, j)))
			}
		}
	}
}

// perturb returns a copy of stats with the touched items' entries replaced
// by fresh random values — the shape of a post-mutation stats recompute.
func perturb(stats []core.ItemStats, touched []int, seed int64) []core.ItemStats {
	rng := rand.New(rand.NewSource(seed))
	out := make([]core.ItemStats, len(stats))
	copy(out, stats)
	for _, i := range touched {
		z := len(stats[i].Phi)
		phi := linalg.NewVector(z)
		for k := range phi {
			phi[k] = rng.Float64()
		}
		out[i] = core.ItemStats{
			OpinionLoss: rng.Float64() * 3,
			AspectLoss:  rng.Float64() * 2,
			Phi:         phi,
			Pi:          stats[i].Pi,
		}
	}
	return out
}

// TestBuilderMatchesBuild proves a fresh Builder reproduces Build exactly.
func TestBuilderMatchesBuild(t *testing.T) {
	for _, float32Mode := range []bool{false, true} {
		cfg := core.Config{M: 3, Lambda: 0.7, Mu: 0.3, Float32: float32Mode}
		for _, n := range []int{2, 17, parallelBuildThreshold + 9} {
			stats := randomStats(n, 12, int64(n))
			graphsByteIdentical(t, NewBuilder(stats, cfg).Graph(), Build(stats, cfg), "fresh builder")
		}
	}
}

// TestBuilderUpdateByteIdentical proves that recomputing only the touched
// rows yields bit-for-bit the graph of a full rebuild over the new stats —
// including when the touched item moves the global max distance up or down.
func TestBuilderUpdateByteIdentical(t *testing.T) {
	for _, float32Mode := range []bool{false, true} {
		cfg := core.Config{M: 3, Lambda: 0.7, Mu: 0.3, Float32: float32Mode}
		for _, n := range []int{3, 40, parallelBuildThreshold + 9} {
			stats := randomStats(n, 12, int64(n))
			b := NewBuilder(stats, cfg)
			for round, raw := range [][]int{{0}, {n / 2}, {1, n - 1}, {2, 3, 4}} {
				var touched []int
				for _, i := range raw {
					if i < n {
						touched = append(touched, i)
					}
				}
				stats = perturb(stats, touched, int64(round*1000+n))
				b.Update(stats, touched)
				graphsByteIdentical(t, b.Graph(), Build(stats, cfg), "after update")
			}
		}
	}
}

// TestBuilderUpdateEdgeCases covers no-op updates, out-of-range indices,
// and the size-change fallback.
func TestBuilderUpdateEdgeCases(t *testing.T) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	stats := randomStats(10, 8, 1)
	b := NewBuilder(stats, cfg)
	b.Update(stats, nil)
	graphsByteIdentical(t, b.Graph(), Build(stats, cfg), "nil touched")
	b.Update(stats, []int{-1, 99})
	graphsByteIdentical(t, b.Graph(), Build(stats, cfg), "out of range touched")
	grown := randomStats(14, 8, 2)
	b.Update(grown, []int{0})
	graphsByteIdentical(t, b.Graph(), Build(grown, cfg), "size change")
}

// The incremental win: one touched row at n=256 versus the full rebuild.
func BenchmarkBuilderUpdate256(b *testing.B) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	stats := randomStats(256, 16, 7)
	bl := NewBuilder(stats, cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bl.Update(stats, []int{i % 256})
		bl.Graph()
	}
}

func BenchmarkBuildFull256(b *testing.B) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	stats := randomStats(256, 16, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(stats, cfg)
	}
}
