package simgraph

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Greedy is Algorithm 2: start from {p₁} and repeatedly add the item that
// maximizes the total weight of the grown subgraph. Gain ties resolve to
// the lowest vertex id, so the output is deterministic.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "TargetHkS_Greedy" }

// SolveContext implements Solver; the O(k·n) run finishes regardless of ctx.
func (s Greedy) SolveContext(_ context.Context, g *Graph, k int) Result { return s.Solve(g, k) }

// Solve implements Solver.
func (Greedy) Solve(g *Graph, k int) Result { return greedyFrom(g, 0, k) }

// greedyFrom runs Algorithm 2 seeded at an arbitrary target vertex — the
// same target view the exact solver uses, so HkS sweeps need no relabelled
// graph copies. The candidate pool is a shrinking slice (chosen entries
// are removed, not rescanned), kept in ascending id order so the strict
// `>` comparison awards gain ties to the lowest index deterministically.
func greedyFrom(g *Graph, target, k int) Result {
	k = clampK(g, k)
	n := g.n
	chosen := make([]int, 1, k)
	chosen[0] = target
	cands := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != target {
			cands = append(cands, v)
		}
	}
	// gain[v] = Σ_{u ∈ chosen} w_uv, updated incrementally.
	gain := make([]float64, n)
	tRow := g.Row(target)
	for _, v := range cands {
		gain[v] = tRow[v]
	}
	total := 0.0
	for len(chosen) < k && len(cands) > 0 {
		bestPos := 0
		bestGain := gain[cands[0]]
		for p := 1; p < len(cands); p++ {
			if gain[cands[p]] > bestGain {
				bestPos, bestGain = p, gain[cands[p]]
			}
		}
		best := cands[bestPos]
		copy(cands[bestPos:], cands[bestPos+1:])
		cands = cands[:len(cands)-1]
		chosen = append(chosen, best)
		total += bestGain
		row := g.Row(best)
		for _, v := range cands {
			gain[v] += row[v]
		}
	}
	sort.Ints(chosen)
	return Result{Members: chosen, Weight: total}
}

// TopK is the Top-k-similarity baseline of §4.3.2: the k−1 items with the
// highest similarity to the target, ignoring inter-item edges.
type TopK struct{}

// Name implements Solver.
func (TopK) Name() string { return "Top-k similarity" }

// SolveContext implements Solver; the O(n log n) run finishes regardless of ctx.
func (s TopK) SolveContext(_ context.Context, g *Graph, k int) Result { return s.Solve(g, k) }

// Solve implements Solver.
func (TopK) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	row := g.Row(0)
	cand := make([]int, 0, g.n-1)
	for v := 1; v < g.n; v++ {
		cand = append(cand, v)
	}
	sort.Slice(cand, func(a, b int) bool {
		if row[cand[a]] != row[cand[b]] {
			return row[cand[a]] > row[cand[b]]
		}
		return cand[a] < cand[b]
	})
	members := append([]int{0}, cand[:k-1]...)
	sort.Ints(members)
	return Result{Members: members, Weight: g.SubsetWeight(members)}
}

// RandomShortlist keeps the target and samples k−1 comparative items
// uniformly (§4.3.1's Random baseline).
type RandomShortlist struct {
	// Seed fixes the sampling; identical seeds yield identical shortlists.
	Seed int64
}

// Name implements Solver.
func (RandomShortlist) Name() string { return "Random" }

// SolveContext implements Solver; the draw finishes regardless of ctx.
func (r RandomShortlist) SolveContext(_ context.Context, g *Graph, k int) Result {
	return r.Solve(g, k)
}

// Solve implements Solver.
func (r RandomShortlist) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(g.n - 1)
	members := []int{0}
	for _, p := range perm[:k-1] {
		members = append(members, p+1)
	}
	sort.Ints(members)
	return Result{Members: members, Weight: g.SubsetWeight(members)}
}

// HkS solves the plain (untargeted) heaviest k-subgraph problem by sweeping
// TargetHkS with every vertex as the target (§3.1's observation) and keeping
// the heaviest result. The per-target solves run on the relabel-free target
// view of the exact solver — no O(n²) rotated graph copy per vertex — and
// weight ties between targets resolve to the lexicographically smallest
// member set. The budget applies per target solve; the aggregate is marked
// Optimal only if every per-target solve was proven optimal.
func HkS(g *Graph, k int, budget time.Duration) Result {
	best := Result{Weight: math.Inf(-1)}
	optimal := true
	for v := 0; v < g.N(); v++ {
		var deadline time.Time
		if budget > 0 {
			deadline = time.Now().Add(budget)
		}
		res := solveTarget(context.Background(), g, v, k, deadline, 0)
		if !res.Optimal {
			optimal = false
		}
		if res.Weight > best.Weight ||
			(res.Weight == best.Weight && lexLess(res.Members, best.Members)) {
			best = Result{Members: res.Members, Weight: res.Weight}
		}
	}
	best.Optimal = optimal && g.N() > 0
	return best
}
