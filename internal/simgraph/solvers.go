package simgraph

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"time"
)

// Exact solves TargetHkS to proven optimality by branch and bound, standing
// in for the paper's Gurobi-based TargetHkS_ILP. A positive Budget caps the
// wall-clock time (the paper used 60 s); on timeout the best incumbent is
// returned with Optimal = false, matching the "#Optimal Solution" accounting
// of Table 5.
type Exact struct {
	// Budget limits the search wall-clock time; zero means unlimited.
	Budget time.Duration
}

// Name implements Solver.
func (Exact) Name() string { return "TargetHkS_ILP" }

// Solve implements Solver.
func (e Exact) Solve(g *Graph, k int) Result {
	return e.SolveContext(context.Background(), g, k)
}

// SolveContext implements Solver. The effective deadline is the earlier of
// the Budget and the ctx deadline, and ctx cancellation is polled at the
// same checkpoint as the deadline, so a cancelled solve returns its best
// incumbent so far (never a zero result — the greedy seed guarantees a
// feasible solution) flagged Optimal = false.
func (e Exact) SolveContext(ctx context.Context, g *Graph, k int) Result {
	k = clampK(g, k)
	if k == 1 {
		return Result{Members: []int{0}, Optimal: true}
	}
	if k == g.n {
		all := make([]int, g.n)
		for i := range all {
			all[i] = i
		}
		return Result{Members: all, Weight: g.SubsetWeight(all), Optimal: true}
	}

	// Seed the incumbent with the greedy solution: a strong lower bound
	// prunes most of the tree immediately, and it is the best-so-far
	// fallback when the budget is already exhausted.
	greedy := (Greedy{}).Solve(g, k)
	bb := &bbState{
		g:        g,
		k:        k,
		ctx:      ctx,
		best:     append([]int(nil), greedy.Members...),
		bestW:    greedy.Weight,
		deadline: time.Time{},
	}
	if e.Budget > 0 {
		bb.deadline = time.Now().Add(e.Budget)
	}
	if d, ok := ctx.Deadline(); ok && (bb.deadline.IsZero() || d.Before(bb.deadline)) {
		bb.deadline = d
	}
	if ctx.Err() != nil || (!bb.deadline.IsZero() && !time.Now().Before(bb.deadline)) {
		sort.Ints(bb.best)
		return Result{Members: bb.best, Weight: bb.bestW, Optimal: false}
	}
	// Candidates ordered by similarity to the target (descending) so that
	// promising branches are explored first.
	cand := make([]int, 0, g.n-1)
	for v := 1; v < g.n; v++ {
		cand = append(cand, v)
	}
	sort.Slice(cand, func(a, b int) bool { return g.w[0][cand[a]] > g.w[0][cand[b]] })
	bb.cand = cand
	// maxEdge[v] = the heaviest edge from v to any candidate (used by the
	// admissible completion bound).
	bb.maxEdge = make([]float64, g.n)
	for _, v := range cand {
		for _, u := range cand {
			if u != v && g.w[v][u] > bb.maxEdge[v] {
				bb.maxEdge[v] = g.w[v][u]
			}
		}
	}
	chosen := []int{0}
	bb.search(chosen, 0, 0)
	sort.Ints(bb.best)
	return Result{Members: bb.best, Weight: bb.bestW, Optimal: !bb.timedOut}
}

type bbState struct {
	g        *Graph
	k        int
	ctx      context.Context
	cand     []int
	maxEdge  []float64
	best     []int
	bestW    float64
	deadline time.Time
	timedOut bool
	ticks    int
}

// search explores extensions of chosen (which always contains vertex 0)
// starting from candidate position pos; curW is the weight of the chosen
// subgraph.
func (b *bbState) search(chosen []int, pos int, curW float64) {
	if b.timedOut {
		return
	}
	b.ticks++
	if b.ticks&1023 == 0 {
		if b.ctx.Err() != nil || (!b.deadline.IsZero() && time.Now().After(b.deadline)) {
			b.timedOut = true
			return
		}
	}
	if len(chosen) == b.k {
		if curW > b.bestW {
			b.bestW = curW
			b.best = append(b.best[:0], chosen...)
		}
		return
	}
	need := b.k - len(chosen)
	remaining := len(b.cand) - pos
	if remaining < need {
		return
	}
	if b.upperBound(chosen, pos, curW, need) <= b.bestW {
		return
	}
	for i := pos; i <= len(b.cand)-need; i++ {
		v := b.cand[i]
		add := 0.0
		for _, u := range chosen {
			add += b.g.w[u][v]
		}
		b.search(append(chosen, v), i+1, curW+add)
		if b.timedOut {
			return
		}
	}
}

// upperBound returns an admissible bound on the best completion: for each
// remaining candidate v, its contribution is at most (edges to chosen) +
// (need−1)/2 · maxEdge[v]; summing the `need` largest such values bounds the
// completion weight.
func (b *bbState) upperBound(chosen []int, pos int, curW float64, need int) float64 {
	scores := make([]float64, 0, len(b.cand)-pos)
	for i := pos; i < len(b.cand); i++ {
		v := b.cand[i]
		s := float64(need-1) / 2 * b.maxEdge[v]
		for _, u := range chosen {
			s += b.g.w[u][v]
		}
		scores = append(scores, s)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(scores)))
	ub := curW
	for i := 0; i < need && i < len(scores); i++ {
		ub += scores[i]
	}
	return ub
}

// Greedy is Algorithm 2: start from {p₁} and repeatedly add the item that
// maximizes the total weight of the grown subgraph.
type Greedy struct{}

// Name implements Solver.
func (Greedy) Name() string { return "TargetHkS_Greedy" }

// SolveContext implements Solver; the O(k·n) run finishes regardless of ctx.
func (s Greedy) SolveContext(_ context.Context, g *Graph, k int) Result { return s.Solve(g, k) }

// Solve implements Solver.
func (Greedy) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	chosen := []int{0}
	in := make([]bool, g.n)
	in[0] = true
	// gain[v] = Σ_{u ∈ chosen} w_uv, updated incrementally.
	gain := make([]float64, g.n)
	for v := 1; v < g.n; v++ {
		gain[v] = g.w[0][v]
	}
	total := 0.0
	for len(chosen) < k {
		best, bestGain := -1, math.Inf(-1)
		for v := 0; v < g.n; v++ {
			if !in[v] && gain[v] > bestGain {
				best, bestGain = v, gain[v]
			}
		}
		if best < 0 {
			break
		}
		in[best] = true
		chosen = append(chosen, best)
		total += bestGain
		for v := 0; v < g.n; v++ {
			if !in[v] {
				gain[v] += g.w[best][v]
			}
		}
	}
	sort.Ints(chosen)
	return Result{Members: chosen, Weight: total}
}

// TopK is the Top-k-similarity baseline of §4.3.2: the k−1 items with the
// highest similarity to the target, ignoring inter-item edges.
type TopK struct{}

// Name implements Solver.
func (TopK) Name() string { return "Top-k similarity" }

// SolveContext implements Solver; the O(n log n) run finishes regardless of ctx.
func (s TopK) SolveContext(_ context.Context, g *Graph, k int) Result { return s.Solve(g, k) }

// Solve implements Solver.
func (TopK) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	cand := make([]int, 0, g.n-1)
	for v := 1; v < g.n; v++ {
		cand = append(cand, v)
	}
	sort.Slice(cand, func(a, b int) bool {
		if g.w[0][cand[a]] != g.w[0][cand[b]] {
			return g.w[0][cand[a]] > g.w[0][cand[b]]
		}
		return cand[a] < cand[b]
	})
	members := append([]int{0}, cand[:k-1]...)
	sort.Ints(members)
	return Result{Members: members, Weight: g.SubsetWeight(members)}
}

// RandomShortlist keeps the target and samples k−1 comparative items
// uniformly (§4.3.1's Random baseline).
type RandomShortlist struct {
	// Seed fixes the sampling; identical seeds yield identical shortlists.
	Seed int64
}

// Name implements Solver.
func (RandomShortlist) Name() string { return "Random" }

// SolveContext implements Solver; the draw finishes regardless of ctx.
func (r RandomShortlist) SolveContext(_ context.Context, g *Graph, k int) Result {
	return r.Solve(g, k)
}

// Solve implements Solver.
func (r RandomShortlist) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	rng := rand.New(rand.NewSource(r.Seed))
	perm := rng.Perm(g.n - 1)
	members := []int{0}
	for _, p := range perm[:k-1] {
		members = append(members, p+1)
	}
	sort.Ints(members)
	return Result{Members: members, Weight: g.SubsetWeight(members)}
}

// HkS solves the plain (untargeted) heaviest k-subgraph problem by sweeping
// TargetHkS with every vertex as the target (§3.1's observation) and keeping
// the heaviest result.
func HkS(g *Graph, k int, budget time.Duration) Result {
	best := Result{Weight: math.Inf(-1)}
	for v := 0; v < g.N(); v++ {
		rot := rotate(g, v)
		res := (Exact{Budget: budget}).Solve(rot, k)
		// Map members back to original vertex ids.
		mapped := make([]int, len(res.Members))
		for i, m := range res.Members {
			mapped[i] = unrotateVertex(m, v)
		}
		sort.Ints(mapped)
		if res.Weight > best.Weight {
			best = Result{Members: mapped, Weight: res.Weight, Optimal: res.Optimal}
		} else if !res.Optimal {
			best.Optimal = false
		}
	}
	return best
}

// rotate returns a copy of g with vertex v relabelled as 0 (swap relabelling
// v <-> 0).
func rotate(g *Graph, v int) *Graph {
	out := NewGraph(g.n)
	for i := 0; i < g.n; i++ {
		for j := i + 1; j < g.n; j++ {
			out.SetWeight(swap(i, v), swap(j, v), g.w[i][j])
		}
	}
	return out
}

func swap(i, v int) int {
	switch i {
	case 0:
		return v
	case v:
		return 0
	default:
		return i
	}
}

func unrotateVertex(i, v int) int { return swap(i, v) }
