package simgraph

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchGraph builds a dense random similarity graph, deterministic in n, so
// baseline and optimized solver runs measure identical instances.
func benchGraph(n int) *Graph {
	rng := rand.New(rand.NewSource(int64(n)*1009 + 7))
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetWeight(i, j, rng.Float64()*10)
		}
	}
	return g
}

// BenchmarkExact covers the grid the shortlist serves in practice: small
// (n=16) through the catalog-pressure sizes (n=32, 64) at both shortlist
// lengths. The n=32 k=10 cell is the BENCH_simgraph.json acceptance
// instance.
func BenchmarkExact(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		for _, k := range []int{5, 10} {
			g := benchGraph(n)
			b.Run(fmt.Sprintf("n%d_k%d", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := (Exact{}).Solve(g, k)
					if !res.Optimal {
						b.Fatal("unbudgeted solve not optimal")
					}
				}
			})
		}
	}
}

func BenchmarkGreedy(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		for _, k := range []int{5, 10} {
			g := benchGraph(n)
			b.Run(fmt.Sprintf("n%d_k%d", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					(Greedy{}).Solve(g, k)
				}
			})
		}
	}
}

func BenchmarkHkS(b *testing.B) {
	for _, n := range []int{16, 32, 64} {
		for _, k := range []int{5, 10} {
			g := benchGraph(n)
			b.Run(fmt.Sprintf("n%d_k%d", n, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					HkS(g, k, 0)
				}
			})
		}
	}
}
