package simgraph

import (
	"math"
	"math/rand"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/linalg"
)

// randomStats synthesizes per-item selection statistics with full float64
// entropy so any ordering or accumulation difference between the parallel
// and sequential loops would show up in the bit patterns.
func randomStats(n, z int, seed int64) []core.ItemStats {
	rng := rand.New(rand.NewSource(seed))
	stats := make([]core.ItemStats, n)
	for i := range stats {
		phi := linalg.NewVector(z)
		pi := linalg.NewVector(z)
		for k := 0; k < z; k++ {
			phi[k] = rng.Float64()
			pi[k] = rng.Float64()
		}
		stats[i] = core.ItemStats{
			OpinionLoss: rng.Float64() * 3,
			AspectLoss:  rng.Float64() * 2,
			Phi:         phi,
			Pi:          pi,
		}
	}
	return stats
}

// TestParallelBuildByteIdentical proves the parallel pairwise loop produces
// bit-for-bit the same weights as the sequential loop, across sizes
// straddling the dispatch threshold.
func TestParallelBuildByteIdentical(t *testing.T) {
	cfg := core.Config{M: 3, Lambda: 0.7, Mu: 0.3}
	for _, n := range []int{2, parallelBuildThreshold - 1, parallelBuildThreshold, parallelBuildThreshold + 33, 200} {
		stats := randomStats(n, 12, int64(n))
		seq := make([][]float64, n)
		par := make([][]float64, n)
		for i := range seq {
			seq[i] = make([]float64, n)
			par[i] = make([]float64, n)
		}
		buildDistancesSequential(seq, stats, nil, cfg)
		for _, workers := range []int{2, 3, 8} {
			for i := range par {
				for j := range par[i] {
					par[i][j] = 0
				}
			}
			buildDistancesParallel(par, stats, nil, cfg, workers)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if math.Float64bits(seq[i][j]) != math.Float64bits(par[i][j]) {
						t.Fatalf("n=%d workers=%d: d[%d][%d] differs: seq=%x par=%x",
							n, workers, i, j, math.Float64bits(seq[i][j]), math.Float64bits(par[i][j]))
					}
				}
			}
		}
	}
}

// Build itself must give the same graph no matter which path it picked.
func TestBuildDispatchConsistent(t *testing.T) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	stats := randomStats(parallelBuildThreshold+5, 8, 42)
	g := Build(stats, cfg)
	want := make([][]float64, len(stats))
	for i := range want {
		want[i] = make([]float64, len(stats))
	}
	buildDistancesSequential(want, stats, nil, cfg)
	ref, err := FromDistances(want)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < g.N(); i++ {
		for j := 0; j < g.N(); j++ {
			if math.Float64bits(g.Weight(i, j)) != math.Float64bits(ref.Weight(i, j)) {
				t.Fatalf("weight (%d,%d) differs", i, j)
			}
		}
	}
}

func BenchmarkBuild200(b *testing.B) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	stats := randomStats(200, 16, 7)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(stats, cfg)
	}
}

func BenchmarkBuildSequential200(b *testing.B) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	stats := randomStats(200, 16, 7)
	n := len(stats)
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildDistancesSequential(d, stats, nil, cfg)
		g, _ := FromDistances(d)
		_ = g
	}
}
