package simgraph

import (
	"runtime"

	"comparesets/internal/core"
)

// Builder maintains the pairwise distance matrix of one instance across
// corpus mutations, so that appending a review to one item costs O(n·z)
// (that item's row) instead of the O(n²·z) full Build.
//
// The builder retains the raw distances d_ij rather than the similarity
// weights: the similarity transform w_ij = max d − d_ij couples every edge
// to the global maximum (§3.1), so a single changed distance can move every
// weight, but it never changes any *other* distance. Update therefore
// recomputes only the touched items' rows, and Graph re-derives the weights
// from the full retained matrix — an O(n²) scalar pass with no feature
// vectors involved.
//
// Byte parity with Build is structural: d_ij is one deterministic float
// expression of the two items' stats (pairDistance, always evaluated with
// the lower index first, matching Build's i<j traversal), untouched entries
// are not recomputed at all, and Graph applies exactly FromDistances'
// transform. A Builder updated incrementally and a fresh
// Build over the same stats yield bit-identical graphs.
type Builder struct {
	cfg core.Config
	n   int
	d   []float64 // row-major n×n distance slab, symmetric, zero diagonal
}

// NewBuilder computes the full distance matrix of the instance — the same
// work as one Build — and retains it for incremental updates.
func NewBuilder(stats []core.ItemStats, cfg core.Config) *Builder {
	b := &Builder{cfg: cfg}
	b.fill(stats)
	return b
}

// fill recomputes the whole matrix (initial build, or an Update whose
// instance size changed).
func (b *Builder) fill(stats []core.ItemStats) {
	n := len(stats)
	b.n = n
	b.d = make([]float64, n*n)
	d := b.rows()
	var phi32 [][]float32
	if b.cfg.Float32 {
		phi32 = narrowPhis(stats)
	}
	if workers := runtime.GOMAXPROCS(0); n >= parallelBuildThreshold && workers > 1 {
		buildDistancesParallel(d, stats, phi32, b.cfg, workers)
	} else {
		buildDistancesSequential(d, stats, phi32, b.cfg)
	}
}

// rows returns the slab as row views (the representation the shared
// distance kernels expect).
func (b *Builder) rows() [][]float64 {
	d := make([][]float64, b.n)
	for i := range d {
		d[i] = b.d[i*b.n : (i+1)*b.n : (i+1)*b.n]
	}
	return d
}

// Update recomputes the distance rows of the touched item indices against
// the given post-mutation stats, leaving every untouched pair's distance
// bit-for-bit as the previous fill left it. Stats must describe the same
// instance ordering as NewBuilder; a changed instance size falls back to a
// full fill.
func (b *Builder) Update(stats []core.ItemStats, touched []int) {
	if len(stats) != b.n {
		b.fill(stats)
		return
	}
	if len(touched) == 0 {
		return
	}
	var phi32 [][]float32
	if b.cfg.Float32 {
		phi32 = narrowPhis(stats)
	}
	inTouched := make(map[int]bool, len(touched))
	for _, i := range touched {
		inTouched[i] = true
	}
	for _, i := range touched {
		if i < 0 || i >= b.n {
			continue
		}
		row := b.d[i*b.n : (i+1)*b.n]
		for j := 0; j < b.n; j++ {
			if j == i {
				continue
			}
			// Each unordered pair is recomputed once: the lower-indexed
			// touched endpoint owns it.
			if inTouched[j] && j < i {
				continue
			}
			// Evaluate with the lower index first — pairDistance sums the
			// two items' losses in argument order, so (i,j) and (j,i) can
			// differ in the last ulp; Build always sees i<j.
			lo, hi := i, j
			if hi < lo {
				lo, hi = hi, lo
			}
			dist := pairDistance(stats, phi32, b.cfg, lo, hi)
			row[j] = dist
			b.d[j*b.n+i] = dist
		}
	}
}

// Graph derives the similarity graph from the retained distances, exactly
// as FromDistances does: w_ij = max_{i'<j'} d_{i'j'} − d_ij.
func (b *Builder) Graph() *Graph {
	g := NewGraph(b.n)
	if b.n < 2 {
		return g
	}
	maxd := b.d[1] // d[0][1]: a valid i<j entry
	for i := 0; i < b.n; i++ {
		row := b.d[i*b.n : (i+1)*b.n]
		for j := i + 1; j < b.n; j++ {
			if row[j] > maxd {
				maxd = row[j]
			}
		}
	}
	for i := 0; i < b.n; i++ {
		row := b.d[i*b.n : (i+1)*b.n]
		for j := i + 1; j < b.n; j++ {
			g.SetWeight(i, j, maxd-row[j])
		}
	}
	return g
}
