package simgraph

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/linalg"
)

// figure4Graph reproduces the structure of Figure 4: six items where the
// heaviest 3-subgraph containing the target p₁ is {p₁, p₄, p₆} with weight
// 25.4 while the unconstrained heaviest 3-subgraph is {p₂, p₅, p₆} with
// weight 26.5.
func figure4Graph() *Graph {
	g := NewGraph(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.SetWeight(i, j, 1)
		}
	}
	g.SetWeight(0, 3, 9)
	g.SetWeight(0, 5, 8)
	g.SetWeight(3, 5, 8.4)
	g.SetWeight(1, 4, 9)
	g.SetWeight(1, 5, 8.5)
	g.SetWeight(4, 5, 9)
	return g
}

func bruteForce(g *Graph, k int) Result {
	n := g.N()
	best := Result{Weight: math.Inf(-1)}
	var rec func(members []int, next int)
	rec = func(members []int, next int) {
		if len(members) == k {
			w := g.SubsetWeight(members)
			if w > best.Weight {
				best = Result{Members: append([]int(nil), members...), Weight: w, Optimal: true}
			}
			return
		}
		for v := next; v < n; v++ {
			rec(append(members, v), v+1)
		}
	}
	rec([]int{0}, 1)
	return best
}

func TestExactMatchesFigure4(t *testing.T) {
	g := figure4Graph()
	res := (Exact{}).Solve(g, 3)
	if !reflect.DeepEqual(res.Members, []int{0, 3, 5}) {
		t.Errorf("members = %v, want [0 3 5]", res.Members)
	}
	if math.Abs(res.Weight-25.4) > 1e-9 {
		t.Errorf("weight = %v, want 25.4", res.Weight)
	}
	if !res.Optimal {
		t.Error("unbudgeted exact solve must be optimal")
	}
}

func TestHkSFindsUntargetedOptimum(t *testing.T) {
	g := figure4Graph()
	res := HkS(g, 3, 0)
	if !reflect.DeepEqual(res.Members, []int{1, 4, 5}) {
		t.Errorf("members = %v, want [1 4 5]", res.Members)
	}
	if math.Abs(res.Weight-26.5) > 1e-9 {
		t.Errorf("weight = %v, want 26.5", res.Weight)
	}
}

func TestExactAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(6)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.SetWeight(i, j, rng.Float64()*10)
			}
		}
		k := 2 + rng.Intn(n-2)
		want := bruteForce(g, k)
		got := (Exact{}).Solve(g, k)
		if math.Abs(got.Weight-want.Weight) > 1e-9 {
			t.Fatalf("trial %d (n=%d k=%d): exact %v != brute force %v", trial, n, k, got.Weight, want.Weight)
		}
		if !got.Optimal {
			t.Fatalf("trial %d: not marked optimal", trial)
		}
		if got.Members[0] != 0 {
			t.Fatalf("trial %d: target not in solution: %v", trial, got.Members)
		}
	}
}

func TestGreedyAlwaysIncludesTargetAndIsConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(10)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.SetWeight(i, j, rng.Float64()*5)
			}
		}
		k := 1 + rng.Intn(n)
		res := (Greedy{}).Solve(g, k)
		if len(res.Members) != k {
			t.Fatalf("trial %d: |members| = %d, want %d", trial, len(res.Members), k)
		}
		if res.Members[0] != 0 {
			t.Fatalf("trial %d: target missing: %v", trial, res.Members)
		}
		if w := g.SubsetWeight(res.Members); math.Abs(w-res.Weight) > 1e-9 {
			t.Fatalf("trial %d: incremental weight %v != recomputed %v", trial, res.Weight, w)
		}
	}
}

func TestGreedyNearOptimalOnFigure4(t *testing.T) {
	g := figure4Graph()
	res := (Greedy{}).Solve(g, 3)
	// Greedy first adds p₄ (w(0,3)=9), then p₆ (1+8.4 vs alternatives) —
	// recovering the exact optimum on this graph.
	if !reflect.DeepEqual(res.Members, []int{0, 3, 5}) {
		t.Errorf("members = %v", res.Members)
	}
}

func TestTopKPicksHighestTargetSimilarity(t *testing.T) {
	g := NewGraph(5)
	g.SetWeight(0, 1, 5)
	g.SetWeight(0, 2, 1)
	g.SetWeight(0, 3, 4)
	g.SetWeight(0, 4, 2)
	g.SetWeight(2, 4, 100) // irrelevant to Top-k
	res := (TopK{}).Solve(g, 3)
	if !reflect.DeepEqual(res.Members, []int{0, 1, 3}) {
		t.Errorf("members = %v, want [0 1 3]", res.Members)
	}
}

func TestRandomShortlistDeterministicPerSeed(t *testing.T) {
	g := figure4Graph()
	a := (RandomShortlist{Seed: 1}).Solve(g, 3)
	b := (RandomShortlist{Seed: 1}).Solve(g, 3)
	if !reflect.DeepEqual(a.Members, b.Members) {
		t.Error("same seed, different members")
	}
	if a.Members[0] != 0 {
		t.Errorf("target missing: %v", a.Members)
	}
	if w := g.SubsetWeight(a.Members); math.Abs(w-a.Weight) > 1e-12 {
		t.Errorf("weight mismatch: %v vs %v", a.Weight, w)
	}
}

func TestSolversClampK(t *testing.T) {
	g := figure4Graph()
	for _, s := range []Solver{Exact{}, Greedy{}, TopK{}, RandomShortlist{}} {
		if res := s.Solve(g, 0); len(res.Members) != 1 || res.Members[0] != 0 {
			t.Errorf("%s k=0: %v", s.Name(), res.Members)
		}
		if res := s.Solve(g, 99); len(res.Members) != g.N() {
			t.Errorf("%s k=99: %v", s.Name(), res.Members)
		}
	}
}

func TestExactTimeoutReturnsIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 40
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetWeight(i, j, rng.Float64())
		}
	}
	res := (Exact{Budget: time.Nanosecond}).Solve(g, 10)
	if len(res.Members) != 10 || res.Members[0] != 0 {
		t.Fatalf("incumbent invalid: %v", res.Members)
	}
	// The greedy seed guarantees a valid incumbent even on instant timeout.
	greedy := (Greedy{}).Solve(g, 10)
	if res.Weight < greedy.Weight-1e-9 {
		t.Errorf("incumbent %v worse than greedy seed %v", res.Weight, greedy.Weight)
	}
}

func TestFromDistances(t *testing.T) {
	d := [][]float64{
		{0, 1, 4},
		{1, 0, 2},
		{4, 2, 0},
	}
	g, err := FromDistances(d)
	if err != nil {
		t.Fatal(err)
	}
	// maxd = 4; w01 = 3, w02 = 0, w12 = 2.
	if g.Weight(0, 1) != 3 || g.Weight(0, 2) != 0 || g.Weight(1, 2) != 2 {
		t.Errorf("weights = %v %v %v", g.Weight(0, 1), g.Weight(0, 2), g.Weight(1, 2))
	}
	if g.Weight(1, 0) != 3 {
		t.Error("graph not symmetric")
	}
	if g.Weight(0, 0) != 0 {
		t.Error("diagonal not zero")
	}
}

func TestFromDistancesRejectsRagged(t *testing.T) {
	if _, err := FromDistances([][]float64{{0, 1}, {1}}); err == nil {
		t.Error("ragged matrix accepted")
	}
}

func TestFromDistancesTiny(t *testing.T) {
	g, err := FromDistances([][]float64{{0}})
	if err != nil || g.N() != 1 {
		t.Errorf("g = %v err = %v", g, err)
	}
	g, err = FromDistances(nil)
	if err != nil || g.N() != 0 {
		t.Errorf("empty: %v err = %v", g, err)
	}
}

func TestBuildFromStats(t *testing.T) {
	cfg := core.Config{M: 3, Lambda: 1, Mu: 0.5}
	stats := []core.ItemStats{
		{OpinionLoss: 0.1, AspectLoss: 0.2, Phi: linalg.Vector{1, 0}},
		{OpinionLoss: 0.3, AspectLoss: 0.1, Phi: linalg.Vector{0, 1}},
		{OpinionLoss: 0.0, AspectLoss: 0.0, Phi: linalg.Vector{1, 0}},
	}
	g := Build(stats, cfg)
	if g.N() != 3 {
		t.Fatalf("N = %d", g.N())
	}
	// Pair (0,2) has the smallest distance, so the largest weight; the
	// max-distance pair gets weight 0.
	w02 := g.Weight(0, 2)
	w01 := g.Weight(0, 1)
	w12 := g.Weight(1, 2)
	if !(w02 > w01 && w02 > w12) {
		t.Errorf("weights: w02=%v w01=%v w12=%v", w02, w01, w12)
	}
	min := math.Min(w01, math.Min(w02, w12))
	if min != 0 {
		t.Errorf("min weight = %v, want 0", min)
	}
}

func TestSubsetWeight(t *testing.T) {
	g := figure4Graph()
	if w := g.SubsetWeight([]int{0, 3, 5}); math.Abs(w-25.4) > 1e-9 {
		t.Errorf("weight = %v", w)
	}
	if w := g.SubsetWeight([]int{2}); w != 0 {
		t.Errorf("singleton weight = %v", w)
	}
	if w := g.SubsetWeight(nil); w != 0 {
		t.Errorf("empty weight = %v", w)
	}
}

// Exact with every vertex as target must dominate any fixed-target solve.
func TestHkSDominatesTargeted(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(4)
		g := NewGraph(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.SetWeight(i, j, rng.Float64()*3)
			}
		}
		k := 3
		hks := HkS(g, k, 0)
		targeted := (Exact{}).Solve(g, k)
		if hks.Weight < targeted.Weight-1e-9 {
			t.Fatalf("trial %d: HkS %v < targeted %v", trial, hks.Weight, targeted.Weight)
		}
		sorted := append([]int(nil), hks.Members...)
		sort.Ints(sorted)
		if !reflect.DeepEqual(sorted, hks.Members) {
			t.Fatalf("members not sorted: %v", hks.Members)
		}
	}
}
