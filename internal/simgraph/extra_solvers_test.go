package simgraph

import (
	"math"
	"math/rand"
	"testing"
)

func randomGraph(rng *rand.Rand, n int) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetWeight(i, j, rng.Float64()*10)
		}
	}
	return g
}

func TestGreedyRemovalBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(10)
		g := randomGraph(rng, n)
		k := 1 + rng.Intn(n)
		res := (GreedyRemoval{}).Solve(g, k)
		if len(res.Members) != k {
			t.Fatalf("|members| = %d, want %d", len(res.Members), k)
		}
		if res.Members[0] != 0 {
			t.Fatalf("target missing: %v", res.Members)
		}
		if math.Abs(res.Weight-g.SubsetWeight(res.Members)) > 1e-9 {
			t.Fatalf("weight %v != recomputed %v", res.Weight, g.SubsetWeight(res.Members))
		}
	}
}

func TestGreedyRemovalOnFigure4(t *testing.T) {
	g := figure4Graph()
	res := (GreedyRemoval{}).Solve(g, 3)
	// Removal keeps the target and the densest companions; its weight must
	// be within the optimum and at least the random baseline's expected
	// range.
	if res.Weight > 25.4+1e-9 {
		t.Errorf("weight %v exceeds optimum", res.Weight)
	}
	if res.Members[0] != 0 {
		t.Errorf("members = %v", res.Members)
	}
}

func TestLocalSearchNeverWorseThanGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	improved := 0
	for trial := 0; trial < 60; trial++ {
		n := 6 + rng.Intn(12)
		g := randomGraph(rng, n)
		k := 3 + rng.Intn(4)
		if k > n {
			k = n
		}
		greedy := (Greedy{}).Solve(g, k)
		ls := (LocalSearch{}).Solve(g, k)
		if ls.Weight < greedy.Weight-1e-9 {
			t.Fatalf("trial %d: local search %v worse than its greedy seed %v", trial, ls.Weight, greedy.Weight)
		}
		if ls.Weight > greedy.Weight+1e-9 {
			improved++
		}
		exact := (Exact{}).Solve(g, k)
		if ls.Weight > exact.Weight+1e-9 {
			t.Fatalf("trial %d: local search %v beat the proven optimum %v", trial, ls.Weight, exact.Weight)
		}
		if ls.Members[0] != 0 {
			t.Fatalf("trial %d: target missing: %v", trial, ls.Members)
		}
	}
	if improved == 0 {
		t.Log("local search never improved on greedy across 60 trials (greedy is strong on random graphs)")
	}
}

func TestLocalSearchWeightConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 8)
		res := (LocalSearch{MaxIterations: 3}).Solve(g, 4)
		if math.Abs(res.Weight-g.SubsetWeight(res.Members)) > 1e-9 {
			t.Fatalf("weight %v != recomputed %v", res.Weight, g.SubsetWeight(res.Members))
		}
	}
}

func TestSolverHierarchy(t *testing.T) {
	// Exact ≥ LocalSearch ≥ Greedy; all valid; Solvers() registry covers
	// every solver with distinct names.
	rng := rand.New(rand.NewSource(45))
	names := map[string]bool{}
	for _, s := range Solvers(1) {
		if names[s.Name()] {
			t.Errorf("duplicate solver name %s", s.Name())
		}
		names[s.Name()] = true
	}
	for trial := 0; trial < 20; trial++ {
		n := 6 + rng.Intn(8)
		g := randomGraph(rng, n)
		k := 3
		exact := (Exact{}).Solve(g, k)
		for _, s := range Solvers(int64(trial)) {
			res := s.Solve(g, k)
			if len(res.Members) != k || res.Members[0] != 0 {
				t.Fatalf("%s: invalid members %v", s.Name(), res.Members)
			}
			if res.Weight > exact.Weight+1e-9 {
				t.Fatalf("%s: weight %v beats the optimum %v", s.Name(), res.Weight, exact.Weight)
			}
		}
	}
}

func TestGreedyRemovalClampK(t *testing.T) {
	g := figure4Graph()
	if res := (GreedyRemoval{}).Solve(g, 0); len(res.Members) != 1 {
		t.Errorf("k=0: %v", res.Members)
	}
	if res := (GreedyRemoval{}).Solve(g, 100); len(res.Members) != g.N() {
		t.Errorf("k=100: %v", res.Members)
	}
	if res := (LocalSearch{}).Solve(g, 100); len(res.Members) != g.N() {
		t.Errorf("local k=100: %v", res.Members)
	}
}
