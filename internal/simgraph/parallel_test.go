package simgraph

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"
)

// testGraph builds an n-vertex graph with uniform random weights. Integer
// mode draws weights from a small integer range so exact-tie cases are
// common and float arithmetic on them is exact — the regime where the
// lexicographic tie rule actually decides the winner.
func testGraph(rng *rand.Rand, n int, integer bool) *Graph {
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if integer {
				g.SetWeight(i, j, float64(rng.Intn(4)))
			} else {
				g.SetWeight(i, j, rng.Float64()*10)
			}
		}
	}
	return g
}

// TestParallelMatchesSequential locks the determinism contract: for any
// worker count the completed search returns byte-identical members and
// weight bits, including on tie-rich integer graphs where the incumbent
// arrival order differs between runs.
func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		integer := trial%2 == 0
		n := 6 + rng.Intn(18)
		g := testGraph(rng, n, integer)
		k := 2 + rng.Intn(n-2)
		seq := Exact{Workers: 1}.Solve(g, k)
		for _, workers := range []int{0, 2, 4} {
			par := Exact{Workers: workers}.Solve(g, k)
			if !reflect.DeepEqual(par.Members, seq.Members) {
				t.Fatalf("trial %d (n=%d k=%d integer=%v workers=%d): members %v != sequential %v",
					trial, n, k, integer, workers, par.Members, seq.Members)
			}
			if math.Float64bits(par.Weight) != math.Float64bits(seq.Weight) {
				t.Fatalf("trial %d (n=%d k=%d integer=%v workers=%d): weight bits %x != sequential %x",
					trial, n, k, integer, workers,
					math.Float64bits(par.Weight), math.Float64bits(seq.Weight))
			}
			if !par.Optimal {
				t.Fatalf("trial %d: unbudgeted solve not optimal", trial)
			}
		}
	}
}

// TestExactTieBreaksLexicographic pins the tie rule itself: on a uniform
// graph every k-subset containing the target has the same weight, so the
// winner must be the lexicographically smallest member set.
func TestExactTieBreaksLexicographic(t *testing.T) {
	g := NewGraph(8)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			g.SetWeight(i, j, 2)
		}
	}
	for _, workers := range []int{1, 0, 4} {
		res := Exact{Workers: workers}.Solve(g, 4)
		if !reflect.DeepEqual(res.Members, []int{0, 1, 2, 3}) {
			t.Fatalf("workers=%d: members = %v, want [0 1 2 3]", workers, res.Members)
		}
	}
}

// TestExactCanceledContextReturnsGreedySeed verifies the degraded path: a
// context canceled before the search starts yields exactly the greedy
// incumbent, flagged non-optimal.
func TestExactCanceledContextReturnsGreedySeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testGraph(rng, 24, false)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Exact{}.SolveContext(ctx, g, 8)
	want := (Greedy{}).Solve(g, 8)
	if res.Optimal {
		t.Fatal("canceled solve must not claim optimality")
	}
	if !reflect.DeepEqual(res.Members, want.Members) {
		t.Fatalf("members = %v, want greedy seed %v", res.Members, want.Members)
	}
}

// TestExactMidSolveCancellation cancels a long parallel solve in flight and
// checks it returns promptly with a feasible, greedy-or-better incumbent.
func TestExactMidSolveCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := testGraph(rng, 72, false)
	const k = 12
	greedy := (Greedy{}).Solve(g, k)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res := Exact{}.SolveContext(ctx, g, k)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("canceled solve took %v, want prompt return", elapsed)
	}
	if res.Optimal {
		t.Fatal("interrupted solve must not claim optimality")
	}
	if len(res.Members) != k {
		t.Fatalf("incumbent has %d members, want %d", len(res.Members), k)
	}
	if res.Weight < greedy.Weight-1e-9 {
		t.Fatalf("incumbent weight %v below greedy seed %v", res.Weight, greedy.Weight)
	}
}

// FuzzExactCrossCheck cross-checks brute force, the sequential search, and
// the parallel search on arbitrary small graphs: all three must agree on
// the optimal weight and on the lexicographically smallest optimal set.
func FuzzExactCrossCheck(f *testing.F) {
	f.Add(int64(1), uint8(8), uint8(3), false)
	f.Add(int64(2), uint8(12), uint8(6), true)
	f.Add(int64(3), uint8(5), uint8(5), true)
	f.Fuzz(func(t *testing.T, seed int64, nRaw, kRaw uint8, integer bool) {
		n := 3 + int(nRaw)%10 // 3..12
		k := 2 + int(kRaw)%(n-1)
		rng := rand.New(rand.NewSource(seed))
		g := testGraph(rng, n, integer)
		want := bruteForce(g, k)
		seq := Exact{Workers: 1}.Solve(g, k)
		par := Exact{Workers: 4}.Solve(g, k)
		for name, got := range map[string]Result{"sequential": seq, "parallel": par} {
			if math.Abs(got.Weight-want.Weight) > 1e-9 {
				t.Fatalf("%s (n=%d k=%d): weight %v != brute force %v", name, n, k, got.Weight, want.Weight)
			}
			if !got.Optimal {
				t.Fatalf("%s: not marked optimal", name)
			}
		}
		if !reflect.DeepEqual(seq.Members, par.Members) {
			t.Fatalf("n=%d k=%d: sequential members %v != parallel %v", n, k, seq.Members, par.Members)
		}
		if integer {
			// Integer weights make float arithmetic exact, so the brute
			// force tie winner (first optimum in ascending enumeration =
			// lexicographically smallest) must match exactly.
			if !reflect.DeepEqual(seq.Members, want.Members) {
				t.Fatalf("n=%d k=%d: members %v != brute force tie winner %v", n, k, seq.Members, want.Members)
			}
		}
	})
}
