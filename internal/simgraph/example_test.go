package simgraph_test

import (
	"fmt"
	"time"

	"comparesets/internal/simgraph"
)

// ExampleGreedy shortlists the Figure 4 graph: the heaviest 3-subgraph
// containing the target vertex 0.
func ExampleGreedy() {
	g := simgraph.NewGraph(6)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			g.SetWeight(i, j, 1)
		}
	}
	g.SetWeight(0, 3, 9)
	g.SetWeight(0, 5, 8)
	g.SetWeight(3, 5, 8.4)
	g.SetWeight(1, 4, 9)
	g.SetWeight(1, 5, 8.5)
	g.SetWeight(4, 5, 9)

	res := (simgraph.Greedy{}).Solve(g, 3)
	fmt.Printf("members %v weight %.1f\n", res.Members, res.Weight)
	// Output:
	// members [0 3 5] weight 25.4
}

// ExampleExact proves optimality within a time budget, the Gurobi-style
// semantics of Table 5.
func ExampleExact() {
	g := simgraph.NewGraph(4)
	g.SetWeight(0, 1, 5)
	g.SetWeight(0, 2, 1)
	g.SetWeight(1, 2, 4)
	g.SetWeight(2, 3, 10)

	res := (simgraph.Exact{Budget: time.Second}).Solve(g, 3)
	fmt.Printf("members %v weight %.0f optimal %v\n", res.Members, res.Weight, res.Optimal)
	// Output:
	// members [0 2 3] weight 11 optimal true
}
