package simgraph

import (
	"context"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"comparesets/internal/obs"
)

// Exact solves TargetHkS to proven optimality by a parallel branch and
// bound, standing in for the paper's Gurobi-based TargetHkS_ILP. A positive
// Budget caps the wall-clock time (the paper used 60 s); on timeout the
// best incumbent is returned with Optimal = false, matching the "#Optimal
// Solution" accounting of Table 5.
//
// The search splits the top one or two tree levels into subproblems that a
// bounded worker pool claims off an atomic counter (idle workers steal the
// next unclaimed subproblem, so skewed subtrees self-balance). Workers
// share only the incumbent weight — a lock-free float64-bits CAS — and keep
// their candidate sets local. Completed solves are deterministic: pruning
// keeps weight ties alive, every subproblem finds its lexicographically
// smallest optimum independent of incumbent timing, and a final reduction
// resolves ties to the lexicographically smallest member set, so results
// are byte-identical run to run and across worker counts.
type Exact struct {
	// Budget limits the search wall-clock time; zero means unlimited.
	Budget time.Duration
	// Workers bounds the search worker pool. Zero means GOMAXPROCS;
	// 1 runs the sequential reference search (identical results).
	Workers int
}

// Name implements Solver.
func (Exact) Name() string { return "TargetHkS_ILP" }

// Solve implements Solver.
func (e Exact) Solve(g *Graph, k int) Result {
	return e.SolveContext(context.Background(), g, k)
}

// SolveContext implements Solver. The effective deadline is the earlier of
// the Budget and the ctx deadline, and ctx cancellation is polled at the
// same checkpoint as the deadline, so a cancelled solve returns its best
// incumbent so far (never a zero result — the greedy seed guarantees a
// feasible solution) flagged Optimal = false.
func (e Exact) SolveContext(ctx context.Context, g *Graph, k int) Result {
	span := obs.StartStage(obs.StageShortlistExact)
	defer span.Stop()
	var deadline time.Time
	if e.Budget > 0 {
		deadline = time.Now().Add(e.Budget)
	}
	if d, ok := ctx.Deadline(); ok && (deadline.IsZero() || d.Before(deadline)) {
		deadline = d
	}
	return solveTarget(ctx, g, 0, k, deadline, e.Workers)
}

// pastDeadline reports whether the deadline has been reached; a zero
// deadline means none. Every checkpoint — the solve-entry fast path and
// the in-search poll — uses this one predicate, so a solve observed at
// exactly its deadline behaves identically everywhere: the seeded
// incumbent comes back flagged Optimal = false.
func pastDeadline(deadline time.Time) bool {
	return !deadline.IsZero() && !time.Now().Before(deadline)
}

// Solver observability: search volume and incumbent churn, exposed at
// /metrics. Handles are resolved once; the hot loop only bumps worker-local
// uint64s that are flushed once per solve.
var (
	nodesExplored = obs.Default().Counter("comparesets_shortlist_nodes_total",
		"Exact shortlist branch-and-bound nodes by outcome.", obs.Labels{"event": "explored"})
	nodesPruned = obs.Default().Counter("comparesets_shortlist_nodes_total",
		"Exact shortlist branch-and-bound nodes by outcome.", obs.Labels{"event": "pruned"})
	incumbentUpdates = obs.Default().Counter("comparesets_shortlist_incumbent_updates_total",
		"Exact shortlist incumbent adoptions (strict improvements and lexicographic tie wins).", nil)
)

// sharedIncumbent is the cross-worker lower bound: the best known subset
// weight, stored as float64 bits and raised with a CAS loop. Workers read
// it to prune; they never read each other's member sets.
type sharedIncumbent struct {
	bits atomic.Uint64
}

func (s *sharedIncumbent) load() float64 {
	return math.Float64frombits(s.bits.Load())
}

// raise lifts the incumbent to w if w is a strict improvement.
func (s *sharedIncumbent) raise(w float64) {
	for {
		old := s.bits.Load()
		if w <= math.Float64frombits(old) {
			return
		}
		if s.bits.CompareAndSwap(old, math.Float64bits(w)) {
			return
		}
	}
}

// subproblem is one top-of-tree unit of work: a fixed prefix of one or two
// candidate positions (b = -1 for one). Exploration continues at candidate
// position pos.
type subproblem struct {
	a, b int
	pos  int
}

// solveTarget runs the branch and bound for an arbitrary target vertex —
// the relabel-free "target view" that lets HkS sweep all targets without
// copying a rotated O(n²) graph per vertex. Members come back in original
// vertex ids, ascending.
func solveTarget(ctx context.Context, g *Graph, target, k int, deadline time.Time, workers int) Result {
	k = clampK(g, k)
	n := g.n
	if k == 1 {
		return Result{Members: []int{target}, Optimal: true}
	}
	if k == n {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		return Result{Members: all, Weight: g.SubsetWeight(all), Optimal: true}
	}

	// Seed the incumbent with the greedy solution: a strong lower bound
	// prunes most of the tree immediately, and it is the best-so-far
	// fallback when the budget is already exhausted.
	greedy := greedyFrom(g, target, k)
	if ctx.Err() != nil || pastDeadline(deadline) {
		return Result{Members: greedy.Members, Weight: greedy.Weight, Optimal: false}
	}

	// Candidates ordered by similarity to the target (descending, ties to
	// the lower id) so that promising branches are explored first.
	tRow := g.Row(target)
	cand := make([]int, 0, n-1)
	for v := 0; v < n; v++ {
		if v != target {
			cand = append(cand, v)
		}
	}
	sort.Slice(cand, func(a, b int) bool {
		if tRow[cand[a]] != tRow[cand[b]] {
			return tRow[cand[a]] > tRow[cand[b]]
		}
		return cand[a] < cand[b]
	})
	m := len(cand)

	// maxEdge[v] = the heaviest edge from v to any other candidate, the
	// per-vertex cap on v's edges into the completion.
	maxEdge := make([]float64, n)
	for _, v := range cand {
		row := g.Row(v)
		best := 0.0
		for _, u := range cand {
			if u != v && row[u] > best {
				best = row[u]
			}
		}
		maxEdge[v] = best
	}

	// sufMax[pos][v] = the heaviest edge from v to any candidate at
	// position ≥ pos. At a node exploring position pos, every yet-to-be
	// -added vertex lives in cand[pos:], so this suffix cap is a strictly
	// tighter internal-edge bound than the global maxEdge — and it keeps
	// tightening as the search descends. One (m+1)×n slab, built in O(m·n)
	// by a backwards sweep, shared read-only by all workers.
	sufBacking := make([]float64, (m+1)*n)
	sufMax := make([][]float64, m+1)
	for i := range sufMax {
		sufMax[i] = sufBacking[i*n : (i+1)*n : (i+1)*n]
	}
	for pos := m - 1; pos >= 0; pos-- {
		uRow := g.Row(cand[pos])
		prev := sufMax[pos+1]
		cur := sufMax[pos]
		for v := 0; v < n; v++ {
			if uRow[v] > prev[v] {
				cur[v] = uRow[v]
			} else {
				cur[v] = prev[v]
			}
		}
	}

	// Prefix sums powering the O(1) admissible pre-bound:
	// tPrefix[i] = Σ of the i largest target similarities (cand is already
	// in descending target-similarity order), and mePrefix[i] = Σ of the i
	// largest maxEdge values over all candidates. Any `need` remaining
	// candidates contribute at most their top-need target similarities plus
	// depth·(top-need maxEdge sum) edges to the already-chosen non-target
	// vertices plus (need−1)/2·(top-need maxEdge sum) internal edges.
	tPrefix := make([]float64, m+1)
	for i, v := range cand {
		tPrefix[i+1] = tPrefix[i] + tRow[v]
	}
	meSorted := make([]float64, m)
	for i, v := range cand {
		meSorted[i] = maxEdge[v]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(meSorted)))
	mePrefix := make([]float64, m+1)
	for i, v := range meSorted {
		mePrefix[i+1] = mePrefix[i] + v
	}

	shared := &sharedIncumbent{}
	shared.raise(greedy.Weight)

	// Split the top of the tree into subproblems. Two levels whenever the
	// depth allows it: the first-candidate subtrees are heavily skewed
	// (descending similarity order makes subtree 0 by far the largest), and
	// the finer grain lets the atomic claim counter balance them.
	need1 := k - 1 // candidates still to pick at the root
	var subs []subproblem
	if need1 >= 2 {
		subs = make([]subproblem, 0, m*m/2)
		for i := 0; i <= m-need1; i++ {
			for j := i + 1; j <= m-need1+1; j++ {
				subs = append(subs, subproblem{a: i, b: j, pos: j + 1})
			}
		}
	} else {
		subs = make([]subproblem, 0, m)
		for i := 0; i < m; i++ {
			subs = append(subs, subproblem{a: i, b: -1, pos: i + 1})
		}
	}

	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(subs) {
		workers = len(subs)
	}
	if workers < 1 {
		workers = 1
	}

	var abort atomic.Bool
	var next atomic.Int64
	pool := make([]*bbWorker, workers)
	for i := range pool {
		pool[i] = &bbWorker{
			g: g, n: n, k: k, target: target,
			cand: cand, maxEdge: maxEdge, sufMax: sufMax, tPrefix: tPrefix, mePrefix: mePrefix,
			shared: shared, ctx: ctx, deadline: deadline, abort: &abort,
			toChosen: make([]float64, n),
			chosen:   make([]int, 0, k),
			topBuf:   make([]float64, k),
			bestSet:  make([]int, 0, k),
			tieBuf:   make([]int, 0, k),
		}
	}
	if workers == 1 {
		pool[0].run(subs, &next)
	} else {
		var wg sync.WaitGroup
		for _, w := range pool {
			wg.Add(1)
			go func(w *bbWorker) {
				defer wg.Done()
				w.run(subs, &next)
			}(w)
		}
		wg.Wait()
	}

	// Deterministic reduction: highest weight wins; on equal weights the
	// lexicographically smallest member set wins. Each subproblem finds its
	// lexicographically smallest optimum regardless of incumbent timing
	// (pruning keeps ties alive), so this reduction — and therefore the
	// whole solve — is byte-identical run to run and across worker counts.
	best := Result{Members: greedy.Members, Weight: greedy.Weight}
	var nodes, pruned, updates uint64
	for _, w := range pool {
		nodes += w.nodes
		pruned += w.pruned
		updates += w.updates
		if w.hasBest && (w.bestW > best.Weight ||
			(w.bestW == best.Weight && lexLess(w.bestSet, best.Members))) {
			best = Result{Members: append([]int(nil), w.bestSet...), Weight: w.bestW}
		}
	}
	best.Optimal = !abort.Load()
	nodesExplored.Add(int(nodes))
	nodesPruned.Add(int(pruned))
	incumbentUpdates.Add(int(updates))
	return best
}

// bbWorker is one search worker's private state. All buffers are reused
// across nodes and subproblems, so the inner search performs zero heap
// allocations.
type bbWorker struct {
	g        *Graph
	n, k     int
	target   int
	cand     []int
	maxEdge  []float64
	sufMax   [][]float64
	tPrefix  []float64
	mePrefix []float64
	shared   *sharedIncumbent
	ctx      context.Context
	deadline time.Time
	abort    *atomic.Bool

	// toChosen[v] = Σ_{u ∈ chosen ∪ {target}} w_uv, maintained by
	// push/pop row updates instead of per-candidate recomputation.
	toChosen []float64
	chosen   []int     // non-target members in pick order
	topBuf   []float64 // ascending top-need selection buffer for bounds
	bestSet  []int     // local best member set (incl. target), ascending
	bestW    float64
	hasBest  bool
	tieBuf   []int

	nodes, pruned, updates uint64
	ticks                  int
}

// run claims subproblems off the shared counter until none remain; idle
// workers thereby steal the next unclaimed subtree from the global queue.
func (w *bbWorker) run(subs []subproblem, next *atomic.Int64) {
	for {
		if w.abort.Load() {
			return
		}
		i := int(next.Add(1)) - 1
		if i >= len(subs) {
			return
		}
		w.exploreSub(subs[i])
	}
}

// exploreSub replays the subproblem prefix through the same push path the
// search uses, then explores the subtree. A cheap O(1) bound skips the
// O(n) state initialization for subtrees already below the incumbent.
func (w *bbWorker) exploreSub(s subproblem) {
	va := w.cand[s.a]
	tRow := w.g.Row(w.target)
	prefixW := tRow[va]
	depth := 1
	if s.b >= 0 {
		vb := w.cand[s.b]
		prefixW += tRow[vb] + w.g.Row(va)[vb]
		depth = 2
	}
	if need := w.k - 1 - depth; need > 0 {
		h := float64(need-1) / 2
		fast := prefixW + (w.tPrefix[s.pos+need] - w.tPrefix[s.pos]) +
			(float64(depth)+h)*w.mePrefix[need]
		if fast < w.shared.load() {
			w.pruned++
			return
		}
	}
	copy(w.toChosen, tRow)
	w.chosen = w.chosen[:0]
	curW := 0.0
	for _, idx := range [2]int{s.a, s.b} {
		if idx < 0 {
			continue
		}
		v := w.cand[idx]
		curW += w.toChosen[v]
		w.push(v)
	}
	// Bound the subproblem root here; search() bounds children before
	// descending, so each node is bounded exactly once.
	if need := w.k - 1 - len(w.chosen); need > 0 &&
		w.bound(s.pos, need, curW, float64(need-1)/2) < w.shared.load() {
		w.pruned++
		return
	}
	w.search(s.pos, curW)
}

// push adds v to the chosen set, streaming v's adjacency row into
// toChosen. The full-row loop is branch-free and contiguous; entries for
// already-chosen vertices are updated too but never read.
func (w *bbWorker) push(v int) {
	w.chosen = append(w.chosen, v)
	row := w.g.Row(v)
	to := w.toChosen
	for u := range to {
		to[u] += row[u]
	}
}

// pop undoes push.
func (w *bbWorker) pop() {
	v := w.chosen[len(w.chosen)-1]
	w.chosen = w.chosen[:len(w.chosen)-1]
	row := w.g.Row(v)
	to := w.toChosen
	for u := range to {
		to[u] -= row[u]
	}
}

// checkAbort polls cancellation and the deadline, publishing the abort so
// every worker stops at its next checkpoint.
func (w *bbWorker) checkAbort() bool {
	if w.abort.Load() {
		return true
	}
	if w.ctx.Err() != nil || pastDeadline(w.deadline) {
		w.abort.Store(true)
		return true
	}
	return false
}

// search explores extensions of the current chosen set starting from
// candidate position pos; curW is the weight of the chosen subgraph
// (including the target). The caller has already bound-checked this node,
// so the body bounds each child before descending — a pruned child never
// pays the O(n) push/pop row update.
func (w *bbWorker) search(pos int, curW float64) {
	w.nodes++
	w.ticks++
	if w.ticks&255 == 0 && w.checkAbort() {
		return
	}
	need := w.k - 1 - len(w.chosen)
	if need == 0 {
		w.offer(curW)
		return
	}
	m := len(w.cand)
	if m-pos < need {
		return
	}
	// Frontier specialization: with one slot left, every child is a leaf
	// whose weight is curW + toChosen[v] already — scan the candidates
	// directly instead of paying the O(n) push/pop row update per leaf.
	if need == 1 {
		for i := pos; i < m; i++ {
			v := w.cand[i]
			leafW := curW + w.toChosen[v]
			w.nodes++
			if w.hasBest && leafW < w.bestW {
				continue
			}
			w.chosen = append(w.chosen, v)
			w.offer(leafW)
			w.chosen = w.chosen[:len(w.chosen)-1]
		}
		return
	}
	need2 := need - 1
	h2 := float64(need2-1) / 2
	depth2 := float64(len(w.chosen) + 1)
	last := m - need
	to := w.toChosen
	for i := pos; i <= last; i++ {
		v := w.cand[i]
		childW := curW + to[v]
		cpos := i + 1
		// Prune only when the bound cannot even tie the incumbent: keeping
		// weight ties alive is what makes every subproblem's lexicographic
		// winner independent of incumbent arrival order, i.e. deterministic.
		lb := w.shared.load()
		fast := childW + (w.tPrefix[cpos+need2] - w.tPrefix[cpos]) + (depth2+h2)*w.mePrefix[need2]
		if fast < lb {
			w.pruned++
			continue
		}
		if w.childBound(cpos, need2, childW, h2, v) < lb {
			w.pruned++
			continue
		}
		w.push(v)
		w.search(cpos, childW)
		w.pop()
		if w.abort.Load() {
			return
		}
	}
}

// bound returns the admissible completion bound for the current state:
// each remaining candidate v can contribute at most toChosen[v] (its edges
// to the chosen set) plus (need−1)/2·sufMax[pos][v] (its share of edges
// among the added vertices, capped by the heaviest edge v still has into
// the open suffix); summing the `need` largest such scores — selected in
// O(remaining) by an in-place quickselect over a reusable scratch buffer,
// no allocation, no full sort — bounds the completion weight.
func (w *bbWorker) bound(pos, need int, curW, h float64) float64 {
	rest := w.cand[pos:]
	to := w.toChosen
	me := w.sufMax[pos]
	top := w.topBuf[:need]
	for i := range top {
		top[i] = 0
	}
	for _, v := range rest {
		s := to[v] + h*me[v]
		if s > top[0] {
			j := 1
			for j < need && top[j] < s {
				top[j-1] = top[j]
				j++
			}
			top[j-1] = s
		}
	}
	total := curW
	for _, t := range top {
		total += t
	}
	return total
}

// childBound is bound() evaluated for a hypothetical child (current chosen
// plus v) without materializing the child's toChosen: the v row is fused
// into the score pass, so rejected children cost one streaming read of the
// suffix instead of two full push/pop row updates.
func (w *bbWorker) childBound(pos, need int, childW, h float64, v int) float64 {
	rest := w.cand[pos:]
	to := w.toChosen
	vRow := w.g.Row(v)
	me := w.sufMax[pos]
	// The deepest levels dominate the call count; fuse their selection into
	// the score pass (registers only, no scratch stores).
	switch need {
	case 1:
		best := 0.0
		for _, u := range rest {
			if s := to[u] + vRow[u]; s > best {
				best = s
			}
		}
		return childW + best
	case 2:
		a, b := 0.0, 0.0 // a ≥ b; scores are non-negative
		for _, u := range rest {
			s := to[u] + vRow[u] + h*me[u]
			if s > b {
				if s > a {
					a, b = s, a
				} else {
					b = s
				}
			}
		}
		return childW + a + b
	}
	// General case: maintain the need largest scores in a small ascending
	// buffer (top[0] is the threshold); the common branch is a single
	// failed compare per candidate, with no scratch stores.
	top := w.topBuf[:need]
	for i := range top {
		top[i] = 0
	}
	for _, u := range rest {
		s := to[u] + vRow[u] + h*me[u]
		if s > top[0] {
			j := 1
			for j < need && top[j] < s {
				top[j-1] = top[j]
				j++
			}
			top[j-1] = s
		}
	}
	total := childW
	for _, t := range top {
		total += t
	}
	return total
}

// offer considers a complete k-set as the worker-local incumbent: strict
// weight improvements always win; exact ties go to the lexicographically
// smaller sorted member set. Only strict improvements raise the shared
// (weight-only) incumbent.
func (w *bbWorker) offer(curW float64) {
	if !w.hasBest || curW > w.bestW {
		w.hasBest = true
		w.bestW = curW
		w.bestSet = append(w.bestSet[:0], w.chosen...)
		w.bestSet = append(w.bestSet, w.target)
		sort.Ints(w.bestSet)
		w.updates++
		w.shared.raise(curW)
		return
	}
	if curW == w.bestW {
		w.tieBuf = append(w.tieBuf[:0], w.chosen...)
		w.tieBuf = append(w.tieBuf, w.target)
		sort.Ints(w.tieBuf)
		if lexLess(w.tieBuf, w.bestSet) {
			w.bestSet, w.tieBuf = w.tieBuf, w.bestSet
			w.updates++
		}
	}
}

// lexLess reports whether sorted member set a precedes sorted member set b
// lexicographically.
func lexLess(a, b []int) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
