// Package simgraph implements §3 of the paper: the item-similarity graph
// induced by a CompaReSetS+ selection, and solvers for the TARGET-ORIENTED
// HEAVIEST K-SUBGRAPH problem (TargetHkS, Problem 3) — an exact
// branch-and-bound maximizer standing in for the paper's Gurobi ILP
// (TargetHkS_ILP), the greedy heuristic of Algorithm 2
// (TargetHkS_Greedy), and the Top-k-similarity and Random shortlist
// baselines of §4.3.
package simgraph

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"comparesets/internal/core"
	"comparesets/internal/linalg"
)

// Graph is a complete undirected weighted graph over the instance items.
// Vertex 0 is the target item p₁. Weights are similarities (non-negative).
//
// Storage is a single row-major n×n slab so the solver bound loops stream
// one contiguous cache line sequence per vertex instead of chasing n row
// pointers.
type Graph struct {
	n int
	w []float64 // row-major: w[i*n+j] = w_ij
}

// NewGraph allocates an n-vertex graph with zero weights.
func NewGraph(n int) *Graph {
	return &Graph{n: n, w: make([]float64, n*n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Row returns vertex i's adjacency row as a contiguous view into the slab
// (Row(i)[j] = w_ij, 0 on the diagonal). Callers must not modify it.
func (g *Graph) Row(i int) []float64 {
	return g.w[i*g.n : (i+1)*g.n : (i+1)*g.n]
}

// Weight returns w_ij (0 on the diagonal).
func (g *Graph) Weight(i, j int) float64 { return g.w[i*g.n+j] }

// SetWeight assigns the symmetric weight w_ij = w_ji.
func (g *Graph) SetWeight(i, j int, v float64) {
	if i == j {
		return
	}
	g.w[i*g.n+j] = v
	g.w[j*g.n+i] = v
}

// FromDistances converts a symmetric distance matrix into a similarity
// graph: w_ij = max_{i'≠j'} d_{i'j'} − d_ij (§3.1), which is non-negative.
func FromDistances(d [][]float64) (*Graph, error) {
	n := len(d)
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("simgraph: distance matrix row %d has length %d, want %d", i, len(d[i]), n)
		}
	}
	maxd := math.Inf(-1)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if d[i][j] > maxd {
				maxd = d[i][j]
			}
		}
	}
	g := NewGraph(n)
	if n < 2 {
		return g, nil
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.SetWeight(i, j, maxd-d[i][j])
		}
	}
	return g, nil
}

// parallelBuildThreshold is the instance size above which Build fans the
// O(n²) pairwise distance loop across workers. Below it the sequential
// loop wins: goroutine startup costs more than the whole triangle.
const parallelBuildThreshold = 64

// Build constructs the similarity graph of an instance from the per-item
// statistics of a CompaReSetS+ selection, using d_ij of §3.1. For n ≥
// parallelBuildThreshold the pairwise loop runs on GOMAXPROCS workers;
// every d_ij is computed by exactly one worker from the same inputs in the
// same order, so parallel and sequential builds are byte-identical.
func Build(stats []core.ItemStats, cfg core.Config) *Graph {
	n := len(stats)
	// One backing slab for the distance matrix: the rows are views, so the
	// build allocates O(1) slices instead of n.
	backing := make([]float64, n*n)
	d := make([][]float64, n)
	for i := range d {
		d[i] = backing[i*n : (i+1)*n : (i+1)*n]
	}
	// Compact mode: the only vector term of d_ij is μ²·Δ(φ(Sᵢ), φ(Sⱼ)).
	// Narrow every φ once and stream float32 slabs through the O(n²)
	// pairwise loop — half the bandwidth — while the scalar losses stay
	// float64. Distances differ from the float64 pass only by the float32
	// rounding of the φ entries.
	var phi32 [][]float32
	if cfg.Float32 {
		phi32 = narrowPhis(stats)
	}
	if workers := runtime.GOMAXPROCS(0); n >= parallelBuildThreshold && workers > 1 {
		buildDistancesParallel(d, stats, phi32, cfg, workers)
	} else {
		buildDistancesSequential(d, stats, phi32, cfg)
	}
	g, _ := FromDistances(d) // square matrix by construction
	return g
}

// narrowPhis packs every item's φ into one float32 backing slab.
func narrowPhis(stats []core.ItemStats) [][]float32 {
	n := len(stats)
	if n == 0 {
		return nil
	}
	z := len(stats[0].Phi)
	backing := make([]float32, n*z)
	out := make([][]float32, n)
	for i := range stats {
		out[i] = backing[i*z : (i+1)*z : (i+1)*z]
		linalg.NarrowKernel(stats[i].Phi, out[i])
	}
	return out
}

// pairDistance computes d_ij from two items' stats, using the compact φ
// slabs for the pairwise term when phi32 is non-nil.
func pairDistance(stats []core.ItemStats, phi32 [][]float32, cfg core.Config, i, j int) float64 {
	if phi32 == nil {
		return core.ItemDistance(stats[i], stats[j], cfg)
	}
	a, b := &stats[i], &stats[j]
	l2, m2 := cfg.Lambda*cfg.Lambda, cfg.Mu*cfg.Mu
	return a.OpinionLoss + b.OpinionLoss +
		l2*a.AspectLoss + l2*b.AspectLoss +
		m2*linalg.SqDist32Kernel(phi32[i], phi32[j])
}

// buildDistancesSequential fills the symmetric distance matrix row by row.
func buildDistancesSequential(d [][]float64, stats []core.ItemStats, phi32 [][]float32, cfg core.Config) {
	n := len(stats)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist := pairDistance(stats, phi32, cfg, i, j)
			d[i][j], d[j][i] = dist, dist
		}
	}
}

// buildDistancesParallel computes the same matrix with workers claiming
// rows off a shared atomic counter. Row i owns cells (i, j>i) exclusively
// — including the mirrored write to (j, i), which no other row touches
// since row j only writes columns > j — so there are no write conflicts,
// and each d_ij is a single deterministic float expression: bytes match
// the sequential loop exactly. The atomic row counter load-balances the
// shrinking triangle rows.
func buildDistancesParallel(d [][]float64, stats []core.ItemStats, phi32 [][]float32, cfg core.Config, workers int) {
	n := len(stats)
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				for j := i + 1; j < n; j++ {
					dist := pairDistance(stats, phi32, cfg, i, j)
					d[i][j], d[j][i] = dist, dist
				}
			}
		}()
	}
	wg.Wait()
}

// SubsetWeight returns Σ_{i<j ∈ members} w_ij (Eq. 6).
func (g *Graph) SubsetWeight(members []int) float64 {
	var total float64
	for a := 0; a < len(members); a++ {
		row := g.Row(members[a])
		for b := a + 1; b < len(members); b++ {
			total += row[members[b]]
		}
	}
	return total
}

// Result is the outcome of a shortlist solver.
type Result struct {
	// Members are the selected vertices in ascending order; the target
	// vertex 0 is always included.
	Members []int
	// Weight is the total edge weight of the induced subgraph (Eq. 6).
	Weight float64
	// Optimal reports whether the solver proved the result optimal
	// (always true when the exact solver finishes within budget).
	Optimal bool
}

// Solver selects k items (including the target, vertex 0) from the graph.
type Solver interface {
	// Name identifies the solver in experiment tables.
	Name() string
	// Solve returns a k-subset including vertex 0. k is clamped to
	// [1, g.N()].
	Solve(g *Graph, k int) Result
	// SolveContext is Solve with cooperative cancellation. The exact
	// branch-and-bound treats an earlier ctx deadline like an exhausted
	// time budget — it returns its best incumbent with Optimal = false —
	// while the polynomial heuristics finish their (fast) run regardless.
	SolveContext(ctx context.Context, g *Graph, k int) Result
}

func clampK(g *Graph, k int) int {
	if k < 1 {
		return 1
	}
	if k > g.n {
		return g.n
	}
	return k
}
