package simgraph

import (
	"context"
	"sort"
)

// GreedyRemoval adapts the dense-subgraph heuristic of Asahiro et al.
// (Journal of Algorithms 2000, the paper's reference [1]) to TargetHkS:
// repeatedly delete the vertex with minimum weighted degree in the current
// induced subgraph until exactly k vertices remain — never deleting the
// target vertex 0.
type GreedyRemoval struct{}

// Name implements Solver.
func (GreedyRemoval) Name() string { return "TargetHkS_Removal" }

// SolveContext implements Solver; the O(n²) run finishes regardless of ctx.
func (s GreedyRemoval) SolveContext(_ context.Context, g *Graph, k int) Result {
	return s.Solve(g, k)
}

// Solve implements Solver.
func (GreedyRemoval) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	alive := make([]bool, g.n)
	degree := make([]float64, g.n)
	for v := 0; v < g.n; v++ {
		alive[v] = true
	}
	for v := 0; v < g.n; v++ {
		row := g.Row(v)
		for u := 0; u < g.n; u++ {
			degree[v] += row[u]
		}
	}
	remaining := g.n
	for remaining > k {
		worst, worstDeg := -1, 0.0
		for v := 1; v < g.n; v++ { // vertex 0 (target) is immortal
			if alive[v] && (worst < 0 || degree[v] < worstDeg) {
				worst, worstDeg = v, degree[v]
			}
		}
		alive[worst] = false
		remaining--
		worstRow := g.Row(worst)
		for u := 0; u < g.n; u++ {
			if alive[u] {
				degree[u] -= worstRow[u]
			}
		}
	}
	members := make([]int, 0, k)
	for v := 0; v < g.n; v++ {
		if alive[v] {
			members = append(members, v)
		}
	}
	return Result{Members: members, Weight: g.SubsetWeight(members)}
}

// LocalSearch improves a starting solution by 1-swap hill climbing: replace
// one non-target member with one outside vertex while the subset weight
// improves. With the greedy seed it matches or beats both greedy variants
// at modest extra cost, and provides the ablation point between the greedy
// heuristics and the exact solver.
type LocalSearch struct {
	// MaxIterations caps the number of improving swaps (default 10·n).
	MaxIterations int
}

// Name implements Solver.
func (LocalSearch) Name() string { return "TargetHkS_LocalSearch" }

// SolveContext implements Solver; the bounded hill climb finishes
// regardless of ctx.
func (ls LocalSearch) SolveContext(_ context.Context, g *Graph, k int) Result {
	return ls.Solve(g, k)
}

// Solve implements Solver.
func (ls LocalSearch) Solve(g *Graph, k int) Result {
	k = clampK(g, k)
	seed := (Greedy{}).Solve(g, k)
	members := append([]int(nil), seed.Members...)
	weight := seed.Weight
	in := make([]bool, g.n)
	for _, v := range members {
		in[v] = true
	}
	// linkage[v] = Σ_{u ∈ members} w_uv, maintained incrementally.
	linkage := make([]float64, g.n)
	for v := 0; v < g.n; v++ {
		row := g.Row(v)
		for _, u := range members {
			linkage[v] += row[u]
		}
	}
	maxIter := ls.MaxIterations
	if maxIter <= 0 {
		maxIter = 10 * g.n
	}
	for iter := 0; iter < maxIter; iter++ {
		bestGain := 1e-12
		bestOut, bestIn := -1, -1
		for _, out := range members {
			if out == 0 {
				continue // target stays
			}
			outRow := g.Row(out)
			// Removing `out` subtracts its linkage (minus self term 0).
			for cand := 1; cand < g.n; cand++ {
				if in[cand] {
					continue
				}
				gain := linkage[cand] - outRow[cand] - linkage[out]
				if gain > bestGain {
					bestGain, bestOut, bestIn = gain, out, cand
				}
			}
		}
		if bestOut < 0 {
			break
		}
		// Apply the swap.
		weight += bestGain
		in[bestOut] = false
		in[bestIn] = true
		for i, v := range members {
			if v == bestOut {
				members[i] = bestIn
				break
			}
		}
		inRow, outRow := g.Row(bestIn), g.Row(bestOut)
		for v := 0; v < g.n; v++ {
			linkage[v] += inRow[v] - outRow[v]
		}
	}
	sort.Ints(members)
	return Result{Members: members, Weight: g.SubsetWeight(members)}
}

// Solvers returns every shortlist solver for ablation sweeps, ordered from
// cheapest to exact.
func Solvers(seed int64) []Solver {
	return []Solver{
		RandomShortlist{Seed: seed},
		TopK{},
		GreedyRemoval{},
		Greedy{},
		LocalSearch{},
		Exact{},
	}
}
