package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests", Labels{"code": "200"})
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("reqs_total", "requests", Labels{"code": "200"}); again != c {
		t.Fatal("same (name, labels) must return the same counter")
	}
	if other := r.Counter("reqs_total", "requests", Labels{"code": "404"}); other == c {
		t.Fatal("different labels must return a different series")
	}

	g := r.Gauge("temp", "", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if sum != 56.05 {
		t.Fatalf("sum = %v, want 56.05", sum)
	}
	want := []uint64{1, 3, 4, 5} // cumulative: ≤0.1, ≤1, ≤10, +Inf
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, cum[i], w, cum)
		}
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge", "", []float64{1, 2}, nil)
	h.Observe(1) // exactly on a bound counts into that bucket (le semantics)
	cum, _, _ := h.snapshot()
	if cum[0] != 1 {
		t.Fatalf("observation on bucket bound must land in that bucket, got %v", cum)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("api_requests_total", "API requests.", Labels{"endpoint": "select", "code": "200"}).Add(3)
	r.Gauge("up", "", nil).Set(1)
	h := r.Histogram("req_seconds", "Latency.", []float64{0.5, 2}, Labels{"endpoint": "select"})
	h.Observe(0.25)
	h.Observe(1)
	h.Observe(4)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP api_requests_total API requests.",
		"# TYPE api_requests_total counter",
		`api_requests_total{code="200",endpoint="select"} 3`,
		"# TYPE req_seconds histogram",
		`req_seconds_bucket{endpoint="select",le="0.5"} 1`,
		`req_seconds_bucket{endpoint="select",le="2"} 2`,
		`req_seconds_bucket{endpoint="select",le="+Inf"} 3`,
		`req_seconds_sum{endpoint="select"} 5.25`,
		`req_seconds_count{endpoint="select"} 3`,
		"# TYPE up gauge",
		"up 1",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear in sorted name order.
	if strings.Index(out, "api_requests_total") > strings.Index(out, "req_seconds") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "hits 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestOpsMux(t *testing.T) {
	mux := OpsMux(NewRegistry())
	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != 200 {
			t.Errorf("GET %s = %d, want 200", path, rec.Code)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", nil).Add(2)
	h := r.Histogram("h", "", []float64{1}, Labels{"s": "x"})
	h.Observe(0.5)
	snap := r.Snapshot()
	if snap["c"] != uint64(2) {
		t.Fatalf("snapshot c = %v", snap["c"])
	}
	hs, ok := snap[`h{s="x"}`].(map[string]any)
	if !ok || hs["count"] != uint64(1) {
		t.Fatalf("snapshot h = %v", snap[`h{s="x"}`])
	}
}

// TestConcurrentWrites exercises every write path under the race detector
// while a reader renders the exposition.
func TestConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("c", "", Labels{"w": string(rune('a' + w%2))}).Inc()
				r.Gauge("g", "", nil).Add(1)
				r.Histogram("h", "", []float64{0.5, 1}, nil).Observe(float64(i%3) / 2)
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var b strings.Builder
			_ = r.WritePrometheus(&b)
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	if got := r.Histogram("h", "", []float64{0.5, 1}, nil).Count(); got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
	if got := r.Gauge("g", "", nil).Value(); got != 8*500 {
		t.Fatalf("gauge = %v, want %v", got, 8*500)
	}
}

func TestStageTimer(t *testing.T) {
	before := StageHistogram(StageNOMP).Count()
	stop := StageTimer(StageNOMP)
	time.Sleep(time.Millisecond)
	stop()
	if got := StageHistogram(StageNOMP).Count(); got != before+1 {
		t.Fatalf("stage count = %d, want %d", got, before+1)
	}
	ObserveStage("custom_stage", 5*time.Millisecond)
	if StageHistogram("custom_stage").Count() == 0 {
		t.Fatal("custom stage not recorded")
	}
	var b strings.Builder
	if err := Default().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `comparesets_pipeline_stage_duration_seconds_count{stage="nomp"}`) {
		t.Fatalf("default registry missing stage series:\n%s", b.String())
	}
}
