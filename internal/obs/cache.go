package obs

// CacheMetrics bundles the standard counter/gauge set every caching layer
// of the serving path records into: the feature precompute store
// (internal/featstore), the sharded selection result cache
// (internal/servecache), and the request coalescer. Each layer is one
// value of the `cache` label, so /metrics exposes, e.g.,
//
//	comparesets_cache_hits_total{cache="servecache"}
//	comparesets_cache_evictions_total{cache="servecache"}
//	comparesets_cache_bytes{cache="servecache"}
//	comparesets_cache_coalesced_waiters_total{cache="selectflight"}
//
// Handles are resolved once at construction so the hot paths touch only
// atomics.
type CacheMetrics struct {
	// Hits / Misses count lookups.
	Hits, Misses *Counter
	// Evictions counts entries removed to satisfy the byte budget.
	Evictions *Counter
	// Coalesced counts callers that joined an in-flight computation
	// instead of starting their own.
	Coalesced *Counter
	// Executions counts computations actually run (flight leaders).
	Executions *Counter
	// Bytes and Entries track the current cache footprint.
	Bytes, Entries *Gauge
}

// NewCacheMetrics returns the metric set for the named cache layer in reg.
// Calling it twice with the same (reg, name) returns handles to the same
// underlying series.
func NewCacheMetrics(reg *Registry, name string) *CacheMetrics {
	l := Labels{"cache": name}
	return &CacheMetrics{
		Hits: reg.Counter("comparesets_cache_hits_total",
			"Cache lookups answered from the cache.", l),
		Misses: reg.Counter("comparesets_cache_misses_total",
			"Cache lookups that fell through to computation.", l),
		Evictions: reg.Counter("comparesets_cache_evictions_total",
			"Entries evicted to satisfy the cache byte budget.", l),
		Coalesced: reg.Counter("comparesets_cache_coalesced_waiters_total",
			"Callers coalesced onto an already-running identical computation.", l),
		Executions: reg.Counter("comparesets_cache_executions_total",
			"Computations actually executed (flight leaders).", l),
		Bytes: reg.Gauge("comparesets_cache_bytes",
			"Current bytes resident in the cache.", l),
		Entries: reg.Gauge("comparesets_cache_entries",
			"Current entries resident in the cache.", l),
	}
}
