package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4): families in name order, series in label order,
// histograms as cumulative _bucket/_sum/_count triples.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.names...)
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		f := r.families[name]
		series := append([]*series(nil), f.series...)
		r.mu.RUnlock()
		sort.Slice(series, func(a, b int) bool { return series[a].labels < series[b].labels })
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.c.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
		return err
	default:
		cumulative, count, sum := s.h.snapshot()
		for i, bound := range f.bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				f.name, withLabel(s.labels, "le", formatFloat(bound)), cumulative[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
			f.name, withLabel(s.labels, "le", "+Inf"), count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, count)
		return err
	}
}

// withLabel splices one more label pair into an already-rendered label
// string.
func withLabel(rendered, key, value string) string {
	pair := fmt.Sprintf("%s=%q", key, value)
	if rendered == "" {
		return "{" + pair + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + pair + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the registry in Prometheus text format.
func (r *Registry) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
