package obs

import "time"

// Pipeline stage names instrumented across the selection pipeline. Each
// stage is one series of the comparesets_pipeline_stage_duration_seconds
// histogram family.
const (
	// StageFeatureBuild is the per-instance feature-cache construction
	// (internal/core.newFeatureCache).
	StageFeatureBuild = "feature_build"
	// StageNOMP is one non-negative OMP path computation
	// (internal/regress.Problem NOMP loop).
	StageNOMP = "nomp"
	// StageNNLS is the cumulative warm-started NNLS time within one NOMP
	// path (the Lawson–Hanson refits).
	StageNNLS = "nnls"
	// StageSweep is one full alternating re-selection pass of Algorithm 1
	// (internal/core.CompaReSetSPlus).
	StageSweep = "sweep"
	// StageShortlist is one TargetHkS solve (internal/simgraph).
	StageShortlist = "shortlist"
	// StageShortlistExact is one exact branch-and-bound solve inside the
	// shortlist stage (internal/simgraph.Exact), isolating search time
	// from graph construction and heuristic fallbacks.
	StageShortlistExact = "shortlist_exact"
	// StagePrecompute is one item's corpus-resident feature slab build
	// (internal/featstore).
	StagePrecompute = "feature_precompute"
	// StageBatchGroup is one batched group execution — the shared slab
	// warm-up plus every member request's pipeline run
	// (internal/batchexec).
	StageBatchGroup = "batch_group"
	// StageMutateApply is one corpus mutation's apply pass: the
	// copy-on-write model mutation, the WAL append, the incremental
	// feature refill, and the per-item cache invalidation
	// (internal/service mutation endpoints).
	StageMutateApply = "mutate_apply"
	// StageRouterForward is one routed request's backend exchange in the
	// distributed tier — forward, wait, copy response — excluding router-side
	// queueing and retries (internal/cluster).
	StageRouterForward = "router_forward"
	// StageRouterEdge is one warm read answered from the router's edge
	// response cache without touching a backend (internal/cluster).
	StageRouterEdge = "router_edge"
	// StageSnapshotShip is one corpus snapshot transfer: manifest encode
	// plus CSLG log streaming on the serving side (internal/cluster).
	StageSnapshotShip = "snapshot_ship"
)

const stageMetricName = "comparesets_pipeline_stage_duration_seconds"

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry that the selection pipeline's
// stage timers record into and that internal/service exposes at /metrics.
func Default() *Registry { return defaultRegistry }

// stageHists is populated once at init and read-only afterwards, so the
// hot-path lookup in ObserveStage is a plain map read with no locking.
var stageHists = func() map[string]*Histogram {
	known := []string{StageFeatureBuild, StageNOMP, StageNNLS, StageSweep, StageShortlist, StageShortlistExact, StagePrecompute, StageBatchGroup, StageMutateApply, StageRouterForward, StageRouterEdge, StageSnapshotShip}
	m := make(map[string]*Histogram, len(known))
	for _, stage := range known {
		m[stage] = defaultRegistry.Histogram(stageMetricName,
			"Wall-clock time of one selection pipeline stage execution.",
			nil, Labels{"stage": stage})
	}
	return m
}()

// StageHistogram returns the histogram series for a pipeline stage,
// registering unknown stages on first use.
func StageHistogram(stage string) *Histogram {
	if h, ok := stageHists[stage]; ok {
		return h
	}
	return defaultRegistry.Histogram(stageMetricName,
		"Wall-clock time of one selection pipeline stage execution.",
		nil, Labels{"stage": stage})
}

// ObserveStage records one execution of the named stage.
func ObserveStage(stage string, d time.Duration) {
	StageHistogram(stage).ObserveDuration(d)
}

// StageTimer starts timing a stage; the returned stop function records the
// elapsed time: defer obs.StageTimer(obs.StageNOMP)().
//
// The returned closure escapes to the heap; on per-request hot paths
// prefer StartStage, whose value form costs nothing to create.
func StageTimer(stage string) func() {
	h := StageHistogram(stage)
	t := time.Now()
	return func() { h.ObserveDuration(time.Since(t)) }
}

// StageSpan is one in-flight stage timing started by StartStage.
type StageSpan struct {
	h *Histogram
	t time.Time
}

// StartStage is the allocation-free counterpart of StageTimer:
//
//	span := obs.StartStage(obs.StageNOMP)
//	defer span.Stop()
func StartStage(stage string) StageSpan {
	return StageSpan{h: StageHistogram(stage), t: time.Now()}
}

// Stop records the elapsed time since StartStage.
func (s StageSpan) Stop() { s.h.ObserveDuration(time.Since(s.t)) }
