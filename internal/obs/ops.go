package obs

import (
	"expvar"
	"net/http"
	"net/http/pprof"
	"sync"
)

// Snapshot returns a plain-data view of the registry: counter and gauge
// series map to their values, histogram series to {count, sum}. It backs
// the expvar bridge and is handy in tests.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]any, len(r.families))
	for name, f := range r.families {
		for _, s := range f.series {
			key := name + s.labels
			switch f.kind {
			case kindCounter:
				out[key] = s.c.Value()
			case kindGauge:
				out[key] = s.g.Value()
			default:
				_, count, sum := s.h.snapshot()
				out[key] = map[string]any{"count": count, "sum": sum}
			}
		}
	}
	return out
}

var (
	publishMu sync.Mutex
	published = map[string]bool{}
)

// PublishExpvar exposes the registry under the given expvar name
// (GET /debug/vars). Repeated calls with the same name are no-ops, so
// servers can be recreated in tests without tripping expvar's
// duplicate-name panic.
func (r *Registry) PublishExpvar(name string) {
	publishMu.Lock()
	defer publishMu.Unlock()
	if published[name] {
		return
	}
	published[name] = true
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}

// RegisterOps mounts the operational endpoints on mux:
//
//	GET /metrics        Prometheus text exposition of reg
//	GET /debug/vars     expvar JSON (including the bridged registry)
//	GET /debug/pprof/*  net/http/pprof profiles
func RegisterOps(mux *http.ServeMux, reg *Registry) {
	reg.PublishExpvar("comparesets")
	mux.Handle("GET /metrics", reg.MetricsHandler())
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// OpsMux returns a fresh mux carrying only the operational endpoints —
// for deployments that serve ops on a separate private port.
func OpsMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	RegisterOps(mux, reg)
	return mux
}
