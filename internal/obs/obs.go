// Package obs is a stdlib-only observability substrate for the serving
// system: counters, gauges, and fixed-bucket latency histograms collected
// in a Registry, exposed in Prometheus text format, bridged to expvar, and
// mounted alongside net/http/pprof on an ops mux.
//
// The primitives are lock-free on the write path (atomic adds and a CAS
// loop for histogram sums), so the selection hot loops in internal/regress
// and internal/core can record stage timings without contending on a
// registry mutex: metric handles are resolved once and then written to
// with atomics only.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; negative deltas are ignored).
func (c *Counter) Add(n int) {
	if n > 0 {
		c.v.Add(uint64(n))
	}
}

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increments the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram in the Prometheus cumulative
// style: bounds are inclusive upper limits, with an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64       // ascending upper bounds
	counts  []atomic.Uint64 // len(bounds)+1 per-bucket (non-cumulative) counts
	sumBits atomic.Uint64   // Σ observed values, as float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Start returns a stop function that observes the elapsed time when
// called: defer h.Start()() times a whole function body.
func (h *Histogram) Start() func() {
	t := time.Now()
	return func() { h.ObserveDuration(time.Since(t)) }
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var total uint64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// snapshot returns cumulative bucket counts (per Prometheus exposition),
// the total count, and the sum, reading each bucket once.
func (h *Histogram) snapshot() (cumulative []uint64, count uint64, sum float64) {
	cumulative = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cumulative[i] = running
	}
	return cumulative, running, h.Sum()
}

// DurationBuckets are the default latency buckets, spanning microsecond
// solver stages through multi-second exact-solver budgets.
var DurationBuckets = []float64{
	1e-6, 5e-6, 25e-6, 1e-4, 5e-4, 2.5e-3, 1e-2, 5e-2, 0.25, 1, 5, 30, 60,
}

// Labels attaches dimension values to a metric series.
type Labels map[string]string

// renderLabels produces the canonical `{k="v",...}` form with keys sorted,
// or "" for an empty label set. Used both as the series key and verbatim
// in the exposition.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}

// metricKind discriminates the series types of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a metric family.
type series struct {
	labels string // rendered label string ("" when unlabeled)
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	bounds []float64 // histogram families only
	series []*series // insertion order; sorted at exposition time
	index  map[string]*series
}

// Registry is a set of named metric families. All methods are safe for
// concurrent use; metric handles returned by Counter/Gauge/Histogram are
// stable and should be cached by hot paths.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	names    []string // insertion order for stable iteration
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the family and series for (name, labels), creating either
// as needed. It panics when the name is reused with a different kind —
// that is a programming error the exposition format cannot represent.
func (r *Registry) lookup(name, help string, kind metricKind, bounds []float64, labels Labels) *series {
	key := renderLabels(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		s, ok := f.index[key]
		if ok && f.kind == kind {
			r.mu.RUnlock()
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, index: map[string]*series{}}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	s, ok := f.index[key]
	if !ok {
		s = &series{labels: key}
		switch kind {
		case kindCounter:
			s.c = &Counter{}
		case kindGauge:
			s.g = &Gauge{}
		case kindHistogram:
			h := &Histogram{bounds: f.bounds}
			h.counts = make([]atomic.Uint64, len(f.bounds)+1)
			s.h = h
		}
		f.index[key] = s
		f.series = append(f.series, s)
	}
	return s
}

// Counter returns (creating on first use) the counter series for
// (name, labels).
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, kindCounter, nil, labels).c
}

// Gauge returns (creating on first use) the gauge series for (name, labels).
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, kindGauge, nil, labels).g
}

// Histogram returns (creating on first use) the histogram series for
// (name, labels). buckets defaults to DurationBuckets when nil; the first
// registration of a name fixes the bucket layout for the whole family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DurationBuckets
	}
	return r.lookup(name, help, kindHistogram, buckets, labels).h
}
