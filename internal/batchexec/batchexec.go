// Package batchexec batches concurrent similar requests into shared
// executions.
//
// It complements, rather than replaces, internal/servecache's FlightGroup:
// coalescing deduplicates *identical* requests (same cache key — one
// computation, one result, many waiters), while batching groups
// *merely-similar* requests (same corpus, scheme, and selection shape but
// different targets) so one execution can amortize everything the group
// shares — a single feature-slab pass, shared per-item regression problems,
// one warm set of solver scratch — and still produce one distinct result
// per member. In the serving path the batcher therefore sits *inside* a
// flight: coalescing collapses duplicates first, and each surviving flight
// leader submits to the batcher.
//
// A group opens when the first request for its key arrives and seals when
// either the batching window elapses or MaxBatch members have joined,
// whichever comes first. The sealed group executes once, on a context
// detached from any single member's: a member whose context expires stops
// waiting and gets its own ctx.Err(), but the group keeps running for the
// remaining members — one canceled waiter never poisons the group. Only
// when the last member detaches is the group's context canceled.
package batchexec

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"comparesets/internal/obs"
)

// PanicError is delivered to every member of a group whose executor
// panicked: the panic is recovered so one bad request cannot kill the
// process or strand the other members.
type PanicError struct {
	// Value is what the executor panicked with.
	Value any
	// Stack is the group goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("batchexec: group panicked: %v", e.Value)
}

// Exec runs one sealed group: reqs holds every member's request in join
// order, and the returned slice must hold exactly one result per request,
// index-aligned. Per-request failures belong inside R (the executor decides
// what a per-slot error looks like); a returned error or panic fails the
// whole group. ctx is the group's detached context — it is canceled only
// when every member has stopped waiting.
type Exec[Q, R any] func(ctx context.Context, reqs []Q) ([]R, error)

// Metrics is the batcher's instrumentation, recorded per group execution.
type Metrics struct {
	// Size observes the member count of each executed group
	// (comparesets_batch_size).
	Size *obs.Histogram
	// Executions counts executed groups
	// (comparesets_batch_executions_total).
	Executions *obs.Counter
}

// NewMetrics registers the batcher metric family in reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	return &Metrics{
		Size: reg.Histogram("comparesets_batch_size",
			"Number of member requests per executed batch group.",
			[]float64{1, 2, 4, 8, 16, 32, 64}, nil),
		Executions: reg.Counter("comparesets_batch_executions_total",
			"Total batch group executions.", nil),
	}
}

// Batcher groups concurrent Submit calls by key and runs one Exec per
// sealed group. The zero value is not usable; construct with New.
type Batcher[Q, R any] struct {
	window   time.Duration
	maxBatch int
	exec     Exec[Q, R]
	m        *Metrics

	mu     sync.Mutex
	groups map[string]*group[Q, R]
}

// group is one open or executing batch.
type group[Q, R any] struct {
	reqs    []Q
	sealCh  chan struct{} // closed when the group stops accepting members
	done    chan struct{} // closed when results/err are set
	results []R
	err     error
	refs    int // members still waiting
	sealed  bool
	timer   *time.Timer
	cancel  context.CancelFunc
}

// New returns a batcher that seals groups after window or at maxBatch
// members, whichever comes first. window must be positive (a server that
// wants batching off simply does not construct a batcher); maxBatch < 1
// means no size cap. Metrics may be nil.
func New[Q, R any](window time.Duration, maxBatch int, m *Metrics, exec Exec[Q, R]) *Batcher[Q, R] {
	if window <= 0 {
		panic("batchexec: window must be positive")
	}
	return &Batcher[Q, R]{
		window:   window,
		maxBatch: maxBatch,
		exec:     exec,
		m:        m,
		groups:   map[string]*group[Q, R]{},
	}
}

// Submit joins the open group for key (opening one if none is open),
// contributes req, and blocks until the group executes or ctx is done. It
// returns this request's slot result. joined is true when the request
// shared its group with at least one other member.
//
// The first member's arrival starts the window timer; the group seals and
// executes when the timer fires or when the maxBatch-th member joins. If
// ctx is done before the group finishes, Submit detaches and returns
// ctx.Err(); the group keeps executing for the remaining members unless
// this was the last one, in which case the group's context is canceled.
func (b *Batcher[Q, R]) Submit(ctx context.Context, key string, req Q) (res R, joined bool, err error) {
	b.mu.Lock()
	if g, ok := b.groups[key]; ok {
		slot := len(g.reqs)
		g.reqs = append(g.reqs, req)
		g.refs++
		if b.maxBatch > 0 && len(g.reqs) >= b.maxBatch {
			b.sealLocked(key, g)
		}
		b.mu.Unlock()
		return b.wait(ctx, key, g, slot)
	}
	// First member: open the group on a context that survives any single
	// member's cancellation but still carries this caller's values, and
	// dies when the last member detaches.
	gctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	g := &group[Q, R]{
		reqs:   []Q{req},
		sealCh: make(chan struct{}),
		done:   make(chan struct{}),
		refs:   1,
		cancel: cancel,
	}
	b.groups[key] = g
	if b.maxBatch == 1 {
		b.sealLocked(key, g)
	} else {
		g.timer = time.AfterFunc(b.window, func() {
			b.mu.Lock()
			if !g.sealed {
				b.sealLocked(key, g)
			}
			b.mu.Unlock()
		})
	}
	b.mu.Unlock()
	go b.run(gctx, g)
	return b.wait(ctx, key, g, 0)
}

// sealLocked closes the group to new members: it is removed from the open
// map (the next Submit for the key opens a fresh group) and the run
// goroutine is released to execute. Caller holds b.mu.
func (b *Batcher[Q, R]) sealLocked(key string, g *group[Q, R]) {
	g.sealed = true
	delete(b.groups, key)
	if g.timer != nil {
		g.timer.Stop()
	}
	close(g.sealCh)
}

// run waits for the group to seal, executes it, and publishes the results.
func (b *Batcher[Q, R]) run(gctx context.Context, g *group[Q, R]) {
	<-g.sealCh
	groupSpan := obs.StartStage(obs.StageBatchGroup)
	defer groupSpan.Stop()
	if b.m != nil {
		b.m.Size.Observe(float64(len(g.reqs)))
		b.m.Executions.Inc()
	}
	var results []R
	var err error
	// A panicking executor must not kill the process or strand the
	// members: recover it and propagate a PanicError to every one.
	func() {
		defer func() {
			if r := recover(); r != nil {
				results, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		results, err = b.exec(gctx, g.reqs)
	}()
	if err == nil && len(results) != len(g.reqs) {
		err = fmt.Errorf("batchexec: executor returned %d results for %d requests", len(results), len(g.reqs))
	}
	b.mu.Lock()
	g.results, g.err = results, err
	b.mu.Unlock()
	close(g.done)
	g.cancel()
}

// wait blocks until the group publishes results or ctx is done, handling
// the member refcount on early detach.
func (b *Batcher[Q, R]) wait(ctx context.Context, key string, g *group[Q, R], slot int) (res R, joined bool, err error) {
	select {
	case <-g.done:
		return b.result(g, slot)
	case <-ctx.Done():
	}
	// Detach. The group may have finished while ctx fired; prefer its
	// result so work done anyway is never thrown away.
	b.mu.Lock()
	select {
	case <-g.done:
		b.mu.Unlock()
		return b.result(g, slot)
	default:
	}
	g.refs--
	last := g.refs == 0
	if last && !g.sealed {
		// Every member left before the window elapsed. Seal now so the
		// group stops accepting joiners and the run goroutine resolves it
		// (promptly, on the canceled group context below).
		b.sealLocked(key, g)
	}
	joined = len(g.reqs) > 1
	b.mu.Unlock()
	if last {
		g.cancel()
	}
	return res, joined, ctx.Err()
}

// result extracts slot's result after the done channel closed (results and
// err are immutable from then on).
func (b *Batcher[Q, R]) result(g *group[Q, R], slot int) (res R, joined bool, err error) {
	joined = len(g.reqs) > 1
	if g.err != nil {
		return res, joined, g.err
	}
	return g.results[slot], joined, nil
}

// Open returns the number of currently open (unsealed) groups.
func (b *Batcher[Q, R]) Open() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.groups)
}
