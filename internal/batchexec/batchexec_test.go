package batchexec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comparesets/internal/obs"
)

// echoExec returns one formatted result per request, tagging the batch size
// so tests can assert grouping.
func echoExec(ctx context.Context, reqs []int) ([]string, error) {
	out := make([]string, len(reqs))
	for i, r := range reqs {
		out[i] = fmt.Sprintf("req=%d size=%d", r, len(reqs))
	}
	return out, nil
}

func TestSubmitGroupsConcurrentRequests(t *testing.T) {
	var execs atomic.Int64
	b := New(50*time.Millisecond, 0, nil, func(ctx context.Context, reqs []int) ([]string, error) {
		execs.Add(1)
		return echoExec(ctx, reqs)
	})
	const n = 8
	results := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, _, err := b.Submit(context.Background(), "k", i)
			if err != nil {
				t.Errorf("Submit(%d): %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	// All n submissions raced into the window; they may have landed in one
	// or (rarely, under scheduler stalls) a few groups, but every request
	// must get its own slot result back.
	for i, res := range results {
		want := fmt.Sprintf("req=%d ", i)
		if len(res) < len(want) || res[:len(want)] != want {
			t.Errorf("slot %d got %q, want prefix %q", i, res, want)
		}
	}
	if got := execs.Load(); got < 1 || got > n {
		t.Errorf("executions = %d, want within [1,%d]", got, n)
	}
	if b.Open() != 0 {
		t.Errorf("Open() = %d after all groups resolved, want 0", b.Open())
	}
}

func TestMaxBatchSealsWithoutWaitingForWindow(t *testing.T) {
	// A huge window means the test only passes if the size cap seals.
	b := New(time.Hour, 2, nil, echoExec)
	var wg sync.WaitGroup
	results := make([]string, 2)
	start := time.Now()
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, joined, err := b.Submit(context.Background(), "k", i)
			if err != nil {
				t.Errorf("Submit(%d): %v", i, err)
			}
			if !joined {
				t.Errorf("Submit(%d): joined = false, want true", i)
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Fatalf("batch took %v; size cap did not seal the group", elapsed)
	}
	for i, res := range results {
		want := fmt.Sprintf("req=%d size=2", i)
		if res != want {
			t.Errorf("slot %d = %q, want %q", i, res, want)
		}
	}
}

func TestDistinctKeysDoNotBatch(t *testing.T) {
	b := New(30*time.Millisecond, 0, nil, echoExec)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, joined, err := b.Submit(context.Background(), fmt.Sprintf("k%d", i), i)
			if err != nil {
				t.Errorf("Submit(%d): %v", i, err)
				return
			}
			if joined {
				t.Errorf("Submit(%d): joined across distinct keys", i)
			}
			if want := fmt.Sprintf("req=%d size=1", i); res != want {
				t.Errorf("slot %d = %q, want %q", i, res, want)
			}
		}(i)
	}
	wg.Wait()
}

func TestCanceledWaiterDoesNotPoisonGroup(t *testing.T) {
	// The canceled member must get its own ctx.Err(), the surviving members
	// their results, and the executor must see every submitted request.
	started := make(chan struct{})
	release := make(chan struct{})
	var sawReqs atomic.Int64
	b := New(20*time.Millisecond, 0, nil, func(ctx context.Context, reqs []int) ([]string, error) {
		close(started)
		<-release
		sawReqs.Store(int64(len(reqs)))
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return echoExec(ctx, reqs)
	})

	cctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 3)
	results := make([]string, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i == 0 {
				ctx = cctx
			}
			results[i], _, errs[i] = b.Submit(ctx, "k", i)
		}(i)
	}
	<-started // group sealed and executing; all three members are in
	cancel()  // member 0 detaches mid-execution
	time.Sleep(5 * time.Millisecond)
	close(release)
	wg.Wait()

	if !errors.Is(errs[0], context.Canceled) {
		t.Errorf("canceled member got err %v, want context.Canceled", errs[0])
	}
	for i := 1; i < 3; i++ {
		if errs[i] != nil {
			t.Errorf("surviving member %d got err %v", i, errs[i])
		}
		if want := fmt.Sprintf("req=%d size=3", i); results[i] != want {
			t.Errorf("surviving member %d = %q, want %q", i, results[i], want)
		}
	}
	if got := sawReqs.Load(); got != 3 {
		t.Errorf("executor saw %d requests, want 3", got)
	}
}

func TestLastDetachCancelsGroupContext(t *testing.T) {
	ctxErr := make(chan error, 1)
	release := make(chan struct{})
	started := make(chan struct{})
	b := New(10*time.Millisecond, 0, nil, func(ctx context.Context, reqs []int) ([]string, error) {
		close(started)
		<-release
		ctxErr <- ctx.Err()
		return nil, ctx.Err()
	})
	cctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, err := b.Submit(cctx, "k", 1)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("Submit err = %v, want context.Canceled", err)
		}
	}()
	<-started
	cancel() // sole member detaches → group context must be canceled
	<-done
	close(release)
	if err := <-ctxErr; !errors.Is(err, context.Canceled) {
		t.Errorf("group ctx err = %v, want context.Canceled after last detach", err)
	}
}

func TestPanicPropagatesToAllMembers(t *testing.T) {
	b := New(20*time.Millisecond, 0, nil, func(ctx context.Context, reqs []int) ([]string, error) {
		panic("boom")
	})
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(context.Background(), "k", i)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Errorf("member %d err = %v, want PanicError", i, err)
		}
	}
}

func TestResultCountMismatchFailsGroup(t *testing.T) {
	b := New(10*time.Millisecond, 0, nil, func(ctx context.Context, reqs []int) ([]string, error) {
		return []string{"only-one"}, nil
	})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = b.Submit(context.Background(), "k", i)
		}(i)
	}
	wg.Wait()
	var failures int
	for _, err := range errs {
		if err != nil {
			failures++
		}
	}
	// Both members raced into one group (→ both fail) or split into two
	// singleton groups where one result happens to match; either way the
	// mismatch must surface for any group larger than one.
	if failures == 0 {
		t.Skip("requests did not land in one group; nothing to assert")
	}
	for i, err := range errs {
		if err == nil {
			t.Errorf("member %d: no error from mismatched executor", i)
		}
	}
}

// TestCancellationRace hammers the fan-in/fan-out paths under -race: many
// groups, each with a mix of members that cancel at random points and
// members that wait it out. No result may be misrouted and no canceled
// member may poison its group.
func TestCancellationRace(t *testing.T) {
	b := New(time.Millisecond, 4, nil, echoExec)
	var wg sync.WaitGroup
	for round := 0; round < 50; round++ {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func(round, i int) {
				defer wg.Done()
				ctx := context.Background()
				var cancel context.CancelFunc
				if i%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*100*time.Microsecond)
					defer cancel()
				}
				id := round*100 + i
				res, _, err := b.Submit(ctx, fmt.Sprintf("k%d", round%4), id)
				if err != nil {
					if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, context.Canceled) {
						t.Errorf("unexpected error: %v", err)
					}
					return
				}
				want := fmt.Sprintf("req=%d ", id)
				if len(res) < len(want) || res[:len(want)] != want {
					t.Errorf("misrouted result: got %q, want prefix %q", res, want)
				}
			}(round, i)
		}
	}
	wg.Wait()
}

func TestMetricsRecorded(t *testing.T) {
	m := NewMetrics(obs.NewRegistry())
	b := New(10*time.Millisecond, 0, m, echoExec)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, _, err := b.Submit(context.Background(), "k", i); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(i)
	}
	wg.Wait()
	if got := m.Executions.Value(); got < 1 {
		t.Errorf("executions counter = %d, want ≥ 1", got)
	}
	if got := int(m.Size.Sum()); got != 3 {
		t.Errorf("size histogram sum = %d, want 3 (members across all groups)", got)
	}
}
