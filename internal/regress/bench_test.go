package regress

import (
	"math/rand"
	"testing"

	"comparesets/internal/linalg"
)

// benchProblem mimics a CompaReSetS+ design matrix: sparse 0/1 columns over
// opinion+aspect rows for ~25 reviews.
func benchProblem(rows, cols int) (*linalg.Matrix, linalg.Vector) {
	rng := rand.New(rand.NewSource(2))
	colsv := make([]linalg.Vector, cols)
	for j := range colsv {
		v := linalg.NewVector(rows)
		for k := 0; k < 4; k++ {
			v[rng.Intn(rows)] = 1
		}
		colsv[j] = v
	}
	y := linalg.NewVector(rows)
	for i := range y {
		y[i] = rng.Float64()
	}
	return linalg.MatrixFromColumns(colsv), y
}

func BenchmarkNOMPPath(b *testing.B) {
	a, y := benchProblem(150, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NOMPPath(a, y, 10)
	}
}

// BenchmarkProblemNOMPPath measures the incremental Gram-space NOMP against
// the same workload as BenchmarkNOMPPath (the dense reference above),
// amortizing the Problem preprocessing across targets the way the
// CompaReSetS+ sweeps do.
func BenchmarkProblemNOMPPath(b *testing.B) {
	a, y := benchProblem(150, 25)
	p := NewProblem(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.NOMPPath(y, 10)
	}
}

func BenchmarkDedup(b *testing.B) {
	a, _ := benchProblem(150, 25)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Dedup(a)
	}
}

func BenchmarkSolve(b *testing.B) {
	a, y := benchProblem(150, 25)
	eval := func(sel []int) float64 { return float64(len(sel)) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(a, y, 10, eval)
	}
}
