package regress

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"comparesets/internal/linalg"
)

// sparseProblem builds a random 0/1-ish sparse design plus target, the shape
// of real selection instances.
func sparseProblem(rng *rand.Rand, rows, cols, nnz int) (*linalg.Matrix, linalg.Vector) {
	colsv := make([]linalg.Vector, cols)
	for j := range colsv {
		v := linalg.NewVector(rows)
		for k := 0; k < nnz; k++ {
			v[rng.Intn(rows)] = 1
		}
		colsv[j] = v
	}
	y := linalg.NewVector(rows)
	for i := range y {
		y[i] = rng.Float64()
	}
	return linalg.MatrixFromColumns(colsv), y
}

func TestProblemNOMPPathMatchesDenseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 40; trial++ {
		rows := 10 + rng.Intn(60)
		cols := 3 + rng.Intn(20)
		a, y := sparseProblem(rng, rows, cols, 2+rng.Intn(4))
		m := 1 + rng.Intn(8)
		p := NewProblem(a)
		dense := NOMPPath(p.Unique, y, minInt(m, minInt(p.Unique.Cols, p.Unique.Rows)))
		inc := p.NOMPPath(y, m)
		if len(dense) != len(inc) {
			t.Fatalf("trial %d: path lengths %d vs %d", trial, len(dense), len(inc))
		}
		for step := range dense {
			if !dense[step].ApproxEqual(inc[step], 1e-7) {
				t.Fatalf("trial %d step %d:\ndense %v\nincr  %v", trial, step, dense[step], inc[step])
			}
		}
	}
}

func TestProblemNOMPPathResidualMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	for trial := 0; trial < 20; trial++ {
		a, y := sparseProblem(rng, 40, 12, 3)
		p := NewProblem(a)
		path := p.NOMPPath(y, 6)
		prev := math.Inf(1)
		for step, x := range path {
			r := y.Sub(p.Unique.MulVec(x)).Norm2()
			if r > prev+1e-9 {
				t.Fatalf("trial %d: residual grew at step %d: %v > %v", trial, step, r, prev)
			}
			prev = r
			for j, v := range x {
				if v < 0 {
					t.Fatalf("trial %d step %d: negative coefficient x[%d]=%v", trial, step, j, v)
				}
			}
		}
	}
}

func TestProblemSolveMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 25; trial++ {
		a, y := sparseProblem(rng, 30, 10, 3)
		eval := func(sel []int) float64 {
			// A deterministic synthetic objective that depends on the
			// actual selection.
			var s float64
			for _, j := range sel {
				s += float64((j*7)%5) * 0.25
			}
			return math.Abs(float64(len(sel))-3) + s
		}
		wantSel, wantObj := SolveWithRounding(a, y, 5, RoundCandidates, eval)
		p := NewProblem(a)
		gotSel, gotObj := p.Solve(y, 5, RoundCandidates, eval)
		if math.Abs(wantObj-gotObj) > 1e-9 {
			t.Fatalf("trial %d: obj %v vs %v (sel %v vs %v)", trial, wantObj, gotObj, wantSel, gotSel)
		}
	}
}

func TestProblemSolveEmpty(t *testing.T) {
	p := NewProblem(linalg.NewMatrix(0, 0))
	sel, obj := p.Solve(linalg.Vector{}, 3, RoundCandidates, func([]int) float64 { return 0 })
	if sel != nil || !math.IsInf(obj, 1) {
		t.Fatalf("sel=%v obj=%v", sel, obj)
	}
}

func TestProblemReuseAcrossTargets(t *testing.T) {
	// The same Problem solved against different targets must agree with
	// fresh one-shot solves: nothing target-dependent may leak into the
	// cached state.
	rng := rand.New(rand.NewSource(54))
	a, _ := sparseProblem(rng, 30, 12, 3)
	p := NewProblem(a)
	eval := func(sel []int) float64 { return float64(len(sel)) }
	for round := 0; round < 5; round++ {
		y := linalg.NewVector(30)
		for i := range y {
			y[i] = rng.Float64()
		}
		wantSel, wantObj := SolveWithRounding(a, y, 4, RoundCandidates, eval)
		gotSel, gotObj := p.Solve(y, 4, RoundCandidates, eval)
		if math.Abs(wantObj-gotObj) > 1e-9 || len(wantSel) != len(gotSel) {
			t.Fatalf("round %d: (%v, %v) vs (%v, %v)", round, gotSel, gotObj, wantSel, wantObj)
		}
	}
}

func TestProblemDuplicateColumnsDedup(t *testing.T) {
	// Identical columns must collapse to one unique column whose count
	// reflects the multiplicity, and the incremental path must handle the
	// (perfectly conditioned) deduped Gram.
	cols := []linalg.Vector{
		{1, 0, 1, 0},
		{1, 0, 1, 0},
		{0, 1, 0, 0},
		{1, 0, 1, 0},
	}
	p := NewProblem(linalg.MatrixFromColumns(cols))
	if p.Unique.Cols != 2 {
		t.Fatalf("unique cols = %d, want 2", p.Unique.Cols)
	}
	if p.Counts[0] != 3 || p.Counts[1] != 1 {
		t.Fatalf("counts = %v", p.Counts)
	}
	y := linalg.Vector{2, 1, 2, 0}
	path := p.NOMPPath(y, 2)
	if len(path) != 2 {
		t.Fatalf("path length %d", len(path))
	}
	// Both unique atoms fit y exactly with coefficients (2, 1).
	last := path[len(path)-1]
	if math.Abs(last[0]-2) > 1e-8 || math.Abs(last[1]-1) > 1e-8 {
		t.Fatalf("final coefficients %v, want [2 1]", last)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Shares of one Problem alias the immutable preprocessed core but carry
// private (pooled) solver scratch: concurrent solves through shares must
// reproduce the sequential one-shot results exactly. Run under -race this
// is the safety proof for the server-level problem cache.
func TestProblemShareConcurrentSolvesDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	a, _ := sparseProblem(rng, 30, 12, 3)
	template := NewProblem(a)
	eval := func(sel []int) float64 {
		var s float64
		for _, j := range sel {
			s += float64((j*3)%7) * 0.5
		}
		return math.Abs(float64(len(sel))-2) + s
	}
	const targets = 6
	ys := make([]linalg.Vector, targets)
	wantObj := make([]float64, targets)
	for i := range ys {
		y := linalg.NewVector(30)
		for j := range y {
			y[j] = rng.Float64()
		}
		ys[i] = y
		_, wantObj[i] = SolveWithRounding(a, y, 4, RoundCandidates, eval)
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := template.Share()
			for n := 0; n < 4*targets; n++ {
				i := (w + n) % targets
				_, obj := p.Solve(ys[i], 4, RoundCandidates, eval)
				if math.Abs(obj-wantObj[i]) > 1e-9 {
					t.Errorf("worker %d target %d: obj %v, want %v", w, i, obj, wantObj[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
