package regress

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"comparesets/internal/linalg"
)

func TestDedupGroupsIdenticalColumns(t *testing.T) {
	a := linalg.MatrixFromColumns([]linalg.Vector{
		{1, 0}, {0, 1}, {1, 0}, {1, 0}, {0, 1},
	})
	unique, counts, members := Dedup(a)
	if unique.Cols != 2 {
		t.Fatalf("unique cols = %d", unique.Cols)
	}
	if !reflect.DeepEqual(counts, []int{3, 2}) {
		t.Errorf("counts = %v", counts)
	}
	if !reflect.DeepEqual(members[0], []int{0, 2, 3}) || !reflect.DeepEqual(members[1], []int{1, 4}) {
		t.Errorf("members = %v", members)
	}
}

func TestDedupDistinguishesClose(t *testing.T) {
	a := linalg.MatrixFromColumns([]linalg.Vector{{1}, {1 + 1e-15}})
	unique, _, _ := Dedup(a)
	if unique.Cols != 2 {
		t.Errorf("distinct floats collapsed: cols = %d", unique.Cols)
	}
}

func TestNOMPPathRecoversSparseCombination(t *testing.T) {
	// y = 2*col0 + 1*col2 exactly.
	a := linalg.MatrixFromColumns([]linalg.Vector{
		{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1},
	})
	y := linalg.Vector{2, 0, 1}
	path := NOMPPath(a, y, 3)
	if len(path) != 3 {
		t.Fatalf("path length = %d", len(path))
	}
	final := path[len(path)-1]
	fit := a.MulVec(final)
	if linalg.SquaredDistance(fit, y) > 1e-10 {
		t.Errorf("final fit %v does not reach y %v", fit, y)
	}
	for j, v := range final {
		if v < 0 {
			t.Errorf("negative coefficient x[%d] = %v", j, v)
		}
	}
}

func TestNOMPPathMonotoneResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		rows, cols := 6+rng.Intn(6), 3+rng.Intn(10)
		colsv := make([]linalg.Vector, cols)
		for j := range colsv {
			v := linalg.NewVector(rows)
			for i := range v {
				if rng.Float64() < 0.4 {
					v[i] = 1
				}
			}
			colsv[j] = v
		}
		a := linalg.MatrixFromColumns(colsv)
		y := linalg.NewVector(rows)
		for i := range y {
			y[i] = rng.Float64()
		}
		path := NOMPPath(a, y, 5)
		prev := math.Inf(1)
		for ell, x := range path {
			r := linalg.SquaredDistance(a.MulVec(x), y)
			if r > prev+1e-9 {
				t.Fatalf("trial %d: residual grew at ℓ=%d: %v > %v", trial, ell+1, r, prev)
			}
			prev = r
		}
	}
}

func TestNOMPPathZeroTarget(t *testing.T) {
	a := linalg.MatrixFromColumns([]linalg.Vector{{1, 0}, {0, 1}})
	path := NOMPPath(a, linalg.Vector{0, 0}, 2)
	for _, x := range path {
		if x.Norm1() > 1e-10 {
			t.Errorf("nonzero solution for zero target: %v", x)
		}
	}
}

func TestRoundExactProportions(t *testing.T) {
	// x ∝ (1/3, 1/3, 1/3) with ample caps: T = 3 gives distance 0.
	x := linalg.Vector{0.5, 0.5, 0.5}
	nu := Round(x, []int{5, 5, 5}, 3)
	if !reflect.DeepEqual(nu, []int{1, 1, 1}) {
		t.Errorf("nu = %v", nu)
	}
}

func TestRoundRespectsCaps(t *testing.T) {
	x := linalg.Vector{1, 0.001}
	nu := Round(x, []int{1, 3}, 4)
	if nu == nil {
		t.Fatal("nil rounding")
	}
	if nu[0] > 1 {
		t.Errorf("cap violated: %v", nu)
	}
}

func TestRoundZeroVector(t *testing.T) {
	if nu := Round(linalg.Vector{0, 0}, []int{1, 1}, 3); nu != nil {
		t.Errorf("nu = %v, want nil", nu)
	}
}

func TestRoundTotalNeverExceedsBudget(t *testing.T) {
	f := func(raw [5]uint8, caps [5]uint8) bool {
		x := linalg.NewVector(5)
		counts := make([]int, 5)
		for i := range x {
			x[i] = float64(raw[i] % 16)
			counts[i] = int(caps[i]%4) + 1
		}
		const m = 4
		nu := Round(x, counts, m)
		if nu == nil {
			return x.Norm1() == 0
		}
		total := 0
		for i, v := range nu {
			if v < 0 || v > counts[i] {
				return false
			}
			total += v
		}
		return total >= 1 && total <= m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExpand(t *testing.T) {
	members := [][]int{{0, 2, 3}, {1, 4}}
	sel := Expand([]int{2, 1}, members)
	if !reflect.DeepEqual(sel, []int{0, 1, 2}) {
		t.Errorf("sel = %v", sel)
	}
}

func TestSolvePicksExactSubset(t *testing.T) {
	// Columns are review signatures; the target is the (normalized) sum of
	// columns 1 and 3, so Integer-Regression should select exactly those.
	cols := []linalg.Vector{
		{1, 0, 0, 0},
		{0, 1, 0, 0},
		{0, 0, 1, 0},
		{0, 1, 0, 1},
		{1, 1, 1, 1},
	}
	a := linalg.MatrixFromColumns(cols)
	y := linalg.Vector{0, 1, 0, 0.5} // = 0.5*(col1 + col3)
	eval := func(sel []int) float64 {
		sum := linalg.NewVector(4)
		for _, j := range sel {
			sum.AddInPlace(cols[j])
		}
		// Normalize like the paper: divide by max entry.
		if m := sum.Max(); m > 0 {
			sum.ScaleInPlace(1 / m)
		}
		return linalg.SquaredDistance(sum, y)
	}
	sel, obj := Solve(a, y, 2, eval)
	sort.Ints(sel)
	if !reflect.DeepEqual(sel, []int{1, 3}) {
		t.Errorf("sel = %v (obj %v)", sel, obj)
	}
	if obj > 1e-10 {
		t.Errorf("obj = %v, want ~0", obj)
	}
}

func TestSolveEmptyMatrix(t *testing.T) {
	sel, obj := Solve(linalg.NewMatrix(3, 0), linalg.Vector{1, 2, 3}, 2, func([]int) float64 { return 0 })
	if sel != nil || !math.IsInf(obj, 1) {
		t.Errorf("sel = %v obj = %v", sel, obj)
	}
}

func TestSolveZeroBudget(t *testing.T) {
	a := linalg.MatrixFromColumns([]linalg.Vector{{1}})
	sel, obj := Solve(a, linalg.Vector{1}, 0, func([]int) float64 { return 0 })
	if sel != nil || !math.IsInf(obj, 1) {
		t.Errorf("sel = %v obj = %v", sel, obj)
	}
}

func TestSolveNeverExceedsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		rows, cols := 5, 12
		colsv := make([]linalg.Vector, cols)
		for j := range colsv {
			v := linalg.NewVector(rows)
			for i := range v {
				if rng.Float64() < 0.5 {
					v[i] = 1
				}
			}
			colsv[j] = v
		}
		a := linalg.MatrixFromColumns(colsv)
		y := linalg.NewVector(rows)
		for i := range y {
			y[i] = rng.Float64()
		}
		m := 1 + rng.Intn(4)
		sel, _ := Solve(a, y, m, func(s []int) float64 {
			sum := linalg.NewVector(rows)
			for _, j := range s {
				sum.AddInPlace(colsv[j])
			}
			return linalg.SquaredDistance(sum.Normalized(), y.Normalized())
		})
		if len(sel) > m {
			t.Fatalf("trial %d: |sel| = %d > m = %d", trial, len(sel), m)
		}
		seen := map[int]bool{}
		for _, j := range sel {
			if seen[j] {
				t.Fatalf("trial %d: duplicate selection %v", trial, sel)
			}
			seen[j] = true
		}
	}
}

func TestSparseCorrelationsMatchDense(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		rows, cols := 5+rng.Intn(40), 1+rng.Intn(30)
		colsv := make([]linalg.Vector, cols)
		for j := range colsv {
			v := linalg.NewVector(rows)
			for i := range v {
				if rng.Float64() < 0.2 {
					v[i] = rng.Float64() * 2
				}
			}
			colsv[j] = v
		}
		a := linalg.MatrixFromColumns(colsv)
		resid := linalg.NewVector(rows)
		for i := range resid {
			resid[i] = rng.NormFloat64()
		}
		want := a.MulVecT(resid)
		got := linalg.NewVector(cols)
		newSparseColumns(a).correlations(resid, got)
		if !got.ApproxEqual(want, 1e-10) {
			t.Fatalf("trial %d: sparse %v != dense %v", trial, got, want)
		}
	}
}

func TestRoundTopK(t *testing.T) {
	x := linalg.Vector{0.5, 0, 0.9, 0.2}
	counts := []int{1, 1, 1, 1}
	cands := RoundTopK(x, counts, 3)
	if len(cands) != 3 {
		t.Fatalf("candidates = %d", len(cands))
	}
	if !reflect.DeepEqual(cands[0], []int{0, 0, 1, 0}) {
		t.Errorf("T=1 candidate = %v", cands[0])
	}
	if !reflect.DeepEqual(cands[2], []int{1, 0, 1, 1}) {
		t.Errorf("T=3 candidate = %v", cands[2])
	}
	if got := RoundTopK(linalg.Vector{0, 0}, []int{1, 1}, 2); got != nil {
		t.Errorf("zero x candidates = %v", got)
	}
}

// Rounding-strategy ablation: the largest-remainder apportionment of
// Algorithm 1 must not lose to the naive top-K rounding in aggregate over
// random distribution-matching problems — proportionality is the point.
func TestRoundingAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	var lrTotal, topkTotal float64
	for trial := 0; trial < 40; trial++ {
		rows, cols := 12, 18
		colsv := make([]linalg.Vector, cols)
		for j := range colsv {
			v := linalg.NewVector(rows)
			for k := 0; k < 3; k++ {
				v[rng.Intn(rows)] = 1
			}
			colsv[j] = v
		}
		a := linalg.MatrixFromColumns(colsv)
		// Target: normalized sum of a hidden subset — a distribution to
		// match, as in the selection problems.
		hidden := rng.Perm(cols)[:4]
		y := linalg.NewVector(rows)
		for _, j := range hidden {
			y.AddInPlace(colsv[j])
		}
		if m := y.Max(); m > 0 {
			y.ScaleInPlace(1 / m)
		}
		eval := func(sel []int) float64 {
			sum := linalg.NewVector(rows)
			for _, j := range sel {
				sum.AddInPlace(colsv[j])
			}
			if m := sum.Max(); m > 0 {
				sum.ScaleInPlace(1 / m)
			}
			return linalg.SquaredDistance(sum, y)
		}
		_, lr := SolveWithRounding(a, y, 4, RoundCandidates, eval)
		_, tk := SolveWithRounding(a, y, 4, RoundTopK, eval)
		lrTotal += lr
		topkTotal += tk
	}
	if lrTotal > topkTotal+1e-9 {
		t.Errorf("largest-remainder total %v worse than top-K %v", lrTotal, topkTotal)
	}
}

func TestSolveHandlesDuplicateReviews(t *testing.T) {
	// Four identical reviews and a target needing multiplicity: the dedup +
	// expand path must pick distinct originals.
	col := linalg.Vector{1, 1}
	a := linalg.MatrixFromColumns([]linalg.Vector{col, col, col, col})
	y := linalg.Vector{1, 1}
	sel, _ := Solve(a, y, 3, func(s []int) float64 {
		return math.Abs(float64(len(s)) - 2) // prefer exactly two reviews
	})
	if len(sel) != 2 {
		t.Errorf("sel = %v, want two reviews", sel)
	}
	if sel[0] == sel[1] {
		t.Errorf("duplicate original index: %v", sel)
	}
}
