package regress

import (
	"bytes"
	"context"
	"errors"
	"math"
	"sync"
	"time"

	"comparesets/internal/linalg"
	"comparesets/internal/obs"
)

// errGramFallback signals that the incremental Gram-space solver hit a
// numerical failure and the dense reference path must be used instead. It
// never escapes the package.
var errGramFallback = errors.New("regress: gram solver fallback")

// Problem is a preprocessed Integer-Regression instance: the deduplicated
// design matrix together with every target-independent structure the solver
// needs — the sparse column forms for correlation, and the unique-column
// Gram matrix that powers the incremental NNLS. Build one per design matrix
// and reuse it across targets: CompaReSetS+ re-solves the same per-item
// design against a fresh target on every sweep, and the dedup grouping,
// sparsity pattern, and Gram matrix are all invariant across those sweeps.
//
// A Problem additionally owns reusable solver scratch, so it is NOT safe
// for concurrent use; give each goroutine its own Problem (the per-item
// fan-out in internal/core assigns every item's Problem to one worker).
type Problem struct {
	// Unique, Counts, Members are the Dedup outputs for the design matrix.
	Unique  *linalg.Matrix
	Counts  []int
	Members [][]int
	sparse  *sparseColumns
	gram    *linalg.Matrix // Uniqueᵀ·Unique over the unique columns
	scratch *solverScratch
}

// scratchPool recycles solver scratch across problems and shares: every
// buffer is grown to the acquiring problem's size on checkout
// (scratchState) and fully reset before use, so a pooled scratch carries no
// state between solves. Pooling matters because cached problem templates
// hand out a fresh Share per selection — without it every request would
// reallocate the whole NNLS working set per item.
var scratchPool = sync.Pool{New: func() any { return &solverScratch{} }}

// keySpan locates one deduplicated candidate key inside the scratch key
// arena. Spans index by offset rather than holding subslices so arena
// growth (which may move the backing array) cannot invalidate them.
type keySpan struct{ off, n int }

// solverScratch holds every buffer the NOMP/rounding pipeline needs, sized
// on first use and reused across Solve calls on the same Problem.
type solverScratch struct {
	c         linalg.Vector // Aᵀy over unique columns
	corr      linalg.Vector // residual correlations
	x         linalg.Vector // current NOMP iterate
	inSupport []bool
	support   []int
	passive   []int // NNLS passive set, in factorization order
	chol      *linalg.UpdatableCholesky
	ss        linalg.Vector // supportSolver row/solve workspace
	selBuf    []int         // candidate selection buffer
	keyBuf    []byte        // candidate dedup key buffer

	// Candidate dedup: keys seen this solve live back to back in keyArena,
	// located by keySpans. Candidate counts are small (≤ m per iterate), so
	// a linear bytes.Equal scan replaces the old map[string]struct{} —
	// which interned a fresh string per unique candidate on the hot path.
	keyArena []byte
	keySpans []keySpan

	// Default-rounding scratch (SolveContext with a nil Rounding): the
	// normalized iterate, one multiplicity slab carved into per-total
	// views, and the shared apportionment remainder buffer.
	u         linalg.Vector
	roundSlab []int
	cands     [][]int
	rems      []frac

	// NOMP path scratch: iterate copies live back to back in pathSlab and
	// path holds one view per iterate. Slab growth may move the backing
	// array; earlier views keep their (already written, never mutated) old
	// backing, so consumers remain correct either way.
	pathSlab linalg.Vector
	path     []linalg.Vector
}

// seenBefore reports whether key was already recorded this solve,
// recording it when new. The arena copy is the only write; steady state
// performs no allocations.
func (s *solverScratch) seenBefore(key []byte) bool {
	for _, sp := range s.keySpans {
		if bytes.Equal(s.keyArena[sp.off:sp.off+sp.n], key) {
			return true
		}
	}
	s.keySpans = append(s.keySpans, keySpan{off: len(s.keyArena), n: len(key)})
	s.keyArena = append(s.keyArena, key...)
	return false
}

// cloneIterate copies x into the path slab and returns a capped view.
func (s *solverScratch) cloneIterate(x linalg.Vector) linalg.Vector {
	off := len(s.pathSlab)
	s.pathSlab = append(s.pathSlab, x...)
	return s.pathSlab[off:len(s.pathSlab):len(s.pathSlab)]
}

func (p *Problem) scratchState(maxAtoms int) *solverScratch {
	n := p.Unique.Cols
	if p.scratch == nil {
		p.scratch = scratchPool.Get().(*solverScratch)
	}
	s := p.scratch
	// Pooled buffers may come from a different-sized problem: grow-only
	// resizing, with every slice resliced to this problem's n. All state is
	// reset before use (resetSolver, full copies, clear), so stale values
	// from a previous holder can never leak into a solve.
	s.c = growVec(s.c, n)
	s.corr = growVec(s.corr, n)
	s.x = growVec(s.x, n)
	if cap(s.inSupport) < n {
		s.inSupport = make([]bool, n)
	}
	s.inSupport = s.inSupport[:n]
	if s.chol == nil {
		s.chol = linalg.NewUpdatableCholesky(maxAtoms)
	}
	if cap(s.ss) < 2*maxAtoms+2 {
		s.ss = linalg.NewVector(2*maxAtoms + 2)
	}
	if cap(s.pathSlab) < maxAtoms*n {
		s.pathSlab = make(linalg.Vector, 0, maxAtoms*n)
	}
	return s
}

// growVec reslices v to length n, reallocating only when capacity is short.
func growVec(v linalg.Vector, n int) linalg.Vector {
	if cap(v) < n {
		return linalg.NewVector(n)
	}
	return v[:n]
}

// releaseScratch returns the problem's scratch to the pool. Called at the
// end of a solve; the next solve on this problem (or any other) checks a
// scratch out again.
func (p *Problem) releaseScratch() {
	if s := p.scratch; s != nil {
		p.scratch = nil
		scratchPool.Put(s)
	}
}

// NewProblem preprocesses the design matrix a: deduplicate columns, extract
// sparse forms, and compute the unique-column Gram matrix.
func NewProblem(a *linalg.Matrix) *Problem {
	unique, counts, members := Dedup(a)
	p := &Problem{
		Unique:  unique,
		Counts:  counts,
		Members: members,
		sparse:  newSparseColumns(unique),
	}
	n := unique.Cols
	p.gram = linalg.NewMatrix(n, n)
	for j := 0; j < n; j++ {
		idx, val := p.sparse.idx[j], p.sparse.val[j]
		for k := 0; k <= j; k++ {
			s := linalg.GatherDotKernel(idx, val, unique.Col(k))
			p.gram.Set(j, k, s)
			p.gram.Set(k, j, s)
		}
	}
	return p
}

// Share returns a Problem backed by the same preprocessed state — the
// deduplicated design, sparse column forms, and Gram matrix — but with its
// own (lazily allocated) solver scratch. Preprocessing is the expensive
// step and none of the shared fields are ever written after NewProblem, so
// Share is how concurrent or cached users reuse one preprocessing pass:
// hand every holder its own share and the solves cannot interfere.
func (p *Problem) Share() *Problem {
	return &Problem{
		Unique:  p.Unique,
		Counts:  p.Counts,
		Members: p.Members,
		sparse:  p.sparse,
		gram:    p.gram,
	}
}

// Solve runs the Integer-Regression pipeline on the preprocessed problem for
// the given target: NOMP path over sparsity budgets 1..m, rounding of each
// iterate, and exact scoring of every candidate with eval. It is
// SolveWithRounding minus the per-call preprocessing.
//
// The selection slice passed to eval is scratch reused across candidates;
// eval must not retain it past the call. The returned best selection is
// freshly allocated and owned by the caller.
//
// A nil round selects the default RoundCandidates strategy running on
// problem-owned scratch — identical candidates, no per-iterate
// allocations. Pass an explicit Rounding only to ablate the strategy.
func (p *Problem) Solve(y linalg.Vector, m int, round Rounding, eval func(selected []int) float64) ([]int, float64) {
	sel, obj, _ := p.SolveContext(context.Background(), y, m, round, eval)
	return sel, obj
}

// SolveContext is Solve with cooperative cancellation: the NOMP atom loop
// and the candidate-scoring loop check ctx at deterministic points, and a
// cancelled call returns ctx.Err() with a nil selection. Abandoning a call
// midway never corrupts the Problem's scratch — every buffer is reset at
// the start of the next solve — and an uncancelled call returns exactly
// what Solve returns.
func (p *Problem) SolveContext(ctx context.Context, y linalg.Vector, m int, round Rounding, eval func(selected []int) float64) ([]int, float64, error) {
	if p.Unique.Cols == 0 || m <= 0 {
		return nil, math.Inf(1), nil
	}
	if err := ctx.Err(); err != nil {
		return nil, math.Inf(1), err
	}
	defer p.releaseScratch()
	nompSpan := obs.StartStage(obs.StageNOMP)
	path, err := p.nompPath(ctx, y, m)
	nompSpan.Stop()
	if err != nil {
		return nil, math.Inf(1), err
	}
	sc := p.scratchState(1)
	sc.keyArena = sc.keyArena[:0]
	sc.keySpans = sc.keySpans[:0]
	var best []int
	bestObj := math.Inf(1)
	for _, x := range path {
		if err := ctx.Err(); err != nil {
			return nil, math.Inf(1), err
		}
		var cands [][]int
		if round == nil {
			cands = p.roundCandidatesScratch(sc, x, m)
		} else {
			cands = round(x, p.Counts, m)
		}
		for _, nu := range cands {
			sel := appendExpand(sc.selBuf[:0], nu, p.Members)
			sc.selBuf = sel
			key := appendSelectionKey(sc.keyBuf[:0], sel)
			sc.keyBuf = key
			if sc.seenBefore(key) {
				continue
			}
			if obj := eval(sel); obj < bestObj {
				bestObj = obj
				best = append(best[:0], sel...)
			}
		}
	}
	return best, bestObj, nil
}

// roundCandidatesScratch is RoundCandidates backed by solver scratch: same
// apportionments in the same order, but the normalized iterate, the
// multiplicity slab, and the remainder buffer are all reused across
// iterates and solves. The returned views are valid until the next call.
func (p *Problem) roundCandidatesScratch(sc *solverScratch, x linalg.Vector, maxTotal int) [][]int {
	n := len(x)
	sc.u = growVec(sc.u, n)
	n1 := x.Norm1()
	if n1 == 0 {
		return nil
	}
	inv := 1 / n1
	for i, v := range x {
		sc.u[i] = inv * v
	}
	if sc.u.Norm1() == 0 {
		// Matches RoundCandidates on pathological scales (x.Norm1() = +Inf
		// normalizes to all zeros).
		return nil
	}
	capacity := 0
	for _, c := range p.Counts {
		capacity += c
	}
	limit := maxTotal
	if limit > capacity {
		limit = capacity
	}
	if limit <= 0 {
		return nil
	}
	if cap(sc.roundSlab) < limit*n {
		sc.roundSlab = make([]int, limit*n)
	}
	slab := sc.roundSlab[:limit*n]
	out := sc.cands[:0]
	rems := sc.rems
	for total := 1; total <= limit; total++ {
		nu := slab[len(out)*n : (len(out)+1)*n : (len(out)+1)*n]
		var ok bool
		ok, rems = apportionInto(sc.u, p.Counts, total, nu, rems)
		if ok {
			out = append(out, nu)
		}
	}
	sc.cands = out
	sc.rems = rems
	return out
}

// NOMPPath is the incremental counterpart of the package-level NOMPPath: it
// returns the non-negative OMP solution after each of the first maxAtoms
// greedy support extensions. Instead of gathering the support columns and
// re-solving a dense least-squares problem from scratch on every atom
// addition (O(rows·|support|²) per atom), it works entirely in Gram space:
// correlations come from c = Aᵀy and the cached Gram matrix, and the NNLS
// subproblem is solved by a warm-started Lawson–Hanson iteration whose
// normal-equations factorization grows by rank-1 extension on atom add and
// shrinks by rotation on eviction. On any numerical failure it falls back
// to the dense reference path for the whole call.
func (p *Problem) NOMPPath(y linalg.Vector, maxAtoms int) []linalg.Vector {
	path, _ := p.nompPath(context.Background(), y, maxAtoms)
	// The Gram path lives in solver scratch (reused by the next solve on
	// this problem); hand callers their own copies.
	out := make([]linalg.Vector, len(path))
	for i, v := range path {
		out[i] = v.Clone()
	}
	return out
}

// nompPath clamps the atom budget, runs the Gram-space solver, and falls
// back to the dense reference path on numerical failure. Cancellation
// propagates from either path as ctx.Err().
func (p *Problem) nompPath(ctx context.Context, y linalg.Vector, maxAtoms int) ([]linalg.Vector, error) {
	n := p.Unique.Cols
	if maxAtoms > n {
		maxAtoms = n
	}
	if maxAtoms > p.Unique.Rows {
		// The NNLS subproblem needs at least as many rows as support
		// columns; larger supports cannot improve an exact fit anyway.
		maxAtoms = p.Unique.Rows
	}
	path, err := p.nompGram(ctx, y, maxAtoms)
	if errors.Is(err, errGramFallback) {
		return nompPathDense(ctx, p.Unique, y, maxAtoms)
	}
	return path, err
}

// nompGram runs the Gram-space NOMP loop. It returns errGramFallback when
// the incremental factorization hits a numerical failure, in which case the
// caller re-runs the dense reference implementation, and ctx.Err() when the
// call is cancelled (checked once per atom extension — a deterministic
// checkpoint that never changes results of uncancelled runs). All working
// state lives in the Problem's reusable scratch; only the returned path
// vectors are allocated per call.
func (p *Problem) nompGram(ctx context.Context, y linalg.Vector, maxAtoms int) ([]linalg.Vector, error) {
	n := p.Unique.Cols
	const tol = 1e-10
	sc := p.scratchState(maxAtoms)
	sc.resetSolver()
	// c = Aᵀy over the unique columns, via the sparse forms.
	p.sparse.correlations(y, sc.c)

	s := &supportSolver{p: p, sc: sc}
	path := sc.path[:0]
	support := sc.support
	inSupport := sc.inSupport
	corr := sc.corr
	var nnlsTime time.Duration
	defer func() {
		if nnlsTime > 0 {
			obs.ObserveStage(obs.StageNNLS, nnlsTime)
		}
	}()
	for len(path) < maxAtoms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Greedy atom: maximum positive correlation with the residual,
		// corrⱼ = cⱼ − Σ_{k passive} G_jk·x_k (no dense residual needed).
		// Column-at-a-time: corr starts as c and each passive atom's Gram
		// column is subtracted with one unit-stride axpy, replacing the
		// per-j gather over the passive set. a + (−x)·g ≡ a − x·g in IEEE
		// arithmetic and the passive order is unchanged, so the result is
		// bit-identical to the row-wise loop.
		copy(corr, sc.c)
		for _, k := range sc.passive {
			linalg.AxpyKernel(-sc.x[k], p.gram.Col(k), corr)
		}
		best, bestC := -1, tol
		for j := 0; j < n; j++ {
			if !inSupport[j] && corr[j] > bestC {
				best, bestC = j, corr[j]
			}
		}
		if best < 0 {
			// No atom improves the fit; replicate the last solution for
			// the remaining budgets so callers still get maxAtoms entries.
			for len(path) < maxAtoms {
				path = append(path, sc.cloneIterate(sc.x))
			}
			break
		}
		support = append(support, best)
		inSupport[best] = true

		nnlsStart := time.Now()
		ok := s.refit(support)
		nnlsTime += time.Since(nnlsStart)
		if !ok {
			return nil, errGramFallback
		}
		// Evict zeroed atoms from the support (they may be re-added by a
		// later greedy step, matching the dense path's semantics).
		live := support[:0]
		for _, j := range support {
			if sc.x[j] > tol {
				live = append(live, j)
			} else {
				inSupport[j] = false
			}
		}
		support = live
		path = append(path, sc.cloneIterate(sc.x))
	}
	sc.support = support[:0]
	sc.path = path
	return path, nil
}

// resetSolver clears the NOMP working state for a fresh target; buffer
// capacities are kept.
func (s *solverScratch) resetSolver() {
	for i := range s.x {
		s.x[i] = 0
	}
	for i := range s.inSupport {
		s.inSupport[i] = false
	}
	s.support = s.support[:0]
	s.passive = s.passive[:0]
	s.pathSlab = s.pathSlab[:0]
	s.path = s.path[:0]
	s.chol.Reset()
}

// supportSolver maintains the state of the warm-started Lawson–Hanson NNLS
// over the current NOMP support: the passive set (atoms with strictly
// positive coefficients), the Cholesky factorization of its Gram block, and
// the solution vector over all unique columns. The state itself lives in
// the Problem's solverScratch.
type supportSolver struct {
	p  *Problem
	sc *solverScratch
}

// enter adds unique column j to the passive set, extending the
// factorization by one row. It reports false on numerical failure.
func (s *supportSolver) enter(j int) bool {
	sc := s.sc
	k := len(sc.passive)
	if cap(sc.ss) < k {
		sc.ss = linalg.NewVector(2*k + 4)
	}
	row := sc.ss[:k]
	for i, jj := range sc.passive {
		row[i] = s.p.gram.At(j, jj)
	}
	if err := sc.chol.Extend(row, s.p.gram.At(j, j)); err != nil {
		return false
	}
	sc.passive = append(sc.passive, j)
	return true
}

// leave drops the atom at passive position k, clamping its coefficient.
func (s *supportSolver) leave(k int) {
	sc := s.sc
	sc.x[sc.passive[k]] = 0
	sc.chol.Remove(k)
	sc.passive = append(sc.passive[:k], sc.passive[k+1:]...)
}

// refit re-optimizes the NNLS coefficients after the support gained the
// atoms in support that are not yet passive (in NOMP: exactly one new
// atom). It runs Lawson–Hanson restricted to the support, warm-started from
// the current passive set, and reports false on numerical failure.
func (s *supportSolver) refit(support []int) bool {
	const tol = 1e-10
	sc := s.sc
	inPassive := func(j int) bool {
		for _, k := range sc.passive {
			if k == j {
				return true
			}
		}
		return false
	}
	// Admit the new support atoms to the passive set.
	for _, j := range support {
		if !inPassive(j) {
			if !s.enter(j) {
				return false
			}
		}
	}
	maxIter := 3 * len(support)
	if maxIter < 30 {
		maxIter = 30
	}
	for outer := 0; outer < maxIter; outer++ {
		// Inner loop: unconstrained solve on the passive Gram block; step
		// back and shrink while any passive coefficient is non-positive.
		for inner := 0; inner < maxIter; inner++ {
			k := len(sc.passive)
			if k == 0 {
				break
			}
			if cap(sc.ss) < 2*k {
				sc.ss = linalg.NewVector(4*k + 4)
			}
			b := sc.ss[:k]
			z := sc.ss[k : 2*k]
			for i, j := range sc.passive {
				b[i] = sc.c[j]
			}
			sc.chol.Solve(b, z)
			if allPositiveSlice(z, tol) {
				for i, j := range sc.passive {
					sc.x[j] = z[i]
				}
				break
			}
			// Limiting step α along (z − x) over the passive set.
			alpha := math.Inf(1)
			for i, j := range sc.passive {
				if z[i] <= tol {
					den := sc.x[j] - z[i]
					if den > 0 {
						if r := sc.x[j] / den; r < alpha {
							alpha = r
						}
					} else {
						alpha = 0
					}
				}
			}
			if math.IsInf(alpha, 1) {
				alpha = 0
			}
			for i, j := range sc.passive {
				sc.x[j] += alpha * (z[i] - sc.x[j])
			}
			// Clamp and evict atoms that hit the boundary (reverse order so
			// positions stay valid while removing).
			for i := len(sc.passive) - 1; i >= 0; i-- {
				if sc.x[sc.passive[i]] <= tol {
					s.leave(i)
				}
			}
		}
		// KKT over the support: wⱼ = cⱼ − Σ_k G_jk·x_k must be ≤ tol for
		// every support atom outside the passive set.
		best, bestW := -1, tol
		for _, j := range support {
			if inPassive(j) {
				continue
			}
			w := sc.c[j]
			for _, k := range sc.passive {
				w -= s.p.gram.At(j, k) * sc.x[k]
			}
			if w > bestW {
				best, bestW = j, w
			}
		}
		if best < 0 {
			return true
		}
		if !s.enter(best) {
			return false
		}
	}
	// Iteration budget exhausted: keep the best iterate, mirroring the
	// dense solver's ErrNNLSNoConvergence behavior.
	return true
}

func allPositiveSlice(v []float64, tol float64) bool {
	for _, x := range v {
		if x <= tol {
			return false
		}
	}
	return true
}
