// Package regress implements the Integer-Regression algorithm of Lappas et
// al. (KDD 2012) as generalized by the paper (Algorithm 1): solve the
// continuous relaxation of the review-selection problem with NOMP
// (non-negative orthogonal matching pursuit), then round the continuous
// solution to an integer review-multiplicity vector, evaluating the true
// (combinatorial) objective for every sparsity budget ℓ = 1..m and keeping
// the best.
//
// The package is algorithm-agnostic about what the columns mean: callers
// (internal/core) construct the design matrix W/V and target vector Υ, and
// supply an evaluation callback computing the exact objective of a candidate
// selection, because the true opinion/aspect vectors of a selected set are
// normalized nonlinearly and cannot be read off the linear model.
package regress

import (
	"context"
	"math"
	"sort"
	"sync"

	"comparesets/internal/linalg"
)

// dedupScratch is the per-call working state of Dedup, pooled across calls
// so the grouping pass allocates nothing on the selection hot path: the
// hash index (with collision chains), the per-column group assignment, and
// the per-group bookkeeping all come back from the pool. Only the returned
// structures — the unique matrix, counts, and members — are fresh
// allocations, because callers retain them.
type dedupScratch struct {
	index    map[uint64]int32 // column hash → head of the group chain
	chain    []int32          // per group: next group with the same hash
	colGroup []int32          // per column: assigned group
	firstCol []int32          // per group: representative (first) column
	count    []int32          // per group: member count
}

var dedupPool = sync.Pool{New: func() any {
	return &dedupScratch{index: make(map[uint64]int32)}
}}

// hashColumn folds a column's exact float64 bit patterns with FNV-1a; Dedup
// verifies candidate groups bit-for-bit, so collisions cost a compare, never
// correctness.
func hashColumn(col linalg.Vector) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for _, v := range col {
		h ^= math.Float64bits(v)
		h *= prime
	}
	return h
}

// sameColumn reports bit-exact equality (the notion the old byte-key used:
// design entries come from the small set {0, 1, λ, μ}).
func sameColumn(a, b linalg.Vector) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// Dedup groups identical columns of a. It returns the deduplicated matrix,
// the multiplicity cᵢ of each unique column, and for each unique column the
// indices of the original columns it represents (in ascending order). This
// is DeduplicateColumns of Algorithm 1, line 5. Groups are ordered by first
// occurrence, exactly as the original columns are scanned.
func Dedup(a *linalg.Matrix) (unique *linalg.Matrix, counts []int, members [][]int) {
	sc := dedupPool.Get().(*dedupScratch)
	defer func() {
		clear(sc.index)
		sc.chain = sc.chain[:0]
		sc.colGroup = sc.colGroup[:0]
		sc.firstCol = sc.firstCol[:0]
		sc.count = sc.count[:0]
		dedupPool.Put(sc)
	}()
	if cap(sc.colGroup) < a.Cols {
		sc.colGroup = make([]int32, 0, a.Cols)
	}
	// Grouping pass: hash each column and walk the (usually empty) collision
	// chain comparing bits against each candidate group's representative.
	for j := 0; j < a.Cols; j++ {
		col := a.Col(j)
		h := hashColumn(col)
		g := int32(-1)
		head, ok := sc.index[h]
		if ok {
			for c := head; c >= 0; c = sc.chain[c] {
				if sameColumn(a.Col(int(sc.firstCol[c])), col) {
					g = c
					break
				}
			}
		}
		if g < 0 {
			g = int32(len(sc.firstCol))
			sc.firstCol = append(sc.firstCol, int32(j))
			sc.count = append(sc.count, 0)
			if ok {
				sc.chain = append(sc.chain, head)
			} else {
				sc.chain = append(sc.chain, -1)
			}
			sc.index[h] = g
		}
		sc.count[g]++
		sc.colGroup = append(sc.colGroup, g)
	}
	// Output pass: one flat backing for all member lists (members within a
	// group come out ascending because columns are scanned in order).
	ng := len(sc.firstCol)
	unique = linalg.NewMatrix(a.Rows, ng)
	counts = make([]int, ng)
	members = make([][]int, ng)
	backing := make([]int, 0, a.Cols)
	offset := 0
	for g := 0; g < ng; g++ {
		n := int(sc.count[g])
		counts[g] = n
		members[g] = backing[offset:offset:(offset + n)]
		offset += n
		copy(unique.Col(g), a.Col(int(sc.firstCol[g])))
	}
	for j, g := range sc.colGroup {
		members[g] = append(members[g], j)
	}
	return unique, counts, members
}

// sparseColumns extracts each column's non-zero entries once; the NOMP
// correlation step then iterates only those. Design matrices here are 0/1
// opinion/aspect indicators scaled by λ/μ — typically >95% zero — so the
// sparse walk removes the dominant cost of the greedy atom search.
type sparseColumns struct {
	idx [][]int32   // row indices of non-zeros, per column
	val [][]float64 // matching values, per column
}

func newSparseColumns(a *linalg.Matrix) *sparseColumns {
	nnz := 0
	for j := 0; j < a.Cols; j++ {
		for _, v := range a.Col(j) {
			if v != 0 {
				nnz++
			}
		}
	}
	// All columns share two flat backing arrays: one pair of allocations
	// for the whole matrix instead of an append-growth chain per column.
	idxFlat := make([]int32, 0, nnz)
	valFlat := make([]float64, 0, nnz)
	s := &sparseColumns{
		idx: make([][]int32, a.Cols),
		val: make([][]float64, a.Cols),
	}
	for j := 0; j < a.Cols; j++ {
		start := len(idxFlat)
		for i, v := range a.Col(j) {
			if v != 0 {
				idxFlat = append(idxFlat, int32(i))
				valFlat = append(valFlat, v)
			}
		}
		s.idx[j] = idxFlat[start:len(idxFlat):len(idxFlat)]
		s.val[j] = valFlat[start:len(valFlat):len(valFlat)]
	}
	return s
}

// correlations computes aᵀ·resid using the sparse column structure.
func (s *sparseColumns) correlations(resid linalg.Vector, out linalg.Vector) {
	for j := range s.idx {
		out[j] = linalg.GatherDotKernel(s.idx[j], s.val[j], resid)
	}
}

// NOMPPath runs non-negative OMP on (a, y) and returns the solution after
// each of the first maxAtoms greedy support extensions: path[ℓ-1] is the
// coefficient vector with at most ℓ atoms. The greedy path realizes the
// "for ℓ = 1..m: x = NOMP(Ṽ, Υ)" loop of Algorithm 1 in one pass.
func NOMPPath(a *linalg.Matrix, y linalg.Vector, maxAtoms int) []linalg.Vector {
	path, _ := nompPathDense(context.Background(), a, y, maxAtoms)
	return path
}

// nompPathDense is the reference NOMP implementation behind NOMPPath, with
// a cancellation checkpoint per atom extension; it also serves as the
// fallback when the Gram-space solver hits a numerical failure.
func nompPathDense(ctx context.Context, a *linalg.Matrix, y linalg.Vector, maxAtoms int) ([]linalg.Vector, error) {
	n := a.Cols
	if maxAtoms > n {
		maxAtoms = n
	}
	if maxAtoms > a.Rows {
		// The NNLS subproblem needs at least as many rows as support
		// columns; larger supports cannot improve an exact fit anyway.
		maxAtoms = a.Rows
	}
	sparse := newSparseColumns(a)
	corr := linalg.NewVector(n)
	path := make([]linalg.Vector, 0, maxAtoms)
	support := []int{}
	inSupport := make([]bool, n)
	x := linalg.NewVector(n)
	resid := y.Clone()
	const tol = 1e-10
	for len(path) < maxAtoms {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// Greedy atom: maximum positive correlation with the residual.
		sparse.correlations(resid, corr)
		best, bestC := -1, tol
		for j := 0; j < n; j++ {
			if !inSupport[j] && corr[j] > bestC {
				best, bestC = j, corr[j]
			}
		}
		if best < 0 {
			// No atom improves the fit; replicate the last solution for
			// the remaining budgets so callers still get m entries.
			for len(path) < maxAtoms {
				path = append(path, x.Clone())
			}
			break
		}
		support = append(support, best)
		inSupport[best] = true

		sub := a.SelectColumns(support)
		z, err := linalg.NNLS(sub, y)
		if err != nil && z == nil {
			// Unrecoverable; keep the previous iterate.
			path = append(path, x.Clone())
			continue
		}
		// Install coefficients; evict zeroed atoms from the support.
		x = linalg.NewVector(n)
		live := support[:0]
		for k, j := range support {
			if z[k] > tol {
				x[j] = z[k]
				live = append(live, j)
			} else {
				inSupport[j] = false
			}
		}
		support = live
		resid = y.Sub(a.MulVec(x))
		path = append(path, x.Clone())
	}
	return path, nil
}

// Round converts a continuous coefficient vector x into an integer
// multiplicity vector ν minimizing ‖ν/‖ν‖₁ − x/‖x‖₁‖₁ subject to νᵢ ≤
// counts[i] and ‖ν‖₁ ≤ maxTotal (Algorithm 1, line 8). It searches every
// total T = 1..maxTotal with largest-remainder apportionment and returns the
// best ν, or nil when x is identically zero.
func Round(x linalg.Vector, counts []int, maxTotal int) []int {
	u := x.Normalized()
	if u.Norm1() == 0 {
		return nil
	}
	capacity := 0
	for _, c := range counts {
		capacity += c
	}
	var best []int
	bestDist := math.Inf(1)
	for total := 1; total <= maxTotal && total <= capacity; total++ {
		nu := apportion(u, counts, total)
		if nu == nil {
			continue
		}
		d := roundingDistance(nu, u, total)
		if d < bestDist-1e-15 {
			bestDist = d
			best = nu
		}
	}
	return best
}

// RoundCandidates returns one apportionment per feasible total T = 1..
// maxTotal. Solve evaluates each with the exact objective, which subsumes
// Round's L1 criterion: the L1-closest candidate is always in the pool, and
// the true objective — not the relaxation — picks the winner.
//
// All candidate vectors are carved from one slab and the remainder buffer
// is shared across totals: this runs once per NOMP iterate on the solver
// hot path, where per-total allocations dominated the profile.
func RoundCandidates(x linalg.Vector, counts []int, maxTotal int) [][]int {
	u := x.Normalized()
	if u.Norm1() == 0 {
		return nil
	}
	capacity := 0
	for _, c := range counts {
		capacity += c
	}
	limit := maxTotal
	if limit > capacity {
		limit = capacity
	}
	if limit <= 0 {
		return nil
	}
	n := len(u)
	out := make([][]int, 0, limit)
	slab := make([]int, limit*n)
	rems := make([]frac, 0, n)
	for total := 1; total <= limit; total++ {
		nu := slab[len(out)*n : (len(out)+1)*n : (len(out)+1)*n]
		var ok bool
		ok, rems = apportionInto(u, counts, total, nu, rems)
		if ok {
			out = append(out, nu)
		}
	}
	return out
}

// RoundTopK is the naive alternative rounding used by the rounding-strategy
// ablation: take the T columns with the largest continuous coefficients
// (one unit each, ignoring proportionality). Comparing Solve against
// SolveWithRounding(RoundTopK) quantifies what the largest-remainder
// apportionment of Algorithm 1 buys.
func RoundTopK(x linalg.Vector, counts []int, maxTotal int) [][]int {
	type pair struct {
		j int
		v float64
	}
	var ps []pair
	for j, v := range x {
		if v > 0 && counts[j] > 0 {
			ps = append(ps, pair{j, v})
		}
	}
	if len(ps) == 0 {
		return nil
	}
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].v != ps[b].v {
			return ps[a].v > ps[b].v
		}
		return ps[a].j < ps[b].j
	})
	var out [][]int
	for total := 1; total <= maxTotal && total <= len(ps); total++ {
		nu := make([]int, len(x))
		for _, p := range ps[:total] {
			nu[p.j] = 1
		}
		out = append(out, nu)
	}
	return out
}

// Rounding produces candidate integer multiplicity vectors from a
// continuous NOMP iterate. Solve/SolveContext accept nil as "default
// RoundCandidates on solver scratch" — the hot-path spelling that skips
// the per-iterate slab allocations of the exported function.
type Rounding func(x linalg.Vector, counts []int, maxTotal int) [][]int

// SolveWithRounding is Solve with a pluggable rounding strategy (see
// RoundCandidates and RoundTopK). One-shot convenience over
// NewProblem(a).Solve; callers re-solving the same design against many
// targets should build the Problem once instead.
func SolveWithRounding(a *linalg.Matrix, y linalg.Vector, m int, round Rounding, eval func(selected []int) float64) ([]int, float64) {
	if a.Cols == 0 || m <= 0 {
		return nil, math.Inf(1)
	}
	return NewProblem(a).Solve(y, m, round, eval)
}

// frac is one uncapped entry's fractional part during apportionment.
type frac struct {
	idx int
	rem float64
}

// apportion distributes total units over entries proportionally to u with
// per-entry caps, using the largest-remainder method.
func apportion(u linalg.Vector, counts []int, total int) []int {
	nu := make([]int, len(u))
	ok, _ := apportionInto(u, counts, total, nu, nil)
	if !ok {
		return nil
	}
	return nu
}

// apportionInto is apportion writing into caller-owned buffers: nu (length
// len(u), fully overwritten) receives the multiplicities and rems is a
// reusable scratch returned for the next call. ok is false when the caps
// make the total infeasible.
func apportionInto(u linalg.Vector, counts []int, total int, nu []int, rems []frac) (bool, []frac) {
	n := len(u)
	rems = rems[:0]
	assigned := 0
	for i := 0; i < n; i++ {
		ideal := u[i] * float64(total)
		f := int(math.Floor(ideal + 1e-12))
		if f > counts[i] {
			f = counts[i]
		}
		nu[i] = f
		assigned += f
		if f < counts[i] {
			rems = append(rems, frac{i, ideal - float64(f)})
		}
	}
	if assigned > total {
		// Over-assignment can only come from the floor of an exact ideal
		// exceeding the remaining budget; shave the smallest ideals.
		type ent struct {
			idx   int
			ideal float64
		}
		var es []ent
		for i := 0; i < n; i++ {
			if nu[i] > 0 {
				es = append(es, ent{i, u[i] * float64(total)})
			}
		}
		// Insertion sort ascending by ideal (slices here are small; a
		// hand-rolled sort avoids sort.Slice's reflection machinery on the
		// rounding hot path).
		for i := 1; i < len(es); i++ {
			e := es[i]
			j := i - 1
			for j >= 0 && es[j].ideal > e.ideal {
				es[j+1] = es[j]
				j--
			}
			es[j+1] = e
		}
		for _, e := range es {
			for assigned > total && nu[e.idx] > 0 {
				nu[e.idx]--
				assigned--
			}
		}
	}
	// Distribute the remainder by largest fractional part (stable on ties
	// by index for determinism); insertion sort, descending by remainder
	// then ascending by index.
	for i := 1; i < len(rems); i++ {
		r := rems[i]
		j := i - 1
		for j >= 0 && (rems[j].rem < r.rem || (rems[j].rem == r.rem && rems[j].idx > r.idx)) {
			rems[j+1] = rems[j]
			j--
		}
		rems[j+1] = r
	}
	for _, r := range rems {
		if assigned == total {
			break
		}
		room := counts[r.idx] - nu[r.idx]
		take := total - assigned
		if take > room {
			take = room
		}
		// Largest remainder normally adds one unit; allow more when the
		// cap structure leaves no other entries with room.
		if take > 1 {
			take = 1
		}
		nu[r.idx] += take
		assigned += take
	}
	// Second pass if still short (caps exhausted the 1-unit round).
	for pass := 0; assigned < total && pass < total; pass++ {
		progress := false
		for _, r := range rems {
			if assigned == total {
				break
			}
			if nu[r.idx] < counts[r.idx] {
				nu[r.idx]++
				assigned++
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	if assigned != total {
		return false, rems
	}
	return true, rems
}

func roundingDistance(nu []int, u linalg.Vector, total int) float64 {
	var d float64
	for i := range nu {
		d += math.Abs(float64(nu[i])/float64(total) - u[i])
	}
	return d
}

// Solve runs the full Integer-Regression pipeline: deduplicate the columns
// of a, walk the NOMP path for sparsity budgets 1..m, round each continuous
// iterate, expand multiplicities back to original column indices, score each
// candidate with eval (the exact combinatorial objective; smaller is
// better), and return the best selection with its objective. It returns
// (nil, +Inf) when no non-empty candidate exists.
func Solve(a *linalg.Matrix, y linalg.Vector, m int, eval func(selected []int) float64) ([]int, float64) {
	return SolveWithRounding(a, y, m, nil, eval)
}

// SolveContext is Solve with cooperative cancellation (see
// Problem.SolveContext for the checkpoint semantics).
func SolveContext(ctx context.Context, a *linalg.Matrix, y linalg.Vector, m int, eval func(selected []int) float64) ([]int, float64, error) {
	if a.Cols == 0 || m <= 0 {
		return nil, math.Inf(1), nil
	}
	return NewProblem(a).SolveContext(ctx, y, m, nil, eval)
}

// Expand maps a multiplicity vector over unique columns back to original
// column indices (Algorithm 1, line 9): for each unique column i, the first
// ν[i] of its member columns are selected.
func Expand(nu []int, members [][]int) []int {
	size := 0
	for i, k := range nu {
		if k > len(members[i]) {
			k = len(members[i])
		}
		size += k
	}
	return appendExpand(make([]int, 0, size), nu, members)
}

// appendExpand is Expand into a caller-provided buffer (reused across the
// candidate loop of Problem.Solve).
func appendExpand(dst []int, nu []int, members [][]int) []int {
	for i, k := range nu {
		for t := 0; t < k && t < len(members[i]); t++ {
			dst = append(dst, members[i][t])
		}
	}
	sort.Ints(dst)
	return dst
}

// appendSelectionKey appends a compact byte encoding of a sorted selection;
// used as a map key to deduplicate candidate evaluations.
func appendSelectionKey(dst []byte, sel []int) []byte {
	for _, s := range sel {
		dst = append(dst, byte(s), byte(s>>8), byte(s>>16), ',')
	}
	return dst
}
