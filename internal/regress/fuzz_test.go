package regress

import (
	"testing"

	"comparesets/internal/linalg"
)

// FuzzApportion checks the largest-remainder apportionment invariants on
// arbitrary weight/cap inputs: a returned multiplicity vector sums exactly
// to the requested total, never exceeds a per-entry cap, is non-negative,
// exists whenever the caps can accommodate the total, and is deterministic
// (ties broken by index, not map or sort order).
func FuzzApportion(f *testing.F) {
	f.Add([]byte{10, 20, 30}, []byte{1, 2, 3}, uint8(3))
	f.Add([]byte{1, 1, 1, 1}, []byte{1, 1, 1, 1}, uint8(2))
	f.Add([]byte{255, 0, 255}, []byte{0, 5, 5}, uint8(7))
	f.Add([]byte{7}, []byte{3}, uint8(9))
	f.Add([]byte{}, []byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, weights, caps []byte, totalRaw uint8) {
		n := len(weights)
		if len(caps) < n {
			n = len(caps)
		}
		if n == 0 {
			return
		}
		x := linalg.NewVector(n)
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			x[i] = float64(weights[i])
			counts[i] = int(caps[i] % 5)
		}
		u := x.Normalized()
		if u.Norm1() == 0 {
			return
		}
		total := 1 + int(totalRaw%8)
		capacity := 0
		for _, c := range counts {
			capacity += c
		}

		nu := apportion(u, counts, total)
		if nu == nil {
			if capacity >= total {
				t.Fatalf("apportion returned nil with capacity %d >= total %d", capacity, total)
			}
			return
		}
		sum := 0
		for i, v := range nu {
			if v < 0 {
				t.Fatalf("negative multiplicity nu[%d] = %d", i, v)
			}
			if v > counts[i] {
				t.Fatalf("nu[%d] = %d exceeds cap %d", i, v, counts[i])
			}
			sum += v
		}
		if sum != total {
			t.Fatalf("sum(nu) = %d, want total %d (nu=%v counts=%v u=%v)", sum, total, nu, counts, u)
		}

		again := apportion(u, counts, total)
		for i := range nu {
			if nu[i] != again[i] {
				t.Fatalf("apportion not deterministic at %d: %v vs %v", i, nu, again)
			}
		}
	})
}
