// Package plot renders simple line charts as standalone SVG documents on
// the standard library — enough to regenerate the paper's figures (5a, 5b,
// 6, 7, 11) as images rather than just printed series. It is intentionally
// small: multi-series line charts with linear or log-scaled x axes, axis
// ticks, a legend, and nothing else.
package plot

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"
)

// Series is one named polyline.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a multi-series line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogX plots x on a log10 scale (hyperparameter sweeps).
	LogX bool
	// Width and Height are the SVG dimensions (defaults 640×400).
	Width, Height int
}

// palette holds distinguishable stroke colors (series cycle through it).
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e", "#9467bd", "#8c564b"}

const (
	marginLeft   = 64.0
	marginRight  = 24.0
	marginTop    = 40.0
	marginBottom = 48.0
)

// Render writes the chart as an SVG document.
func (c Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: chart %q has no series", c.Title)
	}
	width, height := c.Width, c.Height
	if width == 0 {
		width = 640
	}
	if height == 0 {
		height = 400
	}
	xmin, xmax, ymin, ymax, err := c.bounds()
	if err != nil {
		return err
	}
	plotW := float64(width) - marginLeft - marginRight
	plotH := float64(height) - marginTop - marginBottom
	xpos := func(x float64) float64 {
		if c.LogX {
			x = math.Log10(x)
		}
		if xmax == xmin {
			return marginLeft + plotW/2
		}
		return marginLeft + (x-xmin)/(xmax-xmin)*plotW
	}
	ypos := func(y float64) float64 {
		if ymax == ymin {
			return marginTop + plotH/2
		}
		return marginTop + plotH - (y-ymin)/(ymax-ymin)*plotH
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%g" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginLeft, escape(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop+plotH, marginLeft+plotW, marginTop+plotH)
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n",
		marginLeft, marginTop, marginLeft, marginTop+plotH)
	fmt.Fprintf(&b, `<text x="%g" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginLeft+plotW/2, height-8, escape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		marginTop+plotH/2, marginTop+plotH/2, escape(c.YLabel))

	// Ticks.
	for _, t := range ticks(ymin, ymax, 5) {
		y := ypos(t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ddd"/>`+"\n", marginLeft, y, marginLeft+plotW, y)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end">%s</text>`+"\n", marginLeft-6, y+4, trimFloat(t))
	}
	for _, t := range c.xticks(xmin, xmax) {
		x := xpos(t.value)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", x, marginTop+plotH, x, marginTop+plotH+4)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", x, marginTop+plotH+18, t.label)
	}

	// Series polylines + legend.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xpos(s.X[i]), ypos(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n", strings.Join(pts, " "), color)
		for i := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n", xpos(s.X[i]), ypos(s.Y[i]), color)
		}
		ly := marginTop + 8 + float64(si)*16
		lx := marginLeft + plotW - 150
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="2"/>`+"\n", lx, ly, lx+20, ly, color)
		fmt.Fprintf(&b, `<text x="%g" y="%g">%s</text>`+"\n", lx+26, ly+4, escape(s.Name))
	}
	b.WriteString("</svg>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// Save renders the chart into an SVG file.
func (c Chart) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func (c Chart) bounds() (xmin, xmax, ymin, ymax float64, err error) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	points := 0
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return 0, 0, 0, 0, fmt.Errorf("plot: series %q has %d x values and %d y values", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			x := s.X[i]
			if c.LogX {
				if x <= 0 {
					return 0, 0, 0, 0, fmt.Errorf("plot: series %q has non-positive x=%v on a log axis", s.Name, x)
				}
				x = math.Log10(x)
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
			points++
		}
	}
	if points == 0 {
		return 0, 0, 0, 0, fmt.Errorf("plot: chart %q has no points", c.Title)
	}
	// Pad y a little so lines do not sit on the frame.
	if ymax > ymin {
		pad := (ymax - ymin) * 0.08
		ymin -= pad
		ymax += pad
	}
	return xmin, xmax, ymin, ymax, nil
}

type tick struct {
	value float64
	label string
}

// xticks places ticks at the union of series x values (charts here have few
// distinct x positions), deduplicated.
func (c Chart) xticks(xmin, xmax float64) []tick {
	seen := map[float64]bool{}
	var out []tick
	for _, s := range c.Series {
		for _, x := range s.X {
			if seen[x] {
				continue
			}
			seen[x] = true
			out = append(out, tick{value: x, label: trimFloat(x)})
		}
	}
	// Insertion sort by plotted position.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && less(out[j].value, out[j-1].value, c.LogX); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if len(out) > 12 {
		// Thin dense tick sets.
		kept := out[:0]
		step := (len(out) + 11) / 12
		for i := 0; i < len(out); i += step {
			kept = append(kept, out[i])
		}
		out = kept
	}
	return out
}

func less(a, b float64, logx bool) bool { return a < b }

// ticks returns ~n round tick values covering [lo, hi].
func ticks(lo, hi float64, n int) []float64 {
	if hi <= lo {
		return []float64{lo}
	}
	rawStep := (hi - lo) / float64(n)
	mag := math.Pow(10, math.Floor(math.Log10(rawStep)))
	var step float64
	for _, mult := range []float64{1, 2, 5, 10} {
		step = mult * mag
		if step >= rawStep {
			break
		}
	}
	var out []float64
	for t := math.Ceil(lo/step) * step; t <= hi+1e-12; t += step {
		out = append(out, t)
	}
	return out
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4g", v)
	return s
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
