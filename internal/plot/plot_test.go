package plot

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "ROUGE-L vs lambda",
		XLabel: "lambda",
		YLabel: "ROUGE-L",
		LogX:   true,
		Series: []Series{
			{Name: "Cellphone", X: []float64{0.01, 0.1, 1, 10, 100}, Y: []float64{21.6, 21.7, 22.3, 21.9, 21.9}},
			{Name: "Toy", X: []float64{0.01, 0.1, 1, 10, 100}, Y: []float64{20.7, 20.7, 21.1, 21.2, 21.2}},
		},
	}
}

func TestRenderWellFormedSVG(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	for _, want := range []string{"<svg", "</svg>", "polyline", "Cellphone", "Toy", "ROUGE-L vs lambda", "lambda"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if got := strings.Count(svg, "<polyline"); got != 2 {
		t.Errorf("polylines = %d, want 2", got)
	}
	// Two series × five points of markers.
	if got := strings.Count(svg, "<circle"); got != 10 {
		t.Errorf("circles = %d, want 10", got)
	}
}

func TestRenderErrors(t *testing.T) {
	if err := (Chart{Title: "empty"}).Render(&bytes.Buffer{}); err == nil {
		t.Error("empty chart accepted")
	}
	bad := Chart{Series: []Series{{Name: "x", X: []float64{1, 2}, Y: []float64{1}}}}
	if err := bad.Render(&bytes.Buffer{}); err == nil {
		t.Error("ragged series accepted")
	}
	logBad := Chart{LogX: true, Series: []Series{{Name: "x", X: []float64{0}, Y: []float64{1}}}}
	if err := logBad.Render(&bytes.Buffer{}); err == nil {
		t.Error("non-positive x on log axis accepted")
	}
	none := Chart{Series: []Series{{Name: "x"}}}
	if err := none.Render(&bytes.Buffer{}); err == nil {
		t.Error("pointless chart accepted")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	flat := Chart{Series: []Series{{Name: "c", X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}}}}
	var buf bytes.Buffer
	if err := flat.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "polyline") {
		t.Error("flat series not drawn")
	}
}

func TestRenderEscapesMarkup(t *testing.T) {
	c := Chart{
		Title:  `<script>"bad"</script>`,
		Series: []Series{{Name: "a&b", X: []float64{1}, Y: []float64{1}}},
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	svg := buf.String()
	if strings.Contains(svg, "<script>") {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "a&amp;b") {
		t.Error("series name not escaped")
	}
}

func TestSave(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chart.svg")
	if err := sampleChart().Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "<svg") {
		t.Errorf("file starts with %q", string(data[:10]))
	}
	if err := sampleChart().Save(filepath.Join(t.TempDir(), "no", "dir", "x.svg")); err == nil {
		t.Error("bad path accepted")
	}
}

func TestTicksRound(t *testing.T) {
	got := ticks(0, 10, 5)
	if len(got) < 4 || len(got) > 7 {
		t.Errorf("ticks = %v", got)
	}
	for _, v := range got {
		if v < 0 || v > 10+1e-9 {
			t.Errorf("tick %v out of range", v)
		}
	}
	if one := ticks(3, 3, 5); len(one) != 1 || one[0] != 3 {
		t.Errorf("degenerate ticks = %v", one)
	}
	// Steps are from the 1-2-5 family.
	if len(got) >= 2 {
		step := got[1] - got[0]
		mant := step / math.Pow(10, math.Floor(math.Log10(step)))
		ok := false
		for _, m := range []float64{1, 2, 5, 10} {
			if math.Abs(mant-m) < 1e-9 {
				ok = true
			}
		}
		if !ok {
			t.Errorf("step %v not in 1-2-5 family", step)
		}
	}
}
