// Snapshot export: serializing a live corpus as CSLG log bytes.
//
// The distributed tier ships corpora between processes as the store's own
// wire format — a v1 file header followed by length+CRC framed review
// records — so a joining replica can persist the stream to disk and replay
// it through the exact same recovery scan that protects crash-truncated
// logs. A snapshot torn mid-transfer is indistinguishable from a log torn
// mid-append: Open keeps the longest valid prefix and the joiner detects
// the shortfall by comparing record counts against the snapshot manifest.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"comparesets/internal/jsonenc"
	"comparesets/internal/model"
)

// WriteCorpusLog streams the corpus's live reviews to w as a version-1 CSLG
// log: the 8-byte file header, then one framed append record per review,
// items in sorted-ID order and each item's reviews in slice order. The
// resulting bytes open with Open/OpenWithOptions like any other log, and the
// replayed store reproduces the corpus's reviews exactly (same per-item
// order), so a snapshot-rebuilt corpus fingerprints identically to its
// source. Returns the number of records written.
func WriteCorpusLog(w io.Writer, c *model.Corpus) (int, error) {
	var hdr [fileHeaderSize]byte
	copy(hdr[:4], fileMagic[:])
	hdr[4] = FormatV1
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("store: writing snapshot header: %w", err)
	}
	buf := jsonenc.GetBuffer()
	defer jsonenc.PutBuffer(buf)
	n := 0
	for _, id := range c.ItemIDs() {
		for _, rec := range c.Items[id].Reviews {
			payload, err := rec.MarshalAppend(buf.B[:0])
			if err != nil {
				return n, fmt.Errorf("store: encoding review %q: %w", rec.ID, err)
			}
			buf.B = payload
			if len(payload) > MaxRecordSize {
				return n, fmt.Errorf("store: review %q exceeds max record size", rec.ID)
			}
			var frame [headerSize]byte
			binary.BigEndian.PutUint32(frame[:4], uint32(len(payload)))
			binary.BigEndian.PutUint32(frame[4:8], crc32.Checksum(payload, crcTable))
			if _, err := w.Write(frame[:]); err != nil {
				return n, fmt.Errorf("store: writing record frame: %w", err)
			}
			if _, err := w.Write(payload); err != nil {
				return n, fmt.Errorf("store: writing record payload: %w", err)
			}
			n++
		}
	}
	return n, nil
}
