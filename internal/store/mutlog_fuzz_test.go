package store

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzCSLGAppend drives a fuzz-chosen sequence of append/update/remove
// records into a log, crash-truncates it at a fuzz-chosen point, and
// requires the reopen to reconstruct exactly the live view of the surviving
// record prefix — mutations must never cost durability of earlier records.
func FuzzCSLGAppend(f *testing.F) {
	f.Add([]byte{0, 1, 0, 2}, uint(1 << 20))
	f.Add([]byte{0, 0, 1, 2, 2, 1}, uint(40))
	f.Add([]byte{0, 2}, uint(0))
	f.Add([]byte{0, 1, 1, 1}, uint(60))

	f.Fuzz(func(t *testing.T, ops []byte, keep uint) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		path := filepath.Join(t.TempDir(), "fuzz.log")
		s, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}

		// Apply the op sequence, remembering the file size after each record
		// so we can map a truncation point back to the surviving prefix.
		type state struct {
			size    int64
			ratings map[string]int // live review ID -> rating
		}
		live := map[string]int{}
		snapshot := func() map[string]int {
			m := make(map[string]int, len(live))
			for k, v := range live {
				m[k] = v
			}
			return m
		}
		states := []state{{size: s.size, ratings: snapshot()}}
		nextID := 0
		for _, op := range ops {
			switch op % 3 {
			case 0: // append a fresh review
				id := fmt.Sprintf("r%d", nextID)
				nextID++
				if err := s.Append(rev("p1", id, 1)); err != nil {
					t.Fatal(err)
				}
				live[id] = 1
			case 1: // update the oldest live review
				id, ok := anyLive(live)
				if !ok {
					continue
				}
				if err := s.AppendUpdate(rev("p1", id, live[id]+1)); err != nil {
					t.Fatal(err)
				}
				live[id]++
			case 2: // remove the oldest live review
				id, ok := anyLive(live)
				if !ok {
					continue
				}
				if err := s.AppendRemove("p1", id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
			}
			states = append(states, state{size: s.size, ratings: snapshot()})
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: truncate the file to an arbitrary length.
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if int(keep) < len(data) {
			data = data[:keep]
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// The surviving prefix is the last state whose size fits in the file.
		want := states[0].ratings
		for _, st := range states {
			if st.size <= int64(len(data)) {
				want = st.ratings
			}
		}

		s2, err := Open(path)
		if err != nil {
			t.Fatalf("Open after truncation: %v", err)
		}
		defer s2.Close()
		if s2.Count() != len(want) {
			t.Fatalf("Count = %d, want %d live reviews", s2.Count(), len(want))
		}
		if len(want) > 0 {
			revs, err := s2.ItemReviews("p1")
			if err != nil {
				t.Fatal(err)
			}
			got := map[string]int{}
			for _, r := range revs {
				got[r.ID] = r.Rating
			}
			for id, rating := range want {
				if got[id] != rating {
					t.Fatalf("review %s: rating %d, want %d (live=%v)", id, got[id], rating, got)
				}
			}
		}
		// The recovered log accepts further mutations.
		if err := s2.Append(rev("p1", "post", 9)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := s2.AppendRemove("p1", "post"); err != nil {
			t.Fatalf("remove after recovery: %v", err)
		}
	})
}

// anyLive returns the lexically smallest live review ID, giving the fuzz
// body a deterministic pick.
func anyLive(live map[string]int) (string, bool) {
	best, ok := "", false
	for id := range live {
		if !ok || id < best {
			best, ok = id, true
		}
	}
	return best, ok
}
