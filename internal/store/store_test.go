package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"comparesets/internal/datagen"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func tempStore(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "reviews.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func review(id, item string, aspects ...int) *model.Review {
	r := &model.Review{ID: id, ItemID: item, Reviewer: "u1", Rating: 4, Text: "text of " + id}
	for _, a := range aspects {
		r.Mentions = append(r.Mentions, model.Mention{Aspect: a, Polarity: model.Positive, Score: 1})
	}
	return r
}

func TestAppendAndFetch(t *testing.T) {
	s, _ := tempStore(t)
	if err := s.Append(review("r1", "p1", 0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(review("r2", "p1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(review("r3", "p2", 0)); err != nil {
		t.Fatal(err)
	}
	got, err := s.ItemReviews("p1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].ID != "r1" || got[1].ID != "r2" {
		t.Errorf("p1 reviews = %+v", got)
	}
	if got[0].Text != "text of r1" || len(got[0].Mentions) != 2 {
		t.Errorf("record did not round trip: %+v", got[0])
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	if empty, _ := s.ItemReviews("ghost"); len(empty) != 0 {
		t.Errorf("ghost reviews = %v", empty)
	}
}

func TestAspectIndex(t *testing.T) {
	s, _ := tempStore(t)
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p2", 0))
	s.Append(review("r3", "p2", 0)) // same item, same aspect: dedup
	s.Append(review("r4", "p3", 1))
	if got := s.ItemsWithAspect(0); !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Errorf("aspect 0 items = %v", got)
	}
	if got := s.ItemsWithAspect(1); !reflect.DeepEqual(got, []string{"p3"}) {
		t.Errorf("aspect 1 items = %v", got)
	}
	if got := s.ItemsWithAspect(9); len(got) != 0 {
		t.Errorf("aspect 9 items = %v", got)
	}
}

func TestReopenRebuildsIndexes(t *testing.T) {
	s, path := tempStore(t)
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p2", 1))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 2 {
		t.Errorf("Count after reopen = %d", re.Count())
	}
	if got := re.Items(); !reflect.DeepEqual(got, []string{"p1", "p2"}) {
		t.Errorf("Items = %v", got)
	}
	got, err := re.ItemReviews("p2")
	if err != nil || len(got) != 1 || got[0].ID != "r2" {
		t.Errorf("p2 = %+v err = %v", got, err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	s, path := tempStore(t)
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p1", 1))
	s.Close()

	// Simulate a crash mid-append: chop bytes off the last record.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 1 {
		t.Fatalf("Count after torn tail = %d, want 1", re.Count())
	}
	got, _ := re.ItemReviews("p1")
	if len(got) != 1 || got[0].ID != "r1" {
		t.Errorf("surviving reviews = %+v", got)
	}
	// The torn bytes must be gone so new appends start clean.
	if err := re.Append(review("r3", "p1", 2)); err != nil {
		t.Fatal(err)
	}
	got, _ = re.ItemReviews("p1")
	if len(got) != 2 || got[1].ID != "r3" {
		t.Errorf("after repair append: %+v", got)
	}
}

func TestCorruptTailChecksumDropped(t *testing.T) {
	s, path := tempStore(t)
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p1", 0))
	s.Close()

	// Flip one payload byte of the LAST record: checksum fails, record is
	// treated as a torn tail.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Count() != 1 {
		t.Errorf("Count = %d, want 1 (corrupt tail dropped)", re.Count())
	}
}

func TestValidCRCBadJSONRecoversPrefix(t *testing.T) {
	// A record whose checksum verifies but whose payload is not JSON is
	// still corruption: Open must survive it, keep everything before it,
	// and report the drop instead of failing the whole log.
	path := filepath.Join(t.TempDir(), "reviews.log")
	payload := []byte("this is not json")
	var header [headerSize]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	if err := os.WriteFile(path, append(header[:], payload...), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatalf("Open = %v, want recovery", err)
	}
	defer s.Close()
	if s.Count() != 0 {
		t.Errorf("Count = %d, want 0", s.Count())
	}
	rec := s.Recovery()
	if rec.DroppedRecords != 1 || rec.DroppedBytes != int64(headerSize+len(payload)) {
		t.Errorf("Recovery = %+v", rec)
	}
}

func TestReadAtDetectsPostOpenCorruption(t *testing.T) {
	// Bit rot after indexing: ItemReviews must fail with ErrCorruptRecord
	// rather than return garbage.
	s, path := tempStore(t)
	s.Append(review("r1", "p1", 0))
	s.Sync()
	// Flip a payload byte in place while the store is open.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ItemReviews("p1"); !errors.Is(err, ErrCorruptRecord) {
		t.Errorf("err = %v, want ErrCorruptRecord", err)
	}
}

func TestItemReviewsInterleavedKeepsAppendOrder(t *testing.T) {
	// Interleave three items so every record of an item is separated by
	// foreign records: the batch reader must discard the gaps and still
	// return each item's reviews in append order.
	s, _ := tempStore(t)
	const rounds = 25
	for i := 0; i < rounds; i++ {
		for p := 0; p < 3; p++ {
			item := fmt.Sprintf("p%d", p)
			if err := s.Append(review(fmt.Sprintf("%s-r%03d", item, i), item, i%4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for p := 0; p < 3; p++ {
		item := fmt.Sprintf("p%d", p)
		rs, err := s.ItemReviews(item)
		if err != nil {
			t.Fatal(err)
		}
		if len(rs) != rounds {
			t.Fatalf("%s: %d reviews, want %d", item, len(rs), rounds)
		}
		for i, r := range rs {
			if want := fmt.Sprintf("%s-r%03d", item, i); r.ID != want {
				t.Fatalf("%s[%d] = %s, want %s", item, i, r.ID, want)
			}
		}
	}
}

func TestAppendRejectsOversizedRecord(t *testing.T) {
	s, _ := tempStore(t)
	big := review("r1", "p1", 0)
	big.Text = string(make([]byte, MaxRecordSize+1))
	if err := s.Append(big); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestClosedOperationsFail(t *testing.T) {
	s, _ := tempStore(t)
	s.Close()
	if err := s.Append(review("r", "p", 0)); !errors.Is(err, ErrClosed) {
		t.Errorf("Append err = %v", err)
	}
	if _, err := s.ItemReviews("p"); !errors.Is(err, ErrClosed) {
		t.Errorf("ItemReviews err = %v", err)
	}
	if err := s.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync err = %v", err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("double Close err = %v", err)
	}
}

func TestAppendCorpusAndServeInstances(t *testing.T) {
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Toy, Products: 15, Reviewers: 25,
		MeanReviews: 6, MeanAlsoBought: 3, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := tempStore(t)
	if err := s.AppendCorpus(c); err != nil {
		t.Fatal(err)
	}
	if s.Count() != c.NumReviews() {
		t.Fatalf("Count = %d, want %d", s.Count(), c.NumReviews())
	}
	for _, id := range c.ItemIDs() {
		got, err := s.ItemReviews(id)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(c.Items[id].Reviews) {
			t.Errorf("item %s: %d reviews, want %d", id, len(got), len(c.Items[id].Reviews))
		}
	}
}

func TestConcurrentReadersWithWriter(t *testing.T) {
	s, _ := tempStore(t)
	for i := 0; i < 20; i++ {
		s.Append(review(idStr(i), "p1", i%3))
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w == 0 {
					if err := s.Append(review(idStr(100+i), "p2", 1)); err != nil {
						t.Error(err)
						return
					}
					continue
				}
				if _, err := s.ItemReviews("p1"); err != nil {
					t.Error(err)
					return
				}
				s.ItemsWithAspect(1)
				s.Count()
			}
		}(w)
	}
	wg.Wait()
	got, _ := s.ItemReviews("p2")
	if len(got) != 20 {
		t.Errorf("p2 reviews = %d", len(got))
	}
}

func idStr(i int) string { return "r" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }

func TestOpenBadDirectory(t *testing.T) {
	if _, err := Open(filepath.Join(string(os.PathSeparator), "no", "such", "dir", "x.log")); err == nil {
		t.Error("expected error")
	}
}
