package store

import (
	"encoding/json"
	"testing"

	"comparesets/internal/model"
)

// TestEnvelopeMarshalParity locks the hand-rolled envelope encoder to
// json.Marshal byte-for-byte: logs written by either encoder must replay
// identically, and the envelopePrefix sniff depends on "op" coming first.
func TestEnvelopeMarshalParity(t *testing.T) {
	envs := []logEnvelope{
		{Op: opRemove, ItemID: "item-1", ReviewID: "r-9"},
		{Op: opRemove, ItemID: "", ReviewID: ""},
		{Op: opRemove, ItemID: "tricky <id> & \"quotes\"", ReviewID: "\xffbad"},
		{Op: opUpdate, Review: &model.Review{
			ID: "r1", ItemID: "item-1", Reviewer: "alice", Rating: 4,
			Text: "updated text\nwith newline",
			Mentions: []model.Mention{
				{Aspect: 2, Polarity: model.Negative, Score: -0.75},
			},
		}},
		{Op: opUpdate, Review: &model.Review{ID: "r2", ItemID: "i"}},
	}
	for i, env := range envs {
		want, err := json.Marshal(env)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got, err := env.marshalAppend(nil)
		if err != nil {
			t.Fatalf("marshalAppend: %v", err)
		}
		if string(got) != string(want) {
			t.Errorf("envelope %d:\n got %s\nwant %s", i, got, want)
		}
	}
}
