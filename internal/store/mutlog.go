// Mutation records: the CSLG log's delta write path.
//
// The original log knew a single record type — a JSON-encoded review,
// meaning "append". Incremental corpus mutation adds two more, carried in a
// small JSON envelope whose first field is always "op":
//
//	{"op":"update","review":{...}}              replace the review in place
//	{"op":"remove","item_id":"…","review_id":"…"}  delete the review
//
// Plain review payloads keep meaning "append", byte-identical to every log
// written before mutations existed: model.Review marshals with "id" first,
// so a record beginning with {"op": is unambiguously an envelope and
// everything else replays as a legacy append. All three record types share
// the length+CRC framing, so the recovery scan (torn tails, bit flips,
// truncate-to-last-good-record) covers mutation records for free — a torn
// update simply truncates back to the pre-update state, never corrupting
// the prefix.
//
// The in-memory indexes replay mutations into a live view: byItem holds the
// record offsets of each item's current reviews (an update swaps one offset,
// a remove deletes one), so ItemReviews always materializes post-mutation
// state without any log rewrite or compaction. The aspect index stays
// append-monotone — it answers "which items ever discussed this aspect",
// and pruning it on remove would require re-reading every remaining record.
package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"

	"comparesets/internal/jsonenc"
	"comparesets/internal/model"
)

// Mutation-envelope op names.
const (
	opUpdate = "update"
	opRemove = "remove"
)

// envelopePrefix distinguishes mutation envelopes from legacy review
// payloads; logEnvelope marshals "op" first, model.Review marshals "id"
// first, so the prefix test is exact for records this package wrote.
var envelopePrefix = []byte(`{"op":`)

// logEnvelope is the payload of an update or remove record. Field order
// matters: "op" must come first so envelopePrefix can sniff record types
// without a speculative decode.
type logEnvelope struct {
	Op       string        `json:"op"`
	Review   *model.Review `json:"review,omitempty"`
	ItemID   string        `json:"item_id,omitempty"`
	ReviewID string        `json:"review_id,omitempty"`
}

// marshalAppend appends the envelope's JSON encoding, byte-identical to
// json.Marshal (including omitempty drops), so hand-encoded and
// reflection-encoded logs are interchangeable byte-for-byte. Parity is
// locked by TestEnvelopeMarshalParity.
func (e *logEnvelope) marshalAppend(dst []byte) ([]byte, error) {
	dst = append(dst, `{"op":`...)
	dst = jsonenc.AppendString(dst, e.Op)
	if e.Review != nil {
		dst = append(dst, `,"review":`...)
		var err error
		if dst, err = e.Review.MarshalAppend(dst); err != nil {
			return dst, err
		}
	}
	if e.ItemID != "" {
		dst = append(dst, `,"item_id":`...)
		dst = jsonenc.AppendString(dst, e.ItemID)
	}
	if e.ReviewID != "" {
		dst = append(dst, `,"review_id":`...)
		dst = jsonenc.AppendString(dst, e.ReviewID)
	}
	return append(dst, '}'), nil
}

// decodeRecord turns one record payload into its review (append/update) or
// tombstone coordinates (remove, review == nil).
func decodeRecord(payload []byte) (op string, rec *model.Review, itemID, reviewID string, err error) {
	if bytes.HasPrefix(payload, envelopePrefix) {
		var env logEnvelope
		if err := json.Unmarshal(payload, &env); err != nil {
			return "", nil, "", "", err
		}
		switch env.Op {
		case opUpdate:
			if env.Review == nil {
				return "", nil, "", "", fmt.Errorf("update record without review")
			}
			return opUpdate, env.Review, env.Review.ItemID, env.Review.ID, nil
		case opRemove:
			return opRemove, nil, env.ItemID, env.ReviewID, nil
		default:
			return "", nil, "", "", fmt.Errorf("unknown record op %q", env.Op)
		}
	}
	var r model.Review
	if err := json.Unmarshal(payload, &r); err != nil {
		return "", nil, "", "", err
	}
	return "", &r, r.ItemID, r.ID, nil
}

// writeRecord frames and appends one payload under the write lock (held by
// the caller), returning the record's offset.
func (s *Store) writeRecord(payload []byte) (int64, error) {
	if len(payload) > MaxRecordSize {
		return 0, fmt.Errorf("store: record exceeds max record size (%d bytes)", len(payload))
	}
	var header [headerSize]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.f.WriteAt(header[:], s.size); err != nil {
		return 0, err
	}
	if _, err := s.f.WriteAt(payload, s.size+headerSize); err != nil {
		return 0, err
	}
	offset := s.size
	s.size += headerSize + int64(len(payload))
	if s.pages != nil {
		// Drop the page(s) the append touched: the cached tail page is now
		// short, and refilling on the next read beats a guaranteed
		// length-miss there.
		s.pages.invalidateRange(offset, s.size)
	}
	return offset, nil
}

// livePos returns the index of reviewID in the item's live review list, or
// -1. Items hold tens of reviews, so the linear walk beats maintaining a
// per-review position map through every remove.
func (s *Store) livePos(itemID, reviewID string) int {
	for i, id := range s.idsByItem[itemID] {
		if id == reviewID {
			return i
		}
	}
	return -1
}

// applyAppend replays an append into the live indexes. aspectSeen is the
// scan-time dedup accelerator; nil (runtime) falls back to a postings scan.
func (s *Store) applyAppend(rec *model.Review, offset int64, aspectSeen map[int]map[string]bool) {
	s.byItem[rec.ItemID] = append(s.byItem[rec.ItemID], offset)
	s.idsByItem[rec.ItemID] = append(s.idsByItem[rec.ItemID], rec.ID)
	s.count++
	s.indexAspects(rec, aspectSeen)
}

// applyUpdate replays an update: the live offset of the review is swapped
// for the new record's. Unknown references are a no-op so that replaying a
// foreign or hand-edited log can never fail the open.
func (s *Store) applyUpdate(rec *model.Review, offset int64, aspectSeen map[int]map[string]bool) bool {
	pos := s.livePos(rec.ItemID, rec.ID)
	if pos < 0 {
		return false
	}
	s.byItem[rec.ItemID][pos] = offset
	s.indexAspects(rec, aspectSeen)
	return true
}

// applyRemove replays a remove: the review leaves the live view. Unknown
// references are a no-op (see applyUpdate).
func (s *Store) applyRemove(itemID, reviewID string) bool {
	pos := s.livePos(itemID, reviewID)
	if pos < 0 {
		return false
	}
	offs, ids := s.byItem[itemID], s.idsByItem[itemID]
	s.byItem[itemID] = append(offs[:pos], offs[pos+1:]...)
	s.idsByItem[itemID] = append(ids[:pos], ids[pos+1:]...)
	if len(s.byItem[itemID]) == 0 {
		delete(s.byItem, itemID)
		delete(s.idsByItem, itemID)
	}
	s.count--
	return true
}

// indexAspects unions the review's aspects into the byAspect postings.
func (s *Store) indexAspects(rec *model.Review, aspectSeen map[int]map[string]bool) {
	for _, a := range rec.AspectSet() {
		if aspectSeen != nil {
			seen := aspectSeen[a]
			if seen == nil {
				seen = map[string]bool{}
				aspectSeen[a] = seen
			}
			if !seen[rec.ItemID] {
				seen[rec.ItemID] = true
				s.byAspect[a] = append(s.byAspect[a], rec.ItemID)
			}
			continue
		}
		if !containsString(s.byAspect[a], rec.ItemID) {
			s.byAspect[a] = append(s.byAspect[a], rec.ItemID)
		}
	}
}

// AppendUpdate logs an in-place replacement of an existing review and swaps
// it into the live view. The log is append-only: the old record's bytes
// stay where they are and simply stop being referenced.
func (s *Store) AppendUpdate(rec *model.Review) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.livePos(rec.ItemID, rec.ID) < 0 {
		return fmt.Errorf("store: update of unknown review %q on item %q", rec.ID, rec.ItemID)
	}
	buf := jsonenc.GetBuffer()
	defer jsonenc.PutBuffer(buf)
	env := logEnvelope{Op: opUpdate, Review: rec}
	payload, err := env.marshalAppend(buf.B)
	if err != nil {
		return fmt.Errorf("store: encoding update %q: %w", rec.ID, err)
	}
	buf.B = payload
	offset, err := s.writeRecord(payload)
	if err != nil {
		return err
	}
	s.applyUpdate(rec, offset, nil)
	return nil
}

// AppendRemove logs a tombstone for an existing review and deletes it from
// the live view.
func (s *Store) AppendRemove(itemID, reviewID string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.livePos(itemID, reviewID) < 0 {
		return fmt.Errorf("store: remove of unknown review %q on item %q", reviewID, itemID)
	}
	buf := jsonenc.GetBuffer()
	defer jsonenc.PutBuffer(buf)
	env := logEnvelope{Op: opRemove, ItemID: itemID, ReviewID: reviewID}
	payload, err := env.marshalAppend(buf.B)
	if err != nil {
		return fmt.Errorf("store: encoding tombstone %q: %w", reviewID, err)
	}
	buf.B = payload
	if _, err := s.writeRecord(payload); err != nil {
		return err
	}
	s.applyRemove(itemID, reviewID)
	return nil
}

// AppendMutation logs one model-level corpus mutation: appends append, an
// update updates, a remove tombstones. It is the bridge the serving layer
// uses to make its in-memory mutations durable before applying them.
func (s *Store) AppendMutation(m *model.Mutation) error {
	switch m.Kind {
	case model.MutationAppend:
		for _, id := range m.ReviewIDs {
			r := m.New.ReviewByID(id)
			if r == nil {
				return fmt.Errorf("store: mutation names unknown review %q", id)
			}
			if err := s.Append(r); err != nil {
				return err
			}
		}
		return nil
	case model.MutationUpdate:
		r := m.New.ReviewByID(m.ReviewIDs[0])
		if r == nil {
			return fmt.Errorf("store: mutation names unknown review %q", m.ReviewIDs[0])
		}
		return s.AppendUpdate(r)
	case model.MutationRemove:
		return s.AppendRemove(m.ItemID, m.ReviewIDs[0])
	default:
		return fmt.Errorf("store: unknown mutation kind %v", m.Kind)
	}
}

func containsString(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
