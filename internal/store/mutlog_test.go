package store

import (
	"os"
	"path/filepath"
	"testing"

	"comparesets/internal/model"
)

func rev(item, id string, rating int) *model.Review {
	return &model.Review{ID: id, ItemID: item, Rating: rating,
		Mentions: []model.Mention{{Aspect: rating % 3, Polarity: model.Positive}}}
}

func openTemp(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "mut.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

func itemIDs(t *testing.T, s *Store, item string) []string {
	t.Helper()
	revs, err := s.ItemReviews(item)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(revs))
	for i, r := range revs {
		out[i] = r.ID
	}
	return out
}

func TestUpdateRemoveLiveView(t *testing.T) {
	s, path := openTemp(t)
	for _, r := range []*model.Review{rev("p1", "a", 1), rev("p1", "b", 2), rev("p1", "c", 3), rev("p2", "d", 4)} {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AppendUpdate(rev("p1", "b", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRemove("p1", "a"); err != nil {
		t.Fatal(err)
	}
	check := func(stage string, s *Store) {
		t.Helper()
		if got := itemIDs(t, s, "p1"); len(got) != 2 || got[0] != "b" || got[1] != "c" {
			t.Fatalf("%s: p1 live view = %v", stage, got)
		}
		revs, err := s.ItemReviews("p1")
		if err != nil {
			t.Fatal(err)
		}
		if revs[0].Rating != 5 {
			t.Fatalf("%s: update not visible, rating=%d", stage, revs[0].Rating)
		}
		if got := s.Count(); got != 3 {
			t.Fatalf("%s: count=%d, want 3 live reviews", stage, got)
		}
	}
	check("before reopen", s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay must reconstruct the same live view from the log.
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.DroppedBytes != 0 {
		t.Fatalf("clean log reported recovery: %+v", rec)
	}
	check("after reopen", s2)
}

func TestMutationErrors(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Append(rev("p1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendUpdate(rev("p1", "zzz", 1)); err == nil {
		t.Fatal("update of unknown review must fail")
	}
	if err := s.AppendRemove("p1", "zzz"); err == nil {
		t.Fatal("remove of unknown review must fail")
	}
	if err := s.AppendRemove("nope", "a"); err == nil {
		t.Fatal("remove on unknown item must fail")
	}
	// Failed mutations leave no record behind.
	if got := s.Count(); got != 1 {
		t.Fatalf("count=%d after failed mutations", got)
	}
}

func TestRemoveLastReviewDropsItem(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	if err := s.Append(rev("p1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendRemove("p1", "a"); err != nil {
		t.Fatal(err)
	}
	if got := s.Items(); len(got) != 0 {
		t.Fatalf("items after full removal: %v", got)
	}
	if revs, err := s.ItemReviews("p1"); err != nil || revs != nil {
		t.Fatalf("ItemReviews after removal: %v, %v", revs, err)
	}
}

func TestAppendMutationBridge(t *testing.T) {
	s, _ := openTemp(t)
	defer s.Close()
	c := model.NewCorpus("Test", model.NewVocabulary([]string{"a0", "a1", "a2"}))
	c.AddItem(&model.Item{ID: "p1", Reviews: []*model.Review{rev("p1", "a", 1), rev("p1", "b", 2)}})
	if err := s.AppendCorpus(c); err != nil {
		t.Fatal(err)
	}
	m, err := c.AppendReviews("p1", rev("p1", "c", 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMutation(m); err != nil {
		t.Fatal(err)
	}
	if m, err = c.UpdateReview("p1", rev("p1", "a", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMutation(m); err != nil {
		t.Fatal(err)
	}
	if m, err = c.RemoveReview("p1", "b"); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendMutation(m); err != nil {
		t.Fatal(err)
	}
	got := itemIDs(t, s, "p1")
	if len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Fatalf("bridge live view = %v", got)
	}
	revs, _ := s.ItemReviews("p1")
	if revs[0].Rating != 5 {
		t.Fatalf("bridge update lost: %+v", revs[0])
	}
}

// TestTornMutationTailRecovers crash-truncates a log mid-update and checks
// the open recovers the pre-update state.
func TestTornMutationTailRecovers(t *testing.T) {
	s, path := openTemp(t)
	if err := s.Append(rev("p1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendUpdate(rev("p1", "a", 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the update record: drop its last 3 bytes.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if rec := s2.Recovery(); rec.DroppedRecords != 1 {
		t.Fatalf("recovery = %+v, want 1 dropped record", rec)
	}
	revs, err := s2.ItemReviews("p1")
	if err != nil || len(revs) != 1 {
		t.Fatalf("ItemReviews = %v, %v", revs, err)
	}
	if revs[0].Rating != 1 {
		t.Fatalf("torn update must roll back to rating 1, got %d", revs[0].Rating)
	}
}
