package store

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"hash/crc32"
	"log"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comparesets/internal/faultinject"
)

// encodeRecord frames one payload exactly as the pre-versioning format did:
// [len][crc32c][payload].
func encodeRecord(payload []byte) []byte {
	var header [headerSize]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	return append(header[:], payload...)
}

func TestCleanLogByteIdenticalToLegacyFormat(t *testing.T) {
	// A clean round-trip through the default (legacy) format must produce
	// exactly the bytes the pre-versioning store wrote: no file header, the
	// same record framing.
	s, path := tempStore(t)
	r1, r2 := review("r1", "p1", 0), review("r2", "p2", 1)
	if err := s.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(r2); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, r := range []any{r1, r2} {
		payload, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, encodeRecord(payload)...)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("log bytes differ from legacy format:\n got %x\nwant %x", got, want)
	}
}

func TestV1HeaderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reviews.log")
	s, err := OpenWithOptions(path, OpenOptions{FormatVersion: FormatV1})
	if err != nil {
		t.Fatal(err)
	}
	if s.FormatVersion() != FormatV1 {
		t.Errorf("FormatVersion = %d, want %d", s.FormatVersion(), FormatV1)
	}
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p1", 1))
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < fileHeaderSize || string(data[:4]) != "CSLG" || data[4] != FormatV1 {
		t.Fatalf("v1 header missing: %x", data[:fileHeaderSize])
	}

	// Plain Open (default options) must sniff the header and read it back.
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.FormatVersion() != FormatV1 {
		t.Errorf("reopened FormatVersion = %d, want %d", re.FormatVersion(), FormatV1)
	}
	got, err := re.ItemReviews("p1")
	if err != nil || len(got) != 2 || got[0].ID != "r1" || got[1].ID != "r2" {
		t.Errorf("v1 reviews = %+v err = %v", got, err)
	}
	// Appends land after the header and survive another reopen.
	if err := re.Append(review("r3", "p2", 0)); err != nil {
		t.Fatal(err)
	}
	re.Close()
	re2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	if re2.Count() != 3 {
		t.Errorf("Count after v1 reopen = %d, want 3", re2.Count())
	}
}

func TestUnsupportedFormatVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "reviews.log")
	hdr := []byte{'C', 'S', 'L', 'G', 9, 0, 0, 0}
	if err := os.WriteFile(path, hdr, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "unsupported log format") {
		t.Errorf("Open = %v, want unsupported-version error", err)
	}
	if _, err := OpenWithOptions(path, OpenOptions{FormatVersion: 7}); err == nil {
		t.Error("OpenWithOptions accepted format version 7")
	}
}

func TestBitFlippedMiddleRecordRecovery(t *testing.T) {
	// The acceptance scenario: a log with a bit-flipped middle record AND a
	// torn final record must open, serve every record before the first
	// corruption, and report how much was dropped.
	s, path := tempStore(t)
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p2", 1))
	s.Append(review("r3", "p3", 2))
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Locate record 2's payload and flip a byte in it.
	rec1Len := headerSize + int(binary.BigEndian.Uint32(data[:4]))
	rec2Start := rec1Len
	data[rec2Start+headerSize+4] ^= 0xFF
	// Tear the final record: drop its last 3 bytes.
	data = data[:len(data)-3]
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	var logBuf bytes.Buffer
	re, err := OpenWithOptions(path, OpenOptions{Logger: log.New(&logBuf, "", 0)})
	if err != nil {
		t.Fatalf("Open = %v, want recovery", err)
	}
	defer re.Close()
	if re.Count() != 1 {
		t.Errorf("Count = %d, want 1 (records after first corruption dropped)", re.Count())
	}
	got, err := re.ItemReviews("p1")
	if err != nil || len(got) != 1 || got[0].ID != "r1" {
		t.Errorf("surviving record = %+v err = %v", got, err)
	}
	rec := re.Recovery()
	// Record 2 (bit-flipped) and record 3 (torn) are both gone.
	if rec.DroppedRecords != 2 {
		t.Errorf("DroppedRecords = %d, want 2", rec.DroppedRecords)
	}
	if rec.DroppedBytes != int64(len(data)-rec1Len) {
		t.Errorf("DroppedBytes = %d, want %d", rec.DroppedBytes, len(data)-rec1Len)
	}
	if rec.Reason == "" {
		t.Error("Reason empty")
	}
	if !strings.Contains(logBuf.String(), "dropped 2 record(s)") {
		t.Errorf("recovery not logged: %q", logBuf.String())
	}
	// The corrupt region is truncated, so appends start clean again.
	if err := re.Append(review("r4", "p4", 0)); err != nil {
		t.Fatal(err)
	}
	if got, err := re.ItemReviews("p4"); err != nil || len(got) != 1 {
		t.Errorf("post-recovery append unreadable: %+v err = %v", got, err)
	}
}

func TestItemReviewsRetriesTransientErrors(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	s, _ := tempStore(t)
	s.Append(review("r1", "p1", 0))

	// Two injected transient failures: the third attempt succeeds.
	faultinject.Arm(faultinject.PointStoreRead, faultinject.Fault{
		Mode: faultinject.ModeError, Remaining: 2,
	})
	got, err := s.ItemReviews("p1")
	if err != nil || len(got) != 1 {
		t.Fatalf("ItemReviews = %+v err = %v, want retry success", got, err)
	}
	if s.ReadRetries() != 2 {
		t.Errorf("ReadRetries = %d, want 2", s.ReadRetries())
	}

	// A persistent fault exhausts the attempts and surfaces the injected
	// error.
	faultinject.Arm(faultinject.PointStoreRead, faultinject.Fault{Mode: faultinject.ModeError})
	if _, err := s.ItemReviews("p1"); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("err = %v, want ErrInjected after exhausted retries", err)
	}
	faultinject.Disarm(faultinject.PointStoreRead)

	// Corruption must NOT be retried: it fails fast with ErrCorruptRecord.
	if _, err := s.ItemReviews("p1"); err != nil {
		t.Fatalf("clean read after disarm: %v", err)
	}
}

func TestScanFaultInjection(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	faultinject.Arm(faultinject.PointStoreScan, faultinject.Fault{Mode: faultinject.ModeError})
	if _, err := Open(filepath.Join(t.TempDir(), "x.log")); !errors.Is(err, faultinject.ErrInjected) {
		t.Errorf("Open = %v, want ErrInjected", err)
	}
}
