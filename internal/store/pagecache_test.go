package store

import (
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"comparesets/internal/model"
)

func pageTestReview(item string, i, textLen int) *model.Review {
	return &model.Review{
		ID:     fmt.Sprintf("%s-r%d", item, i),
		ItemID: item, Reviewer: "rev", Rating: 1 + i%5,
		Text: strings.Repeat("x", textLen),
		Mentions: []model.Mention{
			{Aspect: i % 7, Polarity: model.Positive, Score: 0.5},
		},
	}
}

// TestPageCacheHitsAndStats: the second identical read is served from
// cached pages.
func TestPageCacheHitsAndStats(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 20; i++ {
		if err := s.Append(pageTestReview("item-a", i, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.ItemReviews("item-a"); err != nil {
		t.Fatal(err)
	}
	_, missesCold := s.PageCacheStats()
	if missesCold == 0 {
		t.Fatal("cold read should miss")
	}
	hitsBefore, _ := s.PageCacheStats()
	if _, err := s.ItemReviews("item-a"); err != nil {
		t.Fatal(err)
	}
	hitsAfter, missesAfter := s.PageCacheStats()
	if hitsAfter <= hitsBefore {
		t.Fatalf("warm read should hit: hits %d -> %d", hitsBefore, hitsAfter)
	}
	if missesAfter != missesCold {
		t.Fatalf("warm read should not miss: misses %d -> %d", missesCold, missesAfter)
	}
}

// TestPageCacheSeesAppends: records appended after a page is cached are
// visible immediately (tail invalidation + refill).
func TestPageCacheSeesAppends(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for round := 0; round < 50; round++ {
		if err := s.Append(pageTestReview("item-a", round, 50)); err != nil {
			t.Fatal(err)
		}
		got, err := s.ItemReviews("item-a")
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != round+1 {
			t.Fatalf("round %d: got %d reviews", round, len(got))
		}
		if got[round].ID != fmt.Sprintf("item-a-r%d", round) {
			t.Fatalf("round %d: tail review %q", round, got[round].ID)
		}
	}
}

// TestPageCacheStraddlingRecords: reviews larger than a page decode
// correctly through the multi-page assembly path.
func TestPageCacheStraddlingRecords(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Each review's text is ~1.5 pages, so every record straddles.
	for i := 0; i < 6; i++ {
		if err := s.Append(pageTestReview("big", i, pageSize*3/2)); err != nil {
			t.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		got, err := s.ItemReviews("big")
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if len(got) != 6 {
			t.Fatalf("pass %d: got %d reviews", pass, len(got))
		}
		for i, r := range got {
			if len(r.Text) != pageSize*3/2 {
				t.Fatalf("pass %d: review %d text length %d", pass, i, len(r.Text))
			}
		}
	}
}

// TestPageCacheEviction: a tiny budget still serves correct data, just
// with more misses.
func TestPageCacheEviction(t *testing.T) {
	s, err := OpenWithOptions(filepath.Join(t.TempDir(), "log"),
		OpenOptions{PageCacheBytes: 2 * pageSize})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	items := []string{"a", "b", "c", "d"}
	for _, it := range items {
		for i := 0; i < 8; i++ {
			if err := s.Append(pageTestReview(it, i, pageSize/4)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for pass := 0; pass < 3; pass++ {
		for _, it := range items {
			got, err := s.ItemReviews(it)
			if err != nil {
				t.Fatalf("pass %d item %s: %v", pass, it, err)
			}
			if len(got) != 8 {
				t.Fatalf("pass %d item %s: %d reviews", pass, it, len(got))
			}
		}
	}
	// Each shard evicts down to its budget share, but always keeps the
	// page it just inserted — so the residency bound per shard is
	// max(shardBudget, one page).
	perShard := s.pages.shardBudget
	if perShard < pageSize {
		perShard = pageSize
	}
	for i := range s.pages.shards {
		sh := &s.pages.shards[i]
		sh.mu.Lock()
		bytes := sh.bytes
		sh.mu.Unlock()
		if bytes > perShard {
			t.Fatalf("shard %d holds %d bytes, limit %d", i, bytes, perShard)
		}
	}
}

// TestPageCacheDisabledParity: -1 disables the cache and reads fall back
// to the buffered pass with identical results.
func TestPageCacheDisabledParity(t *testing.T) {
	dir := t.TempDir()
	build := func(budget int64, name string) *Store {
		s, err := OpenWithOptions(filepath.Join(dir, name), OpenOptions{PageCacheBytes: budget})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if err := s.Append(pageTestReview("item", i, 200)); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	on, off := build(0, "on"), build(-1, "off")
	defer on.Close()
	defer off.Close()
	if off.pages != nil {
		t.Fatal("negative budget should disable the cache")
	}
	a, err := on.ItemReviews("item")
	if err != nil {
		t.Fatal(err)
	}
	b, err := off.ItemReviews("item")
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("cached %d vs buffered %d reviews", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Text != b[i].Text {
			t.Fatalf("review %d diverges: %q vs %q", i, a[i].ID, b[i].ID)
		}
	}
	hits, misses := off.PageCacheStats()
	if hits != 0 || misses != 0 {
		t.Fatalf("disabled cache reported stats %d/%d", hits, misses)
	}
}

// TestPageCacheConcurrentReadAppend drives readers and an appender at the
// same time; run under -race this covers the cache's locking.
func TestPageCacheConcurrentReadAppend(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "log"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 10; i++ {
		if err := s.Append(pageTestReview("hot", i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := s.ItemReviews("hot")
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if len(got) < 10 {
					t.Errorf("read saw %d reviews", len(got))
					return
				}
			}
		}()
	}
	for i := 10; i < 60; i++ {
		if err := s.Append(pageTestReview("hot", i, 300)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	got, err := s.ItemReviews("hot")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 60 {
		t.Fatalf("final read saw %d reviews, want 60", len(got))
	}
}

// BenchmarkItemReviewsPaged/Buffered measure the hot read path with and
// without the page cache.
func benchmarkItemReviews(b *testing.B, budget int64) {
	s, err := OpenWithOptions(filepath.Join(b.TempDir(), "log"),
		OpenOptions{PageCacheBytes: budget})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 64; i++ {
		if err := s.Append(pageTestReview("hot", i, 400)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := s.ItemReviews("hot"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ItemReviews("hot"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItemReviewsPaged(b *testing.B)    { benchmarkItemReviews(b, 0) }
func BenchmarkItemReviewsBuffered(b *testing.B) { benchmarkItemReviews(b, -1) }
