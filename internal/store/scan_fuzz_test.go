package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzStoreScan corrupts a valid log in fuzz-chosen ways — a byte flip at
// an arbitrary position, then truncation to an arbitrary length — and
// requires that Open never panics, never fails, and always recovers a
// readable prefix whose accounting is consistent with what was dropped.
func FuzzStoreScan(f *testing.F) {
	dir, err := os.MkdirTemp("", "storescanfuzz")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	basePath := filepath.Join(dir, "base.log")
	s, err := Open(basePath)
	if err != nil {
		f.Fatal(err)
	}
	ids := []string{"p1", "p2", "p1", "p3"}
	for i, item := range ids {
		if err := s.Append(review(string(rune('a'+i)), item, i%3)); err != nil {
			f.Fatal(err)
		}
	}
	s.Close()
	base, err := os.ReadFile(basePath)
	if err != nil {
		f.Fatal(err)
	}

	f.Add(uint(0), byte(0xFF), uint(len(base)))
	f.Add(uint(len(base)/2), byte(0x01), uint(len(base)))
	f.Add(uint(len(base)-1), byte(0x80), uint(len(base)-3))
	f.Add(uint(3), byte(0), uint(7)) // truncate into the first header, no flip

	f.Fuzz(func(t *testing.T, flipPos uint, flipMask byte, keep uint) {
		data := append([]byte(nil), base...)
		if len(data) > 0 {
			data[int(flipPos)%len(data)] ^= flipMask
		}
		if int(keep) < len(data) {
			data = data[:keep]
		}
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err != nil {
			// A single byte flip cannot forge the file magic (the clean log
			// starts with a record length prefix), so every corruption of a
			// valid log must be recoverable.
			t.Fatalf("Open failed on corrupted log: %v", err)
		}
		defer st.Close()
		rec := st.Recovery()
		if rec.DroppedBytes > 0 && rec.DroppedRecords < 1 {
			t.Errorf("dropped %d bytes but %d records", rec.DroppedBytes, rec.DroppedRecords)
		}
		if rec.DroppedBytes == 0 && rec.Reason != "" {
			t.Errorf("clean open reported reason %q", rec.Reason)
		}
		if st.Count() > len(ids) {
			t.Errorf("recovered %d records from a %d-record log", st.Count(), len(ids))
		}
		// Everything indexed must be readable: the prefix is intact.
		total := 0
		for _, id := range st.Items() {
			got, err := st.ItemReviews(id)
			if err != nil {
				t.Fatalf("indexed item %q unreadable: %v", id, err)
			}
			total += len(got)
		}
		if total != st.Count() {
			t.Errorf("readable records %d != Count %d", total, st.Count())
		}
		// The log must accept appends after recovery.
		if err := st.Append(review("rz", "pz", 0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if got, err := st.ItemReviews("pz"); err != nil || len(got) != 1 {
			t.Fatalf("post-recovery read: %v %v", got, err)
		}
	})
}
