package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkAppend(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%50), i%5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItemReviews(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%50), i%5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ItemReviews(fmt.Sprintf("p%d", i%50)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkItemReviewsClustered reads an item whose records sit
// back-to-back in the log — the batch reader's best case: one buffered
// sweep, no discards.
func BenchmarkItemReviewsClustered(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for p := 0; p < 20; p++ {
		for i := 0; i < 100; i++ {
			s.Append(review(fmt.Sprintf("p%d-r%d", p, i), fmt.Sprintf("p%d", p), i%5))
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := s.ItemReviews(fmt.Sprintf("p%d", i%20))
		if err != nil || len(rs) != 100 {
			b.Fatalf("got %d reviews, err %v", len(rs), err)
		}
	}
}

// BenchmarkItemReviewsScattered interleaves 50 items round-robin so each
// item's records are maximally spread — the batch reader must discard 49
// foreign records between every hit.
func BenchmarkItemReviewsScattered(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%50), i%5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := s.ItemReviews(fmt.Sprintf("p%d", i%50))
		if err != nil || len(rs) != 40 {
			b.Fatalf("got %d reviews, err %v", len(rs), err)
		}
	}
}

func BenchmarkOpenReindex(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%100), i%8))
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if re.Count() != 2000 {
			b.Fatal("bad count")
		}
		re.Close()
	}
}
