package store

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkAppend(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%50), i%5)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkItemReviews(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1000; i++ {
		s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%50), i%5))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ItemReviews(fmt.Sprintf("p%d", i%50)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOpenReindex(b *testing.B) {
	path := filepath.Join(b.TempDir(), "bench.log")
	s, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		s.Append(review(fmt.Sprintf("r%d", i), fmt.Sprintf("p%d", i%100), i%8))
	}
	s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		re, err := Open(path)
		if err != nil {
			b.Fatal(err)
		}
		if re.Count() != 2000 {
			b.Fatal("bad count")
		}
		re.Close()
	}
}
