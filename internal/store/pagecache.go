// Page-granular read cache over the CSLG log.
//
// ItemReviews previously paid a fresh buffered pass over the file for
// every call: each request re-read and re-CRC'd the same hot log regions
// through a throwaway bufio reader. The page cache keeps fixed-size
// (64 KiB) immutable pages of the log in a sharded LRU with a byte budget,
// so repeated reads of a hot region cost memory copies — and, for records
// that fall inside one page, no copy at all: the decoder borrows a
// subslice of the cached page.
//
// Invalidation leans on the log being append-only:
//
//   - Interior pages are immutable forever; they can never go stale.
//   - The tail page grows. A cached tail page is recognizably stale by
//     its length — a read that needs bytes past the cached extent misses
//     and refills. writeRecord additionally drops pages overlapping the
//     newly written range so the next read refills promptly instead of
//     length-missing first.
//   - Open-time truncation (crash recovery) precedes cache construction,
//     so a cache never sees bytes that were later cut.
//
// Refills replace the map entry with a brand-new page; readers already
// holding a borrowed subslice of the old page keep a consistent view,
// because no page's data is ever mutated after insertion.
package store

import (
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"comparesets/internal/obs"
)

// pageSize is the cache granule. 64 KiB matches the old buffered reader's
// window: one page covers many adjacent records of an item.
const pageSize = 64 << 10

// pageShardCount spreads lock contention across independent LRUs; must be
// a power of two.
const pageShardCount = 8

// DefaultPageCacheBytes is the read-cache budget when OpenOptions leaves
// PageCacheBytes at zero.
const DefaultPageCacheBytes = 8 << 20

// Package-wide page-cache counters on the default registry (shared by all
// stores in the process, like every other comparesets_* metric).
var (
	pageMetricsOnce sync.Once
	pageHitsTotal   *obs.Counter
	pageMissesTotal *obs.Counter
)

func pageMetrics() (hits, misses *obs.Counter) {
	pageMetricsOnce.Do(func() {
		reg := obs.Default()
		pageHitsTotal = reg.Counter("comparesets_store_page_hits_total",
			"CSLG read-path page cache hits.", nil)
		pageMissesTotal = reg.Counter("comparesets_store_page_misses_total",
			"CSLG read-path page cache misses (fills and stale-tail refills).", nil)
	})
	return pageHitsTotal, pageMissesTotal
}

// page is one immutable cached extent of the log:
// file[idx*pageSize : idx*pageSize+len(data)].
type page struct {
	idx        int64
	data       []byte
	prev, next *page // shard LRU list; head is most recently used
}

type pageShard struct {
	mu         sync.Mutex
	pages      map[int64]*page
	head, tail *page
	bytes      int64
}

// pageCache is the store-wide sharded LRU. It reads through f and trusts
// the caller to bound reads by the store's valid size (pages must never
// cover bytes past the last good record).
type pageCache struct {
	f           *os.File
	shardBudget int64
	shards      [pageShardCount]pageShard

	hits, misses       atomic.Uint64 // per-store stats (PageCacheStats)
	hitsCtr, missesCtr *obs.Counter  // process-wide totals (/metrics)
}

func newPageCache(f *os.File, budget int64) *pageCache {
	c := &pageCache{f: f, shardBudget: (budget + pageShardCount - 1) / pageShardCount}
	c.hitsCtr, c.missesCtr = pageMetrics()
	return c
}

// PageCacheStats reports this store's page-cache hit/miss counts since
// open (zero/zero when the cache is disabled).
func (s *Store) PageCacheStats() (hits, misses uint64) {
	if s.pages == nil {
		return 0, 0
	}
	return s.pages.hits.Load(), s.pages.misses.Load()
}

// page returns the cached data of page idx, covering at least need bytes
// from the page start (need ≤ pageSize). size is the store's current valid
// length, bounding how much of the page exists. The returned slice is
// immutable and safe to hold without locks.
func (c *pageCache) page(idx int64, need int, size int64) ([]byte, error) {
	sh := &c.shards[idx&(pageShardCount-1)]
	sh.mu.Lock()
	if p := sh.pages[idx]; p != nil && len(p.data) >= need {
		sh.moveFront(p)
		data := p.data
		sh.mu.Unlock()
		c.hits.Add(1)
		c.hitsCtr.Inc()
		return data, nil
	}
	sh.mu.Unlock()
	c.misses.Add(1)
	c.missesCtr.Inc()

	// Fill outside the shard lock: concurrent readers of one cold page may
	// duplicate the file read, but never block each other on I/O.
	start := idx * pageSize
	end := start + pageSize
	if end > size {
		end = size
	}
	if start+int64(need) > end {
		return nil, fmt.Errorf("read of %d bytes at %d past end of log (%d)", need, start, size)
	}
	data := make([]byte, end-start)
	if _, err := c.f.ReadAt(data, start); err != nil {
		return nil, err
	}
	sh.insert(idx, data, c.shardBudget)
	return data, nil
}

// view returns the n bytes at off, borrowing a cached-page subslice when
// the range sits inside one page, and otherwise assembling into *scratch
// (grown as needed and reused across calls).
func (c *pageCache) view(off int64, n int, size int64, scratch *[]byte) ([]byte, error) {
	if off+int64(n) > size {
		return nil, io.ErrUnexpectedEOF
	}
	idx, rel := off/pageSize, int(off%pageSize)
	if rel+n <= pageSize {
		data, err := c.page(idx, rel+n, size)
		if err != nil {
			return nil, err
		}
		return data[rel : rel+n : rel+n], nil
	}
	if cap(*scratch) < n {
		*scratch = make([]byte, n)
	}
	out := (*scratch)[:n]
	for filled := 0; filled < n; {
		need := pageSize - rel
		if rem := n - filled; rem < need {
			need = rem
		}
		data, err := c.page(idx, rel+need, size)
		if err != nil {
			return nil, err
		}
		copy(out[filled:], data[rel:rel+need])
		filled += need
		idx, rel = idx+1, 0
	}
	return out, nil
}

// invalidateRange drops every page overlapping [from, to). The append path
// calls it after extending the log so the stale-short tail page refills on
// the next read instead of length-missing first.
func (c *pageCache) invalidateRange(from, to int64) {
	if from >= to {
		return
	}
	for idx := from / pageSize; idx <= (to-1)/pageSize; idx++ {
		sh := &c.shards[idx&(pageShardCount-1)]
		sh.mu.Lock()
		if p := sh.pages[idx]; p != nil {
			sh.remove(p)
		}
		sh.mu.Unlock()
	}
}

// insert adds (or replaces) page idx and evicts from the cold end until
// the shard fits its budget. Caller must not hold the shard lock.
func (sh *pageShard) insert(idx int64, data []byte, budget int64) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.pages == nil {
		sh.pages = map[int64]*page{}
	}
	if old := sh.pages[idx]; old != nil {
		sh.remove(old)
	}
	p := &page{idx: idx, data: data}
	sh.pages[idx] = p
	sh.pushFront(p)
	sh.bytes += int64(len(data))
	for sh.bytes > budget && sh.tail != nil && sh.tail != p {
		sh.remove(sh.tail)
	}
}

func (sh *pageShard) pushFront(p *page) {
	p.prev, p.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = p
	}
	sh.head = p
	if sh.tail == nil {
		sh.tail = p
	}
}

func (sh *pageShard) moveFront(p *page) {
	if sh.head == p {
		return
	}
	// Unlink (p is not head, so p.prev != nil).
	p.prev.next = p.next
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		sh.tail = p.prev
	}
	p.prev = nil
	p.next = sh.head
	sh.head.prev = p
	sh.head = p
}

func (sh *pageShard) remove(p *page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else {
		sh.head = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else {
		sh.tail = p.prev
	}
	p.prev, p.next = nil, nil
	delete(sh.pages, p.idx)
	sh.bytes -= int64(len(p.data))
}
