// Package store is a disk-backed review store: an append-only, CRC-checked
// record log with in-memory item and aspect indexes rebuilt on open. At the
// paper's corpus scale (hundreds of thousands of reviews per category,
// Table 2) instances are assembled per target product on demand; the store
// provides exactly that access path — fetch one item's reviews, or the IDs
// of items discussing an aspect — without holding review text for a whole
// category in memory as JSON.
//
// Layout: a single segment file of length-prefixed records
//
//	[4-byte big-endian payload length][4-byte CRC32 (Castagnoli)][payload]
//
// where each payload is one JSON-encoded review. Writes are appended and
// the index is updated atomically under the store lock; a torn tail (e.g.
// from a crash mid-append) is detected on open and truncated away, keeping
// every record before it.
package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"slices"
	"sort"
	"sync"

	"comparesets/internal/model"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the store.
var (
	ErrClosed        = errors.New("store: closed")
	ErrCorruptRecord = errors.New("store: corrupt record")
)

const headerSize = 8 // 4-byte length + 4-byte CRC

// MaxRecordSize bounds a single review payload (1 MiB is orders of
// magnitude above any real review) so a corrupt length prefix cannot force
// a giant allocation.
const MaxRecordSize = 1 << 20

// Store is an open review store.
type Store struct {
	mu   sync.RWMutex
	f    *os.File
	path string
	size int64 // valid bytes (end of last good record)

	// indexes
	byItem   map[string][]int64 // item ID -> record offsets
	byAspect map[int][]string   // aspect -> item IDs (deduplicated)
	count    int
	closed   bool
}

// Open opens (or creates) a store at path, scanning existing records to
// rebuild the indexes. A torn or corrupt tail is truncated; fully corrupt
// interior records abort with ErrCorruptRecord.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		f:        f,
		path:     path,
		byItem:   map[string][]int64{},
		byAspect: map[int][]string{},
	}
	if err := s.scan(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// scan replays the log, indexing every intact record and truncating a torn
// tail.
func (s *Store) scan() error {
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	fileSize := info.Size()
	r := bufio.NewReader(io.NewSectionReader(s.f, 0, fileSize))
	var offset int64
	aspectSeen := map[int]map[string]bool{}
	for {
		var header [headerSize]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err == io.EOF {
				break
			}
			// Torn header: truncate tail.
			break
		}
		length := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecordSize {
			break // corrupt length: treat as torn tail
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, crcTable) != sum {
			break // bit rot or torn write at the tail
		}
		var rec model.Review
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("%w at offset %d: %v", ErrCorruptRecord, offset, err)
		}
		s.index(&rec, offset, aspectSeen)
		offset += headerSize + int64(length)
	}
	s.size = offset
	if offset < fileSize {
		if err := s.f.Truncate(offset); err != nil {
			return fmt.Errorf("store: truncating torn tail: %w", err)
		}
	}
	return nil
}

func (s *Store) index(rec *model.Review, offset int64, aspectSeen map[int]map[string]bool) {
	s.byItem[rec.ItemID] = append(s.byItem[rec.ItemID], offset)
	s.count++
	for _, a := range rec.AspectSet() {
		seen := aspectSeen[a]
		if seen == nil {
			seen = map[string]bool{}
			aspectSeen[a] = seen
		}
		if !seen[rec.ItemID] {
			seen[rec.ItemID] = true
			s.byAspect[a] = append(s.byAspect[a], rec.ItemID)
		}
	}
}

// Append writes a review to the log and indexes it. The record is durable
// in the OS buffer after return; call Sync for fsync semantics.
func (s *Store) Append(rec *model.Review) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: encoding review %q: %w", rec.ID, err)
	}
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: review %q exceeds max record size", rec.ID)
	}
	var header [headerSize]byte
	binary.BigEndian.PutUint32(header[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(header[4:8], crc32.Checksum(payload, crcTable))
	if _, err := s.f.WriteAt(header[:], s.size); err != nil {
		return err
	}
	if _, err := s.f.WriteAt(payload, s.size+headerSize); err != nil {
		return err
	}
	offset := s.size
	s.size += headerSize + int64(len(payload))
	// Update indexes (aspect dedup against the existing posting list).
	s.byItem[rec.ItemID] = append(s.byItem[rec.ItemID], offset)
	s.count++
	for _, a := range rec.AspectSet() {
		if !slices.Contains(s.byAspect[a], rec.ItemID) {
			s.byAspect[a] = append(s.byAspect[a], rec.ItemID)
		}
	}
	return nil
}

// AppendCorpus bulk-loads every review of the corpus.
func (s *Store) AppendCorpus(c *model.Corpus) error {
	for _, id := range c.ItemIDs() {
		for _, r := range c.Items[id].Reviews {
			if err := s.Append(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// itemReviewsBufferSize is the read-ahead window of the batch reader. One
// OS read covers many adjacent records; gaps are skipped with Discard,
// which only refills when the gap outruns the buffer.
const itemReviewsBufferSize = 64 << 10

// ItemReviews fetches all reviews of an item, in append order.
//
// Instead of one positioned read per record, the offsets are visited in
// ascending file order through a single buffered reader: records of one
// item cluster by append time, so a batch usually costs a handful of large
// sequential reads rather than 2×len(offsets) syscalls. Results are
// reordered back to append order on the way out (for this log they
// coincide, since the posting list is built append-only, but the batch
// reader does not rely on that).
func (s *Store) ItemReviews(itemID string) ([]*model.Review, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	offsets := s.byItem[itemID]
	if len(offsets) == 0 {
		return nil, nil
	}
	// order[k] visits the k-th smallest offset; out[order[k].pos] keeps
	// append order in the result.
	type visit struct {
		off int64
		pos int
	}
	order := make([]visit, len(offsets))
	for i, off := range offsets {
		order[i] = visit{off: off, pos: i}
	}
	slices.SortFunc(order, func(a, b visit) int {
		switch {
		case a.off < b.off:
			return -1
		case a.off > b.off:
			return 1
		default:
			return 0
		}
	})

	start := order[0].off
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, start, s.size-start), itemReviewsBufferSize)
	cursor := start
	out := make([]*model.Review, len(offsets))
	var header [headerSize]byte
	for _, v := range order {
		if skip := v.off - cursor; skip > 0 {
			if _, err := r.Discard(int(skip)); err != nil {
				return nil, fmt.Errorf("%w: seeking to %d: %v", ErrCorruptRecord, v.off, err)
			}
			cursor = v.off
		}
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return nil, fmt.Errorf("%w: header at %d: %v", ErrCorruptRecord, v.off, err)
		}
		length := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecordSize {
			return nil, fmt.Errorf("%w: bad length %d at %d", ErrCorruptRecord, length, v.off)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: payload at %d: %v", ErrCorruptRecord, v.off, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("%w: checksum mismatch at %d", ErrCorruptRecord, v.off)
		}
		var rec model.Review
		if err := json.Unmarshal(payload, &rec); err != nil {
			return nil, fmt.Errorf("%w: decode at %d: %v", ErrCorruptRecord, v.off, err)
		}
		out[v.pos] = &rec
		cursor = v.off + headerSize + int64(length)
	}
	return out, nil
}

// ItemsWithAspect returns the sorted IDs of items whose reviews mention the
// aspect.
func (s *Store) ItemsWithAspect(aspect int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]string(nil), s.byAspect[aspect]...)
	sort.Strings(out)
	return out
}

// Items returns the sorted item IDs present in the store.
func (s *Store) Items() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byItem))
	for id := range s.byItem {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of stored reviews.
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Sync fsyncs the underlying file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.f.Sync()
}

// Close syncs and closes the store. Further calls return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
