// Package store is a disk-backed review store: an append-only, CRC-checked
// record log with in-memory item and aspect indexes rebuilt on open. At the
// paper's corpus scale (hundreds of thousands of reviews per category,
// Table 2) instances are assembled per target product on demand; the store
// provides exactly that access path — fetch one item's reviews, or the IDs
// of items discussing an aspect — without holding review text for a whole
// category in memory as JSON.
//
// Layout: a single segment file of length-prefixed records
//
//	[4-byte big-endian payload length][4-byte CRC32 (Castagnoli)][payload]
//
// where each payload is one JSON-encoded review. Two file formats share
// that record framing:
//
//   - legacy (version 0): records start at byte 0 — the format every log
//     written before versioning used, and still the default for new files
//     so clean round-trips stay byte-identical across releases;
//   - version 1: an 8-byte file header ("CSLG", version byte, three
//     reserved zero bytes) precedes the records, giving future format
//     changes a place to declare themselves. Opt in with
//     OpenOptions.FormatVersion; Open reads either format transparently.
//
// The two formats cannot be confused: a legacy log would need a first
// record longer than MaxRecordSize to begin with the header magic.
//
// Crash safety: writes are appended and the index is updated atomically
// under the store lock. On open, scan replays the log and stops at the
// first invalid record — a torn tail from a crash mid-append, a
// bit-flipped payload, a corrupt length — keeping every record before it,
// truncating the rest, and reporting what was dropped (Recovery).
// Transient read errors in ItemReviews are retried with jittered backoff;
// corruption is not.
package store

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"log"
	"math/rand"
	"os"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"comparesets/internal/faultinject"
	"comparesets/internal/jsonenc"
	"comparesets/internal/model"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the store.
var (
	ErrClosed        = errors.New("store: closed")
	ErrCorruptRecord = errors.New("store: corrupt record")
)

const headerSize = 8 // 4-byte length + 4-byte CRC

// File format versions accepted by OpenOptions.FormatVersion.
const (
	// FormatLegacy is the headerless original layout (records at byte 0).
	FormatLegacy = 0
	// FormatV1 prefixes the log with the 8-byte versioned file header.
	FormatV1 = 1
)

// fileMagic introduces the versioned file header; fileHeaderSize is its
// total length (magic + version byte + three reserved zero bytes).
var fileMagic = [4]byte{'C', 'S', 'L', 'G'}

const fileHeaderSize = 8

// MaxRecordSize bounds a single review payload (1 MiB is orders of
// magnitude above any real review) so a corrupt length prefix cannot force
// a giant allocation.
const MaxRecordSize = 1 << 20

// readAttempts bounds ItemReviews retries on transient (non-corruption)
// read errors; backoff doubles from readBackoffBase with up to one base
// unit of jitter per attempt.
const (
	readAttempts    = 3
	readBackoffBase = time.Millisecond
)

// RecoveryStats reports what scan dropped while opening a log.
type RecoveryStats struct {
	// DroppedRecords is the best-effort count of records lost after the
	// first corruption (≥ 1 whenever DroppedBytes > 0). When record
	// framing past the corruption is unreadable the count stops early, so
	// treat it as a lower bound.
	DroppedRecords int
	// DroppedBytes is the exact number of bytes truncated from the tail.
	DroppedBytes int64
	// Reason describes the first corruption encountered ("" for a clean
	// open).
	Reason string
}

// OpenOptions tunes Open.
type OpenOptions struct {
	// FormatVersion selects the file format for newly created (empty)
	// files: FormatLegacy (the default, byte-identical to logs written
	// before versioning) or FormatV1. Existing files keep the format they
	// were written with regardless of this setting.
	FormatVersion int
	// Logger receives a recovery report when scan drops corrupt data; nil
	// discards it.
	Logger *log.Logger
	// PageCacheBytes budgets the read-path page cache: 0 uses
	// DefaultPageCacheBytes, a negative value disables caching (every read
	// goes back to the one-shot buffered pass).
	PageCacheBytes int64
}

// Store is an open review store.
type Store struct {
	mu      sync.RWMutex
	f       *os.File
	path    string
	size    int64 // valid bytes (end of last good record)
	version int   // file format version (FormatLegacy or FormatV1)

	// indexes over the live (post-mutation) view of the log
	byItem    map[string][]int64  // item ID -> live record offsets
	idsByItem map[string][]string // item ID -> live review IDs (parallel to byItem)
	byAspect  map[int][]string    // aspect -> item IDs (deduplicated, append-monotone)
	count     int
	closed    bool

	recovery RecoveryStats
	retries  atomic.Uint64 // transient-read retry count (ItemReviews)

	// pages caches immutable 64 KiB extents of the log for the read path
	// (nil when disabled via OpenOptions.PageCacheBytes < 0).
	pages *pageCache
}

// Open opens (or creates) a store at path with default options, scanning
// existing records to rebuild the indexes. Corruption is never fatal: the
// scan keeps every record before the first invalid one, truncates the
// rest, and reports the loss through Recovery.
func Open(path string) (*Store, error) {
	return OpenWithOptions(path, OpenOptions{})
}

// OpenWithOptions is Open with explicit options.
func OpenWithOptions(path string, opts OpenOptions) (*Store, error) {
	if opts.FormatVersion != FormatLegacy && opts.FormatVersion != FormatV1 {
		return nil, fmt.Errorf("store: unsupported format version %d", opts.FormatVersion)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	s := &Store{
		f:         f,
		path:      path,
		byItem:    map[string][]int64{},
		idsByItem: map[string][]string{},
		byAspect:  map[int][]string{},
	}
	if err := s.scan(opts); err != nil {
		f.Close()
		return nil, err
	}
	// The cache is built after scan so it can never hold bytes past the
	// recovery truncation point.
	if opts.PageCacheBytes >= 0 {
		budget := opts.PageCacheBytes
		if budget == 0 {
			budget = DefaultPageCacheBytes
		}
		s.pages = newPageCache(f, budget)
	}
	if s.recovery.DroppedBytes > 0 && opts.Logger != nil {
		opts.Logger.Printf("store: %s: dropped %d record(s) (%d bytes) past offset %d: %s",
			path, s.recovery.DroppedRecords, s.recovery.DroppedBytes, s.size, s.recovery.Reason)
	}
	return s, nil
}

// scan replays the log, indexing every intact record, stopping at the
// first corruption, and truncating everything past it.
func (s *Store) scan(opts OpenOptions) error {
	if err := faultinject.Check(faultinject.PointStoreScan); err != nil {
		return err
	}
	info, err := s.f.Stat()
	if err != nil {
		return err
	}
	fileSize := info.Size()
	var offset int64
	s.version = FormatLegacy
	if fileSize == 0 {
		// New file: stamp the header if a versioned format was requested.
		if opts.FormatVersion == FormatV1 {
			if err := s.writeFileHeader(); err != nil {
				return err
			}
			s.version = FormatV1
			offset = fileHeaderSize
		}
		s.size = offset
		return nil
	}
	if fileSize >= fileHeaderSize {
		var hdr [fileHeaderSize]byte
		if _, err := s.f.ReadAt(hdr[:], 0); err != nil {
			return err
		}
		if [4]byte(hdr[:4]) == fileMagic {
			version := int(hdr[4])
			if version != FormatV1 {
				return fmt.Errorf("store: %s: unsupported log format version %d", s.path, version)
			}
			s.version = version
			offset = fileHeaderSize
		}
	}
	r := bufio.NewReader(io.NewSectionReader(s.f, offset, fileSize-offset))
	aspectSeen := map[int]map[string]bool{}
	var reason string
	for {
		var header [headerSize]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			if err != io.EOF {
				reason = "torn record header"
			}
			break
		}
		length := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecordSize {
			reason = fmt.Sprintf("implausible record length %d", length)
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			reason = "torn record payload"
			break
		}
		if crc32.Checksum(payload, crcTable) != sum {
			reason = "checksum mismatch"
			break
		}
		op, rec, itemID, reviewID, err := decodeRecord(payload)
		if err != nil {
			reason = fmt.Sprintf("undecodable payload: %v", err)
			break
		}
		switch op {
		case opUpdate:
			s.applyUpdate(rec, offset, aspectSeen)
		case opRemove:
			s.applyRemove(itemID, reviewID)
		default:
			s.applyAppend(rec, offset, aspectSeen)
		}
		offset += headerSize + int64(length)
	}
	s.size = offset
	if offset < fileSize {
		s.recovery = RecoveryStats{
			DroppedRecords: s.countDroppedRecords(offset, fileSize),
			DroppedBytes:   fileSize - offset,
			Reason:         reason,
		}
		if err := s.f.Truncate(offset); err != nil {
			return fmt.Errorf("store: truncating corrupt tail: %w", err)
		}
	}
	return nil
}

// countDroppedRecords walks the record framing past the first corruption
// to estimate how many records the truncation discards. The first dropped
// record's own length field may be corrupt, so the walk stops at the first
// implausible frame; the count is therefore a lower bound, never less
// than 1.
func (s *Store) countDroppedRecords(from, fileSize int64) int {
	count := 0
	r := bufio.NewReader(io.NewSectionReader(s.f, from, fileSize-from))
	for {
		var header [headerSize]byte
		if _, err := io.ReadFull(r, header[:]); err != nil {
			// A trailing fragment too short to be a record still loses
			// (at least the tail of) one record.
			if err != io.EOF {
				count++
			}
			break
		}
		length := binary.BigEndian.Uint32(header[:4])
		if length == 0 || length > MaxRecordSize {
			count++ // unframeable: at least this record is gone
			break
		}
		if _, err := r.Discard(int(length)); err != nil {
			count++ // torn payload
			break
		}
		count++
	}
	if count == 0 {
		count = 1
	}
	return count
}

// writeFileHeader stamps the v1 header on a new empty file.
func (s *Store) writeFileHeader() error {
	var hdr [fileHeaderSize]byte
	copy(hdr[:4], fileMagic[:])
	hdr[4] = FormatV1
	if _, err := s.f.WriteAt(hdr[:], 0); err != nil {
		return fmt.Errorf("store: writing file header: %w", err)
	}
	return nil
}

// Recovery reports what the opening scan dropped (zero values for a clean
// log).
func (s *Store) Recovery() RecoveryStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recovery
}

// FormatVersion returns the file format the open log uses (FormatLegacy
// or FormatV1).
func (s *Store) FormatVersion() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// ReadRetries returns how many transient-read retries ItemReviews has
// performed since open.
func (s *Store) ReadRetries() uint64 { return s.retries.Load() }

// Healthy probes the store for readiness checks: it fails when the store
// is closed or the backing file has become unstattable.
func (s *Store) Healthy() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return ErrClosed
	}
	_, err := s.f.Stat()
	return err
}

// Append writes a review to the log and indexes it. The record is durable
// in the OS buffer after return; call Sync for fsync semantics.
func (s *Store) Append(rec *model.Review) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	buf := jsonenc.GetBuffer()
	defer jsonenc.PutBuffer(buf)
	payload, err := rec.MarshalAppend(buf.B)
	if err != nil {
		return fmt.Errorf("store: encoding review %q: %w", rec.ID, err)
	}
	buf.B = payload
	if len(payload) > MaxRecordSize {
		return fmt.Errorf("store: review %q exceeds max record size", rec.ID)
	}
	offset, err := s.writeRecord(payload)
	if err != nil {
		return err
	}
	s.applyAppend(rec, offset, nil)
	return nil
}

// AppendCorpus bulk-loads every review of the corpus.
func (s *Store) AppendCorpus(c *model.Corpus) error {
	for _, id := range c.ItemIDs() {
		for _, r := range c.Items[id].Reviews {
			if err := s.Append(r); err != nil {
				return err
			}
		}
	}
	return nil
}

// itemReviewsBufferSize is the read-ahead window of the batch reader. One
// OS read covers many adjacent records; gaps are skipped with Discard,
// which only refills when the gap outruns the buffer.
const itemReviewsBufferSize = 64 << 10

// ItemReviews fetches all reviews of an item, in append order.
//
// Instead of one positioned read per record, the offsets are visited in
// ascending file order through a single buffered reader: records of one
// item cluster by append time, so a batch usually costs a handful of large
// sequential reads rather than 2×len(offsets) syscalls. Results are
// reordered back to append order on the way out (for this log they
// coincide, since the posting list is built append-only, but the batch
// reader does not rely on that).
//
// Transient I/O errors are retried up to readAttempts times with doubling,
// jittered backoff; corruption (ErrCorruptRecord) fails immediately —
// rereading rotted bytes cannot help.
func (s *Store) ItemReviews(itemID string) ([]*model.Review, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	offsets := s.byItem[itemID]
	if len(offsets) == 0 {
		return nil, nil
	}
	var lastErr error
	for attempt := 0; attempt < readAttempts; attempt++ {
		if attempt > 0 {
			s.retries.Add(1)
			backoff := readBackoffBase << (attempt - 1)
			time.Sleep(backoff + time.Duration(rand.Int63n(int64(readBackoffBase))))
		}
		if err := faultinject.Check(faultinject.PointStoreRead); err != nil {
			lastErr = err
			continue
		}
		out, err := s.readRecords(offsets)
		if err == nil {
			return out, nil
		}
		lastErr = err
		if errors.Is(err, ErrCorruptRecord) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("store: reading %q after %d attempts: %w", itemID, readAttempts, lastErr)
}

// visit orders a batch read: the k-th smallest offset lands its record at
// out[order[k].pos], keeping append order in the result.
type visit struct {
	off int64
	pos int
}

func sortVisits(offsets []int64) []visit {
	order := make([]visit, len(offsets))
	for i, off := range offsets {
		order[i] = visit{off: off, pos: i}
	}
	slices.SortFunc(order, func(a, b visit) int {
		switch {
		case a.off < b.off:
			return -1
		case a.off > b.off:
			return 1
		default:
			return 0
		}
	})
	return order
}

// readRecords performs one batch-read attempt over the given offsets,
// through the page cache when enabled. Caller holds at least the read
// lock.
func (s *Store) readRecords(offsets []int64) ([]*model.Review, error) {
	if s.pages != nil {
		return s.readRecordsPaged(offsets)
	}
	return s.readRecordsBuffered(offsets)
}

// readRecordsPaged serves a batch from cached log pages. Records that fall
// inside one page are decoded from a borrowed subslice with no copy;
// page-straddling records assemble into one reused scratch buffer.
func (s *Store) readRecordsPaged(offsets []int64) ([]*model.Review, error) {
	order := sortVisits(offsets)
	out := make([]*model.Review, len(offsets))
	var scratch []byte
	for _, v := range order {
		hdr, err := s.pages.view(v.off, headerSize, s.size, &scratch)
		if err != nil {
			return nil, fmt.Errorf("%w: header at %d: %v", ErrCorruptRecord, v.off, err)
		}
		length := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:8])
		if length == 0 || length > MaxRecordSize {
			return nil, fmt.Errorf("%w: bad length %d at %d", ErrCorruptRecord, length, v.off)
		}
		payload, err := s.pages.view(v.off+headerSize, int(length), s.size, &scratch)
		if err != nil {
			return nil, fmt.Errorf("%w: payload at %d: %v", ErrCorruptRecord, v.off, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("%w: checksum mismatch at %d", ErrCorruptRecord, v.off)
		}
		_, rec, _, _, err := decodeRecord(payload)
		if err != nil || rec == nil {
			return nil, fmt.Errorf("%w: decode at %d: %v", ErrCorruptRecord, v.off, err)
		}
		out[v.pos] = rec
	}
	return out, nil
}

// readRecordsBuffered is the cache-off path: one throwaway buffered pass
// in ascending offset order.
func (s *Store) readRecordsBuffered(offsets []int64) ([]*model.Review, error) {
	order := sortVisits(offsets)
	start := order[0].off
	r := bufio.NewReaderSize(io.NewSectionReader(s.f, start, s.size-start), itemReviewsBufferSize)
	cursor := start
	out := make([]*model.Review, len(offsets))
	var header [headerSize]byte
	for _, v := range order {
		if skip := v.off - cursor; skip > 0 {
			if _, err := r.Discard(int(skip)); err != nil {
				return nil, fmt.Errorf("%w: seeking to %d: %v", ErrCorruptRecord, v.off, err)
			}
			cursor = v.off
		}
		if _, err := io.ReadFull(r, header[:]); err != nil {
			return nil, fmt.Errorf("%w: header at %d: %v", ErrCorruptRecord, v.off, err)
		}
		length := binary.BigEndian.Uint32(header[:4])
		sum := binary.BigEndian.Uint32(header[4:8])
		if length == 0 || length > MaxRecordSize {
			return nil, fmt.Errorf("%w: bad length %d at %d", ErrCorruptRecord, length, v.off)
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return nil, fmt.Errorf("%w: payload at %d: %v", ErrCorruptRecord, v.off, err)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return nil, fmt.Errorf("%w: checksum mismatch at %d", ErrCorruptRecord, v.off)
		}
		// A live offset points at an append (raw review) or update
		// (envelope) record; either way the payload carries the review.
		_, rec, _, _, err := decodeRecord(payload)
		if err != nil || rec == nil {
			return nil, fmt.Errorf("%w: decode at %d: %v", ErrCorruptRecord, v.off, err)
		}
		out[v.pos] = rec
		cursor = v.off + headerSize + int64(length)
	}
	return out, nil
}

// ItemsWithAspect returns the sorted IDs of items whose reviews mention the
// aspect.
func (s *Store) ItemsWithAspect(aspect int) []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := append([]string(nil), s.byAspect[aspect]...)
	sort.Strings(out)
	return out
}

// Items returns the sorted item IDs present in the store.
func (s *Store) Items() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byItem))
	for id := range s.byItem {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Count returns the number of live reviews (appends minus removes).
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// Sync fsyncs the underlying file.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return s.f.Sync()
}

// Close syncs and closes the store. Further calls return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}
