package store

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpen feeds arbitrary bytes as a store file: Open must never panic and
// must either succeed (indexing a valid prefix, truncating the rest) or
// fail with a clean error.
func FuzzOpen(f *testing.F) {
	// Seed with a valid two-record log.
	dir, err := os.MkdirTemp("", "storefuzzseed")
	if err != nil {
		f.Fatal(err)
	}
	defer os.RemoveAll(dir)
	seedPath := filepath.Join(dir, "seed.log")
	s, err := Open(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	s.Append(review("r1", "p1", 0))
	s.Append(review("r2", "p2", 1))
	s.Close()
	seed, err := os.ReadFile(seedPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 1, 0xDE, 0xAD, 0xBE, 0xEF, 'x'})
	f.Add(seed[:len(seed)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		st, err := Open(path)
		if err != nil {
			return // clean failure is acceptable
		}
		defer st.Close()
		// Everything indexed must be readable.
		for _, id := range st.Items() {
			if _, err := st.ItemReviews(id); err != nil {
				t.Fatalf("indexed item %q unreadable: %v", id, err)
			}
		}
		// The store must accept appends after recovery.
		if err := st.Append(review("rz", "pz", 0)); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		got, err := st.ItemReviews("pz")
		if err != nil || len(got) != 1 {
			t.Fatalf("post-recovery read: %v %v", got, err)
		}
	})
}
