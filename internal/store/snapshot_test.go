package store

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"comparesets/internal/model"
)

func snapshotCorpus() *model.Corpus {
	c := model.NewCorpus("Cameras", model.NewVocabulary([]string{"lens", "battery"}))
	c.AddItem(&model.Item{ID: "cam-b", Title: "B", Reviews: []*model.Review{
		{ID: "r3", ItemID: "cam-b", Rating: 2, Text: "meh", Mentions: []model.Mention{{Aspect: 1, Polarity: model.Negative, Score: -0.5}}},
	}})
	c.AddItem(&model.Item{ID: "cam-a", Title: "A", AlsoBought: []string{"cam-b"}, Reviews: []*model.Review{
		{ID: "r1", ItemID: "cam-a", Rating: 5, Text: "sharp", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive, Score: 0.9}}},
		{ID: "r2", ItemID: "cam-a", Rating: 4, Text: "ok battery", Mentions: []model.Mention{{Aspect: 1, Polarity: model.Positive, Score: 0.4}}},
	}})
	return c
}

// TestWriteCorpusLogRoundTrip proves snapshot bytes are a well-formed CSLG
// log: Open replays them cleanly and reproduces every review in per-item
// order.
func TestWriteCorpusLogRoundTrip(t *testing.T) {
	c := snapshotCorpus()
	var buf bytes.Buffer
	n, err := WriteCorpusLog(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("wrote %d records, want 3", n)
	}
	path := filepath.Join(t.TempDir(), "snap.cslg")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Recovery().DroppedBytes != 0 {
		t.Fatalf("clean snapshot dropped bytes: %+v", st.Recovery())
	}
	if st.FormatVersion() != FormatV1 {
		t.Errorf("format = %d, want v1", st.FormatVersion())
	}
	if st.Count() != 3 {
		t.Fatalf("replayed %d records, want 3", st.Count())
	}
	revs, err := st.ItemReviews("cam-a")
	if err != nil {
		t.Fatal(err)
	}
	if len(revs) != 2 || revs[0].ID != "r1" || revs[1].ID != "r2" {
		t.Fatalf("cam-a reviews out of order: %+v", revs)
	}
}

// TestWriteCorpusLogTornTailRecovers proves a snapshot truncated
// mid-transfer replays like a crash-torn log: the valid prefix survives,
// the tail is dropped and accounted, and the record count shortfall is
// visible to the joiner.
func TestWriteCorpusLogTornTailRecovers(t *testing.T) {
	c := snapshotCorpus()
	var buf bytes.Buffer
	if _, err := WriteCorpusLog(&buf, c); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncate inside the last record's payload.
	torn := full[:len(full)-7]
	path := filepath.Join(t.TempDir(), "torn.cslg")
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Count() != 2 {
		t.Fatalf("replayed %d records from torn snapshot, want 2", st.Count())
	}
	if st.Recovery().DroppedRecords == 0 {
		t.Error("torn tail not accounted in recovery stats")
	}
}

// TestSnapshotRebuildFingerprintParity locks the property the cluster's
// epoch reconciliation rests on: a corpus rebuilt from its snapshot
// (manifest items + replayed reviews) fingerprints identically to the
// source.
func TestSnapshotRebuildFingerprintParity(t *testing.T) {
	src := snapshotCorpus()
	var buf bytes.Buffer
	if _, err := WriteCorpusLog(&buf, src); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "snap.cslg")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	rebuilt := model.NewCorpus(src.Category, model.NewVocabulary(src.Aspects.Names()))
	for _, id := range src.ItemIDs() {
		it := src.Items[id]
		revs, err := st.ItemReviews(id)
		if err != nil {
			t.Fatal(err)
		}
		rebuilt.AddItem(&model.Item{
			ID: it.ID, Title: it.Title, Category: it.Category, Price: it.Price,
			AlsoBought: it.AlsoBought, Reviews: revs,
		})
	}
	if rebuilt.Fingerprint() != src.Fingerprint() {
		t.Fatalf("rebuilt fingerprint %016x != source %016x", rebuilt.Fingerprint(), src.Fingerprint())
	}
}
