package experiments

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"comparesets/internal/core"
)

var (
	wlOnce sync.Once
	wl     *Workload
	wlErr  error
)

// testWorkload builds one Small workload shared by every test in the
// package (construction dominates test time otherwise).
func testWorkload(t *testing.T) *Workload {
	t.Helper()
	wlOnce.Do(func() {
		wl, wlErr = NewWorkload(42, Small, 6)
	})
	if wlErr != nil {
		t.Fatal(wlErr)
	}
	return wl
}

func TestWorkloadDeterminism(t *testing.T) {
	// Two workloads with the same seed must agree bit-for-bit on dataset
	// statistics and selection outcomes (reproducibility guarantee of
	// DESIGN.md).
	a, err := NewWorkload(7, Small, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorkload(7, Small, 4)
	if err != nil {
		t.Fatal(err)
	}
	ta, tb := Table2(a), Table2(b)
	for i := range ta.Rows {
		if ta.Rows[i] != tb.Rows[i] {
			t.Fatalf("Table2 row %d differs: %+v vs %+v", i, ta.Rows[i], tb.Rows[i])
		}
	}
	sa, err := a.RunSelector(0, core.CompaReSetSPlus{}, Config(3))
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b.RunSelector(0, core.CompaReSetSPlus{}, Config(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sa {
		if sa[i].Objective != sb[i].Objective {
			t.Fatalf("instance %d objectives differ: %v vs %v", i, sa[i].Objective, sb[i].Objective)
		}
	}
}

func TestNewWorkloadShape(t *testing.T) {
	w := testWorkload(t)
	if len(w.Corpora) != 3 || len(w.Instances) != 3 {
		t.Fatalf("corpora = %d, instances = %d", len(w.Corpora), len(w.Instances))
	}
	names := w.DatasetNames()
	if names[0] != "Cellphone" || names[1] != "Toy" || names[2] != "Clothing" {
		t.Errorf("names = %v", names)
	}
	for ds, insts := range w.Instances {
		if len(insts) == 0 || len(insts) > int(Small) {
			t.Errorf("dataset %d: %d instances", ds, len(insts))
		}
		for _, inst := range insts {
			if inst.NumItems() < 3 || inst.NumItems() > 7 {
				t.Errorf("instance has %d items (maxComparative=6)", inst.NumItems())
			}
		}
	}
}

func TestRunSelectorMemoizes(t *testing.T) {
	w := testWorkload(t)
	a, err := w.RunSelector(0, core.CRS{}, Config(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.RunSelector(0, core.CRS{}, Config(3))
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("selections not memoized")
	}
	c, err := w.RunSelector(0, core.CRS{}, Config(5))
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] == &c[0] {
		t.Error("different m shared a cache entry")
	}
}

func TestTable2(t *testing.T) {
	w := testWorkload(t)
	res := Table2(w)
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Products == 0 || r.Reviews == 0 || r.TargetProducts == 0 {
			t.Errorf("row %+v has zero fields", r)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Cellphone") {
		t.Error("render missing Cellphone")
	}
}

func TestTable3ShapeAndOrdering(t *testing.T) {
	w := testWorkload(t)
	res, err := Table3(w, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 15 { // 3 datasets × 5 algorithms
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Shape check per dataset: CompaReSetS+ must beat Random on ROUGE-L
	// for both measurements, and all means must be positive.
	byKey := map[string]Table3Row{}
	for _, row := range res.Rows {
		byKey[row.Dataset+"/"+row.Algorithm] = row
		if row.TargetVs[0].Align.RL <= 0 || row.Among[0].Align.RL <= 0 {
			t.Errorf("%s/%s: non-positive ROUGE-L", row.Dataset, row.Algorithm)
		}
	}
	for _, ds := range w.DatasetNames() {
		plus := byKey[ds+"/CompaReSetS+"]
		random := byKey[ds+"/Random"]
		if plus.TargetVs[0].Align.RL <= random.TargetVs[0].Align.RL {
			t.Errorf("%s: CompaReSetS+ RL %.2f ≤ Random %.2f (target-vs)",
				ds, plus.TargetVs[0].Align.RL, random.TargetVs[0].Align.RL)
		}
		if plus.Among[0].Align.RL <= random.Among[0].Align.RL {
			t.Errorf("%s: CompaReSetS+ RL %.2f ≤ Random %.2f (among)",
				ds, plus.Among[0].Align.RL, random.Among[0].Align.RL)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Among Items") {
		t.Error("render missing part b")
	}
}

func TestTable4Shape(t *testing.T) {
	w := testWorkload(t)
	res, err := Table4(w, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schemes) != 3 || len(res.Algorithms) != 4 {
		t.Fatalf("schemes = %v algorithms = %v", res.Schemes, res.Algorithms)
	}
	for ai := range res.Algorithms {
		for si := range res.Schemes {
			if res.RL[ai][si] <= 0 {
				t.Errorf("RL[%d][%d] = %v", ai, si, res.RL[ai][si])
			}
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "unary-scale") {
		t.Error("render missing scheme")
	}
}

func TestTable4WithLearnedScheme(t *testing.T) {
	w := testWorkload(t)
	res, err := Table4WithLearned(w, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schemes) != 4 || res.Schemes[3] != "efm-learned" {
		t.Fatalf("schemes = %v", res.Schemes)
	}
	for ai := range res.Algorithms {
		if res.RL[ai][3] <= 0 {
			t.Errorf("learned scheme RL[%d] = %v", ai, res.RL[ai][3])
		}
	}
}

func TestTable5GreedyNearOptimal(t *testing.T) {
	w := testWorkload(t)
	res, err := Table5(w, []int{3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OptimalPercent < 99 {
			t.Errorf("%s k=%d: optimal%% = %v (1s budget on tiny graphs)", row.Dataset, row.K, row.OptimalPercent)
		}
		if row.GreedyRatio > 1e-9 {
			t.Errorf("%s: greedy ratio %v > 0 (cannot beat a proven optimum)", row.Dataset, row.GreedyRatio)
		}
		if row.GreedyRatio < -5 {
			t.Errorf("%s: greedy ratio %v unexpectedly poor", row.Dataset, row.GreedyRatio)
		}
		if row.RandomRatio > row.GreedyRatio+1e-9 {
			t.Errorf("%s: random ratio %v better than greedy %v", row.Dataset, row.RandomRatio, row.GreedyRatio)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "#Optimal Solution") {
		t.Error("render missing header")
	}
}

func TestTable6OrderingShape(t *testing.T) {
	w := testWorkload(t)
	res, err := Table6(w, []int{3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 { // 3 datasets × 4 solvers
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]Table6Row{}
	for _, row := range res.Rows {
		byKey[row.Dataset+"/"+row.Solver] = row
	}
	for _, ds := range w.DatasetNames() {
		ilp := byKey[ds+"/TargetHkS_ILP"]
		random := byKey[ds+"/Random"]
		if ilp.Among[0].RL < random.Among[0].RL-0.5 {
			t.Errorf("%s: ILP among-items RL %.2f well below Random %.2f",
				ds, ilp.Among[0].RL, random.Among[0].RL)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	w := testWorkload(t)
	res, err := Table7(w, 3, 5, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byAlg := map[string]Table7Row{}
	for _, row := range res.Rows {
		byAlg[row.Algorithm] = row
		for _, q := range []float64{row.Q1, row.Q2, row.Q3} {
			if q < 1 || q > 5 {
				t.Errorf("%s: Likert mean %v out of range", row.Algorithm, q)
			}
		}
	}
	plus, random := byAlg["CompaReSetS+"], byAlg["Random"]
	if plus.Q1 < random.Q1 || plus.Q3 < random.Q3 {
		t.Errorf("CompaReSetS+ (%v/%v) should not trail Random (%v/%v) on Q1/Q3",
			plus.Q1, plus.Q3, random.Q1, random.Q3)
	}
	// α ordering is noisy with only 9 examples (the paper flags its sample
	// as too small for testing); just require sane values.
	for _, row := range res.Rows {
		if row.Alpha < -1 || row.Alpha > 1 {
			t.Errorf("%s: alpha %v out of range", row.Algorithm, row.Alpha)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Krippendorff") {
		t.Error("render missing alpha column")
	}
}

func TestTableExtended(t *testing.T) {
	w := testWorkload(t)
	res, err := TableExtended(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 21 { // 3 datasets × 7 selectors
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byKey := map[string]ExtendedRow{}
	for _, row := range res.Rows {
		byKey[row.Dataset+"/"+row.Algorithm] = row
		for name, v := range map[string]float64{
			"aspcov": row.AspectCoverage, "opincov": row.OpinionCoverage,
			"divers": row.Diversity, "repres": row.Representativeness,
		} {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("%s/%s: %s = %v out of [0,1]", row.Dataset, row.Algorithm, name, v)
			}
		}
	}
	// Family axes: set-cover wins its own coverage metric vs Random on
	// every dataset.
	for _, ds := range w.DatasetNames() {
		comp := byKey[ds+"/Comprehensive"]
		random := byKey[ds+"/Random"]
		if comp.AspectCoverage <= random.AspectCoverage {
			t.Errorf("%s: Comprehensive coverage %v ≤ Random %v", ds, comp.AspectCoverage, random.AspectCoverage)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "Comprehensive") {
		t.Error("render missing baseline")
	}
	csvShape(t, "extended", res)
}

func TestFigure5Sweeps(t *testing.T) {
	w := testWorkload(t)
	a, err := Figure5a(w, []float64{0.1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Param != "lambda" || len(a.RL) != 3 || len(a.RL[0]) != 2 {
		t.Fatalf("sweep shape: %+v", a)
	}
	b, err := Figure5b(w, []float64{0.1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for ds := range b.RL {
		for vi := range b.RL[ds] {
			if b.RL[ds][vi] <= 0 {
				t.Errorf("mu sweep RL[%d][%d] = %v", ds, vi, b.RL[ds][vi])
			}
		}
	}
	var buf bytes.Buffer
	a.Render(&buf)
	if !strings.Contains(buf.String(), "lambda") {
		t.Error("render missing param name")
	}
}

func TestFigure6Buckets(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure6(w, 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Buckets) == 0 {
		t.Fatal("no buckets")
	}
	total := 0
	for _, b := range res.Buckets {
		total += b.Instances
		if b.Lo > b.Hi {
			t.Errorf("bucket bounds inverted: %+v", b)
		}
	}
	if total != len(w.Instances[0]) {
		t.Errorf("bucket population %d != instances %d", total, len(w.Instances[0]))
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "gap over Random") {
		t.Error("render missing title")
	}
}

func TestFigure7RuntimeShape(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure7(w, 0, []int{3, 6}, []int{3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 { // 2 ns × 1 m × 4 algorithms
		t.Fatalf("points = %d", len(res.Points))
	}
	// CompaReSetS+ should not be faster than CRS at the larger n — it
	// repeats the per-item regression with a bigger target.
	get := func(alg string, n int) time.Duration {
		for _, p := range res.Points {
			if p.Algorithm == alg && p.NumItems == n {
				return p.Mean
			}
		}
		t.Fatalf("missing point %s n=%d", alg, n)
		return 0
	}
	if get("CompaReSetS+", 6) < get("CompaReSetS", 6)/4 {
		t.Error("CompaReSetS+ implausibly fast vs CompaReSetS")
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "runtime") {
		t.Error("render missing header")
	}
}

func TestFigure11InfoLossDecreasesWithM(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure11(w, 0, []int{1, 3, 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("points = %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.LossTarget > first.LossTarget {
		t.Errorf("target loss grew with m: %v → %v", first.LossTarget, last.LossTarget)
	}
	if last.CosTarget < first.CosTarget {
		t.Errorf("target cosine fell with m: %v → %v", first.CosTarget, last.CosTarget)
	}
	for _, p := range res.Points {
		if p.LossAll < p.LossTarget-1e-9 {
			// Comparative items' selections are skewed toward the target,
			// so all-items loss should not be materially lower.
			t.Errorf("m=%d: all-items loss %v < target loss %v", p.M, p.LossAll, p.LossTarget)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "information loss") {
		t.Error("render missing title")
	}
}

func TestCaseStudies(t *testing.T) {
	w := testWorkload(t)
	studies, err := CaseStudies(w, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(studies) != 3 {
		t.Fatalf("studies = %d", len(studies))
	}
	for _, cs := range studies {
		if len(cs.Items) != 3 {
			t.Errorf("%s: %d items", cs.Dataset, len(cs.Items))
		}
		if !cs.Items[0].IsTarget {
			t.Errorf("%s: first item is not the target", cs.Dataset)
		}
		for _, item := range cs.Items {
			if len(item.Reviews) == 0 || len(item.Reviews) > 3 {
				t.Errorf("%s/%s: %d reviews", cs.Dataset, item.Title, len(item.Reviews))
			}
			for _, r := range item.Reviews {
				if r.Text == "" {
					t.Errorf("%s/%s: empty review text", cs.Dataset, item.Title)
				}
			}
		}
		var buf bytes.Buffer
		cs.Render(&buf)
		if !strings.Contains(buf.String(), "this item") {
			t.Error("render missing target marker")
		}
	}
}

func TestAlignmentHelpersRestrictedItems(t *testing.T) {
	w := testWorkload(t)
	sels, err := w.RunSelector(0, core.CompaReSetSPlus{}, Config(3))
	if err != nil {
		t.Fatal(err)
	}
	inst := w.Instances[0][0]
	sets := sels[0].Reviews(inst)
	full := AlignAmongItems(sets, nil)
	restricted := AlignAmongItems(sets, []int{0, 1})
	if full.RL.F1 == 0 && restricted.RL.F1 == 0 {
		t.Skip("degenerate instance with no overlap")
	}
	// Restricting items must change the pair population (usually scores).
	if inst.NumItems() > 2 && full == restricted {
		t.Error("restriction had no effect")
	}
}

func TestSelectionQualityBounds(t *testing.T) {
	w := testWorkload(t)
	sels, err := w.RunSelector(0, core.CompaReSetSPlus{}, Config(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := range sels {
		o, r, c := selectionQuality(w.Instances[0][i], Config(3), sels[i], nil)
		for name, v := range map[string]float64{"overlap": o, "repr": r, "comp": c} {
			if v < 0 || v > 1+1e-9 {
				t.Errorf("instance %d: %s = %v out of [0,1]", i, name, v)
			}
		}
	}
}
