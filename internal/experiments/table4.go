package experiments

import (
	"fmt"
	"io"

	"comparesets/internal/core"
	"comparesets/internal/opinion"
	"comparesets/internal/prefmodel"
	"comparesets/internal/rouge"
)

// Table4Result compares opinion definitions (binary / 3-polarity /
// unary-scale) by target-vs-comparative ROUGE-L on the Cellphone dataset
// with m = 3 (§4.2.3).
type Table4Result struct {
	Schemes    []string
	Algorithms []string
	// RL[ai][si] is the ROUGE-L (×100) of algorithm ai under scheme si.
	RL [][]float64
}

// table4Selectors are the four algorithm rows of Table 4.
func table4Selectors() []core.Selector {
	return []core.Selector{core.CRS{}, core.Greedy{}, core.CompaReSetS{}, core.CompaReSetSPlus{}}
}

// Table4 runs the Table 4 comparison on dataset index ds (0 = Cellphone).
func Table4(w *Workload, ds, m int) (Table4Result, error) {
	return table4(w, ds, m, opinion.Schemes())
}

// Table4WithLearned additionally evaluates the EFM-style learned
// aspect-preference scheme (internal/prefmodel) — the §4.2.3 future-work
// alternative ("learned aspect-level preference vectors from another model
// (e.g., EFM)") the paper leaves unexplored. The model is trained on the
// full corpus before selection.
func Table4WithLearned(w *Workload, ds, m int) (Table4Result, error) {
	model, err := prefmodel.Train(w.Corpora[ds], prefmodel.Config{Seed: w.Seed})
	if err != nil {
		return Table4Result{}, err
	}
	schemes := append(opinion.Schemes(), prefmodel.Scheme{Model: model})
	return table4(w, ds, m, schemes)
}

func table4(w *Workload, ds, m int, schemes []opinion.Scheme) (Table4Result, error) {
	selectors := table4Selectors()
	res := Table4Result{RL: make([][]float64, len(selectors))}
	for _, s := range schemes {
		res.Schemes = append(res.Schemes, s.Name())
	}
	for ai, sel := range selectors {
		res.Algorithms = append(res.Algorithms, sel.Name())
		res.RL[ai] = make([]float64, len(schemes))
		for si, scheme := range schemes {
			cfg := Config(m)
			cfg.Scheme = scheme
			sels, err := w.RunSelector(ds, sel, cfg)
			if err != nil {
				return res, err
			}
			var all []rouge.Result
			for ii, s := range sels {
				t, _ := instanceAlignments(w.Instances[ds][ii], s, nil)
				all = append(all, t)
			}
			res.RL[ai][si] = alignmentFrom(rouge.Average(all)).RL
		}
	}
	return res, nil
}

// Render renders the table in the paper's layout.
func (r Table4Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%-20s", "Algorithm")
	for _, s := range r.Schemes {
		fmt.Fprintf(w, "%14s", s)
	}
	fmt.Fprintln(w)
	for ai, alg := range r.Algorithms {
		fmt.Fprintf(w, "%-20s", alg)
		for si := range r.Schemes {
			fmt.Fprintf(w, "%14.2f", r.RL[ai][si])
		}
		fmt.Fprintln(w)
	}
}
