package experiments

import (
	"bytes"
	"encoding/csv"
	"testing"
	"time"
)

// csvShape checks that a result produces rectangular CSV with a header.
func csvShape(t *testing.T, name string, r CSVRows) {
	t.Helper()
	rows := r.CSV()
	if len(rows) < 1 {
		t.Fatalf("%s: no header", name)
	}
	width := len(rows[0])
	if width == 0 {
		t.Fatalf("%s: empty header", name)
	}
	for i, row := range rows {
		if len(row) != width {
			t.Fatalf("%s: row %d has %d cells, want %d", name, i, len(row), width)
		}
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatalf("%s: WriteCSV: %v", name, err)
	}
	parsed, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("%s: reparse: %v", name, err)
	}
	if len(parsed) != len(rows) {
		t.Fatalf("%s: reparsed %d rows, want %d", name, len(parsed), len(rows))
	}
}

func TestCSVExports(t *testing.T) {
	w := testWorkload(t)

	csvShape(t, "table2", Table2(w))

	t3, err := Table3(w, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "table3", t3)
	if got := len(t3.CSV()); got != 1+15*2 { // header + 15 rows × 2 parts × 1 m
		t.Errorf("table3 csv rows = %d", got)
	}

	t4, err := Table4(w, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "table4", t4)

	t5, err := Table5(w, []int{3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "table5", t5)

	t6, err := Table6(w, []int{3}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "table6", t6)

	t7, err := Table7(w, 2, 3, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "table7", t7)

	f5a, err := Figure5a(w, []float64{0.1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "figure5a", f5a)

	f6, err := Figure6(w, 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "figure6", f6)

	f7, err := Figure7(w, 0, []int{3}, []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "figure7", f7)

	f11, err := Figure11(w, 0, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "figure11", f11)

	csvShape(t, "hks", HkSStress(1, []int{8}, 3, 2, time.Second))

	pa, err := PassesAblation(w, 0, 3, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	csvShape(t, "passes", pa)
}
