package experiments

import (
	"fmt"
	"io"
	"time"

	"comparesets/internal/rouge"
	"comparesets/internal/simgraph"
)

// Table6Row is one (dataset, solver) row across all k values and both
// alignment measurements.
type Table6Row struct {
	Dataset string
	Solver  string
	// TargetVs[ki] and Among[ki] correspond to Ks[ki].
	TargetVs []Alignment
	Among    []Alignment
}

// Table6Result re-evaluates review alignment on the shortlisted core item
// lists (k = m) produced by each TargetHkS solver, all over the same
// CompaReSetS+ review selections for parity (§4.3.2).
type Table6Result struct {
	Ks   []int
	Rows []Table6Row
}

// table6SolverNames lists the row order of Table 6.
var table6SolverNames = []string{"Random", "Top-k similarity", "TargetHkS_Greedy", "TargetHkS_ILP"}

// Table6 runs the core-list alignment comparison.
func Table6(w *Workload, ks []int, budget time.Duration) (Table6Result, error) {
	res := Table6Result{Ks: ks}
	for ds := range w.Corpora {
		rows := make([]Table6Row, len(table6SolverNames))
		for si, name := range table6SolverNames {
			rows[si] = Table6Row{
				Dataset:  w.Corpora[ds].Category,
				Solver:   name,
				TargetVs: make([]Alignment, len(ks)),
				Among:    make([]Alignment, len(ks)),
			}
		}
		for ki, k := range ks {
			sels, graphs, err := shortlistInputs(w, ds, k)
			if err != nil {
				return res, err
			}
			perSolver := make([][2][]rouge.Result, len(table6SolverNames))
			for i, g := range graphs {
				solvers := []simgraph.Solver{
					simgraph.RandomShortlist{Seed: w.Seed + int64(i)},
					simgraph.TopK{},
					simgraph.Greedy{},
					simgraph.Exact{Budget: budget},
				}
				for si, solver := range solvers {
					members := solver.Solve(g, k).Members
					t, a := instanceAlignments(w.Instances[ds][i], sels[i], members)
					perSolver[si][0] = append(perSolver[si][0], t)
					perSolver[si][1] = append(perSolver[si][1], a)
				}
			}
			for si := range table6SolverNames {
				rows[si].TargetVs[ki] = alignmentFrom(rouge.Average(perSolver[si][0]))
				rows[si].Among[ki] = alignmentFrom(rouge.Average(perSolver[si][1]))
			}
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Render renders the table in the paper's layout.
func (r Table6Result) Render(w io.Writer) {
	writePart := func(part string, cells func(Table6Row) []Alignment) {
		fmt.Fprintf(w, "\n(%s)\n%-10s %-18s", part, "Dataset", "Algorithm")
		for _, k := range r.Ks {
			fmt.Fprintf(w, " | k=m=%-2d R-1   R-2   R-L", k)
		}
		fmt.Fprintln(w)
		lastDS := ""
		for _, row := range r.Rows {
			ds := row.Dataset
			if ds == lastDS {
				ds = ""
			} else {
				lastDS = ds
			}
			fmt.Fprintf(w, "%-10s %-18s", ds, row.Solver)
			for _, c := range cells(row) {
				fmt.Fprintf(w, " | %6.2f %5.2f %5.2f", c.R1, c.R2, c.RL)
			}
			fmt.Fprintln(w)
		}
	}
	writePart("a) Target Item vs Comparative Items", func(r Table6Row) []Alignment { return r.TargetVs })
	writePart("b) Among Items", func(r Table6Row) []Alignment { return r.Among })
}
