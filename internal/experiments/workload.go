// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the synthetic substrate: Table 2 (dataset statistics),
// Table 3 (review alignment vs baselines), Table 4 (opinion definitions),
// Table 5 (TargetHkS optimality ratios), Table 6 (core-list alignment),
// Table 7 (simulated user study), Figures 5a/5b (λ and μ sweeps), Figure 6
// (gap vs review count), Figure 7 (runtime vs number of items), Figure 11
// (information loss vs m), and the case studies of Figures 8–10.
//
// Each Table*/Figure* function returns a typed result with a WriteTo printer
// that mirrors the paper's layout. All computations are deterministic for a
// fixed workload seed.
package experiments

import (
	"fmt"
	"sync"

	"comparesets/internal/core"
	"comparesets/internal/datagen"
	"comparesets/internal/dataset"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// Size scales a workload: how many problem instances are evaluated per
// dataset.
type Size int

// Workload sizes. Small keeps unit tests fast; Medium is the default for
// the experiment harness; Large approaches the paper's per-category scale.
const (
	Small  Size = 8
	Medium Size = 30
	Large  Size = 120
)

// DefaultLambda and DefaultMu are the tuned hyperparameters of §4.1.4.
const (
	DefaultLambda = 1.0
	DefaultMu     = 0.1
)

// Workload holds the three evaluation corpora and their problem instances,
// plus a memoized selection cache shared by the tables and figures.
type Workload struct {
	Seed      int64
	Corpora   []*model.Corpus
	Instances [][]*model.Instance // per corpus

	mu    sync.Mutex
	cache map[string][]*core.Selection
}

// NewWorkload generates the three-category workload at the given size.
// maxComparative > 0 truncates every comparison list (0 keeps full lists).
func NewWorkload(seed int64, size Size, maxComparative int) (*Workload, error) {
	w := &Workload{Seed: seed, cache: map[string][]*core.Selection{}}
	for _, cfg := range datagen.DefaultConfigs(seed) {
		corpus, err := datagen.Generate(cfg)
		if err != nil {
			return nil, err
		}
		insts, err := dataset.Instances(corpus, maxComparative, int(size))
		if err != nil {
			return nil, err
		}
		w.Corpora = append(w.Corpora, corpus)
		w.Instances = append(w.Instances, insts)
	}
	return w, nil
}

// ClearCache drops all memoized selections (benchmarks clear between
// iterations so every run measures real work).
func (w *Workload) ClearCache() {
	w.mu.Lock()
	w.cache = map[string][]*core.Selection{}
	w.mu.Unlock()
}

// DatasetNames returns the corpus category names in order.
func (w *Workload) DatasetNames() []string {
	out := make([]string, len(w.Corpora))
	for i, c := range w.Corpora {
		out[i] = c.Category
	}
	return out
}

// Config builds the default selection configuration for a given m.
func Config(m int) core.Config {
	return core.Config{M: m, Lambda: DefaultLambda, Mu: DefaultMu}
}

// RunSelector runs the selector on every instance of dataset ds with the
// given configuration, memoizing by (dataset, selector, config).
func (w *Workload) RunSelector(ds int, sel core.Selector, cfg core.Config) ([]*core.Selection, error) {
	key := cacheKey(ds, sel.Name(), cfg)
	w.mu.Lock()
	if got, ok := w.cache[key]; ok {
		w.mu.Unlock()
		return got, nil
	}
	w.mu.Unlock()
	// Instances are independent (§4.1.1); fan out across cores. SelectAll
	// seeds instance i with cfg.Seed + i, keeping Random deterministic.
	batchCfg := cfg
	batchCfg.Seed = w.Seed
	out, err := core.SelectAll(w.Instances[ds], sel, batchCfg, 0)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s on %s: %w", sel.Name(), w.Corpora[ds].Category, err)
	}
	w.mu.Lock()
	w.cache[key] = out
	w.mu.Unlock()
	return out, nil
}

func cacheKey(ds int, name string, cfg core.Config) string {
	scheme := "binary"
	if cfg.Scheme != nil {
		scheme = cfg.Scheme.Name()
	}
	return fmt.Sprintf("%d|%s|m=%d|l=%g|mu=%g|s=%s|p=%d", ds, name, cfg.M, cfg.Lambda, cfg.Mu, scheme, cfg.Passes)
}

// schemeOf returns the configured scheme with the binary default.
func schemeOf(cfg core.Config) opinion.Scheme {
	if cfg.Scheme == nil {
		return opinion.Binary{}
	}
	return cfg.Scheme
}
