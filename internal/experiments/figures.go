package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/rouge"
	"comparesets/internal/stats"
)

// SweepResult is a hyperparameter sweep (Figures 5a/5b): ROUGE-L
// (target-vs-comparative, ×100) per dataset per parameter value.
type SweepResult struct {
	Param  string
	Values []float64
	// RL[ds][vi] is the score of dataset ds at Values[vi].
	Datasets []string
	RL       [][]float64
}

// Figure5a sweeps λ for CompaReSetS (μ unused) at the given m.
func Figure5a(w *Workload, lambdas []float64, m int) (SweepResult, error) {
	return sweep(w, "lambda", lambdas, m, func(v float64) (core.Selector, core.Config) {
		cfg := Config(m)
		cfg.Lambda = v
		return core.CompaReSetS{}, cfg
	})
}

// Figure5b sweeps μ for CompaReSetS+ with λ = 1 at the given m.
func Figure5b(w *Workload, mus []float64, m int) (SweepResult, error) {
	return sweep(w, "mu", mus, m, func(v float64) (core.Selector, core.Config) {
		cfg := Config(m)
		cfg.Mu = v
		return core.CompaReSetSPlus{}, cfg
	})
}

func sweep(w *Workload, param string, values []float64, m int, build func(float64) (core.Selector, core.Config)) (SweepResult, error) {
	res := SweepResult{Param: param, Values: values, Datasets: w.DatasetNames()}
	res.RL = make([][]float64, len(w.Corpora))
	for ds := range w.Corpora {
		res.RL[ds] = make([]float64, len(values))
		for vi, v := range values {
			sel, cfg := build(v)
			sels, err := w.RunSelector(ds, sel, cfg)
			if err != nil {
				return res, err
			}
			var all []rouge.Result
			for ii, s := range sels {
				t, _ := instanceAlignments(w.Instances[ds][ii], s, nil)
				all = append(all, t)
			}
			res.RL[ds][vi] = alignmentFrom(rouge.Average(all)).RL
		}
	}
	return res, nil
}

// Render renders the sweep as one series per dataset.
func (r SweepResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%-10s", r.Param)
	for _, v := range r.Values {
		fmt.Fprintf(w, "%10g", v)
	}
	fmt.Fprintln(w)
	for ds, name := range r.Datasets {
		fmt.Fprintf(w, "%-10s", name)
		for vi := range r.Values {
			fmt.Fprintf(w, "%10.2f", r.RL[ds][vi])
		}
		fmt.Fprintln(w)
	}
}

// GapBucket is one review-count bucket of Figure 6.
type GapBucket struct {
	// Lo and Hi bound the average per-item review count of the bucket.
	Lo, Hi    float64
	Instances int
	// PlusGap and CrsGap are mean ROUGE-L (×100) differences over Random.
	PlusGapTarget, CrsGapTarget float64 // (a) vs target item
	PlusGapAmong, CrsGapAmong   float64 // (b) among items
}

// Figure6Result is the performance-gap-vs-review-count analysis: the more
// reviews an item has, the more room selection quality has to matter.
type Figure6Result struct {
	Dataset string
	Buckets []GapBucket
}

// Figure6 buckets dataset ds's instances by average reviews per item and
// reports the ROUGE-L gaps of CompaReSetS+ and CRS over Random.
func Figure6(w *Workload, ds, m, numBuckets int) (Figure6Result, error) {
	res := Figure6Result{Dataset: w.Corpora[ds].Category}
	type scores struct{ plusT, crsT, randT, plusA, crsA, randA, reviews float64 }
	insts := w.Instances[ds]
	per := make([]scores, len(insts))

	runs := map[string][]*core.Selection{}
	for _, sel := range []core.Selector{core.CompaReSetSPlus{}, core.CRS{}, core.Random{}} {
		sels, err := w.RunSelector(ds, sel, Config(m))
		if err != nil {
			return res, err
		}
		runs[sel.Name()] = sels
	}
	for i, inst := range insts {
		var total int
		for _, it := range inst.Items {
			total += len(it.Reviews)
		}
		per[i].reviews = float64(total) / float64(inst.NumItems())
		t, a := instanceAlignments(inst, runs["CompaReSetS+"][i], nil)
		per[i].plusT, per[i].plusA = 100*t.RL.F1, 100*a.RL.F1
		t, a = instanceAlignments(inst, runs["Crs"][i], nil)
		per[i].crsT, per[i].crsA = 100*t.RL.F1, 100*a.RL.F1
		t, a = instanceAlignments(inst, runs["Random"][i], nil)
		per[i].randT, per[i].randA = 100*t.RL.F1, 100*a.RL.F1
	}
	// Equal-population buckets over sorted review counts.
	order := make([]int, len(per))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return per[order[a]].reviews < per[order[b]].reviews })
	if numBuckets < 1 {
		numBuckets = 1
	}
	if numBuckets > len(order) {
		numBuckets = len(order)
	}
	for b := 0; b < numBuckets; b++ {
		lo := b * len(order) / numBuckets
		hi := (b + 1) * len(order) / numBuckets
		if lo >= hi {
			continue
		}
		var bucket GapBucket
		bucket.Lo = per[order[lo]].reviews
		bucket.Hi = per[order[hi-1]].reviews
		var plusT, crsT, randT, plusA, crsA, randA []float64
		for _, oi := range order[lo:hi] {
			plusT = append(plusT, per[oi].plusT)
			crsT = append(crsT, per[oi].crsT)
			randT = append(randT, per[oi].randT)
			plusA = append(plusA, per[oi].plusA)
			crsA = append(crsA, per[oi].crsA)
			randA = append(randA, per[oi].randA)
		}
		bucket.Instances = hi - lo
		bucket.PlusGapTarget = stats.Mean(plusT) - stats.Mean(randT)
		bucket.CrsGapTarget = stats.Mean(crsT) - stats.Mean(randT)
		bucket.PlusGapAmong = stats.Mean(plusA) - stats.Mean(randA)
		bucket.CrsGapAmong = stats.Mean(crsA) - stats.Mean(randA)
		res.Buckets = append(res.Buckets, bucket)
	}
	return res, nil
}

// Render renders the gap series.
func (r Figure6Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: ROUGE-L gap over Random by avg #reviews per item\n", r.Dataset)
	fmt.Fprintf(w, "%-16s %5s %14s %12s %14s %12s\n", "bucket", "n", "Plus-Rand (a)", "Crs-Rand (a)", "Plus-Rand (b)", "Crs-Rand (b)")
	for _, b := range r.Buckets {
		fmt.Fprintf(w, "[%5.1f,%5.1f]   %5d %14.3f %12.3f %14.3f %12.3f\n",
			b.Lo, b.Hi, b.Instances, b.PlusGapTarget, b.CrsGapTarget, b.PlusGapAmong, b.CrsGapAmong)
	}
}

// RuntimePoint is one (algorithm, m, n) mean runtime measurement.
type RuntimePoint struct {
	Algorithm string
	M         int
	NumItems  int
	Mean      time.Duration
}

// Figure7Result is the runtime-vs-number-of-items analysis on
// Cellphone-style instances.
type Figure7Result struct {
	Dataset string
	Points  []RuntimePoint
}

// Figure7 measures average selection runtime on instances widened to n
// comparative items, for each algorithm and m. Instances are widened by
// borrowing additional corpus items, mirroring longer also-bought lists.
func Figure7(w *Workload, ds int, ns, ms []int, perPoint int) (Figure7Result, error) {
	res := Figure7Result{Dataset: w.Corpora[ds].Category}
	algs := []core.Selector{core.CRS{}, core.CompaReSetS{}, core.CompaReSetSPlus{}, core.Greedy{}}
	for _, n := range ns {
		insts := widenedInstances(w, ds, n, perPoint)
		for _, m := range ms {
			for _, alg := range algs {
				cfg := Config(m)
				var total time.Duration
				var count int
				for _, inst := range insts {
					start := time.Now()
					if _, err := alg.Select(inst, cfg); err != nil {
						return res, err
					}
					total += time.Since(start)
					count++
				}
				if count == 0 {
					continue
				}
				res.Points = append(res.Points, RuntimePoint{
					Algorithm: alg.Name(), M: m, NumItems: n,
					Mean: total / time.Duration(count),
				})
			}
		}
	}
	return res, nil
}

// widenedInstances builds instances with exactly n comparative items by
// padding also-bought lists with other corpus items (deterministically).
func widenedInstances(w *Workload, ds, n, count int) []*model.Instance {
	corpus := w.Corpora[ds]
	ids := corpus.ItemIDs()
	rng := rand.New(rand.NewSource(w.Seed + int64(n)))
	var out []*model.Instance
	for i := 0; i < count && i < len(w.Instances[ds]); i++ {
		base := w.Instances[ds][i]
		items := append([]*model.Item{}, base.Items...)
		seen := map[string]bool{}
		for _, it := range items {
			seen[it.ID] = true
		}
		for len(items)-1 < n {
			id := ids[rng.Intn(len(ids))]
			if seen[id] {
				continue
			}
			seen[id] = true
			items = append(items, corpus.Items[id])
		}
		if len(items)-1 > n {
			items = items[:n+1]
		}
		out = append(out, &model.Instance{Aspects: base.Aspects, Items: items})
	}
	return out
}

// Render renders mean runtimes grouped by algorithm and m.
func (r Figure7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: mean runtime per instance (seconds)\n", r.Dataset)
	fmt.Fprintf(w, "%-20s %3s %4s %12s\n", "Algorithm", "m", "n", "runtime")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-20s %3d %4d %12.6f\n", p.Algorithm, p.M, p.NumItems, p.Mean.Seconds())
	}
}

// InfoLossPoint is one m value of Figure 11: mean squared opinion loss
// Δ(τᵢ, π(Sᵢ)) and mean cosine similarity, for the target item alone and
// for all items.
type InfoLossPoint struct {
	M          int
	LossTarget float64
	LossAll    float64
	CosTarget  float64
	CosAll     float64
}

// Figure11Result is the information-loss trade-off of §4.6.1.
type Figure11Result struct {
	Dataset string
	Points  []InfoLossPoint
}

// Figure11 measures CompaReSetS+ information loss on dataset ds for each m.
func Figure11(w *Workload, ds int, ms []int) (Figure11Result, error) {
	res := Figure11Result{Dataset: w.Corpora[ds].Category}
	for _, m := range ms {
		cfg := Config(m)
		sels, err := w.RunSelector(ds, core.CompaReSetSPlus{}, cfg)
		if err != nil {
			return res, err
		}
		var lossT, lossA, cosT, cosA []float64
		for i, sel := range sels {
			inst := w.Instances[ds][i]
			tg := core.NewTargets(inst, cfg)
			st := core.Stats(inst, tg, cfg, sel)
			for item, s := range st {
				cos := linalg.Cosine(tg.Tau[item], s.Pi)
				lossA = append(lossA, s.OpinionLoss)
				cosA = append(cosA, cos)
				if item == 0 {
					lossT = append(lossT, s.OpinionLoss)
					cosT = append(cosT, cos)
				}
			}
		}
		res.Points = append(res.Points, InfoLossPoint{
			M:          m,
			LossTarget: stats.Mean(lossT),
			LossAll:    stats.Mean(lossA),
			CosTarget:  stats.Mean(cosT),
			CosAll:     stats.Mean(cosA),
		})
	}
	return res, nil
}

// Render renders the information-loss series.
func (r Figure11Result) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: CompaReSetS+ information loss vs m\n", r.Dataset)
	fmt.Fprintf(w, "%3s %14s %14s %12s %12s\n", "m", "Δ(τ,π) target", "Δ(τ,π) all", "cos target", "cos all")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%3d %14.4f %14.4f %12.4f %12.4f\n", p.M, p.LossTarget, p.LossAll, p.CosTarget, p.CosAll)
	}
}
