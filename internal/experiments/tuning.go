package experiments

import (
	"fmt"
	"io"
)

// TuningResult records the §4.1.4 selection of λ and μ: sweep λ for
// CompaReSetS over the candidate set, fix the winner, then sweep μ for
// CompaReSetS+. Scores are mean target-vs-comparative ROUGE-L across all
// datasets (the criterion the paper tunes on).
type TuningResult struct {
	Candidates   []float64
	LambdaScores []float64
	MuScores     []float64
	BestLambda   float64
	BestMu       float64
}

// Tune reproduces the paper's hyperparameter procedure on the workload.
// Note Figure5b (and this function's μ sweep) holds λ at DefaultLambda, as
// the paper does after its λ sweep landed on 1.
func Tune(w *Workload, candidates []float64, m int) (TuningResult, error) {
	res := TuningResult{Candidates: candidates}
	lambda, err := Figure5a(w, candidates, m)
	if err != nil {
		return res, err
	}
	res.LambdaScores = averageAcrossDatasets(lambda.RL)
	res.BestLambda = candidates[argmax(res.LambdaScores)]

	mu, err := Figure5b(w, candidates, m)
	if err != nil {
		return res, err
	}
	res.MuScores = averageAcrossDatasets(mu.RL)
	res.BestMu = candidates[argmax(res.MuScores)]
	return res, nil
}

func averageAcrossDatasets(rl [][]float64) []float64 {
	if len(rl) == 0 {
		return nil
	}
	out := make([]float64, len(rl[0]))
	for _, series := range rl {
		for i, v := range series {
			out[i] += v
		}
	}
	for i := range out {
		out[i] /= float64(len(rl))
	}
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Render renders the tuning sweep.
func (r TuningResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%-10s", "candidate")
	for _, c := range r.Candidates {
		fmt.Fprintf(w, "%10g", c)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "lambda RL")
	for _, s := range r.LambdaScores {
		fmt.Fprintf(w, "%10.2f", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "mu RL")
	for _, s := range r.MuScores {
		fmt.Fprintf(w, "%10.2f", s)
	}
	fmt.Fprintf(w, "\nbest lambda = %g, best mu = %g\n", r.BestLambda, r.BestMu)
}
