package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSweepChart(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure5a(w, []float64{0.1, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chart()
	if !c.LogX || len(c.Series) != 3 {
		t.Errorf("chart = %+v", c)
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "lambda") {
		t.Error("x label missing")
	}
}

func TestFigure6Charts(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure6(w, 0, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	charts := res.Charts()
	if len(charts) != 2 {
		t.Fatalf("charts = %d", len(charts))
	}
	for _, c := range charts {
		var buf bytes.Buffer
		if err := c.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), "Random") {
			t.Error("series names missing")
		}
	}
}

func TestFigure7Chart(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure7(w, 0, []int{3, 6}, []int{3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Chart(3)
	if len(c.Series) != 4 {
		t.Fatalf("series = %d", len(c.Series))
	}
	for _, s := range c.Series {
		if len(s.X) != 2 {
			t.Errorf("series %s has %d points", s.Name, len(s.X))
		}
	}
	empty := res.Chart(99)
	if len(empty.Series) != 0 {
		t.Errorf("m=99 series = %d", len(empty.Series))
	}
}

func TestFigure11Charts(t *testing.T) {
	w := testWorkload(t)
	res, err := Figure11(w, 0, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	charts := res.Charts()
	if len(charts) != 2 {
		t.Fatalf("charts = %d", len(charts))
	}
	for _, c := range charts {
		var buf bytes.Buffer
		if err := c.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHkSStressChart(t *testing.T) {
	res := HkSStress(1, []int{6, 8}, 3, 2, time.Second)
	c := res.Chart()
	if len(c.Series) != 3 {
		t.Fatalf("series = %d", len(c.Series))
	}
	var buf bytes.Buffer
	if err := c.Render(&buf); err != nil {
		t.Fatal(err)
	}
}
