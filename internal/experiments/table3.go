package experiments

import (
	"fmt"
	"io"

	"comparesets/internal/core"
	"comparesets/internal/rouge"
	"comparesets/internal/stats"
)

// Table3Cell is one (dataset, algorithm, m, measurement) cell: the three
// ROUGE means plus significance stars on each (only ever set on the winning
// algorithm's cells).
type Table3Cell struct {
	Align Alignment
	// Star[i] marks a statistically significant improvement of metric i
	// (R-1, R-2, R-L) over the second-best algorithm (p < 0.05).
	Star [3]bool
}

// Table3Row is one (dataset, algorithm) row across all m values and both
// measurements.
type Table3Row struct {
	Dataset   string
	Algorithm string
	// TargetVs[mi] and Among[mi] correspond to Ms[mi].
	TargetVs []Table3Cell
	Among    []Table3Cell
}

// Table3Result is the full review-alignment comparison (Table 3).
type Table3Result struct {
	Ms   []int
	Rows []Table3Row
}

// Table3 runs all five algorithms for every m on every dataset and measures
// review alignment between the target and comparative items (a) and among
// all items (b), with paired t-tests for the significance stars.
func Table3(w *Workload, ms []int) (Table3Result, error) {
	res := Table3Result{Ms: ms}
	selectors := core.Selectors()
	for ds := range w.Corpora {
		rows := make([]Table3Row, len(selectors))
		for si, sel := range selectors {
			rows[si] = Table3Row{
				Dataset:   w.Corpora[ds].Category,
				Algorithm: sel.Name(),
				TargetVs:  make([]Table3Cell, len(ms)),
				Among:     make([]Table3Cell, len(ms)),
			}
		}
		for mi, m := range ms {
			// Per-instance scores per algorithm for significance testing:
			// perAlg[si][part][metric][instance].
			perAlg := make([][2][3][]float64, len(selectors))
			for si, sel := range selectors {
				sels, err := w.RunSelector(ds, sel, Config(m))
				if err != nil {
					return res, err
				}
				var tAll, aAll []rouge.Result
				for ii, s := range sels {
					t, a := instanceAlignments(w.Instances[ds][ii], s, nil)
					tAll = append(tAll, t)
					aAll = append(aAll, a)
					for part, r := range []rouge.Result{t, a} {
						perAlg[si][part][0] = append(perAlg[si][part][0], r.R1.F1)
						perAlg[si][part][1] = append(perAlg[si][part][1], r.R2.F1)
						perAlg[si][part][2] = append(perAlg[si][part][2], r.RL.F1)
					}
				}
				rows[si].TargetVs[mi] = Table3Cell{Align: alignmentFrom(rouge.Average(tAll))}
				rows[si].Among[mi] = Table3Cell{Align: alignmentFrom(rouge.Average(aAll))}
			}
			// Stars: per part and metric, test the best mean against the
			// runner-up.
			for part := 0; part < 2; part++ {
				for metric := 0; metric < 3; metric++ {
					best, second := -1, -1
					var bestMean, secondMean float64
					for si := range selectors {
						mean := stats.Mean(perAlg[si][part][metric])
						switch {
						case best < 0 || mean > bestMean:
							second, secondMean = best, bestMean
							best, bestMean = si, mean
						case second < 0 || mean > secondMean:
							second, secondMean = si, mean
						}
					}
					if best < 0 || second < 0 {
						continue
					}
					tt, err := stats.PairedTTest(perAlg[best][part][metric], perAlg[second][part][metric])
					if err != nil {
						continue
					}
					if tt.Significant(0.05) {
						if part == 0 {
							rows[best].TargetVs[mi].Star[metric] = true
						} else {
							rows[best].Among[mi].Star[metric] = true
						}
					}
				}
			}
		}
		res.Rows = append(res.Rows, rows...)
	}
	return res, nil
}

// Render renders the table in the paper's layout (scores ×100, stars on
// significant wins).
func (r Table3Result) Render(w io.Writer) {
	header := func(part string) {
		fmt.Fprintf(w, "\n(%s)\n%-10s %-20s", part, "Dataset", "Algorithm")
		for _, m := range r.Ms {
			fmt.Fprintf(w, "  |  m=%-2d R-1    R-2    R-L ", m)
		}
		fmt.Fprintln(w)
	}
	writePart := func(part string, cells func(Table3Row) []Table3Cell) {
		header(part)
		lastDS := ""
		for _, row := range r.Rows {
			ds := row.Dataset
			if ds == lastDS {
				ds = ""
			} else {
				lastDS = ds
			}
			fmt.Fprintf(w, "%-10s %-20s", ds, row.Algorithm)
			for _, c := range cells(row) {
				fmt.Fprintf(w, "  |  %s %s %s",
					starred(c.Align.R1, c.Star[0]),
					starred(c.Align.R2, c.Star[1]),
					starred(c.Align.RL, c.Star[2]))
			}
			fmt.Fprintln(w)
		}
	}
	writePart("a) Target Item vs Comparative Items", func(r Table3Row) []Table3Cell { return r.TargetVs })
	writePart("b) Among Items", func(r Table3Row) []Table3Cell { return r.Among })
}

func starred(v float64, star bool) string {
	if star {
		return fmt.Sprintf("%6.2f*", v)
	}
	return fmt.Sprintf("%6.2f ", v)
}
