package experiments

import (
	"io"

	"comparesets/internal/dataset"
)

// Table2Result holds the dataset statistics of Table 2.
type Table2Result struct {
	Rows []dataset.Stats
}

// Table2 computes the statistics of every workload corpus.
func Table2(w *Workload) Table2Result {
	var res Table2Result
	for _, c := range w.Corpora {
		res.Rows = append(res.Rows, dataset.Compute(c))
	}
	return res
}

// Render renders the table in the paper's layout.
func (r Table2Result) Render(w io.Writer) {
	dataset.WriteTable(w, r.Rows)
}
