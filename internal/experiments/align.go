package experiments

import (
	"comparesets/internal/core"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
	"comparesets/internal/rouge"
)

// Alignment is the averaged ROUGE F1 triple of one measurement, on the
// paper's ×100 scale.
type Alignment struct {
	R1, R2, RL float64
}

func alignmentFrom(r rouge.Result) Alignment {
	return Alignment{R1: 100 * r.R1.F1, R2: 100 * r.R2.F1, RL: 100 * r.RL.F1}
}

// tokensOf pre-tokenizes every selected review of every item.
func tokensOf(sets [][]*model.Review) [][][]string {
	out := make([][][]string, len(sets))
	for i, set := range sets {
		out[i] = make([][]string, len(set))
		for j, r := range set {
			out[i][j] = rouge.Tokenize(r.Text)
		}
	}
	return out
}

// AlignTargetVsComparative measures how the comparative items' selected
// reviews align with the target item's (§4.2.1): the mean pairwise ROUGE
// between each target-set review and each comparative-set review.
// onlyItems, when non-nil, restricts which item positions participate
// (Table 6 evaluates shortlists); position 0 must be present.
func AlignTargetVsComparative(sets [][]*model.Review, onlyItems []int) rouge.Result {
	toks := tokensOf(sets)
	var results []rouge.Result
	items := itemPositions(len(sets), onlyItems)
	for _, j := range items {
		if j == 0 {
			continue
		}
		for _, a := range toks[0] {
			for _, b := range toks[j] {
				results = append(results, rouge.CompareTokens(b, a))
			}
		}
	}
	return rouge.Average(results)
}

// AlignAmongItems measures the alignment among all items' selected reviews
// (§4.2.2): the mean pairwise ROUGE over review pairs from distinct items.
func AlignAmongItems(sets [][]*model.Review, onlyItems []int) rouge.Result {
	toks := tokensOf(sets)
	var results []rouge.Result
	items := itemPositions(len(sets), onlyItems)
	for ai := 0; ai < len(items); ai++ {
		for bi := ai + 1; bi < len(items); bi++ {
			for _, a := range toks[items[ai]] {
				for _, b := range toks[items[bi]] {
					results = append(results, rouge.CompareTokens(a, b))
				}
			}
		}
	}
	return rouge.Average(results)
}

func itemPositions(n int, only []int) []int {
	if only != nil {
		return only
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// instanceAlignments computes both alignment measurements for one instance
// selection, restricted to onlyItems when non-nil.
func instanceAlignments(inst *model.Instance, sel *core.Selection, onlyItems []int) (target, among rouge.Result) {
	sets := sel.Reviews(inst)
	return AlignTargetVsComparative(sets, onlyItems), AlignAmongItems(sets, onlyItems)
}

// selectionQuality computes the measurable qualities driving the simulated
// user study (Table 7) for one instance selection over the given item
// positions: shared-aspect fraction, opinion representativeness, and mean
// pairwise aspect-distribution similarity.
func selectionQuality(inst *model.Instance, cfg core.Config, sel *core.Selection, onlyItems []int) (overlap, repr, comp float64) {
	z := inst.Aspects.Len()
	sch := schemeOf(cfg)
	sets := sel.Reviews(inst)
	items := itemPositions(len(sets), onlyItems)

	// Overlap: |aspects in every item's set| / |aspects in any set|.
	inAll := make([]bool, z)
	inAny := make([]bool, z)
	for a := 0; a < z; a++ {
		inAll[a] = true
	}
	for _, i := range items {
		present := make([]bool, z)
		for _, r := range sets[i] {
			for _, a := range r.AspectSet() {
				present[a] = true
			}
		}
		for a := 0; a < z; a++ {
			inAll[a] = inAll[a] && present[a]
			inAny[a] = inAny[a] || present[a]
		}
	}
	var all, any float64
	for a := 0; a < z; a++ {
		if inAll[a] {
			all++
		}
		if inAny[a] {
			any++
		}
	}
	if any > 0 {
		overlap = all / any
	}

	// Representativeness: mean cosine(τᵢ, π(Sᵢ)).
	var cosSum float64
	for _, i := range items {
		tau := sch.Vector(inst.Items[i].Reviews, z)
		pi := sch.Vector(sets[i], z)
		cosSum += linalg.Cosine(tau, pi)
	}
	repr = cosSum / float64(len(items))

	// Comparability: mean pairwise cosine(φ(Sᵢ), φ(Sⱼ)).
	var pairSum float64
	var pairs int
	for ai := 0; ai < len(items); ai++ {
		for bi := ai + 1; bi < len(items); bi++ {
			pi := opinion.AspectVector(sets[items[ai]], z)
			pj := opinion.AspectVector(sets[items[bi]], z)
			pairSum += linalg.Cosine(pi, pj)
			pairs++
		}
	}
	if pairs > 0 {
		comp = pairSum / float64(pairs)
	}
	return overlap, repr, comp
}
