package experiments

import (
	"fmt"
	"io"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/simgraph"
)

// Table5Row is one (dataset, k) row of Table 5: the fraction of instances
// the exact solver proved optimal within its budget, and the objective-value
// ratios (Eq. 8) of the greedy and random approximations against it.
type Table5Row struct {
	Dataset        string
	K              int
	OptimalPercent float64
	GreedyRatio    float64 // (Ω_greedy − Ω_ILP) / Ω_ILP, in percent
	RandomRatio    float64
}

// Table5Result is the TargetHkS optimal-vs-approximation comparison.
type Table5Result struct {
	Budget time.Duration
	Rows   []Table5Row
}

// shortlistInputs runs CompaReSetS+ with m = k and builds the per-instance
// similarity graphs (§3.1). Shared by Tables 5 and 6.
func shortlistInputs(w *Workload, ds, k int) ([]*core.Selection, []*simgraph.Graph, error) {
	cfg := Config(k) // k = m for simplicity (§4.1.4)
	sels, err := w.RunSelector(ds, core.CompaReSetSPlus{}, cfg)
	if err != nil {
		return nil, nil, err
	}
	graphs := make([]*simgraph.Graph, len(sels))
	for i, sel := range sels {
		inst := w.Instances[ds][i]
		tg := core.NewTargets(inst, cfg)
		graphs[i] = simgraph.Build(core.Stats(inst, tg, cfg, sel), cfg)
	}
	return sels, graphs, nil
}

// Table5 evaluates TargetHkS_Greedy and Random against the exact solver
// under the given time budget for every dataset and k.
func Table5(w *Workload, ks []int, budget time.Duration) (Table5Result, error) {
	res := Table5Result{Budget: budget}
	for ds := range w.Corpora {
		for _, k := range ks {
			_, graphs, err := shortlistInputs(w, ds, k)
			if err != nil {
				return res, err
			}
			var optimal, total float64
			var ilpSum, greedySum, randomSum float64
			for i, g := range graphs {
				if g.N() < 2 {
					continue
				}
				total++
				ilp := (simgraph.Exact{Budget: budget}).Solve(g, k)
				if ilp.Optimal {
					optimal++
				}
				greedy := (simgraph.Greedy{}).Solve(g, k)
				random := (simgraph.RandomShortlist{Seed: w.Seed + int64(i)}).Solve(g, k)
				ilpSum += ilp.Weight
				greedySum += greedy.Weight
				randomSum += random.Weight
			}
			row := Table5Row{Dataset: w.Corpora[ds].Category, K: k}
			if total > 0 {
				row.OptimalPercent = 100 * optimal / total
			}
			if ilpSum > 0 {
				row.GreedyRatio = 100 * (greedySum - ilpSum) / ilpSum
				row.RandomRatio = 100 * (randomSum - ilpSum) / ilpSum
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

// Render renders the table in the paper's layout.
func (r Table5Result) Render(w io.Writer) {
	fmt.Fprintf(w, "(exact-solver budget %v)\n", r.Budget)
	fmt.Fprintf(w, "%-10s %3s %18s %22s %12s\n", "Dataset", "k", "#Optimal Solution", "TargetHkS_Greedy", "Random")
	lastDS := ""
	for _, row := range r.Rows {
		ds := row.Dataset
		if ds == lastDS {
			ds = ""
		} else {
			lastDS = ds
		}
		fmt.Fprintf(w, "%-10s %3d %17.2f%% %21.5f%% %11.2f%%\n",
			ds, row.K, row.OptimalPercent, row.GreedyRatio, row.RandomRatio)
	}
}
