package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/rouge"
	"comparesets/internal/simgraph"
	"comparesets/internal/stats"
)

// HkSStressRow is one graph size of the TargetHkS stress ablation.
type HkSStressRow struct {
	N              int
	OptimalPercent float64
	// Ratios are objective-value ratios vs the exact solver (Eq. 8 style,
	// percent; 0 means matching the incumbent/optimum).
	GreedyRatio      float64
	LocalSearchRatio float64
	RemovalRatio     float64
	TopKRatio        float64
	RandomRatio      float64
	MeanExactTime    time.Duration
}

// HkSStressResult probes where the exact solver stops proving optimality
// within its budget as graphs grow — the regime behind the paper's
// "#Optimal Solution < 100%" rows (their Gurobi runs hit a 60 s cap on
// 25–34-item lists; our branch and bound needs larger random graphs before
// the budget binds).
type HkSStressResult struct {
	K         int
	Budget    time.Duration
	Instances int
	Rows      []HkSStressRow
}

// HkSStress runs the stress ablation on random complete graphs with
// uniform [0,1) weights (the hardest case for the completion bound).
func HkSStress(seed int64, ns []int, k, instances int, budget time.Duration) HkSStressResult {
	res := HkSStressResult{K: k, Budget: budget, Instances: instances}
	for _, n := range ns {
		row := HkSStressRow{N: n}
		var exactSum, greedySum, lsSum, removalSum, topkSum, randSum float64
		var elapsed time.Duration
		for inst := 0; inst < instances; inst++ {
			rng := rand.New(rand.NewSource(seed + int64(1000*n+inst)))
			g := simgraph.NewGraph(n)
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					g.SetWeight(i, j, rng.Float64())
				}
			}
			start := time.Now()
			exact := (simgraph.Exact{Budget: budget}).Solve(g, k)
			elapsed += time.Since(start)
			if exact.Optimal {
				row.OptimalPercent++
			}
			exactSum += exact.Weight
			greedySum += (simgraph.Greedy{}).Solve(g, k).Weight
			lsSum += (simgraph.LocalSearch{}).Solve(g, k).Weight
			removalSum += (simgraph.GreedyRemoval{}).Solve(g, k).Weight
			topkSum += (simgraph.TopK{}).Solve(g, k).Weight
			randSum += (simgraph.RandomShortlist{Seed: seed + int64(inst)}).Solve(g, k).Weight
		}
		row.OptimalPercent *= 100 / float64(instances)
		ratio := func(s float64) float64 { return 100 * (s - exactSum) / exactSum }
		row.GreedyRatio = ratio(greedySum)
		row.LocalSearchRatio = ratio(lsSum)
		row.RemovalRatio = ratio(removalSum)
		row.TopKRatio = ratio(topkSum)
		row.RandomRatio = ratio(randSum)
		row.MeanExactTime = elapsed / time.Duration(instances)
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Render renders the stress table.
func (r HkSStressResult) Render(w io.Writer) {
	fmt.Fprintf(w, "TargetHkS stress: k=%d, budget %v, %d random graphs per size\n", r.K, r.Budget, r.Instances)
	fmt.Fprintf(w, "%4s %9s %9s %11s %9s %9s %9s %12s\n",
		"n", "optimal%", "greedy%", "localsrch%", "removal%", "topk%", "random%", "exact time")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%4d %8.1f%% %8.3f%% %10.3f%% %8.2f%% %8.2f%% %8.2f%% %12v\n",
			row.N, row.OptimalPercent, row.GreedyRatio, row.LocalSearchRatio,
			row.RemovalRatio, row.TopKRatio, row.RandomRatio, row.MeanExactTime)
	}
}

// PassesRow is one sweep count of the CompaReSetS+ passes ablation.
type PassesRow struct {
	Passes    int
	Objective float64 // mean Eq. 5 objective per instance
	TargetRL  float64 // target-vs-comparative ROUGE-L ×100
	AmongRL   float64 // among-items ROUGE-L ×100
	MeanTime  time.Duration
}

// PassesResult is the ablation of Algorithm 1's alternating sweep count
// (the paper runs a single sweep; more sweeps can only lower Eq. 5).
type PassesResult struct {
	Dataset string
	M       int
	Rows    []PassesRow
}

// PassesAblation measures objective and alignment as sweeps increase.
func PassesAblation(w *Workload, ds, m int, passes []int) (PassesResult, error) {
	res := PassesResult{Dataset: w.Corpora[ds].Category, M: m}
	for _, p := range passes {
		cfg := Config(m)
		cfg.Passes = p
		start := time.Now()
		sels, err := w.RunSelector(ds, core.CompaReSetSPlus{}, cfg)
		if err != nil {
			return res, err
		}
		elapsed := time.Since(start)
		var objs []float64
		var tAll, aAll []rouge.Result
		for i, sel := range sels {
			objs = append(objs, sel.Objective)
			t, a := instanceAlignments(w.Instances[ds][i], sel, nil)
			tAll = append(tAll, t)
			aAll = append(aAll, a)
		}
		res.Rows = append(res.Rows, PassesRow{
			Passes:    p,
			Objective: stats.Mean(objs),
			TargetRL:  alignmentFrom(rouge.Average(tAll)).RL,
			AmongRL:   alignmentFrom(rouge.Average(aAll)).RL,
			MeanTime:  elapsed / time.Duration(len(sels)),
		})
	}
	return res, nil
}

// Render renders the passes ablation.
func (r PassesResult) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: CompaReSetS+ sweeps ablation (m=%d)\n", r.Dataset, r.M)
	fmt.Fprintf(w, "%7s %12s %10s %10s %12s\n", "passes", "Eq5 obj", "R-L (a)", "R-L (b)", "time/inst")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%7d %12.4f %10.2f %10.2f %12v\n",
			row.Passes, row.Objective, row.TargetRL, row.AmongRL, row.MeanTime)
	}
}

// LambdaZeroRow contrasts CompaReSetS against its λ=0 degenerate (which is
// CRS per §2.2) — the ablation validating that the Γ aspect term is what
// buys cross-item alignment.
type LambdaZeroRow struct {
	Dataset            string
	WithGamma, NoGamma float64 // target-vs-comparative ROUGE-L ×100
}

// LambdaAblation runs the λ-term ablation on every dataset.
func LambdaAblation(w *Workload, m int) ([]LambdaZeroRow, error) {
	var rows []LambdaZeroRow
	for ds := range w.Corpora {
		row := LambdaZeroRow{Dataset: w.Corpora[ds].Category}
		for _, lambda := range []float64{DefaultLambda, 0} {
			cfg := Config(m)
			cfg.Lambda = lambda
			sels, err := w.RunSelector(ds, core.CompaReSetS{}, cfg)
			if err != nil {
				return nil, err
			}
			var tAll []rouge.Result
			for i, sel := range sels {
				t, _ := instanceAlignments(w.Instances[ds][i], sel, nil)
				tAll = append(tAll, t)
			}
			rl := alignmentFrom(rouge.Average(tAll)).RL
			if lambda == 0 {
				row.NoGamma = rl
			} else {
				row.WithGamma = rl
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}
