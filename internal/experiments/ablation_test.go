package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestHkSStressSmallGraphsAllOptimal(t *testing.T) {
	res := HkSStress(7, []int{8, 12}, 4, 5, time.Second)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.OptimalPercent != 100 {
			t.Errorf("n=%d: optimal%% = %v with a 1s budget", row.N, row.OptimalPercent)
		}
		// No heuristic may beat the proven optimum.
		for name, ratio := range map[string]float64{
			"greedy": row.GreedyRatio, "local": row.LocalSearchRatio,
			"removal": row.RemovalRatio, "topk": row.TopKRatio, "random": row.RandomRatio,
		} {
			if ratio > 1e-9 {
				t.Errorf("n=%d: %s ratio %v > 0", row.N, name, ratio)
			}
		}
		// Hierarchy: local search ≥ greedy ≥ random in aggregate.
		if row.LocalSearchRatio < row.GreedyRatio-1e-9 {
			t.Errorf("n=%d: local search %v below its greedy seed %v", row.N, row.LocalSearchRatio, row.GreedyRatio)
		}
		if row.RandomRatio > row.GreedyRatio+1e-9 {
			t.Errorf("n=%d: random %v above greedy %v", row.N, row.RandomRatio, row.GreedyRatio)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "TargetHkS stress") {
		t.Error("render missing title")
	}
}

func TestHkSStressBudgetBinds(t *testing.T) {
	// With a microscopic budget on larger graphs, optimality proofs must
	// start failing while incumbents stay valid. Unlike the paper's Gurobi
	// (which greedy occasionally beat on timeout, Table 5 Toy k=10), our
	// exact solver seeds its incumbent with the greedy solution, so the
	// greedy ratio stays ≤ 0 even when the budget binds.
	res := HkSStress(7, []int{30}, 10, 3, 200*time.Microsecond)
	row := res.Rows[0]
	if row.OptimalPercent == 100 {
		t.Skip("solver proved optimality within 200µs on n=30; machine too fast for this probe")
	}
	if row.GreedyRatio > 1e-9 {
		t.Errorf("greedy ratio %v > 0: incumbent fell below its greedy seed", row.GreedyRatio)
	}
}

func TestPassesAblationMonotoneObjective(t *testing.T) {
	w := testWorkload(t)
	res, err := PassesAblation(w, 0, 3, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Objective > res.Rows[i-1].Objective+1e-9 {
			t.Errorf("objective rose from %v to %v at %d passes",
				res.Rows[i-1].Objective, res.Rows[i].Objective, res.Rows[i].Passes)
		}
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "sweeps ablation") {
		t.Error("render missing title")
	}
}

func TestTuneFollowsSweepWinners(t *testing.T) {
	w := testWorkload(t)
	cands := []float64{0.1, 1}
	res, err := Tune(w, cands, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.LambdaScores) != 2 || len(res.MuScores) != 2 {
		t.Fatalf("scores = %v / %v", res.LambdaScores, res.MuScores)
	}
	// The reported best must actually be the argmax of its sweep.
	if res.LambdaScores[0] > res.LambdaScores[1] && res.BestLambda != cands[0] {
		t.Errorf("best lambda %v does not match winning score", res.BestLambda)
	}
	if res.LambdaScores[1] >= res.LambdaScores[0] && res.BestLambda != cands[1] {
		t.Errorf("best lambda %v does not match winning score", res.BestLambda)
	}
	var buf bytes.Buffer
	res.Render(&buf)
	if !strings.Contains(buf.String(), "best lambda") {
		t.Error("render missing summary")
	}
}

func TestSurveysBlindAndRotated(t *testing.T) {
	w := testWorkload(t)
	surveys, err := Surveys(w, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(surveys) != 3 {
		t.Fatalf("surveys = %d", len(surveys))
	}
	nExamples := len(surveys[0].Examples)
	if nExamples == 0 {
		t.Fatal("no examples")
	}
	for _, s := range surveys {
		if len(s.Examples) != nExamples || len(s.AnswerKey) != nExamples {
			t.Fatalf("survey %d: %d examples, %d key entries", s.Number, len(s.Examples), len(s.AnswerKey))
		}
		for i, ex := range s.Examples {
			if ex.Algorithm != s.AnswerKey[i] {
				t.Errorf("survey %d example %d: key mismatch", s.Number, i+1)
			}
			if len(ex.Items) != 3 {
				t.Errorf("survey %d example %d: %d items", s.Number, i+1, len(ex.Items))
			}
			for _, item := range ex.Items {
				if len(item.Reviews) != 3 {
					t.Errorf("survey %d example %d: item with %d reviews (parity requires 3)",
						s.Number, i+1, len(item.Reviews))
				}
			}
		}
		// The participant sheet must not leak algorithm names.
		var sheet bytes.Buffer
		s.Render(&sheet)
		for _, name := range []string{"CompaReSetS", "Crs", "Random"} {
			if strings.Contains(sheet.String(), name) {
				t.Errorf("survey %d sheet leaks algorithm %q", s.Number, name)
			}
		}
		var key bytes.Buffer
		s.RenderAnswerKey(&key)
		if !strings.Contains(key.String(), "CompaReSetS+") {
			t.Errorf("survey %d key missing algorithms", s.Number)
		}
	}
	// Rotation/balance: every survey's answer key covers all three
	// algorithms.
	for _, s := range surveys {
		seen := map[string]bool{}
		for _, a := range s.AnswerKey {
			seen[a] = true
		}
		if len(seen) != 3 {
			t.Errorf("survey %d covers only %d algorithms", s.Number, len(seen))
		}
	}
}

func TestLambdaAblationGammaHelpsAlignment(t *testing.T) {
	w := testWorkload(t)
	rows, err := LambdaAblation(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	helped := 0
	for _, row := range rows {
		if row.WithGamma > row.NoGamma {
			helped++
		}
	}
	// The Γ term should improve target alignment on most datasets (it is
	// the entire point of Problem 1 over CRS).
	if helped < 2 {
		t.Errorf("Γ term helped on only %d/3 datasets: %+v", helped, rows)
	}
}
