package experiments

import (
	"fmt"
	"io"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/model"
	"comparesets/internal/simgraph"
)

// CaseStudy is one printable example in the style of Figures 8–10: a target
// item and its top-k most similar items with their selected review sets.
type CaseStudy struct {
	Dataset string
	Items   []CaseStudyItem
}

// CaseStudyItem is one column of a case study.
type CaseStudyItem struct {
	Title    string
	IsTarget bool
	Reviews  []CaseStudyReview
}

// CaseStudyReview is one selected review.
type CaseStudyReview struct {
	Rating int
	Text   string
}

// CaseStudies builds one example per dataset: CompaReSetS+ selections with
// k = m = 3, shortlist by the exact TargetHkS solver (the setting of
// Figures 8–10).
func CaseStudies(w *Workload, budget time.Duration) ([]CaseStudy, error) {
	const k = 3
	var out []CaseStudy
	for ds := range w.Corpora {
		sels, graphs, err := shortlistInputs(w, ds, k)
		if err != nil {
			return nil, err
		}
		// Pick the first instance with at least three items.
		pick := -1
		for i, g := range graphs {
			if g.N() >= 3 {
				pick = i
				break
			}
		}
		if pick < 0 {
			continue
		}
		inst := w.Instances[ds][pick]
		members := (simgraph.Exact{Budget: budget}).Solve(graphs[pick], k).Members
		out = append(out, buildCaseStudy(w.Corpora[ds].Category, inst, sels[pick], members))
	}
	return out, nil
}

func buildCaseStudy(dsName string, inst *model.Instance, sel *core.Selection, members []int) CaseStudy {
	cs := CaseStudy{Dataset: dsName}
	sets := sel.Reviews(inst)
	for _, i := range members {
		item := CaseStudyItem{Title: inst.Items[i].Title, IsTarget: i == 0}
		for _, r := range sets[i] {
			item.Reviews = append(item.Reviews, CaseStudyReview{Rating: r.Rating, Text: r.Text})
		}
		cs.Items = append(cs.Items, item)
	}
	return cs
}

// Render renders the case study.
func (cs CaseStudy) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s: compare with similar items ===\n", cs.Dataset)
	for _, item := range cs.Items {
		marker := ""
		if item.IsTarget {
			marker = " (this item)"
		}
		fmt.Fprintf(w, "\n-- %s%s\n", item.Title, marker)
		for _, r := range item.Reviews {
			fmt.Fprintf(w, "  [%s] %s\n", starsFor(r.Rating), r.Text)
		}
	}
	fmt.Fprintln(w)
}

func starsFor(rating int) string {
	s := ""
	for i := 0; i < 5; i++ {
		if i < rating {
			s += "*"
		} else {
			s += "."
		}
	}
	return s
}
