package experiments

import (
	"fmt"

	"comparesets/internal/plot"
)

// Chart renders a hyperparameter sweep (Figures 5a/5b) as one series per
// dataset on a log-scaled x axis.
func (r SweepResult) Chart() plot.Chart {
	c := plot.Chart{
		Title:  fmt.Sprintf("ROUGE-L vs %s", r.Param),
		XLabel: r.Param,
		YLabel: "ROUGE-L (x100)",
		LogX:   true,
	}
	for ds, name := range r.Datasets {
		c.Series = append(c.Series, plot.Series{Name: name, X: r.Values, Y: r.RL[ds]})
	}
	return c
}

// Charts renders Figure 6 as two charts (target-vs-comparative and
// among-items), with the CompaReSetS+−Random and Crs−Random gap series over
// bucket midpoints.
func (r Figure6Result) Charts() []plot.Chart {
	mid := make([]float64, len(r.Buckets))
	plusT := make([]float64, len(r.Buckets))
	crsT := make([]float64, len(r.Buckets))
	plusA := make([]float64, len(r.Buckets))
	crsA := make([]float64, len(r.Buckets))
	for i, b := range r.Buckets {
		mid[i] = (b.Lo + b.Hi) / 2
		plusT[i], crsT[i] = b.PlusGapTarget, b.CrsGapTarget
		plusA[i], crsA[i] = b.PlusGapAmong, b.CrsGapAmong
	}
	mk := func(part string, plus, crs []float64) plot.Chart {
		return plot.Chart{
			Title:  fmt.Sprintf("%s: R-L gap over Random (%s)", r.Dataset, part),
			XLabel: "avg #reviews per item",
			YLabel: "R-L gap (x100)",
			Series: []plot.Series{
				{Name: "CompaReSetS+ - Random", X: mid, Y: plus},
				{Name: "Crs - Random", X: mid, Y: crs},
			},
		}
	}
	return []plot.Chart{mk("vs target", plusT, crsT), mk("among items", plusA, crsA)}
}

// Chart renders Figure 7's runtime series for one m: runtime (ms) vs number
// of comparative items, one series per algorithm.
func (r Figure7Result) Chart(m int) plot.Chart {
	c := plot.Chart{
		Title:  fmt.Sprintf("%s: runtime vs #items (m=%d)", r.Dataset, m),
		XLabel: "#comparative items",
		YLabel: "runtime (ms)",
	}
	series := map[string]*plot.Series{}
	var order []string
	for _, p := range r.Points {
		if p.M != m {
			continue
		}
		s, ok := series[p.Algorithm]
		if !ok {
			s = &plot.Series{Name: p.Algorithm}
			series[p.Algorithm] = s
			order = append(order, p.Algorithm)
		}
		s.X = append(s.X, float64(p.NumItems))
		s.Y = append(s.Y, float64(p.Mean.Microseconds())/1000)
	}
	for _, name := range order {
		c.Series = append(c.Series, *series[name])
	}
	return c
}

// Charts renders Figure 11 as two charts: squared loss and cosine vs m,
// each with target-only and all-items series.
func (r Figure11Result) Charts() []plot.Chart {
	ms := make([]float64, len(r.Points))
	lossT := make([]float64, len(r.Points))
	lossA := make([]float64, len(r.Points))
	cosT := make([]float64, len(r.Points))
	cosA := make([]float64, len(r.Points))
	for i, p := range r.Points {
		ms[i] = float64(p.M)
		lossT[i], lossA[i] = p.LossTarget, p.LossAll
		cosT[i], cosA[i] = p.CosTarget, p.CosAll
	}
	return []plot.Chart{
		{
			Title: fmt.Sprintf("%s: information loss vs m", r.Dataset), XLabel: "m", YLabel: "Δ(τ, π(S))",
			Series: []plot.Series{
				{Name: "target item", X: ms, Y: lossT},
				{Name: "all items", X: ms, Y: lossA},
			},
		},
		{
			Title: fmt.Sprintf("%s: cosine similarity vs m", r.Dataset), XLabel: "m", YLabel: "cos(τ, π(S))",
			Series: []plot.Series{
				{Name: "target item", X: ms, Y: cosT},
				{Name: "all items", X: ms, Y: cosA},
			},
		},
	}
}

// Chart renders the HkS stress ablation: %optimal and heuristic ratios vs n.
func (r HkSStressResult) Chart() plot.Chart {
	n := make([]float64, len(r.Rows))
	opt := make([]float64, len(r.Rows))
	greedy := make([]float64, len(r.Rows))
	random := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		n[i] = float64(row.N)
		opt[i] = row.OptimalPercent
		greedy[i] = -row.GreedyRatio // plot as positive gaps
		random[i] = -row.RandomRatio
	}
	return plot.Chart{
		Title:  fmt.Sprintf("TargetHkS stress (k=%d, budget %v)", r.K, r.Budget),
		XLabel: "graph size n",
		YLabel: "percent",
		Series: []plot.Series{
			{Name: "proved optimal %", X: n, Y: opt},
			{Name: "greedy gap %", X: n, Y: greedy},
			{Name: "random gap %", X: n, Y: random},
		},
	}
}
