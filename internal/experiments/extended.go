package experiments

import (
	"fmt"
	"io"

	"comparesets/internal/core"
	"comparesets/internal/metrics"
	"comparesets/internal/rouge"
	"comparesets/internal/stats"
)

// ExtendedRow is one algorithm's scores in the beyond-paper comparison: the
// paper's alignment metric next to the §5.1 related-work axes, so the
// trade-offs between selection families are visible in one table.
type ExtendedRow struct {
	Dataset   string
	Algorithm string
	// AlignRL is target-vs-comparative ROUGE-L ×100 (the paper's metric).
	AlignRL float64
	// The §5.1 axes, averaged per instance then per item ([0,1]).
	AspectCoverage     float64
	OpinionCoverage    float64
	Diversity          float64
	Representativeness float64
}

// ExtendedResult is the full extended comparison.
type ExtendedResult struct {
	M    int
	Rows []ExtendedRow
}

// TableExtended evaluates every implemented selector — the paper's five
// plus the Comprehensive and CoverageOpinions related-work baselines — on
// alignment and the §5.1 quality axes.
func TableExtended(w *Workload, m int) (ExtendedResult, error) {
	res := ExtendedResult{M: m}
	for ds := range w.Corpora {
		for _, sel := range core.ExtendedSelectors() {
			sels, err := w.RunSelector(ds, sel, Config(m))
			if err != nil {
				return res, err
			}
			var align []rouge.Result
			var cov, opCov, div, repr []float64
			for i, s := range sels {
				inst := w.Instances[ds][i]
				t, _ := instanceAlignments(inst, s, nil)
				align = append(align, t)
				im := metrics.EvaluateSelection(inst, s)
				cov = append(cov, im.AspectCoverage)
				opCov = append(opCov, im.OpinionCoverage)
				div = append(div, 1-im.Redundancy)
				repr = append(repr, im.Representativeness)
			}
			res.Rows = append(res.Rows, ExtendedRow{
				Dataset:            w.Corpora[ds].Category,
				Algorithm:          sel.Name(),
				AlignRL:            alignmentFrom(rouge.Average(align)).RL,
				AspectCoverage:     stats.Mean(cov),
				OpinionCoverage:    stats.Mean(opCov),
				Diversity:          stats.Mean(div),
				Representativeness: stats.Mean(repr),
			})
		}
	}
	return res, nil
}

// Render renders the extended comparison.
func (r ExtendedResult) Render(w io.Writer) {
	fmt.Fprintf(w, "(m=%d; alignment is the paper's metric, the rest are §5.1 family axes)\n", r.M)
	fmt.Fprintf(w, "%-10s %-20s %9s %9s %9s %9s %9s\n",
		"Dataset", "Algorithm", "R-L", "AspCov", "OpinCov", "Divers", "Repres")
	lastDS := ""
	for _, row := range r.Rows {
		ds := row.Dataset
		if ds == lastDS {
			ds = ""
		} else {
			lastDS = ds
		}
		fmt.Fprintf(w, "%-10s %-20s %9.2f %9.3f %9.3f %9.3f %9.3f\n",
			ds, row.Algorithm, row.AlignRL, row.AspectCoverage, row.OpinionCoverage,
			row.Diversity, row.Representativeness)
	}
}

// CSV implements CSVRows.
func (r ExtendedResult) CSV() [][]string {
	out := [][]string{{"dataset", "algorithm", "m", "align_rl", "aspect_coverage", "opinion_coverage", "diversity", "representativeness"}}
	for _, row := range r.Rows {
		out = append(out, []string{
			row.Dataset, row.Algorithm, itoa(r.M), ftoa(row.AlignRL),
			ftoa(row.AspectCoverage), ftoa(row.OpinionCoverage), ftoa(row.Diversity), ftoa(row.Representativeness),
		})
	}
	return out
}
