package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// CSVRows is implemented by every experiment result so the harness can dump
// machine-readable output next to the paper-layout renderings.
type CSVRows interface {
	// CSV returns a header row followed by data rows.
	CSV() [][]string
}

// WriteCSV writes any result's rows as RFC-4180 CSV.
func WriteCSV(w io.Writer, r CSVRows) error {
	cw := csv.NewWriter(w)
	if err := cw.WriteAll(r.CSV()); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }
func itoa(v int) string     { return strconv.Itoa(v) }

// CSV implements CSVRows.
func (r Table2Result) CSV() [][]string {
	out := [][]string{{"category", "products", "reviewers", "reviews", "target_products", "avg_comparison", "avg_reviews_per_product"}}
	for _, s := range r.Rows {
		out = append(out, []string{
			s.Category, itoa(s.Products), itoa(s.Reviewers), itoa(s.Reviews),
			itoa(s.TargetProducts), ftoa(s.AvgComparisonProduct), ftoa(s.AvgReviewPerProduct),
		})
	}
	return out
}

// CSV implements CSVRows.
func (r Table3Result) CSV() [][]string {
	out := [][]string{{"dataset", "algorithm", "m", "part", "r1", "r2", "rl", "star_r1", "star_r2", "star_rl"}}
	for _, row := range r.Rows {
		for mi, m := range r.Ms {
			for part, cells := range map[string][]Table3Cell{"target_vs": row.TargetVs, "among": row.Among} {
				c := cells[mi]
				out = append(out, []string{
					row.Dataset, row.Algorithm, itoa(m), part,
					ftoa(c.Align.R1), ftoa(c.Align.R2), ftoa(c.Align.RL),
					strconv.FormatBool(c.Star[0]), strconv.FormatBool(c.Star[1]), strconv.FormatBool(c.Star[2]),
				})
			}
		}
	}
	return out
}

// CSV implements CSVRows.
func (r Table4Result) CSV() [][]string {
	out := [][]string{{"algorithm", "scheme", "rl"}}
	for ai, alg := range r.Algorithms {
		for si, scheme := range r.Schemes {
			out = append(out, []string{alg, scheme, ftoa(r.RL[ai][si])})
		}
	}
	return out
}

// CSV implements CSVRows.
func (r Table5Result) CSV() [][]string {
	out := [][]string{{"dataset", "k", "optimal_percent", "greedy_ratio", "random_ratio", "budget"}}
	for _, row := range r.Rows {
		out = append(out, []string{
			row.Dataset, itoa(row.K), ftoa(row.OptimalPercent),
			strconv.FormatFloat(row.GreedyRatio, 'f', 6, 64), ftoa(row.RandomRatio), r.Budget.String(),
		})
	}
	return out
}

// CSV implements CSVRows.
func (r Table6Result) CSV() [][]string {
	out := [][]string{{"dataset", "solver", "k", "part", "r1", "r2", "rl"}}
	for _, row := range r.Rows {
		for ki, k := range r.Ks {
			for part, cells := range map[string][]Alignment{"target_vs": row.TargetVs, "among": row.Among} {
				c := cells[ki]
				out = append(out, []string{row.Dataset, row.Solver, itoa(k), part, ftoa(c.R1), ftoa(c.R2), ftoa(c.RL)})
			}
		}
	}
	return out
}

// CSV implements CSVRows.
func (r Table7Result) CSV() [][]string {
	out := [][]string{{"algorithm", "q1", "q2", "q3", "alpha"}}
	for _, row := range r.Rows {
		out = append(out, []string{row.Algorithm, ftoa(row.Q1), ftoa(row.Q2), ftoa(row.Q3), ftoa(row.Alpha)})
	}
	return out
}

// CSV implements CSVRows.
func (r SweepResult) CSV() [][]string {
	out := [][]string{{"dataset", r.Param, "rl"}}
	for ds, name := range r.Datasets {
		for vi, v := range r.Values {
			out = append(out, []string{name, fmt.Sprintf("%g", v), ftoa(r.RL[ds][vi])})
		}
	}
	return out
}

// CSV implements CSVRows.
func (r Figure6Result) CSV() [][]string {
	out := [][]string{{"dataset", "bucket_lo", "bucket_hi", "instances", "plus_gap_target", "crs_gap_target", "plus_gap_among", "crs_gap_among"}}
	for _, b := range r.Buckets {
		out = append(out, []string{
			r.Dataset, ftoa(b.Lo), ftoa(b.Hi), itoa(b.Instances),
			ftoa(b.PlusGapTarget), ftoa(b.CrsGapTarget), ftoa(b.PlusGapAmong), ftoa(b.CrsGapAmong),
		})
	}
	return out
}

// CSV implements CSVRows.
func (r Figure7Result) CSV() [][]string {
	out := [][]string{{"dataset", "algorithm", "m", "n", "runtime_seconds"}}
	for _, p := range r.Points {
		out = append(out, []string{r.Dataset, p.Algorithm, itoa(p.M), itoa(p.NumItems), strconv.FormatFloat(p.Mean.Seconds(), 'f', 6, 64)})
	}
	return out
}

// CSV implements CSVRows.
func (r Figure11Result) CSV() [][]string {
	out := [][]string{{"dataset", "m", "loss_target", "loss_all", "cos_target", "cos_all"}}
	for _, p := range r.Points {
		out = append(out, []string{r.Dataset, itoa(p.M), ftoa(p.LossTarget), ftoa(p.LossAll), ftoa(p.CosTarget), ftoa(p.CosAll)})
	}
	return out
}

// CSV implements CSVRows.
func (r HkSStressResult) CSV() [][]string {
	out := [][]string{{"n", "k", "budget", "optimal_percent", "greedy_ratio", "localsearch_ratio", "removal_ratio", "topk_ratio", "random_ratio", "mean_exact_seconds"}}
	for _, row := range r.Rows {
		out = append(out, []string{
			itoa(row.N), itoa(r.K), r.Budget.String(), ftoa(row.OptimalPercent),
			ftoa(row.GreedyRatio), ftoa(row.LocalSearchRatio), ftoa(row.RemovalRatio),
			ftoa(row.TopKRatio), ftoa(row.RandomRatio),
			strconv.FormatFloat(row.MeanExactTime.Seconds(), 'f', 6, 64),
		})
	}
	return out
}

// CSV implements CSVRows.
func (r PassesResult) CSV() [][]string {
	out := [][]string{{"dataset", "m", "passes", "objective", "rl_target", "rl_among", "seconds_per_instance"}}
	for _, row := range r.Rows {
		out = append(out, []string{
			r.Dataset, itoa(r.M), itoa(row.Passes), ftoa(row.Objective),
			ftoa(row.TargetRL), ftoa(row.AmongRL),
			strconv.FormatFloat(row.MeanTime.Seconds(), 'f', 6, 64),
		})
	}
	return out
}
