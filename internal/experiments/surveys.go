package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/simgraph"
)

// Survey is one blind questionnaire of §4.5: nine examples (three per
// category), each a target item plus its two most similar items with one
// algorithm's selected reviews, presented without algorithm names in
// randomized order. AnswerKey maps example number → algorithm.
type Survey struct {
	Number    int
	Examples  []SurveyExample
	AnswerKey []string
}

// SurveyExample is one example sheet.
type SurveyExample struct {
	Number    int
	Algorithm string // hidden from participants; kept for the answer key
	Items     []CaseStudyItem
}

// Surveys builds the three blind surveys of the user study: the same nine
// (target, shortlist) examples in each, with the algorithm rotated so every
// survey sees each example under a different selector, in randomized order
// (participants compare algorithms without knowing which is which). Only
// examples where every algorithm selects exactly m reviews for every
// shortlisted item qualify, matching the paper's parity constraint.
func Surveys(w *Workload, budget time.Duration) ([]Survey, error) {
	const m = 3
	algs := table7Algorithms() // Random, Crs, CompaReSetS+
	type slot struct {
		ds, inst int
		members  []int
	}
	var slots []slot
	for ds := range w.Corpora {
		_, graphs, err := shortlistInputs(w, ds, m)
		if err != nil {
			return nil, err
		}
		count := 0
		for i, g := range graphs {
			if count >= 3 {
				break
			}
			if g.N() < 3 {
				continue
			}
			members := (simgraph.Exact{Budget: budget}).Solve(g, 3).Members
			if !fullSelections(w, ds, i, members, algs, m) {
				continue
			}
			slots = append(slots, slot{ds: ds, inst: i, members: members})
			count++
		}
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("experiments: no qualifying survey examples")
	}

	rng := rand.New(rand.NewSource(w.Seed))
	var surveys []Survey
	for sNum := 0; sNum < len(algs); sNum++ {
		survey := Survey{Number: sNum + 1}
		order := rng.Perm(len(slots))
		for exNum, si := range order {
			sl := slots[si]
			// Rotate algorithms so survey s sees slot si under a
			// different algorithm than the other surveys.
			alg := algs[(si+sNum)%len(algs)]
			sels, err := w.RunSelector(sl.ds, alg, Config(m))
			if err != nil {
				return nil, err
			}
			inst := w.Instances[sl.ds][sl.inst]
			cs := buildCaseStudy(w.Corpora[sl.ds].Category, inst, sels[sl.inst], sl.members)
			survey.Examples = append(survey.Examples, SurveyExample{
				Number:    exNum + 1,
				Algorithm: alg.Name(),
				Items:     cs.Items,
			})
			survey.AnswerKey = append(survey.AnswerKey, alg.Name())
		}
		surveys = append(surveys, survey)
	}
	return surveys, nil
}

// fullSelections reports whether every algorithm selects exactly m reviews
// for every shortlisted item of the instance (§4.5: "we only present
// examples which have exactly 3 selected reviews" from every algorithm).
func fullSelections(w *Workload, ds, inst int, members []int, algs []core.Selector, m int) bool {
	for _, alg := range algs {
		sels, err := w.RunSelector(ds, alg, Config(m))
		if err != nil {
			return false
		}
		for _, i := range members {
			if len(sels[inst].Indices[i]) != m {
				return false
			}
		}
	}
	return true
}

// Render writes the participant-facing sheet (no algorithm names).
func (s Survey) Render(w io.Writer) {
	fmt.Fprintf(w, "# Survey %d\n\n", s.Number)
	fmt.Fprintln(w, "For each example, rate on a 1-5 scale:")
	fmt.Fprintln(w, "  Q1. How similar are the reviews among products (discussing the same aspects)?")
	fmt.Fprintln(w, "  Q2. Do the reviews help you know more about the recommended products?")
	fmt.Fprintln(w, "  Q3. Do the reviews help you in comparison among products?")
	for _, ex := range s.Examples {
		fmt.Fprintf(w, "\n## Example %d\n", ex.Number)
		for _, item := range ex.Items {
			marker := ""
			if item.IsTarget {
				marker = " (this item)"
			}
			fmt.Fprintf(w, "\n### %s%s\n", item.Title, marker)
			for _, r := range item.Reviews {
				fmt.Fprintf(w, "- [%d/5] %s\n", r.Rating, r.Text)
			}
		}
		fmt.Fprintf(w, "\nQ1: __  Q2: __  Q3: __\n")
	}
}

// RenderAnswerKey writes the experimenter-facing key.
func (s Survey) RenderAnswerKey(w io.Writer) {
	fmt.Fprintf(w, "# Survey %d answer key\n", s.Number)
	for i, alg := range s.AnswerKey {
		fmt.Fprintf(w, "example %d: %s\n", i+1, alg)
	}
}
