package experiments

import (
	"fmt"
	"io"
	"time"

	"comparesets/internal/core"
	"comparesets/internal/simgraph"
	"comparesets/internal/stats"
	"comparesets/internal/userstudy"
)

// Table7Row is one algorithm's simulated user-study outcome: mean Likert
// answers to Q1 (similarity among products), Q2 (informativeness), Q3
// (usefulness for comparison), and Krippendorff's α across its ratings.
type Table7Row struct {
	Algorithm  string
	Q1, Q2, Q3 float64
	Alpha      float64
}

// Table7Result is the simulated user study (§4.5): three examples per
// category, each example a target plus the two most relevant items selected
// by TargetHkS_ILP over CompaReSetS+ selections, rated blindly by a panel.
type Table7Result struct {
	ExamplesPerCategory int
	Annotators          int
	Rows                []Table7Row
}

// table7Algorithms is the row order of Table 7.
func table7Algorithms() []core.Selector {
	return []core.Selector{core.Random{}, core.CRS{}, core.CompaReSetSPlus{}}
}

// Table7 runs the simulated study. The panel's noise scales down with the
// measured clarity of a selection — raters agree more when the sets are
// coherently comparable — which is what drives the α ordering the paper
// observed.
func Table7(w *Workload, examplesPerCategory, annotators int, budget time.Duration) (Table7Result, error) {
	const m = 3
	res := Table7Result{ExamplesPerCategory: examplesPerCategory, Annotators: annotators}
	algs := table7Algorithms()

	// Shortlists come from CompaReSetS+ for parity across algorithms.
	type example struct {
		ds, inst int
		members  []int
	}
	var examples []example
	for ds := range w.Corpora {
		_, graphs, err := shortlistInputs(w, ds, m)
		if err != nil {
			return res, err
		}
		count := 0
		for i, g := range graphs {
			if count >= examplesPerCategory {
				break
			}
			if g.N() < 3 {
				continue
			}
			members := (simgraph.Exact{Budget: budget}).Solve(g, 3).Members
			examples = append(examples, example{ds: ds, inst: i, members: members})
			count++
		}
	}

	for _, alg := range algs {
		var q1All, q2All, q3All []float64
		var units [][]float64
		for ei, ex := range examples {
			sels, err := w.RunSelector(ex.ds, alg, Config(m))
			if err != nil {
				return res, err
			}
			inst := w.Instances[ex.ds][ex.inst]
			overlap, repr, comp := selectionQuality(inst, Config(m), sels[ex.inst], ex.members)
			quality := userstudy.Quality{Overlap: overlap, Representativeness: repr, Comparability: comp}
			// Raters converge quickly on coherent, clearly comparable
			// selections and scatter on incoherent ones; the quadratic
			// makes disagreement grow sharply as clarity drops, which is
			// what separates the α column (the paper observed α of 0.299 /
			// 0.050 / −0.039 for CompaReSetS+ / CRS / Random).
			clarity := (overlap + repr + comp) / 3
			panel := userstudy.Panel{
				Annotators: annotators,
				Noise:      0.3 + 3.5*(1-clarity)*(1-clarity),
				Leniency:   1.2,
				Seed:       w.Seed,
			}
			ratings := panel.Rate(int64(ei), quality)
			q1All = append(q1All, stats.Mean(ratings[0]))
			q2All = append(q2All, stats.Mean(ratings[1]))
			q3All = append(q3All, stats.Mean(ratings[2]))
			for qi := range ratings {
				units = append(units, ratings[qi])
			}
		}
		alpha, err := stats.KrippendorffAlpha(units)
		if err != nil {
			alpha = 0
		}
		res.Rows = append(res.Rows, Table7Row{
			Algorithm: alg.Name(),
			Q1:        stats.Mean(q1All),
			Q2:        stats.Mean(q2All),
			Q3:        stats.Mean(q3All),
			Alpha:     alpha,
		})
	}
	return res, nil
}

// Render renders the table in the paper's layout.
func (r Table7Result) Render(w io.Writer) {
	fmt.Fprintf(w, "(%d examples/category, %d annotators each — simulated panel)\n",
		r.ExamplesPerCategory, r.Annotators)
	fmt.Fprintf(w, "%-16s %6s %6s %6s %16s\n", "Algorithm", "Q1", "Q2", "Q3", "Krippendorff α")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %6.2f %6.2f %6.2f %16.3f\n", row.Algorithm, row.Q1, row.Q2, row.Q3, row.Alpha)
	}
}
