package model

import (
	"bytes"
	"testing"
)

func FuzzReadCorpusJSON(f *testing.F) {
	var seed bytes.Buffer
	c := testCorpus()
	_ = c.WriteJSON(&seed)
	f.Add(seed.Bytes())
	f.Add([]byte("{}"))
	f.Add([]byte("{nope"))
	f.Add([]byte(`{"category":"X","aspects":["a","a"],"items":[{"id":""}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := ReadCorpusJSON(bytes.NewReader(data))
		if err != nil {
			return // malformed input is allowed to fail, not to panic
		}
		// A successfully decoded corpus must survive basic traversal and
		// re-encoding.
		_ = c.ItemIDs()
		_ = c.NumReviews()
		var buf bytes.Buffer
		if err := c.WriteJSON(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if _, err := ReadCorpusJSON(&buf); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}
