package model

import "testing"

func TestFingerprintStableAndSensitive(t *testing.T) {
	a := testCorpus()
	b := testCorpus()
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint not deterministic")
	}
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identically built corpora should share a fingerprint")
	}

	// Adding a review changes it.
	before := b.Fingerprint()
	for _, id := range b.ItemIDs() {
		it := b.Items[id]
		it.Reviews = append(it.Reviews, &Review{ID: "fp-extra", ItemID: it.ID, Rating: 4})
		break
	}
	if b.Fingerprint() == before {
		t.Error("fingerprint unchanged after adding a review")
	}

	// Renaming the category changes it.
	c := testCorpus()
	c.Category = "Other"
	if c.Fingerprint() == a.Fingerprint() {
		t.Error("fingerprint unchanged after category rename")
	}
}
