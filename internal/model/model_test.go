package model

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"testing"
)

func testCorpus() *Corpus {
	voc := NewVocabulary([]string{"battery", "lens", "quality"})
	c := NewCorpus("Cellphone", voc)
	c.AddItem(&Item{
		ID: "p1", Title: "Target", Category: "Cellphone",
		AlsoBought: []string{"p2", "p3", "missing"},
		Reviews: []*Review{
			{ID: "r1", ItemID: "p1", Reviewer: "u1", Rating: 5, Text: "great battery",
				Mentions: []Mention{{Aspect: 0, Polarity: Positive, Score: 1}}},
			{ID: "r2", ItemID: "p1", Reviewer: "u2", Rating: 2, Text: "bad lens",
				Mentions: []Mention{{Aspect: 1, Polarity: Negative, Score: -1}}},
		},
	})
	c.AddItem(&Item{ID: "p2", Title: "Alt A", Category: "Cellphone"})
	c.AddItem(&Item{ID: "p3", Title: "Alt B", Category: "Cellphone"})
	return c
}

func TestPolarityString(t *testing.T) {
	cases := map[Polarity]string{Positive: "+", Negative: "-", Neutral: "0"}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", p, got, want)
		}
	}
	if got := Polarity(9).String(); got != "Polarity(9)" {
		t.Errorf("invalid String = %q", got)
	}
	if Polarity(9).Valid() {
		t.Error("Polarity(9) should be invalid")
	}
}

func TestReviewAspectSetDeduplicates(t *testing.T) {
	r := &Review{Mentions: []Mention{
		{Aspect: 2}, {Aspect: 0}, {Aspect: 2, Polarity: Negative},
	}}
	if got := r.AspectSet(); !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("AspectSet = %v", got)
	}
	if !r.HasAspect(2) || r.HasAspect(1) {
		t.Error("HasAspect wrong")
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary([]string{"a", "b", "a"})
	if v.Len() != 2 {
		t.Fatalf("Len = %d", v.Len())
	}
	if i, ok := v.Index("b"); !ok || i != 1 {
		t.Errorf("Index(b) = %d, %v", i, ok)
	}
	if _, ok := v.Index("zzz"); ok {
		t.Error("unexpected hit for zzz")
	}
	if v.Add("c") != 2 || v.Add("a") != 0 {
		t.Error("Add returned wrong index")
	}
	if got := v.Names(); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("Names = %v", got)
	}
	// Names must be a copy.
	v.Names()[0] = "mutated"
	if v.Name(0) != "a" {
		t.Error("Names leaked internal storage")
	}
}

func TestCorpusItemIDsSorted(t *testing.T) {
	c := testCorpus()
	if got := c.ItemIDs(); !reflect.DeepEqual(got, []string{"p1", "p2", "p3"}) {
		t.Errorf("ItemIDs = %v", got)
	}
	if c.NumReviews() != 2 {
		t.Errorf("NumReviews = %d", c.NumReviews())
	}
}

func TestNewInstance(t *testing.T) {
	c := testCorpus()
	inst, err := c.NewInstance("p1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumItems() != 3 { // p1 + p2 + p3; "missing" skipped
		t.Fatalf("NumItems = %d", inst.NumItems())
	}
	if inst.Target().ID != "p1" {
		t.Errorf("Target = %s", inst.Target().ID)
	}
	if err := inst.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestNewInstanceTruncation(t *testing.T) {
	c := testCorpus()
	inst, err := c.NewInstance("p1", 1)
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumItems() != 2 {
		t.Errorf("NumItems = %d, want 2", inst.NumItems())
	}
}

func TestNewInstanceUnknownTarget(t *testing.T) {
	c := testCorpus()
	if _, err := c.NewInstance("nope", 0); !errors.Is(err, ErrUnknownItem) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateCatchesBadAspect(t *testing.T) {
	c := testCorpus()
	inst, _ := c.NewInstance("p1", 0)
	inst.Items[0].Reviews[0].Mentions[0].Aspect = 99
	if err := inst.Validate(); !errors.Is(err, ErrBadAspect) {
		t.Errorf("err = %v", err)
	}
	inst.Items[0].Reviews[0].Mentions[0].Aspect = 0
	inst.Items[0].Reviews[0].Mentions[0].Polarity = Polarity(9)
	if err := inst.Validate(); !errors.Is(err, ErrBadPolarity) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateCatchesDuplicateAndEmptyReviewIDs(t *testing.T) {
	c := testCorpus()
	inst, _ := c.NewInstance("p1", 0)
	inst.Items[0].Reviews[1].ID = "r1"
	if err := inst.Validate(); err == nil {
		t.Error("expected duplicate-ID error")
	}
	inst.Items[0].Reviews[1].ID = ""
	if err := inst.Validate(); !errors.Is(err, ErrEmptyReviewID) {
		t.Errorf("err = %v", err)
	}
}

func TestValidateEmptyInstance(t *testing.T) {
	inst := &Instance{Aspects: NewVocabulary(nil)}
	if err := inst.Validate(); !errors.Is(err, ErrNoTarget) {
		t.Errorf("err = %v", err)
	}
}

func TestItemReviewByID(t *testing.T) {
	c := testCorpus()
	it := c.Items["p1"]
	if r := it.ReviewByID("r2"); r == nil || r.Rating != 2 {
		t.Errorf("ReviewByID = %+v", r)
	}
	if r := it.ReviewByID("nope"); r != nil {
		t.Errorf("ReviewByID(nope) = %+v", r)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c := testCorpus()
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCorpusJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Category != c.Category || got.Aspects.Len() != c.Aspects.Len() {
		t.Errorf("category/aspects mismatch: %s %d", got.Category, got.Aspects.Len())
	}
	if !reflect.DeepEqual(got.ItemIDs(), c.ItemIDs()) {
		t.Errorf("ItemIDs = %v", got.ItemIDs())
	}
	r := got.Items["p1"].ReviewByID("r1")
	if r == nil || len(r.Mentions) != 1 || r.Mentions[0].Polarity != Positive {
		t.Errorf("review did not round trip: %+v", r)
	}
}

func TestJSONDecodeError(t *testing.T) {
	if _, err := ReadCorpusJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("expected decode error")
	}
}

func TestSaveLoadCorpus(t *testing.T) {
	c := testCorpus()
	path := filepath.Join(t.TempDir(), "corpus.json")
	if err := SaveCorpus(c, path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumReviews() != c.NumReviews() {
		t.Errorf("NumReviews = %d", got.NumReviews())
	}
	if _, err := LoadCorpus(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestSortReviewsByID(t *testing.T) {
	c := testCorpus()
	it := c.Items["p1"]
	it.Reviews[0], it.Reviews[1] = it.Reviews[1], it.Reviews[0]
	c.SortReviewsByID()
	if it.Reviews[0].ID != "r1" {
		t.Errorf("first review = %s", it.Reviews[0].ID)
	}
}

func TestInstanceIsPerTargetIndependent(t *testing.T) {
	// Every target product induces its own instance (§4.1.1); instances
	// share item pointers but not slices.
	c := testCorpus()
	a, _ := c.NewInstance("p1", 0)
	b, _ := c.NewInstance("p1", 0)
	a.Items = append(a.Items, &Item{ID: "extra"})
	if b.NumItems() != 3 {
		t.Errorf("instances share slice storage: %d", b.NumItems())
	}
}

func ExampleCorpus_NewInstance() {
	c := testCorpus()
	inst, _ := c.NewInstance("p1", 0)
	fmt.Println(inst.Target().ID, inst.NumItems())
	// Output: p1 3
}
