// Hand-rolled JSON encoding for the write-path record types. The CSLG
// store marshals one review per append/update record; reflection-based
// json.Marshal walks the Review type on every write. MarshalAppend writes
// the identical bytes into a caller-supplied buffer instead, so the store
// write path encodes with zero intermediate allocations.
//
// Byte identity with json.Marshal is load-bearing: the store's
// envelope-sniffing record decoder distinguishes mutation envelopes from
// legacy review payloads by their leading bytes, and logs written by
// either encoder must replay identically. Parity is locked by
// TestReviewMarshalAppendParity and FuzzReviewMarshalAppend.
package model

import (
	"errors"
	"math"

	"comparesets/internal/jsonenc"
)

// ErrNonFiniteScore reports a review whose mention scores cannot be
// represented in JSON. json.Marshal fails the same review with
// UnsupportedValueError; MarshalAppend surfaces the condition as a typed
// error before encoding anything.
var ErrNonFiniteScore = errors.New("model: review has non-finite mention score")

// MarshalAppend appends the review's JSON encoding to dst, byte-identical
// to json.Marshal(r). The field order matters beyond aesthetics: "id" is
// first, which is what lets the store's record decoder tell a review
// payload apart from an {"op":...} mutation envelope by prefix.
func (r *Review) MarshalAppend(dst []byte) ([]byte, error) {
	for i := range r.Mentions {
		if s := r.Mentions[i].Score; math.IsNaN(s) || math.IsInf(s, 0) {
			return dst, ErrNonFiniteScore
		}
	}
	dst = append(dst, `{"id":`...)
	dst = jsonenc.AppendString(dst, r.ID)
	dst = append(dst, `,"item_id":`...)
	dst = jsonenc.AppendString(dst, r.ItemID)
	dst = append(dst, `,"reviewer":`...)
	dst = jsonenc.AppendString(dst, r.Reviewer)
	dst = append(dst, `,"rating":`...)
	dst = jsonenc.AppendInt(dst, int64(r.Rating))
	dst = append(dst, `,"text":`...)
	dst = jsonenc.AppendString(dst, r.Text)
	dst = append(dst, `,"mentions":`...)
	if r.Mentions == nil {
		dst = append(dst, "null"...)
	} else {
		dst = append(dst, '[')
		for i := range r.Mentions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = r.Mentions[i].marshalAppend(dst)
		}
		dst = append(dst, ']')
	}
	return append(dst, '}'), nil
}

// marshalAppend appends one mention, byte-identical to json.Marshal. The
// caller has already established score finiteness.
func (m *Mention) marshalAppend(dst []byte) []byte {
	dst = append(dst, `{"aspect":`...)
	dst = jsonenc.AppendInt(dst, int64(m.Aspect))
	dst = append(dst, `,"polarity":`...)
	dst = jsonenc.AppendInt(dst, int64(m.Polarity))
	dst = append(dst, `,"score":`...)
	dst = jsonenc.AppendFloat(dst, m.Score)
	return append(dst, '}')
}
