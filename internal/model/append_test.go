package model

import (
	"encoding/json"
	"errors"
	"math"
	"testing"
)

func reviewVariants() []Review {
	return []Review{
		{},
		{ID: "r1", ItemID: "item-1", Reviewer: "alice", Rating: 5, Text: "great phone"},
		{
			ID: "r2", ItemID: "item <2> & co", Reviewer: "böb \"the\" builder", Rating: -3,
			Text:     "controls \t\n and unicode 日本語 and invalid \xff utf8",
			Mentions: []Mention{},
		},
		{
			ID: "r3", ItemID: "i", Reviewer: "", Rating: 0, Text: "",
			Mentions: []Mention{
				{Aspect: 0, Polarity: 1, Score: 0},
				{Aspect: 7, Polarity: -1, Score: 0.125},
				{Aspect: 42, Polarity: 0, Score: 1e-9},
				{Aspect: 3, Polarity: 1, Score: 3.5e21},
				{Aspect: 3, Polarity: 1, Score: math.Copysign(0, -1)},
			},
		},
	}
}

func TestReviewMarshalAppendParity(t *testing.T) {
	for _, r := range reviewVariants() {
		want, err := json.Marshal(&r)
		if err != nil {
			t.Fatalf("json.Marshal: %v", err)
		}
		got, err := r.MarshalAppend(nil)
		if err != nil {
			t.Fatalf("MarshalAppend(%q): %v", r.ID, err)
		}
		if string(got) != string(want) {
			t.Errorf("review %q:\n got %s\nwant %s", r.ID, got, want)
		}
	}
}

func TestReviewMarshalAppendNonFinite(t *testing.T) {
	r := Review{ID: "bad", Mentions: []Mention{{Score: math.NaN()}}}
	dst := []byte("prefix")
	out, err := r.MarshalAppend(dst)
	if !errors.Is(err, ErrNonFiniteScore) {
		t.Fatalf("err = %v, want ErrNonFiniteScore", err)
	}
	if string(out) != "prefix" {
		t.Fatalf("dst modified on error: %q", out)
	}
}

func FuzzReviewMarshalAppend(f *testing.F) {
	f.Add("r1", "item", "alice", 5, "nice <text> & stuff", 3, 1, 0.5)
	f.Add("", "", "", -1, "\xff\u2028", 0, -1, 1e-7)
	f.Fuzz(func(t *testing.T, id, item, reviewer string, rating int, text string, aspect, polarity int, score float64) {
		if math.IsNaN(score) || math.IsInf(score, 0) {
			t.Skip()
		}
		r := Review{
			ID: id, ItemID: item, Reviewer: reviewer, Rating: rating, Text: text,
			Mentions: []Mention{{Aspect: aspect, Polarity: Polarity(polarity), Score: score}},
		}
		want, err := json.Marshal(&r)
		if err != nil {
			t.Skip()
		}
		got, err := r.MarshalAppend(nil)
		if err != nil {
			t.Fatalf("MarshalAppend: %v", err)
		}
		if string(got) != string(want) {
			t.Fatalf("parity:\n got %s\nwant %s", got, want)
		}
	})
}
