package model

import (
	"errors"
	"fmt"
)

// MutationKind classifies a corpus delta.
type MutationKind int

// Mutation kinds, in the order the write API exposes them.
const (
	// MutationAppend adds new reviews to an item.
	MutationAppend MutationKind = iota
	// MutationUpdate replaces an existing review in place (same ID).
	MutationUpdate
	// MutationRemove deletes an existing review.
	MutationRemove
)

// String returns the canonical lower-case kind name used in receipts,
// metrics labels, and the store's mutation log.
func (k MutationKind) String() string {
	switch k {
	case MutationAppend:
		return "append"
	case MutationUpdate:
		return "update"
	case MutationRemove:
		return "remove"
	default:
		return fmt.Sprintf("MutationKind(%d)", int(k))
	}
}

// Errors reported by the mutation API.
var (
	ErrUnknownReview   = errors.New("model: unknown review")
	ErrDuplicateReview = errors.New("model: duplicate review ID")
	ErrItemMismatch    = errors.New("model: review item_id does not match target item")
)

// Mutation describes one applied corpus delta: the touched item before and
// after, and the review IDs involved. Old and New are distinct snapshots —
// mutations are copy-on-write, so any Instance or Selection holding Old
// keeps observing a consistent pre-mutation view while New is what the
// corpus map serves from now on. Downstream caches keyed by item pointer
// identity (featstore entries, regression problems) use exactly this
// property: untouched items keep their pointers, so only the touched
// item's cached artifacts need refreshing.
type Mutation struct {
	Kind      MutationKind
	ItemID    string
	ReviewIDs []string
	// Old is the pre-mutation item snapshot; New is the replacement now
	// installed in the corpus.
	Old, New *Item
}

// Clone returns a shallow copy of the corpus: a fresh Items map sharing
// every item pointer with the receiver. Serving layers mutate a clone and
// swap the corpus pointer so concurrent readers of the old map never race
// with the write.
func (c *Corpus) Clone() *Corpus {
	items := make(map[string]*Item, len(c.Items))
	for id, it := range c.Items {
		items[id] = it
	}
	return &Corpus{Category: c.Category, Aspects: c.Aspects, Items: items}
}

// cowItem returns a copy-on-write replacement for the item: all scalar
// fields and the AlsoBought slice are shared, the Reviews slice is a fresh
// copy of length len(old.Reviews)+extra capacity.
func cowItem(old *Item, extraCap int) *Item {
	it := &Item{
		ID:         old.ID,
		Title:      old.Title,
		Category:   old.Category,
		Price:      old.Price,
		AlsoBought: old.AlsoBought,
		Reviews:    make([]*Review, len(old.Reviews), len(old.Reviews)+extraCap),
	}
	copy(it.Reviews, old.Reviews)
	return it
}

// validateReview checks one incoming review against the corpus vocabulary
// and the target item: non-empty ID, matching (or empty) item_id, in-range
// aspects, and valid polarities. The review's ItemID is normalized to the
// item on success.
func (c *Corpus) validateReview(it *Item, r *Review) error {
	if r == nil {
		return fmt.Errorf("%w (item %s)", ErrEmptyReviewID, it.ID)
	}
	if r.ID == "" {
		return fmt.Errorf("%w (item %s)", ErrEmptyReviewID, it.ID)
	}
	if r.ItemID != "" && r.ItemID != it.ID {
		return fmt.Errorf("%w: review %q carries item_id %q, want %q", ErrItemMismatch, r.ID, r.ItemID, it.ID)
	}
	z := c.Aspects.Len()
	for _, m := range r.Mentions {
		if m.Aspect < 0 || m.Aspect >= z {
			return fmt.Errorf("%w: aspect %d, z=%d (review %s)", ErrBadAspect, m.Aspect, z, r.ID)
		}
		if !m.Polarity.Valid() {
			return fmt.Errorf("%w: %d (review %s)", ErrBadPolarity, m.Polarity, r.ID)
		}
	}
	r.ItemID = it.ID
	return nil
}

// reviewIndex returns the position of the review with the given ID, or -1.
func reviewIndex(it *Item, reviewID string) int {
	for i, r := range it.Reviews {
		if r.ID == reviewID {
			return i
		}
	}
	return -1
}

// AppendReviews appends reviews to the item, validating each against the
// corpus vocabulary and rejecting IDs already present on the item. The item
// is replaced copy-on-write: the returned Mutation carries both snapshots,
// and every other item in the corpus keeps its pointer.
func (c *Corpus) AppendReviews(itemID string, reviews ...*Review) (*Mutation, error) {
	old, ok := c.Items[itemID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, itemID)
	}
	if len(reviews) == 0 {
		return nil, fmt.Errorf("model: append to %q with no reviews", itemID)
	}
	next := cowItem(old, len(reviews))
	ids := make([]string, 0, len(reviews))
	for _, r := range reviews {
		if err := c.validateReview(next, r); err != nil {
			return nil, err
		}
		if reviewIndex(next, r.ID) >= 0 {
			return nil, fmt.Errorf("%w: %q on item %s", ErrDuplicateReview, r.ID, itemID)
		}
		next.Reviews = append(next.Reviews, r)
		ids = append(ids, r.ID)
	}
	c.Items[itemID] = next
	return &Mutation{Kind: MutationAppend, ItemID: itemID, ReviewIDs: ids, Old: old, New: next}, nil
}

// UpdateReview replaces the item's review with the same ID, copy-on-write.
func (c *Corpus) UpdateReview(itemID string, r *Review) (*Mutation, error) {
	old, ok := c.Items[itemID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, itemID)
	}
	next := cowItem(old, 0)
	if err := c.validateReview(next, r); err != nil {
		return nil, err
	}
	pos := reviewIndex(next, r.ID)
	if pos < 0 {
		return nil, fmt.Errorf("%w: %q on item %s", ErrUnknownReview, r.ID, itemID)
	}
	next.Reviews[pos] = r
	c.Items[itemID] = next
	return &Mutation{Kind: MutationUpdate, ItemID: itemID, ReviewIDs: []string{r.ID}, Old: old, New: next}, nil
}

// RemoveReview deletes the item's review with the given ID, copy-on-write.
func (c *Corpus) RemoveReview(itemID, reviewID string) (*Mutation, error) {
	old, ok := c.Items[itemID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, itemID)
	}
	pos := reviewIndex(old, reviewID)
	if pos < 0 {
		return nil, fmt.Errorf("%w: %q on item %s", ErrUnknownReview, reviewID, itemID)
	}
	next := cowItem(old, 0)
	next.Reviews = append(next.Reviews[:pos], next.Reviews[pos+1:]...)
	c.Items[itemID] = next
	return &Mutation{Kind: MutationRemove, ItemID: itemID, ReviewIDs: []string{reviewID}, Old: old, New: next}, nil
}
