// Package model defines the review-corpus data model shared by every other
// package: aspects, sentiment-bearing aspect mentions, reviews, items
// (products) with their "also bought" comparison lists, corpora, and problem
// instances (one target item plus its comparative items).
//
// The paper treats aspect/opinion annotations "as given" (§2.1); in this
// repository they are either produced by the synthetic generator
// (internal/datagen) or re-derived from raw text by the frequency-based
// extractor (internal/aspectex).
package model

import (
	"errors"
	"fmt"
	"sort"
)

// Polarity is the sentiment polarity of an aspect mention.
type Polarity int

// Polarity values. Neutral only participates under the three-polarity
// opinion definition (§4.2.3); the default binary scheme ignores it.
const (
	Positive Polarity = iota
	Negative
	Neutral
)

// String returns a short human-readable polarity marker.
func (p Polarity) String() string {
	switch p {
	case Positive:
		return "+"
	case Negative:
		return "-"
	case Neutral:
		return "0"
	default:
		return fmt.Sprintf("Polarity(%d)", int(p))
	}
}

// Valid reports whether p is one of the defined polarities.
func (p Polarity) Valid() bool { return p >= Positive && p <= Neutral }

// Mention is one aspect-opinion observation inside a review: the aspect
// (index into the instance vocabulary), its polarity, and a signed strength
// score used by the unary-scale opinion definition.
type Mention struct {
	Aspect   int      `json:"aspect"`
	Polarity Polarity `json:"polarity"`
	// Score is the signed sentiment strength (positive for praise,
	// negative for complaints). The binary and 3-polarity schemes ignore
	// it; the unary-scale scheme aggregates it through a sigmoid.
	Score float64 `json:"score"`
}

// Review is a single product review with its aspect-opinion annotations.
type Review struct {
	ID       string    `json:"id"`
	ItemID   string    `json:"item_id"`
	Reviewer string    `json:"reviewer"`
	Rating   int       `json:"rating"` // 1..5 stars
	Text     string    `json:"text"`
	Mentions []Mention `json:"mentions"`
}

// AspectSet returns the distinct aspects mentioned in the review, sorted.
// A review contributes at most once per aspect to the distribution vectors
// (working example 1: per-review aspect presence).
func (r *Review) AspectSet() []int {
	seen := map[int]bool{}
	for _, m := range r.Mentions {
		seen[m.Aspect] = true
	}
	out := make([]int, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Ints(out)
	return out
}

// HasAspect reports whether the review mentions aspect a.
func (r *Review) HasAspect(a int) bool {
	for _, m := range r.Mentions {
		if m.Aspect == a {
			return true
		}
	}
	return false
}

// Item is a product with its full review set R_i and its comparison
// ("also bought") list.
type Item struct {
	ID         string    `json:"id"`
	Title      string    `json:"title"`
	Category   string    `json:"category"`
	Price      float64   `json:"price"`
	Reviews    []*Review `json:"reviews"`
	AlsoBought []string  `json:"also_bought"`
}

// ReviewByID returns the review with the given ID, or nil.
func (it *Item) ReviewByID(id string) *Review {
	for _, r := range it.Reviews {
		if r.ID == id {
			return r
		}
	}
	return nil
}

// Vocabulary maps aspect names to dense indices. It is the universal aspect
// set 𝒜 = {a₁..a_z} of the paper.
type Vocabulary struct {
	names []string
	index map[string]int
}

// NewVocabulary builds a vocabulary from names; duplicates are collapsed.
func NewVocabulary(names []string) *Vocabulary {
	v := &Vocabulary{index: make(map[string]int, len(names))}
	for _, n := range names {
		v.Add(n)
	}
	return v
}

// Add inserts name if absent and returns its index. The zero Vocabulary is
// ready to use.
func (v *Vocabulary) Add(name string) int {
	if v.index == nil {
		v.index = map[string]int{}
	}
	if i, ok := v.index[name]; ok {
		return i
	}
	i := len(v.names)
	v.names = append(v.names, name)
	v.index[name] = i
	return i
}

// Index returns the index of name and whether it is present.
func (v *Vocabulary) Index(name string) (int, bool) {
	i, ok := v.index[name]
	return i, ok
}

// Name returns the aspect name at index i.
func (v *Vocabulary) Name(i int) string { return v.names[i] }

// Len returns z, the number of aspects.
func (v *Vocabulary) Len() int { return len(v.names) }

// Names returns a copy of the aspect names in index order.
func (v *Vocabulary) Names() []string {
	out := make([]string, len(v.names))
	copy(out, v.names)
	return out
}

// Corpus is a full product category: its aspect vocabulary and items.
type Corpus struct {
	Category string
	Aspects  *Vocabulary
	Items    map[string]*Item
}

// NewCorpus returns an empty corpus for the category.
func NewCorpus(category string, aspects *Vocabulary) *Corpus {
	return &Corpus{Category: category, Aspects: aspects, Items: map[string]*Item{}}
}

// AddItem inserts the item, replacing any existing item with the same ID.
func (c *Corpus) AddItem(it *Item) { c.Items[it.ID] = it }

// ItemIDs returns all item IDs in sorted order (deterministic iteration).
func (c *Corpus) ItemIDs() []string {
	ids := make([]string, 0, len(c.Items))
	for id := range c.Items {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// NumReviews returns the total review count across the corpus.
func (c *Corpus) NumReviews() int {
	var n int
	for _, it := range c.Items {
		n += len(it.Reviews)
	}
	return n
}

// Instance is one problem instance of the paper: Items[0] is the target item
// p₁ and Items[1:] are the comparative items p₂..p_n. Every target product of
// a corpus induces an independent instance (§4.1.1).
type Instance struct {
	Aspects *Vocabulary
	Items   []*Item
}

// Errors reported by instance construction and validation.
var (
	ErrNoTarget      = errors.New("model: instance has no target item")
	ErrUnknownItem   = errors.New("model: also-bought references unknown item")
	ErrBadAspect     = errors.New("model: mention references aspect outside vocabulary")
	ErrBadPolarity   = errors.New("model: mention has invalid polarity")
	ErrEmptyReviewID = errors.New("model: review has empty ID")
)

// NewInstance assembles an instance from a corpus: the target item followed
// by every also-bought item that exists in the corpus. maxComparative > 0
// truncates the comparison list.
func (c *Corpus) NewInstance(targetID string, maxComparative int) (*Instance, error) {
	target, ok := c.Items[targetID]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownItem, targetID)
	}
	inst := &Instance{Aspects: c.Aspects, Items: []*Item{target}}
	for _, id := range target.AlsoBought {
		if maxComparative > 0 && len(inst.Items)-1 >= maxComparative {
			break
		}
		if other, ok := c.Items[id]; ok && id != targetID {
			inst.Items = append(inst.Items, other)
		}
	}
	return inst, nil
}

// Target returns the target item p₁.
func (inst *Instance) Target() *Item { return inst.Items[0] }

// NumItems returns n, the number of items in the instance.
func (inst *Instance) NumItems() int { return len(inst.Items) }

// Validate checks structural invariants: a target exists, all mentions point
// inside the vocabulary with valid polarities, and review IDs are non-empty
// and unique within their item.
func (inst *Instance) Validate() error {
	if len(inst.Items) == 0 {
		return ErrNoTarget
	}
	z := inst.Aspects.Len()
	for _, it := range inst.Items {
		seen := map[string]bool{}
		for _, r := range it.Reviews {
			if r.ID == "" {
				return fmt.Errorf("%w (item %s)", ErrEmptyReviewID, it.ID)
			}
			if seen[r.ID] {
				return fmt.Errorf("model: duplicate review ID %q in item %s", r.ID, it.ID)
			}
			seen[r.ID] = true
			for _, m := range r.Mentions {
				if m.Aspect < 0 || m.Aspect >= z {
					return fmt.Errorf("%w: aspect %d, z=%d (review %s)", ErrBadAspect, m.Aspect, z, r.ID)
				}
				if !m.Polarity.Valid() {
					return fmt.Errorf("%w: %d (review %s)", ErrBadPolarity, m.Polarity, r.ID)
				}
			}
		}
	}
	return nil
}
