package model

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// corpusJSON is the on-disk representation of a corpus.
type corpusJSON struct {
	Category string   `json:"category"`
	Aspects  []string `json:"aspects"`
	Items    []*Item  `json:"items"`
}

// WriteJSON serializes the corpus to w with stable item ordering.
func (c *Corpus) WriteJSON(w io.Writer) error {
	out := corpusJSON{Category: c.Category, Aspects: c.Aspects.Names()}
	for _, id := range c.ItemIDs() {
		out.Items = append(out.Items, c.Items[id])
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadCorpusJSON deserializes a corpus written by WriteJSON.
func ReadCorpusJSON(r io.Reader) (*Corpus, error) {
	var in corpusJSON
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("model: decoding corpus: %w", err)
	}
	c := NewCorpus(in.Category, NewVocabulary(in.Aspects))
	for _, it := range in.Items {
		c.AddItem(it)
	}
	return c, nil
}

// SaveCorpus writes the corpus to path.
func SaveCorpus(c *Corpus, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := c.WriteJSON(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadCorpus reads a corpus from path.
func LoadCorpus(path string) (*Corpus, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCorpusJSON(f)
}

// SortReviewsByID orders every item's reviews lexicographically by ID;
// useful for deterministic comparisons after deserialization.
func (c *Corpus) SortReviewsByID() {
	for _, it := range c.Items {
		sort.Slice(it.Reviews, func(i, j int) bool { return it.Reviews[i].ID < it.Reviews[j].ID })
	}
}
