package model

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns a structural hash of the corpus: category, aspect
// vocabulary, item IDs with their also-bought lists, and every review's ID
// and rating. Two corpora with the same fingerprint induce the same
// selection instances for all practical purposes, so serving caches use it
// (together with a load epoch) to key cached results and to invalidate
// them when a corpus is replaced.
//
// The walk is deterministic (ItemIDs sorts) and O(total reviews); callers
// that need it repeatedly should compute it once per corpus load.
func (c *Corpus) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeStr := func(s string) {
		binary.BigEndian.PutUint64(buf[:], uint64(len(s)))
		h.Write(buf[:])
		h.Write([]byte(s))
	}
	writeStr(c.Category)
	if c.Aspects != nil {
		for _, name := range c.Aspects.Names() {
			writeStr(name)
		}
	}
	for _, id := range c.ItemIDs() {
		it := c.Items[id]
		writeStr(it.ID)
		for _, ab := range it.AlsoBought {
			writeStr(ab)
		}
		for _, r := range it.Reviews {
			writeStr(r.ID)
			binary.BigEndian.PutUint64(buf[:], uint64(int64(r.Rating)))
			h.Write(buf[:])
			binary.BigEndian.PutUint64(buf[:], uint64(len(r.Mentions)))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}
