package model

import (
	"errors"
	"testing"
)

func mutCorpus() *Corpus {
	c := NewCorpus("Test", NewVocabulary([]string{"battery", "screen"}))
	c.AddItem(&Item{ID: "p1", Reviews: []*Review{
		{ID: "r1", ItemID: "p1", Rating: 4, Mentions: []Mention{{Aspect: 0, Polarity: Positive}}},
		{ID: "r2", ItemID: "p1", Rating: 2, Mentions: []Mention{{Aspect: 1, Polarity: Negative}}},
	}})
	c.AddItem(&Item{ID: "p2", Reviews: []*Review{
		{ID: "r3", ItemID: "p2", Rating: 5},
	}})
	return c
}

func TestAppendReviewsCopyOnWrite(t *testing.T) {
	c := mutCorpus()
	oldP1, oldP2 := c.Items["p1"], c.Items["p2"]
	m, err := c.AppendReviews("p1", &Review{ID: "r9", Rating: 3, Mentions: []Mention{{Aspect: 1, Polarity: Positive}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MutationAppend || m.ItemID != "p1" || len(m.ReviewIDs) != 1 || m.ReviewIDs[0] != "r9" {
		t.Fatalf("bad mutation: %+v", m)
	}
	if m.Old != oldP1 {
		t.Fatal("mutation Old is not the pre-mutation snapshot")
	}
	if m.New == oldP1 {
		t.Fatal("append mutated the item in place; want copy-on-write")
	}
	if c.Items["p1"] != m.New {
		t.Fatal("corpus map does not serve the new snapshot")
	}
	if c.Items["p2"] != oldP2 {
		t.Fatal("untouched item lost pointer identity")
	}
	if len(oldP1.Reviews) != 2 {
		t.Fatalf("old snapshot grew: %d reviews", len(oldP1.Reviews))
	}
	if len(m.New.Reviews) != 3 || m.New.Reviews[2].ID != "r9" {
		t.Fatalf("new snapshot wrong: %+v", m.New.Reviews)
	}
	if m.New.Reviews[2].ItemID != "p1" {
		t.Fatalf("appended review item_id not normalized: %q", m.New.Reviews[2].ItemID)
	}
	// Old review pointers are shared — the basis for incremental feature
	// refill.
	if m.New.Reviews[0] != oldP1.Reviews[0] || m.New.Reviews[1] != oldP1.Reviews[1] {
		t.Fatal("unchanged reviews lost pointer identity")
	}
}

func TestAppendReviewsValidation(t *testing.T) {
	c := mutCorpus()
	cases := []struct {
		name string
		item string
		rev  *Review
		want error
	}{
		{"unknown item", "nope", &Review{ID: "x"}, ErrUnknownItem},
		{"empty id", "p1", &Review{}, ErrEmptyReviewID},
		{"duplicate id", "p1", &Review{ID: "r1"}, ErrDuplicateReview},
		{"item mismatch", "p1", &Review{ID: "x", ItemID: "p2"}, ErrItemMismatch},
		{"bad aspect", "p1", &Review{ID: "x", Mentions: []Mention{{Aspect: 99}}}, ErrBadAspect},
		{"bad polarity", "p1", &Review{ID: "x", Mentions: []Mention{{Aspect: 0, Polarity: Polarity(7)}}}, ErrBadPolarity},
	}
	for _, tc := range cases {
		if _, err := c.AppendReviews(tc.item, tc.rev); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if len(c.Items["p1"].Reviews) != 2 {
		t.Fatal("failed append must not change the corpus")
	}
	// Duplicate inside one batch is rejected too.
	if _, err := c.AppendReviews("p1", &Review{ID: "n1"}, &Review{ID: "n1"}); !errors.Is(err, ErrDuplicateReview) {
		t.Errorf("batch duplicate: got %v", err)
	}
}

func TestUpdateReview(t *testing.T) {
	c := mutCorpus()
	old := c.Items["p1"]
	m, err := c.UpdateReview("p1", &Review{ID: "r2", Rating: 5, Mentions: []Mention{{Aspect: 0, Polarity: Positive}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MutationUpdate {
		t.Fatalf("kind = %v", m.Kind)
	}
	if got := c.Items["p1"].Reviews[1]; got.Rating != 5 {
		t.Fatalf("update not applied: %+v", got)
	}
	if old.Reviews[1].Rating != 2 {
		t.Fatal("update mutated the old snapshot")
	}
	if c.Items["p1"].Reviews[0] != old.Reviews[0] {
		t.Fatal("untouched review lost pointer identity")
	}
	if _, err := c.UpdateReview("p1", &Review{ID: "zzz"}); !errors.Is(err, ErrUnknownReview) {
		t.Errorf("unknown review: got %v", err)
	}
}

func TestRemoveReview(t *testing.T) {
	c := mutCorpus()
	old := c.Items["p1"]
	m, err := c.RemoveReview("p1", "r1")
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != MutationRemove {
		t.Fatalf("kind = %v", m.Kind)
	}
	got := c.Items["p1"]
	if len(got.Reviews) != 1 || got.Reviews[0].ID != "r2" {
		t.Fatalf("remove left %+v", got.Reviews)
	}
	if len(old.Reviews) != 2 {
		t.Fatal("remove mutated the old snapshot")
	}
	if _, err := c.RemoveReview("p1", "r1"); !errors.Is(err, ErrUnknownReview) {
		t.Errorf("double remove: got %v", err)
	}
}

func TestCloneSharesItemPointers(t *testing.T) {
	c := mutCorpus()
	cl := c.Clone()
	if cl == c {
		t.Fatal("clone returned the receiver")
	}
	for id, it := range c.Items {
		if cl.Items[id] != it {
			t.Fatalf("item %s not shared", id)
		}
	}
	// Mutating the clone leaves the original map untouched.
	if _, err := cl.AppendReviews("p1", &Review{ID: "new"}); err != nil {
		t.Fatal(err)
	}
	if len(c.Items["p1"].Reviews) != 2 {
		t.Fatal("clone mutation leaked into the original corpus")
	}
}

func TestMutationChangesFingerprint(t *testing.T) {
	c := mutCorpus()
	before := c.Fingerprint()
	if _, err := c.AppendReviews("p2", &Review{ID: "r4"}); err != nil {
		t.Fatal(err)
	}
	if c.Fingerprint() == before {
		t.Fatal("fingerprint unchanged after append")
	}
}
