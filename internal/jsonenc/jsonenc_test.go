package jsonenc

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// marshalString is the reference: json.Marshal of a bare string.
func marshalString(t testing.TB, s string) []byte {
	t.Helper()
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("json.Marshal(%q): %v", s, err)
	}
	return b
}

func TestAppendStringParity(t *testing.T) {
	cases := []string{
		"",
		"plain ascii",
		`quotes " and \ backslash`,
		"controls \b\f\n\r\t\x00\x01\x1f",
		"html <b>&amp;</b> > <",
		"unicode – café — 日本語 🎉",
		"line seps   and   embedded",
		"invalid \xff\xfe utf8 \xc3\x28 tail \x80",
		"mixed  \xffé<&>\t",
		strings.Repeat("long ascii run without escapes ", 100),
	}
	for _, s := range cases {
		want := marshalString(t, s)
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Errorf("AppendString(%q)\n got %s\nwant %s", s, got, want)
		}
	}
}

func TestAppendFloatParity(t *testing.T) {
	cases := []float64{
		0, math.Copysign(0, -1), 1, -1, 3.14159, 0.1, 2.0 / 3.0,
		1e-6, 9.999999e-7, 1e-7, 1e21, 9.99e20, 1e22, -1e-9, -1e300,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 123456789.123456789,
		0.001, 42, 1e20, 5e-324,
	}
	for _, f := range cases {
		want, err := json.Marshal(f)
		if err != nil {
			t.Fatalf("json.Marshal(%v): %v", f, err)
		}
		got := AppendFloat(nil, f)
		if string(got) != string(want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestAppendFloatNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := AppendFloat(nil, f); string(got) != "null" {
			t.Errorf("AppendFloat(%v) = %s, want null", f, got)
		}
	}
}

func TestAppendIntBoolUint(t *testing.T) {
	if got := AppendInt(nil, -42); string(got) != "-42" {
		t.Errorf("AppendInt = %s", got)
	}
	if got := AppendUint(nil, 18446744073709551615); string(got) != "18446744073709551615" {
		t.Errorf("AppendUint = %s", got)
	}
	if got := AppendBool(nil, true); string(got) != "true" {
		t.Errorf("AppendBool = %s", got)
	}
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	b.B = append(b.B, "hello"...)
	PutBuffer(b)
	c := GetBuffer()
	if len(c.B) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(c.B))
	}
	PutBuffer(c)
}

func FuzzAppendStringParity(f *testing.F) {
	f.Add("")
	f.Add("hello <world> & \"friends\"\n")
	f.Add("\xff\x80 caf\xc3\xa9   ")
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		got := AppendString(nil, s)
		if string(got) != string(want) {
			t.Fatalf("AppendString(%q)\n got %s\nwant %s", s, got, want)
		}
	})
}

func FuzzAppendFloatParity(f *testing.F) {
	f.Add(0.0)
	f.Add(1e-7)
	f.Add(-3.25e21)
	f.Fuzz(func(t *testing.T, v float64) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Skip() // json.Marshal errors; AppendFloat writes null by contract
		}
		want, err := json.Marshal(v)
		if err != nil {
			t.Skip()
		}
		got := AppendFloat(nil, v)
		if string(got) != string(want) {
			t.Fatalf("AppendFloat(%v) = %s, want %s", v, got, want)
		}
	})
}
