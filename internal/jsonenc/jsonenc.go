// Package jsonenc provides allocation-free append-style JSON encoding
// primitives that are byte-for-byte identical to encoding/json's output,
// plus a pooled buffer for assembling whole response payloads.
//
// The serving edge marshals the same handful of response shapes on every
// request; reflection-based encoding/json walks their types each time and
// allocates intermediate state per call. Hand-rolled appendJSON encoders
// built from these primitives write straight into a caller-supplied []byte
// instead. Byte identity with encoding/json is a hard invariant, not a
// nicety: cached response payloads, epoch-keyed cache entries, and the
// byte-parity certificates in internal/service all compare encoder output
// against json.Marshal, so any divergence would split the cache or fail
// parity. The contract is locked by golden and fuzz tests in this package
// and in internal/service.
//
// Scope: these primitives mirror json.Marshal with its default options
// (HTML escaping ON — '<', '>', '&' become \u003c etc. — and
// U+2028/U+2029 escaped). Non-finite floats, which json.Marshal rejects
// with UnsupportedValueError, are appended as "null"; callers on paths
// where NaN/Inf is possible must guard first (see AppendFloat).
package jsonenc

import (
	"math"
	"strconv"
	"sync"
	"unicode/utf8"
)

const hexDigits = "0123456789abcdef"

// safeSet mirrors encoding/json's htmlSafeSet: ASCII bytes that can be
// emitted inside a JSON string without escaping when HTML escaping is on
// (the json.Marshal default). Everything outside — controls, '"', '\\',
// '<', '>', '&' — must be escaped.
var safeSet = [utf8.RuneSelf]bool{}

func init() {
	for b := 0x20; b < utf8.RuneSelf; b++ {
		safeSet[b] = true
	}
	for _, b := range []byte{'"', '\\', '<', '>', '&'} {
		safeSet[b] = false
	}
}

// AppendString appends s as a JSON string literal (with surrounding
// quotes), escaping exactly as json.Marshal would: short escapes for
// \b \f \n \r \t \" \\, \u00XX for remaining controls and for < > &
// (HTML escaping), the literal escape � for invalid UTF-8 bytes, and
//   /   for the JavaScript line separators.
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if safeSet[b] {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendFloat appends f formatted exactly as json.Marshal formats a
// float64: shortest representation, 'f' form within [1e-6, 1e21), 'e' form
// outside with the exponent's leading zero stripped (1e-09 → 1e-9).
//
// json.Marshal fails the whole marshal on NaN/±Inf; an append-style
// encoder has no error channel, so non-finite values are appended as
// "null" instead. Every serving-edge float (objectives, weights, elapsed
// milliseconds, quality scores) is finite by construction; parity tests
// guard non-finite inputs.
func AppendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, "null"...)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// AppendInt appends i in base 10.
func AppendInt(dst []byte, i int64) []byte { return strconv.AppendInt(dst, i, 10) }

// AppendUint appends u in base 10.
func AppendUint(dst []byte, u uint64) []byte { return strconv.AppendUint(dst, u, 10) }

// AppendBool appends "true" or "false".
func AppendBool(dst []byte, b bool) []byte { return strconv.AppendBool(dst, b) }

// Buffer is a reusable byte buffer checked out of the package pool. The
// backing slice grows to the largest payload it has carried and is kept
// across uses, so steady-state encoding performs no buffer allocations.
type Buffer struct {
	B []byte
}

// maxPooledBuffer caps the capacity a returned buffer may retain. A single
// giant response (a full-corpus listing, say) must not pin its slab in the
// pool forever; oversized buffers are dropped and the pool re-grows to the
// workload's steady-state size.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 4096)} }}

// GetBuffer checks a buffer out of the pool with length reset to zero.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer returns a buffer to the pool. Callers must not retain views
// into b.B afterwards.
func PutBuffer(b *Buffer) {
	if cap(b.B) > maxPooledBuffer {
		return
	}
	bufPool.Put(b)
}
