package featstore

import (
	"fmt"
	"math"
	"reflect"
	"sync"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/faultinject"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// The store must satisfy the injection point core exposes.
var _ core.FeatureSource = (*Store)(nil)

func testCorpus(tb testing.TB) *model.Corpus {
	tb.Helper()
	c := model.NewCorpus("Test", model.NewVocabulary([]string{"a0", "a1", "a2"}))
	for i := 0; i < 12; i++ {
		it := &model.Item{ID: fmt.Sprintf("p%d", i), Title: fmt.Sprintf("P%d", i)}
		for j := 0; j < 7; j++ {
			pol := model.Positive
			if (i+j)%2 == 1 {
				pol = model.Negative
			}
			it.Reviews = append(it.Reviews, &model.Review{
				ID: fmt.Sprintf("p%d-r%d", i, j), ItemID: it.ID, Rating: 1 + (i+j)%5,
				Mentions: []model.Mention{
					{Aspect: j % 3, Polarity: pol, Score: 1},
					{Aspect: (i + j) % 3, Polarity: model.Positive, Score: 0.5},
				},
			})
		}
		c.AddItem(it)
	}
	return c
}

func TestItemColumnsMatchDirectComputation(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	for _, sch := range opinion.Schemes() {
		for _, id := range c.ItemIDs() {
			it := c.Items[id]
			op, asp, ok := s.ItemColumns(it, sch, z)
			if !ok {
				t.Fatalf("%s/%s: not ok", sch.Name(), id)
			}
			if len(op) != len(it.Reviews) || len(asp) != len(it.Reviews) {
				t.Fatalf("%s/%s: got %d/%d columns, want %d", sch.Name(), id, len(op), len(asp), len(it.Reviews))
			}
			for j, r := range it.Reviews {
				if want := sch.Column(r, z); !reflect.DeepEqual(op[j], want) {
					t.Errorf("%s/%s review %d: op = %v want %v", sch.Name(), id, j, op[j], want)
				}
				if want := opinion.AspectColumn(r, z); !reflect.DeepEqual(asp[j], want) {
					t.Errorf("%s/%s review %d: asp = %v want %v", sch.Name(), id, j, asp[j], want)
				}
			}
		}
	}
}

func TestItemColumnsMemoizes(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	it := c.Items[c.ItemIDs()[0]]
	op1, asp1, _ := s.ItemColumns(it, opinion.Binary{}, z)
	op2, asp2, _ := s.ItemColumns(it, opinion.Binary{}, z)
	if &op1[0][0] != &op2[0][0] || &asp1[0][0] != &asp2[0][0] {
		t.Error("repeated lookup did not return the memoized slabs")
	}
	// Distinct schemes are distinct entries.
	op3, _, _ := s.ItemColumns(it, opinion.ThreePolarity{}, z)
	if len(op3[0]) == len(op1[0]) {
		t.Error("3-polarity columns should have a different dim than binary")
	}
}

func TestItemColumnsRejectsForeignItems(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	foreign := &model.Item{ID: "p0"} // same ID, different pointer
	if _, _, ok := s.ItemColumns(foreign, opinion.Binary{}, z); ok {
		t.Error("foreign item pointer accepted")
	}
	if _, _, ok := s.ItemColumns(c.Items["p0"], opinion.Binary{}, z+1); ok {
		t.Error("mismatched z accepted")
	}
}

func TestPrecomputeAndConcurrentAccess(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	s.Precompute(opinion.Binary{})
	if got, want := s.Len(), len(c.Items); got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	var wg sync.WaitGroup
	ids := c.ItemIDs()
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 50; n++ {
				it := c.Items[ids[(w+n)%len(ids)]]
				sch := opinion.Schemes()[n%len(opinion.Schemes())]
				op, _, ok := s.ItemColumns(it, sch, z)
				if !ok || len(op) != len(it.Reviews) {
					t.Errorf("concurrent lookup failed for %s", it.ID)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// Selections driven through the store must be identical to selections that
// recompute features per request.
func TestSelectionsIdenticalWithStore(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	inst, err := instanceOf(c)
	if err != nil {
		t.Fatal(err)
	}
	base := core.Config{M: 3, Lambda: 1, Mu: 0.2}
	withStore := base
	withStore.Features = s
	for _, sel := range []core.Selector{core.CompaReSetS{}, core.CompaReSetSPlus{}} {
		a, err := sel.Select(inst, base)
		if err != nil {
			t.Fatal(err)
		}
		b, err := sel.Select(inst, withStore)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Indices, b.Indices) || a.Objective != b.Objective {
			t.Errorf("%s: selection differs with feature store: %+v vs %+v", sel.Name(), a, b)
		}
	}
}

// instanceOf builds an instance over the first corpus item with every other
// item as comparison.
func instanceOf(c *model.Corpus) (*model.Instance, error) {
	ids := c.ItemIDs()
	target := c.Items[ids[0]]
	target.AlsoBought = append([]string(nil), ids[1:]...)
	return c.NewInstance(target.ID, 0)
}

var sinkVec linalg.Vector

func BenchmarkItemColumnsWarm(b *testing.B) {
	c := testCorpus(b)
	s := New(c)
	s.Precompute(opinion.Binary{})
	it := c.Items[c.ItemIDs()[0]]
	z := c.Aspects.Len()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, _, _ := s.ItemColumns(it, opinion.Binary{}, z)
		sinkVec = op[0]
	}
}

func TestFillFaultFallsBackGracefully(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	it := c.Items[c.ItemIDs()[0]]
	sch := opinion.Binary{}

	// An injected fill fault declines the item instead of failing the
	// request: callers recompute the columns themselves.
	faultinject.Arm(faultinject.PointFeatstoreFill, faultinject.Fault{
		Mode: faultinject.ModeError, Remaining: 1,
	})
	if _, _, ok := s.ItemColumns(it, sch, z); ok {
		t.Fatal("ItemColumns ok under injected fill fault, want decline")
	}
	// The fault self-disarmed: the next touch fills and serves normally.
	op, asp, ok := s.ItemColumns(it, sch, z)
	if !ok || len(op) != len(it.Reviews) || len(asp) != len(it.Reviews) {
		t.Fatalf("post-fault fill: ok=%v op=%d asp=%d", ok, len(op), len(asp))
	}
	// Already-resident entries are immune to fill faults (nothing to fill).
	faultinject.Arm(faultinject.PointFeatstoreFill, faultinject.Fault{Mode: faultinject.ModeError})
	if _, _, ok := s.ItemColumns(it, sch, z); !ok {
		t.Error("resident entry declined under fill fault")
	}
}

// The compact slabs must satisfy the FeatureSource32 injection point too.
var _ core.FeatureSource32 = (*Store)(nil)
var _ core.TargetSource = (*Store)(nil)

// TestFloat32SlabTolerance pins the accuracy contract of compact mode (this
// name is referenced by the kernel doc in internal/linalg/kernels32.go):
// every float32 slab entry is the correctly-rounded narrowing of its float64
// source, i.e. within relative 1e-6 per term — float32 rounding error only,
// never accumulation error, because accumulation always happens in float64.
func TestFloat32SlabTolerance(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	for _, sch := range opinion.Schemes() {
		for _, id := range c.ItemIDs() {
			it := c.Items[id]
			op, asp, ok := s.ItemColumns(it, sch, z)
			op32, asp32, ok32 := s.ItemColumns32(it, sch, z)
			if !ok || !ok32 {
				t.Fatalf("%s/%s: lookup failed (ok=%v ok32=%v)", sch.Name(), id, ok, ok32)
			}
			check := func(fam string, wide []linalg.Vector, narrow []linalg.Vector32) {
				t.Helper()
				if len(narrow) != len(wide) {
					t.Fatalf("%s/%s %s: %d narrow columns, want %d", sch.Name(), id, fam, len(narrow), len(wide))
				}
				for j := range wide {
					for i := range wide[j] {
						w, n := wide[j][i], float64(narrow[j][i])
						if w == n {
							continue
						}
						rel := math.Abs(w-n) / math.Max(math.Abs(w), 1)
						if rel > 1e-6 {
							t.Errorf("%s/%s %s[%d][%d]: float32=%g float64=%g rel=%g",
								sch.Name(), id, fam, j, i, n, w, rel)
						}
						if float32(w) != narrow[j][i] {
							t.Errorf("%s/%s %s[%d][%d]: not the rounded narrowing of %g",
								sch.Name(), id, fam, j, i, w)
						}
					}
				}
			}
			check("op", op, op32)
			check("asp", asp, asp32)
		}
	}
}

// ItemTargets must serve exactly the vectors the per-request target pass
// would compute, and memoize them.
func TestItemTargetsMatchDirectComputation(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	for _, sch := range opinion.Schemes() {
		for _, id := range c.ItemIDs() {
			it := c.Items[id]
			tau, phi, ok := s.ItemTargets(it, sch, z)
			if !ok {
				t.Fatalf("%s/%s: not ok", sch.Name(), id)
			}
			if want := sch.Vector(it.Reviews, z); !reflect.DeepEqual(tau, want) {
				t.Errorf("%s/%s: tau = %v want %v", sch.Name(), id, tau, want)
			}
			if want := opinion.AspectVector(it.Reviews, z); !reflect.DeepEqual(phi, want) {
				t.Errorf("%s/%s: phi = %v want %v", sch.Name(), id, phi, want)
			}
			tau2, phi2, _ := s.ItemTargets(it, sch, z)
			if &tau[0] != &tau2[0] || &phi[0] != &phi2[0] {
				t.Errorf("%s/%s: repeated lookup did not return the memoized vectors", sch.Name(), id)
			}
		}
	}
	// The usual guards apply: foreign pointers and mismatched z decline.
	if _, _, ok := s.ItemTargets(&model.Item{ID: "p0"}, opinion.Binary{}, z); ok {
		t.Error("foreign item pointer accepted")
	}
	if _, _, ok := s.ItemTargets(c.Items["p0"], opinion.Binary{}, z+1); ok {
		t.Error("mismatched z accepted")
	}
}

// mutate appends one review to p0 via the model mutation API against a
// clone, mirroring the serving layer's copy-on-write flow.
func mutate(t *testing.T, c *model.Corpus) (*model.Corpus, *model.Mutation) {
	t.Helper()
	next := c.Clone()
	m, err := next.AppendReviews("p0", &model.Review{
		ID: "p0-new", Rating: 5,
		Mentions: []model.Mention{{Aspect: 2, Polarity: model.Positive, Score: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return next, m
}

func TestApplyRefillsOnlyTouchedColumns(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	sch := opinion.Schemes()[0]
	s.Precompute(sch)
	resident := s.Len()
	oldP0, oldP1 := c.Items["p0"], c.Items["p1"]
	op1Before, _, _ := s.ItemColumns(oldP1, sch, z)

	next, m := mutate(t, c)
	computed, reused := s.Apply(next, m)
	if computed != 1 {
		t.Errorf("computed = %d, want 1 (only the appended review)", computed)
	}
	if reused != len(oldP0.Reviews) {
		t.Errorf("reused = %d, want %d", reused, len(oldP0.Reviews))
	}
	if s.Len() != resident {
		t.Errorf("Len = %d, want %d (refill must replace, not grow)", s.Len(), resident)
	}

	// The old snapshot no longer resolves; the new one does, with columns
	// matching direct computation.
	if _, _, ok := s.ItemColumns(oldP0, sch, z); ok {
		t.Error("stale item snapshot still resolves after Apply")
	}
	newP0 := next.Items["p0"]
	op, asp, ok := s.ItemColumns(newP0, sch, z)
	if !ok || len(op) != len(newP0.Reviews) {
		t.Fatalf("new snapshot: ok=%v len=%d", ok, len(op))
	}
	for j, r := range newP0.Reviews {
		if want := sch.Column(r, z); !reflect.DeepEqual(op[j], want) {
			t.Errorf("review %d: op = %v want %v", j, op[j], want)
		}
		if want := opinion.AspectColumn(r, z); !reflect.DeepEqual(asp[j], want) {
			t.Errorf("review %d: asp = %v want %v", j, asp[j], want)
		}
	}
	// Untouched items keep identical column views (same backing slabs).
	op1After, _, ok := s.ItemColumns(oldP1, sch, z)
	if !ok {
		t.Fatal("untouched item lost residency")
	}
	for j := range op1Before {
		if &op1Before[j][0] != &op1After[j][0] {
			t.Fatalf("untouched item column %d was rebuilt", j)
		}
	}
}

func TestLazyRebuildOnStaleEntry(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	sch := opinion.Schemes()[0]
	s.ItemColumns(c.Items["p0"], sch, z) // resident block for the old snapshot

	// Rebind without Apply: the first touch of the new snapshot must refill
	// lazily instead of serving the stale block.
	next, m := mutate(t, c)
	s.corpus.Store(next)
	op, _, ok := s.ItemColumns(m.New, sch, z)
	if !ok || len(op) != len(m.New.Reviews) {
		t.Fatalf("lazy rebuild: ok=%v len=%d want %d", ok, len(op), len(m.New.Reviews))
	}
	if want := sch.Column(m.New.Reviews[len(op)-1], z); !reflect.DeepEqual(op[len(op)-1], want) {
		t.Errorf("appended column = %v want %v", op[len(op)-1], want)
	}
}

func TestApplyAfterRemoveAndUpdate(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	sch := opinion.Schemes()[0]
	s.Precompute(sch)

	next := c.Clone()
	m, err := next.RemoveReview("p0", "p0-r3")
	if err != nil {
		t.Fatal(err)
	}
	computed, reused := s.Apply(next, m)
	if computed != 0 || reused != len(next.Items["p0"].Reviews) {
		t.Errorf("remove: computed=%d reused=%d", computed, reused)
	}

	after := next.Clone()
	m, err = after.UpdateReview("p0", &model.Review{
		ID: "p0-r1", Rating: 1,
		Mentions: []model.Mention{{Aspect: 0, Polarity: model.Negative, Score: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	computed, reused = s.Apply(after, m)
	if computed != 1 || reused != len(after.Items["p0"].Reviews)-1 {
		t.Errorf("update: computed=%d reused=%d", computed, reused)
	}
	it := after.Items["p0"]
	op, _, ok := s.ItemColumns(it, sch, z)
	if !ok {
		t.Fatal("post-update snapshot not resident")
	}
	for j, r := range it.Reviews {
		if want := sch.Column(r, z); !reflect.DeepEqual(op[j], want) {
			t.Errorf("review %d: op = %v want %v", j, op[j], want)
		}
	}
}

func TestApplyResetsTargets(t *testing.T) {
	c := testCorpus(t)
	s := New(c)
	z := c.Aspects.Len()
	sch := opinion.Schemes()[0]
	tauBefore, _, ok := s.ItemTargets(c.Items["p0"], sch, z)
	if !ok {
		t.Fatal("targets not served")
	}
	next, m := mutate(t, c)
	s.Apply(next, m)
	tauAfter, phiAfter, ok := s.ItemTargets(next.Items["p0"], sch, z)
	if !ok {
		t.Fatal("targets not served after Apply")
	}
	if want := sch.Vector(next.Items["p0"].Reviews, z); !reflect.DeepEqual(tauAfter, want) {
		t.Errorf("tau after mutation = %v want %v", tauAfter, want)
	}
	if want := opinion.AspectVector(next.Items["p0"].Reviews, z); !reflect.DeepEqual(phiAfter, want) {
		t.Errorf("phiR after mutation = %v want %v", phiAfter, want)
	}
	if reflect.DeepEqual(tauBefore, tauAfter) {
		t.Error("tau unchanged although a 5-star review was appended")
	}
}
