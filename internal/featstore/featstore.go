// Package featstore holds corpus-resident precomputed review features.
//
// Every selection request that references a loaded corpus used to recompute
// each review's opinion column π and aspect column φ inside the per-request
// feature cache (internal/core), even though those columns depend only on
// the review and the opinion scheme — never on the request. featstore
// computes them once per (corpus, scheme): either eagerly when a corpus is
// loaded (Precompute) or lazily on first touch, guarded per shard so
// concurrent requests for different items never contend on one lock.
//
// The columns of one item live in two immutable flat []float64 slabs (one
// for opinion columns, one for aspect columns); the returned
// linalg.Vector views alias those slabs. Callers must treat them as
// read-only — internal/core's featureCache only ever reads them (it copies
// into design matrices and accumulates into private scratch), which is what
// makes sharing across concurrent requests safe.
//
// A Store is bound to one corpus; replacing a corpus at runtime replaces
// its Store wholesale, so stale features can never leak across corpus
// generations.
package featstore

import (
	"hash/fnv"
	"sync"

	"comparesets/internal/faultinject"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/opinion"
)

// shardCount is the power-of-two number of lazy-compute shards.
const shardCount = 16

// Store caches per-review feature columns for one corpus.
type Store struct {
	corpus *model.Corpus
	z      int
	shards [shardCount]shard
	m      *obs.CacheMetrics
}

type shard struct {
	mu    sync.Mutex
	items map[string]*entry
}

// entry is one (scheme, item) feature block: vector views over two flat
// slabs.
type entry struct {
	op, asp []linalg.Vector
}

// New returns an empty store bound to the corpus. Features are computed
// lazily on first touch; call Precompute to front-load them.
func New(c *model.Corpus) *Store {
	s := &Store{
		corpus: c,
		z:      c.Aspects.Len(),
		m:      obs.NewCacheMetrics(obs.Default(), "featstore"),
	}
	for i := range s.shards {
		s.shards[i].items = map[string]*entry{}
	}
	return s
}

// key is the (scheme, item) cache key; 0x1f cannot occur in scheme names.
func key(schemeName, itemID string) string { return schemeName + "\x1f" + itemID }

func (s *Store) shardFor(k string) *shard {
	h := fnv.New64a()
	h.Write([]byte(k))
	return &s.shards[h.Sum64()&(shardCount-1)]
}

// ItemColumns implements core.FeatureSource: it returns the precomputed
// opinion and aspect columns of the item's reviews under the scheme,
// computing and memoizing them on first touch. ok is false when the item
// does not belong to the bound corpus or z disagrees with the corpus
// vocabulary — callers then fall back to computing features themselves.
func (s *Store) ItemColumns(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector, ok bool) {
	if z != s.z || s.corpus.Items[it.ID] != it {
		return nil, nil, false
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[k]
	if !ok {
		// An injected fill fault declines the item (ok=false): callers fall
		// back to computing the columns per request, so a failing feature
		// store degrades throughput, never correctness.
		if err := faultinject.Check(faultinject.PointFeatstoreFill); err != nil {
			return nil, nil, false
		}
		s.m.Misses.Inc()
		e = s.compute(it, sch)
		sh.items[k] = e
	} else {
		s.m.Hits.Inc()
	}
	return e.op, e.asp, true
}

// compute builds one item's feature block: both column families are
// assembled into single flat slabs (one allocation each) that the returned
// vector views alias.
func (s *Store) compute(it *model.Item, sch opinion.Scheme) *entry {
	defer obs.StageTimer(obs.StagePrecompute)()
	dim := sch.Dim(s.z)
	n := len(it.Reviews)
	opSlab := make([]float64, n*dim)
	aspSlab := make([]float64, n*s.z)
	e := &entry{
		op:  make([]linalg.Vector, n),
		asp: make([]linalg.Vector, n),
	}
	for j, r := range it.Reviews {
		e.op[j] = linalg.Vector(opSlab[j*dim : (j+1)*dim])
		copy(e.op[j], sch.Column(r, s.z))
		e.asp[j] = linalg.Vector(aspSlab[j*s.z : (j+1)*s.z])
		copy(e.asp[j], opinion.AspectColumn(r, s.z))
	}
	s.m.Entries.Add(1)
	s.m.Bytes.Add(float64(8 * (len(opSlab) + len(aspSlab))))
	return e
}

// Precompute eagerly builds the feature blocks of every corpus item under
// the scheme, so the first request after a corpus load pays no lazy
// compute. Safe to call concurrently with ItemColumns.
func (s *Store) Precompute(sch opinion.Scheme) {
	for _, id := range s.corpus.ItemIDs() {
		it := s.corpus.Items[id]
		s.ItemColumns(it, sch, s.z)
	}
}

// Len returns the number of resident (scheme, item) feature blocks.
func (s *Store) Len() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}
