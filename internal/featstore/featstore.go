// Package featstore holds corpus-resident precomputed review features.
//
// Every selection request that references a loaded corpus used to recompute
// each review's opinion column π and aspect column φ inside the per-request
// feature cache (internal/core), even though those columns depend only on
// the review and the opinion scheme — never on the request. featstore
// computes them once per (corpus, scheme): either eagerly when a corpus is
// loaded (Precompute) or lazily on first touch, guarded per shard so
// concurrent requests for different items never contend on one lock.
//
// The columns of one item live in two immutable flat []float64 slabs (one
// for opinion columns, one for aspect columns); the returned
// linalg.Vector views alias those slabs. Callers must treat them as
// read-only — internal/core's featureCache only ever reads them (it copies
// into design matrices and accumulates into private scratch), which is what
// makes sharing across concurrent requests safe.
//
// A Store is bound to one corpus; replacing a corpus at runtime replaces
// its Store wholesale, so stale features can never leak across corpus
// generations.
package featstore

import (
	"hash/fnv"
	"sync"

	"comparesets/internal/faultinject"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/opinion"
)

// shardCount is the power-of-two number of lazy-compute shards.
const shardCount = 16

// Store caches per-review feature columns for one corpus.
type Store struct {
	corpus *model.Corpus
	z      int
	shards [shardCount]shard
	m      *obs.CacheMetrics
}

type shard struct {
	mu    sync.Mutex
	items map[string]*entry
}

// entry is one (scheme, item) feature block: vector views over two flat
// slabs. The float32 companions are narrowed lazily on the first
// ItemColumns32 touch and alias two further compact slabs.
type entry struct {
	op, asp     []linalg.Vector
	op32, asp32 []linalg.Vector32
	// tau/phiR are the item-level target vectors π(Rᵢ) and φ(Rᵢ), filled
	// lazily on the first ItemTargets touch.
	tau, phiR linalg.Vector
}

// New returns an empty store bound to the corpus. Features are computed
// lazily on first touch; call Precompute to front-load them.
func New(c *model.Corpus) *Store {
	s := &Store{
		corpus: c,
		z:      c.Aspects.Len(),
		m:      obs.NewCacheMetrics(obs.Default(), "featstore"),
	}
	for i := range s.shards {
		s.shards[i].items = map[string]*entry{}
	}
	return s
}

// key is the (scheme, item) cache key; 0x1f cannot occur in scheme names.
func key(schemeName, itemID string) string { return schemeName + "\x1f" + itemID }

func (s *Store) shardFor(k string) *shard {
	h := fnv.New64a()
	h.Write([]byte(k))
	return &s.shards[h.Sum64()&(shardCount-1)]
}

// ItemColumns implements core.FeatureSource: it returns the precomputed
// opinion and aspect columns of the item's reviews under the scheme,
// computing and memoizing them on first touch. ok is false when the item
// does not belong to the bound corpus or z disagrees with the corpus
// vocabulary — callers then fall back to computing features themselves.
func (s *Store) ItemColumns(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector, ok bool) {
	if z != s.z || s.corpus.Items[it.ID] != it {
		return nil, nil, false
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[k]
	if !ok {
		// An injected fill fault declines the item (ok=false): callers fall
		// back to computing the columns per request, so a failing feature
		// store degrades throughput, never correctness.
		if err := faultinject.Check(faultinject.PointFeatstoreFill); err != nil {
			return nil, nil, false
		}
		s.m.Misses.Inc()
		e = s.compute(it, sch)
		sh.items[k] = e
	} else {
		s.m.Hits.Inc()
	}
	return e.op, e.asp, true
}

// ItemColumns32 implements core.FeatureSource32: the compact float32 view
// of the same feature block ItemColumns serves. The float64 slabs remain
// the source of truth; the float32 slabs are narrowed from them once per
// (scheme, item) and memoized, so repeated compact-mode requests pay no
// conversion. The same read-only aliasing contract applies.
func (s *Store) ItemColumns32(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector32, ok bool) {
	if z != s.z || s.corpus.Items[it.ID] != it {
		return nil, nil, false
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[k]
	if !ok {
		if err := faultinject.Check(faultinject.PointFeatstoreFill); err != nil {
			return nil, nil, false
		}
		s.m.Misses.Inc()
		e = s.compute(it, sch)
		sh.items[k] = e
	} else {
		s.m.Hits.Inc()
	}
	if e.op32 == nil {
		e.narrow(s)
	}
	return e.op32, e.asp32, true
}

// ItemTargets implements core.TargetSource: the item's target opinion
// vector τᵢ = sch.Vector(reviews, z) and target aspect vector
// φ(Rᵢ) = opinion.AspectVector(reviews, z), computed once per
// (scheme, item) and shared read-only across requests. Every instance that
// includes the item needs exactly these vectors (they never depend on the
// request), so serving them resident removes the per-request target pass.
func (s *Store) ItemTargets(it *model.Item, sch opinion.Scheme, z int) (tau, phi linalg.Vector, ok bool) {
	if z != s.z || s.corpus.Items[it.ID] != it {
		return nil, nil, false
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[k]
	if !ok {
		if err := faultinject.Check(faultinject.PointFeatstoreFill); err != nil {
			return nil, nil, false
		}
		s.m.Misses.Inc()
		e = s.compute(it, sch)
		sh.items[k] = e
	} else {
		s.m.Hits.Inc()
	}
	if e.tau == nil {
		e.tau = sch.Vector(it.Reviews, s.z)
		e.phiR = opinion.AspectVector(it.Reviews, s.z)
		s.m.Bytes.Add(float64(8 * (len(e.tau) + len(e.phiR))))
	}
	return e.tau, e.phiR, true
}

// narrow builds the entry's float32 companion slabs from the float64 ones.
// Caller holds the shard lock.
func (e *entry) narrow(s *Store) {
	n := len(e.op)
	var dim int
	if n > 0 {
		dim = len(e.op[0])
	}
	opSlab := make([]float32, n*dim)
	aspSlab := make([]float32, n*s.z)
	e.op32 = make([]linalg.Vector32, n)
	e.asp32 = make([]linalg.Vector32, n)
	for j := 0; j < n; j++ {
		e.op32[j] = linalg.Vector32(opSlab[j*dim : (j+1)*dim])
		linalg.NarrowKernel(e.op[j], e.op32[j])
		e.asp32[j] = linalg.Vector32(aspSlab[j*s.z : (j+1)*s.z])
		linalg.NarrowKernel(e.asp[j], e.asp32[j])
	}
	s.m.Bytes.Add(float64(4 * (len(opSlab) + len(aspSlab))))
}

// compute builds one item's feature block: both column families are
// assembled into single flat slabs (one allocation each) that the returned
// vector views alias.
func (s *Store) compute(it *model.Item, sch opinion.Scheme) *entry {
	defer obs.StageTimer(obs.StagePrecompute)()
	dim := sch.Dim(s.z)
	n := len(it.Reviews)
	opSlab := make([]float64, n*dim)
	aspSlab := make([]float64, n*s.z)
	e := &entry{
		op:  make([]linalg.Vector, n),
		asp: make([]linalg.Vector, n),
	}
	for j, r := range it.Reviews {
		e.op[j] = linalg.Vector(opSlab[j*dim : (j+1)*dim])
		copy(e.op[j], sch.Column(r, s.z))
		e.asp[j] = linalg.Vector(aspSlab[j*s.z : (j+1)*s.z])
		copy(e.asp[j], opinion.AspectColumn(r, s.z))
	}
	s.m.Entries.Add(1)
	s.m.Bytes.Add(float64(8 * (len(opSlab) + len(aspSlab))))
	return e
}

// Precompute eagerly builds the feature blocks of every corpus item under
// the scheme, so the first request after a corpus load pays no lazy
// compute. Safe to call concurrently with ItemColumns.
func (s *Store) Precompute(sch opinion.Scheme) {
	for _, id := range s.corpus.ItemIDs() {
		it := s.corpus.Items[id]
		s.ItemColumns(it, sch, s.z)
	}
}

// Warm touches the feature blocks of the given items under the scheme so a
// subsequent run finds every slab resident. The batch executor uses it as
// the group's single slab pass: one warm sweep over the union of a group's
// items, then every member request hits warm slabs. compact selects the
// float32 companions as well.
func (s *Store) Warm(items []*model.Item, sch opinion.Scheme, compact bool) {
	for _, it := range items {
		if compact {
			s.ItemColumns32(it, sch, s.z)
		} else {
			s.ItemColumns(it, sch, s.z)
		}
	}
}

// Len returns the number of resident (scheme, item) feature blocks.
func (s *Store) Len() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}
