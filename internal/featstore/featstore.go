// Package featstore holds corpus-resident precomputed review features.
//
// Every selection request that references a loaded corpus used to recompute
// each review's opinion column π and aspect column φ inside the per-request
// feature cache (internal/core), even though those columns depend only on
// the review and the opinion scheme — never on the request. featstore
// computes them once per (corpus, scheme): either eagerly when a corpus is
// loaded (Precompute) or lazily on first touch, guarded per shard so
// concurrent requests for different items never contend on one lock.
//
// The columns of one item live in two immutable flat []float64 slabs (one
// for opinion columns, one for aspect columns); the returned
// linalg.Vector views alias those slabs. Callers must treat them as
// read-only — internal/core's featureCache only ever reads them (it copies
// into design matrices and accumulates into private scratch), which is what
// makes sharing across concurrent requests safe.
//
// A Store is bound to one corpus generation at a time. Loading a new corpus
// still replaces the Store wholesale, but incremental mutations rebind the
// existing Store to the post-mutation corpus clone (Apply): untouched items
// keep their item pointers, so their feature blocks stay resident, and only
// the touched item's block is rebuilt — reusing the columns of every review
// pointer the mutation did not replace.
package featstore

import (
	"sync"
	"sync/atomic"

	"comparesets/internal/faultinject"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/opinion"
)

// shardCount is the power-of-two number of lazy-compute shards.
const shardCount = 16

// Store caches per-review feature columns for one corpus.
type Store struct {
	corpus atomic.Pointer[model.Corpus]
	z      int
	shards [shardCount]shard
	m      *obs.CacheMetrics
}

type shard struct {
	mu    sync.Mutex
	items map[itemKey]*entry
}

// entry is one (scheme, item) feature block: vector views over two flat
// slabs. The float32 companions are narrowed lazily on the first
// ItemColumns32 touch and alias two further compact slabs. it and sch
// record which item snapshot the columns were computed from, so a mutation
// can rebuild the block incrementally: columns of review pointers shared
// between it.Reviews and the successor's are copied, not recomputed.
type entry struct {
	it          *model.Item
	sch         opinion.Scheme
	op, asp     []linalg.Vector
	op32, asp32 []linalg.Vector32
	// tau/phiR are the item-level target vectors π(Rᵢ) and φ(Rᵢ), filled
	// lazily on the first ItemTargets touch.
	tau, phiR linalg.Vector
}

// New returns an empty store bound to the corpus. Features are computed
// lazily on first touch; call Precompute to front-load them.
func New(c *model.Corpus) *Store {
	s := &Store{
		z: c.Aspects.Len(),
		m: obs.NewCacheMetrics(obs.Default(), "featstore"),
	}
	s.corpus.Store(c)
	for i := range s.shards {
		s.shards[i].items = map[itemKey]*entry{}
	}
	return s
}

// itemKey is the (scheme, item) cache key. A comparable struct rather than
// a concatenated string: every lookup on the hot select path builds one, and
// the struct form costs no allocation.
type itemKey struct{ scheme, item string }

func key(schemeName, itemID string) itemKey {
	return itemKey{scheme: schemeName, item: itemID}
}

// shardFor hashes the key fields with inline FNV-1a (over the same byte
// stream the old string key produced, scheme 0x1f item) so the hot path
// never materializes a byte slice.
func (s *Store) shardFor(k itemKey) *shard {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(k.scheme); i++ {
		h = (h ^ uint64(k.scheme[i])) * prime64
	}
	h = (h ^ 0x1f) * prime64
	for i := 0; i < len(k.item); i++ {
		h = (h ^ uint64(k.item[i])) * prime64
	}
	return &s.shards[h&(shardCount-1)]
}

// lookup returns the item's feature block, computing it on first touch and
// incrementally rebuilding it when the resident block belongs to a previous
// snapshot of the same item (a mutation replaced the pointer). Returns nil
// when the item is not current in the bound corpus or a fill fault fired —
// callers then report ok=false and core computes features per request.
func (s *Store) lookup(it *model.Item, sch opinion.Scheme, z int) *entry {
	if z != s.z || s.corpus.Load().Items[it.ID] != it {
		return nil
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[k]
	switch {
	case !ok:
		// An injected fill fault declines the item (ok=false): callers fall
		// back to computing the columns per request, so a failing feature
		// store degrades throughput, never correctness.
		if err := faultinject.Check(faultinject.PointFeatstoreFill); err != nil {
			return nil
		}
		s.m.Misses.Inc()
		e = s.compute(it, sch)
		sh.items[k] = e
	case e.it != it:
		// Stale snapshot: refill only the columns the mutation changed.
		if err := faultinject.Check(faultinject.PointFeatstoreFill); err != nil {
			return nil
		}
		s.m.Misses.Inc()
		e, _, _ = s.rebuild(e, it)
		sh.items[k] = e
	default:
		s.m.Hits.Inc()
	}
	return e
}

// ItemColumns implements core.FeatureSource: it returns the precomputed
// opinion and aspect columns of the item's reviews under the scheme,
// computing and memoizing them on first touch. ok is false when the item
// does not belong to the bound corpus or z disagrees with the corpus
// vocabulary — callers then fall back to computing features themselves.
func (s *Store) ItemColumns(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector, ok bool) {
	e := s.lookup(it, sch, z)
	if e == nil {
		return nil, nil, false
	}
	return e.op, e.asp, true
}

// ItemColumns32 implements core.FeatureSource32: the compact float32 view
// of the same feature block ItemColumns serves. The float64 slabs remain
// the source of truth; the float32 slabs are narrowed from them once per
// (scheme, item) and memoized, so repeated compact-mode requests pay no
// conversion. The same read-only aliasing contract applies.
func (s *Store) ItemColumns32(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector32, ok bool) {
	e := s.lookup(it, sch, z)
	if e == nil {
		return nil, nil, false
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.op32 == nil {
		e.narrow(s)
	}
	return e.op32, e.asp32, true
}

// ItemTargets implements core.TargetSource: the item's target opinion
// vector τᵢ = sch.Vector(reviews, z) and target aspect vector
// φ(Rᵢ) = opinion.AspectVector(reviews, z), computed once per
// (scheme, item) and shared read-only across requests. Every instance that
// includes the item needs exactly these vectors (they never depend on the
// request), so serving them resident removes the per-request target pass.
func (s *Store) ItemTargets(it *model.Item, sch opinion.Scheme, z int) (tau, phi linalg.Vector, ok bool) {
	e := s.lookup(it, sch, z)
	if e == nil {
		return nil, nil, false
	}
	k := key(sch.Name(), it.ID)
	sh := s.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e.tau == nil {
		e.tau = sch.Vector(e.it.Reviews, s.z)
		e.phiR = opinion.AspectVector(e.it.Reviews, s.z)
		s.m.Bytes.Add(float64(8 * (len(e.tau) + len(e.phiR))))
	}
	return e.tau, e.phiR, true
}

// narrow builds the entry's float32 companion slabs from the float64 ones.
// Caller holds the shard lock.
func (e *entry) narrow(s *Store) {
	n := len(e.op)
	var dim int
	if n > 0 {
		dim = len(e.op[0])
	}
	opSlab := make([]float32, n*dim)
	aspSlab := make([]float32, n*s.z)
	e.op32 = make([]linalg.Vector32, n)
	e.asp32 = make([]linalg.Vector32, n)
	for j := 0; j < n; j++ {
		e.op32[j] = linalg.Vector32(opSlab[j*dim : (j+1)*dim])
		linalg.NarrowKernel(e.op[j], e.op32[j])
		e.asp32[j] = linalg.Vector32(aspSlab[j*s.z : (j+1)*s.z])
		linalg.NarrowKernel(e.asp[j], e.asp32[j])
	}
	s.m.Bytes.Add(float64(4 * (len(opSlab) + len(aspSlab))))
}

// compute builds one item's feature block: both column families are
// assembled into single flat slabs (one allocation each) that the returned
// vector views alias.
func (s *Store) compute(it *model.Item, sch opinion.Scheme) *entry {
	span := obs.StartStage(obs.StagePrecompute)
	defer span.Stop()
	dim := sch.Dim(s.z)
	n := len(it.Reviews)
	opSlab := make([]float64, n*dim)
	aspSlab := make([]float64, n*s.z)
	e := &entry{
		it:  it,
		sch: sch,
		op:  make([]linalg.Vector, n),
		asp: make([]linalg.Vector, n),
	}
	for j, r := range it.Reviews {
		e.op[j] = linalg.Vector(opSlab[j*dim : (j+1)*dim])
		copy(e.op[j], sch.Column(r, s.z))
		e.asp[j] = linalg.Vector(aspSlab[j*s.z : (j+1)*s.z])
		copy(e.asp[j], opinion.AspectColumn(r, s.z))
	}
	s.m.Entries.Add(1)
	s.m.Bytes.Add(float64(8 * (len(opSlab) + len(aspSlab))))
	return e
}

// rebuild produces the feature block of a successor item snapshot from its
// predecessor's block: columns whose review pointer survived the mutation
// are copied out of the old slabs, only genuinely new or replaced reviews
// go through the scheme. The old entry stays intact — in-flight requests
// holding the old item keep reading consistent columns. Returns the new
// entry plus how many columns were computed fresh vs reused.
func (s *Store) rebuild(old *entry, it *model.Item) (e *entry, computed, reused int) {
	span := obs.StartStage(obs.StagePrecompute)
	defer span.Stop()
	sch := old.sch
	dim := sch.Dim(s.z)
	// Index the predecessor's columns by review pointer.
	pos := make(map[*model.Review]int, len(old.it.Reviews))
	for j, r := range old.it.Reviews {
		pos[r] = j
	}
	n := len(it.Reviews)
	opSlab := make([]float64, n*dim)
	aspSlab := make([]float64, n*s.z)
	e = &entry{
		it:  it,
		sch: sch,
		op:  make([]linalg.Vector, n),
		asp: make([]linalg.Vector, n),
	}
	for j, r := range it.Reviews {
		e.op[j] = linalg.Vector(opSlab[j*dim : (j+1)*dim])
		e.asp[j] = linalg.Vector(aspSlab[j*s.z : (j+1)*s.z])
		if k, ok := pos[r]; ok {
			copy(e.op[j], old.op[k])
			copy(e.asp[j], old.asp[k])
			reused++
			continue
		}
		copy(e.op[j], sch.Column(r, s.z))
		copy(e.asp[j], opinion.AspectColumn(r, s.z))
		computed++
	}
	s.m.Bytes.Add(float64(8 * (len(opSlab) + len(aspSlab))))
	return e, computed, reused
}

// Apply rebinds the store to the post-mutation corpus and eagerly refills
// the touched item's resident feature blocks (one per scheme seen so far),
// reusing every column whose review pointer the mutation preserved. Blocks
// of untouched items are untouched — their item pointers still match the
// new corpus. Returns the number of feature columns computed fresh and the
// number reused, for the mutation receipt.
func (s *Store) Apply(c *model.Corpus, m *model.Mutation) (computed, reused int) {
	s.corpus.Store(c)
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k, e := range sh.items {
			if k.item != m.ItemID || e.it == m.New {
				continue
			}
			ne, nc, nr := s.rebuild(e, m.New)
			sh.items[k] = ne
			computed += nc
			reused += nr
		}
		sh.mu.Unlock()
	}
	return computed, reused
}

// Precompute eagerly builds the feature blocks of every corpus item under
// the scheme, so the first request after a corpus load pays no lazy
// compute. Safe to call concurrently with ItemColumns.
func (s *Store) Precompute(sch opinion.Scheme) {
	c := s.corpus.Load()
	for _, id := range c.ItemIDs() {
		s.ItemColumns(c.Items[id], sch, s.z)
	}
}

// Warm touches the feature blocks of the given items under the scheme so a
// subsequent run finds every slab resident. The batch executor uses it as
// the group's single slab pass: one warm sweep over the union of a group's
// items, then every member request hits warm slabs. compact selects the
// float32 companions as well.
func (s *Store) Warm(items []*model.Item, sch opinion.Scheme, compact bool) {
	for _, it := range items {
		if compact {
			s.ItemColumns32(it, sch, s.z)
		} else {
			s.ItemColumns(it, sch, s.z)
		}
	}
}

// Len returns the number of resident (scheme, item) feature blocks.
func (s *Store) Len() int {
	var n int
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}
