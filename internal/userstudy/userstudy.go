// Package userstudy simulates the paper's qualitative study (§4.5): 15 human
// participants rating selected review sets on three five-point Likert
// questions (Q1 similarity among products, Q2 informativeness, Q3 usefulness
// for comparison).
//
// Substitution note (DESIGN.md): humans are replaced by annotator models
// whose latent judgment is a noisy linear reading of measurable selection
// qualities — the aspect overlap among the selected sets, how representative
// each set is of its item, and how comparable the sets are pairwise. The
// shape of Table 7 (ordering of algorithms, agreement levels) emerges from
// the same signals human raters were reacting to; absolute values are not
// claimed to match.
package userstudy

import (
	"math"
	"math/rand"
)

// Quality holds the measurable [0, 1] qualities of one example (one target
// item with its shortlisted comparison items and selected review sets).
type Quality struct {
	// Overlap is the fraction of discussed aspects shared by all items'
	// selected sets (drives Q1).
	Overlap float64
	// Representativeness is the mean cosine similarity between each item's
	// selected-set opinion vector and its full-set vector (drives Q2).
	Representativeness float64
	// Comparability is the mean pairwise aspect-distribution similarity
	// between items' selected sets (drives Q3).
	Comparability float64
}

// Panel is a pool of simulated annotators.
type Panel struct {
	// Annotators is the panel size (the paper used 5 raters per example).
	Annotators int
	// Noise is the annotator judgment noise (std dev in Likert units).
	// Larger noise lowers both scores' separation and Krippendorff's α.
	Noise float64
	// Leniency shifts every rating upward (the paper observed means > 3
	// even for Random — raters are generous with real reviews).
	Leniency float64
	// Seed fixes the panel; rater b of example u is reproducible.
	Seed int64
}

// Ratings holds one example's Likert answers: Ratings[q][b] is annotator b's
// answer to question q (Q1, Q2, Q3).
type Ratings [3][]float64

// Rate produces the panel's ratings for one example. exampleID decorrelates
// noise across examples while keeping determinism.
func (p Panel) Rate(exampleID int64, q Quality) Ratings {
	var out Ratings
	for qi := range out {
		out[qi] = make([]float64, p.Annotators)
	}
	for b := 0; b < p.Annotators; b++ {
		rng := rand.New(rand.NewSource(p.Seed ^ exampleID<<17 ^ int64(b)<<34))
		// Per-annotator idiosyncrasy: a stable personal offset.
		personal := rng.NormFloat64() * 0.3
		latents := [3]float64{q.Overlap, q.Representativeness, q.Comparability}
		for qi, latent := range latents {
			raw := 1 + 4*clamp01(latent) + p.Leniency + personal + rng.NormFloat64()*p.Noise
			out[qi][b] = clampLikert(math.Round(raw))
		}
	}
	return out
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

func clampLikert(x float64) float64 {
	if x < 1 {
		return 1
	}
	if x > 5 {
		return 5
	}
	return x
}
