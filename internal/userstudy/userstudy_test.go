package userstudy

import (
	"testing"

	"comparesets/internal/stats"
)

func TestRateDeterministic(t *testing.T) {
	p := Panel{Annotators: 5, Noise: 0.5, Seed: 3}
	q := Quality{Overlap: 0.6, Representativeness: 0.8, Comparability: 0.5}
	a := p.Rate(7, q)
	b := p.Rate(7, q)
	for qi := range a {
		for bi := range a[qi] {
			if a[qi][bi] != b[qi][bi] {
				t.Fatalf("nondeterministic rating at q%d annotator %d", qi+1, bi)
			}
		}
	}
}

func TestRatingsInLikertRange(t *testing.T) {
	p := Panel{Annotators: 20, Noise: 3, Leniency: 2, Seed: 1}
	for ex := int64(0); ex < 30; ex++ {
		r := p.Rate(ex, Quality{Overlap: 0.5, Representativeness: 0.5, Comparability: 0.5})
		for qi := range r {
			for _, v := range r[qi] {
				if v < 1 || v > 5 || v != float64(int(v)) {
					t.Fatalf("rating %v out of Likert range", v)
				}
			}
		}
	}
}

func TestHigherQualityHigherScores(t *testing.T) {
	p := Panel{Annotators: 5, Noise: 0.4, Seed: 5}
	var goodSum, badSum float64
	for ex := int64(0); ex < 40; ex++ {
		good := p.Rate(ex, Quality{Overlap: 0.9, Representativeness: 0.9, Comparability: 0.9})
		bad := p.Rate(ex, Quality{Overlap: 0.2, Representativeness: 0.2, Comparability: 0.2})
		for qi := range good {
			goodSum += stats.Mean(good[qi])
			badSum += stats.Mean(bad[qi])
		}
	}
	if goodSum <= badSum {
		t.Errorf("good quality sum %v ≤ bad %v", goodSum, badSum)
	}
}

func TestNoiseLowersAgreement(t *testing.T) {
	alpha := func(noise float64) float64 {
		p := Panel{Annotators: 5, Noise: noise, Seed: 11}
		var units [][]float64
		for ex := int64(0); ex < 60; ex++ {
			// Vary true quality across units so there is signal to agree on.
			q := Quality{
				Overlap:            float64(ex%5) / 4,
				Representativeness: float64(ex%3) / 2,
				Comparability:      float64(ex%7) / 6,
			}
			r := p.Rate(ex, q)
			for qi := range r {
				units = append(units, r[qi])
			}
		}
		a, err := stats.KrippendorffAlpha(units)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	low, high := alpha(0.3), alpha(2.5)
	if low <= high {
		t.Errorf("alpha(noise=0.3)=%v should exceed alpha(noise=2.5)=%v", low, high)
	}
	if low < 0.3 {
		t.Errorf("low-noise alpha = %v, expected some reliability", low)
	}
}
