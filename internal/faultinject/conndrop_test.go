package faultinject

import (
	"errors"
	"testing"
)

func TestConnDropMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeConnDrop})
	err := Check("p")
	if !errors.Is(err, ErrConnDrop) {
		t.Fatalf("err = %v, want ErrConnDrop", err)
	}
	// A dropped connection is still an injected fault: existing
	// errors.Is(err, ErrInjected) classification keeps working.
	if !errors.Is(err, ErrInjected) {
		t.Errorf("conndrop error lost ErrInjected: %v", err)
	}
	if Fires("p") != 1 {
		t.Errorf("Fires = %d, want 1", Fires("p"))
	}
}

func TestConnDropSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("router.forward=conndrop@0.25"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	f := faults["router.forward"]
	mu.Unlock()
	if f == nil || f.Mode != ModeConnDrop || f.Prob != 0.25 {
		t.Fatalf("armed fault = %+v, want conndrop @0.25", f)
	}
	if ModeConnDrop.String() != "conndrop" {
		t.Errorf("ModeConnDrop.String() = %q", ModeConnDrop.String())
	}
}

func TestConnDropBounded(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeConnDrop, Remaining: 1})
	if err := Check("p"); !errors.Is(err, ErrConnDrop) {
		t.Fatalf("first check = %v, want ErrConnDrop", err)
	}
	if err := Check("p"); err != nil {
		t.Fatalf("second check fired after Remaining exhausted: %v", err)
	}
}
