package faultinject

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisabledCheckIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("enabled with nothing armed")
	}
	if err := Check("anything"); err != nil {
		t.Fatalf("Check = %v, want nil", err)
	}
}

func TestErrorMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeError})
	err := Check("p")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if Fires("p") != 1 {
		t.Errorf("Fires = %d, want 1", Fires("p"))
	}
	if err := Check("other"); err != nil {
		t.Errorf("unarmed point fired: %v", err)
	}
}

func TestCustomErrorStillIsInjected(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	custom := errors.New("disk on fire")
	Arm("p", Fault{Mode: ModeError, Err: custom})
	err := Check("p")
	if !errors.Is(err, ErrInjected) {
		t.Errorf("custom error lost ErrInjected: %v", err)
	}
}

func TestRemainingDisarmsAfterLastFire(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeError, Remaining: 2})
	if Check("p") == nil || Check("p") == nil {
		t.Fatal("first two checks should fire")
	}
	if err := Check("p"); err != nil {
		t.Fatalf("third check fired after Remaining exhausted: %v", err)
	}
	if Enabled() {
		t.Error("still enabled after self-disarm")
	}
	if Fires("p") != 2 {
		t.Errorf("Fires = %d, want 2", Fires("p"))
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModePanic, PanicValue: "boom"})
	defer func() {
		if r := recover(); r != "boom" {
			t.Errorf("recovered %v, want boom", r)
		}
	}()
	Check("p")
	t.Fatal("Check returned instead of panicking")
}

func TestLatencyMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeLatency, Latency: 30 * time.Millisecond})
	start := time.Now()
	if err := Check("p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("slept %v, want ≥ 30ms", d)
	}
}

func TestLatencyWakesOnContextDone(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeLatency, Latency: 5 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := CheckCtx(ctx, "p"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("latency ignored done ctx (slept %v)", d)
	}
}

func TestProbabilisticFiringIsSeedDeterministic(t *testing.T) {
	Reset()
	t.Cleanup(func() { Reset(); Seed(1) })
	run := func() []bool {
		Reset()
		Seed(42)
		Arm("p", Fault{Mode: ModeError, Prob: 0.5})
		out := make([]bool, 64)
		for i := range out {
			out[i] = Check("p") != nil
		}
		return out
	}
	a, b := run(), run()
	var fired int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs across identical seeds", i)
		}
		if a[i] {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob 0.5 fired %d/%d times — not probabilistic", fired, len(a))
	}
}

func TestArmSpec(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := ArmSpec("a=error, b=latency:5ms@0.5 ,c=panic"); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	fa, fb, fc := faults["a"], faults["b"], faults["c"]
	mu.Unlock()
	if fa == nil || fa.Mode != ModeError {
		t.Errorf("a = %+v, want error mode", fa)
	}
	if fb == nil || fb.Mode != ModeLatency || fb.Latency != 5*time.Millisecond || fb.Prob != 0.5 {
		t.Errorf("b = %+v, want latency 5ms @0.5", fb)
	}
	if fc == nil || fc.Mode != ModePanic {
		t.Errorf("c = %+v, want panic mode", fc)
	}
	for _, bad := range []string{"noequals", "x=warp", "x=latency:zz", "x=error@nope"} {
		if err := ArmSpec(bad); err == nil {
			t.Errorf("ArmSpec(%q) accepted", bad)
		}
	}
}

func TestConcurrentChecks(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Arm("p", Fault{Mode: ModeError, Prob: 0.5})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				Check("p")
				Check("unarmed")
			}
		}()
	}
	wg.Wait()
	if Fires("p") == 0 {
		t.Error("no fires under concurrency")
	}
}
