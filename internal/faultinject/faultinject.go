// Package faultinject is a deterministic, seeded fault-injection registry
// for exercising the serving stack's failure paths in tests instead of
// hoping they work. Production code calls Check (or CheckCtx) at named
// injection points; the call is a single atomic load when nothing is armed,
// so leaving the points compiled into hot paths costs nothing.
//
// A Fault armed at a point fires in one of four modes:
//
//   - ModeError:    Check returns an error wrapping ErrInjected
//   - ModeLatency:  Check sleeps for Fault.Latency, then returns nil
//   - ModePanic:    Check panics with Fault.PanicValue
//   - ModeConnDrop: Check returns ErrConnDrop; transport boundaries close
//     the connection mid-response instead of answering
//
// Firing can be made probabilistic (Fault.Prob) and bounded
// (Fault.Remaining). Probabilistic decisions come from a per-point PRNG
// seeded from the global seed (Seed, or the FAULTINJECT_SEED environment
// variable), so a chaos run is fully reproducible from its printed seed.
//
// Faults are armed per-test with Arm/Disarm/Reset, or at process start via
// the FAULTINJECT environment variable:
//
//	FAULTINJECT=1                                  # allow chaos tests, arm nothing
//	FAULTINJECT="store.itemreviews.read=error"     # arm one fault
//	FAULTINJECT="core.select=latency:5ms@0.1,service.select=panic"
//
// Each spec entry is point=mode[:arg][@prob]; mode is error, latency
// (arg = duration), panic, or conndrop.
package faultinject

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection points wired into the serving stack. Arbitrary names are
// accepted by Arm/Check; these constants are the points production code
// actually consults.
const (
	// PointStoreScan fires at the start of the store's log replay (Open).
	PointStoreScan = "store.scan"
	// PointStoreRead fires at the start of each ItemReviews read attempt;
	// error mode simulates transient I/O and exercises the retry loop.
	PointStoreRead = "store.itemreviews.read"
	// PointFeatstoreFill fires before a feature-store fill; error mode
	// makes ItemColumns decline (ok=false) so callers fall back to
	// per-request computation.
	PointFeatstoreFill = "featstore.fill"
	// PointCoreSelect fires at selector entry (SelectContext).
	PointCoreSelect = "core.select"
	// PointServiceSelect fires inside the select pipeline (within a
	// coalesced flight for cached requests).
	PointServiceSelect = "service.select"
	// PointServiceHandler fires in the HTTP middleware before the handler
	// runs; panic mode exercises the panic-recovery path directly.
	PointServiceHandler = "service.handler"
	// PointRouterForward fires in the routing tier before a request is
	// forwarded to a worker replica: error mode simulates a failed backend
	// call (exercising retries and circuit breakers), latency mode a slow
	// backend (exercising hedged reads), and conndrop mode an abrupt
	// mid-response connection loss.
	PointRouterForward = "router.forward"
	// PointRouterSnapshot fires on the snapshot-shipping path (both the
	// worker-side stream handler and the router-side proxy); conndrop mode
	// tears the stream mid-transfer, exercising the joiner's torn-tail
	// recovery.
	PointRouterSnapshot = "router.snapshot"
)

// ErrInjected is wrapped by every error ModeError produces; classify
// injected failures with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// ErrConnDrop is the error ModeConnDrop produces (it wraps ErrInjected).
// Transport-layer call sites translate it into an abrupt connection close —
// a hijack-and-close for HTTP handlers — so clients observe a torn response
// rather than a well-formed error. Classify with errors.Is(err, ErrConnDrop).
var ErrConnDrop = fmt.Errorf("%w: connection drop", ErrInjected)

// Mode selects what firing a fault does.
type Mode int

const (
	// ModeError makes Check return an error wrapping ErrInjected.
	ModeError Mode = iota
	// ModeLatency makes Check sleep for Fault.Latency.
	ModeLatency
	// ModePanic makes Check panic with Fault.PanicValue.
	ModePanic
	// ModeConnDrop makes Check return ErrConnDrop; transport boundaries
	// translate it into closing the connection mid-response instead of
	// writing an error payload.
	ModeConnDrop
)

// String returns the spec name of the mode.
func (m Mode) String() string {
	switch m {
	case ModeError:
		return "error"
	case ModeLatency:
		return "latency"
	case ModePanic:
		return "panic"
	case ModeConnDrop:
		return "conndrop"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Fault describes one armed fault.
type Fault struct {
	Mode Mode
	// Err is returned by ModeError; nil uses ErrInjected directly.
	Err error
	// Latency is how long ModeLatency sleeps.
	Latency time.Duration
	// PanicValue is what ModePanic panics with; nil panics with a
	// descriptive string naming the point.
	PanicValue any
	// Prob fires the fault with this probability per Check; values ≤ 0 or
	// ≥ 1 fire always. Draws come from a per-point PRNG seeded from the
	// global seed, so runs are reproducible.
	Prob float64
	// Remaining caps how many times the fault fires; 0 means unlimited.
	// After the last fire the fault disarms itself.
	Remaining int
}

// armedFault is a Fault plus its firing state.
type armedFault struct {
	Fault
	fires uint64
	rng   *rand.Rand
}

var (
	armed  atomic.Bool // fast-path gate: true iff any fault is armed
	mu     sync.Mutex
	faults = map[string]*armedFault{}
	// counts survives Disarm/Reset so tests can assert fire totals after
	// the exercised code path has been torn down.
	counts       = map[string]uint64{}
	seed   int64 = 1
)

func init() {
	if v := os.Getenv("FAULTINJECT_SEED"); v != "" {
		if s, err := strconv.ParseInt(v, 10, 64); err == nil {
			seed = s
		}
	}
	if spec := os.Getenv("FAULTINJECT"); spec != "" && spec != "0" && spec != "1" && !strings.EqualFold(spec, "true") {
		if err := ArmSpec(spec); err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring invalid FAULTINJECT spec: %v\n", err)
		}
	}
}

// EnvEnabled reports whether the FAULTINJECT environment variable opts this
// process into fault injection (any non-empty value other than "0").
// Chaos-style tests gate on it so ordinary `go test ./...` stays
// deterministic and fault-free.
func EnvEnabled() bool {
	v := os.Getenv("FAULTINJECT")
	return v != "" && v != "0"
}

// Seed fixes the base seed of the per-point PRNGs. It resets the draw
// state of every armed probabilistic fault. The default is 1, or
// FAULTINJECT_SEED when set.
func Seed(s int64) {
	mu.Lock()
	defer mu.Unlock()
	seed = s
	for point, f := range faults {
		f.rng = pointRNG(point)
	}
}

// CurrentSeed returns the base seed in effect (for chaos harnesses that
// print it on failure).
func CurrentSeed() int64 {
	mu.Lock()
	defer mu.Unlock()
	return seed
}

// pointRNG derives a point's PRNG from the global seed. Caller holds mu.
func pointRNG(point string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(point))
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// Arm installs (or replaces) the fault at a point.
func Arm(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	faults[point] = &armedFault{Fault: f, rng: pointRNG(point)}
	armed.Store(true)
}

// Disarm removes the fault at a point, if any.
func Disarm(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(faults, point)
	armed.Store(len(faults) > 0)
}

// Reset disarms every fault and clears the fire counts.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	faults = map[string]*armedFault{}
	counts = map[string]uint64{}
	armed.Store(false)
}

// Fires returns how many times the point's fault has fired (counted across
// re-arms; cleared by Reset).
func Fires(point string) uint64 {
	mu.Lock()
	defer mu.Unlock()
	return counts[point]
}

// Enabled reports whether any fault is armed. It is the same fast-path
// check Check performs first.
func Enabled() bool { return armed.Load() }

// Check consults the point and fires its armed fault, if any: it returns
// an injected error (ModeError), sleeps (ModeLatency), or panics
// (ModePanic). With nothing armed it is a single atomic load.
func Check(point string) error { return CheckCtx(nil, point) }

// ctxDoner is the subset of context.Context latency injection needs;
// taking it structurally keeps this package dependency-free.
type ctxDoner interface{ Done() <-chan struct{} }

// CheckCtx is Check with a context: an injected latency wakes early when
// ctx is done (and still returns nil — the caller's own ctx checkpoints
// decide what cancellation means). ctx may be nil.
func CheckCtx(ctx ctxDoner, point string) error {
	if !armed.Load() {
		return nil
	}
	mode, err, latency, panicValue, fire := draw(point)
	if !fire {
		return nil
	}
	switch mode {
	case ModeError:
		if err == nil {
			err = ErrInjected
		}
		return fmt.Errorf("%s: %w", point, err)
	case ModeLatency:
		if ctx == nil {
			time.Sleep(latency)
			return nil
		}
		t := time.NewTimer(latency)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
		return nil
	case ModePanic:
		if panicValue == nil {
			panicValue = "faultinject: injected panic at " + point
		}
		panic(panicValue)
	case ModeConnDrop:
		return fmt.Errorf("%s: %w", point, ErrConnDrop)
	}
	return nil
}

// draw decides under the lock whether the point's fault fires and returns
// what to do, so the firing itself (sleep/panic) happens lock-free.
func draw(point string) (mode Mode, err error, latency time.Duration, panicValue any, fire bool) {
	mu.Lock()
	defer mu.Unlock()
	f, ok := faults[point]
	if !ok {
		return 0, nil, 0, nil, false
	}
	if f.Prob > 0 && f.Prob < 1 && f.rng.Float64() >= f.Prob {
		return 0, nil, 0, nil, false
	}
	f.fires++
	counts[point]++
	if f.Remaining > 0 {
		f.Remaining--
		if f.Remaining == 0 {
			delete(faults, point)
			armed.Store(len(faults) > 0)
		}
	}
	// ModeError errors are wrapped per fire (outside the lock); the base
	// error is shared and immutable.
	if f.Err != nil && f.Mode == ModeError {
		err = f.Err
		if !errors.Is(err, ErrInjected) {
			err = fmt.Errorf("%w: %v", ErrInjected, f.Err)
		}
	}
	return f.Mode, err, f.Latency, f.PanicValue, true
}

// ArmSpec arms every fault in a comma-separated spec list of the form
// point=mode[:arg][@prob], e.g.
//
//	store.itemreviews.read=error
//	core.select=latency:5ms@0.25
//	service.select=panic
func ArmSpec(spec string) error {
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, rest, ok := strings.Cut(entry, "=")
		if !ok || point == "" {
			return fmt.Errorf("faultinject: bad spec entry %q (want point=mode[:arg][@prob])", entry)
		}
		var f Fault
		if at := strings.LastIndex(rest, "@"); at >= 0 {
			p, err := strconv.ParseFloat(rest[at+1:], 64)
			if err != nil {
				return fmt.Errorf("faultinject: bad probability in %q: %v", entry, err)
			}
			f.Prob = p
			rest = rest[:at]
		}
		modeName, arg, _ := strings.Cut(rest, ":")
		switch modeName {
		case "error":
			f.Mode = ModeError
		case "panic":
			f.Mode = ModePanic
		case "conndrop":
			f.Mode = ModeConnDrop
		case "latency":
			f.Mode = ModeLatency
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faultinject: bad latency in %q: %v", entry, err)
			}
			f.Latency = d
		default:
			return fmt.Errorf("faultinject: unknown mode %q in %q", modeName, entry)
		}
		Arm(point, f)
	}
	return nil
}
