package explain

import (
	"strings"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/model"
)

func testInstanceAndSelection(t *testing.T) (*model.Instance, *core.Selection) {
	t.Helper()
	voc := model.NewVocabulary([]string{"battery", "screen", "price"})
	mention := func(a int, score float64) model.Mention {
		pol := model.Positive
		if score < 0 {
			pol = model.Negative
		}
		return model.Mention{Aspect: a, Polarity: pol, Score: score}
	}
	target := &model.Item{ID: "t", Title: "Target Phone", Reviews: []*model.Review{
		{ID: "t1", Mentions: []model.Mention{mention(0, 2), mention(1, 1)}},
		{ID: "t2", Mentions: []model.Mention{mention(2, -1)}},
	}}
	other := &model.Item{ID: "o", Title: "Other Phone", Reviews: []*model.Review{
		{ID: "o1", Mentions: []model.Mention{mention(0, -2), mention(1, 1)}},
		{ID: "o2", Mentions: []model.Mention{mention(2, -1)}},
	}}
	inst := &model.Instance{Aspects: voc, Items: []*model.Item{target, other}}
	sel := &core.Selection{Indices: [][]int{{0, 1}, {0, 1}}}
	return inst, sel
}

func TestCompareVerdicts(t *testing.T) {
	inst, sel := testInstanceAndSelection(t)
	cmps := Compare(inst, sel)
	if len(cmps) != 1 {
		t.Fatalf("comparisons = %d", len(cmps))
	}
	byAspect := map[string]AspectComparison{}
	for _, a := range cmps[0].Aspects {
		byAspect[a.AspectName] = a
	}
	if got := byAspect["battery"].Verdict; got != TargetBetter {
		t.Errorf("battery verdict = %v", got)
	}
	if got := byAspect["screen"].Verdict; got != BothPraised {
		t.Errorf("screen verdict = %v", got)
	}
	if got := byAspect["price"].Verdict; got != BothPanned {
		t.Errorf("price verdict = %v", got)
	}
	// The most decisive aspect (battery, |2-(-2)|=4) leads.
	if cmps[0].Aspects[0].AspectName != "battery" {
		t.Errorf("first aspect = %s", cmps[0].Aspects[0].AspectName)
	}
}

func TestCompareExplanationTemplates(t *testing.T) {
	inst, sel := testInstanceAndSelection(t)
	cmps := Compare(inst, sel)
	for _, a := range cmps[0].Aspects {
		if a.Explanation == "" {
			t.Errorf("aspect %s: empty explanation", a.AspectName)
		}
		if a.Verdict == TargetBetter && !strings.Contains(a.Explanation, "Target Phone over Other Phone") {
			t.Errorf("explanation %q does not name the winner", a.Explanation)
		}
	}
}

func TestCompareSkipsUnsharedAspects(t *testing.T) {
	voc := model.NewVocabulary([]string{"a", "b"})
	inst := &model.Instance{Aspects: voc, Items: []*model.Item{
		{ID: "t", Reviews: []*model.Review{{ID: "r1", Mentions: []model.Mention{{Aspect: 0, Score: 1}}}}},
		{ID: "o", Reviews: []*model.Review{{ID: "r2", Mentions: []model.Mention{{Aspect: 1, Score: 1}}}}},
	}}
	sel := &core.Selection{Indices: [][]int{{0}, {0}}}
	cmps := Compare(inst, sel)
	if len(cmps) != 1 || len(cmps[0].Aspects) != 0 {
		t.Errorf("cmps = %+v", cmps)
	}
}

func TestCompareEmptySelection(t *testing.T) {
	if got := Compare(&model.Instance{Aspects: model.NewVocabulary(nil)}, &core.Selection{}); got != nil {
		t.Errorf("got %v", got)
	}
}

func TestLinesRoundRobinAndCap(t *testing.T) {
	inst, sel := testInstanceAndSelection(t)
	cmps := Compare(inst, sel)
	lines := Lines(cmps, 2)
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	all := Lines(cmps, 100)
	if len(all) != 3 {
		t.Errorf("all lines = %v", all)
	}
	if got := Lines(nil, 5); got != nil {
		t.Errorf("nil comparisons: %v", got)
	}
}

func TestVerdictStrings(t *testing.T) {
	for v, want := range map[Verdict]string{
		TargetBetter: "target better",
		OtherBetter:  "other better",
		BothPraised:  "both praised",
		BothPanned:   "both panned",
		Mixed:        "mixed",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q", v, v.String())
		}
	}
}

func TestVerdictMargin(t *testing.T) {
	cases := []struct {
		t, o float64
		want Verdict
	}{
		{2, 0, TargetBetter},
		{0, 2, OtherBetter},
		{1, 1.2, BothPraised},
		{-1, -1.2, BothPanned},
		{0.1, -0.1, Mixed},
	}
	for _, c := range cases {
		if got := verdictFor(c.t, c.o); got != c.want {
			t.Errorf("verdictFor(%v, %v) = %v, want %v", c.t, c.o, got, c.want)
		}
	}
}
