package explain_test

import (
	"fmt"

	"comparesets/internal/core"
	"comparesets/internal/explain"
	"comparesets/internal/model"
)

// ExampleCompare derives per-aspect comparative explanations from a
// selection.
func ExampleCompare() {
	voc := model.NewVocabulary([]string{"battery", "price"})
	inst := &model.Instance{
		Aspects: voc,
		Items: []*model.Item{
			{ID: "a", Title: "Phone A", Reviews: []*model.Review{
				{ID: "a1", Mentions: []model.Mention{
					{Aspect: 0, Polarity: model.Positive, Score: 2},
					{Aspect: 1, Polarity: model.Negative, Score: -1},
				}},
			}},
			{ID: "b", Title: "Phone B", Reviews: []*model.Review{
				{ID: "b1", Mentions: []model.Mention{
					{Aspect: 0, Polarity: model.Negative, Score: -2},
					{Aspect: 1, Polarity: model.Negative, Score: -1},
				}},
			}},
		},
	}
	sel := &core.Selection{Indices: [][]int{{0}, {0}}}
	for _, line := range explain.Lines(explain.Compare(inst, sel), 2) {
		fmt.Println(line)
	}
	// Output:
	// reviews favor Phone A over Phone B on battery
	// both products draw complaints about price
}
