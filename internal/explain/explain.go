// Package explain generates template-based comparative explanations from
// selected review sets — the direction of the authors' WSDM'21 work on
// "explainable recommendation with comparative constraints" that the paper
// cites as its companion (§5.2, reference [18]): having selected comparable
// review sets, say in one line per aspect how the target stacks up against
// each comparison item.
package explain

import (
	"fmt"
	"sort"

	"comparesets/internal/core"
	"comparesets/internal/model"
)

// Verdict classifies how the target compares to another item on an aspect.
type Verdict int

// Verdict values.
const (
	TargetBetter Verdict = iota
	OtherBetter
	BothPraised
	BothPanned
	Mixed
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case TargetBetter:
		return "target better"
	case OtherBetter:
		return "other better"
	case BothPraised:
		return "both praised"
	case BothPanned:
		return "both panned"
	default:
		return "mixed"
	}
}

// AspectComparison is the judgement on one shared aspect between the target
// and one comparative item.
type AspectComparison struct {
	Aspect      int
	AspectName  string
	TargetNet   float64 // net sentiment of the target's selected set
	OtherNet    float64
	Verdict     Verdict
	Explanation string
}

// ItemComparison is the full target-vs-one-item comparison.
type ItemComparison struct {
	OtherID    string
	OtherTitle string
	Aspects    []AspectComparison
}

// Compare derives comparisons from a selection: for every comparative item,
// every aspect discussed by both its selected set and the target's selected
// set gets a verdict based on net selected-review sentiment.
func Compare(inst *model.Instance, sel *core.Selection) []ItemComparison {
	sets := sel.Reviews(inst)
	if len(sets) == 0 {
		return nil
	}
	targetNet := netSentiment(sets[0], inst.Aspects.Len())
	target := inst.Target()
	var out []ItemComparison
	for i := 1; i < len(sets); i++ {
		otherNet := netSentiment(sets[i], inst.Aspects.Len())
		cmp := ItemComparison{OtherID: inst.Items[i].ID, OtherTitle: inst.Items[i].Title}
		for a := 0; a < inst.Aspects.Len(); a++ {
			t, tOK := targetNet[a]
			o, oOK := otherNet[a]
			if !tOK || !oOK {
				continue // only aspects both selected sets discuss are comparable
			}
			ac := AspectComparison{Aspect: a, AspectName: inst.Aspects.Name(a), TargetNet: t, OtherNet: o}
			ac.Verdict = verdictFor(t, o)
			ac.Explanation = sentenceFor(ac, target.Title, cmp.OtherTitle)
			cmp.Aspects = append(cmp.Aspects, ac)
		}
		// Most decisive aspects first.
		sort.Slice(cmp.Aspects, func(x, y int) bool {
			dx := abs(cmp.Aspects[x].TargetNet - cmp.Aspects[x].OtherNet)
			dy := abs(cmp.Aspects[y].TargetNet - cmp.Aspects[y].OtherNet)
			if dx != dy {
				return dx > dy
			}
			return cmp.Aspects[x].Aspect < cmp.Aspects[y].Aspect
		})
		out = append(out, cmp)
	}
	return out
}

// netSentiment maps each discussed aspect to the summed mention score of
// the selected reviews; aspects never discussed are absent.
func netSentiment(set []*model.Review, z int) map[int]float64 {
	net := map[int]float64{}
	for _, r := range set {
		for _, m := range r.Mentions {
			if m.Aspect >= 0 && m.Aspect < z {
				net[m.Aspect] += m.Score
			}
		}
	}
	return net
}

const margin = 0.5 // net-sentiment difference needed to call a winner

func verdictFor(target, other float64) Verdict {
	switch {
	case target-other > margin:
		return TargetBetter
	case other-target > margin:
		return OtherBetter
	case target > 0 && other > 0:
		return BothPraised
	case target < 0 && other < 0:
		return BothPanned
	default:
		return Mixed
	}
}

func sentenceFor(ac AspectComparison, targetTitle, otherTitle string) string {
	switch ac.Verdict {
	case TargetBetter:
		return fmt.Sprintf("reviews favor %s over %s on %s", targetTitle, otherTitle, ac.AspectName)
	case OtherBetter:
		return fmt.Sprintf("reviews favor %s over %s on %s", otherTitle, targetTitle, ac.AspectName)
	case BothPraised:
		return fmt.Sprintf("both products are praised for %s", ac.AspectName)
	case BothPanned:
		return fmt.Sprintf("both products draw complaints about %s", ac.AspectName)
	default:
		return fmt.Sprintf("opinions on %s are mixed for both products", ac.AspectName)
	}
}

// Lines flattens comparisons into at most maxLines explanation sentences,
// taking the most decisive aspect of each item first (round-robin).
func Lines(cmps []ItemComparison, maxLines int) []string {
	var out []string
	for depth := 0; ; depth++ {
		progressed := false
		for _, c := range cmps {
			if depth < len(c.Aspects) {
				progressed = true
				if len(out) < maxLines {
					out = append(out, c.Aspects[depth].Explanation)
				}
			}
		}
		if !progressed || len(out) >= maxLines {
			break
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
