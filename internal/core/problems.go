package core

import (
	"sync"

	"comparesets/internal/model"
	"comparesets/internal/regress"
)

// problemKind distinguishes the two per-item regression designs.
type problemKind uint8

const (
	problemBase problemKind = iota // CompaReSetS: [op; λ·asp]
	problemPlus                    // CompaReSetS+: [op; λ·asp; √(n−1)·μ·asp]
)

// problemKey identifies a per-item regression problem by everything its
// design matrix depends on: the item's reviews (by corpus-resident item
// identity), the opinion scheme and vocabulary size, the λ scale, the
// collapsed μ-block scale √(n−1)·μ (which folds in the instance size), and
// whether the columns came through the float32 slab path (narrowed columns
// can differ from float64 ones for non-integer schemes).
type problemKey struct {
	item    *model.Item
	kind    problemKind
	scheme  string
	z       int
	lambda  float64
	muW     float64
	float32 bool
}

// maxCachedProblems bounds a ProblemCache. Normal serving needs two entries
// per corpus item per hyperparameter shape; the bound only matters when
// requests sweep many distinct (λ, μ, n) combinations, and resetting the
// whole map on overflow keeps the cache a pure accelerator with no
// eviction bookkeeping on the hit path.
const maxCachedProblems = 4096

// ProblemCache shares preprocessed per-item regression problems
// (regress.Problem: dedup grouping, sparse forms, Gram matrix) across
// selections over the same corpus. Building these problems dominates the
// cold serving path, and the problem for an item depends only on the key
// above — never on the request's target — so every selection over a corpus
// after the first pays no design assembly, dedup, or Gram products for the
// items it shares with earlier requests.
//
// The cache stores immutable template problems and hands each caller a
// regress.Problem.Share of the template: the preprocessed state is shared,
// the solver scratch is per-holder. That makes the cache safe for fully
// concurrent use — any number of selections may hit it at once.
type ProblemCache struct {
	mu sync.Mutex
	m  map[problemKey]*regress.Problem
}

// NewProblemCache returns an empty cache.
func NewProblemCache() *ProblemCache {
	return &ProblemCache{m: make(map[problemKey]*regress.Problem)}
}

// Len returns the number of cached problems.
func (pc *ProblemCache) Len() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return len(pc.m)
}

// InvalidateItem drops every cached problem built from the given item
// snapshot, returning how many were removed. Corpus mutations replace items
// copy-on-write, so the post-mutation snapshot misses the cache naturally
// (fresh pointer); dropping the old pointer's problems just releases their
// memory — nothing can request them again once the corpus stops serving
// the snapshot.
func (pc *ProblemCache) InvalidateItem(it *model.Item) int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	var n int
	for k := range pc.m {
		if k.item == it {
			delete(pc.m, k)
			n++
		}
	}
	return n
}

// getOrBuild returns a private share of the cached problem for key,
// building and memoizing the template on first use.
func (pc *ProblemCache) getOrBuild(key problemKey, build func() *regress.Problem) *regress.Problem {
	pc.mu.Lock()
	p, ok := pc.m[key]
	pc.mu.Unlock()
	if ok {
		return p.Share()
	}
	p = build()
	pc.mu.Lock()
	// A concurrent builder may have won; keep the first so every user of the
	// key sees one template (harmless either way — builds are deterministic).
	if prev, ok := pc.m[key]; ok {
		p = prev
	} else {
		if len(pc.m) >= maxCachedProblems {
			pc.m = make(map[problemKey]*regress.Problem)
		}
		pc.m[key] = p
	}
	pc.mu.Unlock()
	return p.Share()
}
