// Package core implements the paper's primary contribution: the
// CompaReSetS (Problem 1) and CompaReSetS+ (Problem 2) comparative
// review-set selection algorithms, plus the baselines the evaluation
// compares against — single-item CRS (Lappas et al. 2012),
// CompaReSetS-Greedy, and Random.
//
// Items[0] of an instance is the target item p₁; Γ is its full-set aspect
// distribution φ(R₁) and τᵢ is each item's full-set opinion distribution
// π(Rᵢ) (§4.1.4).
package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"

	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// Config carries the selection hyperparameters.
type Config struct {
	// M is the maximum number of reviews selected per item (m).
	M int
	// Lambda trades opinion-distance against aspect-distance (λ ≥ 0).
	Lambda float64
	// Mu weights the pairwise among-item aspect distances in
	// CompaReSetS+ (μ ≥ 0).
	Mu float64
	// Scheme is the opinion definition; nil means Binary (the default).
	Scheme opinion.Scheme
	// Passes is the number of alternating sweeps of Algorithm 1 performed
	// by CompaReSetS+; 0 means 1 (the paper's single sweep).
	Passes int
	// Seed drives the Random baseline.
	Seed int64
	// Workers bounds the intra-instance parallelism of the per-item
	// regressions (Eq. 1 decomposes over items): ≤ 0 uses GOMAXPROCS, 1
	// forces a sequential run. Parallel and sequential runs return
	// identical selections.
	Workers int
	// Features optionally supplies precomputed per-review feature columns
	// (internal/featstore); nil recomputes them per instance. Selections
	// are identical either way — the source only skips the per-request
	// column computation.
	Features FeatureSource
	// Float32 stores feature columns as float32 slabs (halving feature
	// memory traffic) while keeping every accumulation, target, and solver
	// in float64. The 0/1 and small-integer columns of the counting schemes
	// are exactly representable in float32, so those schemes select
	// identically; general schemes agree within the narrowing tolerance
	// (see linalg.Dot32Kernel). If Features implements FeatureSource32 its
	// compact slabs are used directly; otherwise columns are narrowed once
	// per instance.
	Float32 bool
	// Problems optionally shares preprocessed per-item regression problems
	// across selections over the same corpus: the serving layer keeps one
	// cache per corpus generation, so repeated and batched requests skip
	// the per-item design assembly, dedup, and Gram products entirely. The
	// cache hands every caller a private share of an immutable template
	// (regress.Problem.Share), so any number of selections may use one
	// cache concurrently. Selections are identical with or without it.
	Problems *ProblemCache
}

// FeatureSource supplies precomputed per-review feature columns for an
// item: op[j] must equal sch.Column(it.Reviews[j], z) and asp[j] must equal
// opinion.AspectColumn(it.Reviews[j], z). Implementations return ok=false
// when they cannot serve the item (e.g. it belongs to another corpus), in
// which case the caller computes the columns itself. The returned vectors
// are shared across requests and must never be mutated.
type FeatureSource interface {
	ItemColumns(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector, ok bool)
}

// FeatureSource32 is the compact-slab extension of FeatureSource: sources
// that store float32 feature slabs implement it so Config.Float32 requests
// can read them without a widening copy per request. The same aliasing
// contract applies — returned vectors are shared and must never be mutated.
// Column j must equal the float32 narrowing of the FeatureSource columns.
type FeatureSource32 interface {
	ItemColumns32(it *model.Item, sch opinion.Scheme, z int) (op, asp []linalg.Vector32, ok bool)
}

// TargetSource is an optional FeatureSource extension for the per-item
// optimization targets: tau must equal sch.Vector(it.Reviews, z) and phi
// must equal opinion.AspectVector(it.Reviews, z). Both depend only on the
// item and the scheme — never on the request — so a corpus-resident source
// computes them once and NewTargets assembles an instance's Targets from
// cached vectors. The read-only aliasing contract of FeatureSource applies.
type TargetSource interface {
	ItemTargets(it *model.Item, sch opinion.Scheme, z int) (tau, phi linalg.Vector, ok bool)
}

func (c Config) workerCount() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}

func (c Config) scheme() opinion.Scheme {
	if c.Scheme == nil {
		return opinion.Binary{}
	}
	return c.Scheme
}

func (c Config) validate() error {
	if c.M <= 0 {
		return fmt.Errorf("core: M must be positive, got %d", c.M)
	}
	if c.Lambda < 0 || c.Mu < 0 {
		return fmt.Errorf("core: lambda/mu must be non-negative (λ=%v, μ=%v)", c.Lambda, c.Mu)
	}
	return nil
}

// ErrEmptyInstance is returned when an instance has no items.
var ErrEmptyInstance = errors.New("core: empty instance")

// Selection is the result of running a selector on an instance: per item,
// the chosen review indices (into Item.Reviews) and the achieved objective
// value under the selector's own formulation.
type Selection struct {
	// Indices[i] lists the selected review positions of instance item i,
	// ascending.
	Indices [][]int
	// Objective is the value of the optimized objective (Eq. 1 for
	// CompaReSetS, Eq. 5 for CompaReSetS+) on the returned sets.
	Objective float64
}

// Reviews materializes the selected review sets S₁..S_n.
func (s *Selection) Reviews(inst *model.Instance) [][]*model.Review {
	out := make([][]*model.Review, len(s.Indices))
	for i, idx := range s.Indices {
		rs := make([]*model.Review, 0, len(idx))
		for _, j := range idx {
			rs = append(rs, inst.Items[i].Reviews[j])
		}
		out[i] = rs
	}
	return out
}

// Selector is a review-set selection algorithm.
type Selector interface {
	// Name identifies the algorithm in experiment tables.
	Name() string
	// Select chooses ≤ cfg.M reviews for every item of the instance. It is
	// SelectContext with context.Background().
	Select(inst *model.Instance, cfg Config) (*Selection, error)
	// SelectContext is Select with cooperative cancellation: the pipeline
	// checks ctx at deterministic checkpoints (before each per-item
	// regression, each NOMP atom extension, and each Algorithm 1 resync
	// step) and returns ctx.Err() once the context is done. Cancellation
	// never corrupts shared state, and uncancelled runs return results
	// byte-identical to Select.
	SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error)
}

// Targets precomputes the optimization targets of an instance: Γ = φ(R₁)
// and τᵢ = π(Rᵢ).
type Targets struct {
	Gamma linalg.Vector   // target aspect vector Γ
	Tau   []linalg.Vector // per-item target opinion vectors τᵢ
}

// NewTargets computes the targets for the instance under the configured
// opinion scheme. When cfg.Features implements TargetSource the per-item
// vectors come from the corpus-resident cache (they depend only on each
// item, never on the instance); the vectors are then shared and must be
// treated as read-only, which every consumer in this package honors.
func NewTargets(inst *model.Instance, cfg Config) *Targets {
	z := inst.Aspects.Len()
	sch := cfg.scheme()
	ts, _ := cfg.Features.(TargetSource)
	t := &Targets{Tau: make([]linalg.Vector, inst.NumItems())}
	for i, it := range inst.Items {
		var phi linalg.Vector
		if ts != nil {
			if tau, p, ok := ts.ItemTargets(it, sch, z); ok {
				t.Tau[i], phi = tau, p
			}
		}
		if t.Tau[i] == nil {
			t.Tau[i] = sch.Vector(it.Reviews, z)
		}
		if it == inst.Target() {
			if phi == nil {
				phi = opinion.AspectVector(it.Reviews, z)
			}
			t.Gamma = phi
		}
	}
	if t.Gamma == nil {
		t.Gamma = opinion.AspectVector(inst.Target().Reviews, z)
	}
	return t
}

// ItemObjective evaluates Eq. 3 for one item's candidate set S:
// Δ(τᵢ, π(S)) + λ²·Δ(Γ, φ(S)).
func ItemObjective(inst *model.Instance, tg *Targets, cfg Config, item int, set []*model.Review) float64 {
	z := inst.Aspects.Len()
	sch := cfg.scheme()
	pi := sch.Vector(set, z)
	phi := opinion.AspectVector(set, z)
	return linalg.SquaredDistance(tg.Tau[item], pi) +
		cfg.Lambda*cfg.Lambda*linalg.SquaredDistance(tg.Gamma, phi)
}

// ObjectiveCompareSets evaluates Eq. 1 on a full selection. The shared
// statsForSets pass yields exactly ItemObjective's per-item terms, summed in
// the same item order, so the value is bit-identical to the per-item loop it
// replaced — without its per-item vector allocations.
func ObjectiveCompareSets(inst *model.Instance, tg *Targets, cfg Config, sets [][]*model.Review) float64 {
	stats := statsForSets(inst, tg, cfg, sets)
	l2 := cfg.Lambda * cfg.Lambda
	var total float64
	for _, st := range stats {
		total += st.OpinionLoss + l2*st.AspectLoss
	}
	return total
}

// ObjectivePlus evaluates Eq. 5 on a full selection: Eq. 1 plus
// μ²·Σ_{i<j} Δ(φ(Sᵢ), φ(Sⱼ)). A single shared pass computes every set's π
// and φ once; Eq. 1's losses and the pairwise term both read from it.
func ObjectivePlus(inst *model.Instance, tg *Targets, cfg Config, sets [][]*model.Review) float64 {
	stats := statsForSets(inst, tg, cfg, sets)
	l2, mu2 := cfg.Lambda*cfg.Lambda, cfg.Mu*cfg.Mu
	var total float64
	for _, st := range stats {
		total += st.OpinionLoss + l2*st.AspectLoss
	}
	for i := 0; i < len(stats); i++ {
		for j := i + 1; j < len(stats); j++ {
			total += mu2 * linalg.SquaredDistance(stats[i].Phi, stats[j].Phi)
		}
	}
	return total
}

// ItemStats summarizes one item's selected set for downstream consumers
// (the similarity graph of §3.1).
type ItemStats struct {
	// OpinionLoss is Δ(τᵢ, π(Sᵢ)).
	OpinionLoss float64
	// AspectLoss is Δ(Γ, φ(Sᵢ)).
	AspectLoss float64
	// Phi is φ(Sᵢ).
	Phi linalg.Vector
	// Pi is π(Sᵢ).
	Pi linalg.Vector
}

// Stats computes per-item statistics of a selection.
func Stats(inst *model.Instance, tg *Targets, cfg Config, sel *Selection) []ItemStats {
	return statsForSets(inst, tg, cfg, sel.Reviews(inst))
}

// StatsForSets is Stats on pre-materialized review sets: callers that
// already hold a Selection.Reviews result (the serving edge builds one to
// assemble the response) pass it here instead of re-gathering it.
func StatsForSets(inst *model.Instance, tg *Targets, cfg Config, sets [][]*model.Review) []ItemStats {
	return statsForSets(inst, tg, cfg, sets)
}

// statsForSets is the shared φ/π pass behind Stats, ObjectivePlus, and
// ObjectiveCompareSets: each set's vectors are computed exactly once. All n
// π/φ vectors live in one slab (they are built and retained together, and
// ItemStats consumers only read them), and the opinion builders' stamp and
// count buffers are shared across items — so the whole pass costs three
// allocations regardless of the item count.
func statsForSets(inst *model.Instance, tg *Targets, cfg Config, sets [][]*model.Review) []ItemStats {
	z := inst.Aspects.Len()
	sch := cfg.scheme()
	dim := sch.Dim(z)
	out := make([]ItemStats, len(sets))
	slab := linalg.NewVector(len(sets) * (dim + z))
	var sc opinion.VecScratch
	for i, s := range sets {
		block := slab[i*(dim+z) : (i+1)*(dim+z)]
		pi, phi := block[:dim:dim], block[dim:]
		opinion.VectorInto(sch, pi, &sc, s, z)
		opinion.AspectVectorInto(phi, &sc, s, z)
		out[i] = ItemStats{
			OpinionLoss: linalg.SquaredDistance(tg.Tau[i], pi),
			AspectLoss:  linalg.SquaredDistance(tg.Gamma, phi),
			Phi:         phi,
			Pi:          pi,
		}
	}
	return out
}

// ItemDistance computes d_ij of §3.1 from two items' stats:
// Δ(τᵢ,π(Sᵢ)) + Δ(τⱼ,π(Sⱼ)) + λ²Δ(Γ,φ(Sᵢ)) + λ²Δ(Γ,φ(Sⱼ)) + μ²Δ(φ(Sᵢ),φ(Sⱼ)).
func ItemDistance(a, b ItemStats, cfg Config) float64 {
	l2, m2 := cfg.Lambda*cfg.Lambda, cfg.Mu*cfg.Mu
	return a.OpinionLoss + b.OpinionLoss +
		l2*a.AspectLoss + l2*b.AspectLoss +
		m2*linalg.SquaredDistance(a.Phi, b.Phi)
}

// randomSubset draws k distinct indices from [0, n) without replacement.
func randomSubset(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	idx := perm[:k]
	sort.Ints(idx)
	return idx
}
