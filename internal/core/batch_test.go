package core

import (
	"math/rand"
	"reflect"
	"testing"

	"comparesets/internal/model"
)

func batchInstances(n int) []*model.Instance {
	rng := rand.New(rand.NewSource(13))
	out := make([]*model.Instance, n)
	for i := range out {
		out[i] = randomTinyInstance(rng, 3, 8, 4)
	}
	return out
}

func TestSelectAllMatchesSequential(t *testing.T) {
	insts := batchInstances(12)
	cfg := Config{M: 3, Lambda: 1, Mu: 0.1, Seed: 100}
	for _, sel := range []Selector{CompaReSetS{}, CompaReSetSPlus{}, Random{}} {
		parallel, err := SelectAll(insts, sel, cfg, 4)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := SelectAll(insts, sel, cfg, 1)
		if err != nil {
			t.Fatal(err)
		}
		for i := range insts {
			if !reflect.DeepEqual(parallel[i].Indices, serial[i].Indices) {
				t.Fatalf("%s: instance %d differs between parallel and serial", sel.Name(), i)
			}
		}
		// And against direct per-instance calls with matching seeds.
		for i, inst := range insts {
			instCfg := cfg
			instCfg.Seed = cfg.Seed + int64(i)
			direct, err := sel.Select(inst, instCfg)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(direct.Indices, parallel[i].Indices) {
				t.Fatalf("%s: instance %d differs from direct call", sel.Name(), i)
			}
		}
	}
}

func TestSelectAllEmpty(t *testing.T) {
	out, err := SelectAll(nil, CompaReSetS{}, Config{M: 3}, 4)
	if err != nil || len(out) != 0 {
		t.Errorf("out = %v err = %v", out, err)
	}
}

func TestSelectAllPropagatesError(t *testing.T) {
	insts := batchInstances(3)
	if _, err := SelectAll(insts, CompaReSetS{}, Config{M: 0}, 2); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSelectAllDefaultWorkers(t *testing.T) {
	insts := batchInstances(5)
	out, err := SelectAll(insts, CRS{}, Config{M: 2}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if s == nil {
			t.Fatalf("missing result %d", i)
		}
	}
}
