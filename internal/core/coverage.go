package core

import (
	"context"
	"sort"

	"comparesets/internal/model"
)

// Comprehensive is the comprehensive review selection baseline in the
// spirit of Lappas & Gunopulos (ECML PKDD 2010, §5.1): greedily pick
// reviews that cover the largest number of still-uncovered aspects of the
// item, until every discussed aspect is covered or the budget m is spent.
// It optimizes coverage, not distribution matching — the contrast the
// paper's related work draws with characteristic selection.
type Comprehensive struct{}

// Name implements Selector.
func (Comprehensive) Name() string { return "Comprehensive" }

// Select implements Selector.
func (s Comprehensive) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector; ctx is checked before each item.
func (Comprehensive) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	for i, it := range inst.Items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sel.Indices[i] = coverGreedy(it.Reviews, cfg.M, func(r *model.Review) []int {
			return r.AspectSet()
		})
	}
	tg := NewTargets(inst, cfg)
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// CoverageOpinions is the opinion-coverage baseline in the spirit of
// Tsaparas, Ntoulas & Terzi (KDD 2011, §5.1): cover each (aspect, polarity)
// pair at least once, so both the positive and the negative viewpoint of
// every discussed aspect appears in the selected set.
type CoverageOpinions struct{}

// Name implements Selector.
func (CoverageOpinions) Name() string { return "CoverageOpinions" }

// Select implements Selector.
func (s CoverageOpinions) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector; ctx is checked before each item.
func (CoverageOpinions) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	z := inst.Aspects.Len()
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	for i, it := range inst.Items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sel.Indices[i] = coverGreedy(it.Reviews, cfg.M, func(r *model.Review) []int {
			// Elements are (aspect, polarity) pairs encoded as integers.
			seen := map[int]bool{}
			var out []int
			for _, m := range r.Mentions {
				var el int
				switch m.Polarity {
				case model.Positive:
					el = m.Aspect
				case model.Negative:
					el = z + m.Aspect
				default:
					el = 2*z + m.Aspect
				}
				if !seen[el] {
					seen[el] = true
					out = append(out, el)
				}
			}
			return out
		})
	}
	tg := NewTargets(inst, cfg)
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// coverGreedy runs the classic greedy set-cover heuristic: repeatedly take
// the review covering the most uncovered elements; stop when m reviews are
// chosen or no review adds coverage. Ties break toward the earlier review
// for determinism.
func coverGreedy(reviews []*model.Review, m int, elements func(*model.Review) []int) []int {
	covered := map[int]bool{}
	used := make([]bool, len(reviews))
	var chosen []int
	for len(chosen) < m {
		best, bestGain := -1, 0
		for j, r := range reviews {
			if used[j] {
				continue
			}
			gain := 0
			for _, el := range elements(r) {
				if !covered[el] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = j, gain
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		chosen = append(chosen, best)
		for _, el := range elements(reviews[best]) {
			covered[el] = true
		}
	}
	sort.Ints(chosen)
	return chosen
}

// ExtendedSelectors returns the Table 3 algorithms plus the coverage-style
// related-work baselines (§5.1) and the exhaustive reference — everything
// implementing Selector in this package.
func ExtendedSelectors() []Selector {
	return append(Selectors(), Comprehensive{}, CoverageOpinions{})
}

// CoverageOf reports the fraction of an item's discussed aspects that a
// selected set covers — the metric the comprehensive baseline maximizes.
func CoverageOf(item *model.Item, selected []int, z int) float64 {
	all := map[int]bool{}
	for _, r := range item.Reviews {
		for _, a := range r.AspectSet() {
			all[a] = true
		}
	}
	if len(all) == 0 {
		return 1
	}
	got := map[int]bool{}
	for _, j := range selected {
		for _, a := range item.Reviews[j].AspectSet() {
			got[a] = true
		}
	}
	covered := 0
	for a := range all {
		if got[a] {
			covered++
		}
	}
	return float64(covered) / float64(len(all))
}
