package core

import (
	"math/rand"
	"testing"
)

func benchBatch(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(3))
	insts := batchInstances(16)
	_ = rng
	cfg := Config{M: 3, Lambda: 1, Mu: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SelectAll(insts, CompaReSetSPlus{}, cfg, workers); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSelectAllSerial measures the batch runner with one worker.
func BenchmarkSelectAllSerial(b *testing.B) { benchBatch(b, 1) }

// BenchmarkSelectAllParallel measures the batch runner with all cores —
// the "independent instances" parallelism of §4.1.1.
func BenchmarkSelectAllParallel(b *testing.B) { benchBatch(b, 0) }

func benchM(b *testing.B, m int) {
	rng := rand.New(rand.NewSource(4))
	inst := randomTinyInstance(rng, 5, 20, 6)
	cfg := Config{M: m, Lambda: 1, Mu: 0.1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := (CompaReSetSPlus{}).Select(inst, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// Benchmarks of CompaReSetS+ across review budgets (the m axis of Fig. 7).
func BenchmarkPlusM3(b *testing.B)  { benchM(b, 3) }
func BenchmarkPlusM5(b *testing.B)  { benchM(b, 5) }
func BenchmarkPlusM10(b *testing.B) { benchM(b, 10) }
