package core

import (
	"reflect"
	"sync"
	"testing"

	"comparesets/internal/opinion"
)

// A shared ProblemCache is a pure accelerator: selections must be identical
// with and without it, on the cold pass that fills it and on warm passes
// that hit it, across schemes and worker counts.
func TestSelectionsIdenticalWithSharedProblemCache(t *testing.T) {
	inst := workingExampleInstance()
	for _, sch := range opinion.Schemes() {
		pc := NewProblemCache()
		for _, workers := range []int{1, 0} {
			base := Config{M: 3, Lambda: 1, Mu: 0.2, Scheme: sch, Workers: workers}
			cached := base
			cached.Problems = pc
			for _, sel := range []Selector{CompaReSetS{}, CompaReSetSPlus{}} {
				want, err := sel.Select(inst, base)
				if err != nil {
					t.Fatal(err)
				}
				// Two cached runs: the first fills the cache (or hits entries
				// left by the other worker count — the key ignores workers),
				// the second is all hits.
				for pass := 0; pass < 2; pass++ {
					got, err := sel.Select(inst, cached)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Indices, want.Indices) || got.Objective != want.Objective {
						t.Errorf("%s/%s workers=%d pass %d: selection differs with shared cache: %+v vs %+v",
							sel.Name(), sch.Name(), workers, pass, got, want)
					}
				}
			}
		}
		if pc.Len() == 0 {
			t.Errorf("%s: cache never filled", sch.Name())
		}
	}
}

// Many selections may share one cache at once: each holder gets a private
// Problem.Share, so concurrent runs must match the sequential reference
// exactly. Run under -race this also exercises the share/scratch split.
func TestProblemCacheConcurrentSelections(t *testing.T) {
	inst := workingExampleInstance()
	base := Config{M: 3, Lambda: 1, Mu: 0.2}
	selectors := []Selector{CompaReSetS{}, CompaReSetSPlus{}}
	want := make([]*Selection, len(selectors))
	for i, sel := range selectors {
		s, err := sel.Select(inst, base)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = s
	}

	cached := base
	cached.Problems = NewProblemCache()
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for n := 0; n < 10; n++ {
				i := (w + n) % len(selectors)
				got, err := selectors[i].Select(inst, cached)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(got.Indices, want[i].Indices) || got.Objective != want[i].Objective {
					t.Errorf("worker %d run %d (%s): %+v vs %+v", w, n, selectors[i].Name(), got, want[i])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
