package core

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"comparesets/internal/faultinject"
)

func TestSelectContextFaultInjection(t *testing.T) {
	faultinject.Reset()
	t.Cleanup(faultinject.Reset)
	inst := workingExampleInstance()
	cfg := Config{M: 2, Lambda: 0.5, Mu: 0.5}

	faultinject.Arm(faultinject.PointCoreSelect, faultinject.Fault{Mode: faultinject.ModeError})
	for _, sel := range []Selector{CompaReSetS{}, CompaReSetSPlus{}} {
		if _, err := sel.SelectContext(context.Background(), inst, cfg); !errors.Is(err, faultinject.ErrInjected) {
			t.Errorf("%s: err = %v, want ErrInjected", sel.Name(), err)
		}
	}

	// Disarmed, the exact same calls succeed and agree with Select.
	faultinject.Reset()
	for _, sel := range []Selector{CompaReSetS{}, CompaReSetSPlus{}} {
		got, err := sel.SelectContext(context.Background(), inst, cfg)
		if err != nil {
			t.Fatalf("%s after disarm: %v", sel.Name(), err)
		}
		want, err := sel.Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Indices, want.Indices) {
			t.Errorf("%s: post-fault selection diverged", sel.Name())
		}
	}
}
