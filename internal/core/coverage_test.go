package core

import (
	"math/rand"
	"testing"

	"comparesets/internal/model"
)

func TestComprehensiveCoversAllAspectsWhenBudgetAllows(t *testing.T) {
	inst := workingExampleInstance()
	cfg := Config{M: 5, Lambda: 1}
	sel, err := (Comprehensive{}).Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	z := inst.Aspects.Len()
	for i, it := range inst.Items {
		if cov := CoverageOf(it, sel.Indices[i], z); cov < 1 {
			t.Errorf("item %s: coverage %v < 1 with ample budget", it.ID, cov)
		}
	}
}

func TestComprehensiveStopsWhenCovered(t *testing.T) {
	// One review covers everything the item discusses; no second review
	// should be selected even with budget left.
	voc := model.NewVocabulary([]string{"a", "b"})
	it := &model.Item{ID: "p", Reviews: []*model.Review{
		{ID: "r1", Mentions: []model.Mention{
			{Aspect: 0, Polarity: model.Positive}, {Aspect: 1, Polarity: model.Negative},
		}},
		{ID: "r2", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive}}},
	}}
	inst := &model.Instance{Aspects: voc, Items: []*model.Item{it}}
	sel, err := (Comprehensive{}).Select(inst, Config{M: 2, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices[0]) != 1 || sel.Indices[0][0] != 0 {
		t.Errorf("indices = %v, want [0]", sel.Indices[0])
	}
}

func TestCoverageOpinionsCoversBothPolarities(t *testing.T) {
	// Aspect 0 has a praising and a panning review; both must be selected
	// before anything else.
	voc := model.NewVocabulary([]string{"a"})
	it := &model.Item{ID: "p", Reviews: []*model.Review{
		{ID: "r1", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive}}},
		{ID: "r2", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive}}},
		{ID: "r3", Mentions: []model.Mention{{Aspect: 0, Polarity: model.Negative}}},
	}}
	inst := &model.Instance{Aspects: voc, Items: []*model.Item{it}}
	sel, err := (CoverageOpinions{}).Select(inst, Config{M: 2, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	got := sel.Indices[0]
	if len(got) != 2 {
		t.Fatalf("indices = %v", got)
	}
	polarities := map[model.Polarity]bool{}
	for _, j := range got {
		polarities[it.Reviews[j].Mentions[0].Polarity] = true
	}
	if !polarities[model.Positive] || !polarities[model.Negative] {
		t.Errorf("both polarities not covered: %v", got)
	}
}

func TestCoverageBaselinesRespectBudgetAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		inst := randomTinyInstance(rng, 3, 12, 5)
		for _, s := range []Selector{Comprehensive{}, CoverageOpinions{}} {
			m := 1 + rng.Intn(4)
			sel, err := s.Select(inst, Config{M: m, Lambda: 1})
			if err != nil {
				t.Fatal(err)
			}
			for i, idx := range sel.Indices {
				if len(idx) > m {
					t.Fatalf("%s: item %d selected %d > m=%d", s.Name(), i, len(idx), m)
				}
				for k := 1; k < len(idx); k++ {
					if idx[k] <= idx[k-1] {
						t.Fatalf("%s: indices not strictly increasing: %v", s.Name(), idx)
					}
				}
			}
		}
	}
}

func TestComprehensiveBeatsRandomOnCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	var compTotal, randTotal float64
	for trial := 0; trial < 20; trial++ {
		inst := randomTinyInstance(rng, 2, 14, 6)
		cfg := Config{M: 2, Lambda: 1, Seed: int64(trial)}
		comp, err := (Comprehensive{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		random, err := (Random{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		z := inst.Aspects.Len()
		for i, it := range inst.Items {
			compTotal += CoverageOf(it, comp.Indices[i], z)
			randTotal += CoverageOf(it, random.Indices[i], z)
		}
	}
	if compTotal < randTotal {
		t.Errorf("comprehensive coverage %v < random %v", compTotal, randTotal)
	}
}

func TestExtendedSelectorsRegistry(t *testing.T) {
	ext := ExtendedSelectors()
	if len(ext) != 7 {
		t.Fatalf("extended selectors = %d", len(ext))
	}
	names := map[string]bool{}
	for _, s := range ext {
		if names[s.Name()] {
			t.Errorf("duplicate name %s", s.Name())
		}
		names[s.Name()] = true
	}
	if !names["Comprehensive"] || !names["CoverageOpinions"] {
		t.Error("coverage baselines missing")
	}
}

func TestCoverageOfEdgeCases(t *testing.T) {
	it := &model.Item{ID: "p"} // no reviews at all
	if got := CoverageOf(it, nil, 3); got != 1 {
		t.Errorf("empty item coverage = %v, want 1", got)
	}
}
