package core

import (
	"errors"
	"math/rand"
	"testing"

	"comparesets/internal/model"
)

func TestExhaustiveMatchesKnownOptimum(t *testing.T) {
	inst := singleItemInstance()
	cfg := Config{M: 3, Lambda: 1}
	sel, err := (Exhaustive{}).Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sel.Objective > 1e-10 {
		t.Errorf("objective = %v, want 0", sel.Objective)
	}
}

func TestExhaustiveRejectsLargeItems(t *testing.T) {
	voc := model.NewVocabulary([]string{"a"})
	it := &model.Item{ID: "big"}
	for i := 0; i < MaxExhaustiveReviews+1; i++ {
		it.Reviews = append(it.Reviews, &model.Review{
			ID: idOf(i), ItemID: "big",
			Mentions: []model.Mention{{Aspect: 0, Polarity: model.Positive}},
		})
	}
	inst := &model.Instance{Aspects: voc, Items: []*model.Item{it}}
	if _, err := (Exhaustive{}).Select(inst, Config{M: 2, Lambda: 1}); !errors.Is(err, ErrTooManyReviews) {
		t.Errorf("err = %v", err)
	}
}

func idOf(i int) string { return "r" + string(rune('a'+i%26)) + string(rune('a'+i/26)) }

// The Integer-Regression heuristic must stay close to the exhaustive
// optimum on random small instances — this is the optimality-gap ablation
// behind the "Integer-Regression over simple greedy" claim of §4.2.1.
func TestIntegerRegressionOptimalityGap(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var irTotal, exTotal, greedyTotal float64
	const trials = 25
	for trial := 0; trial < trials; trial++ {
		inst := randomTinyInstance(rng, 3, 10, 4)
		cfg := Config{M: 3, Lambda: 1}
		ex, err := (Exhaustive{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ir, err := (CompaReSetS{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := (Greedy{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ir.Objective < ex.Objective-1e-9 {
			t.Fatalf("trial %d: heuristic %v beat the exhaustive optimum %v", trial, ir.Objective, ex.Objective)
		}
		irTotal += ir.Objective
		exTotal += ex.Objective
		greedyTotal += gr.Objective
	}
	// Aggregate gap: Integer-Regression within 25% of the exhaustive
	// optimum. Greedy can edge it on the raw Eq. 3 objective for tiny
	// adversarial instances (it optimizes the true nonlinear objective
	// step-by-step); the paper's greedy-vs-IR comparison is about review
	// alignment on realistic data, which the Table 3 tests cover. Here we
	// only require IR to stay in greedy's neighborhood.
	if irTotal > 1.25*exTotal+0.5 {
		t.Errorf("Integer-Regression total %v vs exhaustive %v: gap too large", irTotal, exTotal)
	}
	if irTotal > 1.15*greedyTotal {
		t.Errorf("Integer-Regression total %v far worse than greedy %v", irTotal, greedyTotal)
	}
}

// randomTinyInstance builds an instance with nItems items, ≤ maxReviews
// reviews each, over z aspects.
func randomTinyInstance(rng *rand.Rand, nItems, maxReviews, z int) *model.Instance {
	names := make([]string, z)
	for i := range names {
		names[i] = "a" + string(rune('0'+i))
	}
	voc := model.NewVocabulary(names)
	items := make([]*model.Item, nItems)
	rid := 0
	for i := range items {
		it := &model.Item{ID: "p" + string(rune('0'+i))}
		n := 3 + rng.Intn(maxReviews-2)
		for r := 0; r < n; r++ {
			rev := &model.Review{ID: idOf(rid), ItemID: it.ID}
			rid++
			k := 1 + rng.Intn(2)
			for a := 0; a < k; a++ {
				pol := model.Positive
				if rng.Float64() < 0.5 {
					pol = model.Negative
				}
				rev.Mentions = append(rev.Mentions, model.Mention{
					Aspect: rng.Intn(z), Polarity: pol, Score: 1,
				})
			}
			it.Reviews = append(it.Reviews, rev)
		}
		items[i] = it
	}
	return &model.Instance{Aspects: voc, Items: items}
}
