package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSelectorsDeterministicAcrossWorkers locks in the parallel ≡ sequential
// guarantee of the intra-instance fan-out: the per-item regressions are
// independent, so the selections and objective of a run with any worker
// count must be identical to a sequential run, down to the last bit.
func TestSelectorsDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	inst := randomTinyInstance(rng, 8, 30, 8)
	for _, sel := range []Selector{CompaReSetS{}, CompaReSetSPlus{}} {
		base := Config{M: 4, Lambda: 1, Mu: 0.2, Passes: 2, Workers: 1}
		ref, err := sel.Select(inst, base)
		if err != nil {
			t.Fatalf("%s sequential: %v", sel.Name(), err)
		}
		for _, workers := range []int{0, 2, 4, 16} {
			cfg := base
			cfg.Workers = workers
			got, err := sel.Select(inst, cfg)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", sel.Name(), workers, err)
			}
			if !reflect.DeepEqual(got.Indices, ref.Indices) {
				t.Fatalf("%s workers=%d: indices diverge from sequential run\n got: %v\nwant: %v",
					sel.Name(), workers, got.Indices, ref.Indices)
			}
			if got.Objective != ref.Objective {
				t.Fatalf("%s workers=%d: objective %v != sequential %v",
					sel.Name(), workers, got.Objective, ref.Objective)
			}
		}
	}
}

// TestSelectorsDeterministicAcrossRepeats guards against hidden map-order or
// scratch-reuse nondeterminism: repeated runs with the same inputs must
// agree exactly.
func TestSelectorsDeterministicAcrossRepeats(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	inst := randomTinyInstance(rng, 6, 25, 7)
	cfg := Config{M: 5, Lambda: 0.8, Mu: 0.3, Passes: 2}
	for _, sel := range []Selector{CompaReSetS{}, CompaReSetSPlus{}} {
		ref, err := sel.Select(inst, cfg)
		if err != nil {
			t.Fatalf("%s: %v", sel.Name(), err)
		}
		for rep := 0; rep < 3; rep++ {
			got, err := sel.Select(inst, cfg)
			if err != nil {
				t.Fatalf("%s rep %d: %v", sel.Name(), rep, err)
			}
			if !reflect.DeepEqual(got.Indices, ref.Indices) || got.Objective != ref.Objective {
				t.Fatalf("%s rep %d: run diverged", sel.Name(), rep)
			}
		}
	}
}
