package core

import (
	"context"
	"sort"

	"math"
	"math/rand"

	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/regress"
)

// CRS is the single-item Characteristic Review Selection baseline of Lappas
// et al. (KDD 2012): the special case of CompaReSetS with one item and
// λ = 0 (§2.2), applied to every item of the instance independently. Each
// item's reviews are matched against its own opinion distribution τᵢ only —
// no cross-item coupling and no target-aspect term.
type CRS struct{}

// Name implements Selector.
func (CRS) Name() string { return "Crs" }

// Select implements Selector.
func (s CRS) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector.
func (CRS) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	crsCfg := cfg
	crsCfg.Lambda = 0
	crsCfg.Mu = 0
	tg := NewTargets(inst, crsCfg)
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	z := inst.Aspects.Len()
	sch := crsCfg.scheme()
	for i, it := range inst.Items {
		if len(it.Reviews) == 0 {
			continue
		}
		cols := make([]linalg.Vector, len(it.Reviews))
		for j, r := range it.Reviews {
			cols[j] = sch.Column(r, z)
		}
		w := linalg.MatrixFromColumns(cols)
		item := i
		eval := func(selected []int) float64 {
			set := gather(it.Reviews, selected)
			return linalg.SquaredDistance(tg.Tau[item], sch.Vector(set, z))
		}
		var err error
		sel.Indices[i], _, err = regress.SolveContext(ctx, w, tg.Tau[i], crsCfg.M, eval)
		if err != nil {
			return nil, err
		}
	}
	sel.Objective = ObjectiveCompareSets(inst, NewTargets(inst, cfg), cfg, sel.Reviews(inst))
	return sel, nil
}

// Greedy is the CompaReSetS_Greedy baseline (§4.1.2): select reviews
// one-by-one, each time adding the review that minimizes the per-item
// objective (Eq. 3) of the grown set, until m reviews are chosen or no
// addition improves the objective.
type Greedy struct{}

// Name implements Selector.
func (Greedy) Name() string { return "CompaReSetS_Greedy" }

// Select implements Selector.
func (s Greedy) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector; ctx is checked before each item.
func (Greedy) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	tg := NewTargets(inst, cfg)
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	for i, it := range inst.Items {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sel.Indices[i] = greedyItem(inst, tg, cfg, i, it)
	}
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

func greedyItem(inst *model.Instance, tg *Targets, cfg Config, item int, it *model.Item) []int {
	n := len(it.Reviews)
	if n == 0 {
		return nil
	}
	chosen := make([]int, 0, cfg.M)
	inSet := make([]bool, n)
	cur := math.Inf(1)
	for len(chosen) < cfg.M {
		best, bestObj := -1, math.Inf(1)
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			cand := append(append([]int{}, chosen...), j)
			obj := ItemObjective(inst, tg, cfg, item, gather(it.Reviews, cand))
			if obj < bestObj {
				best, bestObj = j, obj
			}
		}
		if best < 0 || bestObj >= cur {
			break
		}
		chosen = append(chosen, best)
		inSet[best] = true
		cur = bestObj
	}
	sort.Ints(chosen)
	return chosen
}

// Random samples reviews uniformly without replacement until m reviews are
// selected per item (§4.1.2). The draw is deterministic for a fixed
// cfg.Seed.
type Random struct{}

// Name implements Selector.
func (Random) Name() string { return "Random" }

// Select implements Selector.
func (s Random) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector; the draw is fast enough that only the
// entry checkpoint applies.
func (Random) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tg := NewTargets(inst, cfg)
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	for i, it := range inst.Items {
		sel.Indices[i] = randomSubset(rng, len(it.Reviews), cfg.M)
	}
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// Selectors returns the five algorithms in the row order of Table 3.
func Selectors() []Selector {
	return []Selector{Random{}, CRS{}, Greedy{}, CompaReSetS{}, CompaReSetSPlus{}}
}

// SelectorByName returns the selector with the given Name.
func SelectorByName(name string) (Selector, bool) {
	for _, s := range Selectors() {
		if s.Name() == name {
			return s, true
		}
	}
	return nil, false
}
