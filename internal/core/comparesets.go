package core

import (
	"context"
	"sync"
	"sync/atomic"

	"comparesets/internal/faultinject"
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/obs"
)

// CompaReSetS solves Problem 1 by Integer-Regression, independently per item
// (Eq. 1 decomposes over items, Eq. 3/4): for item pᵢ the design matrix W
// stacks the opinion rows (entry 1 iff opinion o appears in review r) over
// λ-scaled aspect rows (entry λ iff aspect a appears in r), and the target
// is [τᵢ; λ·Γ].
type CompaReSetS struct{}

// Name implements Selector.
func (CompaReSetS) Name() string { return "CompaReSetS" }

// Select implements Selector.
func (s CompaReSetS) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector. Because Eq. 1 decomposes over items,
// the per-item regressions run on a bounded worker pool (cfg.Workers);
// results are byte-identical to a sequential run since every item's
// subproblem is independent and deterministic.
func (CompaReSetS) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faultinject.CheckCtx(ctx, faultinject.PointCoreSelect); err != nil {
		return nil, err
	}
	tg := NewTargets(inst, cfg)
	fc := newFeatureCache(inst, cfg, tg)
	indices, err := selectItems(ctx, fc)
	if err != nil {
		return nil, err
	}
	sel := &Selection{Indices: indices}
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// selectItems fans the independent per-item regressions across cfg.Workers
// goroutines (the SelectAll idiom one level down). out[i] depends only on
// item i, so scheduling cannot change results. Every worker checks ctx
// before starting an item; the first error (including ctx.Err()) wins and
// the remaining items are skipped.
func selectItems(ctx context.Context, fc *featureCache) ([][]int, error) {
	n := fc.inst.NumItems()
	out := make([][]int, n)
	workers := fc.cfg.workerCount()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			sel, err := selectForItem(ctx, fc, i)
			if err != nil {
				return nil, err
			}
			out[i] = sel
		}
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		failed   atomic.Bool
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if failed.Load() {
					continue // drain remaining jobs without working
				}
				sel, err := selectForItem(ctx, fc, i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					failed.Store(true)
					continue
				}
				out[i] = sel
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// selectForItem runs Integer-Regression for a single item against the
// CompaReSetS target [τᵢ; λΓ], using the item's cached problem.
func selectForItem(ctx context.Context, fc *featureCache, item int) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(fc.inst.Items[item].Reviews) == 0 {
		return nil, nil
	}
	p := fc.baseProblem(item)
	eval := func(selected []int) float64 {
		return fc.itemObjective(item, selected)
	}
	sel, _, err := p.SolveContext(ctx, fc.items[item].baseTarget, fc.cfg.M, nil, eval)
	return sel, err
}

// CompaReSetSPlus solves Problem 2 with Algorithm 1: initialize with
// CompaReSetS, then sweep the items, re-running Integer-Regression for item
// pᵢ against the extended target Υ = [τᵢ; λΓ; μφ(S₁); …; μφ(Sᵢ₋₁);
// μφ(Sᵢ₊₁); …; μφ(S_n)] with the other items' selections held fixed. The
// implementation collapses the n−1 identical μ-blocks of Υ's design into a
// single √(n−1)·μ block (see featureCache), so each sweep step reuses the
// item's cached problem and only rebuilds the dim+2z-row target.
type CompaReSetSPlus struct{}

// Name implements Selector.
func (CompaReSetSPlus) Name() string { return "CompaReSetS+" }

// Select implements Selector.
func (s CompaReSetSPlus) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	return s.SelectContext(context.Background(), inst, cfg)
}

// SelectContext implements Selector.
func (CompaReSetSPlus) SelectContext(ctx context.Context, inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := faultinject.CheckCtx(ctx, faultinject.PointCoreSelect); err != nil {
		return nil, err
	}
	tg := NewTargets(inst, cfg)
	fc := newFeatureCache(inst, cfg, tg)
	indices, err := selectItems(ctx, fc)
	if err != nil {
		return nil, err
	}
	// φ(Sᵢ) of every item's current selection, maintained incrementally:
	// each sweep step changes exactly one item's set.
	phis := make([]linalg.Vector, len(indices))
	for i := range phis {
		phis[i] = fc.phi(i, indices[i])
	}
	passes := cfg.Passes
	if passes <= 0 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		sweepSpan := obs.StartStage(obs.StageSweep)
		for i := range inst.Items {
			idx, err := resyncItem(ctx, fc, i, indices, phis)
			if err != nil {
				return nil, err
			}
			indices[i] = idx
			phis[i] = fc.phi(i, indices[i])
		}
		sweepSpan.Stop()
	}
	sel := &Selection{Indices: indices}
	sel.Objective = ObjectivePlus(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// resyncItem re-selects item i's reviews against the synchronized target of
// Algorithm 1, keeping the incumbent when no candidate improves the exact
// conditional objective. phis holds φ(S_b) for every item's current
// selection.
func resyncItem(ctx context.Context, fc *featureCache, item int, indices [][]int, phis []linalg.Vector) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(fc.inst.Items[item].Reviews) == 0 {
		return nil, nil
	}
	n := fc.inst.NumItems()
	// Aggregates of the other items' aspect vectors: Σ_b φ_b feeds the
	// collapsed regression target, and together with Σ_b ‖φ_b‖² it turns
	// the exact conditional objective's pairwise term into O(z):
	// Σ_b ‖φ − φ_b‖² = (n−1)‖φ‖² − 2·φ·Σ_b φ_b + Σ_b ‖φ_b‖².
	othersSum := linalg.NewVector(fc.z)
	var othersSq float64
	for b := 0; b < n; b++ {
		if b == item {
			continue
		}
		othersSum.AddInPlace(phis[b])
		othersSq += phis[b].Dot(phis[b])
	}
	l2 := fc.cfg.Lambda * fc.cfg.Lambda
	mu2 := fc.cfg.Mu * fc.cfg.Mu
	eval := func(selected []int) float64 {
		pi, phi := fc.piPhi(item, selected)
		obj := linalg.SquaredDistance(fc.tg.Tau[item], pi) +
			l2*linalg.SquaredDistance(fc.tg.Gamma, phi)
		cross := float64(n-1)*phi.Dot(phi) - 2*phi.Dot(othersSum) + othersSq
		if cross < 0 {
			cross = 0 // guard the expansion against rounding
		}
		return obj + mu2*cross
	}

	p := fc.plusProblem(item)
	y := fc.plusTarget(item, othersSum)
	sel, obj, err := p.SolveContext(ctx, y, fc.cfg.M, nil, eval)
	if err != nil {
		return nil, err
	}
	// Keep the incumbent if strictly better (Algorithm 1 tracks min_Δ; we
	// seed it with the current selection so a sweep never regresses).
	if cur := indices[item]; len(cur) > 0 {
		if eval(cur) <= obj {
			return cur, nil
		}
	}
	return sel, nil
}

func gather(reviews []*model.Review, idx []int) []*model.Review {
	out := make([]*model.Review, 0, len(idx))
	for _, j := range idx {
		out = append(out, reviews[j])
	}
	return out
}
