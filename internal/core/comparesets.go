package core

import (
	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/opinion"
	"comparesets/internal/regress"
)

// CompaReSetS solves Problem 1 by Integer-Regression, independently per item
// (Eq. 1 decomposes over items, Eq. 3/4): for item pᵢ the design matrix W
// stacks the opinion rows (entry 1 iff opinion o appears in review r) over
// λ-scaled aspect rows (entry λ iff aspect a appears in r), and the target
// is [τᵢ; λ·Γ].
type CompaReSetS struct{}

// Name implements Selector.
func (CompaReSetS) Name() string { return "CompaReSetS" }

// Select implements Selector.
func (CompaReSetS) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	tg := NewTargets(inst, cfg)
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	for i := range inst.Items {
		sel.Indices[i] = selectForItem(inst, tg, cfg, i)
	}
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// selectForItem runs Integer-Regression for a single item against the
// CompaReSetS target [τᵢ; λΓ].
func selectForItem(inst *model.Instance, tg *Targets, cfg Config, item int) []int {
	it := inst.Items[item]
	if len(it.Reviews) == 0 {
		return nil
	}
	z := inst.Aspects.Len()
	sch := cfg.scheme()
	cols := make([]linalg.Vector, len(it.Reviews))
	for j, r := range it.Reviews {
		cols[j] = linalg.Concat(
			sch.Column(r, z),
			opinion.AspectColumn(r, z).Scale(cfg.Lambda),
		)
	}
	w := linalg.MatrixFromColumns(cols)
	target := linalg.Concat(tg.Tau[item], tg.Gamma.Scale(cfg.Lambda))
	eval := func(selected []int) float64 {
		return ItemObjective(inst, tg, cfg, item, gather(it.Reviews, selected))
	}
	sel, _ := regress.Solve(w, target, cfg.M, eval)
	return sel
}

// CompaReSetSPlus solves Problem 2 with Algorithm 1: initialize with
// CompaReSetS, then sweep the items, re-running Integer-Regression for item
// pᵢ against the extended target Υ = [τᵢ; λΓ; μφ(S₁); …; μφ(Sᵢ₋₁);
// μφ(Sᵢ₊₁); …; μφ(S_n)] with the other items' selections held fixed.
type CompaReSetSPlus struct{}

// Name implements Selector.
func (CompaReSetSPlus) Name() string { return "CompaReSetS+" }

// Select implements Selector.
func (CompaReSetSPlus) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	tg := NewTargets(inst, cfg)
	init, err := (CompaReSetS{}).Select(inst, cfg)
	if err != nil {
		return nil, err
	}
	indices := init.Indices
	passes := cfg.Passes
	if passes <= 0 {
		passes = 1
	}
	for pass := 0; pass < passes; pass++ {
		for i := range inst.Items {
			indices[i] = resyncItem(inst, tg, cfg, i, indices)
		}
	}
	sel := &Selection{Indices: indices}
	sel.Objective = ObjectivePlus(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// resyncItem re-selects item i's reviews against the synchronized target of
// Algorithm 1, keeping the incumbent when no candidate improves the exact
// conditional objective.
func resyncItem(inst *model.Instance, tg *Targets, cfg Config, item int, indices [][]int) []int {
	it := inst.Items[item]
	if len(it.Reviews) == 0 {
		return nil
	}
	z := inst.Aspects.Len()
	sch := cfg.scheme()

	// Aspect vectors of the other items' current selections.
	others := make([]linalg.Vector, 0, len(inst.Items)-1)
	for j := range inst.Items {
		if j == item {
			continue
		}
		others = append(others, opinion.AspectVector(gather(inst.Items[j].Reviews, indices[j]), z))
	}

	// Design matrix V: opinion rows, λ aspect rows, (n−1) μ aspect blocks.
	cols := make([]linalg.Vector, len(it.Reviews))
	for j, r := range it.Reviews {
		asp := opinion.AspectColumn(r, z)
		parts := make([]linalg.Vector, 0, 2+len(others))
		parts = append(parts, sch.Column(r, z), asp.Scale(cfg.Lambda))
		muAsp := asp.Scale(cfg.Mu)
		for range others {
			parts = append(parts, muAsp)
		}
		cols[j] = linalg.Concat(parts...)
	}
	v := linalg.MatrixFromColumns(cols)

	// Target Υ.
	parts := make([]linalg.Vector, 0, 2+len(others))
	parts = append(parts, tg.Tau[item], tg.Gamma.Scale(cfg.Lambda))
	for _, phi := range others {
		parts = append(parts, phi.Scale(cfg.Mu))
	}
	target := linalg.Concat(parts...)

	// Exact conditional objective for item i given the others.
	mu2 := cfg.Mu * cfg.Mu
	eval := func(selected []int) float64 {
		set := gather(it.Reviews, selected)
		obj := ItemObjective(inst, tg, cfg, item, set)
		phi := opinion.AspectVector(set, z)
		for _, o := range others {
			obj += mu2 * linalg.SquaredDistance(phi, o)
		}
		return obj
	}

	sel, obj := regress.Solve(v, target, cfg.M, eval)
	// Keep the incumbent if strictly better (Algorithm 1 tracks min_Δ; we
	// seed it with the current selection so a sweep never regresses).
	if cur := indices[item]; len(cur) > 0 {
		if eval(cur) <= obj {
			return cur
		}
	}
	return sel
}

func gather(reviews []*model.Review, idx []int) []*model.Review {
	out := make([]*model.Review, 0, len(idx))
	for _, j := range idx {
		out = append(out, reviews[j])
	}
	return out
}
