package core

import (
	"math"

	"comparesets/internal/linalg"
	"comparesets/internal/model"
	"comparesets/internal/obs"
	"comparesets/internal/opinion"
	"comparesets/internal/regress"
)

// featureCache precomputes every (instance, Config)-invariant artifact of
// the Integer-Regression hot path so that neither the per-item selection nor
// the CompaReSetS+ sweeps rebuild review features: each review's opinion and
// aspect columns, the per-item deduplicated design problems (whose grouping,
// sparsity, and Gram structure only depend on the reviews, λ, μ, and n —
// never on the sweep state), and the fixed parts of the regression targets.
//
// The CompaReSetS+ design is restructured on the way in: Algorithm 1's
// matrix V stacks n−1 identical μ-scaled copies of each review's aspect
// column (one block per other item). Since
//
//	Σ_b ‖μ·φ(S_b) − μ·φ‖² = (n−1)‖μ·φ − μ·Φ̄‖² + const,  Φ̄ = Σ_b φ(S_b)/(n−1),
//
// the n−1 blocks collapse into a single √(n−1)·μ-scaled aspect block
// against the mean of the other items' aspect vectors. The collapsed
// problem has identical NOMP correlations and NNLS minimizers (constants
// never enter either), identical dedup grouping, and dim+2z rows regardless
// of n — so a sweep step no longer scales with the item count.
type featureCache struct {
	inst *model.Instance
	cfg  Config
	z    int
	sch  opinion.Scheme
	// counting is true for schemes whose π(S) is a normalized column sum,
	// enabling candidate evaluation straight from the cached columns.
	counting bool
	// use32 mirrors cfg.Float32: columns live in op32/asp32 float32 slabs
	// and every consumer widens on the fly (accumulating in float64).
	use32 bool
	tg    *Targets
	// gammaL is λ·Γ, scaled once: it appears in every item's base target
	// and every sweep target.
	gammaL linalg.Vector
	items  []itemFeatures
}

// itemFeatures is the per-item slice of the cache.
type itemFeatures struct {
	// opCols[j] is sch.Column(reviews[j], z); aspCols[j] is the 0/1 aspect
	// column of reviews[j]. Nil in float32 mode.
	opCols  []linalg.Vector
	aspCols []linalg.Vector
	// op32/asp32 are the compact float32 columns used when cfg.Float32 is
	// set (either handed out by a FeatureSource32 or narrowed locally).
	op32  []linalg.Vector32
	asp32 []linalg.Vector32
	// base is the CompaReSetS problem over columns [op; λ·asp], built on
	// first use; baseTarget is its fixed target [τᵢ; λ·Γ].
	base       *regress.Problem
	baseTarget linalg.Vector
	// plus is the collapsed CompaReSetS+ problem over columns
	// [op; λ·asp; √(n−1)·μ·asp], built on first use. Its target changes
	// every sweep; the problem itself never does. plusTargetBuf is the
	// reusable target vector those sweep steps assemble into (per-item, so
	// a parallel sweep could never share it).
	plus          *regress.Problem
	plusTargetBuf linalg.Vector
	// piBuf/phiBuf are the scratch vectors piPhi returns for counting
	// schemes; per-item so the parallel fan-out never shares them.
	piBuf, phiBuf linalg.Vector
}

func newFeatureCache(inst *model.Instance, cfg Config, tg *Targets) *featureCache {
	span := obs.StartStage(obs.StageFeatureBuild)
	defer span.Stop()
	fc := &featureCache{
		inst:  inst,
		cfg:   cfg,
		z:     inst.Aspects.Len(),
		sch:   cfg.scheme(),
		tg:    tg,
		items: make([]itemFeatures, inst.NumItems()),
	}
	fc.counting = opinion.IsCounting(fc.sch)
	fc.use32 = cfg.Float32
	fc.gammaL = tg.Gamma.Scale(cfg.Lambda)
	for i, it := range inst.Items {
		f := &fc.items[i]
		// A corpus-resident feature source (internal/featstore) hands out
		// the columns precomputed; the slabs are shared and read-only —
		// every downstream use copies into request-private buffers. In
		// float32 mode a FeatureSource32 serves compact slabs directly;
		// items it cannot serve are computed in float64 and narrowed once.
		if fc.use32 {
			if src, ok := cfg.Features.(FeatureSource32); ok {
				if op, asp, ok := src.ItemColumns32(it, fc.sch, fc.z); ok {
					f.op32, f.asp32 = op, asp
					continue
				}
			}
			f.op32 = make([]linalg.Vector32, len(it.Reviews))
			f.asp32 = make([]linalg.Vector32, len(it.Reviews))
			for j, r := range it.Reviews {
				f.op32[j] = narrow32(fc.sch.Column(r, fc.z))
				f.asp32[j] = narrow32(opinion.AspectColumn(r, fc.z))
			}
			continue
		}
		if src := cfg.Features; src != nil {
			if op, asp, ok := src.ItemColumns(it, fc.sch, fc.z); ok {
				f.opCols, f.aspCols = op, asp
				continue
			}
		}
		f.opCols = make([]linalg.Vector, len(it.Reviews))
		f.aspCols = make([]linalg.Vector, len(it.Reviews))
		for j, r := range it.Reviews {
			f.opCols[j] = fc.sch.Column(r, fc.z)
			f.aspCols[j] = opinion.AspectColumn(r, fc.z)
		}
	}
	return fc
}

// narrow32 copies v into a fresh float32 slab.
func narrow32(v linalg.Vector) linalg.Vector32 {
	out := make(linalg.Vector32, len(v))
	linalg.NarrowKernel(v, out)
	return out
}

// numReviews returns the number of cached review columns.
func (f *itemFeatures) numReviews() int {
	if f.op32 != nil {
		return len(f.op32)
	}
	return len(f.opCols)
}

// muWeight is the collapsed-block scale √(n−1)·μ.
func (fc *featureCache) muWeight() float64 {
	n := fc.inst.NumItems()
	if n <= 1 {
		return 0
	}
	return fc.cfg.Mu * math.Sqrt(float64(n-1))
}

// problemKey identifies item i's regression problem of the given kind for
// sharing through a ProblemCache. Instances alias corpus-resident item
// pointers (model.NewInstance), so the pointer is a stable item identity
// across requests over the same corpus.
func (fc *featureCache) problemKey(i int, kind problemKind) problemKey {
	var muW float64
	if kind == problemPlus {
		muW = fc.muWeight()
	}
	return problemKey{
		item:    fc.inst.Items[i],
		kind:    kind,
		scheme:  fc.sch.Name(),
		z:       fc.z,
		lambda:  fc.cfg.Lambda,
		muW:     muW,
		float32: fc.use32,
	}
}

// baseProblem returns item i's CompaReSetS regression problem, building and
// memoizing it on first use — consulting the shared ProblemCache first when
// the config carries one. Not safe for concurrent calls on the same item;
// the parallel fan-out assigns each item to exactly one worker.
func (fc *featureCache) baseProblem(i int) *regress.Problem {
	f := &fc.items[i]
	if f.baseTarget == nil {
		f.baseTarget = linalg.Concat(fc.tg.Tau[i], fc.gammaL)
	}
	if f.base == nil {
		if pc := fc.cfg.Problems; pc != nil {
			f.base = pc.getOrBuild(fc.problemKey(i, problemBase), func() *regress.Problem {
				return fc.buildBaseProblem(i)
			})
		} else {
			f.base = fc.buildBaseProblem(i)
		}
	}
	return f.base
}

func (fc *featureCache) buildBaseProblem(i int) *regress.Problem {
	f := &fc.items[i]
	dim := fc.sch.Dim(fc.z)
	a := linalg.NewMatrix(dim+fc.z, f.numReviews())
	if fc.use32 {
		for j := range f.op32 {
			col := a.Col(j)
			linalg.WidenKernel(f.op32[j], col[:dim])
			linalg.WidenScaleKernel(fc.cfg.Lambda, f.asp32[j], col[dim:])
		}
	} else {
		for j := range f.opCols {
			col := a.Col(j)
			copy(col[:dim], f.opCols[j])
			for k, v := range f.aspCols[j] {
				col[dim+k] = v * fc.cfg.Lambda
			}
		}
	}
	return regress.NewProblem(a)
}

// plusProblem returns item i's collapsed CompaReSetS+ regression problem,
// building and memoizing it on first use (through the shared ProblemCache
// when present).
func (fc *featureCache) plusProblem(i int) *regress.Problem {
	f := &fc.items[i]
	if f.plus == nil {
		if pc := fc.cfg.Problems; pc != nil {
			f.plus = pc.getOrBuild(fc.problemKey(i, problemPlus), func() *regress.Problem {
				return fc.buildPlusProblem(i)
			})
		} else {
			f.plus = fc.buildPlusProblem(i)
		}
	}
	return f.plus
}

// buildPlusProblem assembles columns straight into the design matrix's
// backing array — one allocation for the whole block instead of per-review
// concatenations.
func (fc *featureCache) buildPlusProblem(i int) *regress.Problem {
	f := &fc.items[i]
	w := fc.muWeight()
	dim := fc.sch.Dim(fc.z)
	a := linalg.NewMatrix(dim+2*fc.z, f.numReviews())
	if fc.use32 {
		for j := range f.op32 {
			col := a.Col(j)
			linalg.WidenKernel(f.op32[j], col[:dim])
			linalg.WidenScaleKernel(fc.cfg.Lambda, f.asp32[j], col[dim:dim+fc.z])
			linalg.WidenScaleKernel(w, f.asp32[j], col[dim+fc.z:])
		}
	} else {
		for j := range f.opCols {
			col := a.Col(j)
			copy(col[:dim], f.opCols[j])
			for k, v := range f.aspCols[j] {
				col[dim+k] = v * fc.cfg.Lambda
				col[dim+fc.z+k] = v * w
			}
		}
	}
	return regress.NewProblem(a)
}

// plusTarget assembles item i's sweep target [τᵢ; λ·Γ; √(n−1)·μ·Φ̄] where
// othersSum is Σ_{b≠i} φ(S_b) over the other items' current selections.
// The returned vector is the item's reusable target buffer, valid until
// the next plusTarget call for the same item; the solver only reads it
// during the call it is passed to.
func (fc *featureCache) plusTarget(i int, othersSum linalg.Vector) linalg.Vector {
	f := &fc.items[i]
	tau := fc.tg.Tau[i]
	want := len(tau) + len(fc.gammaL) + fc.z
	if f.plusTargetBuf == nil {
		f.plusTargetBuf = linalg.NewVector(want)
	}
	y := f.plusTargetBuf
	copy(y, tau)
	copy(y[len(tau):], fc.gammaL)
	scaled := y[len(tau)+len(fc.gammaL):]
	n := fc.inst.NumItems()
	if n > 1 {
		w := fc.muWeight() / float64(n-1)
		for k, v := range othersSum {
			scaled[k] = w * v
		}
	} else {
		for k := range scaled {
			scaled[k] = 0
		}
	}
	return y
}

// phi computes φ(S) for item i's candidate selection from the cached aspect
// columns: per-aspect review counts normalized by the maximum count.
// Identical to opinion.AspectVector on the gathered reviews.
func (fc *featureCache) phi(i int, selected []int) linalg.Vector {
	sum := linalg.NewVector(fc.z)
	f := &fc.items[i]
	if fc.use32 {
		for _, j := range selected {
			linalg.AddWidenKernel(f.asp32[j], sum)
		}
	} else {
		for _, j := range selected {
			sum.AddInPlace(f.aspCols[j])
		}
	}
	if m := sum.Max(); m > 0 {
		sum.ScaleInPlace(1 / m)
	}
	return sum
}

// piPhi computes (π(S), φ(S)) for item i's candidate selection. For
// counting schemes both come from one pass over the cached columns; other
// schemes fall back to the reviews themselves. The returned vectors are
// per-item scratch, valid only until the next piPhi call for the same item
// — callers must not retain them.
func (fc *featureCache) piPhi(i int, selected []int) (pi, phi linalg.Vector) {
	if !fc.counting {
		set := gather(fc.inst.Items[i].Reviews, selected)
		return fc.sch.Vector(set, fc.z), opinion.AspectVector(set, fc.z)
	}
	f := &fc.items[i]
	if f.piBuf == nil {
		f.piBuf = linalg.NewVector(fc.sch.Dim(fc.z))
		f.phiBuf = linalg.NewVector(fc.z)
	}
	pi, phi = f.piBuf, f.phiBuf
	for k := range pi {
		pi[k] = 0
	}
	for k := range phi {
		phi[k] = 0
	}
	if fc.use32 {
		for _, j := range selected {
			linalg.AddWidenKernel(f.op32[j], pi)
			linalg.AddWidenKernel(f.asp32[j], phi)
		}
	} else {
		for _, j := range selected {
			pi.AddInPlace(f.opCols[j])
			phi.AddInPlace(f.aspCols[j])
		}
	}
	// The shared normalization denominator of Working Example 1: the
	// maximum per-aspect review count within the set.
	if m := phi.Max(); m > 0 {
		pi.ScaleInPlace(1 / m)
		phi.ScaleInPlace(1 / m)
	}
	return pi, phi
}

// itemObjective evaluates Eq. 3 for item i's candidate selection using the
// cached columns: Δ(τᵢ, π(S)) + λ²·Δ(Γ, φ(S)).
func (fc *featureCache) itemObjective(i int, selected []int) float64 {
	pi, phi := fc.piPhi(i, selected)
	return linalg.SquaredDistance(fc.tg.Tau[i], pi) +
		fc.cfg.Lambda*fc.cfg.Lambda*linalg.SquaredDistance(fc.tg.Gamma, phi)
}
