package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"comparesets/internal/model"
	"comparesets/internal/opinion"
)

// workingExampleInstance builds the three-item instance of Figure 2. p₁ is
// the target from Working Example 1 (aspects {battery, lens, quality, price,
// shuttle}); p₂ and p₃ are comparative items whose reviews overlap p₁'s
// aspects to different degrees, so CompaReSetS+ has room to synchronize.
func workingExampleInstance() *model.Instance {
	voc := model.NewVocabulary([]string{"battery", "lens", "quality", "price", "shuttle"})
	pos := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Positive, Score: 1} }
	neg := func(a int) model.Mention { return model.Mention{Aspect: a, Polarity: model.Negative, Score: -1} }
	mk := func(item, id string, ms ...model.Mention) *model.Review {
		return &model.Review{ID: id, ItemID: item, Mentions: ms}
	}
	const (
		battery = 0
		lens    = 1
		quality = 2
		price   = 3
		shuttle = 4
	)
	p1 := &model.Item{ID: "p1", Title: "Camera One", Reviews: []*model.Review{
		mk("p1", "r1", pos(battery), pos(lens)),
		mk("p1", "r2", neg(battery), neg(lens)),
		mk("p1", "r3", neg(battery), pos(quality)),
		mk("p1", "r4", neg(quality)),
		mk("p1", "r5", pos(battery), pos(lens)),
		mk("p1", "r6", neg(battery), neg(lens), pos(quality)),
		mk("p1", "r7", neg(battery), neg(quality)),
	}}
	p2 := &model.Item{ID: "p2", Title: "Camera Two", Reviews: []*model.Review{
		mk("p2", "r8", pos(battery), pos(price)),
		mk("p2", "r9", neg(battery), pos(lens)),
		mk("p2", "r10", pos(battery), neg(price)),
		mk("p2", "r15", pos(battery), pos(quality)),
		mk("p2", "r16", neg(battery), pos(lens), neg(quality)),
		mk("p2", "r17", pos(battery), neg(price)),
	}}
	p3 := &model.Item{ID: "p3", Title: "Camera Three", Reviews: []*model.Review{
		mk("p3", "r18", pos(shuttle)),
		mk("p3", "r19", neg(shuttle), pos(price)),
		mk("p3", "r20", pos(battery), pos(quality), pos(lens)),
		mk("p3", "r21", neg(battery), neg(quality)),
	}}
	return &model.Instance{Aspects: voc, Items: []*model.Item{p1, p2, p3}}
}

func singleItemInstance() *model.Instance {
	full := workingExampleInstance()
	return &model.Instance{Aspects: full.Aspects, Items: full.Items[:1]}
}

func TestCompaReSetSRecoversWorkingExampleOptimum(t *testing.T) {
	inst := singleItemInstance()
	cfg := Config{M: 3, Lambda: 1}
	sel, err := (CompaReSetS{}).Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// S₁ = {r5, r6, r7} achieves objective 0; r1 ≡ r5, so {r1, r6, r7} is
	// the same solution up to duplicate reviews. Assert optimality via the
	// achieved vectors rather than exact indices.
	if sel.Objective > 1e-10 {
		t.Errorf("objective = %v, want 0", sel.Objective)
	}
	if got := sel.Indices[0]; len(got) != 3 {
		t.Fatalf("indices = %v, want 3 reviews", got)
	}
	tg := NewTargets(inst, cfg)
	set := sel.Reviews(inst)[0]
	z := inst.Aspects.Len()
	pi := (opinion.Binary{}).Vector(set, z)
	phi := opinion.AspectVector(set, z)
	if d := opinionDistance(tg.Tau[0], pi); d > 1e-10 {
		t.Errorf("π(S₁) = %v, want τ₁ = %v", pi, tg.Tau[0])
	}
	if d := opinionDistance(tg.Gamma, phi); d > 1e-10 {
		t.Errorf("φ(S₁) = %v, want Γ = %v", phi, tg.Gamma)
	}
}

func TestCompaReSetSAlternativeOptimumAtLargerM(t *testing.T) {
	inst := singleItemInstance()
	cfg := Config{M: 4, Lambda: 1}
	sel, err := (CompaReSetS{}).Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Both {r5,r6,r7} and {r1,r2,r3,r4} are optimal with objective 0.
	if sel.Objective > 1e-10 {
		t.Errorf("objective = %v, want 0", sel.Objective)
	}
}

func TestCompaReSetSBudgetRespected(t *testing.T) {
	inst := workingExampleInstance()
	for _, m := range []int{1, 2, 3, 5} {
		sel, err := (CompaReSetS{}).Select(inst, Config{M: m, Lambda: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i, idx := range sel.Indices {
			if len(idx) > m {
				t.Errorf("m=%d: item %d selected %d reviews", m, i, len(idx))
			}
			for _, j := range idx {
				if j < 0 || j >= len(inst.Items[i].Reviews) {
					t.Errorf("m=%d: item %d index %d out of range", m, i, j)
				}
			}
		}
	}
}

func TestCompaReSetSPlusNeverWorseOnEq5(t *testing.T) {
	// Algorithm 1 seeds each item update with the incumbent, so the Eq. 5
	// objective of CompaReSetS+ is ≤ that of the CompaReSetS start.
	inst := workingExampleInstance()
	for _, mu := range []float64{0.01, 0.1, 1, 10} {
		cfg := Config{M: 3, Lambda: 1, Mu: mu}
		tg := NewTargets(inst, cfg)
		base, err := (CompaReSetS{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		plus, err := (CompaReSetSPlus{}).Select(inst, cfg)
		if err != nil {
			t.Fatal(err)
		}
		baseObj := ObjectivePlus(inst, tg, cfg, base.Reviews(inst))
		if plus.Objective > baseObj+1e-9 {
			t.Errorf("mu=%v: plus objective %v > base %v", mu, plus.Objective, baseObj)
		}
	}
}

func TestCompaReSetSPlusSynchronizesAspects(t *testing.T) {
	// With a strong μ the selected sets of different items should share
	// more aspects than the unsynchronized selection.
	inst := workingExampleInstance()
	cfg := Config{M: 2, Lambda: 1, Mu: 10}
	base, _ := (CompaReSetS{}).Select(inst, cfg)
	plus, _ := (CompaReSetSPlus{}).Select(inst, cfg)
	overlap := func(sel *Selection) int {
		sets := sel.Reviews(inst)
		count := 0
		z := inst.Aspects.Len()
		for a := 0; a < z; a++ {
			in := 0
			for _, s := range sets {
				for _, r := range s {
					if r.HasAspect(a) {
						in++
						break
					}
				}
			}
			if in == len(sets) {
				count++
			}
		}
		return count
	}
	if overlap(plus) < overlap(base) {
		t.Errorf("plus overlap %d < base overlap %d", overlap(plus), overlap(base))
	}
}

func TestCRSMatchesOpinionDistribution(t *testing.T) {
	inst := singleItemInstance()
	cfg := Config{M: 3, Lambda: 1} // CRS internally forces λ=0
	sel, err := (CRS{}).Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tg := NewTargets(inst, cfg)
	set := sel.Reviews(inst)[0]
	pi := (opinion.Binary{}).Vector(set, inst.Aspects.Len())
	if d := opinionDistance(tg.Tau[0], pi); d > 1e-9 {
		t.Errorf("CRS opinion distance = %v, want ~0 (π=%v τ=%v)", d, pi, tg.Tau[0])
	}
}

func opinionDistance(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func TestGreedyDeterministicAndBounded(t *testing.T) {
	inst := workingExampleInstance()
	cfg := Config{M: 3, Lambda: 1}
	a, err := (Greedy{}).Select(inst, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := (Greedy{}).Select(inst, cfg)
	if !reflect.DeepEqual(a.Indices, b.Indices) {
		t.Error("greedy is not deterministic")
	}
	for i, idx := range a.Indices {
		if len(idx) > cfg.M {
			t.Errorf("item %d: %d reviews", i, len(idx))
		}
	}
}

func TestRandomSeedDeterminism(t *testing.T) {
	inst := workingExampleInstance()
	a, _ := (Random{}).Select(inst, Config{M: 3, Seed: 7})
	b, _ := (Random{}).Select(inst, Config{M: 3, Seed: 7})
	c, _ := (Random{}).Select(inst, Config{M: 3, Seed: 8})
	if !reflect.DeepEqual(a.Indices, b.Indices) {
		t.Error("same seed produced different selections")
	}
	if reflect.DeepEqual(a.Indices, c.Indices) {
		t.Error("different seeds produced identical selections (suspicious)")
	}
	for i, idx := range a.Indices {
		seen := map[int]bool{}
		for _, j := range idx {
			if seen[j] {
				t.Errorf("item %d: duplicate index %d", i, j)
			}
			seen[j] = true
		}
	}
}

func TestConfigValidation(t *testing.T) {
	inst := workingExampleInstance()
	if _, err := (CompaReSetS{}).Select(inst, Config{M: 0}); err == nil {
		t.Error("M=0 accepted")
	}
	if _, err := (CompaReSetSPlus{}).Select(inst, Config{M: 3, Lambda: -1}); err == nil {
		t.Error("negative lambda accepted")
	}
	for _, s := range Selectors() {
		if _, err := s.Select(&model.Instance{Aspects: inst.Aspects}, Config{M: 3}); err == nil {
			t.Errorf("%s accepted empty instance", s.Name())
		}
	}
}

func TestEmptyReviewItemYieldsEmptySet(t *testing.T) {
	inst := workingExampleInstance()
	inst.Items = append(inst.Items, &model.Item{ID: "p4", Title: "No Reviews"})
	for _, s := range Selectors() {
		sel, err := s.Select(inst, Config{M: 3, Lambda: 1, Mu: 0.1})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(sel.Indices[3]) != 0 {
			t.Errorf("%s selected reviews for empty item: %v", s.Name(), sel.Indices[3])
		}
	}
}

func TestItemDistanceSymmetricNonNegative(t *testing.T) {
	inst := workingExampleInstance()
	cfg := Config{M: 3, Lambda: 1, Mu: 0.1}
	tg := NewTargets(inst, cfg)
	sel, _ := (CompaReSetSPlus{}).Select(inst, cfg)
	stats := Stats(inst, tg, cfg, sel)
	for i := range stats {
		for j := range stats {
			dij := ItemDistance(stats[i], stats[j], cfg)
			dji := ItemDistance(stats[j], stats[i], cfg)
			if dij < 0 {
				t.Errorf("d(%d,%d) = %v < 0", i, j, dij)
			}
			if math.Abs(dij-dji) > 1e-12 {
				t.Errorf("asymmetric distance d(%d,%d)=%v d(%d,%d)=%v", i, j, dij, j, i, dji)
			}
		}
	}
}

func TestStatsShapes(t *testing.T) {
	inst := workingExampleInstance()
	cfg := Config{M: 3, Lambda: 1}
	tg := NewTargets(inst, cfg)
	sel, _ := (CompaReSetS{}).Select(inst, cfg)
	stats := Stats(inst, tg, cfg, sel)
	if len(stats) != inst.NumItems() {
		t.Fatalf("stats length = %d", len(stats))
	}
	z := inst.Aspects.Len()
	for i, st := range stats {
		if len(st.Phi) != z {
			t.Errorf("item %d: |φ| = %d", i, len(st.Phi))
		}
		if st.OpinionLoss < 0 || st.AspectLoss < 0 {
			t.Errorf("item %d: negative loss", i)
		}
	}
}

func TestSelectorsRegistry(t *testing.T) {
	names := []string{"Random", "Crs", "CompaReSetS_Greedy", "CompaReSetS", "CompaReSetS+"}
	ss := Selectors()
	if len(ss) != len(names) {
		t.Fatalf("got %d selectors", len(ss))
	}
	for i, s := range ss {
		if s.Name() != names[i] {
			t.Errorf("selector %d = %s, want %s", i, s.Name(), names[i])
		}
		got, ok := SelectorByName(names[i])
		if !ok || got.Name() != names[i] {
			t.Errorf("SelectorByName(%s) failed", names[i])
		}
	}
	if _, ok := SelectorByName("nope"); ok {
		t.Error("unexpected selector for 'nope'")
	}
}

func TestObjectiveDecomposition(t *testing.T) {
	// Eq. 1 must equal the sum of per-item Eq. 3 values; Eq. 5 adds a
	// non-negative pairwise term.
	inst := workingExampleInstance()
	cfg := Config{M: 3, Lambda: 1, Mu: 0.5}
	tg := NewTargets(inst, cfg)
	sel, _ := (CompaReSetS{}).Select(inst, cfg)
	sets := sel.Reviews(inst)
	var sum float64
	for i := range inst.Items {
		sum += ItemObjective(inst, tg, cfg, i, sets[i])
	}
	eq1 := ObjectiveCompareSets(inst, tg, cfg, sets)
	if math.Abs(sum-eq1) > 1e-12 {
		t.Errorf("Eq1 = %v, per-item sum = %v", eq1, sum)
	}
	eq5 := ObjectivePlus(inst, tg, cfg, sets)
	if eq5 < eq1-1e-12 {
		t.Errorf("Eq5 = %v < Eq1 = %v", eq5, eq1)
	}
}

func TestCompaReSetSWithAllSchemes(t *testing.T) {
	inst := workingExampleInstance()
	for _, sch := range opinion.Schemes() {
		cfg := Config{M: 3, Lambda: 1, Mu: 0.1, Scheme: sch}
		for _, s := range Selectors() {
			sel, err := s.Select(inst, cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", s.Name(), sch.Name(), err)
			}
			if len(sel.Indices) != inst.NumItems() {
				t.Errorf("%s/%s: %d index sets", s.Name(), sch.Name(), len(sel.Indices))
			}
		}
	}
}

func TestRandomSubsetProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n, k := 1+rng.Intn(20), 1+rng.Intn(25)
		s := randomSubset(rng, n, k)
		want := k
		if want > n {
			want = n
		}
		if len(s) != want {
			t.Fatalf("len = %d, want %d", len(s), want)
		}
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Fatalf("not strictly increasing: %v", s)
			}
		}
	}
}

func TestMultiPassPlusMonotone(t *testing.T) {
	inst := workingExampleInstance()
	cfg1 := Config{M: 3, Lambda: 1, Mu: 1, Passes: 1}
	cfg3 := Config{M: 3, Lambda: 1, Mu: 1, Passes: 3}
	one, _ := (CompaReSetSPlus{}).Select(inst, cfg1)
	three, _ := (CompaReSetSPlus{}).Select(inst, cfg3)
	if three.Objective > one.Objective+1e-9 {
		t.Errorf("more passes worsened Eq5: %v > %v", three.Objective, one.Objective)
	}
}
