package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"comparesets/internal/model"
)

// SelectAll runs the selector over many independent problem instances in
// parallel; it is SelectAllContext with context.Background().
func SelectAll(insts []*model.Instance, sel Selector, cfg Config, workers int) ([]*Selection, error) {
	return SelectAllContext(context.Background(), insts, sel, cfg, workers)
}

// SelectAllContext runs the selector over many independent problem
// instances in parallel (§4.1.1: every target item is an independent
// instance). workers ≤ 0 uses GOMAXPROCS. Results are returned in instance
// order; per-instance configurations receive Seed = cfg.Seed + index so the
// Random baseline stays decorrelated and deterministic regardless of
// scheduling. Once ctx is done, unstarted instances are skipped and the
// call returns ctx.Err() (cancellation inside an instance surfaces through
// the selector's own checkpoints).
func SelectAllContext(ctx context.Context, insts []*model.Instance, sel Selector, cfg Config, workers int) ([]*Selection, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(insts) {
		workers = len(insts)
	}
	out := make([]*Selection, len(insts))
	if len(insts) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if ctx.Err() != nil {
					continue // drain: the ctx error is reported below
				}
				instCfg := cfg
				instCfg.Seed = cfg.Seed + int64(i)
				s, err := sel.SelectContext(ctx, insts[i], instCfg)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("core: instance %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				out[i] = s
			}
		}()
	}
	for i := range insts {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
