package core

import (
	"math"
	"math/bits"

	"comparesets/internal/model"
)

// Exhaustive is an exact reference selector: per item it enumerates every
// review subset of size ≤ m and keeps the one minimizing the per-item
// objective (Eq. 3). CompaReSetS is NP-complete, so this is only feasible
// for small review sets — it exists to measure the optimality gap of the
// Integer-Regression heuristic (see the ablation tests and benchmarks) and
// refuses items with more than MaxExhaustiveReviews reviews.
type Exhaustive struct{}

// MaxExhaustiveReviews bounds |R_i| for the exhaustive selector; beyond
// this, enumeration is hopeless (C(24, 5) ≈ 42k subsets per item already).
const MaxExhaustiveReviews = 24

// Name implements Selector.
func (Exhaustive) Name() string { return "Exhaustive" }

// Select implements Selector. Note that the exhaustive optimum is per-item
// (Eq. 1 decomposes), so this is the true CompaReSetS optimum, not the
// CompaReSetS+ optimum.
func (Exhaustive) Select(inst *model.Instance, cfg Config) (*Selection, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if inst.NumItems() == 0 {
		return nil, ErrEmptyInstance
	}
	tg := NewTargets(inst, cfg)
	sel := &Selection{Indices: make([][]int, inst.NumItems())}
	for i, it := range inst.Items {
		best, err := exhaustiveItem(inst, tg, cfg, i, it)
		if err != nil {
			return nil, err
		}
		sel.Indices[i] = best
	}
	sel.Objective = ObjectiveCompareSets(inst, tg, cfg, sel.Reviews(inst))
	return sel, nil
}

// ErrTooManyReviews is returned when an item exceeds MaxExhaustiveReviews.
var ErrTooManyReviews = errTooMany{}

type errTooMany struct{}

func (errTooMany) Error() string {
	return "core: item has too many reviews for exhaustive search"
}

func exhaustiveItem(inst *model.Instance, tg *Targets, cfg Config, item int, it *model.Item) ([]int, error) {
	n := len(it.Reviews)
	if n == 0 {
		return nil, nil
	}
	if n > MaxExhaustiveReviews {
		return nil, ErrTooManyReviews
	}
	var best []int
	bestObj := math.Inf(1)
	for mask := uint32(1); mask < 1<<n; mask++ {
		if bits.OnesCount32(mask) > cfg.M {
			continue
		}
		idx := maskIndices(mask)
		obj := ItemObjective(inst, tg, cfg, item, gather(it.Reviews, idx))
		if obj < bestObj {
			bestObj = obj
			best = idx
		}
	}
	return best, nil
}

func maskIndices(mask uint32) []int {
	idx := make([]int, 0, bits.OnesCount32(mask))
	for j := 0; mask != 0; j++ {
		if mask&1 == 1 {
			idx = append(idx, j)
		}
		mask >>= 1
	}
	return idx
}
