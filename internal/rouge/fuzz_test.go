package rouge

import (
	"strings"
	"testing"
	"unicode"
)

func FuzzTokenize(f *testing.F) {
	f.Add("The battery, lasts ALL day!")
	f.Add("")
	f.Add("日本語 mixed ascii 123")
	f.Add("a.b,c;d:e")
	f.Fuzz(func(t *testing.T, text string) {
		tokens := Tokenize(text)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
			// Lowercasing is idempotent (some symbols like U+03D4 have no
			// lowercase mapping and legitimately survive as-is).
			if low := strings.ToLower(tok); low != tok {
				t.Fatalf("token %q not in lowercase normal form (%q)", tok, low)
			}
		}
	})
}

func FuzzCompare(f *testing.F) {
	f.Add("the cat sat", "the cat ate")
	f.Add("", "x")
	f.Add("a a a", "a")
	f.Fuzz(func(t *testing.T, a, b string) {
		r := Compare(a, b)
		rr := Compare(b, a)
		for _, s := range []Score{r.R1, r.R2, r.RL, rr.R1, rr.R2, rr.RL} {
			if s.F1 < 0 || s.F1 > 1+1e-9 || s.Precision < 0 || s.Precision > 1+1e-9 || s.Recall < 0 || s.Recall > 1+1e-9 {
				t.Fatalf("score out of range: %+v", s)
			}
		}
		// F1 is symmetric under swapping candidate and reference.
		if d := r.R1.F1 - rr.R1.F1; d > 1e-9 || d < -1e-9 {
			t.Fatalf("R1 F1 asymmetric: %v vs %v", r.R1.F1, rr.R1.F1)
		}
	})
}
