// Package rouge implements the ROUGE text-similarity metrics (Lin & Hovy
// 2003) used by the paper's review-alignment evaluation (§4.1.3): ROUGE-1
// (unigrams), ROUGE-2 (bigrams) and ROUGE-L (longest common subsequence),
// each reported as precision/recall/F1. Scores range in [0, 1]; the paper
// prints them ×100.
package rouge

import (
	"strings"
	"unicode"
)

// Score holds precision, recall and their harmonic mean for one metric.
type Score struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Result bundles the three ROUGE variants for a candidate/reference pair.
type Result struct {
	R1 Score // unigram overlap
	R2 Score // bigram overlap
	RL Score // longest common subsequence
}

// Tokenize lowercases the text and splits it into alphanumeric word tokens;
// punctuation separates tokens and is dropped.
func Tokenize(text string) []string {
	return strings.FieldsFunc(strings.ToLower(text), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsDigit(r)
	})
}

// Compare scores candidate against reference text.
func Compare(candidate, reference string) Result {
	return CompareTokens(Tokenize(candidate), Tokenize(reference))
}

// CompareTokens scores pre-tokenized candidate and reference sequences.
func CompareTokens(cand, ref []string) Result {
	return Result{
		R1: ngramScore(cand, ref, 1),
		R2: ngramScore(cand, ref, 2),
		RL: lcsScore(cand, ref),
	}
}

// ngramScore computes clipped n-gram overlap precision/recall/F1.
func ngramScore(cand, ref []string, n int) Score {
	cgrams := ngramCounts(cand, n)
	rgrams := ngramCounts(ref, n)
	ctotal := len(cand) - n + 1
	rtotal := len(ref) - n + 1
	if ctotal <= 0 || rtotal <= 0 {
		return Score{}
	}
	match := 0
	for g, c := range cgrams {
		if r, ok := rgrams[g]; ok {
			if r < c {
				match += r
			} else {
				match += c
			}
		}
	}
	return f1(float64(match)/float64(ctotal), float64(match)/float64(rtotal))
}

func ngramCounts(tokens []string, n int) map[string]int {
	counts := map[string]int{}
	for i := 0; i+n <= len(tokens); i++ {
		counts[strings.Join(tokens[i:i+n], "\x1f")]++
	}
	return counts
}

// lcsScore computes ROUGE-L from the longest common subsequence length.
func lcsScore(cand, ref []string) Score {
	if len(cand) == 0 || len(ref) == 0 {
		return Score{}
	}
	l := lcsLength(cand, ref)
	return f1(float64(l)/float64(len(cand)), float64(l)/float64(len(ref)))
}

// lcsLength computes |LCS(a, b)| with a two-row dynamic program.
func lcsLength(a, b []string) int {
	if len(b) < len(a) {
		a, b = b, a // keep the row buffer on the shorter sequence
	}
	prev := make([]int, len(a)+1)
	cur := make([]int, len(a)+1)
	for i := 1; i <= len(b); i++ {
		for j := 1; j <= len(a); j++ {
			switch {
			case b[i-1] == a[j-1]:
				cur[j] = prev[j-1] + 1
			case prev[j] >= cur[j-1]:
				cur[j] = prev[j]
			default:
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(a)]
}

func f1(p, r float64) Score {
	s := Score{Precision: p, Recall: r}
	if p+r > 0 {
		s.F1 = 2 * p * r / (p + r)
	}
	return s
}

// Average returns the componentwise mean of results; an empty slice yields
// the zero Result.
func Average(results []Result) Result {
	if len(results) == 0 {
		return Result{}
	}
	var sum Result
	for _, r := range results {
		sum.R1 = addScore(sum.R1, r.R1)
		sum.R2 = addScore(sum.R2, r.R2)
		sum.RL = addScore(sum.RL, r.RL)
	}
	n := float64(len(results))
	sum.R1 = divScore(sum.R1, n)
	sum.R2 = divScore(sum.R2, n)
	sum.RL = divScore(sum.RL, n)
	return sum
}

func addScore(a, b Score) Score {
	return Score{a.Precision + b.Precision, a.Recall + b.Recall, a.F1 + b.F1}
}

func divScore(a Score, n float64) Score {
	return Score{a.Precision / n, a.Recall / n, a.F1 / n}
}
