package rouge

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func close(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestTokenize(t *testing.T) {
	got := Tokenize("The charger, works GREAT!  5/5 stars...")
	want := []string{"the", "charger", "works", "great", "5", "5", "stars"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v", got)
	}
	if toks := Tokenize(""); len(toks) != 0 {
		t.Errorf("empty Tokenize = %v", toks)
	}
}

func TestIdenticalTextsScoreOne(t *testing.T) {
	r := Compare("the battery lasts all day", "the battery lasts all day")
	for name, s := range map[string]Score{"R1": r.R1, "R2": r.R2, "RL": r.RL} {
		if !close(s.F1, 1) || !close(s.Precision, 1) || !close(s.Recall, 1) {
			t.Errorf("%s = %+v, want all 1", name, s)
		}
	}
}

func TestDisjointTextsScoreZero(t *testing.T) {
	r := Compare("alpha beta gamma", "delta epsilon zeta")
	if r.R1.F1 != 0 || r.R2.F1 != 0 || r.RL.F1 != 0 {
		t.Errorf("disjoint = %+v", r)
	}
}

func TestRouge1HandComputed(t *testing.T) {
	// cand: "the cat sat" (3 unigrams), ref: "the cat ate fish" (4).
	// Overlap = {the, cat} = 2. P = 2/3, R = 2/4, F1 = 2*PR/(P+R) = 4/7.
	r := Compare("the cat sat", "the cat ate fish")
	if !close(r.R1.Precision, 2.0/3) || !close(r.R1.Recall, 0.5) || !close(r.R1.F1, 4.0/7) {
		t.Errorf("R1 = %+v", r.R1)
	}
}

func TestRouge2HandComputed(t *testing.T) {
	// cand bigrams: {the cat, cat sat}; ref bigrams: {the cat, cat ate,
	// ate fish}. Overlap = 1. P = 1/2, R = 1/3, F1 = 2/5.
	r := Compare("the cat sat", "the cat ate fish")
	if !close(r.R2.Precision, 0.5) || !close(r.R2.Recall, 1.0/3) || !close(r.R2.F1, 0.4) {
		t.Errorf("R2 = %+v", r.R2)
	}
}

func TestRougeLHandComputed(t *testing.T) {
	// LCS("the cat sat on mat", "the dog sat on the mat") = "the sat on
	// mat" → 4. P = 4/5, R = 4/6, F1 = 2*(4/5)(2/3)/(4/5+2/3) = 8/11.
	r := Compare("the cat sat on mat", "the dog sat on the mat")
	if !close(r.RL.Precision, 0.8) || !close(r.RL.Recall, 2.0/3) || !close(r.RL.F1, 8.0/11) {
		t.Errorf("RL = %+v", r.RL)
	}
}

func TestClippedCounts(t *testing.T) {
	// Candidate repeats "good" 3×, reference has it once: clipped match=1.
	r := Compare("good good good", "good product")
	if !close(r.R1.Precision, 1.0/3) || !close(r.R1.Recall, 0.5) {
		t.Errorf("R1 = %+v", r.R1)
	}
}

func TestShortTextsBigramEdge(t *testing.T) {
	// A single-token text has no bigrams; R2 must be zero, not NaN.
	r := Compare("battery", "battery")
	if r.R2.F1 != 0 {
		t.Errorf("R2 = %+v", r.R2)
	}
	if !close(r.R1.F1, 1) {
		t.Errorf("R1 = %+v", r.R1)
	}
}

func TestEmptyTexts(t *testing.T) {
	r := Compare("", "something here")
	if r.R1.F1 != 0 || r.RL.F1 != 0 {
		t.Errorf("empty candidate = %+v", r)
	}
	r = Compare("something", "")
	if r.R1.F1 != 0 || r.RL.F1 != 0 {
		t.Errorf("empty reference = %+v", r)
	}
}

func TestLCSLength(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{[]string{"a", "b", "c"}, []string{"a", "c"}, 2},
		{[]string{"a", "b", "c"}, []string{"c", "b", "a"}, 1},
		{[]string{"x"}, []string{"y"}, 0},
		{nil, []string{"y"}, 0},
		{[]string{"a", "b", "a", "b"}, []string{"b", "a", "b", "a"}, 3},
	}
	for _, c := range cases {
		if got := lcsLength(c.a, c.b); got != c.want {
			t.Errorf("lcs(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := lcsLength(c.b, c.a); got != c.want {
			t.Errorf("lcs not symmetric on (%v, %v)", c.a, c.b)
		}
	}
}

func TestAverage(t *testing.T) {
	a := Result{R1: Score{F1: 0.2}, RL: Score{F1: 0.4}}
	b := Result{R1: Score{F1: 0.4}, RL: Score{F1: 0.8}}
	avg := Average([]Result{a, b})
	if !close(avg.R1.F1, 0.3) || !close(avg.RL.F1, 0.6) {
		t.Errorf("avg = %+v", avg)
	}
	if z := Average(nil); z.R1.F1 != 0 {
		t.Errorf("empty avg = %+v", z)
	}
}

// Properties: all scores in [0,1]; F1 between min and max of P and R;
// F1 symmetric in the two texts.
func TestRougeProperties(t *testing.T) {
	words := []string{"battery", "lens", "great", "bad", "price", "the", "a"}
	f := func(ai, bi [6]uint8) bool {
		var a, b []string
		for i := 0; i < 6; i++ {
			a = append(a, words[int(ai[i])%len(words)])
			b = append(b, words[int(bi[i])%len(words)])
		}
		r := CompareTokens(a, b)
		rr := CompareTokens(b, a)
		for _, s := range []Score{r.R1, r.R2, r.RL} {
			if s.F1 < 0 || s.F1 > 1+1e-12 || s.Precision < 0 || s.Precision > 1+1e-12 {
				return false
			}
		}
		// Swapping texts swaps P and R but preserves F1.
		return close(r.R1.F1, rr.R1.F1) && close(r.R2.F1, rr.R2.F1) && close(r.RL.F1, rr.RL.F1) &&
			close(r.R1.Precision, rr.R1.Recall)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// ROUGE-L F1 must never exceed ROUGE-1 F1: the LCS is an order-constrained
// matching while unigram overlap is unconstrained.
func TestRougeLBoundedByRouge1(t *testing.T) {
	words := []string{"x", "y", "z", "w"}
	f := func(ai, bi [8]uint8) bool {
		var a, b []string
		for i := range ai {
			a = append(a, words[int(ai[i])%len(words)])
			b = append(b, words[int(bi[i])%len(words)])
		}
		r := CompareTokens(a, b)
		return r.RL.F1 <= r.R1.F1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
