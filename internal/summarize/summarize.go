// Package summarize provides extractive summarization of selected review
// sets — the follow-on the paper sketches in §4.6.1 ("this can be further
// addressed using text summarization methods") for when even m selected
// reviews are too much to read. It is a TextRank-style centrality ranker:
// sentences form a graph weighted by unigram-overlap similarity, a power
// iteration scores centrality, and the top sentences are emitted in their
// original order with near-duplicates suppressed.
package summarize

import (
	"sort"
	"strings"

	"comparesets/internal/model"
	"comparesets/internal/rouge"
)

// Options tunes the summarizer.
type Options struct {
	// MaxSentences caps the summary length (default 3).
	MaxSentences int
	// Damping is the PageRank damping factor (default 0.85).
	Damping float64
	// Iterations bounds the power iteration (default 30).
	Iterations int
	// DedupeThreshold drops a candidate whose ROUGE-1 F1 similarity to an
	// already-kept sentence is at or above it (default 0.6).
	DedupeThreshold float64
}

func (o Options) withDefaults() Options {
	if o.MaxSentences == 0 {
		o.MaxSentences = 3
	}
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iterations == 0 {
		o.Iterations = 30
	}
	if o.DedupeThreshold == 0 {
		o.DedupeThreshold = 0.6
	}
	return o
}

// Reviews summarizes a set of reviews (typically one item's selected set
// Sᵢ) into at most MaxSentences sentences.
func Reviews(reviews []*model.Review, opts Options) []string {
	var texts []string
	for _, r := range reviews {
		texts = append(texts, r.Text)
	}
	return Texts(texts, opts)
}

// Texts summarizes raw texts.
func Texts(texts []string, opts Options) []string {
	opts = opts.withDefaults()
	type sentence struct {
		text   string
		tokens []string
		order  int
	}
	var sentences []sentence
	for _, t := range texts {
		for _, raw := range strings.Split(t, ".") {
			s := strings.TrimSpace(raw)
			toks := rouge.Tokenize(s)
			if len(toks) < 3 {
				continue // fragments carry no summary value
			}
			sentences = append(sentences, sentence{text: s, tokens: toks, order: len(sentences)})
		}
	}
	n := len(sentences)
	if n == 0 {
		return nil
	}
	if n <= opts.MaxSentences {
		out := make([]string, n)
		for i, s := range sentences {
			out[i] = s.text
		}
		return out
	}

	// Similarity graph (ROUGE-1 F1 between sentences).
	sim := make([][]float64, n)
	for i := range sim {
		sim[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := rouge.CompareTokens(sentences[i].tokens, sentences[j].tokens).R1.F1
			sim[i][j], sim[j][i] = s, s
		}
	}
	// Power iteration.
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1 / float64(n)
	}
	outSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			outSum[i] += sim[i][j]
		}
	}
	for it := 0; it < opts.Iterations; it++ {
		for i := 0; i < n; i++ {
			var acc float64
			for j := 0; j < n; j++ {
				if i != j && outSum[j] > 0 {
					acc += sim[j][i] / outSum[j] * rank[j]
				}
			}
			next[i] = (1-opts.Damping)/float64(n) + opts.Damping*acc
		}
		rank, next = next, rank
	}

	// Rank, dedupe, restore document order.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rank[order[a]] != rank[order[b]] {
			return rank[order[a]] > rank[order[b]]
		}
		return order[a] < order[b]
	})
	var kept []int
	for _, cand := range order {
		if len(kept) == opts.MaxSentences {
			break
		}
		dup := false
		for _, k := range kept {
			if rouge.CompareTokens(sentences[cand].tokens, sentences[k].tokens).R1.F1 >= opts.DedupeThreshold {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, cand)
		}
	}
	sort.Ints(kept)
	out := make([]string, len(kept))
	for i, k := range kept {
		out[i] = sentences[k].text
	}
	return out
}
