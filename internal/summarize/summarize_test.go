package summarize

import (
	"strings"
	"testing"

	"comparesets/internal/model"
)

func TestTextsPicksCentralSentences(t *testing.T) {
	texts := []string{
		"the battery lasts all day. the battery life is excellent. great battery endurance overall.",
		"shipping box was dented.",
		"battery performance is excellent for the price.",
	}
	got := Texts(texts, Options{MaxSentences: 2})
	if len(got) != 2 {
		t.Fatalf("got %d sentences: %v", len(got), got)
	}
	// The battery theme dominates the similarity graph; the outlier
	// shipping sentence must not be chosen.
	for _, s := range got {
		if strings.Contains(s, "shipping") {
			t.Errorf("outlier sentence selected: %q", s)
		}
	}
}

func TestTextsDeduplicates(t *testing.T) {
	texts := []string{
		"the battery lasts all day long",
		"the battery lasts all day long",
		"the battery lasts all day long",
		"the screen is crisp and bright always",
	}
	got := Texts(texts, Options{MaxSentences: 3})
	for i := 0; i < len(got); i++ {
		for j := i + 1; j < len(got); j++ {
			if got[i] == got[j] {
				t.Errorf("duplicate sentence kept: %q", got[i])
			}
		}
	}
}

func TestTextsShortInputPassThrough(t *testing.T) {
	got := Texts([]string{"the battery lasts all day"}, Options{MaxSentences: 3})
	if len(got) != 1 || got[0] != "the battery lasts all day" {
		t.Errorf("got %v", got)
	}
}

func TestTextsEmpty(t *testing.T) {
	if got := Texts(nil, Options{}); got != nil {
		t.Errorf("got %v", got)
	}
	if got := Texts([]string{"", "a b"}, Options{}); got != nil {
		t.Errorf("fragments kept: %v", got)
	}
}

func TestTextsPreservesDocumentOrder(t *testing.T) {
	texts := []string{
		"alpha beta gamma delta. alpha beta gamma extra. unrelated words entirely here. alpha beta gamma closing.",
	}
	got := Texts(texts, Options{MaxSentences: 2, DedupeThreshold: 0.99})
	for i := 1; i < len(got); i++ {
		// Output follows input order; each summary sentence must appear
		// after the previous one in the source.
		prev := strings.Index(texts[0], got[i-1])
		cur := strings.Index(texts[0], got[i])
		if prev < 0 || cur < 0 || cur < prev {
			t.Errorf("order not preserved: %v", got)
		}
	}
}

func TestReviewsWrapper(t *testing.T) {
	reviews := []*model.Review{
		{Text: "the battery lasts all day. the battery is excellent."},
		{Text: "battery life is excellent and reliable."},
	}
	got := Reviews(reviews, Options{MaxSentences: 1})
	if len(got) != 1 {
		t.Fatalf("got %v", got)
	}
	if !strings.Contains(got[0], "battery") {
		t.Errorf("summary %q misses the theme", got[0])
	}
}

func TestMaxSentencesRespected(t *testing.T) {
	var texts []string
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}
	for i := 0; i < 10; i++ {
		texts = append(texts, words[i%6]+" "+words[(i+1)%6]+" "+words[(i+2)%6]+" tail"+string(rune('a'+i)))
	}
	got := Texts(texts, Options{MaxSentences: 4})
	if len(got) > 4 {
		t.Errorf("got %d sentences", len(got))
	}
}
