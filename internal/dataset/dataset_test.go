package dataset

import (
	"bytes"
	"strings"
	"testing"

	"comparesets/internal/datagen"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

func tinyCorpus() *model.Corpus {
	voc := model.NewVocabulary([]string{"a", "b"})
	c := model.NewCorpus("Test", voc)
	c.AddItem(&model.Item{ID: "p1", AlsoBought: []string{"p2", "p3", "ext-1"},
		Reviews: []*model.Review{
			{ID: "r1", Reviewer: "u1"}, {ID: "r2", Reviewer: "u2"},
		}})
	c.AddItem(&model.Item{ID: "p2", AlsoBought: []string{"p1"},
		Reviews: []*model.Review{{ID: "r3", Reviewer: "u1"}}})
	c.AddItem(&model.Item{ID: "p3", AlsoBought: []string{"ext-2", "ext-3"},
		Reviews: []*model.Review{{ID: "r4", Reviewer: "u3"}}})
	return c
}

func TestComputeStats(t *testing.T) {
	s := Compute(tinyCorpus())
	if s.Products != 3 || s.Reviews != 4 || s.Reviewers != 3 {
		t.Errorf("stats = %+v", s)
	}
	// Only p1 has ≥2 valid comparison products.
	if s.TargetProducts != 1 {
		t.Errorf("TargetProducts = %d", s.TargetProducts)
	}
	if s.AvgComparisonProduct != 2 {
		t.Errorf("AvgComparisonProduct = %v", s.AvgComparisonProduct)
	}
	if s.AvgReviewPerProduct != 4.0/3 {
		t.Errorf("AvgReviewPerProduct = %v", s.AvgReviewPerProduct)
	}
}

func TestComputeEmptyCorpus(t *testing.T) {
	c := model.NewCorpus("Empty", model.NewVocabulary(nil))
	s := Compute(c)
	if s.Products != 0 || s.TargetProducts != 0 || s.AvgReviewPerProduct != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestTargetIDs(t *testing.T) {
	ids := TargetIDs(tinyCorpus())
	if len(ids) != 1 || ids[0] != "p1" {
		t.Errorf("targets = %v", ids)
	}
}

func TestInstances(t *testing.T) {
	insts, err := Instances(tinyCorpus(), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 1 {
		t.Fatalf("instances = %d", len(insts))
	}
	if insts[0].Target().ID != "p1" || insts[0].NumItems() != 3 {
		t.Errorf("instance = %s with %d items", insts[0].Target().ID, insts[0].NumItems())
	}
}

func TestInstancesTruncation(t *testing.T) {
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Toy, Products: 30, Reviewers: 50,
		MeanReviews: 6, MeanAlsoBought: 6, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	insts, err := Instances(c, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) > 10 {
		t.Errorf("instances = %d, want ≤ 10", len(insts))
	}
	for _, inst := range insts {
		if inst.NumItems() > 5 { // target + 4
			t.Errorf("instance %s has %d items", inst.Target().ID, inst.NumItems())
		}
	}
}

func TestStatsOnGeneratedCorpus(t *testing.T) {
	c, err := datagen.Generate(datagen.Config{
		Category: lexicon.Clothing, Products: 50, Reviewers: 80,
		MeanReviews: 8, MeanAlsoBought: 6, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := Compute(c)
	if s.TargetProducts == 0 || s.TargetProducts > s.Products {
		t.Errorf("TargetProducts = %d of %d", s.TargetProducts, s.Products)
	}
	if s.AvgComparisonProduct <= 0 {
		t.Errorf("AvgComparisonProduct = %v", s.AvgComparisonProduct)
	}
	if s.Reviewers == 0 || s.Reviewers > 80 {
		t.Errorf("Reviewers = %d", s.Reviewers)
	}
}

func TestWriteTable(t *testing.T) {
	var buf bytes.Buffer
	WriteTable(&buf, []Stats{Compute(tinyCorpus())})
	out := buf.String()
	for _, want := range []string{"#Product", "#Reviewer", "#Review", "#Target Product", "Avg. #Comparison Product", "Avg. #Review per Product", "Test"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
