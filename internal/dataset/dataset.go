// Package dataset computes corpus-level statistics (Table 2) and enumerates
// problem instances: every target product induces an independent instance
// consisting of itself plus its "also bought" comparison products that exist
// in the corpus (§4.1.1).
package dataset

import (
	"fmt"
	"io"
	"sort"

	"comparesets/internal/model"
)

// MinComparison is the number of in-corpus comparison products a product
// needs to qualify as a target (an instance with fewer than two items has
// nothing to compare).
const MinComparison = 2

// Stats mirrors the rows of Table 2.
type Stats struct {
	Category             string
	Products             int
	Reviewers            int
	Reviews              int
	TargetProducts       int
	AvgComparisonProduct float64
	AvgReviewPerProduct  float64
}

// Compute derives the Table 2 statistics of a corpus.
func Compute(c *model.Corpus) Stats {
	s := Stats{Category: c.Category, Products: len(c.Items)}
	reviewers := map[string]bool{}
	var comparisonSum float64
	for _, id := range c.ItemIDs() {
		it := c.Items[id]
		s.Reviews += len(it.Reviews)
		for _, r := range it.Reviews {
			reviewers[r.Reviewer] = true
		}
		valid := validComparisons(c, it)
		if valid >= MinComparison {
			s.TargetProducts++
			comparisonSum += float64(valid)
		}
	}
	s.Reviewers = len(reviewers)
	if s.TargetProducts > 0 {
		s.AvgComparisonProduct = comparisonSum / float64(s.TargetProducts)
	}
	if s.Products > 0 {
		s.AvgReviewPerProduct = float64(s.Reviews) / float64(s.Products)
	}
	return s
}

func validComparisons(c *model.Corpus, it *model.Item) int {
	n := 0
	for _, ab := range it.AlsoBought {
		if _, ok := c.Items[ab]; ok && ab != it.ID {
			n++
		}
	}
	return n
}

// TargetIDs returns the IDs of all qualifying target products, sorted.
func TargetIDs(c *model.Corpus) []string {
	var out []string
	for _, id := range c.ItemIDs() {
		if validComparisons(c, c.Items[id]) >= MinComparison {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Instances builds one instance per target product. maxComparative > 0
// truncates each comparison list; maxInstances > 0 truncates the number of
// instances (experiments subsample for speed).
func Instances(c *model.Corpus, maxComparative, maxInstances int) ([]*model.Instance, error) {
	ids := TargetIDs(c)
	if maxInstances > 0 && len(ids) > maxInstances {
		ids = ids[:maxInstances]
	}
	out := make([]*model.Instance, 0, len(ids))
	for _, id := range ids {
		inst, err := c.NewInstance(id, maxComparative)
		if err != nil {
			return nil, fmt.Errorf("dataset: instance %s: %w", id, err)
		}
		if err := inst.Validate(); err != nil {
			return nil, fmt.Errorf("dataset: instance %s: %w", id, err)
		}
		out = append(out, inst)
	}
	return out, nil
}

// WriteTable renders stats rows in the layout of Table 2.
func WriteTable(w io.Writer, rows []Stats) {
	fmt.Fprintf(w, "%-26s", "")
	for _, r := range rows {
		fmt.Fprintf(w, "%12s", r.Category)
	}
	fmt.Fprintln(w)
	line := func(label string, f func(Stats) string) {
		fmt.Fprintf(w, "%-26s", label)
		for _, r := range rows {
			fmt.Fprintf(w, "%12s", f(r))
		}
		fmt.Fprintln(w)
	}
	line("#Product", func(s Stats) string { return fmt.Sprintf("%d", s.Products) })
	line("#Reviewer", func(s Stats) string { return fmt.Sprintf("%d", s.Reviewers) })
	line("#Review", func(s Stats) string { return fmt.Sprintf("%d", s.Reviews) })
	line("#Target Product", func(s Stats) string { return fmt.Sprintf("%d", s.TargetProducts) })
	line("Avg. #Comparison Product", func(s Stats) string { return fmt.Sprintf("%.2f", s.AvgComparisonProduct) })
	line("Avg. #Review per Product", func(s Stats) string { return fmt.Sprintf("%.2f", s.AvgReviewPerProduct) })
}
