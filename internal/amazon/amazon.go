// Package amazon loads corpora from the Amazon Product Review Dataset
// format of He & McAuley (the dataset the paper evaluates on, §4.1.1):
// newline-delimited JSON reviews
//
//	{"reviewerID": "...", "asin": "...", "reviewText": "...", "overall": 5.0, ...}
//
// and product metadata
//
//	{"asin": "...", "title": "...", "price": 9.99,
//	 "related": {"also_bought": ["...", ...]}, ...}
//
// The dataset itself is not redistributable, so this repository ships no
// copy — but anyone holding the files can convert them into a
// model.Corpus, annotate reviews with the lexicon extractor, and run every
// algorithm and experiment on the real data. Loose metadata files that use
// Python-repr quoting are NOT handled; files must be valid JSON lines (the
// "strict" variants of the dataset distribution).
package amazon

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"comparesets/internal/aspectex"
	"comparesets/internal/lexicon"
	"comparesets/internal/model"
)

// reviewJSON is one line of the review file.
type reviewJSON struct {
	ReviewerID string  `json:"reviewerID"`
	ASIN       string  `json:"asin"`
	ReviewText string  `json:"reviewText"`
	Summary    string  `json:"summary"`
	Overall    float64 `json:"overall"`
}

// metaJSON is one line of the metadata file.
type metaJSON struct {
	ASIN    string  `json:"asin"`
	Title   string  `json:"title"`
	Price   float64 `json:"price"`
	Related struct {
		AlsoBought []string `json:"also_bought"`
	} `json:"related"`
}

// Options controls loading.
type Options struct {
	// Category names the corpus and selects the extraction lexicon;
	// must be one of the built-in categories.
	Category string
	// MaxProducts truncates the product set (0 = all).
	MaxProducts int
	// MinReviews drops products with fewer reviews (default 1).
	MinReviews int
	// Annotate runs the lexicon extractor over every review text to
	// produce aspect-opinion mentions (on by default via Load; set up the
	// corpus yourself with LoadRaw to skip).
	Annotate bool
}

// Load reads reviews and metadata streams in the McAuley format and builds
// an annotated corpus.
func Load(reviews, meta io.Reader, opts Options) (*model.Corpus, error) {
	cat, ok := lexicon.CategoryByName(opts.Category)
	if !ok {
		return nil, fmt.Errorf("amazon: unknown category %q", opts.Category)
	}
	if opts.MinReviews == 0 {
		opts.MinReviews = 1
	}
	corpus := model.NewCorpus(cat.Name, model.NewVocabulary(cat.AspectNames()))

	// Pass 1: metadata defines the product set.
	scanner := bufio.NewScanner(meta)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<22)
	line := 0
	for scanner.Scan() {
		line++
		raw := bytes.TrimSpace(scanner.Bytes())
		if len(raw) == 0 {
			continue
		}
		var m metaJSON
		if err := json.Unmarshal(raw, &m); err != nil {
			return nil, fmt.Errorf("amazon: metadata line %d: %w", line, err)
		}
		if m.ASIN == "" {
			return nil, fmt.Errorf("amazon: metadata line %d: missing asin", line)
		}
		if opts.MaxProducts > 0 && len(corpus.Items) >= opts.MaxProducts {
			continue
		}
		corpus.AddItem(&model.Item{
			ID:         m.ASIN,
			Title:      m.Title,
			Category:   cat.Name,
			Price:      m.Price,
			AlsoBought: m.Related.AlsoBought,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("amazon: reading metadata: %w", err)
	}
	if len(corpus.Items) == 0 {
		return nil, fmt.Errorf("amazon: metadata stream contained no products")
	}

	// Pass 2: attach reviews to known products.
	scanner = bufio.NewScanner(reviews)
	scanner.Buffer(make([]byte, 0, 1<<20), 1<<22)
	line = 0
	seq := 0
	for scanner.Scan() {
		line++
		raw := bytes.TrimSpace(scanner.Bytes())
		if len(raw) == 0 {
			continue
		}
		var r reviewJSON
		if err := json.Unmarshal(raw, &r); err != nil {
			return nil, fmt.Errorf("amazon: review line %d: %w", line, err)
		}
		item, ok := corpus.Items[r.ASIN]
		if !ok {
			continue // review for a product outside the metadata crawl
		}
		seq++
		text := r.ReviewText
		// Real reviews carry a short title ("summary"); keep it as the
		// opening sentence so its aspect words participate in extraction
		// and ROUGE, as they do for a human reader.
		if r.Summary != "" {
			text = r.Summary + ". " + text
		}
		item.Reviews = append(item.Reviews, &model.Review{
			ID:       fmt.Sprintf("%s-%d", r.ASIN, seq),
			ItemID:   r.ASIN,
			Reviewer: r.ReviewerID,
			Rating:   clampRating(r.Overall),
			Text:     text,
		})
	}
	if err := scanner.Err(); err != nil {
		return nil, fmt.Errorf("amazon: reading reviews: %w", err)
	}

	// Drop products below the review floor.
	for id, it := range corpus.Items {
		if len(it.Reviews) < opts.MinReviews {
			delete(corpus.Items, id)
		}
	}

	if opts.Annotate {
		aspectex.New(cat).Annotate(corpus)
	}
	return corpus, nil
}

// LoadFiles opens the two files and calls Load with annotation enabled.
// Files ending in .gz are transparently decompressed (the dataset ships
// gzipped).
func LoadFiles(reviewPath, metaPath string, opts Options) (*model.Corpus, error) {
	rf, err := openMaybeGzip(reviewPath)
	if err != nil {
		return nil, err
	}
	defer rf.Close()
	mf, err := openMaybeGzip(metaPath)
	if err != nil {
		return nil, err
	}
	defer mf.Close()
	opts.Annotate = true
	return Load(rf, mf, opts)
}

// openMaybeGzip opens path, wrapping it in a gzip reader when the name ends
// in .gz. Close closes both layers.
func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if !strings.HasSuffix(path, ".gz") {
		return f, nil
	}
	zr, err := gzip.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("amazon: opening gzip %s: %w", path, err)
	}
	return &gzipReadCloser{zr: zr, f: f}, nil
}

type gzipReadCloser struct {
	zr *gzip.Reader
	f  *os.File
}

func (g *gzipReadCloser) Read(p []byte) (int, error) { return g.zr.Read(p) }

func (g *gzipReadCloser) Close() error {
	zerr := g.zr.Close()
	ferr := g.f.Close()
	if zerr != nil {
		return zerr
	}
	return ferr
}

func clampRating(overall float64) int {
	r := int(overall)
	if r < 1 {
		r = 1
	}
	if r > 5 {
		r = 5
	}
	return r
}
