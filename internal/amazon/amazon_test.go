package amazon

import (
	"compress/gzip"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"comparesets/internal/core"
	"comparesets/internal/model"
)

const metaFixture = `{"asin":"B001","title":"Acme Car Charger","price":12.99,"related":{"also_bought":["B002","B003"]}}
{"asin":"B002","title":"Acme USB Cable","price":5.49,"related":{"also_bought":["B001"]}}
{"asin":"B003","title":"Acme Power Bank","price":25.00,"related":{"also_bought":[]}}
`

const reviewFixture = `{"reviewerID":"U1","asin":"B001","reviewText":"the charger works great in the car. the cable feels sturdy and well made.","summary":"excellent battery companion","overall":5.0}
{"reviewerID":"U2","asin":"B001","reviewText":"the charger stopped working after a month, disappointing.","overall":2.0}
{"reviewerID":"U1","asin":"B002","reviewText":"the cable frayed within weeks, very cheap.","overall":1.0}
{"reviewerID":"U3","asin":"B999","reviewText":"review for unknown product.","overall":4.0}

{"reviewerID":"U4","asin":"B003","reviewText":"the battery lasts all day, great endurance.","overall":5.0}
`

func TestLoadBuildsAnnotatedCorpus(t *testing.T) {
	c, err := Load(strings.NewReader(reviewFixture), strings.NewReader(metaFixture),
		Options{Category: "Cellphone", Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 3 {
		t.Fatalf("items = %d", len(c.Items))
	}
	b1 := c.Items["B001"]
	if b1.Title != "Acme Car Charger" || b1.Price != 12.99 {
		t.Errorf("metadata = %+v", b1)
	}
	if len(b1.AlsoBought) != 2 {
		t.Errorf("also bought = %v", b1.AlsoBought)
	}
	if len(b1.Reviews) != 2 {
		t.Fatalf("B001 reviews = %d", len(b1.Reviews))
	}
	if b1.Reviews[0].Rating != 5 || b1.Reviews[1].Rating != 2 {
		t.Errorf("ratings = %d %d", b1.Reviews[0].Rating, b1.Reviews[1].Rating)
	}
	// Annotation: first review mentions charger(+) and cable(+), plus
	// battery(+) from the summary title folded into the text.
	if !strings.HasPrefix(b1.Reviews[0].Text, "excellent battery companion. ") {
		t.Errorf("summary not folded into text: %q", b1.Reviews[0].Text)
	}
	ms := b1.Reviews[0].Mentions
	if len(ms) != 3 {
		t.Fatalf("mentions = %+v", ms)
	}
	for _, m := range ms {
		if m.Polarity != model.Positive {
			t.Errorf("mention %+v not positive", m)
		}
	}
	// Review for the unknown product B999 is skipped.
	for _, id := range c.ItemIDs() {
		if id == "B999" {
			t.Error("unknown product appeared")
		}
	}
}

func TestLoadFeedsSelectionPipeline(t *testing.T) {
	c, err := Load(strings.NewReader(reviewFixture), strings.NewReader(metaFixture),
		Options{Category: "Cellphone", Annotate: true})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := c.NewInstance("B001", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	sel, err := (core.CompaReSetSPlus{}).Select(inst, core.Config{M: 2, Lambda: 1, Mu: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Indices) != inst.NumItems() {
		t.Errorf("indices = %d", len(sel.Indices))
	}
}

func TestLoadMinReviewsFloor(t *testing.T) {
	c, err := Load(strings.NewReader(reviewFixture), strings.NewReader(metaFixture),
		Options{Category: "Cellphone", MinReviews: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Items["B001"]; !ok {
		t.Error("B001 dropped despite 2 reviews")
	}
	if _, ok := c.Items["B002"]; ok {
		t.Error("B002 kept with 1 review under MinReviews=2")
	}
}

func TestLoadMaxProducts(t *testing.T) {
	c, err := Load(strings.NewReader(reviewFixture), strings.NewReader(metaFixture),
		Options{Category: "Cellphone", MaxProducts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Items) != 1 {
		t.Errorf("items = %d", len(c.Items))
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(strings.NewReader(""), strings.NewReader(metaFixture), Options{Category: "Books"}); err == nil {
		t.Error("unknown category accepted")
	}
	if _, err := Load(strings.NewReader(""), strings.NewReader(""), Options{Category: "Toy"}); err == nil {
		t.Error("empty metadata accepted")
	}
	if _, err := Load(strings.NewReader(reviewFixture), strings.NewReader("{bad json"), Options{Category: "Toy"}); err == nil {
		t.Error("malformed metadata accepted")
	}
	if _, err := Load(strings.NewReader("{bad"), strings.NewReader(metaFixture), Options{Category: "Cellphone"}); err == nil {
		t.Error("malformed review accepted")
	}
	if _, err := Load(strings.NewReader(""), strings.NewReader(`{"title":"no asin"}`), Options{Category: "Cellphone"}); err == nil {
		t.Error("metadata without asin accepted")
	}
}

func TestLoadFiles(t *testing.T) {
	dir := t.TempDir()
	rp := filepath.Join(dir, "reviews.json")
	mp := filepath.Join(dir, "meta.json")
	if err := os.WriteFile(rp, []byte(reviewFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mp, []byte(metaFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := LoadFiles(rp, mp, Options{Category: "Cellphone"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumReviews() != 4 {
		t.Errorf("reviews = %d", c.NumReviews())
	}
	if _, err := LoadFiles(filepath.Join(dir, "absent"), mp, Options{Category: "Cellphone"}); err == nil {
		t.Error("missing review file accepted")
	}
	if _, err := LoadFiles(rp, filepath.Join(dir, "absent"), Options{Category: "Cellphone"}); err == nil {
		t.Error("missing meta file accepted")
	}
}

func TestLoadFilesGzip(t *testing.T) {
	dir := t.TempDir()
	gz := func(name, content string) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		if _, err := zw.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	rp := gz("reviews.json.gz", reviewFixture)
	mp := gz("meta.json.gz", metaFixture)
	c, err := LoadFiles(rp, mp, Options{Category: "Cellphone"})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumReviews() != 4 {
		t.Errorf("reviews = %d", c.NumReviews())
	}
	// A .gz file that is not actually gzipped must fail cleanly.
	bad := filepath.Join(dir, "bad.json.gz")
	if err := os.WriteFile(bad, []byte(metaFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFiles(bad, mp, Options{Category: "Cellphone"}); err == nil {
		t.Error("non-gzip .gz accepted")
	}
}

func TestClampRating(t *testing.T) {
	for overall, want := range map[float64]int{0: 1, 1: 1, 3.7: 3, 5: 5, 9: 5} {
		if got := clampRating(overall); got != want {
			t.Errorf("clampRating(%v) = %d, want %d", overall, got, want)
		}
	}
}
