package servecache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"comparesets/internal/obs"
)

func TestGetPutBasics(t *testing.T) {
	c := New(1<<20, 4, nil)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("k", []byte("v1"))
	if v, ok := c.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("got %q %v", v, ok)
	}
	// Replacement.
	c.Put("k", []byte("v2"))
	if v, _ := c.Get("k"); string(v) != "v2" {
		t.Fatalf("after replace: %q", v)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	c.Purge()
	if _, ok := c.Get("k"); ok || c.Len() != 0 || c.Bytes() != 0 {
		t.Fatal("purge left entries behind")
	}
}

func TestByteBudgetEvictionIsLRU(t *testing.T) {
	// Single shard so the LRU order is fully observable.
	m := obs.NewCacheMetrics(obs.NewRegistry(), "test")
	c := New(3*(1+4+entryOverhead), 1, m)
	c.Put("a", []byte("aaaa"))
	c.Put("b", []byte("bbbb"))
	c.Put("c", []byte("cccc"))
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	// Touch "a" so "b" is now least recently used, then overflow.
	c.Get("a")
	c.Put("d", []byte("dddd"))
	if _, ok := c.Get("b"); ok {
		t.Error("LRU entry b survived eviction")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("entry %s evicted unexpectedly", k)
		}
	}
	if m.Evictions.Value() == 0 {
		t.Error("eviction counter not incremented")
	}
}

func TestOversizedPayloadNotCached(t *testing.T) {
	c := New(256, 1, nil)
	c.Put("big", make([]byte, 4096))
	if _, ok := c.Get("big"); ok {
		t.Error("payload larger than the shard budget was cached")
	}
}

func TestShardDistribution(t *testing.T) {
	c := New(1<<22, 8, nil)
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("key-%d", i), []byte("x"))
	}
	if c.Len() != 512 {
		t.Fatalf("Len = %d, want 512", c.Len())
	}
	occupied := 0
	for i := range c.shards {
		if len(c.shards[i].entries) > 0 {
			occupied++
		}
	}
	if occupied < 4 {
		t.Errorf("only %d/8 shards occupied — hash is not spreading keys", occupied)
	}
}

// TestConcurrentStress hammers get/put/purge across shards; run under
// -race this is the cache's data-race certificate.
func TestConcurrentStress(t *testing.T) {
	m := obs.NewCacheMetrics(obs.NewRegistry(), "stress")
	c := New(1<<16, 8, m)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("k%d", rng.Intn(64))
				switch rng.Intn(10) {
				case 0:
					c.Purge()
				case 1, 2, 3:
					c.Put(key, []byte(key))
				default:
					if v, ok := c.Get(key); ok && string(v) != key {
						t.Errorf("corrupt read: key %s val %s", key, v)
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	// Invariants after the storm: accounted bytes match entry count
	// within per-entry bounds.
	bytes, entries := c.stats()
	if entries == 0 && bytes != 0 {
		t.Errorf("bytes = %d with 0 entries", bytes)
	}
	if entries > 0 && bytes < int64(entries)*entryOverhead {
		t.Errorf("bytes = %d too small for %d entries", bytes, entries)
	}
}

func BenchmarkGetHit(b *testing.B) {
	c := New(1<<20, 16, nil)
	c.Put("hot", make([]byte, 2048))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get("hot"); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkGetHitParallel(b *testing.B) {
	c := New(1<<24, 16, nil)
	for i := 0; i < 64; i++ {
		c.Put(fmt.Sprintf("hot-%d", i), make([]byte, 2048))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			key := fmt.Sprintf("hot-%d", i&63)
			if _, ok := c.Get(key); !ok {
				b.Fatal("miss")
			}
			i++
		}
	})
}
