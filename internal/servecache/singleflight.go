package servecache

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"

	"comparesets/internal/obs"
)

// PanicError is what every participant of a flight receives when the
// flight's compute function panics: the panic is recovered (so one bad key
// cannot kill the process or deadlock its waiters) and propagated as an
// error carrying the panic value and the captured stack.
type PanicError struct {
	// Value is what the compute function panicked with.
	Value any
	// Stack is the flight goroutine's stack at recovery time.
	Stack []byte
}

// Error keeps the message short; the stack is for the caller's logger.
func (e *PanicError) Error() string {
	return fmt.Sprintf("servecache: flight panicked: %v", e.Value)
}

// FlightGroup coalesces concurrent identical computations: while a
// computation for a key is in flight, further Do calls for the same key
// wait for its result instead of starting their own.
//
// Context semantics differ deliberately from the classic singleflight: the
// flight runs on its own context, detached from any single caller's, and
// is canceled only when every participant has detached. A caller whose ctx
// expires stops waiting and gets its own ctx.Err() — the flight keeps
// running for the remaining participants (and, on success, still populates
// whatever cache the compute function writes to). Only when the last
// participant leaves is the flight's context canceled, so abandoned work
// is reclaimed at the pipeline's next cancellation checkpoint.
//
// A compute function that panics does not crash the process or strand its
// waiters: the panic is recovered in the flight goroutine and every
// participant receives a *PanicError.
type FlightGroup struct {
	mu      sync.Mutex
	flights map[string]*flight
	m       *obs.CacheMetrics
}

type flight struct {
	done   chan struct{} // closed when val/err are set
	val    []byte
	err    error
	refs   int // participants still waiting
	cancel context.CancelFunc
}

// NewFlightGroup returns an empty group. Metrics may be nil; when set,
// Executions counts flight leaders and Coalesced counts joiners.
func NewFlightGroup(m *obs.CacheMetrics) *FlightGroup {
	return &FlightGroup{flights: map[string]*flight{}, m: m}
}

// Do returns the result of fn for key, coalescing concurrent calls: one
// caller (the leader) starts fn on a detached context; every concurrent
// caller with the same key shares the outcome. shared is true when the
// result came from a flight this caller did not lead.
//
// If ctx is done before the flight finishes, Do detaches and returns
// ctx.Err() without canceling the flight — unless this caller was the last
// participant, in which case the flight's context is canceled too.
func (g *FlightGroup) Do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if f, ok := g.flights[key]; ok {
		f.refs++
		g.mu.Unlock()
		if g.m != nil {
			g.m.Coalesced.Inc()
		}
		return g.wait(ctx, key, f, true)
	}
	// Leader: run fn on a context that survives this caller's cancellation
	// but still carries its values, and dies when the last waiter detaches.
	fctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
	f := &flight{done: make(chan struct{}), refs: 1, cancel: cancel}
	g.flights[key] = f
	g.mu.Unlock()
	if g.m != nil {
		g.m.Executions.Inc()
	}
	go func() {
		var v []byte
		var ferr error
		// A panicking fn must not kill the process or strand the waiters:
		// recover it and propagate a PanicError to every participant.
		func() {
			defer func() {
				if r := recover(); r != nil {
					v, ferr = nil, &PanicError{Value: r, Stack: debug.Stack()}
				}
			}()
			v, ferr = fn(fctx)
		}()
		g.mu.Lock()
		f.val, f.err = v, ferr
		delete(g.flights, key)
		g.mu.Unlock()
		close(f.done)
		cancel()
	}()
	return g.wait(ctx, key, f, false)
}

// wait blocks until the flight completes or ctx is done, handling the
// participant refcount on early exit.
func (g *FlightGroup) wait(ctx context.Context, key string, f *flight, shared bool) ([]byte, bool, error) {
	select {
	case <-f.done:
		return f.val, shared, f.err
	case <-ctx.Done():
	}
	// Detach. The flight may have completed while we were acquiring the
	// lock; prefer its result in that case so a result computed anyway is
	// never thrown away.
	g.mu.Lock()
	select {
	case <-f.done:
		g.mu.Unlock()
		return f.val, shared, f.err
	default:
	}
	f.refs--
	last := f.refs == 0
	g.mu.Unlock()
	if last {
		f.cancel()
	}
	return nil, shared, ctx.Err()
}

// InFlight returns the number of keys currently being computed.
func (g *FlightGroup) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
