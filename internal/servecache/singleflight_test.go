package servecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"comparesets/internal/obs"
)

func TestDoCollapsesConcurrentCalls(t *testing.T) {
	m := obs.NewCacheMetrics(obs.NewRegistry(), "flight")
	g := NewFlightGroup(m)
	var executions atomic.Int64
	release := make(chan struct{})

	const callers = 16
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := g.Do(context.Background(), "hot", func(context.Context) ([]byte, error) {
				executions.Add(1)
				<-release
				return []byte("payload"), nil
			})
			results[i], errs[i] = v, err
		}(i)
	}
	// Wait until the flight exists and all joiners are queued on it.
	deadline := time.Now().Add(2 * time.Second)
	for g.InFlight() != 1 || m.Coalesced.Value() != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("flights=%d coalesced=%d — joiners never queued", g.InFlight(), m.Coalesced.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want exactly 1", n)
	}
	if m.Executions.Value() != 1 {
		t.Errorf("Executions counter = %d, want 1", m.Executions.Value())
	}
	for i := range results {
		if errs[i] != nil || string(results[i]) != "payload" {
			t.Errorf("caller %d: %q %v", i, results[i], errs[i])
		}
	}
}

func TestCanceledWaiterDetachesWithoutCancelingFlight(t *testing.T) {
	g := NewFlightGroup(nil)
	started := make(chan struct{})
	release := make(chan struct{})
	flightCtxErr := make(chan error, 1)

	// Leader with a background ctx keeps the flight alive.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, _, err := g.Do(context.Background(), "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-release
			flightCtxErr <- fctx.Err()
			return []byte("ok"), nil
		})
		if err != nil || string(v) != "ok" {
			t.Errorf("leader: %q %v", v, err)
		}
	}()
	<-started

	// A waiter with a short deadline joins, then detaches.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, shared, err := g.Do(ctx, "k", func(context.Context) ([]byte, error) {
		t.Error("joiner must not start its own computation")
		return nil, nil
	})
	if !shared || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter: shared=%v err=%v", shared, err)
	}

	// The flight must still be running, its context untouched.
	close(release)
	if ferr := <-flightCtxErr; ferr != nil {
		t.Errorf("flight ctx canceled by a detaching waiter: %v", ferr)
	}
	<-leaderDone
}

func TestLastDetachingParticipantCancelsFlight(t *testing.T) {
	g := NewFlightGroup(nil)
	started := make(chan struct{})
	canceled := make(chan struct{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(ctx, "k", func(fctx context.Context) ([]byte, error) {
			close(started)
			<-fctx.Done() // cooperative pipeline checkpoint
			close(canceled)
			return nil, fctx.Err()
		})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("caller err = %v", err)
	}
	select {
	case <-canceled:
	case <-time.After(2 * time.Second):
		t.Fatal("flight ctx was not canceled after the last participant detached")
	}
}

func TestFlightErrorSharedNotCached(t *testing.T) {
	g := NewFlightGroup(nil)
	boom := errors.New("boom")
	_, _, err := g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		return nil, boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// A later call runs again (errors are not memoized).
	var ran bool
	_, _, err = g.Do(context.Background(), "k", func(context.Context) ([]byte, error) {
		ran = true
		return []byte("v"), nil
	})
	if err != nil || !ran {
		t.Fatalf("second call: ran=%v err=%v", ran, err)
	}
}

// TestFlightStress races many keys and cancellations; meaningful under -race.
func TestFlightStress(t *testing.T) {
	g := NewFlightGroup(obs.NewCacheMetrics(obs.NewRegistry(), "stress"))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (w+i)%4))
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (w+i)%3 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
				}
				g.Do(ctx, key, func(fctx context.Context) ([]byte, error) {
					select {
					case <-fctx.Done():
						return nil, fctx.Err()
					case <-time.After(time.Duration(i%3) * time.Microsecond):
					}
					return []byte(key), nil
				})
				cancel()
			}
		}(w)
	}
	wg.Wait()
	// A flight whose last participant detached drains asynchronously: the
	// goroutine removes itself from the map only when fn returns. Poll.
	deadline := time.Now().Add(2 * time.Second)
	for g.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d flights leaked", g.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestFlightPanicPropagatesToAllWaiters(t *testing.T) {
	m := obs.NewCacheMetrics(obs.NewRegistry(), "flight")
	g := NewFlightGroup(m)
	release := make(chan struct{})

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, err := g.Do(context.Background(), "doomed", func(context.Context) ([]byte, error) {
				<-release
				panic("injected compute panic")
			})
			errs[i] = err
		}(i)
	}
	// All joiners queued on the one flight, then let it blow up.
	deadline := time.Now().Add(2 * time.Second)
	for g.InFlight() != 1 || m.Coalesced.Value() != callers-1 {
		if time.Now().After(deadline) {
			t.Fatalf("flights=%d coalesced=%d — joiners never queued", g.InFlight(), m.Coalesced.Value())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait() // a deadlock here is the bug this test exists to catch

	for i, err := range errs {
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("caller %d: err = %v, want *PanicError", i, err)
		}
		if pe.Value != "injected compute panic" || len(pe.Stack) == 0 {
			t.Errorf("caller %d: PanicError = {%v, stack %d bytes}", i, pe.Value, len(pe.Stack))
		}
	}
	if g.InFlight() != 0 {
		t.Errorf("InFlight = %d after panic, want 0", g.InFlight())
	}
	// The key is not poisoned: the next Do runs a fresh flight.
	v, _, err := g.Do(context.Background(), "doomed", func(context.Context) ([]byte, error) {
		return []byte("recovered"), nil
	})
	if err != nil || string(v) != "recovered" {
		t.Errorf("post-panic Do = %q %v", v, err)
	}
}
