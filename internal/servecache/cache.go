// Package servecache is the serving-path result cache: a sharded,
// byte-budgeted LRU over immutable []byte payloads, plus a request
// coalescer (FlightGroup) that collapses concurrent identical computations
// into one.
//
// The cache is built for a hot-key read pattern — comparison endpoints are
// dominated by a small set of hot (target, parameters) pairs — so the
// design optimizes the hit path: the key is hashed once, exactly one
// shard mutex is taken, and the entry is spliced to the front of that
// shard's intrusive doubly-linked LRU list. Shard count is a power of two
// so shard selection is a mask, and the byte budget is split evenly across
// shards so eviction never takes a global lock.
//
// Values are stored and returned as []byte. Callers hand in payloads they
// will never mutate (the service layer stores fully marshaled JSON
// responses) and must treat returned slices the same way; that convention
// is what makes cached responses deep-immutable without defensive copies.
package servecache

import (
	"hash/fnv"
	"sync"

	"comparesets/internal/obs"
)

// entryOverhead approximates the per-entry bookkeeping bytes (map slot,
// entry struct, pointers) charged against the budget in addition to the
// key and payload bytes.
const entryOverhead = 128

// Cache is a sharded byte-budgeted LRU. The zero value is not usable; use
// New.
type Cache struct {
	shards []cacheShard
	mask   uint64
	m      *obs.CacheMetrics
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*entry
	// head is the most recently used entry, tail the eviction candidate.
	head, tail *entry
	bytes      int64
	budget     int64
}

// entry is an intrusive LRU node.
type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

func (e *entry) size() int64 { return int64(len(e.key) + len(e.val) + entryOverhead) }

// New returns a cache with the given total byte budget spread over
// shardCount shards (rounded up to a power of two; ≤ 0 picks 16). Metrics
// may be nil.
func New(totalBytes int64, shardCount int, m *obs.CacheMetrics) *Cache {
	if shardCount <= 0 {
		shardCount = 16
	}
	n := 1
	for n < shardCount {
		n <<= 1
	}
	if totalBytes < int64(n) {
		totalBytes = int64(n) // degenerate budgets still give ≥ 1 byte/shard
	}
	c := &Cache{shards: make([]cacheShard, n), mask: uint64(n - 1), m: m}
	for i := range c.shards {
		c.shards[i].entries = map[string]*entry{}
		c.shards[i].budget = totalBytes / int64(n)
	}
	return c
}

func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return h.Sum64()
}

func (c *Cache) shardFor(key string) *cacheShard {
	return &c.shards[hashKey(key)&c.mask]
}

// Get returns the payload cached under key, marking it most recently used.
// The returned slice is shared — callers must not mutate it.
func (c *Cache) Get(key string) ([]byte, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	e, ok := sh.entries[key]
	if ok {
		sh.moveToFront(e)
	}
	sh.mu.Unlock()
	if c.m != nil {
		if ok {
			c.m.Hits.Inc()
		} else {
			c.m.Misses.Inc()
		}
	}
	if !ok {
		return nil, false
	}
	return e.val, true
}

// Put stores val under key (replacing any existing entry) and evicts
// least-recently-used entries until the shard fits its budget. val must
// not be mutated by the caller afterwards. Payloads larger than a whole
// shard budget are not cached.
func (c *Cache) Put(key string, val []byte) {
	sh := c.shardFor(key)
	e := &entry{key: key, val: val}
	if e.size() > sh.budget {
		return
	}
	var evicted int
	sh.mu.Lock()
	if old, ok := sh.entries[key]; ok {
		sh.unlink(old)
		delete(sh.entries, key)
		sh.bytes -= old.size()
	}
	sh.entries[key] = e
	sh.pushFront(e)
	sh.bytes += e.size()
	for sh.bytes > sh.budget && sh.tail != nil && sh.tail != e {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.bytes -= victim.size()
		evicted++
	}
	sh.mu.Unlock()
	if c.m != nil {
		c.m.Evictions.Add(evicted)
		c.syncGauges()
	}
}

// syncGauges publishes the current footprint to the metrics gauges.
func (c *Cache) syncGauges() {
	if c.m == nil {
		return
	}
	bytes, entries := c.stats()
	c.m.Bytes.Set(float64(bytes))
	c.m.Entries.Set(float64(entries))
}

func (c *Cache) stats() (bytes int64, entries int) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		bytes += sh.bytes
		entries += len(sh.entries)
		sh.mu.Unlock()
	}
	return bytes, entries
}

// Bytes returns the current resident payload bytes (including overhead).
func (c *Cache) Bytes() int64 { b, _ := c.stats(); return b }

// Len returns the current number of resident entries.
func (c *Cache) Len() int { _, n := c.stats(); return n }

// Purge drops every entry.
func (c *Cache) Purge() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.entries = map[string]*entry{}
		sh.head, sh.tail = nil, nil
		sh.bytes = 0
		sh.mu.Unlock()
	}
	c.syncGauges()
}

// pushFront inserts a detached entry at the head. Caller holds sh.mu.
func (sh *cacheShard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes the entry from the list. Caller holds sh.mu.
func (sh *cacheShard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront splices an in-list entry to the head. Caller holds sh.mu.
func (sh *cacheShard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
